/**
 * @file
 * Scoped wall-clock phase timers for pipeline profiling. A
 * ScopedPhase brackets one compile stage: on destruction it adds the
 * elapsed milliseconds to "<name>.ms" in the registry, and optional
 * op counts record the stage's static code-size delta. A null
 * registry makes the registry members no-ops (the unprofiled
 * pipeline pays one pointer test per stage). Independently of the
 * registry, each phase pushes a prof region interned under its own
 * name, so the sampling self-profiler (obs/prof.hh) attributes host
 * time to individual compile stages with no extra markers.
 */

#ifndef LBP_OBS_PHASE_TIMER_HH
#define LBP_OBS_PHASE_TIMER_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/prof.hh"

namespace lbp
{
namespace obs
{

class Registry;

class ScopedPhase
{
  public:
    /**
     * @p opsBefore: static op count entering the stage (pass -1 when
     * op accounting is not meaningful for this stage).
     */
    ScopedPhase(Registry *r, const std::string &name,
                std::int64_t opsBefore = -1);

    /** Record the stage's resulting op count (and the delta). */
    void finishOps(std::int64_t opsAfter);

    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    prof::ScopedRegion region_;
    Registry *r_;
    std::string name_;
    std::int64_t opsBefore_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_PHASE_TIMER_HH
