/**
 * @file
 * IR structural tests: operands, operations, blocks, functions,
 * programs, builder, printer, and verifier.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"

namespace lbp
{
namespace
{

TEST(Operand, Constructors)
{
    EXPECT_TRUE(Operand::reg(5).isReg());
    EXPECT_EQ(Operand::reg(5).asReg(), 5u);
    EXPECT_TRUE(Operand::imm(-3).isImm());
    EXPECT_EQ(Operand::imm(-3).value, -3);
    EXPECT_TRUE(Operand::pred(2).isPred());
    EXPECT_TRUE(Operand::slot(7).isSlot());
    EXPECT_EQ(Operand::slot(7).asSlot(), 7);
    EXPECT_TRUE(Operand().isNone());
}

TEST(Opcode, Classification)
{
    EXPECT_TRUE(isBranch(Opcode::BR));
    EXPECT_TRUE(isBranch(Opcode::BR_CLOOP));
    EXPECT_FALSE(isBranch(Opcode::REC_CLOOP));
    EXPECT_TRUE(isControl(Opcode::REC_CLOOP));
    EXPECT_TRUE(isBufferOp(Opcode::EXEC_WLOOP));
    EXPECT_TRUE(isLoad(Opcode::LD_H));
    EXPECT_TRUE(isStore(Opcode::ST_W));
    EXPECT_FALSE(isLoad(Opcode::ST_B));
}

TEST(Opcode, UnitClasses)
{
    EXPECT_EQ(unitClassOf(Opcode::ADD), UnitClass::IALU);
    EXPECT_EQ(unitClassOf(Opcode::MUL), UnitClass::IMUL);
    EXPECT_EQ(unitClassOf(Opcode::LD_W), UnitClass::MEM);
    EXPECT_EQ(unitClassOf(Opcode::BR), UnitClass::BR);
    EXPECT_EQ(unitClassOf(Opcode::PRED_DEF), UnitClass::PRED);
    EXPECT_EQ(unitClassOf(Opcode::FMUL), UnitClass::FPU);
}

TEST(Opcode, PaperLatencies)
{
    // Paper section 7: arithmetic 1, multiply 2, divide 8, load 3,
    // FP arithmetic 2.
    EXPECT_EQ(latencyOf(Opcode::ADD), 1);
    EXPECT_EQ(latencyOf(Opcode::MUL), 2);
    EXPECT_EQ(latencyOf(Opcode::DIV), 8);
    EXPECT_EQ(latencyOf(Opcode::LD_W), 3);
    EXPECT_EQ(latencyOf(Opcode::FADD), 2);
}

TEST(Opcode, CondEvalAndNegation)
{
    EXPECT_TRUE(evalCond(CmpCond::LT, -1, 0));
    EXPECT_FALSE(evalCond(CmpCond::LTU, -1, 0)); // unsigned
    EXPECT_TRUE(evalCond(CmpCond::TRUE_, 0, 0));
    EXPECT_FALSE(evalCond(CmpCond::FALSE_, 1, 1));
    for (CmpCond c : {CmpCond::EQ, CmpCond::NE, CmpCond::LT,
                      CmpCond::LE, CmpCond::GT, CmpCond::GE,
                      CmpCond::LTU, CmpCond::GEU}) {
        for (std::int64_t a : {-5, 0, 5}) {
            for (std::int64_t b : {-5, 0, 5}) {
                EXPECT_NE(evalCond(c, a, b),
                          evalCond(negateCond(c), a, b));
            }
        }
    }
}

TEST(Operation, ReadsWrites)
{
    Operation op = makeBinary(Opcode::ADD, 3, Operand::reg(1),
                              Operand::imm(4));
    EXPECT_TRUE(op.writesReg(3));
    EXPECT_FALSE(op.writesReg(1));
    EXPECT_TRUE(op.readsReg(1));
    EXPECT_FALSE(op.readsReg(3));
    EXPECT_EQ(op.numRegSrcs(), 1);
}

TEST(Function, BlocksAndRpo)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const BlockId b1 = b.makeBlock();
    const BlockId b2 = b.makeBlock();
    b.br(CmpCond::EQ, Operand::imm(0), Operand::imm(0), b2);
    b.fallTo(b1);
    b.at(b1);
    b.jump(b2);
    b.at(b2);
    b.ret({});

    Function &fn = prog.functions[f];
    auto rpo = fn.reversePostorder();
    ASSERT_GE(rpo.size(), 3u);
    EXPECT_EQ(rpo.front(), fn.entry);
    // b2 must come after b1 (b1 -> b2 edge).
    size_t i1 = 99, i2 = 99;
    for (size_t i = 0; i < rpo.size(); ++i) {
        if (rpo[i] == b1)
            i1 = i;
        if (rpo[i] == b2)
            i2 = i;
    }
    EXPECT_LT(i1, i2);
}

TEST(Function, PruneUnreachable)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const BlockId dead = b.makeBlock("island");
    b.at(dead);
    b.ret({});
    b.at(prog.functions[f].entry);
    b.ret({});
    EXPECT_EQ(prog.functions[f].pruneUnreachable(), 1);
    EXPECT_TRUE(prog.functions[f].blocks[dead].dead);
}

TEST(Program, DataAllocationAlignment)
{
    Program prog;
    const auto a = prog.allocData(3, 8);
    const auto b = prog.allocData(10, 8);
    EXPECT_EQ(a % 8, 0);
    EXPECT_EQ(b % 8, 0);
    EXPECT_GE(b, a + 3);
    prog.poke32(b, 0x12345678);
    EXPECT_EQ(prog.peek32(b), 0x12345678);
    prog.poke32(b, -7);
    EXPECT_EQ(prog.peek32(b), -7);
}

TEST(Builder, ForLoopShape)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const BlockId head = b.forLoop(0, 10, 1, [&](RegId i) {
        b.add(Operand::reg(i), Operand::imm(1));
    });
    b.ret({});
    Function &fn = prog.functions[f];
    const Operation *term = fn.blocks[head].terminator();
    ASSERT_NE(term, nullptr);
    EXPECT_EQ(term->op, Opcode::BR);
    EXPECT_EQ(term->target, head);
    EXPECT_TRUE(verify(fn).empty());
}

TEST(Builder, GuardApplied)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const PredId p = b.newPred();
    b.setGuard(p);
    b.iconst(5);
    b.clearGuard();
    b.iconst(6);
    b.ret({});
    const auto &ops = prog.functions[f].blocks[prog.functions[f].entry].ops;
    EXPECT_EQ(ops[0].guard, p);
    EXPECT_EQ(ops[1].guard, kNoPred);
}

TEST(Printer, RoundTripContainsPieces)
{
    Operation op = makeBinary(Opcode::ADD, 3, Operand::reg(1),
                              Operand::imm(4));
    op.guard = 2;
    const std::string s = toString(op);
    EXPECT_NE(s.find("(p2)"), std::string::npos);
    EXPECT_NE(s.find("add"), std::string::npos);
    EXPECT_NE(s.find("r3"), std::string::npos);
}

TEST(Verifier, CatchesBadArity)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    b.ret({});
    Function &fn = prog.functions[f];
    Operation bad;
    bad.op = Opcode::ADD;
    bad.dsts = {Operand::reg(1)};
    bad.srcs = {Operand::imm(1)}; // missing second source
    fn.blocks[fn.entry].ops.insert(fn.blocks[fn.entry].ops.begin(),
                                   bad);
    EXPECT_FALSE(verify(fn).empty());
}

TEST(Verifier, CatchesDanglingFallthrough)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    b.iconst(1); // no terminator, no fallthrough
    EXPECT_FALSE(verify(prog.functions[f]).empty());
}

TEST(Verifier, MidBlockBranchOnlyInHyperblocks)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const BlockId tgt = b.makeBlock();
    b.at(tgt);
    b.ret({});
    Function &fn = prog.functions[f];
    b.at(fn.entry);
    b.jump(tgt);           // unguarded jump...
    b.iconst(1);           // ...with code after it
    b.ret({});
    EXPECT_FALSE(verify(fn).empty());
    fn.blocks[fn.entry].isHyperblock = true;
    // Hyperblocks allow internal (guarded) control; the unguarded
    // jump is tolerated under allowInternalBranches semantics.
    VerifyOptions opts;
    opts.allowInternalBranches = true;
    EXPECT_TRUE(verify(fn, opts).empty());
}

} // namespace
} // namespace lbp
