#include "analysis/dependence.hh"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/liveness.hh"
#include "support/logging.hh"

namespace lbp
{

void
DepGraph::addEdge(int from, int to, DepKind kind, int latency,
                  int distance)
{
    // Deduplicate: keep the strongest (max latency) edge per
    // (from, to, distance).
    for (int e : succIdx_[from]) {
        DepEdge &ex = edges_[e];
        if (ex.to == to && ex.distance == distance) {
            ex.latency = std::max(ex.latency, latency);
            return;
        }
    }
    const int idx = static_cast<int>(edges_.size());
    edges_.push_back({from, to, kind, latency, distance});
    succIdx_[from].push_back(idx);
    predIdx_[to].push_back(idx);
}

DepGraph::DepGraph(const BasicBlock &bb, bool loopCarried)
{
    numOps_ = static_cast<int>(bb.ops.size());
    succIdx_.assign(numOps_, {});
    predIdx_.assign(numOps_, {});

    // --- Register dependences (general + predicate) ---
    // Track last writer and readers-since-last-write per register.
    struct Accesses
    {
        int lastWriter = -1;
        std::vector<int> readersSince;
        std::vector<int> upwardReaders; // readers before any write
        int firstWriter = -1;
        int lastWriterFinal = -1;
    };
    std::map<std::int64_t, Accesses> regs;   // key: reg id
    std::map<std::int64_t, Accesses> preds;  // key: pred id

    auto touchRead = [&](std::map<std::int64_t, Accesses> &table,
                         std::int64_t key, int i, int /*lat*/) {
        Accesses &a = table[key];
        if (a.lastWriter >= 0) {
            // TRUE dep from the in-block writer.
            // Latency added by caller via writer's opcode below.
        } else {
            a.upwardReaders.push_back(i);
        }
        a.readersSince.push_back(i);
    };

    for (int i = 0; i < numOps_; ++i) {
        const Operation &op = bb.ops[i];

        // Reads.
        for (RegId r : Liveness::uses(op)) {
            Accesses &a = regs[r];
            if (a.lastWriter >= 0) {
                addEdge(a.lastWriter, i, DepKind::TRUE_,
                        latencyOf(bb.ops[a.lastWriter].op), 0);
            }
            touchRead(regs, r, i, 0);
        }
        for (PredId p : Liveness::predUses(op)) {
            Accesses &a = preds[p];
            if (a.lastWriter >= 0) {
                // Predicate generation has a 1-cycle path to the
                // consumer's squash input (paper §7.3).
                addEdge(a.lastWriter, i, DepKind::TRUE_, 1, 0);
            }
            touchRead(preds, p, i, 0);
        }

        // Writes.
        auto doWrite = [&](std::map<std::int64_t, Accesses> &table,
                           std::int64_t key) {
            Accesses &a = table[key];
            for (int rd : a.readersSince) {
                if (rd != i)
                    addEdge(rd, i, DepKind::ANTI, 0, 0);
            }
            if (a.lastWriter >= 0 && a.lastWriter != i)
                addEdge(a.lastWriter, i, DepKind::OUTPUT, 1, 0);
            a.readersSince.clear();
            if (a.firstWriter < 0)
                a.firstWriter = i;
            a.lastWriter = i;
            a.lastWriterFinal = i;
        };
        for (RegId r : Liveness::defs(op))
            doWrite(regs, r);
        for (PredId p : Liveness::predDefs(op))
            doWrite(preds, p);
    }

    // --- Memory ordering with base+offset disambiguation ---
    // Two accesses are provably independent when they share the same
    // base register *version* (no intervening write to the base) and
    // their [offset, offset+size) ranges are disjoint — the
    // lightweight fruit of the pointer analysis the paper calls
    // "important to optimization and instruction scheduling".
    struct MemAccess
    {
        int op;
        bool isSt;
        RegId base = 0;
        bool baseValid = false; // reg base with immediate offset
        int version = 0;
        std::int64_t off = 0;
        int size = 0;
    };
    std::vector<MemAccess> accesses;
    std::map<RegId, int> regVersion;
    std::set<RegId> writtenInBlock;
    for (int i = 0; i < numOps_; ++i) {
        for (RegId r : Liveness::defs(bb.ops[i]))
            writtenInBlock.insert(r);
    }

    auto accessSize = [](Opcode oc) {
        switch (oc) {
          case Opcode::LD_B: case Opcode::ST_B: return 1;
          case Opcode::LD_H: case Opcode::ST_H: return 2;
          default: return 4;
        }
    };
    auto mayAlias = [&](const MemAccess &a, const MemAccess &b,
                        bool crossIteration) {
        if (!a.baseValid || !b.baseValid)
            return true;
        if (a.base != b.base || a.version != b.version)
            return true;
        // Cross-iteration comparisons additionally require the base
        // to be loop-invariant over the whole body.
        if (crossIteration && writtenInBlock.count(a.base))
            return true;
        return a.off < b.off + b.size && b.off < a.off + a.size;
    };

    std::vector<int> stores_all, loads_all;
    for (int i = 0; i < numOps_; ++i) {
        const Operation &op = bb.ops[i];
        const Opcode oc = op.op;
        if (isLoad(oc) || isStore(oc)) {
            MemAccess ma;
            ma.op = i;
            ma.isSt = isStore(oc);
            ma.size = accessSize(oc);
            if (op.srcs[0].isReg() && op.srcs[1].isImm()) {
                ma.base = op.srcs[0].asReg();
                ma.baseValid = true;
                ma.version = regVersion[ma.base];
                ma.off = op.srcs[1].value;
            }
            for (const auto &prev : accesses) {
                if (!prev.isSt && !ma.isSt)
                    continue; // load-load never conflicts
                if (mayAlias(prev, ma, /*crossIteration=*/false)) {
                    // store->load / store->store need a cycle; a
                    // store may issue in a load's cycle (reads
                    // precede writes within a bundle).
                    addEdge(prev.op, i, DepKind::MEM,
                            prev.isSt ? 1 : 0, 0);
                }
            }
            accesses.push_back(ma);
            if (ma.isSt)
                stores_all.push_back(i);
            else
                loads_all.push_back(i);
        }
        // Every register write (memory op or not) advances base
        // versions, invalidating offset comparisons across it.
        for (RegId r : Liveness::defs(op))
            ++regVersion[r];
    }
    (void)stores_all;
    (void)loads_all;

    // --- Control: branches are position barriers ---
    for (int i = 0; i < numOps_; ++i) {
        if (!bb.ops[i].isBranchOp() && bb.ops[i].op != Opcode::CALL &&
            bb.ops[i].op != Opcode::RET && !isBufferOp(bb.ops[i].op)) {
            continue;
        }
        for (int j = 0; j < i; ++j)
            addEdge(j, i, DepKind::CONTROL, 0, 0);
        for (int j = i + 1; j < numOps_; ++j)
            addEdge(i, j, DepKind::CONTROL, 1, 0);
    }

    if (!loopCarried)
        return;

    // --- Loop-carried register dependences (distance 1) ---
    for (const auto &[r, a] : regs) {
        if (a.lastWriterFinal < 0)
            continue;
        for (int rd : a.upwardReaders) {
            addEdge(a.lastWriterFinal, rd, DepKind::TRUE_,
                    latencyOf(bb.ops[a.lastWriterFinal].op), 1);
        }
    }
    for (const auto &[p, a] : preds) {
        if (a.lastWriterFinal < 0)
            continue;
        for (int rd : a.upwardReaders)
            addEdge(a.lastWriterFinal, rd, DepKind::TRUE_, 1, 1);
    }

    // --- Loop-carried memory (distance 1), disambiguated ---
    for (const auto &a : accesses) {
        if (!a.isSt)
            continue;
        for (const auto &b : accesses) {
            if (!a.isSt && !b.isSt)
                continue;
            if (mayAlias(a, b, /*crossIteration=*/true))
                addEdge(a.op, b.op, DepKind::MEM, 1, 1);
        }
    }

    // --- Loop-carried control: an exit whose outcome is not known in
    //     advance (while-loop back branch, conditional exits) limits
    //     store speculation in the next iteration. Counted-loop
    //     branches (BR_CLOOP) impose no such constraint: the trip
    //     count is known to the fetch hardware.
    for (int i = 0; i < numOps_; ++i) {
        const Opcode oc = bb.ops[i].op;
        if (oc != Opcode::BR_WLOOP && oc != Opcode::BR &&
            oc != Opcode::JUMP) {
            continue;
        }
        for (int st : stores_all)
            addEdge(i, st, DepKind::CONTROL, 1, 1);
    }
}

std::vector<int>
DepGraph::heights() const
{
    std::vector<int> h(numOps_, 0);
    // Ops are in program order; distance-0 edges always go forward
    // (by construction), so a reverse sweep computes longest paths.
    for (int i = numOps_ - 1; i >= 0; --i) {
        const Operation *op = nullptr;
        (void)op;
        for (int e : succIdx_[i]) {
            const DepEdge &ed = edges_[e];
            if (ed.distance != 0)
                continue;
            h[i] = std::max(h[i], ed.latency + h[ed.to]);
        }
    }
    return h;
}

int
DepGraph::recMII() const
{
    // Find the smallest II such that the graph with edge weights
    // (latency - II * distance) has no positive-weight cycle.
    auto hasPositiveCycle = [&](int ii) {
        std::vector<double> dist(numOps_, 0.0);
        for (int iter = 0; iter <= numOps_; ++iter) {
            bool relaxed = false;
            for (const auto &e : edges_) {
                const double w =
                    e.latency - static_cast<double>(ii) * e.distance;
                if (dist[e.from] + w > dist[e.to]) {
                    dist[e.to] = dist[e.from] + w;
                    relaxed = true;
                }
            }
            if (!relaxed)
                return false;
        }
        return true;
    };

    int lo = 1, hi = 1;
    for (const auto &e : edges_)
        hi = std::max(hi, e.latency + 1);
    hi = std::max(hi, numOps_ + 1);
    while (hasPositiveCycle(hi))
        hi *= 2;
    while (lo < hi) {
        const int mid = (lo + hi) / 2;
        if (hasPositiveCycle(mid))
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace lbp
