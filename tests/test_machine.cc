/**
 * @file
 * Machine-model tests: the Figure-6 slot map and unit inventory,
 * encoding-cost helpers.
 */

#include <gtest/gtest.h>

#include "mach/machine.hh"

namespace lbp
{
namespace
{

TEST(Machine, UnitInventoryMatchesPaper)
{
    Machine m;
    // Paper section 7: eight integer ALUs, two integer multipliers,
    // three memory units, one branch unit, two FP units, four
    // predicate-generating units.
    EXPECT_EQ(m.unitCount(UnitClass::IALU), 8);
    EXPECT_EQ(m.unitCount(UnitClass::IMUL), 2);
    EXPECT_EQ(m.unitCount(UnitClass::MEM), 3);
    EXPECT_EQ(m.unitCount(UnitClass::BR), 1);
    EXPECT_EQ(m.unitCount(UnitClass::FPU), 2);
    EXPECT_EQ(m.unitCount(UnitClass::PRED), 4);
}

TEST(Machine, EverySlotHasIalu)
{
    Machine m;
    for (int s = 0; s < Machine::width; ++s)
        EXPECT_TRUE(m.slotSupports(s, UnitClass::IALU));
}

TEST(Machine, SlotCapabilitiesDisjointness)
{
    Machine m;
    // The branch unit lives in exactly one slot.
    int brSlots = 0;
    for (int s = 0; s < Machine::width; ++s)
        brSlots += m.slotSupports(s, UnitClass::BR);
    EXPECT_EQ(brSlots, 1);
    // Opcode-level dispatch agrees with class-level dispatch.
    EXPECT_TRUE(m.slotSupports(m.slotsFor(UnitClass::BR)[0],
                               Opcode::BR_CLOOP));
    EXPECT_FALSE(m.slotSupports(m.slotsFor(UnitClass::BR)[0],
                                Opcode::FMUL));
}

TEST(Machine, GuardFieldCost)
{
    // Paper section 4: eight predicate registers cost three bits per
    // operation of guard field.
    EXPECT_EQ(Machine::guardFieldBits(8), 3);
    EXPECT_EQ(Machine::guardFieldBits(16), 4);
    EXPECT_EQ(Machine::guardFieldBits(64), 6);
    EXPECT_EQ(Machine::guardFieldBits(1), 0);
    EXPECT_EQ(Machine::opBits, 32);
}

TEST(Machine, BranchPenaltyConfigurable)
{
    Machine m;
    EXPECT_GE(m.branchPenalty(), 3); // paper: 3-5 cycle penalties
    EXPECT_LE(m.branchPenalty(), 5);
    m.setBranchPenalty(5);
    EXPECT_EQ(m.branchPenalty(), 5);
}

} // namespace
} // namespace lbp
