/**
 * @file
 * The modeled 8-wide VLIW machine (paper §7, Figure 6): slot
 * capabilities, functional-unit counts, latencies, branch penalty, and
 * the 32-bit operation encoding assumptions (NOP-free compressed
 * bundles).
 *
 * Slot map (all eight slots have an integer ALU):
 *   slot 0: Ialu, Pred, Br
 *   slot 1: Ialu, Pred, Mem
 *   slot 2: Ialu, Mem
 *   slot 3: Ialu, Mem
 *   slot 4: Ialu, Pred
 *   slot 5: Ialu, Pred
 *   slot 6: Ialu, Imul, F
 *   slot 7: Ialu, Imul, F
 *
 * This realizes the paper's unit inventory: eight integer ALUs, two of
 * which issue integer multiplies, three memory units, one branch unit,
 * two floating-point units, and four predicate-generating units; every
 * slot can *receive* predicates.
 */

#ifndef LBP_MACH_MACHINE_HH
#define LBP_MACH_MACHINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "ir/opcode.hh"
#include "ir/types.hh"

namespace lbp
{

class Machine
{
  public:
    Machine();

    static constexpr int width = kIssueWidth;

    /** Can @p slot issue operations of unit class @p u? */
    bool slotSupports(int slot, UnitClass u) const;

    /** Can @p slot issue opcode @p op? */
    bool slotSupports(int slot, Opcode op) const;

    /** All slots capable of issuing @p u, in preference order. */
    const std::vector<int> &slotsFor(UnitClass u) const;

    /** Number of units of class @p u. */
    int unitCount(UnitClass u) const;

    /** Taken-branch penalty in cycles when not buffer-resident. */
    int branchPenalty() const { return branchPenalty_; }
    void setBranchPenalty(int p) { branchPenalty_ = p; }

    /** Operation encoding width in bits (32, per §7). */
    static constexpr int opBits = 32;

    /**
     * Encoding cost in bits per operation of a guard-predicate field
     * addressing @p numPreds predicate registers (the full-predication
     * alternative the paper rejects for embedded encodings).
     */
    static int guardFieldBits(int numPreds);

  private:
    std::array<std::uint8_t, width> caps_; // bitmask over UnitClass
    std::array<std::vector<int>,
               static_cast<size_t>(UnitClass::NUM_CLASSES)> slotsFor_;
    int branchPenalty_ = 4;
};

} // namespace lbp

#endif // LBP_MACH_MACHINE_HH
