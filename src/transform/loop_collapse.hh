/**
 * @file
 * Predicated loop collapsing (paper Figure 1b / Figure 2): pulls the
 * code of an outer loop into its inner loop's body, guarded by a
 * predicate that fires only on the final inner iteration of each outer
 * iteration. The doubly-nested loop becomes one simple loop of
 * n_inner * n_outer iterations, eligible for the loop buffer.
 *
 * Requirements (checked): the inner loop is a single block with a
 * statically-known, invocation-invariant trip count; the outer body
 * minus the inner loop is a straight path of side-effect-eligible
 * blocks; the outer loop has a recognizable induction so its trip
 * count is computable in its preheader.
 */

#ifndef LBP_TRANSFORM_LOOP_COLLAPSE_HH
#define LBP_TRANSFORM_LOOP_COLLAPSE_HH

#include "ir/program.hh"

namespace lbp
{

namespace obs
{
class LoopDecisionLog;
}

struct CollapseOptions
{
    /** Skip when the outer (pulled-in) code exceeds this many ops. */
    int maxOuterOps = 24;

    /**
     * Profitability: the pulled-in outer code must be small relative
     * to the inner body (paper: "when the number of instructions in
     * the outer loop is small relative to the inner loop"), since the
     * guarded outer ops occupy issue slots in *every* collapsed
     * iteration. Outer ops must not exceed
     * max(minOuterAllowance, innerOps * maxOuterToInnerRatio).
     */
    double maxOuterToInnerRatio = 1.0;
    int minOuterAllowance = 6;

    /** Skip when the inner trip count exceeds this (paper: "not
     *  excessive"); very long inner loops gain little. */
    std::int64_t maxInnerTrip = 4096;

    /** Require the inner trip count to be at least this. */
    std::int64_t minInnerTrip = 2;
};

struct CollapseStats
{
    int loopsCollapsed = 0;
    int outerOpsPulledIn = 0;
};

/**
 * Collapse all eligible loop nests of @p fn. When @p log is given,
 * each candidate nest's *outer* loop gets a "collapse" LoopAttempt;
 * a collapsed outer loop's decision is marked Eliminated (its code
 * now lives, guarded, in the inner loop's body).
 */
CollapseStats collapseLoops(Function &fn,
                            const CollapseOptions &opts = {},
                            obs::LoopDecisionLog *log = nullptr);

/** Program-wide driver. */
CollapseStats collapseLoops(Program &prog,
                            const CollapseOptions &opts = {},
                            obs::LoopDecisionLog *log = nullptr);

} // namespace lbp

#endif // LBP_TRANSFORM_LOOP_COLLAPSE_HH
