/**
 * @file
 * Iterative modulo scheduling (Rau, MICRO-27) for simple loop bodies.
 *
 * Computes II = max(ResMII, RecMII) and schedules into a modulo
 * reservation table with bounded ejection ("budget"); on failure the
 * II is incremented. The result is a flat one-iteration schedule plus
 * the initiation interval and the modulo-variable-expansion factor;
 * the simulator times N iterations of a pipelined, buffered loop as
 * (N-1)*II + L and the buffer image occupies bodyOps * mveFactor
 * operations (physically expanded kernels are how mpg123's buffer
 * pressure arises in the paper).
 */

#ifndef LBP_SCHED_MODULO_SCHEDULER_HH
#define LBP_SCHED_MODULO_SCHEDULER_HH

#include "sched/schedule.hh"

namespace lbp
{

struct ModuloOptions
{
    /** Ejection budget multiplier (budget = ratio * numOps per II). */
    int budgetRatio = 6;

    /** Give up raising II beyond maxII (fall back to list schedule). */
    int maxII = 512;

    /**
     * Architected rotating registers (paper §7.1 future work): kernel
     * values are renamed in hardware each iteration, so modulo
     * variable expansion is unnecessary and the buffer image stays at
     * one kernel copy (mveFactor == 1).
     */
    bool rotatingRegisters = false;
};

struct ModuloResult
{
    bool success = false;
    int resMII = 0;
    int recMII = 0;
};

/**
 * Modulo-schedule the single-block loop body @p bb. On failure the
 * returned SchedBlock has pipelined == false and the caller should
 * list-schedule instead.
 */
SchedBlock moduloScheduleLoop(const BasicBlock &bb,
                              const Machine &machine,
                              const ModuloOptions &opts = {},
                              ModuloResult *outInfo = nullptr);

/** Lower bound on II from machine resources. */
int computeResMII(const BasicBlock &bb, const Machine &machine);

} // namespace lbp

#endif // LBP_SCHED_MODULO_SCHEDULER_HH
