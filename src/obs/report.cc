#include "obs/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/version.hh"

namespace lbp
{
namespace obs
{

namespace
{

std::string
fmt(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.5g", v);
    return buf;
}

/** Render a metric leaf for a table cell. */
std::string
cellValue(const Json &v)
{
    if (v.kind() == Json::Kind::Null)
        return "<span class=\"bad\">null (non-finite)</span>";
    return htmlEscape(v.dump());
}

/**
 * A 150x36 inline sparkline over @p ys (already finite). A single
 * value draws as a flat midline so "history of length one" still
 * renders.
 */
std::string
sparklineSvg(const std::vector<double> &ys)
{
    const double w = 150, h = 36, pad = 4;
    double lo = ys[0], hi = ys[0];
    for (double y : ys) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
    }
    const double span = hi - lo;
    auto px = [&](std::size_t i) {
        return ys.size() == 1
                   ? w / 2
                   : pad + (w - 2 * pad) * static_cast<double>(i) /
                         static_cast<double>(ys.size() - 1);
    };
    auto py = [&](double y) {
        return span == 0 ? h / 2
                         : h - pad - (h - 2 * pad) * (y - lo) / span;
    };
    std::ostringstream os;
    os << "<svg class=\"spark\" width=\"150\" height=\"36\" "
          "viewBox=\"0 0 150 36\" role=\"img\">";
    os << "<polyline points=\"";
    for (std::size_t i = 0; i < ys.size(); ++i) {
        if (i)
            os << ' ';
        os << fmt(px(i)) << ',' << fmt(py(ys[i]));
    }
    os << "\"/>";
    os << "<circle cx=\"" << fmt(px(ys.size() - 1)) << "\" cy=\""
       << fmt(py(ys.back())) << "\" r=\"2.5\"/>";
    os << "</svg>";
    return os.str();
}

/** Bin bars for one histogram: [[value, weight], ...]. */
std::string
histogramSvg(const Json &bins, std::size_t maxBins)
{
    const auto &items = bins.items();
    const std::size_t n = std::min(items.size(), maxBins);
    if (!n)
        return "";
    double maxW = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto &bin = items[i].items();
        if (bin.size() == 2 && bin[1].isNumber())
            maxW = std::max(maxW, bin[1].asDouble());
    }
    if (maxW <= 0)
        return "";
    const double barW = 5, gap = 2, h = 40;
    const double w = static_cast<double>(n) * (barW + gap);
    std::ostringstream os;
    os << "<svg class=\"hist\" width=\"" << fmt(w) << "\" height=\""
       << fmt(h) << "\" viewBox=\"0 0 " << fmt(w) << ' ' << fmt(h)
       << "\" role=\"img\">";
    for (std::size_t i = 0; i < n; ++i) {
        const auto &bin = items[i].items();
        if (bin.size() != 2 || !bin[1].isNumber())
            continue;
        const double frac = bin[1].asDouble() / maxW;
        const double bh = std::max(1.0, (h - 2) * frac);
        os << "<rect x=\""
           << fmt(static_cast<double>(i) * (barW + gap)) << "\" y=\""
           << fmt(h - bh) << "\" width=\"" << fmt(barW)
           << "\" height=\"" << fmt(bh) << "\" rx=\"1\"><title>"
           << htmlEscape(bin[0].dump()) << " : "
           << htmlEscape(bin[1].dump()) << "</title></rect>";
    }
    os << "</svg>";
    return os.str();
}

const char *kCss = R"css(
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --series: #2a78d6; --border: rgba(11,11,11,0.10);
  --good: #0ca30c; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --series: #3987e5; --border: rgba(255,255,255,0.10);
  }
}
body {
  margin: 0; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1080px; margin: 0 auto; padding: 20px; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin: 24px 0 8px; }
h3 { font-size: 13px; color: var(--ink2); margin: 14px 0 6px; }
section {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; margin: 12px 0;
}
table { border-collapse: collapse; width: 100%; }
th {
  text-align: left; color: var(--muted); font-weight: 500;
  font-size: 12px; border-bottom: 1px solid var(--axis);
  padding: 3px 10px 3px 0;
}
td {
  padding: 2px 10px 2px 0; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
td.num, th.num { text-align: right; }
.cards {
  display: grid; gap: 10px;
  grid-template-columns: repeat(auto-fill, minmax(230px, 1fr));
}
.card {
  border: 1px solid var(--grid); border-radius: 6px; padding: 6px 8px;
}
.card .k {
  font-size: 11px; color: var(--ink2); word-break: break-all;
}
.card .v { font-size: 12px; }
.card .mm { color: var(--muted); font-size: 11px; }
.spark polyline {
  fill: none; stroke: var(--series); stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round;
}
.spark circle { fill: var(--series); }
.hist rect { fill: var(--series); }
.badge {
  display: inline-block; padding: 0 6px; border-radius: 8px;
  font-size: 11px; border: 1px solid var(--border);
}
.badge.ok { color: var(--good); }
.badge.bad { color: var(--critical); }
.bad { color: var(--critical); }
.good { color: var(--good); }
.muted { color: var(--muted); }
.banner {
  padding: 8px 12px; border-radius: 6px; font-weight: 600;
  border: 1px solid var(--border);
}
.banner.pass { color: var(--good); }
.banner.fail { color: var(--critical); }
.barrow { display: flex; align-items: center; gap: 8px; margin: 2px 0; }
.barrow .lbl {
  width: 260px; font-size: 12px; color: var(--ink2);
  text-align: right; word-break: break-all;
}
.barrow .track { flex: 1; }
.barrow .bar {
  background: var(--series); height: 10px; border-radius: 2px;
  min-width: 2px;
}
.barrow .val {
  width: 90px; font-size: 12px; font-variant-numeric: tabular-nums;
}
.stack {
  flex: 1; display: flex; height: 12px; border-radius: 2px;
  overflow: hidden; background: var(--grid);
}
.stack .seg { height: 100%; }
.legend { font-size: 11px; color: var(--ink2); margin: 6px 0; }
.legend .sw {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin: 0 4px 0 10px; vertical-align: middle;
}
.cc0 { background: #898781; }
.cc1 { background: #2a78d6; }
.cc2 { background: #19b8c4; }
.cc3 { background: #d03b3b; }
.cc4 { background: #d07a3b; }
.cc5 { background: #c43bd0; }
.cc6 { background: #d0b83b; }
.cc7 { background: #0ca30c; }
details > summary { cursor: pointer; color: var(--ink2); }
footer { color: var(--muted); font-size: 12px; margin: 16px 0; }
)css";

void
writeMetaSection(std::ostream &os, const ReportData &d)
{
    os << "<section id=\"meta\"><h2>Run identity</h2><table>";
    os << "<tr><td>workload</td><td>" << htmlEscape(d.workload)
       << "</td></tr>";
    if (const Json *sha = d.registryDoc.find("git_sha"))
        os << "<tr><td>git_sha</td><td>"
           << htmlEscape(sha->kind() == Json::Kind::String
                             ? sha->asString()
                             : sha->dump())
           << "</td></tr>";
    os << "<tr><td>version</td><td>" << htmlEscape(versionString())
       << "</td></tr>";
    if (!d.historyPath.empty())
        os << "<tr><td>history store</td><td>"
           << htmlEscape(d.historyPath) << " ("
           << d.history.size() << " record(s))</td></tr>";
    if (const Json *meta = d.registryDoc.find("meta"))
        for (const auto &kv : meta->members())
            os << "<tr><td>" << htmlEscape(kv.first) << "</td><td>"
               << cellValue(kv.second) << "</td></tr>";
    os << "</table></section>\n";
}

void
writeGateSection(std::ostream &os, const ReportData &d)
{
    if (d.check.kind() != Json::Kind::Object)
        return;
    const Json *failed = d.check.find("failed");
    const bool bad = failed && failed->kind() == Json::Kind::Bool &&
                     failed->asBool();
    os << "<section id=\"gate\"><h2>Regression gate</h2>";
    os << "<div class=\"banner " << (bad ? "fail" : "pass") << "\">"
       << (bad ? "✖ FAIL" : "✔ PASS")
       << " &mdash; history check against "
       << (d.check.find("baseline_records")
               ? htmlEscape(d.check.find("baseline_records")->dump())
               : std::string("0"))
       << " baseline record(s)</div>";
    const Json *verdicts = d.check.find("verdicts");
    if (verdicts && !verdicts->items().empty()) {
        os << "<table><tr><th>key</th><th>verdict</th><th>class"
              "</th><th>detail</th></tr>";
        for (const auto &v : verdicts->items()) {
            auto field = [&](const char *k) {
                const Json *f = v.find(k);
                if (!f)
                    return std::string();
                return f->kind() == Json::Kind::String
                           ? f->asString()
                           : f->dump();
            };
            const std::string name = field("verdict");
            const bool rowBad = name.find_first_of(
                                    "ABCDEFGHIJKLMNOPQRSTUVWXYZ") !=
                                std::string::npos;
            os << "<tr><td>" << htmlEscape(field("key"))
               << "</td><td class=\"" << (rowBad ? "bad" : "good")
               << "\">" << htmlEscape(name) << "</td><td>"
               << htmlEscape(field("class")) << "</td><td>"
               << htmlEscape(field("detail")) << "</td></tr>";
        }
        os << "</table>";
    }
    os << "</section>\n";
}

void
writeTrajectories(std::ostream &os, const ReportData &d)
{
    os << "<section id=\"trajectories\"><h2>History trajectories"
          "</h2>";
    if (d.history.empty()) {
        os << "<p class=\"muted\">No history store loaded; run "
              "<code>lbp_stats history append</code> to start the "
              "timeline.</p></section>\n";
        return;
    }

    // Group records by source, preserving first-seen order.
    std::vector<std::string> sources;
    std::map<std::string, std::vector<const HistoryRecord *>> bySrc;
    for (const auto &rec : d.history) {
        if (!bySrc.count(rec.source))
            sources.push_back(rec.source);
        bySrc[rec.source].push_back(&rec);
    }

    const std::size_t kMaxPerSource = 64;
    for (const auto &src : sources) {
        const auto &recs = bySrc[src];
        os << "<h3>" << htmlEscape(src) << " &middot; "
           << recs.size() << " record(s)</h3><div class=\"cards\">";
        // The newest record's keys define the set and order.
        std::size_t shown = 0, skipped = 0;
        for (const auto &kv : recs.back()->values) {
            if (classifyKey(kv.first) == KeyClass::Identity)
                continue;
            std::vector<double> ys;
            for (const HistoryRecord *r : recs) {
                const Json *v = r->find(kv.first);
                if (v && v->isNumber() &&
                    std::isfinite(v->asDouble()))
                    ys.push_back(v->asDouble());
            }
            if (ys.empty())
                continue;
            if (shown >= kMaxPerSource) {
                ++skipped;
                continue;
            }
            ++shown;
            double lo = ys[0], hi = ys[0];
            for (double y : ys) {
                lo = std::min(lo, y);
                hi = std::max(hi, y);
            }
            os << "<div class=\"card\"><div class=\"k\">"
               << htmlEscape(kv.first) << "</div>"
               << sparklineSvg(ys) << "<div class=\"v\">last "
               << fmt(ys.back()) << " <span class=\"mm\">min "
               << fmt(lo) << " &middot; max " << fmt(hi) << " &middot; n="
               << ys.size() << "</span></div></div>";
        }
        os << "</div>";
        if (skipped)
            os << "<p class=\"muted\">" << skipped
               << " further metric(s) not plotted (cap "
               << kMaxPerSource << " per source).</p>";
    }
    os << "</section>\n";
}

void
writeMetricsSection(std::ostream &os, const ReportData &d)
{
    const Json *metrics = d.registryDoc.find("metrics");
    os << "<section id=\"metrics\"><h2>Registry metrics</h2>";
    if (!metrics || metrics->members().empty()) {
        os << "<p class=\"muted\">empty registry</p></section>\n";
        return;
    }
    // Group by leading dotted prefix; "loop.*" collapses by default
    // (one entry per rank can run long).
    std::vector<std::string> order;
    std::map<std::string, std::vector<const std::pair<std::string,
                                                      Json> *>> groups;
    for (const auto &kv : metrics->members()) {
        const std::string prefix =
            kv.first.substr(0, kv.first.find('.'));
        if (!groups.count(prefix))
            order.push_back(prefix);
        groups[prefix].push_back(&kv);
    }
    for (const auto &prefix : order) {
        const auto &rows = groups[prefix];
        const bool open = prefix != "loop";
        os << "<details" << (open ? " open" : "") << "><summary>"
           << htmlEscape(prefix) << " (" << rows.size()
           << ")</summary><table><tr><th>metric</th>"
              "<th class=\"num\">value</th></tr>";
        for (const auto *kv : rows)
            os << "<tr><td>" << htmlEscape(kv->first)
               << "</td><td class=\"num\">" << cellValue(kv->second)
               << "</td></tr>";
        os << "</table></details>";
    }
    os << "</section>\n";
}

void
writeHistogramsSection(std::ostream &os, const ReportData &d)
{
    const Json *hists = d.registryDoc.find("histograms");
    os << "<section id=\"histograms\"><h2>Histograms</h2>";
    if (!hists || hists->members().empty()) {
        os << "<p class=\"muted\">no histograms recorded</p>"
              "</section>\n";
        return;
    }
    os << "<div class=\"cards\">";
    const std::size_t kMaxBins = 64;
    for (const auto &kv : hists->members()) {
        const Json &h = kv.second;
        auto num = [&](const char *k) {
            const Json *v = h.find(k);
            return v && v->isNumber() ? v->asDouble() : 0.0;
        };
        // Percentiles of a never-observed histogram arrive as null
        // (undefined, not 0) — render them as such.
        auto pct = [&](const char *k) -> std::string {
            const Json *v = h.find(k);
            if (!v || v->kind() == Json::Kind::Null)
                return "null";
            return fmt(v->asDouble());
        };
        os << "<div class=\"card\"><div class=\"k\">"
           << htmlEscape(kv.first) << "</div>";
        if (const Json *bins = h.find("bins")) {
            os << histogramSvg(*bins, kMaxBins);
            if (bins->items().size() > kMaxBins)
                os << "<div class=\"mm\">first " << kMaxBins
                   << " of " << bins->items().size() << " bins</div>";
        }
        os << "<div class=\"v\">p50 " << pct("p50") << " &middot; p95 "
           << pct("p95") << " &middot; p99 " << pct("p99")
           << " <span class=\"mm\">mean " << fmt(num("mean"))
           << ", total " << fmt(num("total"))
           << "</span></div></div>";
    }
    os << "</div></section>\n";
}

void
writeScorecardSection(std::ostream &os, const ReportData &d)
{
    os << "<section id=\"scorecard\"><h2>Per-loop scorecard</h2>";
    const Json *loops = d.scorecard.kind() == Json::Kind::Object
                            ? d.scorecard.find("loops")
                            : nullptr;
    if (!loops) {
        os << "<p class=\"muted\">no scorecard attached; pass "
              "<code>--loops</code> JSON via <code>lbp_stats report "
              "--scorecard</code></p></section>\n";
        return;
    }
    auto topNum = [&](const char *k) {
        const Json *v = d.scorecard.find(k);
        return v && v->isNumber() ? v->asDouble() : 0.0;
    };
    const double fetched = topNum("ops_fetched");
    const double fromBuf = topNum("ops_from_buffer");
    os << "<p class=\"muted\">buffer " << fmt(topNum("buffer_ops"))
       << " ops &middot; " << fmt(fetched) << " ops fetched &middot; "
       << fmt(fromBuf) << " from buffer ("
       << fmt(fetched > 0 ? 100.0 * fromBuf / fetched : 0)
       << "%)</p>";
    os << "<table><tr><th class=\"num\">#</th><th>loop</th>"
          "<th>fate</th><th>reason</th><th class=\"num\">image"
          "</th><th class=\"num\">dyn ops</th><th class=\"num\">"
          "from buffer</th><th class=\"num\">missed ops</th>"
          "<th class=\"num\">energy nJ</th></tr>";
    int rank = 0;
    for (const auto &row : loops->items()) {
        auto field = [&](const char *k) -> const Json * {
            return row.find(k);
        };
        auto text = [&](const char *k) {
            const Json *v = field(k);
            if (!v)
                return std::string();
            return v->kind() == Json::Kind::String ? v->asString()
                                                   : v->dump();
        };
        const std::string fate = text("fate");
        const char *badge = fate == "buffered"
                                ? "ok"
                                : (fate == "rejected" ? "bad" : "");
        os << "<tr><td class=\"num\">" << ++rank << "</td><td>"
           << htmlEscape(text("name"));
        const Json *attempts = field("attempts");
        if (attempts && !attempts->items().empty()) {
            os << "<details><summary>" << attempts->items().size()
               << " attempt(s)</summary><ul>";
            for (const auto &a : attempts->items()) {
                auto at = [&](const char *k) {
                    const Json *v = a.find(k);
                    if (!v)
                        return std::string();
                    return v->kind() == Json::Kind::String
                               ? v->asString()
                               : v->dump();
                };
                os << "<li>" << htmlEscape(at("transform")) << ": "
                   << (a.find("applied") &&
                               a.find("applied")->asBool()
                           ? "applied"
                           : "skipped (" + htmlEscape(at("reason")) +
                                 ")")
                   << ", ops " << htmlEscape(at("ops_before"))
                   << " &rarr; " << htmlEscape(at("ops_after"));
                if (!at("note").empty())
                    os << " <span class=\"muted\">"
                       << htmlEscape(at("note")) << "</span>";
                os << "</li>";
            }
            os << "</ul></details>";
        }
        os << "</td><td><span class=\"badge " << badge << "\">"
           << htmlEscape(fate) << "</span></td><td>"
           << htmlEscape(text("reason")) << "</td><td class=\"num\">"
           << htmlEscape(text("image_ops"))
           << "</td><td class=\"num\">" << htmlEscape(text("dyn_ops"))
           << "</td><td class=\"num\">"
           << htmlEscape(text("ops_from_buffer"))
           << "</td><td class=\"num\">"
           << htmlEscape(text("missed_ops"))
           << "</td><td class=\"num\">"
           << htmlEscape(text("energy_nj")) << "</td></tr>";
    }
    os << "</table></section>\n";
}

/**
 * "Where the simulated cycles go": one stacked bar per loop (plus the
 * outside-any-loop row), segmented by CycleClass, widths scaled to
 * the workload's total simulated cycles. Data comes from the
 * scorecard JSON's cycle_stack blocks; a report generated from a run
 * without cycle accounting renders the placeholder.
 */
void
writeCyclesSection(std::ostream &os, const ReportData &d)
{
    const Json *cs = d.scorecard.kind() == Json::Kind::Object
                         ? d.scorecard.find("cycle_stack")
                         : nullptr;
    os << "<section id=\"cycles\"><h2>Where the simulated cycles go"
          "</h2>";
    const Json *total = cs ? cs->find("total_cycles") : nullptr;
    if (!cs || !total || !total->isNumber() ||
        total->asDouble() <= 0) {
        os << "<p class=\"muted\">no cycle stack in this document "
              "(run lacked cycle accounting)</p></section>\n";
        return;
    }
    const double totalCycles = total->asDouble();

    // Class order and names come from the workload stack's key order
    // (cycleRowToJson emits every class, enum-ordered).
    const Json *wl = cs->find("workload");
    std::vector<std::string> classes;
    if (wl)
        for (const auto &kv : wl->members())
            classes.push_back(kv.first);

    os << "<p class=\"muted\">" << fmt(totalCycles)
       << " simulated cycles, every one in exactly one class</p>";
    os << "<div class=\"legend\">";
    for (std::size_t k = 0; k < classes.size(); ++k)
        os << "<span class=\"sw cc" << k << "\"></span>"
           << htmlEscape(classes[k]);
    os << "</div>";

    auto stackedBar = [&](const std::string &label, const Json &row,
                          double rowTotal) {
        os << "<div class=\"barrow\"><div class=\"lbl\">"
           << htmlEscape(label) << "</div><div class=\"stack\">";
        for (std::size_t k = 0; k < classes.size(); ++k) {
            const Json *v = row.find(classes[k]);
            const double c =
                v && v->isNumber() ? v->asDouble() : 0.0;
            if (c <= 0)
                continue;
            os << "<div class=\"seg cc" << k << "\" style=\"width:"
               << fmt(100.0 * c / totalCycles) << "%\"><title>"
               << htmlEscape(classes[k]) << " : " << fmt(c)
               << "</title></div>";
        }
        os << "</div><div class=\"val\">" << fmt(rowTotal) << " ("
           << fmt(100.0 * rowTotal / totalCycles)
           << "%)</div></div>";
    };

    const Json *loops = d.scorecard.find("loops");
    if (loops) {
        for (const auto &row : loops->items()) {
            const Json *rc = row.find("cycle_stack");
            const Json *rt = row.find("total_cycles");
            if (!rc || !rt || !rt->isNumber())
                continue;
            const Json *name = row.find("name");
            stackedBar(name && name->kind() == Json::Kind::String
                           ? name->asString()
                           : std::string("?"),
                       *rc, rt->asDouble());
        }
    }
    if (const Json *outside = cs->find("outside")) {
        double t = 0;
        for (const auto &kv : outside->members())
            if (kv.second.isNumber())
                t += kv.second.asDouble();
        stackedBar("<outside any loop>", *outside, t);
    }
    os << "</section>\n";
}

void
writePhasesSection(std::ostream &os, const ReportData &d)
{
    const Json *metrics = d.registryDoc.find("metrics");
    struct Phase
    {
        std::string name;
        double ms;
    };
    std::vector<Phase> phases;
    const std::string prefix = "compile.phase.";
    if (metrics)
        for (const auto &kv : metrics->members()) {
            if (kv.first.rfind(prefix, 0) != 0)
                continue;
            if (kv.first.size() < 3 ||
                kv.first.compare(kv.first.size() - 3, 3, ".ms") != 0)
                continue;
            if (!kv.second.isNumber())
                continue;
            phases.push_back(
                {kv.first.substr(prefix.size(),
                                 kv.first.size() - prefix.size() - 3),
                 kv.second.asDouble()});
        }
    if (phases.empty()) {
        os << "<section id=\"phases\"><h2>Compile pipeline phases"
              "</h2><p class=\"muted\">no phase timers in this "
              "document</p></section>\n";
        return;
    }
    double maxMs = 0, totalMs = 0;
    for (const auto &p : phases) {
        maxMs = std::max(maxMs, p.ms);
        totalMs += p.ms;
    }
    os << "<section id=\"phases\"><h2>Compile pipeline phases</h2>"
       << "<p class=\"muted\">total " << fmt(totalMs) << " ms</p>";
    for (const auto &p : phases) {
        const double pct = maxMs > 0 ? 100.0 * p.ms / maxMs : 0;
        os << "<div class=\"barrow\"><div class=\"lbl\">"
           << htmlEscape(p.name)
           << "</div><div class=\"track\"><div class=\"bar\" "
              "style=\"width:"
           << fmt(pct) << "%\"></div></div><div class=\"val\">"
           << fmt(p.ms) << " ms</div></div>";
    }
    os << "</section>\n";
}

/**
 * "Where the host cycles go": the sampling self-profiler's region
 * split for the run that produced this report. Same .barrow bars as
 * the phase section, ranked by sample count, with the attribution
 * quality (fraction of samples landing inside a named region) in the
 * subtitle. A report generated without the profiler (LBP_PROF=OFF,
 * no timer support, or a pre-prof document) renders the placeholder.
 */
void
writeProfSection(std::ostream &os, const ReportData &d)
{
    const Json *regions = d.prof.kind() == Json::Kind::Object
                              ? d.prof.find("regions")
                              : nullptr;
    struct Region
    {
        std::string label;
        double count;
    };
    std::vector<Region> rows;
    if (regions)
        for (const auto &kv : regions->members())
            if (kv.second.isNumber() && kv.second.asDouble() > 0)
                rows.push_back({kv.first, kv.second.asDouble()});
    if (rows.empty()) {
        os << "<section id=\"prof\"><h2>Where the host cycles go"
              "</h2><p class=\"muted\">no self-profile in this "
              "document (profiler compiled out or sampling "
              "unavailable)</p></section>\n";
        return;
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Region &a, const Region &b) {
                         return a.count > b.count;
                     });
    double samples = 0, maxCount = 0;
    if (const Json *s = d.prof.find("samples"))
        samples = s->asDouble();
    for (const auto &r : rows)
        maxCount = std::max(maxCount, r.count);
    os << "<section id=\"prof\"><h2>Where the host cycles go</h2>"
       << "<p class=\"muted\">" << fmt(samples)
       << " samples, self-profiled while generating this report";
    if (const Json *af = d.prof.find("attributed_fraction"))
        os << " &middot; " << fmt(100.0 * af->asDouble())
           << "% attributed to named regions";
    // Dropped samples mean the path table overflowed: the split
    // below systematically under-counts whatever was dropped, so
    // surface the loss instead of hiding it.
    if (const Json *dr = d.prof.find("dropped"))
        if (dr->isNumber() && dr->asDouble() > 0)
            os << " &middot; " << fmt(dr->asDouble())
               << " samples dropped (path table full)";
    os << "</p>";
    for (const auto &r : rows) {
        const double pct =
            maxCount > 0 ? 100.0 * r.count / maxCount : 0;
        const double share =
            samples > 0 ? 100.0 * r.count / samples : 0;
        os << "<div class=\"barrow\"><div class=\"lbl\">"
           << htmlEscape(r.label)
           << "</div><div class=\"track\"><div class=\"bar\" "
              "style=\"width:"
           << fmt(pct) << "%\"></div></div><div class=\"val\">"
           << fmt(r.count) << " (" << fmt(share)
           << "%)</div></div>";
    }
    os << "</section>\n";
}

/**
 * Host hardware counters for the same run, from the perf_event_open
 * backend. Bars are the per-region cycle share; each row's value cell
 * carries the derived rates (IPC, branch-miss %, cache MPKI) when the
 * underlying counters were present. Reports from hosts without a PMU
 * (VMs, restricted perf_event_paranoid, LBP_PMU=OFF builds) render
 * the recorded reason instead, so "no data" is always distinguishable
 * from "forgot to measure".
 */
void
writePmuSection(std::ostream &os, const ReportData &d)
{
    const bool have = d.pmu.kind() == Json::Kind::Object;
    const Json *avail = have ? d.pmu.find("available") : nullptr;
    if (!avail || !avail->asBool()) {
        os << "<section id=\"pmu\"><h2>Host hardware counters"
              "</h2><p class=\"muted\">";
        const Json *reason = have ? d.pmu.find("reason") : nullptr;
        if (reason)
            os << "host pmu unavailable: "
               << htmlEscape(reason->asString());
        else
            os << "no host counters in this document";
        os << "</p></section>\n";
        return;
    }

    struct Row
    {
        std::string label;
        const Json *cells;
        double cycles;
    };
    std::vector<Row> rows;
    auto addRow = [&](const std::string &label, const Json *cells) {
        if (!cells || cells->kind() != Json::Kind::Object)
            return;
        const Json *cyc = cells->find("cycles");
        if (cyc && cyc->isNumber())
            rows.push_back({label, cells, cyc->asDouble()});
    };
    if (const Json *regions = d.pmu.find("regions"))
        for (const auto &kv : regions->members())
            addRow(kv.first, &kv.second);
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.cycles > b.cycles;
                     });
    addRow("untracked", d.pmu.find("untracked"));

    double totalCycles = 0;
    if (const Json *total = d.pmu.find("total"))
        if (const Json *cyc = total->find("cycles"))
            totalCycles = cyc->asDouble();
    double maxCycles = 0;
    for (const auto &r : rows)
        maxCycles = std::max(maxCycles, r.cycles);

    os << "<section id=\"pmu\"><h2>Host hardware counters</h2>"
       << "<p class=\"muted\">" << fmt(totalCycles)
       << " cycles measured via perf_event_open while generating "
          "this report";
    if (const Json *af = d.pmu.find("attributedCycleFraction"))
        os << " &middot; " << fmt(100.0 * af->asDouble())
           << "% attributed to named regions";
    os << "</p>";
    for (const auto &r : rows) {
        const double pct =
            maxCycles > 0 ? 100.0 * r.cycles / maxCycles : 0;
        const double share =
            totalCycles > 0 ? 100.0 * r.cycles / totalCycles : 0;
        os << "<div class=\"barrow\"><div class=\"lbl\">"
           << htmlEscape(r.label)
           << "</div><div class=\"track\"><div class=\"bar\" "
              "style=\"width:"
           << fmt(pct) << "%\"></div></div><div class=\"val\">"
           << fmt(share) << "% of cycles";
        if (const Json *ipc = r.cells->find("ipc"))
            os << " &middot; ipc " << fmt(ipc->asDouble());
        if (const Json *bm = r.cells->find("branchMissPct"))
            os << " &middot; br-miss " << fmt(bm->asDouble())
               << "%";
        if (const Json *mpki = r.cells->find("cacheMpki"))
            os << " &middot; " << fmt(mpki->asDouble())
               << " mpki";
        os << "</div></div>";
    }
    os << "</section>\n";
}

} // namespace

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

void
writeHtmlReport(std::ostream &os, const ReportData &data)
{
    os << "<!doctype html>\n<html lang=\"en\"><head>"
          "<meta charset=\"utf-8\">"
          "<meta name=\"viewport\" content=\"width=device-width, "
          "initial-scale=1\">"
          "<title>lbp flight recorder &mdash; "
       << htmlEscape(data.workload) << "</title><style>" << kCss
       << "</style></head><body><main>\n";
    os << "<h1>lbp flight recorder &mdash; "
       << htmlEscape(data.workload) << "</h1>\n";

    writeMetaSection(os, data);
    writeGateSection(os, data);
    writeTrajectories(os, data);
    writeMetricsSection(os, data);
    writeHistogramsSection(os, data);
    writeScorecardSection(os, data);
    writeCyclesSection(os, data);
    writePhasesSection(os, data);
    writeProfSection(os, data);
    writePmuSection(os, data);

    os << "<footer>generated by lbp_stats report &middot; "
       << htmlEscape(versionString())
       << " &middot; self-contained: no external fetches</footer>\n";
    os << "</main></body></html>\n";
}

} // namespace obs
} // namespace lbp
