/**
 * @file
 * lbp::obs::pmu — host hardware-counter attribution over the
 * self-profiler's region markers. Where obs/prof answers "where do
 * the host cycles go" by sampling, this module answers "why are they
 * slow there": per-region IPC, branch-miss rate, and cache-miss rate
 * read from the CPU's performance monitoring unit via
 * perf_event_open(2).
 *
 * Mechanism: a PmuSession opens one per-thread counter fd per
 * PmuCounter (independent events, never a group — eight hardware
 * events rarely co-schedule, and independent fds let the kernel
 * multiplex each on its own) and installs the obs/prof region hook.
 * On every ScopedRegion push/pop the hook reads the thread's
 * counters and charges the deltas to the region being left, scaled
 * by time_enabled/time_running when the kernel multiplexed the
 * event. Attribution therefore rides the *existing* markers — the
 * same interned region names the sampler reports — with no new
 * instrumentation sites.
 *
 * Graceful unavailability is part of the contract: on hosts without
 * the syscall, without a hardware PMU (containers, VMs), or with a
 * restrictive kernel.perf_event_paranoid, Snapshot::available is
 * false and Snapshot::reason says why — callers publish
 * pmu.available=0 and keep running, never fail (DESIGN.md §15).
 *
 * Overhead contract (mirrors LBP_PROF): compiled in by default
 * (LBP_PMU=1) but runtime-off until PmuSession::start(); while off
 * the only cost is the profiler's relaxed hook-pointer load per
 * region transition. -DLBP_PMU=0 stubs everything below, and the
 * session never writes any sim/registry counter in either mode, so
 * disabled runs are bit-identical (tests/test_obs_pmu.cc).
 */

#ifndef LBP_OBS_PMU_HH
#define LBP_OBS_PMU_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/** Compile-time toggle: -DLBP_PMU=0 stubs out the whole backend. */
#ifndef LBP_PMU
#define LBP_PMU 1
#endif

/** The backend is Linux-only; elsewhere the stubs stand in. */
#if LBP_PMU && !defined(__linux__)
#undef LBP_PMU
#define LBP_PMU 0
#endif

namespace lbp
{
namespace obs
{

class Json;

namespace pmu
{

/**
 * The counter set every session requests. Cycles is the anchor: if
 * it cannot be opened the session is unavailable; any other counter
 * failing to open (odd PMUs, paranoid sub-policies) is marked absent
 * in Snapshot::counterPresent and simply reported as missing.
 */
enum class PmuCounter : std::uint8_t
{
    Cycles,          ///< PERF_COUNT_HW_CPU_CYCLES
    Instructions,    ///< PERF_COUNT_HW_INSTRUCTIONS
    Branches,        ///< PERF_COUNT_HW_BRANCH_INSTRUCTIONS
    BranchMisses,    ///< PERF_COUNT_HW_BRANCH_MISSES
    CacheReferences, ///< PERF_COUNT_HW_CACHE_REFERENCES
    CacheMisses,     ///< PERF_COUNT_HW_CACHE_MISSES
    StalledFrontend, ///< PERF_COUNT_HW_STALLED_CYCLES_FRONTEND
    StalledBackend,  ///< PERF_COUNT_HW_STALLED_CYCLES_BACKEND
    Count,
};

constexpr std::size_t kNumPmuCounters =
    static_cast<std::size_t>(PmuCounter::Count);

/** Stable key segment for a counter ("cycles", "branchMisses", ...). */
const char *pmuCounterName(PmuCounter c);

using CounterRow = std::array<std::uint64_t, kNumPmuCounters>;

/** One region's accumulated counter deltas, all threads summed. */
struct PmuRegion
{
    std::string label; ///< same interned name obs/prof reports
    CounterRow counts{};
};

/** Aggregated session state; taken any time after start(). */
struct Snapshot
{
    bool available = false; ///< counters opened and attributable
    std::string reason;     ///< why not, when !available
    std::array<bool, kNumPmuCounters> counterPresent{};
    std::vector<PmuRegion> regions; ///< cycle-descending, named only
    CounterRow total{};     ///< named regions + untracked
    CounterRow untracked{}; ///< charged while no region was open

    /** Fraction of measured cycles charged to named regions. */
    double attributedCycleFraction() const
    {
        const std::uint64_t cyc =
            total[static_cast<std::size_t>(PmuCounter::Cycles)];
        if (cyc == 0)
            return 0.0;
        const std::uint64_t un =
            untracked[static_cast<std::size_t>(PmuCounter::Cycles)];
        return static_cast<double>(cyc - un) /
               static_cast<double>(cyc);
    }
};

/** True when the backend is compiled in (LBP_PMU=1, Linux). */
inline bool
compiledIn()
{
    return LBP_PMU != 0;
}

/**
 * A snapshot as the shared "pmu" JSON block (bench documents,
 * `lbp_stats pmu --json`): "available" plus either "reason" or the
 * per-region raw counts and derived rates. Works in stub builds
 * (available=false) so call sites need no #if.
 */
Json snapshotJson(const Snapshot &s);

/**
 * Human table of per-region host counters: cycles share, IPC,
 * branch-miss %, cache MPKI per region, then untracked and total
 * rows. Prints the unavailability reason instead when !available.
 */
void printSnapshotTable(std::ostream &os, const Snapshot &s);

#if LBP_PMU

/**
 * Process-wide counter session. All methods are thread-safe; at most
 * one session runs at a time. Threads join lazily: the first region
 * transition a thread makes while the session runs opens its own
 * counter fds (closed again when the thread exits).
 */
class PmuSession
{
  public:
    static PmuSession &instance();

    /**
     * Open the calling thread's counters, install the region hook,
     * and start charging deltas. False — with @p whyNot filled when
     * given — if already running or the cycles counter cannot be
     * opened (no syscall, no hardware PMU, perf_event_paranoid);
     * the failure reason is also kept for snapshot().reason.
     * Accumulated counts are reset on start.
     */
    bool start(std::string *whyNot = nullptr);

    /** Uninstall the hook and flush the calling thread's tail. */
    void stop();

    bool running() const;

    /** Zero accumulated counts; the session may keep running. */
    void reset();

    /** Aggregate all threads' per-region counts. */
    Snapshot snapshot() const;

  private:
    PmuSession() = default;
};

#else // !LBP_PMU — inert stubs, byte-identical call sites

class PmuSession
{
  public:
    static PmuSession &
    instance()
    {
        static PmuSession s;
        return s;
    }
    bool
    start(std::string *whyNot = nullptr)
    {
        if (whyNot)
            *whyNot = "pmu compiled out (built with -DLBP_PMU=OFF)";
        return false;
    }
    void stop() {}
    bool running() const { return false; }
    void reset() {}
    Snapshot
    snapshot() const
    {
        Snapshot s;
        s.reason = "pmu compiled out (built with -DLBP_PMU=OFF)";
        return s;
    }

  private:
    PmuSession() = default;
};

#endif // LBP_PMU

} // namespace pmu
} // namespace obs
} // namespace lbp

#endif // LBP_OBS_PMU_HH
