# Empty compiler generated dependencies file for example_collapse_walkthrough.
# This may be replaced when dependencies are built.
