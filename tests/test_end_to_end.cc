/**
 * @file
 * The system-level property: every Table-1 workload, compiled under
 * every configuration (Traditional/Aggressive x register/slot
 * predication x several buffer sizes), reproduces the interpreter's
 * golden checksum on the VLIW simulator, and the headline orderings
 * of the paper hold (aggressive buffers more, runs faster; buffer
 * issue is monotone in buffer size).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/compiler.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

class EndToEnd : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EndToEnd, AllConfigsReproduceGolden)
{
    Program prog = workloads::buildWorkload(GetParam());

    // Slot lowering and REGISTER-mode simulation are incompatible by
    // design (slot-routed defines bypass the predicate register
    // file), so each predication micro-architecture gets a matching
    // compilation.
    for (OptLevel lvl : {OptLevel::Traditional, OptLevel::Aggressive}) {
        for (PredMode mode : {PredMode::REGISTER, PredMode::SLOT}) {
            CompileOptions opts;
            opts.level = lvl;
            opts.slotLowering = mode == PredMode::SLOT;
            CompileResult cr;
            compileProgram(prog, opts, cr);
            for (int size : {32, 256, 2048}) {
                reallocateBuffers(cr, size);
                SimConfig sc;
                sc.bufferOps = size;
                sc.predMode = mode;
                VliwSim sim(cr.code, sc);
                const auto st = sim.run();
                EXPECT_EQ(st.checksum, cr.goldenChecksum)
                    << GetParam() << " level="
                    << (lvl == OptLevel::Aggressive ? "aggr" : "trad")
                    << " size=" << size << " mode="
                    << (mode == PredMode::SLOT ? "slot" : "reg");
            }
        }
    }
}

TEST_P(EndToEnd, AggressiveBuffersAtLeastAsMuch)
{
    Program prog = workloads::buildWorkload(GetParam());
    CompileOptions tr;
    tr.level = OptLevel::Traditional;
    CompileResult a;
    compileProgram(prog, tr, a);
    CompileOptions ag;
    ag.level = OptLevel::Aggressive;
    CompileResult b;
    compileProgram(prog, ag, b);

    SimConfig sc;
    sc.bufferOps = 256;
    sc.predMode = PredMode::SLOT;
    VliwSim simA(a.code, sc), simB(b.code, sc);
    const auto sa = simA.run();
    const auto sb = simB.run();
    EXPECT_GE(sb.bufferFraction() + 0.02, sa.bufferFraction());
    // The transformations trade fetched operations for cycles; allow
    // modest per-benchmark regressions (the paper's mpeg2enc/jpegenc
    // show the same effect) but nothing pathological.
    EXPECT_LE(sb.cycles, sa.cycles + sa.cycles / 4);
}

TEST_P(EndToEnd, BufferIssueMonotoneInSize)
{
    Program prog = workloads::buildWorkload(GetParam());
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    double last = -1;
    for (int size : {16, 64, 256, 1024, 2048}) {
        reallocateBuffers(cr, size);
        SimConfig sc;
        sc.bufferOps = size;
        sc.predMode = PredMode::SLOT;
        VliwSim sim(cr.code, sc);
        const auto st = sim.run();
        EXPECT_GE(st.bufferFraction() + 0.01, last)
            << GetParam() << " at size " << size;
        last = st.bufferFraction();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, EndToEnd,
    ::testing::Values("adpcm_enc", "adpcm_dec", "g724_enc", "g724_dec",
                      "jpeg_enc", "jpeg_dec", "mpeg2_enc", "mpeg2_dec",
                      "mpg123", "pgp_enc", "pgp_dec"));

TEST(EndToEndHeadline, AggregateShapesMatchPaper)
{
    // The four headline relations at a 256-op buffer, excluding
    // jpeg_enc and mpeg2_enc like the paper does:
    //  - transformed buffer issue averages high (paper 89%);
    //  - traditional averages low (paper 38.7%);
    //  - transformed is faster on average (paper 1.81x);
    //  - adpcm transformed exceeds 99%.
    double sumT = 0, sumA = 0, speedProd = 1;
    int n = 0;
    for (const auto &w : workloads::allWorkloads()) {
        if (w.name == "jpeg_enc" || w.name == "mpeg2_enc")
            continue;
        Program prog = workloads::buildWorkload(w.name);
        CompileOptions tr;
        tr.level = OptLevel::Traditional;
        CompileResult a;
        compileProgram(prog, tr, a);
        CompileOptions ag;
        ag.level = OptLevel::Aggressive;
        CompileResult b;
        compileProgram(prog, ag, b);
        SimConfig sc;
        sc.bufferOps = 256;
        sc.predMode = PredMode::SLOT;
        VliwSim simA(a.code, sc), simB(b.code, sc);
        const auto sa = simA.run();
        const auto sb = simB.run();
        sumT += sa.bufferFraction();
        sumA += sb.bufferFraction();
        speedProd *= static_cast<double>(sa.cycles) / sb.cycles;
        ++n;

        if (w.name == "adpcm_enc" || w.name == "adpcm_dec") {
            EXPECT_GT(sb.bufferFraction(), 0.99);
        }
        if (w.name == "g724_enc" || w.name == "g724_dec") {
            EXPECT_GT(sb.bufferFraction(), 0.90);
        }
    }
    const double avgT = sumT / n;
    const double avgA = sumA / n;
    EXPECT_LT(avgT, 0.55);  // paper: 38.7%
    EXPECT_GT(avgA, 0.80);  // paper: 89.0%
    EXPECT_GT(avgA, avgT * 1.5);
    const double geoSpeed = std::pow(speedProd, 1.0 / n);
    EXPECT_GT(geoSpeed, 1.3); // paper: 1.81
}

} // namespace
} // namespace lbp
