/**
 * @file
 * Deterministic synthetic input generation and IR-building helpers
 * shared by the Table-1 workloads. The paper's benchmarks consume
 * speech frames, images, video, and plaintext; we synthesize
 * deterministic equivalents (sine-plus-noise PCM, textured blocks,
 * pseudo-random plaintext) so every workload is reproducible and
 * checksummable.
 */

#ifndef LBP_WORKLOADS_INPUT_DATA_HH
#define LBP_WORKLOADS_INPUT_DATA_HH

#include <functional>

#include "ir/builder.hh"

namespace lbp
{
namespace workloads
{

/** Fill [base, base+2n) with 16-bit PCM (sine + noise). */
void fillPcm16(Program &prog, std::int64_t base, int n,
               std::uint64_t seed);

/** Fill [base, base+n) with pseudo-random bytes. */
void fillBytes(Program &prog, std::int64_t base, int n,
               std::uint64_t seed);

/** Fill n 32-bit words with values in [lo, hi]. */
void fillWords(Program &prog, std::int64_t base, int n,
               std::int64_t lo, std::int64_t hi, std::uint64_t seed);

/** Store n 32-bit constants from a table. */
void storeTable32(Program &prog, std::int64_t base, const int *table,
                  int n);

/**
 * Emit an if/else diamond at the current insertion point:
 *   if (x cond y) thenFn() else elseFn();
 * leaves the builder at the join block.
 */
void diamond(IRBuilder &b, CmpCond c, Operand x, Operand y,
             const std::function<void()> &thenFn,
             const std::function<void()> &elseFn);

/** Emit an if-then hammock (no else). */
void ifThen(IRBuilder &b, CmpCond c, Operand x, Operand y,
            const std::function<void()> &thenFn);

/**
 * Emit @p count filler ALU ops that survive optimization: they
 * accumulate into the registers of @p accs round-robin (so the
 * dependence chains stay short) and must be consumed afterwards.
 * Used to hit the paper's published per-loop operation counts in the
 * Post_Filter replica.
 */
void padOps(IRBuilder &b, int count, const std::vector<RegId> &accs);

} // namespace workloads
} // namespace lbp

#endif // LBP_WORKLOADS_INPUT_DATA_HH
