#include "ir/basic_block.hh"

#include <algorithm>

namespace lbp
{

std::vector<BlockId>
BasicBlock::successors() const
{
    std::vector<BlockId> succs;
    for (const auto &o : ops) {
        if (o.isBranchOp() && o.target != kNoBlock) {
            if (std::find(succs.begin(), succs.end(), o.target) ==
                succs.end()) {
                succs.push_back(o.target);
            }
        }
    }
    if (fallthrough != kNoBlock &&
        std::find(succs.begin(), succs.end(), fallthrough) == succs.end()) {
        succs.push_back(fallthrough);
    }
    return succs;
}

bool
BasicBlock::endsWithUnconditional() const
{
    if (ops.empty())
        return false;
    const Operation &last = ops.back();
    if (last.op == Opcode::RET)
        return true;
    if (last.op == Opcode::JUMP && !last.hasGuard())
        return true;
    return false;
}

const Operation *
BasicBlock::terminator() const
{
    if (!ops.empty() && (ops.back().isBranchOp() ||
                         ops.back().op == Opcode::RET)) {
        return &ops.back();
    }
    return nullptr;
}

Operation *
BasicBlock::terminator()
{
    return const_cast<Operation *>(
        static_cast<const BasicBlock *>(this)->terminator());
}

int
BasicBlock::sizeOps() const
{
    int n = 0;
    for (const auto &o : ops)
        if (o.op != Opcode::NOP)
            ++n;
    return n;
}

} // namespace lbp
