/**
 * @file
 * Loop-buffer model tests (paper §5, Table 3): residency table,
 * overlap invalidation, eviction accounting, and capacity limits.
 */

#include <gtest/gtest.h>

#include "sim/loop_buffer.hh"

namespace lbp
{
namespace
{

TEST(LoopBuffer, RecordThenResident)
{
    LoopBuffer buf(256);
    const LoopKey a{0, 1};
    EXPECT_FALSE(buf.isResident(a));
    buf.record(a, 0, 64);
    EXPECT_TRUE(buf.isResident(a));
    EXPECT_EQ(buf.residentCount(), 1);
    EXPECT_EQ(buf.recordings(), 1u);
}

TEST(LoopBuffer, DisjointImagesCohabit)
{
    LoopBuffer buf(256);
    const LoopKey a{0, 1}, b{0, 2}, c{0, 3};
    buf.record(a, 0, 100);
    buf.record(b, 100, 100);
    buf.record(c, 200, 56);
    EXPECT_TRUE(buf.isResident(a));
    EXPECT_TRUE(buf.isResident(b));
    EXPECT_TRUE(buf.isResident(c));
    EXPECT_EQ(buf.evictions(), 0u);
}

TEST(LoopBuffer, OverlapEvicts)
{
    LoopBuffer buf(256);
    const LoopKey a{0, 1}, b{0, 2};
    buf.record(a, 0, 100);
    buf.record(b, 50, 100); // overlaps [50,100)
    EXPECT_FALSE(buf.isResident(a));
    EXPECT_TRUE(buf.isResident(b));
    EXPECT_EQ(buf.evictions(), 1u);
}

TEST(LoopBuffer, ExactBoundaryNoEviction)
{
    LoopBuffer buf(256);
    const LoopKey a{0, 1}, b{0, 2};
    buf.record(a, 0, 128);
    buf.record(b, 128, 128);
    EXPECT_TRUE(buf.isResident(a));
    EXPECT_TRUE(buf.isResident(b));
}

TEST(LoopBuffer, ReRecordSameKeyMoves)
{
    LoopBuffer buf(256);
    const LoopKey a{0, 1};
    buf.record(a, 0, 64);
    buf.record(a, 128, 64); // same loop recorded elsewhere
    EXPECT_TRUE(buf.isResident(a));
    EXPECT_EQ(buf.residentCount(), 1);
    // Re-recording one's own key does not count as eviction.
    EXPECT_EQ(buf.evictions(), 0u);
}

TEST(LoopBuffer, CapacityEnforced)
{
    LoopBuffer buf(64);
    const LoopKey a{0, 1};
    EXPECT_DEATH(buf.record(a, 32, 64), "fit");
}

TEST(LoopBuffer, ClearDropsEverything)
{
    LoopBuffer buf(256);
    const LoopKey a{0, 1};
    buf.record(a, 0, 64);
    buf.clear();
    EXPECT_FALSE(buf.isResident(a));
    EXPECT_EQ(buf.residentCount(), 0);
}

TEST(LoopBuffer, KeysAreOrderedAndComparable)
{
    const LoopKey a{0, 1}, b{0, 2}, c{1, 0};
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b < c);
    EXPECT_TRUE(a == LoopKey({0, 1}));
}

} // namespace
} // namespace lbp
