/**
 * @file
 * If-conversion / hyperblock formation tests: diamonds, hammocks,
 * side exits, backedge normalization, merge points, eligibility
 * rejections, and randomized semantic-equivalence sweeps.
 */

#include <gtest/gtest.h>

#include "analysis/loop_info.hh"
#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "support/random.hh"
#include "transform/if_convert.hh"
#include "workloads/input_data.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** Loop over data with a sign diamond; returns an accumulator. */
Program
diamondLoopProgram(int n)
{
    Program prog;
    const auto data = prog.allocData(64 * 4);
    for (int i = 0; i < 64; ++i)
        prog.poke32(data + 4 * i, (i * 37) % 21 - 10);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, n, 1, [&](RegId i) {
        const RegId idx = b.and_(R(i), I(63));
        const RegId i4 = b.shl(R(idx), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        workloads::diamond(b, CmpCond::LT, R(v), I(0),
                           [&] { b.subTo(acc, R(acc), R(v)); },
                           [&] { b.addTo(acc, R(acc), R(v)); });
    });
    b.ret({R(acc)});
    return prog;
}

TEST(IfConvert, DiamondLoopBecomesSimple)
{
    Program prog = diamondLoopProgram(40);
    Interpreter pre(prog);
    const auto before = pre.run();

    auto st = ifConvertLoops(prog);
    EXPECT_EQ(st.loopsConverted, 1);
    EXPECT_GT(st.predDefsInserted, 0);
    VerifyOptions vo;
    vo.allowInternalBranches = true;
    verifyOrDie(prog, vo);

    LoopInfo li(prog.functions[prog.entryFunc]);
    ASSERT_EQ(li.loops().size(), 1u);
    EXPECT_TRUE(li.isSimple(0));
    EXPECT_TRUE(prog.functions[prog.entryFunc]
                    .blocks[li.loops()[0].header].isHyperblock);

    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
}

TEST(IfConvert, DualDestDefineUsed)
{
    Program prog = diamondLoopProgram(10);
    ifConvertLoops(prog);
    // The diamond should compile to a single ut/uf dual define.
    bool dual = false;
    for (const auto &bb : prog.functions[prog.entryFunc].blocks) {
        if (bb.dead)
            continue;
        for (const auto &op : bb.ops) {
            if (op.op == Opcode::PRED_DEF && op.dsts.size() == 2 &&
                op.defKind0 == PredDefKind::UT &&
                op.defKind1 == PredDefKind::UF) {
                dual = true;
            }
        }
    }
    EXPECT_TRUE(dual);
}

TEST(IfConvert, JoinBlockStaysUnguarded)
{
    // Ops after the diamond join (on every path) must not be guarded;
    // otherwise the backedge gets a guard and counted-loop conversion
    // would fail.
    Program prog = diamondLoopProgram(10);
    ifConvertLoops(prog);
    LoopInfo li(prog.functions[prog.entryFunc]);
    const BasicBlock &hb =
        prog.functions[prog.entryFunc].blocks[li.loops()[0].header];
    const Operation *term = hb.terminator();
    ASSERT_NE(term, nullptr);
    EXPECT_FALSE(term->hasGuard());
}

TEST(IfConvert, SideExitBecomesGuardedJump)
{
    // while-style loop with a conditional break.
    Program prog;
    const auto data = prog.allocData(64 * 4);
    for (int i = 0; i < 64; ++i)
        prog.poke32(data + 4 * i, i);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    const RegId i = b.iconst(0);
    const BlockId head = b.makeBlock("head");
    const BlockId out = b.makeBlock("out");
    b.fallTo(head);
    b.at(head);
    const RegId i4 = b.shl(R(i), I(2));
    const RegId v = b.loadW(R(dp), R(i4));
    b.addTo(acc, R(acc), R(v));
    b.br(CmpCond::GT, R(acc), I(100), out); // break
    const BlockId latch = b.makeBlock("latch");
    b.fallTo(latch);
    b.at(latch);
    b.addTo(i, R(i), I(1));
    b.br(CmpCond::LT, R(i), I(64), head);
    b.fallTo(out);
    b.at(out);
    b.ret({R(acc)});

    Interpreter pre(prog);
    const auto before = pre.run();
    auto st = ifConvertLoops(prog);
    EXPECT_EQ(st.loopsConverted, 1);
    EXPECT_EQ(st.sideExits, 1);
    VerifyOptions vo;
    vo.allowInternalBranches = true;
    verifyOrDie(prog, vo);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
    // A guarded JUMP must exist mid-hyperblock.
    bool guardedJump = false;
    for (const auto &bb : prog.functions[f].blocks) {
        if (bb.dead || !bb.isHyperblock)
            continue;
        for (const auto &op : bb.ops)
            if (op.op == Opcode::JUMP && op.hasGuard())
                guardedJump = true;
    }
    EXPECT_TRUE(guardedJump);
}

TEST(IfConvert, CallInBodyRejected)
{
    Program prog;
    const FuncId g = prog.newFunction("g");
    {
        IRBuilder b(prog, g);
        prog.functions[g].numReturns = 1;
        b.ret({I(1)});
    }
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 4, 1, [&](RegId i) {
        workloads::diamond(b, CmpCond::LT, R(i), I(2),
                           [&] {
                               auto r = b.call(g, {}, 1);
                               b.addTo(acc, R(acc), R(r[0]));
                           },
                           [&] { b.addTo(acc, R(acc), I(5)); });
    });
    b.ret({R(acc)});
    auto st = ifConvertLoops(prog);
    EXPECT_EQ(st.loopsConverted, 0);
}

TEST(IfConvert, SizeBudgetRespected)
{
    Program prog = diamondLoopProgram(10);
    IfConvertOptions opts;
    opts.maxOps = 4; // far below the body size
    auto st = ifConvertLoops(prog, opts);
    EXPECT_EQ(st.loopsConverted, 0);
}

TEST(IfConvert, NestedLoopBodySkipped)
{
    // A loop containing another loop cannot be if-converted until the
    // inner one is gone.
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 4, 1, [&](RegId) {
        b.forLoop(0, 100, 1, [&](RegId j) { // too big to peel
            b.addTo(acc, R(acc), R(j));
        });
    });
    b.ret({R(acc)});
    auto st = ifConvertLoops(prog);
    // Only the inner (childless, branch-free) loop is "converted" —
    // it is already simple, so nothing happens at all.
    EXPECT_EQ(st.loopsConverted, 0);
}

/**
 * Property sweep: random loop bodies made of nested diamonds and
 * hammocks must if-convert to semantically identical hyperblocks.
 */
TEST(IfConvert, RandomControlFlowEquivalence)
{
    Rng rng(777);
    for (int trial = 0; trial < 40; ++trial) {
        Program prog;
        const auto data = prog.allocData(256);
        prog.checksumBase = data;
        prog.checksumSize = 256;
        const FuncId f = prog.newFunction("main");
        prog.entryFunc = f;
        IRBuilder b(prog, f);
        const RegId dp = b.iconst(data);
        const RegId acc = b.iconst(rng.nextRange(-5, 5));
        const RegId aux = b.iconst(3);
        const int depth = 1 + static_cast<int>(rng.nextBelow(3));

        std::function<void(int, RegId)> genBody =
            [&](int d, RegId idx) {
                const CmpCond conds[] = {CmpCond::LT, CmpCond::GE,
                                         CmpCond::EQ, CmpCond::NE};
                const CmpCond c = conds[rng.nextBelow(4)];
                const std::int64_t k = rng.nextRange(0, 8);
                if (d <= 0 || rng.chance(0.3)) {
                    b.addTo(acc, R(acc), R(idx));
                    return;
                }
                if (rng.chance(0.5)) {
                    workloads::diamond(
                        b, c, R(idx), I(k),
                        [&] {
                            b.addTo(acc, R(acc), I(1));
                            genBody(d - 1, idx);
                        },
                        [&] {
                            b.binTo(Opcode::XOR, aux, R(aux), R(idx));
                            genBody(d - 1, idx);
                        });
                } else {
                    workloads::ifThen(b, c, R(idx), I(k), [&] {
                        b.mulTo(aux, R(aux), I(3));
                        b.binTo(Opcode::AND, aux, R(aux),
                                I(0xffff));
                        genBody(d - 1, idx);
                    });
                }
            };

        b.forLoop(0, 12, 1, [&](RegId i) { genBody(depth, i); });
        const RegId sum = b.add(R(acc), R(aux));
        b.storeW(R(dp), I(0), R(sum));
        b.ret({R(sum)});

        // Count loop-body blocks before conversion: a random body
        // that degenerated to straight-line code is already simple.
        int preBlocks = 0;
        for (const auto &bb : prog.functions[f].blocks)
            if (!bb.dead)
                ++preBlocks;
        Interpreter pre(prog);
        const auto before = pre.run();
        auto st = ifConvertLoops(prog);
        if (preBlocks > 3) {
            EXPECT_GE(st.loopsConverted, 1) << "trial " << trial;
        }
        VerifyOptions vo;
        vo.allowInternalBranches = true;
        verifyOrDie(prog, vo);
        Interpreter post(prog);
        const auto after = post.run();
        EXPECT_EQ(before.checksum, after.checksum)
            << "trial " << trial;
        EXPECT_EQ(before.returns, after.returns)
            << "trial " << trial;
    }
}

} // namespace
} // namespace lbp
