/**
 * @file
 * Analytic SRAM read-energy model in the spirit of CACTI 2.0 (paper
 * §7.2). The paper's only consumed output is the per-access energy
 * ratio between the global instruction memory and the loop buffer, so
 * this model uses a compact scaling law —
 *
 *     E(bytes, ports) = E0 * (bytes / refBytes)^sizeExp * ports^portExp
 *
 * — with sizeExp = 0.5 (bitline/wordline lengths grow with the square
 * root of capacity in a square array) and portExp calibrated so that
 * a 512 KB 2-RW-port memory costs exactly 41.8x more per read than a
 * 1 KB (256 x 32-bit operations) single-port buffer, the 0.13 um
 * CACTI result the paper reports.
 */

#ifndef LBP_POWER_CACTI_LITE_HH
#define LBP_POWER_CACTI_LITE_HH

#include <cstdint>

namespace lbp
{

/** Analytic SRAM read-energy model. */
class CactiLite
{
  public:
    CactiLite();

    /** Read energy (nJ) of one access to a (bytes, ports) SRAM. */
    double readEnergy(double bytes, int ports) const;

    /** Energy of one 32-bit op fetch from the global memory. */
    double memoryFetchEnergy() const;

    /** Energy of one op fetch from a buffer of @p bufferOps ops. */
    double bufferFetchEnergy(int bufferOps) const;

    /** The calibrated memory/buffer per-access ratio at 256 ops. */
    double calibratedRatio() const;

    // Model constants (exposed for tests and documentation).
    static constexpr double kMemBytes = 512.0 * 1024.0;
    static constexpr int kMemPorts = 2;
    static constexpr double kRefBufferOps = 256.0;
    static constexpr double kOpBytes = 4.0;
    static constexpr double kTargetRatio = 41.8;
    static constexpr double kSizeExp = 0.5;

  private:
    double e0_ = 1.0;      ///< nJ at the reference buffer size
    double portExp_ = 1.0; ///< calibrated
};

} // namespace lbp

#endif // LBP_POWER_CACTI_LITE_HH
