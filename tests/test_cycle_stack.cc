/**
 * @file
 * CycleStack unit tests: the row/charge mechanics, the retire-time
 * uncharge drain order, slack reclassification, and the replay
 * collapse — the pieces the engine hooks compose. The end-to-end
 * closure invariants are asserted per workload in
 * test_engine_differential.cc and test_loop_report.cc.
 */

#include <gtest/gtest.h>

#include "obs/cycle_stack.hh"

namespace lbp
{
namespace
{

using obs::CycleClass;
using obs::CycleRow;
using obs::CycleStack;

TEST(CycleStack, ChargeRowsAndTotals)
{
    CycleStack cs;
    cs.reset(2); // loops 0 and 1, plus the outside row
    EXPECT_EQ(cs.numRows(), 3u);
    EXPECT_EQ(cs.totalCycles(), 0u);

    cs.charge(-1, CycleClass::IssueFromMemory, 5);
    cs.charge(0, CycleClass::IssueFromBuffer, 7);
    cs.charge(1, CycleClass::TakenBranchPenalty, 2);
    cs.charge(1, CycleClass::TakenBranchPenalty, 1);

    EXPECT_EQ(cs.row(-1)[static_cast<std::size_t>(
                  CycleClass::IssueFromMemory)],
              5u);
    EXPECT_EQ(cs.row(0)[static_cast<std::size_t>(
                  CycleClass::IssueFromBuffer)],
              7u);
    EXPECT_EQ(cs.row(1)[static_cast<std::size_t>(
                  CycleClass::TakenBranchPenalty)],
              3u);

    const CycleRow t = cs.totals();
    EXPECT_EQ(t[static_cast<std::size_t>(CycleClass::IssueFromMemory)],
              5u);
    EXPECT_EQ(cs.totalCycles(), 15u);
}

TEST(CycleStack, UnchargeDrainsMostSpecificIssueFirst)
{
    CycleStack cs;
    cs.reset(1);
    cs.charge(0, CycleClass::IssueFromMemory, 10);
    cs.charge(0, CycleClass::IssueFromBuffer, 4);
    cs.charge(0, CycleClass::IssueFromTraceReplay, 3);

    // 5 cycles drain replay (3) then buffer (2); memory untouched.
    cs.unchargeIssue(0, 5);
    const CycleRow &r = cs.row(0);
    EXPECT_EQ(r[static_cast<std::size_t>(
                  CycleClass::IssueFromTraceReplay)],
              0u);
    EXPECT_EQ(r[static_cast<std::size_t>(CycleClass::IssueFromBuffer)],
              2u);
    EXPECT_EQ(r[static_cast<std::size_t>(CycleClass::IssueFromMemory)],
              10u);

    // Draining past all issue credit stops at zero.
    cs.unchargeIssue(0, 100);
    EXPECT_EQ(cs.totalCycles(), 0u);
}

TEST(CycleStack, ReclassifySlackMovesIssueIntoSlack)
{
    CycleStack cs;
    cs.reset(1);
    cs.charge(0, CycleClass::IssueFromBuffer, 6);
    cs.charge(0, CycleClass::IssueFromTraceReplay, 2);

    cs.reclassifySlack(0, 5); // replay 2, then buffer 3
    const CycleRow &r = cs.row(0);
    EXPECT_EQ(r[static_cast<std::size_t>(CycleClass::SchedulerSlack)],
              5u);
    EXPECT_EQ(r[static_cast<std::size_t>(
                  CycleClass::IssueFromTraceReplay)],
              0u);
    EXPECT_EQ(r[static_cast<std::size_t>(CycleClass::IssueFromBuffer)],
              3u);
    // Reclassification conserves the total.
    EXPECT_EQ(cs.totalCycles(), 8u);
}

TEST(CycleStack, CollapseReplayFoldsIntoBuffer)
{
    CycleRow r{};
    r[static_cast<std::size_t>(CycleClass::IssueFromBuffer)] = 4;
    r[static_cast<std::size_t>(CycleClass::IssueFromTraceReplay)] = 9;
    r[static_cast<std::size_t>(CycleClass::CallReturnPenalty)] = 1;

    const CycleRow c = CycleStack::collapseReplay(r);
    EXPECT_EQ(c[static_cast<std::size_t>(CycleClass::IssueFromBuffer)],
              13u);
    EXPECT_EQ(c[static_cast<std::size_t>(
                  CycleClass::IssueFromTraceReplay)],
              0u);
    EXPECT_EQ(
        c[static_cast<std::size_t>(CycleClass::CallReturnPenalty)],
        1u);
}

TEST(CycleStack, ClassNamesAreStableTokens)
{
    EXPECT_STREQ(obs::cycleClassName(CycleClass::IssueFromMemory),
                 "issueFromMemory");
    EXPECT_STREQ(obs::cycleClassName(CycleClass::IssueFromTraceReplay),
                 "issueFromTraceReplay");
    EXPECT_STREQ(obs::cycleClassName(CycleClass::SchedulerSlack),
                 "schedulerSlack");
}

} // namespace
} // namespace lbp
