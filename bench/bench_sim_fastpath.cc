/**
 * @file
 * Simulator fast-path sweep harness: runs the full Figure-7 style
 * design-space sweep — every registry workload x both optimization
 * levels x both predication modes x the figure buffer sizes — twice:
 *
 *  reference path  the pre-fast-path cost model: every sweep point
 *                  recompiles its program from scratch and simulates
 *                  on the reference interpreter, strictly serially;
 *  fast path       the new cost model: compiles come from the
 *                  (name, level, mode) cache, simulation uses the
 *                  decoded engine, and independent (workload, level,
 *                  mode) tasks run concurrently on a thread pool
 *                  (the 8-size buffer sweep inside one task stays
 *                  serial because it mutates the shared
 *                  CompileResult via reallocateBuffers).
 *
 * Every point's cycles and checksum are asserted identical between
 * the two passes, so the harness is also an end-to-end equivalence
 * check of the decoded engine.
 *
 * The fast pass also aggregates the decoded engine's trace-cache
 * counters across every sweep point into the JSON's "trace_cache"
 * block: per-reason bailout counts and the replay-coverage fraction
 * (replayed ops / all buffer-issued ops). These are deterministic
 * functions of the sweep, so the history gate compares them exactly.
 *
 * Usage: bench_sim_fastpath [--quick] [--json[=PATH]]
 *                           [--history[=PATH]] [--threads=N] [--prof]
 *                           [--pmu]
 *   --quick        3 workloads, 2 buffer sizes (smoke / ctest perf)
 *   --json[=P]     write machine-readable timings (default path
 *                  BENCH_sim_fastpath.json in the working directory)
 *   --history[=P]  also append the flattened document to the
 *                  BENCH_history.jsonl timeline (implies --json)
 *   --threads=N    thread-pool size (default: hardware concurrency)
 *   --prof         sample the whole run with the lbp::obs::prof
 *                  self-profiler and print the region split (host
 *                  wall time only — never part of the JSON)
 *   --pmu          attribute host hardware counters (IPC,
 *                  branch/cache misses) to the same regions; the
 *                  "pmu" JSON block is host-variant, recorded but
 *                  never gated
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "obs/json.hh"
#include "obs/prof.hh"
#include "sim/decoded.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

using namespace lbp;
using namespace lbp::bench;

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

const char *
levelName(OptLevel l)
{
    return l == OptLevel::Aggressive ? "aggressive" : "traditional";
}

const char *
modeName(PredMode m)
{
    return m == PredMode::SLOT ? "slot" : "register";
}

/** One (workload, level, mode) compile unit of the sweep. */
struct SweepTask
{
    std::string workload;
    OptLevel level;
    PredMode mode;
    int firstPoint = 0; ///< index of this task's first sweep point
};

/** One simulated (task, bufferOps) point, measured in both passes. */
struct SweepPoint
{
    int task = 0;
    int bufferOps = 0;
    std::uint64_t cycles = 0;
    std::uint64_t checksum = 0;
    double bufferFraction = 0;
    double refMs = 0;  ///< fresh compile + reference-engine simulate
    double fastMs = 0; ///< cached compile + decoded-engine simulate
};

/** The reference path: recompile per point, reference interpreter. */
void
runReferencePoint(const SweepTask &t, SweepPoint &p)
{
    Program prog = workloads::buildWorkload(t.workload);
    CompileOptions opts;
    opts.level = t.level;
    opts.slotLowering =
        t.level != OptLevel::Aggressive || t.mode == PredMode::SLOT;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    const SimStats st =
        simulate(cr, p.bufferOps, t.mode, SimEngine::REFERENCE);
    p.cycles = st.cycles;
    p.checksum = st.checksum;
    p.bufferFraction = st.bufferFraction();
}

/**
 * The fast path body for one task: cached compile, decoded engine,
 * batched over the buffer-size sweep — the program is predecoded once
 * per task and every size point reuses the shared image, rebinding
 * only the buffer-allocation-dependent fields. Per-point time
 * therefore measures reallocation + rebind + simulation, which is the
 * steady state every figure bench sweep runs in.
 */
/** Per-task sweep aggregates, merged after the pool drains. */
struct TaskAgg
{
    TraceCacheStats tc;
    obs::CycleRow cycles{};
    std::uint64_t opsFromBuffer = 0;
};

void
runFastTask(const SweepTask &t, std::vector<SweepPoint> &points,
            int nSizes, TaskAgg &agg)
{
    // Pool threads enter the profiler here: the marker registers the
    // thread (arming its sampling timer when a --prof run is live)
    // and tags time outside the deeper sim regions as harness work.
    obs::prof::ScopedRegion profRegion(obs::prof::Region::Bench);
    CompileResult &cr = compileBench(t.workload, t.level, t.mode);
    DecodedImage img = buildDecodedImage(cr.code);
    for (int i = 0; i < nSizes; ++i) {
        SweepPoint &p = points[t.firstPoint + i];
        obs::CycleStack cs;
        const auto t0 = Clock::now();
        const SimStats st =
            simulateShared(cr, img, p.bufferOps, t.mode, &agg.tc,
                           &cs);
        p.fastMs = msSince(t0);
        agg.opsFromBuffer += st.opsFromBuffer;
        const obs::CycleRow row = cs.totals();
        for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k)
            agg.cycles[k] += row[k];
        LBP_ASSERT(st.cycles == p.cycles &&
                       st.checksum == p.checksum,
                   "decoded engine diverged from reference for ",
                   t.workload, " at bufferOps=", p.bufferOps);
    }
}

/** Per-workload replay aggregates (all levels/modes/sizes merged). */
struct WorkloadReplay
{
    std::uint64_t replayedOps = 0;
    std::uint64_t opsFromBuffer = 0;
};

void
writeJson(const std::string &path, const std::string &historyPath,
          const std::vector<std::string> &names,
          const std::vector<int> &sizes,
          const std::vector<SweepTask> &tasks,
          const std::vector<SweepPoint> &points, double refWallMs,
          double fastWallMs, double refSimMs, double fastSimMs,
          int threads, bool quick, const TraceCacheStats &tc,
          std::uint64_t fastOpsFromBuffer,
          const std::vector<WorkloadReplay> &perWorkload,
          const obs::CycleRow &cycles, obs::Json pmu)
{
    using obs::Json;

    Json doc = benchJsonDoc("sim_fastpath");

    Json config = Json::object();
    config.set("quick", Json::boolean(quick));
    config.set("threads", Json::integer(threads));
    Json wl = Json::array();
    for (const auto &n : names)
        wl.push(Json::str(n));
    config.set("workloads", wl);
    Json bs = Json::array();
    for (int s : sizes)
        bs.push(Json::integer(s));
    config.set("buffer_sizes", bs);
    doc.set("config", config);

    Json refPath = Json::object();
    refPath.set("description",
                Json::str("fresh compile per point, reference "
                          "engine, serial"));
    refPath.set("wallMs", Json::number(refWallMs));
    doc.set("referencePath", refPath);

    Json fastPath = Json::object();
    fastPath.set("description",
                 Json::str("cached compile, decoded engine, thread "
                           "pool"));
    fastPath.set("wallMs", Json::number(fastWallMs));
    doc.set("fastPath", fastPath);

    doc.set("speedup", Json::number(refWallMs / fastWallMs));

    Json simOnly = Json::object();
    simOnly.set("referenceMs", Json::number(refSimMs));
    simOnly.set("decodedMs", Json::number(fastSimMs));
    simOnly.set("speedup", Json::number(refSimMs / fastSimMs));
    doc.set("simOnly", simOnly);

    // Trace-cache aggregate over the whole fast pass. Every leaf is
    // a deterministic function of the sweep (counters, not timings),
    // so the history gate holds them exactly: a bailout count or the
    // replay-coverage fraction moving is a behavior change, never
    // noise.
    Json tcj = Json::object();
    tcj.set("builds", Json::uinteger(tc.builds));
    tcj.set("replays", Json::uinteger(tc.replays));
    tcj.set("bailouts", Json::uinteger(tc.bailouts));
    tcj.set("invalidations", Json::uinteger(tc.invalidations));
    tcj.set("replayed_iterations",
            Json::uinteger(tc.replayedIterations));
    tcj.set("replayed_ops", Json::uinteger(tc.replayedOps));
    tcj.set("ops_from_buffer", Json::uinteger(fastOpsFromBuffer));
    tcj.set("replay_coverage",
            Json::number(fastOpsFromBuffer
                             ? static_cast<double>(tc.replayedOps) /
                                   static_cast<double>(
                                       fastOpsFromBuffer)
                             : 0.0));
    Json bail = Json::object();
    for (std::size_t i =
             static_cast<std::size_t>(TraceBailoutReason::Unknown);
         i < static_cast<std::size_t>(TraceBailoutReason::Count);
         ++i)
        bail.set(traceBailoutReasonName(
                     static_cast<TraceBailoutReason>(i)),
                 Json::uinteger(tc.bailoutsBy[i]));
    tcj.set("bailout", bail);
    // Predicated-tier split (schema v6): the share of the aggregate
    // above that ran through guarded/multi-control-op replay traces.
    Json pr = Json::object();
    pr.set("builds", Json::uinteger(tc.predReplay.builds));
    pr.set("replays", Json::uinteger(tc.predReplay.replays));
    pr.set("iterations", Json::uinteger(tc.predReplay.iterations));
    pr.set("ops", Json::uinteger(tc.predReplay.ops));
    pr.set("side_exits", Json::uinteger(tc.predReplay.sideExits));
    pr.set("backedge_fallthroughs",
           Json::uinteger(tc.predReplay.backedgeFallthroughs));
    pr.set("mid_engagements",
           Json::uinteger(tc.predReplay.midEngagements));
    tcj.set("pred_replay", pr);
    // Per-workload replay coverage (all levels/modes/sizes merged):
    // the drill-down view behind the aggregate above. The whole
    // "per_workload" namespace is classed PerPoint by the history
    // gate — recorded for inspection, never gated — because adding
    // or renaming a workload would otherwise break every old record;
    // the gated signal is the aggregate replay_coverage.
    Json perWl = Json::object();
    for (std::size_t i = 0; i < names.size(); ++i) {
        const WorkloadReplay &w = perWorkload[i];
        Json row = Json::object();
        row.set("replayed_ops", Json::uinteger(w.replayedOps));
        row.set("ops_from_buffer",
                Json::uinteger(w.opsFromBuffer));
        row.set("replay_coverage",
                Json::number(w.opsFromBuffer
                                 ? static_cast<double>(
                                       w.replayedOps) /
                                       static_cast<double>(
                                           w.opsFromBuffer)
                                 : 0.0));
        perWl.set(names[i], row);
    }
    tcj.set("per_workload", perWl);
    doc.set("trace_cache", tcj);

    // Closed cycle accounting over every fast-pass point: the
    // per-class split of the sweep's total simulated cycles
    // (decoded engine, trace cache on).
    doc.set("cycle_stack", cycleStackJson(cycles));

    // Host-variant counters (PerPoint: recorded, never gated).
    doc.set("pmu", std::move(pmu));

    Json pts = Json::array();
    for (const SweepPoint &p : points) {
        const SweepTask &t = tasks[p.task];
        Json row = Json::object();
        row.set("workload", Json::str(t.workload));
        row.set("level", Json::str(levelName(t.level)));
        row.set("predMode", Json::str(modeName(t.mode)));
        row.set("bufferOps", Json::integer(p.bufferOps));
        row.set("cycles", Json::uinteger(p.cycles));
        row.set("bufferFraction", Json::number(p.bufferFraction));
        row.set("referenceMs", Json::number(p.refMs));
        row.set("fastMs", Json::number(p.fastMs));
        pts.push(row);
    }
    doc.set("points", pts);

    writeBenchJson(path, doc);
    if (!historyPath.empty())
        appendBenchHistory(historyPath, doc);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions o;
    if (!parseBenchOptions(argc, argv,
                           kBenchFlagQuick | kBenchFlagJson |
                               kBenchFlagHistory |
                               kBenchFlagThreads | kBenchFlagProf |
                               kBenchFlagPmu,
                           "BENCH_sim_fastpath.json", o))
        return 2;
    if (o.prof && !obs::prof::compiledIn()) {
        std::fprintf(stderr, "--prof: profiler compiled out "
                             "(built with -DLBP_PROF=OFF)\n");
        return 1;
    }
    if (o.prof &&
        !obs::prof::Profiler::instance().start()) {
        std::fprintf(stderr, "--prof: cannot arm the sampling "
                             "timer on this system\n");
        return 1;
    }
    startBenchPmu(o);

    // Fail on an unwritable JSON path before the sweep, not after.
    if (o.json) {
        std::FILE *f = std::fopen(o.jsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s for writing\n",
                         o.jsonPath.c_str());
            return 1;
        }
        std::fclose(f);
    }

    std::vector<std::string> names = benchNames();
    std::vector<int> sizes = figureBufferSizes();
    if (o.quick) {
        names.resize(std::min<std::size_t>(names.size(), 3));
        sizes = {32, 256};
    }

    std::vector<SweepTask> tasks;
    std::vector<SweepPoint> points;
    for (const auto &name : names) {
        for (OptLevel lvl :
             {OptLevel::Traditional, OptLevel::Aggressive}) {
            for (PredMode mode :
                 {PredMode::SLOT, PredMode::REGISTER}) {
                SweepTask t;
                t.workload = name;
                t.level = lvl;
                t.mode = mode;
                t.firstPoint = static_cast<int>(points.size());
                for (int size : sizes) {
                    SweepPoint p;
                    p.task = static_cast<int>(tasks.size());
                    p.bufferOps = size;
                    points.push_back(p);
                }
                tasks.push_back(std::move(t));
            }
        }
    }

    std::printf("=== Simulator fast-path sweep: %zu points "
                "(%zu workloads x 2 levels x 2 pred modes x %zu "
                "buffer sizes) ===\n\n",
                points.size(), names.size(), sizes.size());

    // Pass 1 — reference path. Also record sim-only time per point
    // (excluding the per-point recompile) so the decoded engine's
    // intrinsic win is reported separately from the cache's.
    std::printf("reference path (serial, per-point compile, "
                "reference engine)...\n");
    double refSimMs = 0;
    const auto ref0 = Clock::now();
    for (const auto &t : tasks) {
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            SweepPoint &p = points[t.firstPoint + i];
            const auto t0 = Clock::now();
            runReferencePoint(t, p);
            p.refMs = msSince(t0);
        }
    }
    const double refWallMs = msSince(ref0);
    // Sim-only reference time, measured on the already-compiled
    // cached programs (same binaries the fast pass will use).
    for (const auto &t : tasks) {
        CompileResult &cr = compileBench(t.workload, t.level, t.mode);
        for (int size : sizes) {
            const auto t0 = Clock::now();
            simulate(cr, size, t.mode, SimEngine::REFERENCE);
            refSimMs += msSince(t0);
        }
    }

    // Pass 2 — fast path: pooled tasks, cached compiles, decoded
    // engine. The compile cache is warm at this point, which is
    // exactly the steady state the figure benches run in (every
    // figure reuses the same compilations); the cold-cache cost is
    // what pass 1 measured.
    ThreadPool pool(o.threads);
    std::printf("fast path (%d threads, cached compile, decoded "
                "engine)...\n\n",
                pool.threadCount());
    const auto fast0 = Clock::now();
    const int nSizes = static_cast<int>(sizes.size());
    std::vector<TaskAgg> aggs(tasks.size());
    for (std::size_t ti = 0; ti < tasks.size(); ++ti)
        pool.submit([&tasks, &points, &aggs, ti, nSizes] {
            runFastTask(tasks[ti], points, nSizes, aggs[ti]);
        });
    pool.wait();
    const double fastWallMs = msSince(fast0);

    TraceCacheStats tcTotal;
    obs::CycleRow cycleTotal{};
    std::uint64_t fastOpsFromBuffer = 0;
    std::vector<WorkloadReplay> perWorkload(names.size());
    for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
        const TaskAgg &a = aggs[ti];
        accumulateTraceCacheStats(tcTotal, a.tc);
        for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k)
            cycleTotal[k] += a.cycles[k];
        fastOpsFromBuffer += a.opsFromBuffer;
        // Tasks are emitted in workload-major order: 4 (level, mode)
        // tasks per workload.
        WorkloadReplay &w = perWorkload[ti / 4];
        w.replayedOps += a.tc.replayedOps;
        w.opsFromBuffer += a.opsFromBuffer;
    }
    // The stack must close over the whole sweep: every fast-pass
    // point's cycles attributed to exactly one class.
    {
        std::uint64_t stackSum = 0, cycleSum = 0;
        for (std::uint64_t c : cycleTotal)
            stackSum += c;
        for (const auto &p : points)
            cycleSum += p.cycles;
        LBP_ASSERT(stackSum == cycleSum,
                   "cycle stack not closed over the sweep: ",
                   stackSum, " attributed vs ", cycleSum,
                   " simulated");
    }

    double fastSimMs = 0;
    for (const auto &p : points)
        fastSimMs += p.fastMs;

    std::printf("%-14s %-12s %-9s %12s %12s\n", "workload", "level",
                "predmode", "ref-ms", "fast-ms");
    rule();
    for (const auto &t : tasks) {
        double r = 0, fmS = 0;
        for (int i = 0; i < nSizes; ++i) {
            r += points[t.firstPoint + i].refMs;
            fmS += points[t.firstPoint + i].fastMs;
        }
        std::printf("%-14s %-12s %-9s %12.2f %12.2f\n",
                    t.workload.c_str(), levelName(t.level),
                    modeName(t.mode), r, fmS);
    }
    rule();
    std::printf("reference path wall: %10.1f ms\n", refWallMs);
    std::printf("fast path wall:      %10.1f ms\n", fastWallMs);
    std::printf("end-to-end speedup:  %10.2fx\n",
                refWallMs / fastWallMs);
    std::printf("sim-only:            %10.1f ms -> %.1f ms "
                "(%.2fx, decoded engine alone)\n",
                refSimMs, fastSimMs, refSimMs / fastSimMs);
    std::printf("equivalence: all %zu points identical cycles and "
                "checksums across engines\n",
                points.size());
    std::printf("trace cache: %llu replays, %llu bailouts, "
                "replay coverage %.1f%% of buffer-issued ops\n",
                static_cast<unsigned long long>(tcTotal.replays),
                static_cast<unsigned long long>(tcTotal.bailouts),
                fastOpsFromBuffer
                    ? 100.0 *
                          static_cast<double>(tcTotal.replayedOps) /
                          static_cast<double>(fastOpsFromBuffer)
                    : 0.0);

    if (o.prof) {
        obs::prof::Profiler &pr = obs::prof::Profiler::instance();
        pr.stop();
        const obs::prof::Snapshot snap = pr.snapshot();
        std::printf("\nself-profile: %llu samples, %.1f%% attributed "
                    "to named regions\n",
                    static_cast<unsigned long long>(snap.samples),
                    100.0 * snap.attributedFraction());
        for (const auto &rc : snap.regions)
            std::printf("  %-28s %8llu  %5.1f%%\n", rc.label.c_str(),
                        static_cast<unsigned long long>(rc.count),
                        snap.samples
                            ? 100.0 * static_cast<double>(rc.count) /
                                  static_cast<double>(snap.samples)
                            : 0.0);
    }

    if (o.json)
        writeJson(o.jsonPath, o.historyPath, names, sizes, tasks,
                  points, refWallMs, fastWallMs, refSimMs, fastSimMs,
                  pool.threadCount(), o.quick, tcTotal,
                  fastOpsFromBuffer, perWorkload, cycleTotal,
                  finishBenchPmu(o));
    else if (o.pmu)
        finishBenchPmu(o); // table only — no document to carry it
    return 0;
}
