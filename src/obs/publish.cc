#include "obs/publish.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/compiler.hh"
#include "sim/trace_cache.hh"

namespace lbp
{
namespace obs
{

namespace
{

std::string
loopPrefix(const std::string &prefix, std::size_t id)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%03zu", id);
    return prefix + ".loop." + buf + ".";
}

} // namespace

void
publishSimStats(Registry &r, const SimStats &s,
                const std::string &prefix)
{
    r.counter(prefix + ".cycles").set(s.cycles);
    r.counter(prefix + ".bundles").set(s.bundles);
    r.counter(prefix + ".opsFetched").set(s.opsFetched);
    r.counter(prefix + ".opsFromBuffer").set(s.opsFromBuffer);
    r.counter(prefix + ".opsNullified").set(s.opsNullified);
    r.counter(prefix + ".opsSensitive").set(s.opsSensitive);
    r.counter(prefix + ".branches").set(s.branches);
    r.counter(prefix + ".branchesTaken").set(s.branchesTaken);
    r.counter(prefix + ".branchPenaltyCycles")
        .set(s.branchPenaltyCycles);
    r.counter(prefix + ".checksum").set(s.checksum);
    r.gauge(prefix + ".bufferFraction").set(s.bufferFraction());
    r.counter(prefix + ".returns.count").set(s.returns.size());
    for (std::size_t i = 0; i < s.returns.size(); ++i)
        r.intGauge(prefix + ".returns." + std::to_string(i))
            .set(s.returns[i]);

    // Distribution views over the per-loop table (deterministic:
    // every input is a sim counter). bodyOps weights each loop's
    // image size by how often it was activated — the p50/p95 answer
    // "what loop-body size dominates buffer traffic"; tripCount bins
    // the mean iterations per activation, the quantity the §4 peeling
    // heuristics reason about.
    Histogram &bodyOps = r.histogram(prefix + ".loop.bodyOps");
    Histogram &tripCount = r.histogram(prefix + ".loop.tripCount");
    for (const auto &ls : s.loops) {
        if (ls.activations == 0)
            continue;
        bodyOps.add(static_cast<std::int64_t>(ls.imageOps),
                    static_cast<double>(ls.activations));
        tripCount.add(static_cast<std::int64_t>(ls.iterations /
                                                ls.activations),
                      static_cast<double>(ls.activations));
    }

    for (std::size_t id = 0; id < s.loops.size(); ++id) {
        const LoopStats &ls = s.loops[id];
        const std::string p = loopPrefix(prefix, id);
        r.info(p + "name", ls.name);
        r.intGauge(p + "imageOps").set(ls.imageOps);
        r.intGauge(p + "bufAddr").set(ls.bufAddr);
        r.counter(p + "activations").set(ls.activations);
        r.counter(p + "recordings").set(ls.recordings);
        r.counter(p + "evictions").set(ls.evictions);
        r.counter(p + "iterations").set(ls.iterations);
        r.counter(p + "bufferIterations").set(ls.bufferIterations);
        r.counter(p + "opsFromBuffer").set(ls.opsFromBuffer);
        r.counter(p + "opsFromCache").set(ls.opsFromCache);
    }
}

void
publishTraceCacheStats(Registry &r, const TraceCacheStats &s,
                       const std::string &prefix)
{
    r.counter(prefix + ".builds").set(s.builds);
    r.counter(prefix + ".replays").set(s.replays);
    r.counter(prefix + ".bailouts").set(s.bailouts);
    r.counter(prefix + ".invalidations").set(s.invalidations);
    r.counter(prefix + ".replayedIterations")
        .set(s.replayedIterations);
    r.counter(prefix + ".replayedOps").set(s.replayedOps);
    // Predicated-tier split (zeros included for a stable key set;
    // the fast tier's share is the difference against the aggregate).
    const std::string pp = prefix + ".pred_replay";
    r.counter(pp + ".builds").set(s.predReplay.builds);
    r.counter(pp + ".replays").set(s.predReplay.replays);
    r.counter(pp + ".iterations").set(s.predReplay.iterations);
    r.counter(pp + ".ops").set(s.predReplay.ops);
    r.counter(pp + ".sideExits").set(s.predReplay.sideExits);
    r.counter(pp + ".backedgeFallthroughs")
        .set(s.predReplay.backedgeFallthroughs);
    r.counter(pp + ".midEngagements")
        .set(s.predReplay.midEngagements);
    // Per-reason bailout split (sums to .bailouts). Every real
    // reason is published, zeros included, so the bench-diff and
    // history gates see a stable key set; None is the "traceable"
    // verdict and never a bailout.
    for (std::size_t i =
             static_cast<std::size_t>(TraceBailoutReason::Unknown);
         i < static_cast<std::size_t>(TraceBailoutReason::Count);
         ++i) {
        r.counter(prefix + ".bailout." +
                  traceBailoutReasonName(
                      static_cast<TraceBailoutReason>(i)))
            .set(s.bailoutsBy[i]);
    }
}

void
publishCycleStack(Registry &r, const CycleStack &cs,
                  const std::string &prefix)
{
    // Every class is published, zeros included, so the bench-diff and
    // history gates see a stable key set (the trace-cache bailout
    // split follows the same rule).
    const CycleRow totals = cs.totals();
    std::uint64_t sum = 0;
    for (std::size_t k = 0; k < kNumCycleClasses; ++k) {
        r.counter(prefix + "." +
                  cycleClassName(static_cast<CycleClass>(k)))
            .set(totals[k]);
        sum += totals[k];
    }
    r.counter(prefix + ".total").set(sum);
}

namespace
{

/** Raw counts + derived rates for one labeled CounterRow. */
void
publishPmuRow(Registry &r, const std::string &prefix,
              const pmu::Snapshot &s, const std::string &label,
              const pmu::CounterRow &row)
{
    using pmu::PmuCounter;
    const std::string p = prefix + "." + label + ".";
    for (std::size_t i = 0; i < pmu::kNumPmuCounters; ++i) {
        if (!s.counterPresent[i])
            continue;
        r.counter(p + pmu::pmuCounterName(
                          static_cast<PmuCounter>(i)))
            .set(row[i]);
    }
    auto v = [&](PmuCounter c) {
        return static_cast<double>(
            row[static_cast<std::size_t>(c)]);
    };
    auto has = [&](PmuCounter c) {
        return s.counterPresent[static_cast<std::size_t>(c)];
    };
    const double cycles = v(PmuCounter::Cycles);
    const double instructions = v(PmuCounter::Instructions);
    if (has(PmuCounter::Instructions) && cycles > 0)
        r.gauge(p + "ipc").set(instructions / cycles);
    if (has(PmuCounter::Branches) && has(PmuCounter::BranchMisses)
        && v(PmuCounter::Branches) > 0)
        r.gauge(p + "branchMissPct")
            .set(100.0 * v(PmuCounter::BranchMisses) /
                 v(PmuCounter::Branches));
    if (has(PmuCounter::CacheMisses)
        && has(PmuCounter::Instructions) && instructions > 0)
        r.gauge(p + "cacheMpki")
            .set(1000.0 * v(PmuCounter::CacheMisses) /
                 instructions);
}

} // namespace

void
publishPmu(Registry &r, const pmu::Snapshot &s,
           const std::string &prefix)
{
    r.intGauge(prefix + ".available").set(s.available ? 1 : 0);
    if (!s.available) {
        r.info(prefix + ".reason", s.reason);
        return;
    }
    r.gauge(prefix + ".attributedCycleFraction")
        .set(s.attributedCycleFraction());
    for (const auto &region : s.regions)
        publishPmuRow(r, prefix, s, region.label, region.counts);
    publishPmuRow(r, prefix, s, "total", s.total);
    publishPmuRow(r, prefix, s, "untracked", s.untracked);
}

void
publishFetchEnergy(Registry &r, const FetchEnergy &e,
                   const std::string &prefix)
{
    r.gauge(prefix + ".totalNj").set(e.totalNj);
    r.gauge(prefix + ".memoryNj").set(e.memoryNj);
    r.gauge(prefix + ".bufferNj").set(e.bufferNj);
    r.counter(prefix + ".opsFromMemory").set(e.opsFromMemory);
    r.counter(prefix + ".opsFromBuffer").set(e.opsFromBuffer);
}

void
publishCompileResult(Registry &r, const CompileResult &cr,
                     const std::string &prefix)
{
    auto c = [&](const std::string &n, std::int64_t v) {
        r.intGauge(prefix + "." + n).set(v);
    };
    c("originalOps", cr.originalOps);
    c("finalOps", cr.finalOps);
    c("scheduledOps", cr.scheduledOps);
    c("moduloLoops", cr.moduloLoops);
    c("simpleLoops", cr.simpleLoops);
    r.counter(prefix + ".goldenChecksum").set(cr.goldenChecksum);

    c("inline.sitesInlined", cr.inlineStats.sitesInlined);
    c("inline.opsAdded", cr.inlineStats.opsAdded);
    c("peel.loopsPeeled", cr.peelStats.loopsPeeled);
    c("peel.opsAdded", cr.peelStats.opsAdded);
    c("ifConvert.loopsConverted", cr.ifConvertStats.loopsConverted);
    c("ifConvert.blocksMerged", cr.ifConvertStats.blocksMerged);
    c("ifConvert.predDefsInserted",
      cr.ifConvertStats.predDefsInserted);
    c("ifConvert.sideExits", cr.ifConvertStats.sideExits);
    c("collapse.loopsCollapsed", cr.collapseStats.loopsCollapsed);
    c("collapse.outerOpsPulledIn",
      cr.collapseStats.outerOpsPulledIn);
    c("branchCombine.loopsCombined",
      cr.branchCombineStats.loopsCombined);
    c("branchCombine.exitsCombined",
      cr.branchCombineStats.exitsCombined);
    c("promote.promoted", cr.promoteStats.promoted);
    c("promote.speculativeLoads", cr.promoteStats.speculativeLoads);
    c("reassociate.chainsRebalanced",
      cr.reassocStats.chainsRebalanced);
    c("reassociate.opsInChains", cr.reassocStats.opsInChains);
    c("countedLoop.cloops", cr.countedLoopStats.cloops);
    c("countedLoop.wloops", cr.countedLoopStats.wloops);
    c("slot.blocksAttempted", cr.slotStats.blocksAttempted);
    c("slot.blocksLowered", cr.slotStats.blocksLowered);
    c("slot.definesRewritten", cr.slotStats.definesRewritten);
    c("slot.sensitiveOps", cr.slotStats.sensitiveOps);
    c("slot.predsKeptInRegisters",
      cr.slotStats.predsKeptInRegisters);
    c("buffer.loopsBuffered", cr.bufferAlloc.buffered);
    c("buffer.loopsUnbuffered", cr.bufferAlloc.unbuffered);
}

std::string
diffSimStats(const SimStats &a, const SimStats &b,
             const std::string &labelA, const std::string &labelB)
{
    Registry ra, rb;
    publishSimStats(ra, a);
    publishSimStats(rb, b);
    const auto diffs = diffRegistries(ra.toJson(), rb.toJson());
    if (diffs.empty())
        return "";

    std::ostringstream os;
    os << diffs.size() << " field(s) differ (" << labelA << " vs "
       << labelB << "):\n";
    int firstLoop = -1;
    for (const auto &d : diffs) {
        os << "  " << d.key << ": " << d.a << " vs " << d.b << "\n";
        // Keys look like "sim.loop.<id3>.<field>".
        const auto pos = d.key.find(".loop.");
        if (pos != std::string::npos) {
            const int id = std::atoi(d.key.c_str() + pos + 6);
            if (firstLoop < 0 || id < firstLoop)
                firstLoop = id;
        }
    }
    if (firstLoop >= 0) {
        os << "first diverging loop id: " << firstLoop;
        if (static_cast<std::size_t>(firstLoop) < a.loops.size())
            os << " (" << a.loops[firstLoop].name << ")";
        os << "\n";
    }
    return os.str();
}

} // namespace obs
} // namespace lbp
