/**
 * @file
 * Dominator-tree computation (Cooper–Harvey–Kennedy iterative
 * algorithm) over a Function's CFG.
 */

#ifndef LBP_ANALYSIS_DOMINATORS_HH
#define LBP_ANALYSIS_DOMINATORS_HH

#include <vector>

#include "ir/function.hh"

namespace lbp
{

/** Immediate-dominator tree for one function. */
class Dominators
{
  public:
    explicit Dominators(const Function &fn);

    /** Immediate dominator of @p b (kNoBlock for entry/unreachable). */
    BlockId idom(BlockId b) const { return idom_[b]; }

    /** True iff @p a dominates @p b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

    /** True iff @p b is reachable from the entry. */
    bool reachable(BlockId b) const { return rpoIndex_[b] >= 0; }

    /** Reverse-postorder index of @p b (-1 if unreachable). */
    int rpoIndex(BlockId b) const { return rpoIndex_[b]; }

    const std::vector<BlockId> &rpo() const { return rpo_; }

  private:
    const Function &fn_;
    std::vector<BlockId> idom_;
    std::vector<int> rpoIndex_;
    std::vector<BlockId> rpo_;
};

} // namespace lbp

#endif // LBP_ANALYSIS_DOMINATORS_HH
