/**
 * @file
 * Table 3 microbenchmark: the four buffer-management operations.
 * Measures the recording/residency machinery directly (LoopBuffer)
 * and end-to-end through the simulator: a counted loop re-entered
 * repeatedly so the residency table's re-recording skip is on the hot
 * path, and an EXEC-style reuse of a buffered loop from a second
 * call site.
 */

#include <benchmark/benchmark.h>

#include "ir/builder.hh"
#include "core/compiler.hh"
#include "sim/loop_buffer.hh"
#include "sim/vliw_sim.hh"

using namespace lbp;

namespace
{

void
BM_LoopBufferRecord(benchmark::State &state)
{
    LoopBuffer buf(256);
    const LoopKey a{0, 1}, b{0, 2};
    for (auto _ : state) {
        // Two loops that displace each other: worst-case record path.
        buf.record(a, 0, 200);
        benchmark::DoNotOptimize(buf.isResident(a));
        buf.record(b, 100, 156);
        benchmark::DoNotOptimize(buf.isResident(b));
    }
    state.SetItemsProcessed(state.iterations() * 2);
}

void
BM_LoopBufferResidentHit(benchmark::State &state)
{
    LoopBuffer buf(256);
    const LoopKey a{0, 1};
    buf.record(a, 0, 100);
    for (auto _ : state)
        benchmark::DoNotOptimize(buf.isResident(a));
    state.SetItemsProcessed(state.iterations());
}

/** A program that re-enters one small counted loop many times. */
Program
makeReentryProgram(int outer, int inner)
{
    Program prog;
    prog.name = "bufferops_bench";
    const std::int64_t data = prog.allocData(256 * 4);
    const std::int64_t out = prog.allocData(8);
    prog.checksumBase = out;
    prog.checksumSize = 8;

    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, outer, 1, [&](RegId o) {
        (void)o;
        b.forLoop(0, inner, 1, [&](RegId i) {
            const RegId i4 = b.shl(R(b.and_(R(i), I(255))), I(2));
            const RegId v = b.loadW(R(dp), R(i4));
            b.addTo(acc, R(acc), R(v));
        });
        // Enough outer-level code that the nest is not collapsed.
        for (int k = 0; k < 30; ++k)
            b.binTo(Opcode::XOR, acc, R(acc), I(k * 77 + 1));
    });
    const RegId op_ = b.iconst(out);
    b.storeW(R(op_), I(0), R(acc));
    b.ret({R(acc)});
    return prog;
}

void
BM_RecCloopReentry(benchmark::State &state)
{
    Program prog = makeReentryProgram(64, 32);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    SimConfig sc;
    for (auto _ : state) {
        VliwSim sim(cr.code, sc);
        auto st = sim.run();
        benchmark::DoNotOptimize(st.opsFromBuffer);
    }
    // Report the residency behaviour once.
    VliwSim sim(cr.code, sc);
    auto st = sim.run();
    state.counters["buffer_pct"] = 100.0 * st.bufferFraction();
    state.counters["table_hits"] =
        static_cast<double>(sim.buffer().tableHits());
}

} // namespace

BENCHMARK(BM_LoopBufferRecord);
BENCHMARK(BM_LoopBufferResidentHit);
BENCHMARK(BM_RecCloopReentry);

BENCHMARK_MAIN();
