/**
 * @file
 * The paper's Figure-2 walkthrough: predicated loop collapsing on
 * mpeg2dec's Add_Block-style loop. Builds the doubly-nested 8x8 loop,
 * prints the IR before and after the aggressive pipeline (peel /
 * if-convert / collapse / counted-loop conversion), and shows the
 * resulting single 64-iteration hardware loop with its
 * from-outer-loop operations marked <outer>.
 */

#include <cstdio>
#include <iostream>

#include "core/compiler.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "sim/vliw_sim.hh"

using namespace lbp;

namespace
{

Program
buildAddBlock()
{
    Program prog;
    prog.name = "add_block_demo";
    const std::int64_t clip = prog.allocData(1024);
    for (int x = -512; x < 512; ++x) {
        const int v = x < 0 ? 0 : x > 255 ? 255 : x;
        prog.poke8(clip + x + 512, static_cast<std::uint8_t>(v));
    }
    const std::int64_t coef = prog.allocData(64 * 4);
    for (int i = 0; i < 64; ++i)
        prog.poke32(coef + 4 * i, (i * 97) % 400 - 200);
    const std::int64_t out = prog.allocData(64 * 2 + 9 * 16);
    prog.checksumBase = out;
    prog.checksumSize = 64 * 2;

    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId clipP = b.iconst(clip + 512);
    const RegId coefP = b.iconst(coef);
    const RegId outP = b.iconst(out);
    const RegId bp = b.iconst(0);
    const RegId rfp = b.iconst(0);

    // for (i = 0; i < 8; i++) {          // outer
    //     for (j = 0; j < 8; j++)        // inner (collapsed away)
    //         *rfp++ = Clip[*bp++ + 128];
    //     rfp += incr;
    // }
    b.forLoop(0, 8, 1, [&](RegId i) {
        (void)i;
        b.forLoop(0, 8, 1, [&](RegId j) {
            (void)j;
            const RegId b4 = b.shl(R(bp), I(2));
            const RegId v = b.loadW(R(coefP), R(b4));
            const RegId idx = b.add(R(v), I(128));
            const RegId cv = b.loadB(R(clipP), R(idx));
            const RegId r2 = b.shl(R(rfp), I(1));
            b.storeH(R(outP), R(r2), R(cv));
            b.addTo(bp, R(bp), I(1));
            b.addTo(rfp, R(rfp), I(1));
        });
        b.addTo(rfp, R(rfp), I(1)); // rfp += incr
    });
    b.ret({});
    return prog;
}

} // namespace

int
main()
{
    Program prog = buildAddBlock();

    std::printf("=== Original nested loop (Figure 2a/2b) ===\n");
    print(std::cout, prog.functions[prog.entryFunc]);

    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    std::printf("\n=== After collapsing + counted-loop conversion "
                "(Figure 2c/2d) ===\n");
    print(std::cout, cr.ir.functions[cr.ir.entryFunc]);

    std::printf("\ncollapsed loops: %d (ops pulled in: %d)\n",
                cr.collapseStats.loopsCollapsed,
                cr.collapseStats.outerOpsPulledIn);

    SimConfig sc;
    sc.bufferOps = 64;
    VliwSim sim(cr.code, sc);
    const SimStats st = sim.run();
    std::printf("64-op buffer: %.1f%% of issue from the buffer, "
                "checksum %s\n", 100.0 * st.bufferFraction(),
                st.checksum == cr.goldenChecksum ? "OK" : "BAD");
    return 0;
}
