#include "support/random.hh"

#include "support/logging.hh"

namespace lbp
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    s0_ = splitmix64(x);
    s1_ = splitmix64(x);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    LBP_ASSERT(bound > 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % bound) - 1;
    std::uint64_t v;
    do {
        v = next();
    } while (v > limit);
    return v % bound;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    LBP_ASSERT(lo <= hi, "bad range");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return nextDouble() < p;
}

} // namespace lbp
