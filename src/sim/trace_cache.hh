/**
 * @file
 * Resident-loop trace cache for the decoded executor: the software
 * twin of the modeled loop buffer's replay mechanism.
 *
 * When the loop buffer reports a loop resident, the general decoded
 * path still re-walks the block table, re-checks fetch accounting and
 * re-dispatches every micro-op of every iteration. The trace cache
 * instead builds — once, at first replayed residency — a flattened
 * per-loop trace of the body bundles up to and including the backedge,
 * with per-op facts that are invariant for the whole activation baked
 * in (can the op ever be nullified; can the bundle commit its writes
 * directly), and then replays that trace iteration after iteration
 * until the loop's own exit, bulk-accounting the per-iteration
 * counters. Control is handed back to the general path exactly at the
 * bundle after the backedge (counted exit / while exit) or at the
 * EXEC resume point.
 *
 * Safety gating happens entirely at build time: a body qualifies only
 * if its sole control transfer is the loop's own unguarded,
 * non-sensitive backedge and every other op is from the straight-line
 * set (predicate defines, loads/stores, moves/converts/select, the
 * ALU family). Anything else — abnormal exits, nested loops, calls —
 * marks the loop Untraceable and the general path runs it forever
 * (counted per activation as a bailout). There are therefore no
 * mid-iteration bailout paths to keep bit-exact: a trace either
 * replays whole iterations or never engages.
 *
 * Invalidation: when the loop buffer evicts a loop's image, the
 * trace dies with it (the hardware analogy: replay state cannot
 * outlive the image) and is rebuilt at the next residency.
 *
 * The replay loop itself is VliwSim::replayResident (trace_cache.cc) —
 * a member so it can touch the same state the executor body does; the
 * engine-differential test pins its SimStats bit-identical to both
 * the general decoded path and the reference interpreter.
 */

#ifndef LBP_SIM_TRACE_CACHE_HH
#define LBP_SIM_TRACE_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/decoded.hh"

namespace lbp
{

/**
 * Side-band trace-cache counters. Deliberately NOT part of SimStats:
 * the reference engine never replays, so folding these into the
 * differentially-compared stats would break the bit-identical
 * contract. Published as sim.trace_cache.* registry counters.
 */
struct TraceCacheStats
{
    std::uint64_t builds = 0;        ///< traces built (incl. rebuilds)
    std::uint64_t replays = 0;       ///< engagements (≥1 iteration each)
    std::uint64_t bailouts = 0;      ///< activations declined (untraceable)
    std::uint64_t invalidations = 0; ///< traces dropped on image eviction
    std::uint64_t replayedIterations = 0;
    std::uint64_t replayedOps = 0;   ///< ops issued from traces

    struct PerLoop
    {
        std::uint64_t replays = 0;
        std::uint64_t iterations = 0;
        std::uint64_t ops = 0;       ///< of LoopStats::opsFromBuffer
    };
    std::vector<PerLoop> perLoop;    ///< indexed by dense loop id
};

/** One flattened bundle of a built trace. */
struct TraceBundle
{
    std::uint32_t first = 0;    ///< into LoopTrace::ops
    std::uint32_t count = 0;
    std::int32_t sizeOps = 0;   ///< fetch size (for bulk accounting)
    /**
     * No op in the bundle reads register/predicate/slot state an
     * earlier op in the same bundle writes (and no load follows a
     * store), so writes can commit in place instead of through the
     * two-phase deferred-write buffers.
     */
    bool direct = false;
};

/** A per-loop flattened replay trace. */
struct LoopTrace
{
    enum class State : std::uint8_t
    {
        Unbuilt,
        Ready,
        /**
         * The loop buffer evicted the image this trace models. Trace
         * content is allocation-invariant (REC/EXEC ops — the only
         * bufAddr carriers — never survive the build gating), so
         * revalidation at the next residency is O(1); the state
         * exists so any future allocation-dependent trace content
         * has a correct hook, and so eviction-heavy workloads do not
         * pay a full rebuild per activation.
         */
        Stale,
        Untraceable,
    };
    State state = State::Unbuilt;
    bool wloop = false;              ///< backedge is BR_WLOOP

    std::vector<MicroOp> ops;        ///< body ops, backedge excluded
    std::vector<TraceBundle> bundles;///< head bundles 0..backedge

    // While-loop backedge condition (read at the backedge bundle).
    CmpCond beCond = CmpCond::EQ;
    XSrc beSrc0, beSrc1;

    std::uint32_t resumeBundle = 0;  ///< bundle index after backedge
    std::uint64_t bundlesPerIter = 0;
    std::uint64_t opsPerIter = 0;    ///< fetch-size sum per iteration
    std::uint64_t sensitivePerIter = 0; ///< SLOT-mode sensitive ops
};

struct LoopCtx;

/**
 * Counted loops engage replay only with at least this many iterations
 * left. A trace is a second copy of the body's micro-ops, cold on
 * every engagement after the recording iteration warmed the decoded
 * image; very short activations (unrolled 2–3-trip kernels) pay that
 * cold walk without enough iterations to amortize it and replay
 * slower than the general path. While loops cannot know their trip
 * count and always engage. Tuned on the registry sweep: mpg123's
 * 2-trip synthesis windows regress ~2.5x ungated, the 5–7-trip
 * mpeg2/jpeg kernels still win gated at 4.
 */
constexpr std::int64_t kMinCountedReplayIters = 4;

/** Per-sim-instance trace store, keyed by interned dense loop id. */
class TraceCache
{
  public:
    TraceCache(std::size_t numLoops, bool slotMode);

    /**
     * The trace for @p ctx's loop, building it on first use. The
     * caller checks the returned state: Ready replays, Untraceable
     * falls back (countBailout once per activation).
     */
    LoopTrace &acquire(const LoopCtx &ctx, const DecodedFunction &df);

    /**
     * Mark @p loopId's built trace Stale because the loop buffer
     * evicted its image. Untraceable verdicts are static and survive
     * (a rebuild would re-derive them).
     */
    void invalidate(int loopId);

    /** Counter reset at run() start; built traces stay valid. */
    void resetRunStats();

    const TraceCacheStats &stats() const { return stats_; }
    TraceCacheStats &stats() { return stats_; }

    bool slotMode() const { return slotMode_; }

  private:
    void build(LoopTrace &tr, const LoopCtx &ctx,
               const DecodedFunction &df);

    std::vector<LoopTrace> traces_;
    TraceCacheStats stats_;
    bool slotMode_;
};

} // namespace lbp

#endif // LBP_SIM_TRACE_CACHE_HH
