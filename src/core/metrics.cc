#include "core/metrics.hh"

#include <map>
#include <set>

#include "analysis/liveness.hh"

namespace lbp
{

PredicationMetrics
collectPredicationMetrics(const CompileResult &cr)
{
    PredicationMetrics m;
    const Program &prog = cr.ir;

    for (const auto &fn : prog.functions) {
        for (const auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            const SchedBlock &sb =
                cr.code.functions[fn.id].blocks[bb.id];
            if (!sb.valid || !sb.isLoopBody)
                continue;
            ++m.candidateLoops;

            const double iters = bb.weight;
            const double dynOps = iters * sb.sizeOps();

            // Per-pred define/consume positions in scheduled cycles.
            struct P
            {
                int firstDef = INT32_MAX;
                int lastUse = INT32_MIN;
                int defines = 0;
                int consumers = 0;
            };
            std::map<PredId, P> preds;
            // Per-define consumer counts need the define's dest set.
            struct DefineRec
            {
                int cycle;
                std::vector<PredId> dsts;
            };
            std::vector<DefineRec> defines;

            double sensDyn = 0;
            for (size_t cy = 0; cy < sb.bundles.size(); ++cy) {
                for (const auto &so : sb.bundles[cy].ops) {
                    const Operation &op = so.op;
                    const bool guarded =
                        op.guard != kNoPred || op.sensitive;
                    if (guarded && op.op != Opcode::PRED_DEF)
                        sensDyn += iters;
                    if (op.guard != kNoPred) {
                        P &p = preds[op.guard];
                        ++p.consumers;
                        p.lastUse = std::max(p.lastUse,
                                             static_cast<int>(cy));
                    }
                    if (op.op == Opcode::PRED_DEF) {
                        DefineRec dr;
                        dr.cycle = static_cast<int>(cy);
                        for (const auto &d : op.dsts) {
                            if (d.isPred()) {
                                dr.dsts.push_back(d.asPred());
                                P &p = preds[d.asPred()];
                                ++p.defines;
                                p.firstDef =
                                    std::min(p.firstDef,
                                             static_cast<int>(cy));
                            }
                        }
                        if (!dr.dsts.empty())
                            defines.push_back(std::move(dr));
                    }
                }
            }

            const bool predicated = !preds.empty();
            if (predicated)
                ++m.predicatedLoops;

            // Sensitivity fractions (§4.3).
            m.dynOpsInBufferableLoops += dynOps;
            m.dynSensitiveInBufferableLoops += sensDyn;
            if (predicated) {
                m.dynOpsInPredicatedLoops += dynOps;
                m.dynSensitiveInPredicatedLoops += sensDyn;
            }

            // Figure 3a/3b: per define.
            for (const auto &dr : defines) {
                int consumers = 0;
                int lastUse = dr.cycle;
                for (PredId p : dr.dsts) {
                    const P &pi = preds[p];
                    // Consumers are attributed per define evenly when
                    // a predicate has several or-type defines.
                    consumers += pi.defines > 0
                                     ? (pi.consumers + pi.defines - 1) /
                                           pi.defines
                                     : pi.consumers;
                    lastUse = std::max(lastUse, pi.lastUse);
                }
                m.consumersPerDefineStatic.add(consumers);
                m.consumersPerDefineDynamic.add(consumers, iters);
                const int range = std::max(0, lastUse - dr.cycle);
                m.liveRangeStatic.add(range);
                m.liveRangeDynamic.add(range, iters);
            }

            // Figure 3c: max simultaneously-live predicates. A
            // defined predicate is live at least over its define
            // cycle even if its consumers were promoted away.
            if (predicated) {
                int maxLive = 0;
                for (size_t cy = 0; cy < sb.bundles.size(); ++cy) {
                    int live = 0;
                    for (const auto &[p, pi] : preds) {
                        if (pi.firstDef == INT32_MAX)
                            continue;
                        const int hi =
                            std::max(pi.lastUse, pi.firstDef);
                        if (pi.firstDef <= static_cast<int>(cy) &&
                            static_cast<int>(cy) <= hi) {
                            ++live;
                        }
                    }
                    maxLive = std::max(maxLive, live);
                }
                m.overlapPerLoop.add(maxLive, std::max(iters, 1.0));
            }
        }
    }
    return m;
}

RegisterPressure
collectRegisterPressure(const CompileResult &cr)
{
    RegisterPressure rp;
    for (const auto &fn : cr.ir.functions) {
        Liveness live(fn);
        for (const auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            const SchedBlock &sb =
                cr.code.functions[fn.id].blocks[bb.id];
            if (!sb.valid || !sb.isLoopBody)
                continue;
            // Sweep the block backwards maintaining the live set,
            // seeded with live-out (which, for a loop body, includes
            // the next iteration's needs via the backedge).
            std::set<RegId> liveNow = live.liveOut(bb.id);
            int maxLive = static_cast<int>(liveNow.size());
            for (auto it = bb.ops.rbegin(); it != bb.ops.rend();
                 ++it) {
                if (!it->hasGuard()) {
                    for (RegId d : Liveness::defs(*it))
                        liveNow.erase(d);
                }
                for (RegId u : Liveness::uses(*it))
                    liveNow.insert(u);
                maxLive = std::max(
                    maxLive, static_cast<int>(liveNow.size()));
            }
            // Pipelined loops replicate loop-carried values across
            // mveFactor overlapped iterations; values private to one
            // iteration are not expanded.
            int carried = 0;
            if (sb.pipelined && sb.mveFactor > 1) {
                std::set<RegId> defined;
                for (const auto &op : bb.ops)
                    for (RegId d : Liveness::defs(op))
                        defined.insert(d);
                for (RegId r : live.liveIn(bb.id))
                    carried += defined.count(r) != 0;
            }
            const int effective =
                maxLive + (sb.mveFactor - 1) * carried;
            rp.maxLoopPressure =
                std::max(rp.maxLoopPressure, effective);
        }
    }
    return rp;
}

void
mergeMetrics(PredicationMetrics &acc, const PredicationMetrics &in)
{
    for (const auto &[v, w] : in.consumersPerDefineStatic.bins())
        acc.consumersPerDefineStatic.add(v, w);
    for (const auto &[v, w] : in.consumersPerDefineDynamic.bins())
        acc.consumersPerDefineDynamic.add(v, w);
    for (const auto &[v, w] : in.liveRangeStatic.bins())
        acc.liveRangeStatic.add(v, w);
    for (const auto &[v, w] : in.liveRangeDynamic.bins())
        acc.liveRangeDynamic.add(v, w);
    for (const auto &[v, w] : in.overlapPerLoop.bins())
        acc.overlapPerLoop.add(v, w);
    acc.predicatedLoops += in.predicatedLoops;
    acc.candidateLoops += in.candidateLoops;
    acc.dynOpsInPredicatedLoops += in.dynOpsInPredicatedLoops;
    acc.dynSensitiveInPredicatedLoops +=
        in.dynSensitiveInPredicatedLoops;
    acc.dynOpsInBufferableLoops += in.dynOpsInBufferableLoops;
    acc.dynSensitiveInBufferableLoops +=
        in.dynSensitiveInBufferableLoops;
}

} // namespace lbp
