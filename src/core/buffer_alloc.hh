/**
 * @file
 * Compiler-side loop buffer allocation (paper §5/§6): choose a buffer
 * offset for each bufferable loop image so that the dynamic number of
 * operations fetched from global memory is minimized, given the
 * control-flow profile. Loops that cohabit get disjoint ranges when
 * they fit; otherwise low-benefit loops are overlapped and the
 * residency table resolves displacement at run time.
 */

#ifndef LBP_CORE_BUFFER_ALLOC_HH
#define LBP_CORE_BUFFER_ALLOC_HH

#include "sched/schedule.hh"

namespace lbp
{

namespace obs
{
class LoopDecisionLog;
}

struct BufferAllocOptions
{
    int bufferOps = 256;
};

/** One allocation decision, for reporting. */
struct BufferAssignment
{
    std::string loopName;
    FuncId func = kNoFunc;
    BlockId body = kNoBlock;
    int imageOps = 0;
    int bufAddr = -1; ///< -1 = not buffered
    double benefit = 0.0;
};

struct BufferAllocResult
{
    std::vector<BufferAssignment> assignments;
    int buffered = 0;
    int unbuffered = 0;
};

/**
 * Assign buffer offsets across the whole program, writing bufAddr /
 * numOps onto the REC/EXEC operations in both the scheduled code and
 * the IR. Existing assignments are overwritten (so the same compiled
 * code can be re-allocated for several buffer sizes).
 *
 * When @p log is given, every candidate loop's *terminal* decision
 * fields (fate, reason, finalOps, bufAddr, bufferCapacity, estDynOps)
 * are written by assignment — re-allocating for a different buffer
 * size overwrites them while preserving transform attempts.
 */
BufferAllocResult allocateLoopBuffers(Program &prog, SchedProgram &code,
                                      const BufferAllocOptions &opts,
                                      obs::LoopDecisionLog *log = nullptr);

} // namespace lbp

#endif // LBP_CORE_BUFFER_ALLOC_HH
