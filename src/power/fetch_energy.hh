/**
 * @file
 * Instruction-fetch energy aggregation (paper Figure 8b): combines
 * simulator fetch counters with the CACTI-lite per-access energies
 * into total and normalized fetch energy.
 */

#ifndef LBP_POWER_FETCH_ENERGY_HH
#define LBP_POWER_FETCH_ENERGY_HH

#include "power/cacti_lite.hh"
#include "sim/vliw_sim.hh"

namespace lbp
{

struct FetchEnergy
{
    double totalNj = 0;
    double memoryNj = 0;
    double bufferNj = 0;
    std::uint64_t opsFromMemory = 0;
    std::uint64_t opsFromBuffer = 0;
};

/** Fetch energy of one simulated run with a given buffer size. */
FetchEnergy computeFetchEnergy(const SimStats &stats, int bufferOps,
                               const CactiLite &model = CactiLite());

/**
 * Energy the same op stream would cost with no buffer at all — the
 * normalization baseline of Figure 8b.
 */
double unbufferedEnergyNj(std::uint64_t opsFetched,
                          const CactiLite &model = CactiLite());

} // namespace lbp

#endif // LBP_POWER_FETCH_ENERGY_HH
