/**
 * @file
 * Functional, cycle-accounting simulator for scheduled VLIW code.
 *
 * Executes a SchedProgram bundle by bundle with two-phase (read all,
 * then commit) bundle semantics, hardware-loop contexts driven by the
 * Table-3 buffer operations, and one of two predication
 * micro-architectures:
 *
 *  - REGISTER: a predicate register file consulted through each
 *    operation's guard operand (full predication, the costly scheme);
 *  - SLOT: per-issue-slot standing predicates set by slot-routed
 *    predicate defines; operations carry only a sensitivity bit
 *    (the paper's low-overhead scheme, §4.2).
 *
 * Timing model (paper §7 machine):
 *  - one bundle per cycle;
 *  - taken control transfers fetched from global memory pay the
 *    branch penalty; loop-backs executing from the loop buffer are
 *    free, and counted-loop exits from the buffer are predicted
 *    (free) while while-loop exits pay the penalty;
 *  - a pipelined (modulo-scheduled), buffered loop activation of N
 *    iterations retires in L + (N-1)*II cycles.
 */

#ifndef LBP_SIM_VLIW_SIM_HH
#define LBP_SIM_VLIW_SIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/cycle_stack.hh"
#include "sched/schedule.hh"
#include "sim/loop_buffer.hh"
#include "support/arena.hh"

namespace lbp
{

namespace obs
{
class TraceSink;
}

/** Predication micro-architecture selector. */
enum class PredMode
{
    REGISTER,
    SLOT,
};

/**
 * Execution engine selector.
 *
 * REFERENCE is the original switch-dispatched interpreter walking the
 * SchedProgram directly; DECODED runs the same semantics over a
 * one-time predecoded dense micro-op image (operands resolved, loop
 * keys interned). The two are differentially tested to produce
 * bit-identical SimStats.
 */
enum class SimEngine
{
    REFERENCE,
    DECODED,
};

/** Per-loop execution statistics (drives the Figure 5 traces). */
struct LoopStats
{
    LoopKey key;
    std::string name;
    int imageOps = 0;
    int bufAddr = -1;
    std::uint64_t activations = 0;
    std::uint64_t recordings = 0;
    std::uint64_t evictions = 0;       ///< images this loop lost
    std::uint64_t iterations = 0;
    std::uint64_t bufferIterations = 0;
    std::uint64_t opsFromBuffer = 0;   ///< body ops issued from buffer
    std::uint64_t opsFromCache = 0;    ///< body ops fetched from cache

    bool operator==(const LoopStats &o) const
    {
        return key == o.key && name == o.name &&
               imageOps == o.imageOps && bufAddr == o.bufAddr &&
               activations == o.activations &&
               recordings == o.recordings &&
               evictions == o.evictions &&
               iterations == o.iterations &&
               bufferIterations == o.bufferIterations &&
               opsFromBuffer == o.opsFromBuffer &&
               opsFromCache == o.opsFromCache;
    }
};

/** Aggregate execution statistics. */
struct SimStats
{
    std::uint64_t cycles = 0;
    std::uint64_t bundles = 0;
    std::uint64_t opsFetched = 0;
    std::uint64_t opsFromBuffer = 0;
    std::uint64_t opsNullified = 0;
    std::uint64_t opsSensitive = 0;   ///< slot mode: p-bit set
    std::uint64_t branches = 0;
    std::uint64_t branchesTaken = 0;
    std::uint64_t branchPenaltyCycles = 0;
    std::uint64_t checksum = 0;
    std::vector<std::int64_t> returns;

    /**
     * Per-loop statistics, indexed by dense loop id. Ids are assigned
     * by sorting the static REC/EXEC LoopKeys, so index order equals
     * the LoopKey order the old std::map iterated in. Entries exist
     * for every static loop; use activeLoops() for the ones that ran.
     */
    std::vector<LoopStats> loops;

    /** The loops with at least one activation, in LoopKey order. */
    std::vector<const LoopStats *> activeLoops() const
    {
        std::vector<const LoopStats *> out;
        for (const auto &ls : loops)
            if (ls.activations > 0)
                out.push_back(&ls);
        return out;
    }

    double bufferFraction() const
    {
        return opsFetched ? static_cast<double>(opsFromBuffer) /
                                static_cast<double>(opsFetched)
                          : 0.0;
    }
};

/**
 * Resident-loop trace cache control (decoded engine only).
 *
 * Auto — the default — enables the cache unless the
 * LBP_SIM_NO_TRACE_CACHE environment variable is set non-empty (the
 * scripts/check.sh hook for exercising the general path under
 * sanitizers). On/Off force it regardless of the environment, which
 * the differential tests use to pin both paths.
 */
enum class TraceCacheMode
{
    Auto,
    On,
    Off,
};

/**
 * Predicated trace replay control (decoded engine, trace cache on).
 *
 * Auto — the default — enables the predicated tier unless the
 * LBP_SIM_NO_PRED_REPLAY environment variable is set non-empty (the
 * CI/check.sh hook for exercising the legacy strict gating under the
 * full test matrix). On/Off force it regardless of the environment;
 * the engine-differential test pins the off leg against reference,
 * cache-on and cache-off.
 */
enum class PredReplayMode
{
    Auto,
    On,
    Off,
};

/**
 * Counted loops engage replay only with at least this many iterations
 * left (the default for SimConfig::replayMinIters). A trace is a
 * second copy of the body's micro-ops, cold on every engagement after
 * the recording iteration warmed the decoded image; very short
 * activations (unrolled 2–3-trip kernels) pay that cold walk without
 * enough iterations to amortize it and replay slower than the general
 * path. While loops cannot know their trip count and always engage.
 * Tuned on the registry sweep: mpg123's 2-trip synthesis windows
 * regress ~2.5x ungated, the 5–7-trip mpeg2/jpeg kernels still win
 * gated at 4.
 */
constexpr std::int64_t kMinCountedReplayIters = 4;

/** Simulator configuration. */
struct SimConfig
{
    int bufferOps = 256;     ///< loop buffer capacity in operations
    /**
     * SLOT is the universally-correct default: sensitive (lowered)
     * operations consult their slot's standing predicate while
     * unlowered guarded operations still read the predicate register
     * file. REGISTER mode is only valid for code compiled without
     * slot lowering (slot-routed defines bypass the register file).
     */
    PredMode predMode = PredMode::SLOT;
    int branchPenalty = 4;
    std::uint64_t maxBundles = 4'000'000'000ull;

    /**
     * DECODED is the production fast path; REFERENCE is kept as the
     * differential-testing oracle (bit-identical stats guaranteed).
     */
    SimEngine engine = SimEngine::DECODED;

    /** Resident-loop trace cache (see TraceCacheMode). */
    TraceCacheMode traceCache = TraceCacheMode::Auto;

    /** Predicated trace replay tier (see PredReplayMode). */
    PredReplayMode predReplay = PredReplayMode::Auto;

    /**
     * Minimum remaining iterations for a counted loop to engage trace
     * replay (see kMinCountedReplayIters for the tuning rationale).
     * The LBP_SIM_REPLAY_MIN_ITERS environment variable, when set to
     * a non-negative integer, overrides this at VliwSim construction.
     */
    std::int64_t replayMinIters = kMinCountedReplayIters;

    /**
     * Cycle-level event tracing (obs/trace.hh). Null — the default —
     * costs one predicted branch per emission site; both engines
     * emit identical event streams for the same program, which the
     * obs tests assert differentially.
     */
    obs::TraceSink *trace = nullptr;

    /**
     * Per-ExecHandler-kind rdtsc attribution in the decoded engine
     * (read back via VliwSim::opProfCycles). Routes the run through
     * the Traced instantiation — where trace replay never engages —
     * so the production untraced stamp stays free of timing code;
     * SimStats remain bit-identical either way. Effective only when
     * both LBP_TRACE and LBP_PROF are compiled in.
     */
    bool opProf = false;
};

struct DecodedProgram;
struct DecodedFunction;
struct DecodedImage;
struct LoopTable;
class TraceCache;
struct TraceCacheStats;

/**
 * One live hardware-loop activation. Namespace-scope (not nested in
 * VliwSim) because the trace-cache replay loop operates on it too.
 */
struct LoopCtx
{
    LoopKey key;
    int loopId = -1;          ///< dense id into SimStats.loops
    bool counted = false;
    std::int64_t remaining = 0;
    BlockId head = kNoBlock;
    bool buffered = false;    ///< image has a buffer address
    bool fromBuffer = false;  ///< current fetches hit the buffer
    bool pipelined = false;
    int bodyLen = 0;          ///< schedule length L
    int ii = 0;
    int minII = 0;            ///< max(ResMII, RecMII) when pipelined
    std::uint64_t iterations = 0;
    // Resume point for EXEC-entered loops.
    bool isExec = false;
    BlockId resumeBlock = kNoBlock;
    size_t resumeBundle = 0;
    /**
     * Trace cache already declined this activation (untraceable
     * body); dedupes the per-activation bailout counter.
     */
    bool traceDeclined = false;
};

/** How one trace-cache replay engagement ended. */
enum class ReplayOutcome : std::uint8_t
{
    NotEngaged,  ///< untraceable body: general path runs the loop
    CountedDone, ///< counted exit — predicted, falls through free
    WloopExit,   ///< while exit from the buffer — mispredicted
    /**
     * Predicated tier: a non-backedge branch in the body was taken.
     * The caller mirrors the general path's end-of-bundle redirect —
     * loop-context cancellation, the taken-branch penalty, and fetch
     * resuming at sideTarget bundle 0.
     */
    SideExit,
    /**
     * Predicated tier: the guarded backedge was nullified, so the
     * iteration fell through it. The activation stays live and the
     * general path resumes at resumeBundle of the head block.
     */
    BackedgeFellThrough,
};

struct ReplayResult
{
    ReplayOutcome outcome = ReplayOutcome::NotEngaged;
    std::uint32_t resumeBundle = 0;  ///< head bundle after backedge
    BlockId sideTarget = kNoBlock;   ///< SideExit redirect target
    /**
     * SideExit only: the backedge also executed its exit in the same
     * bundle (counted count hit zero, or the while condition failed),
     * so the caller must retire the activation before taking the
     * side-exit redirect — exactly the order the general path's
     * backedge handler + end-of-bundle redirect produce.
     */
    bool ctxDone = false;
    /** With ctxDone: the exit was a while exit (pays the penalty). */
    bool whileExit = false;
};

/** The simulator. */
class VliwSim
{
  public:
    VliwSim(const SchedProgram &code, const SimConfig &cfg);

    /**
     * Run over a pre-built shared decode of the same program: @p image
     * must outlive the sim and stay in sync with @p code's buffer
     * allocation (rebindBufferAddresses after reallocateBuffers). The
     * batched bench sweep uses this to decode once per compile and
     * share the read-only image across a buffer-size sweep.
     */
    VliwSim(const SchedProgram &code, const SimConfig &cfg,
            const DecodedImage *image);

    ~VliwSim();

    /** Run the program's entry function; memory is re-imaged. */
    SimStats run(const std::vector<std::int64_t> &args = {});

    const LoopBuffer &buffer() const { return buffer_; }

    /**
     * Trace-cache side counters for the last run; null when the cache
     * is disabled (config, env override, or REFERENCE engine).
     */
    const TraceCacheStats *traceCacheStats() const;

    /**
     * Closed per-loop cycle accounting for the last run (side-band,
     * like TraceCacheStats — never part of the differentially
     * compared SimStats, because the IssueFromTraceReplay refinement
     * exists only in the decoded engine with the cache on). Totals
     * sum exactly to SimStats::cycles in every configuration.
     */
    const obs::CycleStack &cycleStack() const { return cycleStack_; }

    /**
     * Per-ExecHandler rdtsc windows from the last SimConfig::opProf
     * run, indexed by ExecHandler value (kOpProfSlots entries; zeros
     * when op profiling was off or not compiled in). A "window" is
     * the cycle span from one op's dispatch to the next op's — the
     * handler body plus its share of dispatch overhead.
     */
    static constexpr std::size_t kOpProfSlots = 16;
    const std::uint64_t *opProfCycles() const
    {
        return opProfCycles_.data();
    }

  private:
    struct Frame
    {
        const Function *fn = nullptr;
        const SchedFunction *sf = nullptr;
        std::vector<std::int64_t> regs;
        std::vector<std::uint8_t> preds;
    };

    std::vector<std::int64_t> callFunction(FuncId f,
                                           const std::vector<std::int64_t>
                                               &args);

    /** Decoded fast-path twin of callFunction (vliw_sim_decoded.cc). */
    std::vector<std::int64_t> callFunctionDecoded(
        FuncId f, const std::vector<std::int64_t> &args);

    /**
     * The decoded executor body, stamped out twice: Traced=false is
     * the production hot path with every emission site compiled out
     * (bit-identical code to a build without tracing), Traced=true
     * carries the trace hooks. callFunctionDecoded dispatches on
     * cfg_.trace once per call, not per bundle.
     */
    template <bool Traced>
    std::vector<std::int64_t> callFunctionDecodedImpl(
        FuncId f, const std::vector<std::int64_t> &args);

    /**
     * Replay the resident loop on top of the loop stack from its
     * cached trace (trace_cache.cc). Called from the untraced decoded
     * body at any bundle boundary inside the loop head; @p startBundle
     * is the dispatcher's current bundle index, so a predicated trace
     * can engage mid-activation (partial first iteration) instead of
     * waiting for the next bundle-0 arrival. NotEngaged means the
     * body is untraceable — or the arrival point is outside the trace
     * extent — and the general path must run it.
     */
    ReplayResult replayResident(LoopCtx &ctx,
                                const DecodedFunction &df,
                                std::int64_t *regs,
                                std::uint8_t *preds,
                                std::size_t startBundle);

    std::int64_t readOperand(const Frame &fr, const Operand &o) const;
    bool opExecutes(const Frame &fr, const Operation &op,
                    int slot) const;

    /**
     * The single redirect charge site shared by both engines: the
     * cycle cost, the legacy branchPenaltyCycles counter, and the
     * cycle-stack attribution move together so class assignment
     * cannot drift between executors. @p loopRow is the dense loop id
     * the penalty belongs to (-1 = outside any loop).
     */
    void chargeRedirect(obs::CycleClass cls, int loopRow)
    {
        stats_.branchPenaltyCycles +=
            static_cast<std::uint64_t>(cfg_.branchPenalty);
        stats_.cycles +=
            static_cast<std::uint64_t>(cfg_.branchPenalty);
        cycleStack_.charge(
            loopRow, cls,
            static_cast<std::uint64_t>(cfg_.branchPenalty));
    }

    /**
     * Shared loop-retire accounting (vliw_sim.cc): fold @p ctx's
     * iteration count into its LoopStats, apply the pipelined-loop
     * cycle model (an N-iteration buffered activation retires in
     * L + (N-1)*II, so (N-1)*(L-II) issue cycles are uncharged), and
     * reclassify the per-iteration II-minus-minII gap as
     * SchedulerSlack. Engine-specific trace emission stays at the
     * call sites.
     */
    void retireLoopStats(LoopCtx &ctx);

    const SchedProgram &code_;
    SimConfig cfg_;
    LoopBuffer buffer_;
    std::vector<std::uint8_t> mem_;
    SimStats stats_;
    obs::CycleStack cycleStack_;
    std::uint64_t bundlesExecuted_ = 0;
    int callDepth_ = 0;

    /** Static loop-id interning shared by both engines. */
    const LoopTable *loopTable_ = nullptr;

    /** Predecoded image (built when cfg.engine == DECODED). */
    const DecodedProgram *decoded_ = nullptr;

    /** Backing storage when the image is not caller-shared. */
    std::unique_ptr<LoopTable> ownedLoopTable_;
    std::unique_ptr<DecodedProgram> ownedDecoded_;

    /** Resident-loop trace cache (null = disabled). */
    std::unique_ptr<TraceCache> traceCache_;

    /** Per-call frame storage for the decoded engine. */
    FrameArena arena_;

    /** Slot standing predicates (physical machine state). */
    std::array<std::uint8_t, Machine::width> slotPred_;

    /** See opProfCycles(); written only by the Traced stamp. */
    std::array<std::uint64_t, kOpProfSlots> opProfCycles_{};
};

} // namespace lbp

#endif // LBP_SIM_VLIW_SIM_HH
