/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — internal invariant violated (a bug in lbp itself).
 * fatal()  — the caller asked for something lbp cannot do (user error).
 * warn()   — something suspicious but survivable happened.
 */

#ifndef LBP_SUPPORT_LOGGING_HH
#define LBP_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace lbp
{

/** Abort with a bug-class diagnostic. Never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a user-error diagnostic. Never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a non-fatal warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail
{

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatArgs(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace lbp

#define LBP_PANIC(...) \
    ::lbp::panicImpl(__FILE__, __LINE__, ::lbp::detail::formatArgs(__VA_ARGS__))

#define LBP_FATAL(...) \
    ::lbp::fatalImpl(__FILE__, __LINE__, ::lbp::detail::formatArgs(__VA_ARGS__))

#define LBP_WARN(...) \
    ::lbp::warnImpl(__FILE__, __LINE__, ::lbp::detail::formatArgs(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds. */
#define LBP_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::lbp::panicImpl(__FILE__, __LINE__,                            \
                std::string("assertion failed: " #cond " ") +               \
                ::lbp::detail::formatArgs(__VA_ARGS__));                    \
        }                                                                   \
    } while (0)

#endif // LBP_SUPPORT_LOGGING_HH
