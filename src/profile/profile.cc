#include "profile/profile.hh"

namespace lbp
{

void
Profile::onBlock(FuncId f, BlockId b)
{
    blocks_[{f, b}] += 1.0;
    ++totalBlocks_;
}

void
Profile::onBranch(FuncId f, BlockId b, OpId opId, bool taken)
{
    (void)b;
    brExec_[{f, opId}] += 1.0;
    if (taken)
        brTaken_[{f, opId}] += 1.0;
}

double
Profile::blockWeight(FuncId f, BlockId b) const
{
    auto it = blocks_.find({f, b});
    return it == blocks_.end() ? 0.0 : it->second;
}

double
Profile::branchExec(FuncId f, OpId opId) const
{
    auto it = brExec_.find({f, opId});
    return it == brExec_.end() ? 0.0 : it->second;
}

double
Profile::branchTaken(FuncId f, OpId opId) const
{
    auto it = brTaken_.find({f, opId});
    return it == brTaken_.end() ? 0.0 : it->second;
}

double
Profile::takenProb(FuncId f, OpId opId) const
{
    const double e = branchExec(f, opId);
    return e > 0 ? branchTaken(f, opId) / e : 0.0;
}

void
Profile::annotate(Program &prog) const
{
    for (auto &fn : prog.functions) {
        for (auto &bb : fn.blocks) {
            if (!bb.dead)
                bb.weight = blockWeight(fn.id, bb.id);
        }
    }
}

ProfiledRun
profileProgram(Program &prog, const std::vector<std::int64_t> &args)
{
    ProfiledRun out;
    Interpreter interp(prog);
    interp.setProfileSink(&out.profile);
    out.result = interp.run(args);
    out.profile.annotate(prog);
    return out;
}

} // namespace lbp
