/**
 * @file
 * Figure 7 (a/b): percentage of instruction issue satisfied by the
 * loop buffer, per benchmark, across buffer sizes 16..2048, for
 * traditional optimization only (7a) and with hyperblock
 * transformations (7b). Also reports the paper's §1/§7 headline
 * aggregates: mean buffer issue at 256 ops excluding jpeg_enc and
 * mpeg2_enc (paper: 38.7% traditional -> 89.0% transformed, a 137.5%
 * relative increase).
 *
 * Usage: bench_fig7_buffer_issue [--json[=PATH]] [--history[=PATH]]
 *                                [--loops] [--pmu]
 *   --json[=P]     machine-readable results (default
 *                  BENCH_fig7.json); fractions are deterministic, so
 *                  the dump is diffable counter-exact by the
 *                  regression gate
 *   --history[=P]  also append the flattened document to the
 *                  BENCH_history.jsonl timeline (implies --json)
 *   --loops        per-loop scorecard for every workload
 *                  (aggressive, 256-op buffer) after the tables
 *   --pmu          attribute host hardware counters (IPC,
 *                  branch/cache misses) to the profiler's regions
 *                  over the whole run; host-variant, so the "pmu"
 *                  JSON block is recorded but never gated
 */

#include <cstdio>
#include <cstring>

#include "bench_common.hh"
#include "support/stats.hh"

using namespace lbp;
using namespace lbp::bench;

namespace
{

struct Series
{
    std::string name;
    std::vector<double> frac; // per buffer size
};

std::vector<Series>
runLevel(OptLevel level)
{
    std::vector<Series> out;
    for (const auto &name : benchNames()) {
        auto &cr = compileBench(name, level);
        Series s;
        s.name = name;
        for (int size : figureBufferSizes()) {
            const SimStats st = simulate(cr, size);
            s.frac.push_back(st.bufferFraction());
        }
        out.push_back(std::move(s));
    }
    return out;
}

void
printTable(const char *title, const std::vector<Series> &rows)
{
    std::printf("%s\n", title);
    rule();
    std::printf("%-12s", "benchmark");
    for (int size : figureBufferSizes())
        std::printf("%7d", size);
    std::printf("\n");
    rule();
    for (const auto &s : rows) {
        std::printf("%-12s", s.name.c_str());
        for (double f : s.frac)
            std::printf("%7.1f", f * 100.0);
        std::printf("\n");
    }
    rule();
}

double
headlineMean(const std::vector<Series> &rows, size_t sizeIdx)
{
    // The paper's 38.7%/89.0% aggregate excludes jpeg_enc and
    // mpeg2_enc.
    double sum = 0;
    int n = 0;
    for (const auto &s : rows) {
        if (s.name == "jpeg_enc" || s.name == "mpeg2_enc")
            continue;
        sum += s.frac[sizeIdx];
        ++n;
    }
    return n ? sum / n : 0;
}

void
writeJson(const std::string &path, const std::string &historyPath,
          const std::vector<Series> &trad,
          const std::vector<Series> &aggr, double headlineTrad,
          double headlineAggr, const obs::CycleRow &cycles,
          obs::Json pmu)
{
    using obs::Json;
    Json doc = benchJsonDoc("fig7");

    Json config = Json::object();
    Json bs = Json::array();
    for (int s : figureBufferSizes())
        bs.push(Json::integer(s));
    config.set("buffer_sizes", std::move(bs));
    doc.set("config", std::move(config));

    auto seriesJson = [&](const std::vector<Series> &rows) {
        Json arr = Json::array();
        for (const auto &s : rows) {
            Json row = Json::object();
            row.set("workload", Json::str(s.name));
            Json fr = Json::array();
            for (double f : s.frac)
                fr.push(Json::number(f));
            row.set("bufferFraction", std::move(fr));
            arr.push(std::move(row));
        }
        return arr;
    };
    doc.set("traditional", seriesJson(trad));
    doc.set("aggressive", seriesJson(aggr));

    Json headline = Json::object();
    headline.set("traditional256", Json::number(headlineTrad));
    headline.set("aggressive256", Json::number(headlineAggr));
    if (headlineTrad > 0) {
        headline.set("relativeIncrease",
                     Json::number((headlineAggr - headlineTrad) /
                                  headlineTrad));
    }
    doc.set("headline", std::move(headline));

    // Closed cycle accounting at the headline configuration
    // (aggressive, 256-op buffer), summed over every workload.
    doc.set("cycle_stack", cycleStackJson(cycles));

    // Host-variant counters (PerPoint: recorded, never gated).
    doc.set("pmu", std::move(pmu));

    writeBenchJson(path, doc);
    if (!historyPath.empty())
        appendBenchHistory(historyPath, doc);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions o;
    if (!parseBenchOptions(argc, argv,
                           kBenchFlagJson | kBenchFlagHistory |
                               kBenchFlagLoops | kBenchFlagPmu,
                           "BENCH_fig7.json", o))
        return 2;
    startBenchPmu(o);

    std::printf("=== Figure 7: instruction issue from the loop buffer "
                "(%%) ===\n\n");

    auto trad = runLevel(OptLevel::Traditional);
    printTable("Figure 7a — traditional code optimization only", trad);
    std::printf("\n");
    auto aggr = runLevel(OptLevel::Aggressive);
    printTable("Figure 7b — with hyperblock transformations", aggr);

    // Index of 256 in the size list.
    size_t idx256 = 0;
    for (size_t i = 0; i < figureBufferSizes().size(); ++i)
        if (figureBufferSizes()[i] == 256)
            idx256 = i;

    const double t = headlineMean(trad, idx256);
    const double a = headlineMean(aggr, idx256);
    std::printf("\nHeadline (256-op buffer, excl. jpeg_enc/mpeg2_enc):\n");
    std::printf("  traditional: %s   (paper: 38.7%%)\n",
                pct(t).c_str());
    std::printf("  transformed: %s   (paper: 89.0%%)\n",
                pct(a).c_str());
    if (t > 0) {
        std::printf("  relative increase: %s   (paper: 137.5%%)\n",
                    pct((a - t) / t).c_str());
    }

    if (o.loops) {
        std::printf("\n=== Per-loop scorecards (aggressive, 256-op "
                    "buffer) ===\n\n");
        dumpLoopScorecards(OptLevel::Aggressive, 256);
    }
    if (o.json) {
        // Where the headline configuration's cycles go: one extra
        // run per workload at (aggressive, 256), stacks summed.
        obs::CycleRow cycles{};
        for (const auto &name : benchNames()) {
            auto &cr = compileBench(name, OptLevel::Aggressive);
            obs::CycleStack cs;
            simulate(cr, 256, PredMode::SLOT, SimEngine::DECODED,
                     nullptr, &cs);
            const obs::CycleRow row = cs.totals();
            for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k)
                cycles[k] += row[k];
        }
        writeJson(o.jsonPath, o.historyPath, trad, aggr, t, a,
                  cycles, finishBenchPmu(o));
    } else if (o.pmu) {
        finishBenchPmu(o); // table only — no document to carry it
    }
    return 0;
}
