#include "ir/program.hh"

#include "support/logging.hh"

namespace lbp
{

FuncId
Program::newFunction(const std::string &fname)
{
    Function f;
    f.id = static_cast<FuncId>(functions.size());
    f.name = fname;
    functions.push_back(std::move(f));
    return functions.back().id;
}

FuncId
Program::findFunction(const std::string &fname) const
{
    for (const auto &f : functions)
        if (f.name == fname)
            return f.id;
    return kNoFunc;
}

std::int64_t
Program::allocData(std::int64_t bytes, std::int64_t align)
{
    LBP_ASSERT(bytes >= 0 && align > 0, "bad allocData request");
    std::int64_t base = static_cast<std::int64_t>(memory.size());
    base = (base + align - 1) / align * align;
    memory.resize(static_cast<size_t>(base + bytes), 0);
    return base;
}

void
Program::poke8(std::int64_t addr, std::uint8_t v)
{
    LBP_ASSERT(addr >= 0 &&
               static_cast<size_t>(addr) < memory.size(), "poke8 oob");
    memory[static_cast<size_t>(addr)] = v;
}

void
Program::poke16(std::int64_t addr, std::int16_t v)
{
    poke8(addr, static_cast<std::uint8_t>(v & 0xff));
    poke8(addr + 1, static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void
Program::poke32(std::int64_t addr, std::int32_t v)
{
    for (int i = 0; i < 4; ++i)
        poke8(addr + i, static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::int32_t
Program::peek32(std::int64_t addr) const
{
    LBP_ASSERT(addr >= 0 &&
               static_cast<size_t>(addr) + 3 < memory.size(), "peek32 oob");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(memory[addr + i]) << (8 * i);
    return static_cast<std::int32_t>(v);
}

int
Program::sizeOps() const
{
    int n = 0;
    for (const auto &f : functions)
        n += f.sizeOps();
    return n;
}

} // namespace lbp
