/**
 * @file
 * Function: a named CFG of basic blocks with virtual register supply,
 * parameter/return conventions, and profile annotations.
 */

#ifndef LBP_IR_FUNCTION_HH
#define LBP_IR_FUNCTION_HH

#include <string>
#include <vector>

#include "ir/basic_block.hh"
#include "ir/types.hh"

namespace lbp
{

class Function
{
  public:
    FuncId id = kNoFunc;
    std::string name;

    /** Registers receiving arguments, in order. */
    std::vector<RegId> params;

    /** Number of values returned via RET srcs. */
    int numReturns = 0;

    BlockId entry = kNoBlock;

    /** Blocks indexed by id; dead blocks are tombstones. */
    std::vector<BasicBlock> blocks;

    /** Next fresh virtual register / predicate / op id. */
    RegId nextReg = 1;
    PredId nextPred = 1;
    OpId nextOpId = 1;

    /** Disallow inlining (e.g. recursive or intentionally opaque). */
    bool noInline = false;

    /** Create a new block and return its id. */
    BlockId newBlock(const std::string &bname = "");

    /** Allocate a fresh virtual register. */
    RegId newReg() { return nextReg++; }

    /** Allocate a fresh virtual predicate register. */
    PredId newPred() { return nextPred++; }

    /** Assign a fresh operation id. */
    OpId newOpId() { return nextOpId++; }

    BasicBlock &block(BlockId b) { return blocks[b]; }
    const BasicBlock &block(BlockId b) const { return blocks[b]; }

    /** Ids of all live (non-dead) blocks. */
    std::vector<BlockId> liveBlocks() const;

    /** Predecessor map: preds[b] = blocks with an edge into b. */
    std::vector<std::vector<BlockId>> predecessors() const;

    /** Reverse-postorder over live, reachable blocks from entry. */
    std::vector<BlockId> reversePostorder() const;

    /** Total non-NOP operations across live blocks. */
    int sizeOps() const;

    /**
     * Assign fresh op ids to any operation with id 0 and return the
     * count of operations touched.
     */
    int assignOpIds();

    /** Mark unreachable blocks dead; returns number removed. */
    int pruneUnreachable();
};

} // namespace lbp

#endif // LBP_IR_FUNCTION_HH
