#include "mach/machine.hh"

#include "support/logging.hh"

namespace lbp
{

namespace
{

constexpr std::uint8_t
bit(UnitClass u)
{
    return static_cast<std::uint8_t>(1u << static_cast<unsigned>(u));
}

} // namespace

Machine::Machine()
{
    const std::uint8_t IALU = bit(UnitClass::IALU);
    const std::uint8_t IMUL = bit(UnitClass::IMUL);
    const std::uint8_t MEM = bit(UnitClass::MEM);
    const std::uint8_t BR = bit(UnitClass::BR);
    const std::uint8_t FPU = bit(UnitClass::FPU);
    const std::uint8_t PRED = bit(UnitClass::PRED);

    caps_[0] = IALU | PRED | BR;
    caps_[1] = IALU | PRED | MEM;
    caps_[2] = IALU | MEM;
    caps_[3] = IALU | MEM;
    caps_[4] = IALU | PRED;
    caps_[5] = IALU | PRED;
    caps_[6] = IALU | IMUL | FPU;
    caps_[7] = IALU | IMUL | FPU;

    for (int u = 0; u < static_cast<int>(UnitClass::NUM_CLASSES); ++u) {
        for (int s = 0; s < width; ++s) {
            if (caps_[s] & bit(static_cast<UnitClass>(u)))
                slotsFor_[u].push_back(s);
        }
    }
}

bool
Machine::slotSupports(int slot, UnitClass u) const
{
    LBP_ASSERT(slot >= 0 && slot < width, "bad slot ", slot);
    return (caps_[slot] & bit(u)) != 0;
}

bool
Machine::slotSupports(int slot, Opcode op) const
{
    return slotSupports(slot, unitClassOf(op));
}

const std::vector<int> &
Machine::slotsFor(UnitClass u) const
{
    return slotsFor_[static_cast<size_t>(u)];
}

int
Machine::unitCount(UnitClass u) const
{
    return static_cast<int>(slotsFor(u).size());
}

int
Machine::guardFieldBits(int numPreds)
{
    int bits = 0;
    while ((1 << bits) < numPreds)
        ++bits;
    return bits;
}

} // namespace lbp
