#include "sim/decoded.hh"

#include <algorithm>

#include "obs/prof.hh"
#include "support/logging.hh"

namespace lbp
{

int
LoopTable::idOf(const LoopKey &key) const
{
    auto it = std::lower_bound(keys.begin(), keys.end(), key);
    LBP_ASSERT(it != keys.end() && *it == key,
               "unknown loop key (func ", key.func, ", op ",
               key.recOp, ")");
    return static_cast<int>(it - keys.begin());
}

LoopTable
buildLoopTable(const SchedProgram &code)
{
    LBP_ASSERT(code.ir != nullptr, "SchedProgram without IR link");
    const Program &prog = *code.ir;

    struct StaticLoop
    {
        LoopKey key;
        const Function *fn = nullptr;
        const Operation *op = nullptr;
        const SchedBlock *body = nullptr;
    };
    std::vector<StaticLoop> found;

    for (FuncId f = 0; f < code.functions.size(); ++f) {
        const Function &fn = prog.functions[f];
        const SchedFunction &sf = code.functions[f];
        for (const SchedBlock &sb : sf.blocks) {
            if (!sb.valid)
                continue;
            for (const Bundle &bu : sb.bundles) {
                for (const SchedOp &so : bu.ops) {
                    if (!isBufferOp(so.op.op))
                        continue;
                    const Operation &op = so.op;
                    LBP_ASSERT(op.target != kNoBlock &&
                                   op.target < sf.blocks.size(),
                               "buffer op without loop head in ",
                               fn.name);
                    found.push_back({{f, op.id}, &fn, &op,
                                     &sf.blocks[op.target]});
                }
            }
        }
    }
    std::sort(found.begin(), found.end(),
              [](const StaticLoop &a, const StaticLoop &b) {
                  return a.key < b.key;
              });

    LoopTable table;
    table.keys.reserve(found.size());
    table.proto.reserve(found.size());
    for (const StaticLoop &sl : found) {
        LBP_ASSERT(table.keys.empty() || !(table.keys.back() == sl.key),
                   "duplicate loop key");
        table.keys.push_back(sl.key);
        LoopStats ls;
        ls.key = sl.key;
        ls.name = sl.fn->name + "/" +
                  sl.fn->blocks[sl.op->target].name;
        ls.imageOps = sl.body->imageOps();
        ls.bufAddr = sl.op->bufAddr;
        table.proto.push_back(std::move(ls));
    }
    return table;
}

ExecHandler
classifyHandler(Opcode op)
{
    switch (op) {
      case Opcode::PRED_DEF: return ExecHandler::PRED_DEF;
      case Opcode::LD_B:
      case Opcode::LD_H:
      case Opcode::LD_W: return ExecHandler::LOAD;
      case Opcode::ST_B:
      case Opcode::ST_H:
      case Opcode::ST_W: return ExecHandler::STORE;
      case Opcode::MOV: return ExecHandler::MOV;
      case Opcode::ABS: return ExecHandler::ABS;
      case Opcode::ITOF: return ExecHandler::ITOF;
      case Opcode::FTOI: return ExecHandler::FTOI;
      case Opcode::SELECT: return ExecHandler::SELECT;
      case Opcode::BR:
      case Opcode::BR_WLOOP: return ExecHandler::BR;
      case Opcode::JUMP: return ExecHandler::JUMP;
      case Opcode::BR_CLOOP: return ExecHandler::BR_CLOOP;
      case Opcode::REC_CLOOP:
      case Opcode::REC_WLOOP:
      case Opcode::EXEC_CLOOP:
      case Opcode::EXEC_WLOOP: return ExecHandler::LOOP;
      case Opcode::CALL: return ExecHandler::CALL;
      case Opcode::RET: return ExecHandler::RET;
      case Opcode::NOP:
        LBP_PANIC("NOP has no executor handler");
      default: return ExecHandler::ALU;
    }
}

namespace
{

XSrc
decodeSrc(const Operand &o, std::uint32_t numRegs,
          std::uint32_t numPreds)
{
    XSrc s;
    switch (o.kind) {
      case OperandKind::REG:
        LBP_ASSERT(o.asReg() < numRegs, "reg operand out of range");
        s.kind = XSrc::REG;
        s.idx = o.asReg();
        break;
      case OperandKind::IMM:
        s.kind = XSrc::IMM;
        s.imm = o.value;
        break;
      case OperandKind::PRED:
        LBP_ASSERT(o.asPred() < numPreds, "pred operand out of range");
        s.kind = XSrc::PRED;
        s.idx = o.asPred();
        break;
      default:
        LBP_PANIC("unreadable operand kind in predecode");
    }
    return s;
}

MicroOp
decodeOp(const SchedOp &so, FuncId f, const SchedFunction &sf,
         const LoopTable &loops, DecodedFunction &df,
         DecodedProgram &dp)
{
    const Operation &op = so.op;
    MicroOp m;
    m.op = op.op;
    m.handler = classifyHandler(op.op);
    m.cond = op.cond;
    m.k0 = op.defKind0;
    m.k1 = op.defKind1;
    m.slot = static_cast<std::int8_t>(so.slot);
    m.sensitive = op.sensitive;
    m.speculative = op.speculative;
    m.guard = op.guard;
    m.target = op.target;
    m.callee = op.callee;
    m.bufAddr = op.bufAddr;
    if (m.guard != kNoPred) {
        LBP_ASSERT(m.guard < df.numPreds, "guard out of range");
    }
    if (m.sensitive) {
        LBP_ASSERT(so.slot >= 0 && so.slot < Machine::width,
                   "sensitive op without slot");
    }

    // Operand lists. CALL/RET are variable-length and spill to the
    // program-level side arrays; everything else fits inline.
    if (op.op == Opcode::CALL || op.op == Opcode::RET) {
        m.xsrcBegin = static_cast<std::uint32_t>(dp.extraSrcs.size());
        for (const Operand &s : op.srcs)
            dp.extraSrcs.push_back(decodeSrc(s, df.numRegs,
                                             df.numPreds));
        m.xsrcCount = static_cast<std::uint32_t>(op.srcs.size());
        if (op.op == Opcode::CALL) {
            m.xdstBegin =
                static_cast<std::uint32_t>(dp.extraDsts.size());
            for (const Operand &d : op.dsts) {
                LBP_ASSERT(d.isReg() && d.asReg() < df.numRegs,
                           "call return register out of range");
                dp.extraDsts.push_back(
                    static_cast<std::int32_t>(d.asReg()));
            }
            m.xdstCount = static_cast<std::uint32_t>(op.dsts.size());
        }
        return m;
    }

    LBP_ASSERT(op.srcs.size() <= 3, "operand overflow in predecode");
    for (size_t i = 0; i < op.srcs.size(); ++i)
        m.src[i] = decodeSrc(op.srcs[i], df.numRegs, df.numPreds);

    if (op.op == Opcode::PRED_DEF) {
        auto decodePredDst = [&](const Operand &d, std::uint8_t &kind,
                                 std::int32_t &idx) {
            if (d.isSlot()) {
                LBP_ASSERT(d.asSlot() >= 0 &&
                               d.asSlot() < Machine::width,
                           "slot destination out of range");
                kind = 2;
                idx = d.asSlot();
            } else {
                LBP_ASSERT(d.isPred() && d.asPred() < df.numPreds,
                           "pred destination out of range");
                kind = 1;
                idx = static_cast<std::int32_t>(d.asPred());
            }
        };
        LBP_ASSERT(!op.dsts.empty(), "PRED_DEF without destination");
        decodePredDst(op.dsts[0], m.pdKind0, m.pdIdx0);
        if (op.dsts.size() > 1)
            decodePredDst(op.dsts[1], m.pdKind1, m.pdIdx1);
        return m;
    }

    if (isBufferOp(op.op)) {
        m.counted = op.op == Opcode::REC_CLOOP ||
                    op.op == Opcode::EXEC_CLOOP;
        m.loopId = loops.idOf({f, op.id});
        LBP_ASSERT(op.target != kNoBlock &&
                       op.target < sf.blocks.size(),
                   "buffer op without loop head");
        const SchedBlock &body = sf.blocks[op.target];
        m.pipelined = body.pipelined;
        m.bodyLen = body.lengthCycles();
        m.ii = body.ii;
        m.minII = body.minII;
        m.imageOps = body.imageOps();
        return m;
    }

    if (!op.dsts.empty()) {
        LBP_ASSERT(op.dsts.size() == 1 && op.dsts[0].isReg() &&
                       op.dsts[0].asReg() < df.numRegs,
                   "bad register destination in predecode for ",
                   opcodeName(op.op));
        m.dstReg = static_cast<std::int32_t>(op.dsts[0].asReg());
    }
    return m;
}

} // namespace

DecodedProgram
decodeProgram(const SchedProgram &code, const LoopTable &loops)
{
    LBP_ASSERT(code.ir != nullptr, "SchedProgram without IR link");
    const Program &prog = *code.ir;

    DecodedProgram dp;
    dp.code = &code;
    dp.functions.resize(code.functions.size());

    for (FuncId f = 0; f < code.functions.size(); ++f) {
        const Function &fn = prog.functions[f];
        const SchedFunction &sf = code.functions[f];
        DecodedFunction &df = dp.functions[f];
        df.fn = &fn;
        df.entry = fn.entry;
        df.numRegs = fn.nextReg;
        df.numPreds = std::max<PredId>(fn.nextPred, 1);
        df.params = fn.params;
        df.numReturns = static_cast<std::uint32_t>(fn.numReturns);
        df.blocks.resize(fn.blocks.size());

        for (BlockId b = 0; b < fn.blocks.size(); ++b) {
            const BasicBlock &ibb = fn.blocks[b];
            const SchedBlock &sb = sf.blocks[b];
            DecodedBlock &db = df.blocks[b];
            db.fallthrough = ibb.fallthrough;
            db.valid = sb.valid && !ibb.dead;
            if (!db.valid)
                continue;
            db.firstBundle =
                static_cast<std::uint32_t>(df.bundles.size());
            db.bundleCount =
                static_cast<std::uint32_t>(sb.bundles.size());
            for (const Bundle &bu : sb.bundles) {
                LBP_ASSERT(bu.ops.size() <=
                               static_cast<size_t>(Machine::width),
                           "overwide bundle in predecode");
                DecodedBundle dbu;
                dbu.first = static_cast<std::uint32_t>(df.ops.size());
                dbu.sizeOps = bu.sizeOps();
                for (const SchedOp &so : bu.ops) {
                    if (so.op.op == Opcode::NOP)
                        continue;
                    df.ops.push_back(
                        decodeOp(so, f, sf, loops, df, dp));
                }
                dbu.count = static_cast<std::uint32_t>(df.ops.size()) -
                            dbu.first;
                df.bundles.push_back(dbu);
            }
        }
    }
    return dp;
}

DecodedImage
buildDecodedImage(const SchedProgram &code)
{
    obs::prof::ScopedRegion profRegion(obs::prof::Region::Decode);
    DecodedImage img;
    img.loops = buildLoopTable(code);
    img.program = decodeProgram(code, img.loops);
    return img;
}

void
rebindBufferAddresses(DecodedImage &img, const SchedProgram &code)
{
    // Current allocation, gathered exactly as buildLoopTable scans.
    std::vector<std::int32_t> addr(img.loops.keys.size(), -1);
    for (FuncId f = 0; f < code.functions.size(); ++f) {
        for (const SchedBlock &sb : code.functions[f].blocks) {
            if (!sb.valid)
                continue;
            for (const Bundle &bu : sb.bundles) {
                for (const SchedOp &so : bu.ops) {
                    if (!isBufferOp(so.op.op))
                        continue;
                    addr[img.loops.idOf({f, so.op.id})] =
                        so.op.bufAddr;
                }
            }
        }
    }
    for (std::size_t i = 0; i < addr.size(); ++i)
        img.loops.proto[i].bufAddr = addr[i];
    for (DecodedFunction &df : img.program.functions) {
        for (MicroOp &m : df.ops) {
            if (m.loopId >= 0)
                m.bufAddr = addr[m.loopId];
        }
    }
}

} // namespace lbp
