/**
 * @file
 * Scheduled-code representation: bundles of slot-assigned operations,
 * per-block schedules with loop metadata (initiation interval, MVE
 * factor, buffer image size), and the program-level code image the
 * VLIW simulator executes.
 */

#ifndef LBP_SCHED_SCHEDULE_HH
#define LBP_SCHED_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"
#include "mach/machine.hh"

namespace lbp
{

/** One operation with its issue-slot assignment. */
struct SchedOp
{
    Operation op;
    int slot = kNoSlot;
};

/** One VLIW issue cycle: up to `Machine::width` slot-distinct ops. */
struct Bundle
{
    std::vector<SchedOp> ops;

    /** Global operation address of the first op (set at link time). */
    std::int64_t addr = -1;

    /**
     * Size in memory operations. Compressed encoding stores no NOPs,
     * but an all-NOP cycle still occupies one (multi-cycle-NOP) op.
     */
    int sizeOps() const
    { return ops.empty() ? 1 : static_cast<int>(ops.size()); }
};

/** Scheduled form of one basic block. */
struct SchedBlock
{
    BlockId irBlock = kNoBlock;
    bool valid = false;
    std::vector<Bundle> bundles;

    // Loop-body metadata (meaningful when isLoopBody).
    bool isLoopBody = false;
    bool pipelined = false;
    int ii = 0;          ///< initiation interval (pipelined loops)
    int minII = 0;       ///< max(ResMII, RecMII) lower bound
    int mveFactor = 1;   ///< modulo-variable-expansion copies

    /** Total real (non-NOP) ops across bundles. */
    int sizeOps() const;

    /**
     * Size of the loop's image in the buffer: the MVE-expanded kernel
     * for pipelined loops, the plain body otherwise.
     */
    int imageOps() const { return sizeOps() * mveFactor; }

    /** Schedule length in cycles. */
    int lengthCycles() const
    { return static_cast<int>(bundles.size()); }
};

/** Scheduled form of one function. */
struct SchedFunction
{
    FuncId func = kNoFunc;
    /** Indexed by BlockId; dead blocks have valid == false. */
    std::vector<SchedBlock> blocks;

    int sizeOps() const;
};

/** Scheduled form of a program, the simulator's executable. */
struct SchedProgram
{
    const Program *ir = nullptr;
    std::vector<SchedFunction> functions;

    /** Static code size in (compressed) operations. */
    int sizeOps() const;

    /**
     * Assign global operation addresses to every bundle (functions in
     * id order, blocks in id order, bundles sequentially).
     */
    void link();
};

/**
 * Validate a block schedule against @p machine and its dependence
 * graph: slot capabilities, one op per slot per cycle, and all
 * distance-0 latencies respected (distance-1 modulo II for pipelined
 * loops). Returns human-readable violations (empty = valid).
 */
std::vector<std::string> validateSchedule(const BasicBlock &bb,
                                          const SchedBlock &sb,
                                          const Machine &machine);

} // namespace lbp

#endif // LBP_SCHED_SCHEDULE_HH
