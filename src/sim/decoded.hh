/**
 * @file
 * Predecoded execution image for the VLIW simulator's fast path.
 *
 * The reference interpreter re-resolves every operand kind through a
 * switch, chases the SchedOp/Operation vector-of-vectors layout, and
 * re-derives loop metadata on every activation. The predecode pass
 * lowers a SchedProgram once into flat, contiguous arrays:
 *
 *  - operands resolved to direct register / immediate / predicate
 *    slots (XSrc), validated against frame sizes at decode time so
 *    the executor needs no per-read range checks;
 *  - one POD MicroOp per real (non-NOP) operation, bundle extents as
 *    index ranges into one dense per-function op array;
 *  - loop-carrying ops (REC/EXEC) annotated with their interned dense
 *    loop id and static body metadata (length, II, image size);
 *  - variable-length CALL/RET operand lists spilled to side arrays.
 *
 * The LoopTable interns every static LoopKey to a dense integer id in
 * LoopKey sort order, which turns SimStats.loops into a flat vector
 * whose index order matches the iteration order of the old
 * std::map<LoopKey, LoopStats>.
 */

#ifndef LBP_SIM_DECODED_HH
#define LBP_SIM_DECODED_HH

#include <cstdint>
#include <vector>

#include "sim/vliw_sim.hh"

namespace lbp
{

/**
 * Dense interning of every static REC/EXEC loop in a SchedProgram.
 * Ids are positions in the LoopKey sort order.
 */
struct LoopTable
{
    std::vector<LoopKey> keys;        ///< sorted; index = dense id
    std::vector<LoopStats> proto;     ///< prefilled static fields

    /** Dense id of @p key; fatal if the key is unknown. */
    int idOf(const LoopKey &key) const;
};

/** Build the loop table by scanning all scheduled REC/EXEC ops. */
LoopTable buildLoopTable(const SchedProgram &code);

/** A resolved source operand. */
struct XSrc
{
    enum Kind : std::uint8_t { REG, IMM, PRED };
    Kind kind = IMM;
    std::uint32_t idx = 0;     ///< register / predicate index
    std::int64_t imm = 0;      ///< immediate payload
};

/**
 * Dispatch class of a MicroOp, assigned once at predecode. The
 * executor dispatches on this byte — either through a computed-goto
 * label table (LBP_THREADED_DISPATCH on GCC/Clang) or a dense switch —
 * instead of re-classifying the full Opcode per execution. Opcodes
 * that share a handler share a value (all loads, all stores, the
 * binary ALU family, REC/EXEC, BR/BR_WLOOP).
 */
enum class ExecHandler : std::uint8_t
{
    PRED_DEF,
    LOAD,
    STORE,
    MOV,
    ABS,
    ITOF,
    FTOI,
    SELECT,
    BR,        ///< BR and BR_WLOOP (cond + possible wloop backedge)
    JUMP,
    BR_CLOOP,
    LOOP,      ///< REC_CLOOP/REC_WLOOP/EXEC_CLOOP/EXEC_WLOOP
    CALL,
    RET,
    ALU,       ///< two-source arithmetic/logic/compare family
    COUNT,
};

/** Handler class for @p op (NOPs never reach the executor). */
ExecHandler classifyHandler(Opcode op);

/** One predecoded operation (POD, fixed size). */
struct MicroOp
{
    Opcode op = Opcode::NOP;
    CmpCond cond = CmpCond::EQ;
    PredDefKind k0 = PredDefKind::NONE;
    PredDefKind k1 = PredDefKind::NONE;

    ExecHandler handler = ExecHandler::ALU;
    /**
     * Trace-cache replay only: the op can never be nullified under
     * the mode the trace was built for (no guard, and in SLOT mode
     * not sensitive). Unused by the general executor.
     */
    bool alwaysExec = false;

    std::int8_t slot = kNoSlot;
    bool sensitive = false;
    bool speculative = false;
    bool counted = false;       ///< REC/EXEC: counted loop
    bool pipelined = false;     ///< REC/EXEC: body is modulo-scheduled

    PredId guard = kNoPred;
    std::int32_t dstReg = -1;   ///< primary register destination

    /** PRED_DEF destinations: 0 = none, 1 = predicate, 2 = slot. */
    std::uint8_t pdKind0 = 0, pdKind1 = 0;
    std::int32_t pdIdx0 = 0, pdIdx1 = 0;

    XSrc src[3];

    BlockId target = kNoBlock;
    FuncId callee = kNoFunc;
    std::int32_t bufAddr = -1;

    // REC/EXEC static loop metadata.
    std::int32_t loopId = -1;
    std::int32_t bodyLen = 0;
    std::int32_t ii = 0;
    std::int32_t minII = 0;     ///< max(ResMII, RecMII) when pipelined
    std::int32_t imageOps = 0;

    // CALL argument / RET value list (XSrc) in extraSrcs.
    std::uint32_t xsrcBegin = 0, xsrcCount = 0;
    // CALL return-register list in extraDsts.
    std::uint32_t xdstBegin = 0, xdstCount = 0;
};

/** Bundle extent in the per-function MicroOp array. */
struct DecodedBundle
{
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    std::int32_t sizeOps = 0;   ///< fetch size (compressed encoding)
};

/** Block extent in the per-function bundle array. */
struct DecodedBlock
{
    std::uint32_t firstBundle = 0;
    std::uint32_t bundleCount = 0;
    BlockId fallthrough = kNoBlock;
    bool valid = false;         ///< scheduled and alive
};

/** Decoded form of one function. */
struct DecodedFunction
{
    std::vector<MicroOp> ops;         ///< dense, NOP-free
    std::vector<DecodedBundle> bundles;
    std::vector<DecodedBlock> blocks; ///< indexed by BlockId
    BlockId entry = kNoBlock;
    std::uint32_t numRegs = 0;
    std::uint32_t numPreds = 1;
    std::vector<RegId> params;
    std::uint32_t numReturns = 0;
    const Function *fn = nullptr;     ///< for diagnostics only
};

/** Decoded form of a program. */
struct DecodedProgram
{
    const SchedProgram *code = nullptr;
    std::vector<DecodedFunction> functions;
    std::vector<XSrc> extraSrcs;
    std::vector<std::int32_t> extraDsts;
};

/**
 * Predecode @p code. The pass validates what the reference
 * interpreter asserts per-access (operand ranges, slot assignment of
 * sensitive ops, one control transfer shape) so the executor can run
 * without those checks. @p loops must be the table built from the
 * same (re-linked) SchedProgram.
 */
DecodedProgram decodeProgram(const SchedProgram &code,
                             const LoopTable &loops);

/**
 * A complete shareable predecode of one SchedProgram: the interned
 * loop table plus the micro-op image built against it. Several sim
 * instances can run over one image concurrently (it is read-only at
 * run time), which is what the batched bench sweep does to amortize
 * decode across a buffer-size sweep.
 */
struct DecodedImage
{
    LoopTable loops;
    DecodedProgram program;
};

/** Predecode @p code into a self-contained shareable image. */
DecodedImage buildDecodedImage(const SchedProgram &code);

/**
 * Refresh the buffer-allocation-dependent fields of @p img after a
 * reallocateBuffers() pass mutated the SchedProgram it was decoded
 * from: the bufAddr captured on every REC/EXEC MicroOp and in the
 * LoopTable's per-loop prototypes. Everything else in the image is
 * allocation-invariant, so a size sweep can decode once and rebind
 * per point instead of re-decoding the whole program.
 */
void rebindBufferAddresses(DecodedImage &img, const SchedProgram &code);

} // namespace lbp

#endif // LBP_SIM_DECODED_HH
