/**
 * @file
 * Analysis tests: dominators, loop detection and induction
 * recognition, liveness, and the dependence graph (including RecMII).
 */

#include <gtest/gtest.h>

#include "analysis/dependence.hh"
#include "analysis/dominators.hh"
#include "analysis/liveness.hh"
#include "analysis/loop_info.hh"
#include "ir/builder.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** entry -> (then | else) -> join -> ret diamond. */
Program
diamondProgram(BlockId &thenB, BlockId &elseB, BlockId &join)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    thenB = b.makeBlock("then");
    elseB = b.makeBlock("else");
    join = b.makeBlock("join");
    b.br(CmpCond::EQ, I(0), I(0), thenB);
    b.fallTo(elseB);
    b.at(elseB);
    b.jump(join);
    b.at(thenB);
    b.fallTo(join);
    b.at(join);
    b.ret({});
    return prog;
}

TEST(Dominators, Diamond)
{
    BlockId t, e, j;
    Program prog = diamondProgram(t, e, j);
    const Function &fn = prog.functions[0];
    Dominators dom(fn);
    EXPECT_TRUE(dom.dominates(fn.entry, t));
    EXPECT_TRUE(dom.dominates(fn.entry, j));
    EXPECT_FALSE(dom.dominates(t, j));
    EXPECT_FALSE(dom.dominates(e, j));
    EXPECT_EQ(dom.idom(j), fn.entry);
    EXPECT_EQ(dom.idom(t), fn.entry);
}

TEST(LoopInfo, SimpleCountedLoop)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const BlockId head = b.forLoop(2, 20, 3, [&](RegId i) {
        b.add(R(i), I(1));
    });
    b.ret({});
    LoopInfo li(prog.functions[f]);
    ASSERT_EQ(li.loops().size(), 1u);
    const Loop &l = li.loops()[0];
    EXPECT_EQ(l.header, head);
    EXPECT_TRUE(li.isSimple(0));
    ASSERT_TRUE(l.induction.valid);
    EXPECT_TRUE(l.induction.startKnown);
    EXPECT_EQ(l.induction.start, 2);
    EXPECT_EQ(l.induction.step, 3);
    // i = 2, 5, 8, 11, 14, 17 then 20 fails i<20: trip 6.
    EXPECT_EQ(l.induction.constTrip, 6);
}

TEST(LoopInfo, ZeroOrNegativeSpanStillTripsOnce)
{
    // Bottom-test loops execute at least once.
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    b.forLoop(5, 5, 1, [&](RegId i) { b.add(R(i), I(0)); });
    b.ret({});
    LoopInfo li(prog.functions[f]);
    ASSERT_EQ(li.loops().size(), 1u);
    EXPECT_EQ(li.loops()[0].induction.constTrip, 1);
}

TEST(LoopInfo, NestedLoops)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    BlockId inner = kNoBlock;
    const BlockId outer = b.forLoop(0, 4, 1, [&](RegId) {
        inner = b.forLoop(0, 8, 1, [&](RegId j) { b.add(R(j), I(1)); });
    });
    b.ret({});
    LoopInfo li(prog.functions[f]);
    ASSERT_EQ(li.loops().size(), 2u);
    int innerIdx = li.loops()[0].header == inner ? 0 : 1;
    int outerIdx = 1 - innerIdx;
    EXPECT_EQ(li.loops()[innerIdx].parent, outerIdx);
    EXPECT_EQ(li.loops()[innerIdx].depth, 2);
    EXPECT_EQ(li.loops()[outerIdx].depth, 1);
    EXPECT_FALSE(li.isSimple(outerIdx));
    EXPECT_TRUE(li.isSimple(innerIdx));
    EXPECT_EQ(li.loops()[outerIdx].header, outer);
}

TEST(LoopInfo, VariableBoundInduction)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    Function &fn = prog.functions[f];
    const RegId n = fn.newReg();
    fn.params = {n};
    IRBuilder b(prog, f);
    b.forLoopReg(0, n, 1, [&](RegId i) { b.add(R(i), I(1)); });
    b.ret({});
    LoopInfo li(fn);
    ASSERT_EQ(li.loops().size(), 1u);
    EXPECT_TRUE(li.loops()[0].induction.valid);
    EXPECT_EQ(li.loops()[0].induction.constTrip, -1);
    EXPECT_TRUE(li.loops()[0].induction.bound.isReg());
}

TEST(Liveness, UsesAndKills)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId x = b.iconst(1);
    const BlockId next = b.makeBlock();
    b.fallTo(next);
    b.at(next);
    const RegId y = b.add(R(x), I(1));
    b.ret({R(y)});
    Liveness live(prog.functions[f]);
    EXPECT_TRUE(live.liveIn(next).count(x));
    EXPECT_FALSE(live.liveIn(next).count(y));
    EXPECT_TRUE(live.liveOut(prog.functions[f].entry).count(x));
}

TEST(Liveness, LoopCarriedLiveness)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(0);
    const BlockId head = b.forLoop(0, 4, 1, [&](RegId) {
        b.addTo(acc, R(acc), I(1));
    });
    b.ret({R(acc)});
    Liveness live(prog.functions[f]);
    // acc is live around the backedge.
    EXPECT_TRUE(live.liveIn(head).count(acc));
    EXPECT_TRUE(live.liveOut(head).count(acc));
}

TEST(DepGraph, TrueAntiOutput)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId x = b.iconst(1);       // 0: writes x
    const RegId y = b.add(R(x), I(1)); // 1: reads x, writes y
    b.movTo(x, I(5));                  // 2: rewrites x
    b.ret({R(y)});                     // 3
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    DepGraph dg(bb, false);
    bool sawTrue = false, sawAnti = false, sawOutput = false;
    for (const auto &e : dg.edges()) {
        if (e.kind == DepKind::TRUE_ && e.from == 0 && e.to == 1)
            sawTrue = true;
        if (e.kind == DepKind::ANTI && e.from == 1 && e.to == 2)
            sawAnti = true;
        if (e.kind == DepKind::OUTPUT && e.from == 0 && e.to == 2)
            sawOutput = true;
    }
    EXPECT_TRUE(sawTrue);
    EXPECT_TRUE(sawAnti);
    EXPECT_TRUE(sawOutput);
}

TEST(DepGraph, MemoryOrderingWhenAliasing)
{
    // Same base, same offset: the accesses truly conflict and must
    // be ordered.
    Program prog;
    prog.allocData(64);
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId p = b.iconst(0);
    b.storeW(R(p), I(0), I(1));          // 1 (op 0 is iconst)
    const RegId v = b.loadW(R(p), I(0)); // 2
    b.storeW(R(p), I(0), R(v));          // 3
    b.ret({});
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    DepGraph dg(bb, false);
    bool stLd = false, ldSt = false;
    for (const auto &e : dg.edges()) {
        if (e.distance != 0)
            continue;
        if (e.from == 1 && e.to == 2)
            stLd = true;
        if (e.from == 2 && e.to == 3)
            ldSt = true;
    }
    EXPECT_TRUE(stLd);
    EXPECT_TRUE(ldSt);
}

TEST(DepGraph, DisjointOffsetsDisambiguated)
{
    // Same loop-invariant base, disjoint offsets: no memory edges.
    Program prog;
    prog.allocData(64);
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId p = b.iconst(0);
    b.storeW(R(p), I(0), I(1));          // 1
    const RegId v = b.loadW(R(p), I(4)); // 2
    b.storeW(R(p), I(8), R(v));          // 3
    b.ret({});
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    DepGraph dg(bb, false);
    for (const auto &e : dg.edges())
        EXPECT_NE(e.kind, DepKind::MEM);
}

TEST(DepGraph, OverlappingRangesConflict)
{
    // st.w at 0 overlaps ld.h at 2 (word covers bytes 0..3).
    Program prog;
    prog.allocData(64);
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId p = b.iconst(0);
    b.storeW(R(p), I(0), I(1)); // 1
    b.loadH(R(p), I(2));        // 2
    b.ret({});
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    DepGraph dg(bb, false);
    bool conflict = false;
    for (const auto &e : dg.edges())
        conflict |= e.from == 1 && e.to == 2 && e.distance == 0;
    EXPECT_TRUE(conflict);
}

TEST(DepGraph, RewrittenBaseBlocksDisambiguation)
{
    // The base register is redefined between the accesses, so the
    // offset comparison is invalid and the pair must stay ordered.
    Program prog;
    prog.allocData(64);
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId p = b.iconst(0);
    b.storeW(R(p), I(0), I(1));    // 1
    b.movTo(p, I(4));              // 2: base changes
    b.loadW(R(p), I(0));           // 3: actually address 4... or 0?
    b.ret({});
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    DepGraph dg(bb, false);
    bool ordered = false;
    for (const auto &e : dg.edges())
        ordered |= e.from == 1 && e.to == 3 && e.distance == 0 &&
                   e.kind == DepKind::MEM;
    EXPECT_TRUE(ordered);
}

TEST(DepGraph, LoopCarriedDisambiguation)
{
    // A loop writing arr[i] and reading table[j] with distinct
    // loop-invariant bases: only truly-aliasing pairs get
    // distance-1 edges, so the recurrence stays load-free.
    Program prog;
    prog.allocData(1024);
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId arr = b.iconst(0);
    const BlockId head = b.forLoop(0, 16, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId addr = b.add(R(arr), R(i4));
        const RegId v = b.loadW(R(addr), I(512)); // table region
        b.storeW(R(addr), I(0), R(v));            // array region
    });
    b.ret({});
    const BasicBlock &bb = prog.functions[f].blocks[head];
    DepGraph dg(bb, true);
    // Same base register (addr), offsets 512 vs 0, sizes 4: disjoint
    // within an iteration. Cross-iteration the base changes, so the
    // conservative distance-1 edge remains — assert exactly that.
    bool intraConflict = false, carried = false;
    for (const auto &e : dg.edges()) {
        if (e.kind != DepKind::MEM)
            continue;
        if (e.distance == 0)
            intraConflict = true;
        else
            carried = true;
    }
    EXPECT_FALSE(intraConflict);
    EXPECT_TRUE(carried);
}

TEST(DepGraph, HeightsRespectLatency)
{
    Program prog;
    prog.allocData(64);
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId p = b.iconst(0);             // 0
    const RegId v = b.loadW(R(p), I(0));     // 1 (lat 3)
    const RegId m = b.mul(R(v), I(3));       // 2 (lat 2)
    const RegId a = b.add(R(m), I(1));       // 3
    b.ret({R(a)});
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    DepGraph dg(bb, false);
    auto h = dg.heights();
    // Chain: iconst(1) -> load(3) -> mul(2) -> add(1) -> ret.
    EXPECT_GE(h[0], h[1]);
    EXPECT_GE(h[1], 3 + h[2] - 2); // load latency dominates
    EXPECT_GT(h[1], h[3]);
}

TEST(DepGraph, RecMIIAccumulatorChain)
{
    // acc += load(...) each iteration: recurrence on acc with
    // latency 1 -> RecMII small; a mul in the chain raises it.
    Program prog;
    prog.allocData(64);
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 8, 1, [&](RegId) {
        b.mulTo(acc, R(acc), I(3)); // acc = acc*3: latency-2 cycle
    });
    b.ret({R(acc)});
    LoopInfo li(prog.functions[f]);
    ASSERT_EQ(li.loops().size(), 1u);
    const BasicBlock &body =
        prog.functions[f].blocks[li.loops()[0].header];
    DepGraph dg(body, true);
    EXPECT_GE(dg.recMII(), 2);
}

TEST(DepGraph, BranchBarrier)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const BlockId tgt = b.makeBlock();
    b.at(tgt);
    b.ret({});
    b.at(prog.functions[f].entry);
    const RegId x = b.iconst(1);          // 0
    b.br(CmpCond::GT, R(x), I(0), tgt);   // 1
    b.fallTo(tgt);
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    DepGraph dg(bb, false);
    bool intoBranch = false;
    for (const auto &e : dg.edges()) {
        if (e.from == 0 && e.to == 1 && e.distance == 0)
            intoBranch = true;
    }
    EXPECT_TRUE(intoBranch);
}

} // namespace
} // namespace lbp
