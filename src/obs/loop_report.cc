#include "obs/loop_report.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/registry.hh"
#include "power/fetch_energy.hh"
#include "sim/trace_cache.hh"
#include "sim/vliw_sim.hh"
#include "support/logging.hh"

namespace lbp
{
namespace obs
{

const char *
loopReasonName(LoopReason r)
{
    switch (r) {
      case LoopReason::None: return "none";
      case LoopReason::TooLarge: return "TooLarge";
      case LoopReason::HasCall: return "HasCall";
      case LoopReason::AlreadyPredicated: return "AlreadyPredicated";
      case LoopReason::Irreducible: return "Irreducible";
      case LoopReason::MultiLatch: return "MultiLatch";
      case LoopReason::BadShape: return "BadShape";
      case LoopReason::NotInnermost: return "NotInnermost";
      case LoopReason::NotCounted: return "NotCounted";
      case LoopReason::TripTooSmall: return "TripTooSmall";
      case LoopReason::TripTooLarge: return "TripTooLarge";
      case LoopReason::NotProfitable: return "NotProfitable";
      case LoopReason::NotSimple: return "NotSimple";
      case LoopReason::MultiExit: return "MultiExit";
      case LoopReason::PredSlotsExhausted:
        return "PredSlotsExhausted";
      case LoopReason::ColdLoop: return "ColdLoop";
      case LoopReason::NoPreheader: return "NoPreheader";
      case LoopReason::SchedFailed: return "SchedFailed";
    }
    return "?";
}

const char *
loopFateName(LoopFate f)
{
    switch (f) {
      case LoopFate::Unknown: return "unknown";
      case LoopFate::Buffered: return "buffered";
      case LoopFate::Rejected: return "rejected";
      case LoopFate::Eliminated: return "eliminated";
    }
    return "?";
}

LoopDecision &
LoopDecisionLog::decision(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return decisions_[it->second];
    index_.emplace(name, decisions_.size());
    decisions_.emplace_back();
    decisions_.back().name = name;
    return decisions_.back();
}

const LoopDecision *
LoopDecisionLog::find(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &decisions_[it->second];
}

void
LoopDecisionLog::addAttempt(const std::string &name, LoopAttempt a)
{
    LoopDecision &d = decision(name);
    // Fixpoint drivers re-judge unchanged loops every pass; a repeat
    // of the same verdict refreshes the entry instead of duplicating.
    for (auto &prev : d.attempts) {
        if (prev.transform == a.transform &&
            prev.applied == a.applied && prev.reason == a.reason) {
            prev = std::move(a);
            return;
        }
    }
    d.attempts.push_back(std::move(a));
}

LoopScorecard
buildLoopScorecard(const std::string &workload,
                   const LoopDecisionLog &log, const SimStats &stats,
                   int bufferOps, const FetchEnergy *fe,
                   const TraceCacheStats *tc, const CycleStack *cs)
{
    LoopScorecard sc;
    sc.workload = workload;
    sc.bufferOps = bufferOps;
    sc.totalOpsFetched = stats.opsFetched;
    sc.totalOpsFromBuffer = stats.opsFromBuffer;

    // Per-op fetch energies from the workload-level breakdown.
    double memNjPerOp = 0, bufNjPerOp = 0;
    if (fe) {
        if (fe->opsFromMemory)
            memNjPerOp = fe->memoryNj /
                         static_cast<double>(fe->opsFromMemory);
        if (fe->opsFromBuffer)
            bufNjPerOp = fe->bufferNj /
                         static_cast<double>(fe->opsFromBuffer);
    }

    // Simulator loops first: measured dynamics, fate from the joined
    // decision (falling back to the buffer address the image carries).
    for (std::size_t id = 0; id < stats.loops.size(); ++id) {
        const LoopStats &ls = stats.loops[id];
        ScorecardRow row;
        row.name = ls.name;
        row.loopId = static_cast<int>(id);
        row.imageOps = ls.imageOps;
        row.bufAddr = ls.bufAddr;
        row.activations = ls.activations;
        row.recordings = ls.recordings;
        row.evictions = ls.evictions;
        row.iterations = ls.iterations;
        row.opsFromBuffer = ls.opsFromBuffer;
        row.opsFromCache = ls.opsFromCache;
        row.dynOps = ls.opsFromBuffer + ls.opsFromCache;
        row.fate = ls.bufAddr >= 0 ? LoopFate::Buffered
                                   : LoopFate::Rejected;
        if (const LoopDecision *d = log.find(ls.name)) {
            if (row.fate == LoopFate::Rejected)
                row.reason = d->reason;
            row.attempts = d->attempts;
        } else if (row.fate == LoopFate::Rejected) {
            row.reason = LoopReason::NotSimple;
        }
        if (row.fate != LoopFate::Buffered)
            row.missedOps = row.opsFromCache;
        if (tc && id < tc->perLoop.size()) {
            row.replayedOps = tc->perLoop[id].ops;
            if (row.opsFromBuffer)
                row.replayFraction =
                    static_cast<double>(row.replayedOps) /
                    static_cast<double>(row.opsFromBuffer);
            row.bailouts = tc->perLoop[id].bailouts;
            row.bailoutReason = tc->perLoop[id].lastReason;
        }
        row.energyNj =
            static_cast<double>(row.opsFromCache) * memNjPerOp +
            static_cast<double>(row.opsFromBuffer) * bufNjPerOp;
        if (cs) {
            row.hasCycles = true;
            row.cycles = cs->row(static_cast<int>(id));
            for (std::uint64_t c : row.cycles)
                row.totalCycles += c;
        }
        sc.rows.push_back(std::move(row));
    }

    // Decisions with no simulator twin: eliminated loops and natural
    // loops that never became hardware loops. Their dynamics are the
    // profile-weighted static estimate.
    for (const LoopDecision &d : log.decisions()) {
        bool joined = false;
        for (const auto &ls : stats.loops) {
            if (ls.name == d.name) {
                joined = true;
                break;
            }
        }
        if (joined)
            continue;
        ScorecardRow row;
        row.name = d.name;
        row.loopId = -1;
        row.fate = d.fate == LoopFate::Unknown ? LoopFate::Rejected
                                               : d.fate;
        row.reason = d.reason;
        row.imageOps = d.finalOps;
        row.bufAddr = d.bufAddr;
        row.dynOps = static_cast<std::uint64_t>(
            d.estDynOps < 0 ? 0 : d.estDynOps);
        if (row.fate == LoopFate::Rejected) {
            // Non-hardware loops fetch everything from the cache.
            row.opsFromCache = row.dynOps;
            row.missedOps = row.dynOps;
            row.energyNj =
                static_cast<double>(row.opsFromCache) * memNjPerOp;
        }
        row.attempts = d.attempts;
        sc.rows.push_back(std::move(row));
    }

    std::sort(sc.rows.begin(), sc.rows.end(),
              [](const ScorecardRow &a, const ScorecardRow &b) {
                  if (a.dynOps != b.dynOps)
                      return a.dynOps > b.dynOps;
                  return a.name < b.name;
              });

    // The attribution invariant: per-loop buffer ops integrate to the
    // aggregate counter (both engines maintain this by construction).
    LBP_ASSERT(scorecardBufferOps(sc) == stats.opsFromBuffer,
               "per-loop buffer-op attribution does not integrate: ",
               scorecardBufferOps(sc), " != ", stats.opsFromBuffer);

    if (cs) {
        // The closed-sum cycle invariant, checked in both directions:
        // every simulated cycle is in exactly one class, and per-loop
        // rows (plus the outside row) integrate to the workload stack.
        LBP_ASSERT(cs->numRows() == stats.loops.size() + 1,
                   "cycle stack rows (", cs->numRows(),
                   ") do not match the loop table (",
                   stats.loops.size(), " loops)");
        sc.hasCycles = true;
        sc.workloadCycles = cs->totals();
        sc.outsideCycles = cs->row(-1);
        for (std::uint64_t c : sc.workloadCycles)
            sc.totalCycles += c;
        LBP_ASSERT(sc.totalCycles == stats.cycles,
                   "cycle stack is not closed: sum(classes)=",
                   sc.totalCycles, " != cycles=", stats.cycles);
        CycleRow integral = sc.outsideCycles;
        for (const auto &row : sc.rows) {
            if (row.loopId < 0)
                continue;
            for (std::size_t k = 0; k < kNumCycleClasses; ++k)
                integral[k] += row.cycles[k];
        }
        for (std::size_t k = 0; k < kNumCycleClasses; ++k) {
            LBP_ASSERT(integral[k] == sc.workloadCycles[k],
                       "per-loop cycle rows do not integrate for "
                       "class ",
                       cycleClassName(static_cast<CycleClass>(k)),
                       ": ", integral[k],
                       " != ", sc.workloadCycles[k]);
        }
    }
    return sc;
}

std::uint64_t
scorecardBufferOps(const LoopScorecard &sc)
{
    std::uint64_t sum = 0;
    for (const auto &row : sc.rows)
        if (row.loopId >= 0)
            sum += row.opsFromBuffer;
    return sum;
}

namespace
{

std::string
attemptsSummary(const ScorecardRow &row)
{
    std::string s;
    for (const auto &a : row.attempts) {
        if (!s.empty())
            s += " ";
        s += a.transform;
        if (a.applied) {
            const int d = a.opsAfter - a.opsBefore;
            s += "(";
            if (d >= 0)
                s += "+";
            s += std::to_string(d);
            s += ")";
        } else {
            s += "!";
            s += loopReasonName(a.reason);
        }
    }
    return s;
}

} // namespace

void
printScorecard(std::ostream &os, const LoopScorecard &sc)
{
    os << "loop scorecard: " << sc.workload << "  (buffer "
       << sc.bufferOps << " ops; " << sc.totalOpsFromBuffer << "/"
       << sc.totalOpsFetched << " ops from buffer)\n";

    std::size_t w = 4;
    for (const auto &row : sc.rows)
        w = std::max(w, row.name.size());

    os << std::left << std::setw(static_cast<int>(w) + 2) << "loop"
       << std::right << std::setw(4) << "id" << std::setw(11)
       << "fate" << std::setw(20) << "reason" << std::setw(7)
       << "image" << std::setw(7) << "@addr" << std::setw(12)
       << "dynOps" << std::setw(12) << "bufOps" << std::setw(12)
       << "missedOps" << std::setw(9) << "replay%" << std::setw(25)
       << "bailout" << std::setw(12) << "energyNj"
       << "  attempts\n";

    for (const auto &row : sc.rows) {
        os << std::left << std::setw(static_cast<int>(w) + 2)
           << row.name << std::right << std::setw(4);
        if (row.loopId >= 0)
            os << row.loopId;
        else
            os << "-";
        os << std::setw(11) << loopFateName(row.fate)
           << std::setw(20)
           << (row.fate == LoopFate::Rejected
                   ? loopReasonName(row.reason)
                   : "-")
           << std::setw(7) << row.imageOps << std::setw(7);
        if (row.bufAddr >= 0)
            os << row.bufAddr;
        else
            os << "-";
        os << std::setw(12) << row.dynOps << std::setw(12)
           << row.opsFromBuffer << std::setw(12) << row.missedOps
           << std::setw(9);
        if (row.opsFromBuffer)
            os << std::fixed << std::setprecision(1)
               << 100.0 * row.replayFraction << std::defaultfloat;
        else
            os << "-";
        os << std::setw(25);
        if (row.bailouts > 0) {
            os << (std::to_string(row.bailouts) + "*" +
                   traceBailoutReasonName(row.bailoutReason));
        } else {
            os << "-";
        }
        os << std::setw(12) << std::fixed << std::setprecision(1)
           << row.energyNj << std::defaultfloat << "  "
           << attemptsSummary(row) << "\n";
    }
}

void
printScorecardCycles(std::ostream &os, const LoopScorecard &sc)
{
    if (!sc.hasCycles) {
        os << "cycle stack: " << sc.workload
           << "  (no cycle accounting in this run)\n";
        return;
    }

    os << "cycle stack: " << sc.workload << "  (" << sc.totalCycles
       << " cycles)\n";

    std::size_t w = 9;  // "<outside>"
    for (const auto &row : sc.rows)
        if (row.loopId >= 0)
            w = std::max(w, row.name.size());

    os << std::left << std::setw(static_cast<int>(w) + 2) << "loop"
       << std::right;
    for (std::size_t k = 0; k < kNumCycleClasses; ++k) {
        os << std::setw(21)
           << cycleClassName(static_cast<CycleClass>(k));
    }
    os << std::setw(13) << "total\n";

    auto line = [&](const std::string &name, const CycleRow &r) {
        os << std::left << std::setw(static_cast<int>(w) + 2) << name
           << std::right;
        std::uint64_t total = 0;
        for (std::size_t k = 0; k < kNumCycleClasses; ++k) {
            os << std::setw(21) << r[k];
            total += r[k];
        }
        os << std::setw(12) << total << "\n";
    };

    for (const auto &row : sc.rows) {
        if (row.loopId >= 0)
            line(row.name, row.cycles);
    }
    line("<outside>", sc.outsideCycles);
    line("<total>", sc.workloadCycles);
}

/** {"<class>": cycles, ...} with every class present (stable keys). */
static Json
cycleRowToJson(const CycleRow &r)
{
    Json j = Json::object();
    for (std::size_t k = 0; k < kNumCycleClasses; ++k) {
        j.set(cycleClassName(static_cast<CycleClass>(k)),
              Json::uinteger(r[k]));
    }
    return j;
}

Json
scorecardToJson(const LoopScorecard &sc)
{
    Json root = Json::object();
    root.set("workload", Json::str(sc.workload));
    root.set("buffer_ops", Json::integer(sc.bufferOps));
    root.set("ops_fetched", Json::uinteger(sc.totalOpsFetched));
    root.set("ops_from_buffer",
             Json::uinteger(sc.totalOpsFromBuffer));

    Json rows = Json::array();
    for (const auto &row : sc.rows) {
        Json r = Json::object();
        r.set("name", Json::str(row.name));
        r.set("loop_id", Json::integer(row.loopId));
        r.set("fate", Json::str(loopFateName(row.fate)));
        r.set("reason", Json::str(loopReasonName(row.reason)));
        r.set("image_ops", Json::integer(row.imageOps));
        r.set("buf_addr", Json::integer(row.bufAddr));
        r.set("activations", Json::uinteger(row.activations));
        r.set("recordings", Json::uinteger(row.recordings));
        r.set("evictions", Json::uinteger(row.evictions));
        r.set("iterations", Json::uinteger(row.iterations));
        r.set("ops_from_buffer", Json::uinteger(row.opsFromBuffer));
        r.set("ops_from_cache", Json::uinteger(row.opsFromCache));
        r.set("dyn_ops", Json::uinteger(row.dynOps));
        r.set("missed_ops", Json::uinteger(row.missedOps));
        r.set("replayed_ops", Json::uinteger(row.replayedOps));
        r.set("replay_fraction", Json::number(row.replayFraction));
        r.set("bailouts", Json::uinteger(row.bailouts));
        r.set("bailout_reason",
              Json::str(traceBailoutReasonName(row.bailoutReason)));
        r.set("energy_nj", Json::number(row.energyNj));
        if (row.hasCycles) {
            r.set("cycle_stack", cycleRowToJson(row.cycles));
            r.set("total_cycles", Json::uinteger(row.totalCycles));
        }
        Json attempts = Json::array();
        for (const auto &a : row.attempts) {
            Json aj = Json::object();
            aj.set("transform", Json::str(a.transform));
            aj.set("applied", Json::boolean(a.applied));
            aj.set("reason", Json::str(loopReasonName(a.reason)));
            aj.set("ops_before", Json::integer(a.opsBefore));
            aj.set("ops_after", Json::integer(a.opsAfter));
            if (a.ii > 0) {
                aj.set("ii", Json::integer(a.ii));
                aj.set("res_mii", Json::integer(a.resMII));
                aj.set("rec_mii", Json::integer(a.recMII));
            }
            if (!a.note.empty())
                aj.set("note", Json::str(a.note));
            attempts.push(std::move(aj));
        }
        r.set("attempts", std::move(attempts));
        rows.push(std::move(r));
    }
    root.set("loops", std::move(rows));
    if (sc.hasCycles) {
        Json cj = Json::object();
        cj.set("workload", cycleRowToJson(sc.workloadCycles));
        cj.set("outside", cycleRowToJson(sc.outsideCycles));
        cj.set("total_cycles", Json::uinteger(sc.totalCycles));
        root.set("cycle_stack", std::move(cj));
    }
    return root;
}

void
publishScorecard(Registry &r, const LoopScorecard &sc,
                 const std::string &prefix)
{
    for (std::size_t i = 0; i < sc.rows.size(); ++i) {
        const ScorecardRow &row = sc.rows[i];
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%03zu", i);
        const std::string p = prefix + "." + buf + ".";
        r.info(p + "name", row.name);
        r.info(p + "fate", loopFateName(row.fate));
        r.info(p + "reason", loopReasonName(row.reason));
        r.intGauge(p + "loopId").set(row.loopId);
        r.intGauge(p + "imageOps").set(row.imageOps);
        r.intGauge(p + "bufAddr").set(row.bufAddr);
        r.counter(p + "dynOps").set(row.dynOps);
        r.counter(p + "opsFromBuffer").set(row.opsFromBuffer);
        r.counter(p + "opsFromCache").set(row.opsFromCache);
        r.counter(p + "missedOps").set(row.missedOps);
        r.counter(p + "evictions").set(row.evictions);
        r.counter(p + "replayedOps").set(row.replayedOps);
        r.gauge(p + "replayFraction").set(row.replayFraction);
        r.counter(p + "bailouts").set(row.bailouts);
        r.info(p + "bailoutReason",
               traceBailoutReasonName(row.bailoutReason));
        r.gauge(p + "energyNj").set(row.energyNj);
        if (row.hasCycles) {
            r.counter(p + "cycles").set(row.totalCycles);
            for (std::size_t k = 0; k < kNumCycleClasses; ++k) {
                r.counter(p + "cycles." +
                          cycleClassName(
                              static_cast<CycleClass>(k)))
                    .set(row.cycles[k]);
            }
        }
    }
}

} // namespace obs
} // namespace lbp
