#include "obs/phase_timer.hh"

#include "obs/registry.hh"

namespace lbp
{
namespace obs
{

ScopedPhase::ScopedPhase(Registry *r, const std::string &name,
                         std::int64_t opsBefore)
    : region_(prof::internRegion(name)), r_(r),
      opsBefore_(opsBefore)
{
    if (!r_)
        return;
    name_ = name;
    t0_ = std::chrono::steady_clock::now();
    if (opsBefore_ >= 0)
        r_->counter(name_ + ".ops_before")
            .set(static_cast<std::uint64_t>(opsBefore_));
}

void
ScopedPhase::finishOps(std::int64_t opsAfter)
{
    if (!r_ || opsBefore_ < 0)
        return;
    r_->counter(name_ + ".ops_after")
        .set(static_cast<std::uint64_t>(opsAfter));
    r_->intGauge(name_ + ".ops_delta").set(opsAfter - opsBefore_);
}

ScopedPhase::~ScopedPhase()
{
    if (!r_)
        return;
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0_)
            .count();
    r_->gauge(name_ + ".ms").add(ms);
}

} // namespace obs
} // namespace lbp
