file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_postfilter.dir/bench_fig5_postfilter.cc.o"
  "CMakeFiles/bench_fig5_postfilter.dir/bench_fig5_postfilter.cc.o.d"
  "bench_fig5_postfilter"
  "bench_fig5_postfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_postfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
