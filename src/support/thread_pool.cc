#include "support/thread_pool.hh"

#include <algorithm>

namespace lbp
{

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    threads = std::max(threads, 1);
    workers_.reserve(threads);
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cvWork_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
    }
    cvWork_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    cvIdle_.wait(lock,
                 [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvWork_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty())
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0)
                cvIdle_.notify_all();
        }
    }
}

} // namespace lbp
