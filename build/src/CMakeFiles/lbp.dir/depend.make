# Empty dependencies file for lbp.
# This may be replaced when dependencies are built.
