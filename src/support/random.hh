/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All synthetic workload inputs and property tests draw from this
 * xorshift-based generator so results are bit-identical across runs and
 * platforms (std::mt19937 distributions are not portable across
 * standard-library implementations).
 */

#ifndef LBP_SUPPORT_RANDOM_HH
#define LBP_SUPPORT_RANDOM_HH

#include <cstdint>

namespace lbp
{

/** Small, fast, deterministic PRNG (xorshift128+). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p. */
    bool chance(double p);

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace lbp

#endif // LBP_SUPPORT_RANDOM_HH
