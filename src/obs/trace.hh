/**
 * @file
 * Cycle-level event tracing for the simulator engines.
 *
 * A TraceSink is a fixed-capacity single-writer ring buffer of POD
 * TraceEvents. The simulator is single-threaded per VliwSim instance
 * and traces are consumed after the run, so emission is a plain store
 * plus index bump — no locks, no atomics, nothing the hot path has to
 * wait on. When the ring fills, the oldest events are overwritten and
 * counted in dropped(); per-kind aggregate counters stay exact
 * regardless of overflow or sampling, so integral checks (e.g.
 * buffer-hit ops vs. SimStats::opsFromBuffer) never depend on ring
 * capacity.
 *
 * Two overhead controls:
 *  - compile time: build with -DLBP_TRACE=0 and every LBP_TRACE_EMIT
 *    site compiles to nothing;
 *  - run time: a null sink pointer short-circuits at a single
 *    predictable branch per site; samplePeriod keeps 1/N of the
 *    high-frequency kinds (Fetch, Branch, Nullify). Structural kinds
 *    (BufHit, Loop*, Penalty) are never sampled out: buffer-hit
 *    events are the paper's headline observable and their integral
 *    must stay exact, and loop enter/exit pairs must stay balanced
 *    for the residency timeline.
 *
 * Export: Chrome trace-event JSON (loads in Perfetto / about:tracing;
 * 1 simulated cycle = 1 microsecond of trace time) and a compact
 * per-loop residency timeline.
 */

#ifndef LBP_OBS_TRACE_HH
#define LBP_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lbp
{
namespace obs
{

/** Trace format version (bump on event-schema changes). */
constexpr int kTraceSchemaVersion = 1;

enum class TraceKind : std::uint8_t
{
    Fetch,      ///< bundle issued from memory; a=ops, b=block
    BufHit,     ///< bundle issued from the loop buffer; a=ops, b=block
    LoopEnter,  ///< REC/EXEC activation; a=counted, b=entered resident
    LoopRecord, ///< recording started; a=bufAddr, b=imageOps
    LoopExit,   ///< activation retired; a=iterations, b=fromBuffer
    Branch,     ///< branch-unit op; a=taken, b=nullified
    Penalty,    ///< fetch-redirect stall; a=cycles, b=PenaltyWhy
    Nullify,    ///< op nullified; a=opcode, b=slot
};

constexpr int kTraceKindCount = 8;

/** Reason codes carried in Penalty events' b payload. */
enum PenaltyWhy : std::int64_t
{
    kPenaltyBranch = 0,
    kPenaltyCall = 1,
    kPenaltyReturn = 2,
    kPenaltyWloopExit = 3,
};

const char *traceKindName(TraceKind k);

/** One recorded event (POD; 32 bytes). */
struct TraceEvent
{
    std::uint64_t cycle = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int32_t loopId = -1;
    TraceKind kind = TraceKind::Fetch;

    bool operator==(const TraceEvent &o) const
    {
        return cycle == o.cycle && a == o.a && b == o.b &&
               loopId == o.loopId && kind == o.kind;
    }
};

class TraceSink
{
  public:
    /**
     * @p capacity ring slots (oldest overwritten on overflow);
     * @p samplePeriod keeps one in N events of the sampled kinds
     * (1 = keep everything).
     */
    explicit TraceSink(std::size_t capacity = 1u << 20,
                       std::uint64_t samplePeriod = 1);

    void emit(TraceKind k, std::uint64_t cycle, std::int32_t loopId,
              std::int64_t a, std::int64_t b)
    {
        counts_[static_cast<int>(k)] += 1;
        sumA_[static_cast<int>(k)] += a;
        if (samplePeriod_ > 1 && isSampledKind(k) &&
            (++sampleSeq_ % samplePeriod_) != 0) {
            ++sampledOut_;
            return;
        }
        if (size_ == capacity_) {
            ++dropped_;
            ring_[head_] = {cycle, a, b, loopId, k};
            head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
            return;
        }
        ring_[(head_ + size_) % capacity_] = {cycle, a, b, loopId, k};
        ++size_;
    }

    /** Kinds subject to samplePeriod thinning. */
    static bool isSampledKind(TraceKind k)
    {
        return k == TraceKind::Fetch || k == TraceKind::Branch ||
               k == TraceKind::Nullify;
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return size_; }
    std::uint64_t samplePeriod() const { return samplePeriod_; }

    /** Events lost to ring overflow (oldest-first overwrites). */
    std::uint64_t dropped() const { return dropped_; }
    /** Events thinned out by sampling. */
    std::uint64_t sampledOut() const { return sampledOut_; }

    /** Exact per-kind aggregates (immune to overflow/sampling). */
    std::uint64_t countOf(TraceKind k) const
    { return counts_[static_cast<int>(k)]; }
    std::int64_t sumA(TraceKind k) const
    { return sumA_[static_cast<int>(k)]; }

    /** Recorded events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    void clear();

  private:
    std::vector<TraceEvent> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0;   ///< index of the oldest event
    std::size_t size_ = 0;
    std::uint64_t samplePeriod_;
    std::uint64_t sampleSeq_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t sampledOut_ = 0;
    std::uint64_t counts_[kTraceKindCount] = {};
    std::int64_t sumA_[kTraceKindCount] = {};
};

/** One loop activation interval recovered from enter/exit events. */
struct ResidencySpan
{
    std::int32_t loopId = -1;
    std::uint64_t enterCycle = 0;
    std::uint64_t exitCycle = 0;
    std::uint64_t iterations = 0;
    bool fromBuffer = false;   ///< retired issuing from the buffer
    bool recorded = false;     ///< this activation recorded its image
};

/**
 * Pair LoopEnter/LoopExit events into activation spans (per-loop
 * LIFO pairing; unbalanced enters yield open spans ending at the last
 * observed cycle).
 */
std::vector<ResidencySpan> residencyTimeline(const TraceSink &sink);

/**
 * Write Chrome trace-event JSON. @p loopNames maps dense loop id to
 * a display name (missing/short vectors fall back to "loop<id>").
 * Events are sorted by cycle; loop activations become duration
 * events on per-loop tracks, everything else instant/span events on
 * the fetch and control tracks.
 */
void writeChromeTrace(std::ostream &os, const TraceSink &sink,
                      const std::vector<std::string> &loopNames,
                      const std::string &processName = "lbp-sim");

} // namespace obs
} // namespace lbp

/**
 * Compile-time toggle: -DLBP_TRACE=0 removes every emission site.
 * Default on — the runtime null-check is a single predicted branch.
 */
#ifndef LBP_TRACE
#define LBP_TRACE 1
#endif

#if LBP_TRACE
#define LBP_TRACE_EMIT(sink, kind, cycle, loopId, a, b)                     \
    do {                                                                    \
        if (sink)                                                           \
            (sink)->emit((kind), (cycle), (loopId), (a), (b));              \
    } while (0)
#else
#define LBP_TRACE_EMIT(sink, kind, cycle, loopId, a, b) ((void)0)
#endif

#endif // LBP_OBS_TRACE_HH
