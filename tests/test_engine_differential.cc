/**
 * @file
 * Engine differential: the decoded fast-path executor must be
 * behaviorally indistinguishable from the reference interpreter —
 * every field of SimStats, including the per-loop counter vectors —
 * for every registry workload, under both predication
 * micro-architectures, at several buffer sizes.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

void
expectIdentical(const SimStats &ref, const SimStats &dec,
                const std::string &what)
{
    EXPECT_EQ(ref.cycles, dec.cycles) << what;
    EXPECT_EQ(ref.bundles, dec.bundles) << what;
    EXPECT_EQ(ref.opsFetched, dec.opsFetched) << what;
    EXPECT_EQ(ref.opsFromBuffer, dec.opsFromBuffer) << what;
    EXPECT_EQ(ref.opsNullified, dec.opsNullified) << what;
    EXPECT_EQ(ref.opsSensitive, dec.opsSensitive) << what;
    EXPECT_EQ(ref.branches, dec.branches) << what;
    EXPECT_EQ(ref.branchesTaken, dec.branchesTaken) << what;
    EXPECT_EQ(ref.branchPenaltyCycles, dec.branchPenaltyCycles)
        << what;
    EXPECT_EQ(ref.checksum, dec.checksum) << what;
    EXPECT_EQ(ref.returns, dec.returns) << what;
    ASSERT_EQ(ref.loops.size(), dec.loops.size()) << what;
    for (std::size_t i = 0; i < ref.loops.size(); ++i)
        EXPECT_TRUE(ref.loops[i] == dec.loops[i])
            << what << " loop " << i << " (" << ref.loops[i].name
            << ")";
}

class EngineDifferential
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EngineDifferential, DecodedMatchesReference)
{
    Program prog = workloads::buildWorkload(GetParam());

    for (OptLevel lvl : {OptLevel::Traditional, OptLevel::Aggressive}) {
        for (PredMode mode : {PredMode::REGISTER, PredMode::SLOT}) {
            // REGISTER-mode simulation needs slot lowering off (the
            // two predication micro-architectures are exclusive).
            CompileOptions opts;
            opts.level = lvl;
            opts.slotLowering = mode == PredMode::SLOT;
            CompileResult cr;
            compileProgram(prog, opts, cr);
            for (int size : {32, 256, 1024}) {
                reallocateBuffers(cr, size);
                SimConfig sc;
                sc.bufferOps = size;
                sc.predMode = mode;
                sc.engine = SimEngine::REFERENCE;
                const SimStats ref = VliwSim(cr.code, sc).run();
                sc.engine = SimEngine::DECODED;
                const SimStats dec = VliwSim(cr.code, sc).run();
                EXPECT_EQ(ref.checksum, cr.goldenChecksum);
                expectIdentical(
                    ref, dec,
                    GetParam() + " level=" +
                        (lvl == OptLevel::Aggressive ? "aggr"
                                                     : "trad") +
                        " mode=" +
                        (mode == PredMode::SLOT ? "slot" : "reg") +
                        " size=" + std::to_string(size));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EngineDifferential,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &w : workloads::allWorkloads())
            names.push_back(w.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace lbp
