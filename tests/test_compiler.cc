/**
 * @file
 * Pipeline-driver tests: stage checksums, config knobs, schedule
 * validation of everything the pipeline emits, and re-allocation.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "core/metrics.hh"
#include "ir/builder.hh"
#include "sim/vliw_sim.hh"
#include "workloads/input_data.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

Program
smallProgram()
{
    Program prog;
    const auto data = prog.allocData(256 * 4);
    for (int i = 0; i < 256; ++i)
        prog.poke32(data + 4 * i, (i * 31) % 23 - 11);
    prog.checksumBase = data;
    prog.checksumSize = 256 * 4;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 64, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        workloads::diamond(b, CmpCond::LT, R(v), I(0),
                           [&] { b.subTo(acc, R(acc), R(v)); },
                           [&] { b.addTo(acc, R(acc), R(v)); });
        b.storeW(R(dp), R(i4), R(acc));
    });
    b.ret({R(acc)});
    return prog;
}

TEST(Compiler, GoldenChecksumPreserved)
{
    Program prog = smallProgram();
    for (OptLevel lvl : {OptLevel::Traditional, OptLevel::Aggressive}) {
        CompileOptions opts;
        opts.level = lvl;
        CompileResult cr;
        compileProgram(prog, opts, cr);
        EXPECT_EQ(cr.goldenChecksum, cr.transformedChecksum);
        SimConfig sc;
        VliwSim sim(cr.code, sc);
        EXPECT_EQ(sim.run().checksum, cr.goldenChecksum);
    }
}

TEST(Compiler, EverScheduledBlockValidates)
{
    Program prog = smallProgram();
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.slotLowering = false; // validator matches pre-lowered ops
    CompileResult cr;
    compileProgram(prog, opts, cr);
    for (const auto &fn : cr.ir.functions) {
        for (const auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            const SchedBlock &sb =
                cr.code.functions[fn.id].blocks[bb.id];
            ASSERT_TRUE(sb.valid);
            const auto errs = validateSchedule(bb, sb, cr.machine);
            EXPECT_TRUE(errs.empty())
                << fn.name << "/" << bb.name << ": "
                << (errs.empty() ? "" : errs.front());
        }
    }
}

TEST(Compiler, AggressiveConvertsTheLoop)
{
    Program prog = smallProgram();
    CompileOptions tr;
    tr.level = OptLevel::Traditional;
    CompileResult a;
    compileProgram(prog, tr, a);
    CompileOptions ag;
    ag.level = OptLevel::Aggressive;
    CompileResult b2;
    compileProgram(prog, ag, b2);
    EXPECT_EQ(a.ifConvertStats.loopsConverted, 0);
    EXPECT_EQ(b2.ifConvertStats.loopsConverted, 1);
    EXPECT_GT(b2.moduloLoops, 0);
}

TEST(Compiler, ModuloDisableFallsBackToList)
{
    Program prog = smallProgram();
    CompileOptions opts;
    opts.moduloSchedule = false;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    for (const auto &sf : cr.code.functions)
        for (const auto &sb : sf.blocks)
            EXPECT_FALSE(sb.pipelined);
    SimConfig sc;
    VliwSim sim(cr.code, sc);
    EXPECT_EQ(sim.run().checksum, cr.goldenChecksum);
}

TEST(Compiler, StageVerificationCatchesNothingOnCleanInput)
{
    // verifyStages on: compiles without throwing on all workloads is
    // covered elsewhere; here just assert the flag path works.
    Program prog = smallProgram();
    CompileOptions opts;
    opts.verifyStages = true;
    CompileResult cr;
    EXPECT_NO_THROW(compileProgram(prog, opts, cr));
}

TEST(Compiler, CodeSizeAccounting)
{
    Program prog = smallProgram();
    CompileOptions opts;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    EXPECT_GT(cr.originalOps, 0);
    EXPECT_GT(cr.finalOps, 0);
    EXPECT_GE(cr.scheduledOps, cr.finalOps); // clones/empty cycles
}

} // namespace
} // namespace lbp

namespace lbp
{
namespace
{

TEST(Compiler, RegisterPressureNearMachineBudget)
{
    // The paper's machine has 64 integer registers and notes that
    // ILP techniques "need many registers". Most workloads' loop
    // bodies must fit outright; the largest hyperblocks (pgp's
    // inlined cipher, mpeg2_enc's unrolled SAD) may exceed the file
    // by a small margin a register allocator would cover with modest
    // spilling — cap the overshoot.
    int fitting = 0, total = 0;
    for (const auto &w : workloads::allWorkloads()) {
        Program prog = workloads::buildWorkload(w.name);
        CompileOptions opts;
        opts.level = OptLevel::Aggressive;
        CompileResult cr;
        compileProgram(prog, opts, cr);
        const RegisterPressure rp = collectRegisterPressure(cr);
        EXPECT_GT(rp.maxLoopPressure, 0) << w.name;
        EXPECT_LE(rp.maxLoopPressure, rp.machineRegisters * 3 / 2)
            << w.name << ": pressure " << rp.maxLoopPressure;
        fitting += rp.fits();
        ++total;
    }
    EXPECT_GE(fitting, total - 3);
}

} // namespace
} // namespace lbp
