# Empty dependencies file for bench_fig3_predication.
# This may be replaced when dependencies are built.
