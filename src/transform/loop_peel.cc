#include "transform/loop_peel.hh"

#include <map>

#include "analysis/loop_info.hh"
#include "obs/loop_report.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

bool
peelOne(Function &fn, const Loop &loop, const PeelOptions &opts,
        PeelStats &st, obs::LoopDecisionLog *log)
{
    int body_ops = 0;
    for (BlockId b : loop.blocks)
        body_ops += fn.blocks[b].sizeOps();

    auto reject = [&](obs::LoopReason r, std::string note = "") {
        if (log) {
            obs::LoopAttempt a;
            a.transform = "peel";
            a.reason = r;
            a.opsBefore = a.opsAfter = body_ops;
            a.note = std::move(note);
            log->addAttempt(fn.name + "/" +
                                fn.blocks[loop.header].name,
                            std::move(a));
        }
        return false;
    };

    if (!loop.induction.valid || loop.induction.constTrip < 1)
        return reject(obs::LoopReason::NotCounted);
    if (loop.induction.constTrip > opts.maxTrip) {
        return reject(obs::LoopReason::TripTooLarge,
                      "trip " + std::to_string(loop.induction.constTrip));
    }
    if (loop.latches.size() != 1)
        return reject(obs::LoopReason::MultiLatch);
    const std::int64_t trip = loop.induction.constTrip;

    for (BlockId b : loop.blocks) {
        const BasicBlock &bb = fn.blocks[b];
        for (const auto &op : bb.ops) {
            // Hardware-loop and call ops cannot be replicated safely.
            if (op.op == Opcode::CALL || op.op == Opcode::RET ||
                isBufferOp(op.op) || op.op == Opcode::BR_CLOOP ||
                op.op == Opcode::BR_WLOOP) {
                return reject(obs::LoopReason::HasCall, bb.name);
            }
        }
    }
    if (trip * body_ops >= opts.maxExpansionOps) {
        return reject(obs::LoopReason::TooLarge,
                      std::to_string(trip * body_ops) + " >= " +
                          std::to_string(opts.maxExpansionOps) +
                          " expanded ops");
    }

    const BlockId latch = loop.latches[0];
    const BasicBlock &latchBlk = fn.blocks[latch];
    const Operation *term = latchBlk.terminator();
    // Canonical bottom-test: conditional backedge, fallthrough exits.
    if (!term || term->op != Opcode::BR || term->target != loop.header ||
        term->hasGuard()) {
        return reject(obs::LoopReason::BadShape, "latch terminator");
    }
    const BlockId exitBlk = latchBlk.fallthrough;
    if (exitBlk == kNoBlock || loop.contains(exitBlk))
        return reject(obs::LoopReason::BadShape, "no exit fallthrough");

    // Make `trip` copies of the body. Registers are NOT renamed: the
    // copies execute sequentially exactly like the iterations did.
    std::vector<std::map<BlockId, BlockId>> maps(trip);
    for (std::int64_t it = 0; it < trip; ++it) {
        for (BlockId b : loop.blocks) {
            maps[it][b] = fn.newBlock(
                fn.blocks[b].name + ".peel" + std::to_string(it));
        }
    }

    for (std::int64_t it = 0; it < trip; ++it) {
        for (BlockId b : loop.blocks) {
            const BasicBlock &src = fn.blocks[b];
            BasicBlock &dst = fn.blocks[maps[it].at(b)];
            dst.weight = src.weight / static_cast<double>(trip);
            const bool isLatchBlk = (b == latch);
            for (const auto &op : src.ops) {
                // Drop the backedge: iteration boundaries become
                // straight-line control.
                if (isLatchBlk && &op == &src.ops.back()) {
                    break;
                }
                Operation copy = op;
                copy.id = fn.newOpId();
                if (copy.target != kNoBlock) {
                    auto mapped = maps[it].find(copy.target);
                    if (mapped != maps[it].end())
                        copy.target = mapped->second;
                    // else: side exit out of the loop, keep as is.
                }
                if (it > 0 && copy.op != Opcode::NOP)
                    ++st.opsAdded;
                dst.ops.push_back(std::move(copy));
            }
            if (isLatchBlk) {
                dst.fallthrough = it + 1 < trip
                                      ? maps[it + 1].at(loop.header)
                                      : exitBlk;
            } else if (src.fallthrough != kNoBlock) {
                auto mapped = maps[it].find(src.fallthrough);
                dst.fallthrough = mapped != maps[it].end()
                                      ? mapped->second
                                      : src.fallthrough;
            }
        }
    }

    // Redirect all external edges into the header to the first copy.
    const BlockId newHead = maps[0].at(loop.header);
    for (auto &bb : fn.blocks) {
        if (bb.dead || loop.contains(bb.id))
            continue;
        if (bb.fallthrough == loop.header)
            bb.fallthrough = newHead;
        for (auto &op : bb.ops) {
            if (op.target == loop.header)
                op.target = newHead;
        }
    }
    if (fn.entry == loop.header)
        fn.entry = newHead;

    // Kill the original body.
    for (BlockId b : loop.blocks) {
        fn.blocks[b].dead = true;
        fn.blocks[b].ops.clear();
        fn.blocks[b].fallthrough = kNoBlock;
    }
    ++st.loopsPeeled;
    if (log) {
        const std::string name =
            fn.name + "/" + fn.blocks[loop.header].name;
        obs::LoopAttempt a;
        a.transform = "peel";
        a.applied = true;
        a.opsBefore = body_ops;
        a.opsAfter = static_cast<int>(trip) * body_ops;
        a.note = "trip " + std::to_string(trip);
        log->addAttempt(name, std::move(a));
        // The loop no longer exists: its straightened copies belong
        // to the enclosing loop.
        log->decision(name).fate = obs::LoopFate::Eliminated;
    }
    return true;
}

} // namespace

PeelStats
peelLoops(Function &fn, const PeelOptions &opts,
          obs::LoopDecisionLog *log)
{
    PeelStats st;
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 100) {
        changed = false;
        LoopInfo li(fn);
        for (const auto &loop : li.loops()) {
            if (!loop.children.empty())
                continue; // innermost only
            if (opts.requireParentLoop && loop.parent < 0)
                continue;
            if (peelOne(fn, loop, opts, st, log)) {
                changed = true;
                break; // loop forest stale
            }
        }
    }
    return st;
}

PeelStats
peelLoops(Program &prog, const PeelOptions &opts,
          obs::LoopDecisionLog *log)
{
    PeelStats st;
    for (auto &fn : prog.functions) {
        auto s = peelLoops(fn, opts, log);
        st.loopsPeeled += s.loopsPeeled;
        st.opsAdded += s.opsAdded;
    }
    return st;
}

} // namespace lbp
