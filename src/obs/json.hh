/**
 * @file
 * Minimal JSON document model for the observability layer: one value
 * type that every emitter (registry dumps, bench results, Chrome
 * traces) builds and one writer/parser pair so serialization lives in
 * exactly one place. Integer values are kept as 64-bit integers end
 * to end — checksums and cycle counters must round-trip exactly, not
 * through a double.
 *
 * Objects preserve insertion order (emitters control their layout);
 * lookup is linear, which is fine at registry-dump sizes.
 */

#ifndef LBP_OBS_JSON_HH
#define LBP_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace lbp
{
namespace obs
{

class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,    ///< int64 payload
        Uint,   ///< uint64 payload (values above int64 max)
        Double,
        String,
        Array,
        Object,
    };

    Json() = default;

    static Json null() { return Json(); }
    static Json boolean(bool v);
    static Json integer(std::int64_t v);
    static Json uinteger(std::uint64_t v);
    static Json number(double v);
    static Json str(std::string v);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Double;
    }

    bool asBool() const { return b_; }
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const { return s_; }

    /** Array access. */
    void push(Json v);
    const std::vector<Json> &items() const { return arr_; }

    /** Object access. `set` replaces an existing key in place. */
    void set(const std::string &key, Json v);
    const Json *find(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &members() const
    { return obj_; }

    /**
     * Deep structural equality. Numbers compare by value across
     * Int/Uint (a Double only equals a Double).
     */
    bool operator==(const Json &o) const;
    bool operator!=(const Json &o) const { return !(*this == o); }

    /** Compact single-value rendering (for diagnostics). */
    std::string dump() const;

    /** Pretty-print with two-space indentation. */
    void write(std::ostream &os, int indent = 0) const;

    /**
     * Single-line rendering with no inter-element whitespace: the
     * jsonl record format (history.hh), where one value must occupy
     * exactly one line.
     */
    void writeCompact(std::ostream &os) const;

    /**
     * Parse a JSON document. Returns a Null value and sets @p error
     * on malformed input (error stays empty on success).
     */
    static Json parse(const std::string &text, std::string &error);

  private:
    Kind kind_ = Kind::Null;
    bool b_ = false;
    std::int64_t i_ = 0;
    std::uint64_t u_ = 0;
    double d_ = 0;
    std::string s_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** Escape a string for inclusion in JSON output (no quotes added). */
std::string jsonEscape(const std::string &s);

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_JSON_HH
