/**
 * @file
 * Operand and Operation: the atomic units of the lbp IR.
 */

#ifndef LBP_IR_OPERATION_HH
#define LBP_IR_OPERATION_HH

#include <cstdint>
#include <vector>

#include "ir/opcode.hh"
#include "ir/types.hh"

namespace lbp
{

/** Operand kinds. */
enum class OperandKind : std::uint8_t
{
    NONE,
    REG,    ///< general virtual register
    IMM,    ///< signed immediate
    PRED,   ///< predicate virtual register
    SLOT,   ///< issue-slot destination (slot-based predication lowering)
};

/** A single operand: a tagged (kind, value) pair. */
struct Operand
{
    OperandKind kind = OperandKind::NONE;
    std::int64_t value = 0;

    Operand() = default;
    Operand(OperandKind k, std::int64_t v) : kind(k), value(v) {}

    static Operand reg(RegId r)
    { return {OperandKind::REG, static_cast<std::int64_t>(r)}; }

    static Operand imm(std::int64_t v) { return {OperandKind::IMM, v}; }

    static Operand pred(PredId p)
    { return {OperandKind::PRED, static_cast<std::int64_t>(p)}; }

    static Operand slot(int s) { return {OperandKind::SLOT, s}; }

    bool isReg() const { return kind == OperandKind::REG; }
    bool isImm() const { return kind == OperandKind::IMM; }
    bool isPred() const { return kind == OperandKind::PRED; }
    bool isSlot() const { return kind == OperandKind::SLOT; }
    bool isNone() const { return kind == OperandKind::NONE; }

    RegId asReg() const { return static_cast<RegId>(value); }
    PredId asPred() const { return static_cast<PredId>(value); }
    int asSlot() const { return static_cast<int>(value); }

    bool operator==(const Operand &o) const
    { return kind == o.kind && value == o.value; }
};

/**
 * One IR operation.
 *
 * Layout conventions per opcode family:
 *  - ALU binary:   dsts=[reg], srcs=[a, b]
 *  - MOV/ABS/...:  dsts=[reg], srcs=[a]
 *  - SELECT:       dsts=[reg], srcs=[cond, ifTrue, ifFalse]
 *  - CMP:          dsts=[reg], srcs=[a, b], cond
 *  - LD_*:         dsts=[reg], srcs=[base, offset]
 *  - ST_*:         srcs=[base, offset, value]
 *  - PRED_DEF:     dsts=[pred|slot, (pred|slot)], srcs=[a, b], cond,
 *                  defKind0/defKind1 (Table 2 semantics)
 *  - BR:           srcs=[a, b], cond, target
 *  - JUMP:         target
 *  - BR_CLOOP:     target (count owned by the matching REC/EXEC_CLOOP)
 *  - BR_WLOOP:     srcs=[a, b], cond, target
 *  - REC_CLOOP:    srcs=[count(reg|imm)], bufAddr, numOps, target=loop head
 *  - REC_WLOOP:    bufAddr, numOps, target=loop head
 *  - EXEC_CLOOP:   srcs=[count], bufAddr, target=loop head
 *  - EXEC_WLOOP:   bufAddr, target=loop head
 *  - CALL:         callee, dsts=rets, srcs=args
 *  - RET:          srcs=return values
 *
 * Every operation carries an optional guard predicate (IMPACT model).
 * After slot-based lowering, `sensitive` marks the single
 * predicate-sensitivity bit of the paper's §4.2 encoding and the guard
 * refers to the consuming slot's standing predicate.
 */
struct Operation
{
    Opcode op = Opcode::NOP;
    CmpCond cond = CmpCond::EQ;
    PredDefKind defKind0 = PredDefKind::NONE;
    PredDefKind defKind1 = PredDefKind::NONE;

    std::vector<Operand> dsts;
    std::vector<Operand> srcs;

    /** Guard predicate; kNoPred (0) means unguarded. */
    PredId guard = kNoPred;

    /** Slot-predication sensitivity bit (valid after lowering). */
    bool sensitive = false;

    /** Branch target block. */
    BlockId target = kNoBlock;

    /** Callee for CALL. */
    FuncId callee = kNoFunc;

    /** Buffer offset for rec/exec buffer ops; -1 = not buffered. */
    std::int32_t bufAddr = -1;

    /** Loop image size in operations for REC_* ops. */
    std::int32_t numOps = 0;

    /** Marks code pulled in from an outer loop by collapsing. */
    bool fromOuterLoop = false;

    /** Marks control-speculated (promoted) operations. */
    bool speculative = false;

    /** Unique id within the owning function (assigned by Function). */
    OpId id = 0;

    bool isBranchOp() const { return isBranch(op); }
    bool hasGuard() const { return guard != kNoPred; }

    /** Number of general-register source operands. */
    int numRegSrcs() const;

    /** True if this op writes general register r. */
    bool writesReg(RegId r) const;

    /** True if this op reads general register r. */
    bool readsReg(RegId r) const;
};

/** Make a simple binary ALU op. */
Operation makeBinary(Opcode op, RegId dst, Operand a, Operand b);

/** Make a unary op (MOV, ABS, ITOF, ...). */
Operation makeUnary(Opcode op, RegId dst, Operand a);

/** Make a compare-to-register op. */
Operation makeCmp(RegId dst, CmpCond c, Operand a, Operand b);

/** Make a load: dst = mem[base + offset]. */
Operation makeLoad(Opcode op, RegId dst, Operand base, Operand offset);

/** Make a store: mem[base + offset] = value. */
Operation makeStore(Opcode op, Operand base, Operand offset, Operand value);

/** Make a predicate define with one or two destinations. */
Operation makePredDef(PredDefKind k0, PredId p0, PredDefKind k1, PredId p1,
                      CmpCond c, Operand a, Operand b);

/** Make a conditional branch. */
Operation makeBr(CmpCond c, Operand a, Operand b, BlockId target);

/** Make an unconditional jump. */
Operation makeJump(BlockId target);

} // namespace lbp

#endif // LBP_IR_OPERATION_HH
