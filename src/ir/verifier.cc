#include "ir/verifier.hh"

#include <sstream>

#include "ir/printer.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

void
checkOperation(const Function &fn, const BasicBlock &bb,
               const Operation &op, size_t idx, bool allow_internal,
               std::vector<std::string> &errs)
{
    auto err = [&](const std::string &msg) {
        std::ostringstream os;
        os << fn.name << "/" << bb.name << "[" << idx
           << "]: " << msg << " in '" << toString(op) << "'";
        errs.push_back(os.str());
    };

    // Destination kinds.
    for (const auto &d : op.dsts) {
        if (op.op == Opcode::PRED_DEF) {
            if (!d.isPred() && !d.isSlot())
                err("pred_def destination must be pred or slot");
        } else {
            if (!d.isReg())
                err("destination must be a register");
        }
    }
    for (const auto &s : op.srcs) {
        if (s.isNone())
            err("none-kind source operand");
        if (s.isSlot())
            err("slot operand as source");
    }

    // Arity per family.
    auto arity = [&](size_t nd, size_t ns) {
        if (op.dsts.size() != nd || op.srcs.size() != ns)
            err("bad operand arity");
    };
    switch (op.op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SHL:
      case Opcode::SHR: case Opcode::SHRA: case Opcode::MIN:
      case Opcode::MAX: case Opcode::SATADD: case Opcode::SATSUB:
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::CMP:
        arity(1, 2);
        break;
      case Opcode::MOV: case Opcode::ABS: case Opcode::ITOF:
      case Opcode::FTOI:
        arity(1, 1);
        break;
      case Opcode::SELECT:
        arity(1, 3);
        break;
      case Opcode::LD_B: case Opcode::LD_H: case Opcode::LD_W:
        arity(1, 2);
        break;
      case Opcode::ST_B: case Opcode::ST_H: case Opcode::ST_W:
        arity(0, 3);
        break;
      case Opcode::PRED_DEF:
        if (op.dsts.empty() || op.dsts.size() > 2)
            err("pred_def needs 1-2 destinations");
        if (op.srcs.size() != 2)
            err("pred_def needs 2 sources");
        if (op.defKind0 == PredDefKind::NONE)
            err("pred_def kind0 must be set");
        if ((op.dsts.size() == 2) !=
            (op.defKind1 != PredDefKind::NONE)) {
            err("pred_def kind1/dst1 mismatch");
        }
        break;
      case Opcode::BR: case Opcode::BR_WLOOP:
        arity(0, 2);
        if (op.target == kNoBlock)
            err("branch without target");
        break;
      case Opcode::JUMP: case Opcode::BR_CLOOP:
        arity(0, 0);
        if (op.target == kNoBlock)
            err("branch without target");
        break;
      case Opcode::REC_CLOOP: case Opcode::EXEC_CLOOP:
        arity(0, 1);
        if (op.target == kNoBlock)
            err("buffer op without loop head target");
        break;
      case Opcode::REC_WLOOP: case Opcode::EXEC_WLOOP:
        arity(0, 0);
        if (op.target == kNoBlock)
            err("buffer op without loop head target");
        break;
      case Opcode::CALL:
        if (op.callee == kNoFunc)
            err("call without callee");
        break;
      case Opcode::RET:
      case Opcode::NOP:
        break;
      default:
        err("unknown opcode");
    }

    // Branch targets in range.
    if (op.target != kNoBlock) {
        if (op.target >= fn.blocks.size())
            err("branch target out of range");
        else if (fn.blocks[op.target].dead)
            err("branch target is a dead block");
    }

    // Branch placement.
    const bool is_term_like =
        op.isBranchOp() || op.op == Opcode::RET;
    if (is_term_like && idx + 1 != bb.ops.size()) {
        const bool guarded_exit =
            (op.op == Opcode::JUMP || op.op == Opcode::BR ||
             op.op == Opcode::BR_WLOOP) && op.hasGuard();
        if (!allow_internal && !guarded_exit)
            err("branch not at block end");
        if (op.op == Opcode::RET)
            err("ret not at block end");
        if ((op.op == Opcode::JUMP || op.op == Opcode::BR) &&
            !op.hasGuard() && !allow_internal) {
            err("unconditional flow mid-block");
        }
    }
}

} // namespace

std::vector<std::string>
verify(const Function &fn, const VerifyOptions &opts)
{
    std::vector<std::string> errs;
    if (fn.entry == kNoBlock) {
        errs.push_back(fn.name + ": no entry block");
        return errs;
    }
    if (fn.entry >= fn.blocks.size() || fn.blocks[fn.entry].dead) {
        errs.push_back(fn.name + ": bad entry block");
        return errs;
    }
    for (const auto &bb : fn.blocks) {
        if (bb.dead)
            continue;
        if (bb.id >= fn.blocks.size() || &fn.blocks[bb.id] != &bb)
            errs.push_back(fn.name + ": block id mismatch");
        if (bb.fallthrough != kNoBlock) {
            if (bb.fallthrough >= fn.blocks.size() ||
                fn.blocks[bb.fallthrough].dead) {
                errs.push_back(fn.name + "/" + bb.name +
                               ": bad fallthrough");
            }
        }
        // A block must end in unconditional control or have a
        // fallthrough.
        if (!bb.endsWithUnconditional() && bb.fallthrough == kNoBlock) {
            errs.push_back(fn.name + "/" + bb.name +
                           ": falls off the end of the function");
        }
        for (size_t i = 0; i < bb.ops.size(); ++i) {
            checkOperation(fn, bb, bb.ops[i], i,
                           opts.allowInternalBranches ||
                           bb.isHyperblock, errs);
        }
    }
    return errs;
}

std::vector<std::string>
verify(const Program &prog, const VerifyOptions &opts)
{
    std::vector<std::string> errs;
    for (const auto &fn : prog.functions) {
        auto e = verify(fn, opts);
        errs.insert(errs.end(), e.begin(), e.end());
        // Call targets valid.
        for (const auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            for (const auto &op : bb.ops) {
                if (op.op == Opcode::CALL &&
                    op.callee >= prog.functions.size()) {
                    errs.push_back(fn.name + ": call to bad function");
                }
            }
        }
    }
    if (prog.entryFunc == kNoFunc ||
        prog.entryFunc >= prog.functions.size()) {
        errs.push_back(prog.name + ": no entry function");
    }
    return errs;
}

void
verifyOrDie(const Function &fn, const VerifyOptions &opts)
{
    auto errs = verify(fn, opts);
    if (!errs.empty()) {
        std::ostringstream os;
        for (const auto &e : errs)
            os << "\n  " << e;
        LBP_PANIC("IR verification failed:", os.str());
    }
}

void
verifyOrDie(const Program &prog, const VerifyOptions &opts)
{
    auto errs = verify(prog, opts);
    if (!errs.empty()) {
        std::ostringstream os;
        for (const auto &e : errs)
            os << "\n  " << e;
        LBP_PANIC("IR verification failed:", os.str());
    }
}

} // namespace lbp
