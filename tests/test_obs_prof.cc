/**
 * @file
 * Self-profiler tests: region interning and labels, collapsed-stack
 * formatting, live sampling attribution under nested ScopedRegion
 * markers, sampling across concurrent threads (the TSan target), and
 * — the contract the whole subsystem rests on — zero observable
 * effect on simulation: SimStats and every published registry
 * counter are bit-identical whether the profiler is off, running, or
 * compiled out entirely (the LBP_PROF=OFF CI leg closes the loop
 * across builds; this binary proves off-vs-running in one build).
 *
 * Sampling assertions are deliberately generous: CI machines stall,
 * and a sampler test that needs a precise sample count is a flake
 * factory. We spin until a minimum sample count or a wall-clock cap,
 * then assert only structural properties (attribution fraction,
 * which labels appear), never exact counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/compiler.hh"
#include "obs/prof.hh"
#include "obs/publish.hh"
#include "obs/registry.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

namespace prof = obs::prof;
using Clock = std::chrono::steady_clock;

/** Burn CPU (not wall) time so per-thread CPU-clock timers tick. */
void
spin(double ms)
{
    const auto t0 = Clock::now();
    volatile std::uint64_t sink = 0;
    while (std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
               .count() < ms)
        for (int i = 0; i < 4096; ++i)
            sink = sink * 1664525u + 1013904223u;
}

/** Spin inside @p region until @p minSamples land or ~2s elapse. */
void
spinUntilSampled(std::uint64_t minSamples)
{
    const auto t0 = Clock::now();
    while (prof::Profiler::instance().snapshot().samples <
               minSamples &&
           std::chrono::duration<double>(Clock::now() - t0).count() <
               2.0)
        spin(5.0);
}

TEST(ObsProf, RegionNamesAreStable)
{
    EXPECT_STREQ(prof::regionName(prof::Region::None), "untracked");
    EXPECT_STREQ(prof::regionName(prof::Region::Compile), "compile");
    EXPECT_STREQ(prof::regionName(prof::Region::SimDispatch),
                 "simDispatch");
    EXPECT_STREQ(prof::regionName(prof::Region::SimReplay),
                 "simReplay");
    EXPECT_STREQ(prof::regionName(prof::Region::TraceBuild),
                 "traceBuild");
    EXPECT_STREQ(prof::regionName(prof::Region::SimReference),
                 "simReference");
    EXPECT_STREQ(prof::regionName(prof::Region::Bench), "bench");
}

TEST(ObsProf, InternRegionIsIdempotentAndLabeled)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out (LBP_PROF=0)";
    const std::uint8_t a = prof::internRegion("test.phase.alpha");
    const std::uint8_t b = prof::internRegion("test.phase.beta");
    EXPECT_NE(a, 0);
    EXPECT_NE(b, 0);
    EXPECT_NE(a, b);
    EXPECT_GE(a, static_cast<std::uint8_t>(prof::Region::Count));
    EXPECT_EQ(prof::internRegion("test.phase.alpha"), a);
    EXPECT_EQ(prof::regionLabel(a), "test.phase.alpha");
    EXPECT_EQ(prof::regionLabel(static_cast<std::uint8_t>(
                  prof::Region::SimDispatch)),
              "simDispatch");
}

TEST(ObsProf, CollapsedStacksFormat)
{
    prof::Snapshot s;
    prof::PathCount outer;
    outer.label = "bench;simDispatch";
    outer.count = 7;
    prof::PathCount untracked;
    untracked.label = "untracked";
    untracked.count = 2;
    s.paths = {outer, untracked};
    EXPECT_EQ(prof::collapsedStacks(s),
              "bench;simDispatch 7\nuntracked 2\n");
}

TEST(ObsProf, AttributedFractionMath)
{
    prof::Snapshot s;
    EXPECT_DOUBLE_EQ(s.attributedFraction(), 0.0);
    s.samples = 90;
    s.untracked = 10;
    s.dropped = 10;
    EXPECT_DOUBLE_EQ(s.attributedFraction(), 0.8);
}

TEST(ObsProf, SamplesAttributeToInnermostRegion)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out (LBP_PROF=0)";
    prof::Profiler &p = prof::Profiler::instance();
    ASSERT_TRUE(p.start());
    EXPECT_TRUE(p.running());
    {
        prof::ScopedRegion outer(prof::Region::Bench);
        prof::ScopedRegion inner(prof::Region::SimDispatch);
        spinUntilSampled(10);
    }
    p.stop();
    EXPECT_FALSE(p.running());
    const prof::Snapshot snap = p.snapshot();
    if (snap.samples < 10)
        GTEST_SKIP() << "timer starved (loaded CI host), got "
                     << snap.samples << " samples";

    // Leaf attribution goes to the innermost marker, and the path
    // label spells the whole stack outermost-first.
    bool sawLeaf = false, sawPath = false;
    for (const auto &rc : snap.regions)
        if (rc.label == "simDispatch" && rc.count > 0)
            sawLeaf = true;
    for (const auto &pc : snap.paths)
        if (pc.label == "bench;simDispatch" && pc.count > 0)
            sawPath = true;
    EXPECT_TRUE(sawLeaf);
    EXPECT_TRUE(sawPath);
    EXPECT_GT(snap.attributedFraction(), 0.5);
    p.reset();
    EXPECT_EQ(p.snapshot().samples, 0u);
}

/**
 * Forcing the dropped-sample path: with the handler's probe bound
 * capped at one slot, the first sampled path claims it and any
 * sample under a different region stack has nowhere to land, so it
 * must be counted in Snapshot::dropped (which the #prof report
 * section surfaces) rather than silently discarded.
 */
TEST(ObsProf, PathTableOverflowCountsDroppedSamples)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out (LBP_PROF=0)";
    prof::Profiler &p = prof::Profiler::instance();
    p.reset();
    prof::setPathTableLimitForTest(1);
    ASSERT_TRUE(p.start());
    {
        // Claim the only slot with the "bench" path...
        prof::ScopedRegion outer(prof::Region::Bench);
        spinUntilSampled(1);
        // ...then sample under a different stack until a drop lands
        // (or the wall-clock cap says the timer is starved).
        prof::ScopedRegion inner(prof::Region::SimDispatch);
        const auto t0 = Clock::now();
        while (p.snapshot().dropped == 0 &&
               std::chrono::duration<double>(Clock::now() - t0)
                       .count() < 2.0)
            spin(5.0);
    }
    p.stop();
    const prof::Snapshot snap = p.snapshot();
    prof::setPathTableLimitForTest(0); // restore the real bound
    p.reset();
    if (snap.samples == 0)
        GTEST_SKIP() << "timer starved (loaded CI host)";
    if (snap.dropped == 0)
        GTEST_SKIP() << "no second-path sample landed before the "
                        "cap (loaded CI host)";
    EXPECT_GT(snap.dropped, 0u);
}

TEST(ObsProf, ConcurrentThreadsSampleIndependently)
{
    if (!prof::compiledIn())
        GTEST_SKIP() << "profiler compiled out (LBP_PROF=0)";
    prof::Profiler &p = prof::Profiler::instance();
    p.reset();
    ASSERT_TRUE(p.start());

    // Threads hammer region entry/exit while the sampler fires and
    // the main thread snapshots concurrently — the TSan/ASan target:
    // handler vs. marker vs. snapshot on live ThreadStates.
    std::atomic<bool> stopFlag{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&stopFlag] {
            while (!stopFlag.load(std::memory_order_relaxed)) {
                prof::ScopedRegion r(prof::Region::Bench);
                prof::ScopedRegion r2(prof::Region::SimReplay);
                spin(1.0);
            }
        });
    for (int i = 0; i < 20; ++i) {
        (void)p.snapshot();
        spin(2.0);
    }
    stopFlag.store(true);
    for (auto &t : threads)
        t.join();
    p.stop();

    const prof::Snapshot snap = p.snapshot();
    // Structural consistency only — counts are load-dependent.
    std::uint64_t pathTotal = 0;
    for (const auto &pc : snap.paths)
        pathTotal += pc.count;
    EXPECT_EQ(pathTotal, snap.samples);
    EXPECT_GE(snap.attributedFraction(), 0.0);
    EXPECT_LE(snap.attributedFraction(), 1.0);
    p.reset();
}

/**
 * The zero-overhead-off proof within one build: a simulation run
 * with the profiler idle and one with it actively sampling produce
 * bit-identical SimStats and identical published counters (timing
 * gauges excluded — .ms keys measure the host). The cross-build half
 * of the proof (LBP_PROF=OFF binary vs this one) is the CI prof leg
 * diffing `lbp_stats run --json` dumps.
 */
TEST(ObsProf, SamplingNeverPerturbsSimulationCounters)
{
    Program prog = workloads::buildWorkload("adpcm_dec");
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 256;

    auto runOnce = [&](obs::Registry &reg) {
        CompileResult cr;
        Program p2 = workloads::buildWorkload("adpcm_dec");
        CompileOptions o2 = opts;
        o2.obsRegistry = &reg;
        compileProgram(p2, o2, cr);
        SimConfig sc;
        sc.bufferOps = 256;
        VliwSim sim(cr.code, sc);
        const SimStats st = sim.run();
        publishSimStats(reg, st);
        if (const TraceCacheStats *tc = sim.traceCacheStats())
            obs::publishTraceCacheStats(reg, *tc);
        return st;
    };

    obs::Registry regIdle;
    const SimStats idle = runOnce(regIdle);

    prof::Profiler &p = prof::Profiler::instance();
    p.reset();
    const bool sampling = p.start();
    obs::Registry regProf;
    const SimStats prof_ = runOnce(regProf);
    if (sampling)
        p.stop();

    const std::string d =
        obs::diffSimStats(idle, prof_, "profiler-idle",
                          "profiler-sampling");
    EXPECT_TRUE(d.empty()) << d;

    // Registry dumps match key-for-key once host-time gauges are
    // dropped (phase timers measure wall time, not behavior).
    const auto diffs =
        obs::diffRegistries(regIdle.toJson(), regProf.toJson());
    for (const auto &df : diffs) {
        const bool timing =
            df.key.size() >= 3 &&
            df.key.compare(df.key.size() - 3, 3, ".ms") == 0;
        EXPECT_TRUE(timing)
            << "non-timing key diverged under sampling: " << df.key
            << " (" << df.a << " vs " << df.b << ")";
    }
}

} // namespace
} // namespace lbp
