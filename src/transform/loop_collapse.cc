#include "transform/loop_collapse.hh"

#include <algorithm>

#include "analysis/dependence.hh"
#include "analysis/loop_info.hh"
#include "obs/loop_report.hh"
#include "sched/modulo_scheduler.hh"
#include "transform/counted_loop.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

/** Are the ops of an outer block safe to predicate and pull in? */
bool
outerBlockEligible(const BasicBlock &bb, bool isLatch)
{
    for (size_t i = 0; i < bb.ops.size(); ++i) {
        const Operation &op = bb.ops[i];
        if (op.op == Opcode::CALL || op.op == Opcode::RET ||
            isBufferOp(op.op) || op.op == Opcode::BR_CLOOP ||
            op.op == Opcode::BR_WLOOP || op.hasGuard()) {
            return false;
        }
        // Only the latch may end in a branch (the backedge); other
        // outer blocks must be straight-line (or end in JUMP along
        // the path, which we treat below via successors).
        if (op.op == Opcode::BR && !(isLatch && i + 1 == bb.ops.size()))
            return false;
        if (op.op == Opcode::JUMP && i + 1 != bb.ops.size())
            return false;
    }
    return true;
}

/** The single successor of a straight-line block, or kNoBlock. */
BlockId
soleSuccessor(const BasicBlock &bb)
{
    auto succs = bb.successors();
    return succs.size() == 1 ? succs[0] : kNoBlock;
}

bool
collapseOne(Function &fn, LoopInfo &li, const Loop &outer,
            const CollapseOptions &opts, CollapseStats &st,
            obs::LoopDecisionLog *log)
{
    auto reject = [&](obs::LoopReason r, std::string note = "") {
        if (log) {
            obs::LoopAttempt a;
            a.transform = "collapse";
            a.reason = r;
            a.note = std::move(note);
            log->addAttempt(fn.name + "/" +
                                fn.blocks[outer.header].name,
                            std::move(a));
        }
        return false;
    };

    // Exactly one child loop, and that child is simple.
    if (outer.children.empty())
        return false; // innermost: not a nest, nothing to attempt
    if (outer.children.size() != 1)
        return reject(obs::LoopReason::NotSimple, "multi-child nest");
    const Loop &inner = li.loops()[outer.children[0]];
    if (!li.isSimple(inner.index))
        return reject(obs::LoopReason::NotSimple, "inner not simple");
    if (outer.latches.size() != 1)
        return reject(obs::LoopReason::MultiLatch);

    // Inner loop: canonical counted with static trip.
    const InductionInfo &ii = inner.induction;
    if (!ii.valid || !ii.startKnown)
        return reject(obs::LoopReason::NotCounted, "inner induction");
    if (ii.constTrip < opts.minInnerTrip)
        return reject(obs::LoopReason::TripTooSmall,
                      "inner trip " + std::to_string(ii.constTrip));
    if (ii.constTrip > opts.maxInnerTrip)
        return reject(obs::LoopReason::TripTooLarge,
                      "inner trip " + std::to_string(ii.constTrip));
    const BlockId innerBlk = inner.header;
    const BasicBlock &ib = fn.blocks[innerBlk];
    const Operation *iterm = ib.terminator();
    if (!iterm || iterm->op != Opcode::BR ||
        iterm->target != innerBlk || iterm->hasGuard()) {
        return reject(obs::LoopReason::BadShape, "inner terminator");
    }
    // No side exits in the inner body.
    for (const auto &op : ib.ops) {
        if (op.isBranchOp() && &op != &ib.ops.back())
            return reject(obs::LoopReason::MultiExit, "inner side exit");
    }
    if (ib.fallthrough == kNoBlock)
        return reject(obs::LoopReason::BadShape, "inner fallthrough");

    // Outer loop: canonical counted/while induction so we can compute
    // its trip count in the preheader.
    const InductionInfo &oi = outer.induction;
    if (!oi.valid)
        return reject(obs::LoopReason::NotCounted, "outer induction");
    if (outer.preheader == kNoBlock)
        return reject(obs::LoopReason::NoPreheader);
    // Preheader must fall straight into the outer header.
    {
        auto succs = fn.blocks[outer.preheader].successors();
        if (succs.size() != 1 || succs[0] != outer.header)
            return reject(obs::LoopReason::BadShape, "preheader edge");
    }

    // Walk the outer straight path: header -> ... -> innerPre ->
    // inner -> ... -> latch -> (backedge).
    const BlockId latch = outer.latches[0];
    std::vector<BlockId> aPath; // blocks before the inner loop
    std::vector<BlockId> fPath; // blocks after it
    BlockId cur = outer.header;
    bool seen_inner = false;
    int guard = 0;
    while (guard++ < 1000) {
        if (cur == innerBlk) {
            seen_inner = true;
            cur = fn.blocks[innerBlk].fallthrough;
            continue;
        }
        if (!outer.contains(cur))
            return reject(obs::LoopReason::BadShape, "path escapes loop");
        const BasicBlock &bb = fn.blocks[cur];
        if (!outerBlockEligible(bb, cur == latch))
            return reject(obs::LoopReason::HasCall, bb.name);
        (seen_inner ? fPath : aPath).push_back(cur);
        if (cur == latch)
            break;
        const BlockId nxt = soleSuccessor(bb);
        if (nxt == kNoBlock)
            return reject(obs::LoopReason::BadShape, bb.name);
        cur = nxt;
    }
    if (!seen_inner || cur != latch)
        return reject(obs::LoopReason::BadShape, "no straight path");

    // The outer backedge must be the canonical bottom-test branch.
    const Operation *oterm = fn.blocks[latch].terminator();
    if (!oterm || oterm->op != Opcode::BR ||
        oterm->target != outer.header || oterm->hasGuard()) {
        return reject(obs::LoopReason::BadShape, "outer backedge");
    }
    const BlockId outerExit = fn.blocks[latch].fallthrough;
    if (outerExit == kNoBlock || outer.contains(outerExit))
        return reject(obs::LoopReason::BadShape, "outer exit");

    // Budget: outer ops pulled into the inner body, and
    // profitability relative to the inner body size (the guarded
    // outer ops cost issue slots on every collapsed iteration).
    int outer_ops = 0;
    for (BlockId b : aPath)
        outer_ops += fn.blocks[b].sizeOps();
    for (BlockId b : fPath)
        outer_ops += fn.blocks[b].sizeOps() - (b == latch ? 1 : 0);
    if (outer_ops > opts.maxOuterOps) {
        return reject(obs::LoopReason::TooLarge,
                      std::to_string(outer_ops) + " outer ops");
    }
    const int inner_ops = fn.blocks[innerBlk].sizeOps();
    const int allowance = std::max(
        opts.minOuterAllowance,
        static_cast<int>(inner_ops * opts.maxOuterToInnerRatio));
    if (outer_ops > allowance) {
        return reject(obs::LoopReason::NotProfitable,
                      std::to_string(outer_ops) + " outer vs " +
                          std::to_string(inner_ops) + " inner ops");
    }

    // Predicates / counter for the collapsed form.
    const RegId tReg = fn.newReg();
    const PredId p1 = fn.newPred();
    const PredId p3 = fn.newPred();
    const std::int64_t lastVal =
        ii.start + (ii.constTrip - 1) * ii.step;

    /**
     * Assemble the collapsed body for a given `total` operand.
     * Called twice: once with a placeholder for the profitability
     * estimate (before any IR mutation), once for real.
     */
    auto assembleBody = [&](Operand total) {
        std::vector<Operation> body;
        auto emitBody = [&](Operation op, bool fromOuter, PredId g) {
            if (op.id == 0)
                op.id = fn.newOpId();
            if (g != kNoPred)
                op.guard = g;
            op.fromOuterLoop = fromOuter;
            body.push_back(std::move(op));
        };

        // p1 identifies the final inner iteration of this outer
        // iteration.
        emitBody(makePredDef(PredDefKind::UT, p1, PredDefKind::NONE,
                             0, CmpCond::EQ, Operand::reg(ii.reg),
                             Operand::imm(lastVal)),
                 false, kNoPred);

        // Inner body (minus its backedge), unguarded.
        for (size_t i = 0; i + 1 < ib.ops.size(); ++i)
            emitBody(ib.ops[i], false, kNoPred);

        // F path (outer code after the inner loop), guarded p1.
        for (BlockId b : fPath) {
            const BasicBlock &bb = fn.blocks[b];
            const size_t n = bb.ops.size() - (b == latch ? 1 : 0);
            for (size_t i = 0; i < n; ++i) {
                if (bb.ops[i].op == Opcode::JUMP)
                    continue;
                emitBody(bb.ops[i], true, p1);
            }
        }

        // p3 = p1 && (t < total - 1): A code runs only when another
        // outer iteration follows. With a register total, compare
        // t + 1 < total.
        if (total.isImm()) {
            Operation d = makePredDef(PredDefKind::UT, p3,
                                      PredDefKind::NONE, 0,
                                      CmpCond::LT, Operand::reg(tReg),
                                      Operand::imm(total.value - 1));
            d.guard = p1;
            emitBody(std::move(d), true, p1);
        } else {
            RegId tmp = fn.newReg();
            emitBody(makeBinary(Opcode::ADD, tmp, Operand::reg(tReg),
                                Operand::imm(1)),
                     true, p1);
            Operation d = makePredDef(PredDefKind::UT, p3,
                                      PredDefKind::NONE, 0,
                                      CmpCond::LT, Operand::reg(tmp),
                                      total);
            d.guard = p1;
            emitBody(std::move(d), true, p1);
        }

        // A path (outer code before the inner loop, incl. the inner
        // induction reset), guarded p3.
        for (BlockId b : aPath) {
            const BasicBlock &bb = fn.blocks[b];
            for (const auto &op : bb.ops) {
                if (op.op == Opcode::JUMP)
                    continue;
                emitBody(op, true, p3);
            }
        }

        // Counter increment + backedge.
        Operation inc = makeBinary(Opcode::ADD, tReg,
                                   Operand::reg(tReg),
                                   Operand::imm(1));
        inc.id = fn.newOpId();
        body.push_back(std::move(inc));
        Operation back = makeBr(CmpCond::LT, Operand::reg(tReg),
                                total, innerBlk);
        back.id = fn.newOpId();
        body.push_back(std::move(back));
        return body;
    };

    // Profitability (paper: collapsing must not "severely impact the
    // resource or recurrence constraints of the loop", and pays off
    // "provided that the inner loop schedule can accommodate the
    // extra instructions"). Estimate the initiation interval of the
    // inner loop and of the collapsed body; the per-outer-iteration
    // cost of an II increase is innerTrip * dII, while the saving is
    // roughly one branch penalty plus the buffer entry overhead.
    {
        Machine machine;
        const int innerII =
            std::max(computeResMII(ib, machine),
                     DepGraph(ib, /*loopCarried=*/true).recMII());
        BasicBlock probe;
        probe.id = innerBlk; // backedge target check only
        probe.ops = assembleBody(Operand::imm(1 << 20));
        const int collII =
            std::max(computeResMII(probe, machine),
                     DepGraph(probe, /*loopCarried=*/true).recMII());
        const double savedPerOuter =
            machine.branchPenalty() + 2.0; // loop entry/exit overhead
        const double costPerOuter =
            static_cast<double>(ii.constTrip) *
            std::max(0, collII - innerII);
        if (costPerOuter > savedPerOuter) {
            return reject(obs::LoopReason::NotProfitable,
                          "II " + std::to_string(innerII) + " -> " +
                              std::to_string(collII));
        }
    }

    // Compute total trips in the outer preheader:
    //   total = innerTrip * outerTrips.
    BasicBlock &pre = fn.blocks[outer.preheader];
    Operand outerTrips = emitTripCountOps(fn, pre, oi);
    if (outerTrips.isNone())
        return reject(obs::LoopReason::NotCounted, "outer trip expr");

    auto emitPre = [&](Operation op) -> RegId {
        op.id = fn.newOpId();
        // Preheader falls straight into the header; append at end
        // (before a trailing JUMP if present).
        if (!pre.ops.empty() && pre.ops.back().op == Opcode::JUMP) {
            pre.ops.insert(pre.ops.end() - 1, op);
        } else {
            pre.ops.push_back(op);
        }
        return op.dsts.empty() ? 0 : op.dsts[0].asReg();
    };

    Operand total;
    if (outerTrips.isImm()) {
        total = Operand::imm(outerTrips.value * ii.constTrip);
    } else {
        RegId t = fn.newReg();
        emitPre(makeBinary(Opcode::MUL, t, outerTrips,
                           Operand::imm(ii.constTrip)));
        total = Operand::reg(t);
    }

    std::vector<Operation> body = assembleBody(total);

    // Counter init at the end of the last A-path block (the collapsed
    // loop's immediate preheader) — emitted only now so the guarded
    // in-loop copy of the A code does not contain it.
    {
        BasicBlock &lastA = fn.blocks[aPath.back()];
        Operation init = makeUnary(Opcode::MOV, tReg, Operand::imm(0));
        init.id = fn.newOpId();
        if (!lastA.ops.empty() && lastA.ops.back().op == Opcode::JUMP) {
            lastA.ops.insert(lastA.ops.end() - 1, std::move(init));
        } else {
            lastA.ops.push_back(std::move(init));
        }
    }

    // Install: the inner block becomes the collapsed loop. The A path
    // runs once in the preheader (first outer iteration) — splice the
    // original A blocks between preheader and the collapsed loop by
    // retargeting edges.
    BasicBlock &nb = fn.blocks[innerBlk];
    nb.ops = std::move(body);
    nb.fallthrough = outerExit;
    nb.isHyperblock = true;

    // Preheader now falls into the original outer header (start of A),
    // which eventually reaches innerBlk — keep those blocks alive as
    // the prolog, but their path must now end at innerBlk without the
    // F/latch blocks. The A path already flows into innerBlk.
    // Kill the F-path blocks.
    for (BlockId b : fPath) {
        fn.blocks[b].dead = true;
        fn.blocks[b].ops.clear();
        fn.blocks[b].fallthrough = kNoBlock;
    }

    st.outerOpsPulledIn += outer_ops;
    ++st.loopsCollapsed;
    if (log) {
        const std::string name =
            fn.name + "/" + fn.blocks[outer.header].name;
        obs::LoopAttempt a;
        a.transform = "collapse";
        a.applied = true;
        a.opsBefore = outer_ops + inner_ops;
        a.opsAfter = static_cast<int>(nb.sizeOps());
        a.note = "into " + fn.name + "/" + nb.name;
        log->addAttempt(name, std::move(a));
        // The outer loop is gone: its code lives, guarded, inside the
        // collapsed inner loop.
        log->decision(name).fate = obs::LoopFate::Eliminated;
    }
    return true;
}

} // namespace

CollapseStats
collapseLoops(Function &fn, const CollapseOptions &opts,
              obs::LoopDecisionLog *log)
{
    CollapseStats st;
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 100) {
        changed = false;
        LoopInfo li(fn);
        for (const auto &loop : li.loops()) {
            if (collapseOne(fn, li, loop, opts, st, log)) {
                changed = true;
                break;
            }
        }
    }
    return st;
}

CollapseStats
collapseLoops(Program &prog, const CollapseOptions &opts,
              obs::LoopDecisionLog *log)
{
    CollapseStats st;
    for (auto &fn : prog.functions) {
        auto s = collapseLoops(fn, opts, log);
        st.loopsCollapsed += s.loopsCollapsed;
        st.outerOpsPulledIn += s.outerOpsPulledIn;
    }
    return st;
}

} // namespace lbp
