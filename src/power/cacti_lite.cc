#include "power/cacti_lite.hh"

#include <cmath>

#include "support/logging.hh"

namespace lbp
{

CactiLite::CactiLite()
{
    // Calibrate portExp so that
    //   (kMemBytes / refBytes)^sizeExp * (kMemPorts)^portExp == 41.8.
    const double refBytes = kRefBufferOps * kOpBytes;
    const double sizeFactor =
        std::pow(kMemBytes / refBytes, kSizeExp);
    LBP_ASSERT(sizeFactor > 0 && sizeFactor < kTargetRatio,
               "size factor out of calibration range");
    portExp_ = std::log(kTargetRatio / sizeFactor) /
               std::log(static_cast<double>(kMemPorts));
    // Absolute scale: 0.05 nJ for the reference single-port buffer
    // read (order of magnitude of small-SRAM reads at 0.13 um; only
    // ratios matter downstream).
    e0_ = 0.05;
}

double
CactiLite::readEnergy(double bytes, int ports) const
{
    LBP_ASSERT(bytes > 0 && ports >= 1, "bad SRAM parameters");
    const double refBytes = kRefBufferOps * kOpBytes;
    return e0_ * std::pow(bytes / refBytes, kSizeExp) *
           std::pow(static_cast<double>(ports), portExp_);
}

double
CactiLite::memoryFetchEnergy() const
{
    return readEnergy(kMemBytes, kMemPorts);
}

double
CactiLite::bufferFetchEnergy(int bufferOps) const
{
    // Zero-capacity buffer: fetches come from memory anyway; return
    // the memory energy so callers can use this uniformly.
    if (bufferOps <= 0)
        return memoryFetchEnergy();
    return readEnergy(bufferOps * kOpBytes, 1);
}

double
CactiLite::calibratedRatio() const
{
    return memoryFetchEnergy() /
           bufferFetchEnergy(static_cast<int>(kRefBufferOps));
}

} // namespace lbp
