/**
 * @file
 * Predication metrics (paper §4.1, Figure 3): distributions of
 * predicate consumers per define, predicate live-range durations in
 * scheduled cycles, and simultaneously-live predicates per loop —
 * plus the §4.3 sensitivity fractions. All are computed over the
 * scheduled loop bodies of a compiled program, statically and
 * weighted by the dynamic profile.
 */

#ifndef LBP_CORE_METRICS_HH
#define LBP_CORE_METRICS_HH

#include "core/compiler.hh"
#include "support/stats.hh"

namespace lbp
{

struct PredicationMetrics
{
    /** Figure 3a: consumers per predicate define. */
    Histogram consumersPerDefineStatic;
    Histogram consumersPerDefineDynamic;

    /** Figure 3b: live-range duration (cycles) per define. */
    Histogram liveRangeStatic;
    Histogram liveRangeDynamic;

    /** Figure 3c: max simultaneously-live predicates per loop,
     *  weighted by dynamic loop iterations. */
    Histogram overlapPerLoop;

    int predicatedLoops = 0;    ///< loop bodies using predication
    int candidateLoops = 0;     ///< modulo-scheduling candidates

    /** §4.3: dynamic guard-sensitive op fractions. */
    double dynOpsInPredicatedLoops = 0;
    double dynSensitiveInPredicatedLoops = 0;
    double dynOpsInBufferableLoops = 0;
    double dynSensitiveInBufferableLoops = 0;

    double sensitiveFracPredicated() const
    {
        return dynOpsInPredicatedLoops > 0
                   ? dynSensitiveInPredicatedLoops /
                         dynOpsInPredicatedLoops
                   : 0.0;
    }
    double sensitiveFracBufferable() const
    {
        return dynOpsInBufferableLoops > 0
                   ? dynSensitiveInBufferableLoops /
                         dynOpsInBufferableLoops
                   : 0.0;
    }
};

/** Compute predication metrics over a compiled program. */
PredicationMetrics collectPredicationMetrics(const CompileResult &cr);

/**
 * Register-pressure report: the maximum number of simultaneously
 * live general registers in any scheduled loop body, per function
 * and program-wide. The paper's machine provides 64 integer
 * registers; ILP transformations "need many registers to express
 * enough parallelism" (§4), so this is the constraint a register
 * allocator would have to satisfy.
 */
struct RegisterPressure
{
    int maxLoopPressure = 0;   ///< worst loop body in the program
    int machineRegisters = 64; ///< paper §7
    bool fits() const { return maxLoopPressure <= machineRegisters; }
};

RegisterPressure collectRegisterPressure(const CompileResult &cr);

/** Merge: accumulate @p in into @p acc (for benchmark-set totals). */
void mergeMetrics(PredicationMetrics &acc, const PredicationMetrics &in);

} // namespace lbp

#endif // LBP_CORE_METRICS_HH
