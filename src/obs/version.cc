#include "obs/version.hh"

#include <sstream>

#include "obs/json.hh"
#include "obs/registry.hh"

#ifndef LBP_GIT_SHA
#define LBP_GIT_SHA "unknown"
#endif

namespace lbp
{
namespace obs
{

const char *
gitSha()
{
    return LBP_GIT_SHA;
}

std::string
versionString()
{
    std::ostringstream os;
    os << "lbp " << gitSha() << " (registry schema "
       << kRegistrySchemaVersion << ", bench schema "
       << kBenchSchemaVersion << ", history schema "
       << kHistorySchemaVersion << ")";
    return os.str();
}

void
stampVersion(Json &doc)
{
    doc.set("git_sha", Json::str(gitSha()));
}

} // namespace obs
} // namespace lbp
