/**
 * @file
 * Counted-loop conversion tests: static-trip cloops, runtime-trip
 * computation, while-loop fallback, and preheader safety.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "transform/counted_loop.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

TEST(CountedLoop, StaticTripConverted)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 13, 1, [&](RegId i) { b.addTo(acc, R(acc), R(i)); });
    b.ret({R(acc)});
    Interpreter pre(prog);
    const auto before = pre.run();

    auto st = convertCountedLoops(prog);
    EXPECT_EQ(st.cloops, 1);
    EXPECT_EQ(st.wloops, 0);
    verifyOrDie(prog);

    // A REC_CLOOP with an immediate trip of 13 exists.
    bool sawRec = false, sawCloop = false;
    for (const auto &bb : prog.functions[f].blocks) {
        for (const auto &op : bb.ops) {
            if (op.op == Opcode::REC_CLOOP) {
                sawRec = true;
                EXPECT_TRUE(op.srcs[0].isImm());
                EXPECT_EQ(op.srcs[0].value, 13);
            }
            sawCloop |= op.op == Opcode::BR_CLOOP;
        }
    }
    EXPECT_TRUE(sawRec);
    EXPECT_TRUE(sawCloop);

    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
}

class RuntimeTripTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RuntimeTripTest, RuntimeTripComputedCorrectly)
{
    // Trip count computed from a register bound at run time; the
    // bottom-test contract means bound <= start still runs once.
    const int bound = GetParam();
    Program prog;
    const auto data = prog.allocData(16);
    prog.poke32(data, bound);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId n = b.loadW(R(dp), I(0));
    const RegId count = b.iconst(0);
    b.forLoopReg(0, n, 1, [&](RegId) {
        b.addTo(count, R(count), I(1));
    });
    b.ret({R(count)});

    Interpreter pre(prog);
    const auto before = pre.run();
    auto st = convertCountedLoops(prog);
    EXPECT_EQ(st.cloops, 1);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
    EXPECT_EQ(before.returns[0], std::max(bound, 1));
}

INSTANTIATE_TEST_SUITE_P(Bounds, RuntimeTripTest,
                         ::testing::Values(-3, 0, 1, 2, 7, 100));

TEST(CountedLoop, DownwardLoop)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(0);
    b.forLoop(10, 0, -2, [&](RegId i) { b.addTo(acc, R(acc), R(i)); });
    b.ret({R(acc)});
    Interpreter pre(prog);
    const auto before = pre.run();
    auto st = convertCountedLoops(prog);
    EXPECT_EQ(st.cloops, 1);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
    EXPECT_EQ(before.returns[0], 10 + 8 + 6 + 4 + 2);
}

TEST(CountedLoop, DataDependentExitBecomesWloop)
{
    // Collatz-style loop: no affine induction -> while-loop form.
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId x = b.iconst(97);
    const RegId steps = b.iconst(0);
    const BlockId head = b.makeBlock();
    b.fallTo(head);
    b.at(head);
    const RegId half = b.shra(R(x), I(1));
    b.movTo(x, R(half));
    b.addTo(steps, R(steps), I(1));
    b.br(CmpCond::GT, R(x), I(0), head);
    const BlockId done = b.makeBlock();
    b.fallTo(done);
    b.at(done);
    b.ret({R(steps)});

    Interpreter pre(prog);
    const auto before = pre.run();
    auto st = convertCountedLoops(prog);
    EXPECT_EQ(st.cloops, 0);
    EXPECT_EQ(st.wloops, 1);
    bool sawRecW = false;
    for (const auto &bb : prog.functions[f].blocks)
        for (const auto &op : bb.ops)
            sawRecW |= op.op == Opcode::REC_WLOOP;
    EXPECT_TRUE(sawRecW);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
}

TEST(CountedLoop, ConditionalPreheaderRejected)
{
    // The preheader conditionally skips the loop; inserting a REC
    // there would leak a hardware-loop context, so conversion must
    // refuse.
    Program prog;
    const auto data = prog.allocData(8);
    prog.poke32(data, 0);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId flag = b.loadW(R(dp), I(0));
    const RegId acc = b.iconst(0);
    const BlockId skip = b.makeBlock("skip");
    b.br(CmpCond::EQ, R(flag), I(0), skip);
    // (fallthrough into the loop)
    const BlockId pre = b.makeBlock("pre");
    b.fallTo(pre);
    b.at(pre);
    b.forLoop(0, 5, 1, [&](RegId i) { b.addTo(acc, R(acc), R(i)); });
    b.jump(skip);
    b.at(skip);
    b.ret({R(acc)});

    Interpreter preI(prog);
    const auto before = preI.run();
    convertCountedLoops(prog);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
}

TEST(CountedLoop, Idempotent)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 9, 1, [&](RegId i) { b.addTo(acc, R(acc), R(i)); });
    b.ret({R(acc)});
    auto st1 = convertCountedLoops(prog);
    auto st2 = convertCountedLoops(prog);
    EXPECT_EQ(st1.cloops, 1);
    EXPECT_EQ(st2.cloops + st2.wloops, 0);
}

} // namespace
} // namespace lbp
