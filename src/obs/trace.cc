#include "obs/trace.hh"

#include <algorithm>
#include <map>

#include "obs/json.hh"
#include "support/logging.hh"

namespace lbp
{
namespace obs
{

const char *
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::Fetch: return "fetch";
      case TraceKind::BufHit: return "buffer_hit";
      case TraceKind::LoopEnter: return "loop_enter";
      case TraceKind::LoopRecord: return "loop_record";
      case TraceKind::LoopExit: return "loop_exit";
      case TraceKind::Branch: return "branch";
      case TraceKind::Penalty: return "penalty";
      case TraceKind::Nullify: return "nullify";
    }
    return "?";
}

TraceSink::TraceSink(std::size_t capacity, std::uint64_t samplePeriod)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      samplePeriod_(std::max<std::uint64_t>(samplePeriod, 1))
{
    ring_.resize(capacity_);
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(head_ + i) % capacity_]);
    return out;
}

void
TraceSink::clear()
{
    head_ = 0;
    size_ = 0;
    sampleSeq_ = 0;
    dropped_ = 0;
    sampledOut_ = 0;
    for (int i = 0; i < kTraceKindCount; ++i) {
        counts_[i] = 0;
        sumA_[i] = 0;
    }
}

std::vector<ResidencySpan>
residencyTimeline(const TraceSink &sink)
{
    const auto events = sink.snapshot();
    std::vector<ResidencySpan> spans;
    // Per-loop stack of open activations (indices into `spans`).
    std::map<std::int32_t, std::vector<std::size_t>> open;
    std::uint64_t lastCycle = 0;

    for (const auto &e : events) {
        lastCycle = std::max(lastCycle, e.cycle);
        switch (e.kind) {
          case TraceKind::LoopEnter: {
            ResidencySpan s;
            s.loopId = e.loopId;
            s.enterCycle = e.cycle;
            s.exitCycle = e.cycle;
            s.fromBuffer = e.b != 0;
            open[e.loopId].push_back(spans.size());
            spans.push_back(s);
            break;
          }
          case TraceKind::LoopRecord: {
            auto it = open.find(e.loopId);
            if (it != open.end() && !it->second.empty())
                spans[it->second.back()].recorded = true;
            break;
          }
          case TraceKind::LoopExit: {
            auto it = open.find(e.loopId);
            if (it == open.end() || it->second.empty())
                break;   // exit whose enter fell out of the ring
            ResidencySpan &s = spans[it->second.back()];
            it->second.pop_back();
            s.exitCycle = e.cycle;
            s.iterations = static_cast<std::uint64_t>(e.a);
            s.fromBuffer = e.b != 0;
            break;
          }
          default:
            break;
        }
    }
    // Close any span left open (truncated trace).
    for (auto &kv : open)
        for (std::size_t idx : kv.second)
            spans[idx].exitCycle =
                std::max(spans[idx].enterCycle, lastCycle);
    return spans;
}

namespace
{

Json
chromeEvent(const char *name, const char *cat, const char *ph,
            std::uint64_t ts, int tid)
{
    Json e = Json::object();
    e.set("name", Json::str(name));
    e.set("cat", Json::str(cat));
    e.set("ph", Json::str(ph));
    e.set("ts", Json::uinteger(ts));
    e.set("pid", Json::integer(1));
    e.set("tid", Json::integer(tid));
    return e;
}

Json
threadName(int tid, const std::string &name)
{
    Json e = Json::object();
    e.set("name", Json::str("thread_name"));
    e.set("ph", Json::str("M"));
    e.set("pid", Json::integer(1));
    e.set("tid", Json::integer(tid));
    Json args = Json::object();
    args.set("name", Json::str(name));
    e.set("args", std::move(args));
    return e;
}

// Track layout: 0 = fetch stream, 1 = control, 2+loopId = one track
// per static loop.
constexpr int kFetchTid = 0;
constexpr int kControlTid = 1;
constexpr int kLoopTidBase = 2;

} // namespace

void
writeChromeTrace(std::ostream &os, const TraceSink &sink,
                 const std::vector<std::string> &loopNames,
                 const std::string &processName)
{
    auto events = sink.snapshot();
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &x, const TraceEvent &y) {
                         return x.cycle < y.cycle;
                     });

    auto loopName = [&](std::int32_t id) -> std::string {
        if (id >= 0 && static_cast<std::size_t>(id) < loopNames.size()
            && !loopNames[id].empty())
            return loopNames[id];
        return "loop" + std::to_string(id);
    };

    Json trace = Json::array();

    {
        Json proc = Json::object();
        proc.set("name", Json::str("process_name"));
        proc.set("ph", Json::str("M"));
        proc.set("pid", Json::integer(1));
        Json args = Json::object();
        args.set("name", Json::str(processName));
        proc.set("args", std::move(args));
        trace.push(std::move(proc));
    }
    trace.push(threadName(kFetchTid, "fetch"));
    trace.push(threadName(kControlTid, "control"));

    std::vector<bool> namedLoop;
    auto nameLoopTrack = [&](std::int32_t id) {
        if (id < 0)
            return;
        if (static_cast<std::size_t>(id) >= namedLoop.size())
            namedLoop.resize(id + 1, false);
        if (namedLoop[id])
            return;
        namedLoop[id] = true;
        trace.push(threadName(kLoopTidBase + id,
                              "loop:" + loopName(id)));
    };

    // Loop activations render as duration spans; recover them first.
    const auto spans = residencyTimeline(sink);
    for (const auto &s : spans) {
        nameLoopTrack(s.loopId);
        Json e = chromeEvent(loopName(s.loopId).c_str(), "loop", "X",
                             s.enterCycle, kLoopTidBase + s.loopId);
        e.set("dur", Json::uinteger(
                         std::max<std::uint64_t>(
                             s.exitCycle - s.enterCycle, 1)));
        Json args = Json::object();
        args.set("iterations", Json::uinteger(s.iterations));
        args.set("fromBuffer", Json::boolean(s.fromBuffer));
        args.set("recorded", Json::boolean(s.recorded));
        e.set("args", std::move(args));
        trace.push(std::move(e));
    }

    for (const auto &ev : events) {
        switch (ev.kind) {
          case TraceKind::Fetch:
          case TraceKind::BufHit: {
            Json e = chromeEvent(traceKindName(ev.kind), "fetch", "i",
                                 ev.cycle, kFetchTid);
            e.set("s", Json::str("t"));
            Json args = Json::object();
            args.set("ops", Json::integer(ev.a));
            args.set("block", Json::integer(ev.b));
            if (ev.loopId >= 0)
                args.set("loop", Json::str(loopName(ev.loopId)));
            e.set("args", std::move(args));
            trace.push(std::move(e));
            break;
          }
          case TraceKind::LoopRecord: {
            nameLoopTrack(ev.loopId);
            Json e = chromeEvent("record", "loop", "i", ev.cycle,
                                 kLoopTidBase + ev.loopId);
            e.set("s", Json::str("t"));
            Json args = Json::object();
            args.set("bufAddr", Json::integer(ev.a));
            args.set("imageOps", Json::integer(ev.b));
            e.set("args", std::move(args));
            trace.push(std::move(e));
            break;
          }
          case TraceKind::Branch: {
            Json e = chromeEvent("branch", "control", "i", ev.cycle,
                                 kControlTid);
            e.set("s", Json::str("t"));
            Json args = Json::object();
            args.set("taken", Json::boolean(ev.a != 0));
            if (ev.b)
                args.set("nullified", Json::boolean(true));
            e.set("args", std::move(args));
            trace.push(std::move(e));
            break;
          }
          case TraceKind::Penalty: {
            // Render the stall as a span covering the cycles it
            // added (the event is emitted after the cycle bump).
            const std::uint64_t dur =
                static_cast<std::uint64_t>(ev.a);
            Json e = chromeEvent("penalty", "control", "X",
                                 ev.cycle >= dur ? ev.cycle - dur : 0,
                                 kControlTid);
            e.set("dur", Json::uinteger(std::max<std::uint64_t>(
                             dur, 1)));
            Json args = Json::object();
            const char *why = "branch";
            switch (ev.b) {
              case kPenaltyCall: why = "call"; break;
              case kPenaltyReturn: why = "return"; break;
              case kPenaltyWloopExit: why = "wloop-exit"; break;
              default: break;
            }
            args.set("why", Json::str(why));
            e.set("args", std::move(args));
            trace.push(std::move(e));
            break;
          }
          case TraceKind::Nullify: {
            Json e = chromeEvent("nullify", "issue", "i", ev.cycle,
                                 kControlTid);
            e.set("s", Json::str("t"));
            Json args = Json::object();
            args.set("opcode", Json::integer(ev.a));
            args.set("slot", Json::integer(ev.b));
            e.set("args", std::move(args));
            trace.push(std::move(e));
            break;
          }
          case TraceKind::LoopEnter:
          case TraceKind::LoopExit:
            // Represented by the residency spans above.
            break;
        }
    }

    Json root = Json::object();
    root.set("traceEvents", std::move(trace));
    root.set("displayTimeUnit", Json::str("ms"));
    Json other = Json::object();
    other.set("schema_version", Json::integer(kTraceSchemaVersion));
    other.set("cycleUnit", Json::str("1 cycle = 1 us"));
    other.set("dropped", Json::uinteger(sink.dropped()));
    other.set("sampledOut", Json::uinteger(sink.sampledOut()));
    other.set("samplePeriod", Json::uinteger(sink.samplePeriod()));
    root.set("otherData", std::move(other));
    root.write(os);
    os << "\n";
}

} // namespace obs
} // namespace lbp
