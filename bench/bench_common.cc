#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <tuple>

#include "obs/history.hh"
#include "obs/loop_report.hh"
#include "obs/prof.hh"
#include "obs/trace.hh"
#include "obs/version.hh"
#include "sim/decoded.hh"
#include "sim/dispatch.hh"
#include "support/logging.hh"

namespace lbp
{
namespace bench
{

bool
parseBenchOptions(int argc, char **argv, unsigned mask,
                  const std::string &defaultJsonPath,
                  BenchOptions &o)
{
    o.jsonPath = defaultJsonPath;
    auto usage = [&]() {
        std::string u = "usage: ";
        u += argv[0];
        if (mask & kBenchFlagQuick)
            u += " [--quick]";
        if (mask & kBenchFlagJson)
            u += " [--json[=PATH]]";
        if (mask & kBenchFlagHistory)
            u += " [--history[=PATH]]";
        if (mask & kBenchFlagLoops)
            u += " [--loops]";
        if (mask & kBenchFlagThreads)
            u += " [--threads=N]";
        if (mask & kBenchFlagProf)
            u += " [--prof]";
        if (mask & kBenchFlagPmu)
            u += " [--pmu]";
        std::fprintf(stderr, "%s\n", u.c_str());
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((mask & kBenchFlagQuick) && arg == "--quick") {
            o.quick = true;
        } else if ((mask & kBenchFlagJson) && arg == "--json") {
            o.json = true;
        } else if ((mask & kBenchFlagJson) &&
                   arg.rfind("--json=", 0) == 0) {
            o.json = true;
            o.jsonPath = arg.substr(7);
        } else if ((mask & kBenchFlagHistory) &&
                   arg == "--history") {
            o.historyPath = "BENCH_history.jsonl";
        } else if ((mask & kBenchFlagHistory) &&
                   arg.rfind("--history=", 0) == 0) {
            o.historyPath = arg.substr(10);
        } else if ((mask & kBenchFlagLoops) && arg == "--loops") {
            o.loops = true;
        } else if ((mask & kBenchFlagThreads) &&
                   arg.rfind("--threads=", 0) == 0) {
            o.threads = std::atoi(arg.c_str() + 10);
        } else if ((mask & kBenchFlagProf) && arg == "--prof") {
            o.prof = true;
        } else if ((mask & kBenchFlagPmu) && arg == "--pmu") {
            o.pmu = true;
        } else {
            return usage();
        }
    }
    // --history implies the JSON emission it snapshots.
    if (!o.historyPath.empty())
        o.json = true;
    return true;
}

void
startBenchPmu(const BenchOptions &o)
{
    if (!o.pmu)
        return;
    if (!obs::pmu::compiledIn()) {
        std::fprintf(stderr, "--pmu: host counters compiled out "
                             "(built with -DLBP_PMU=OFF)\n");
        std::exit(1);
    }
    std::string why;
    if (!obs::pmu::PmuSession::instance().start(&why))
        std::printf("host pmu unavailable: %s (continuing without "
                    "counters)\n",
                    why.c_str());
}

obs::Json
finishBenchPmu(const BenchOptions &o)
{
    using obs::Json;
    if (!o.pmu) {
        Json j = Json::object();
        j.set("requested", Json::boolean(false));
        j.set("available", Json::boolean(false));
        j.set("reason", Json::str("not requested"));
        return j;
    }
    obs::pmu::PmuSession &session =
        obs::pmu::PmuSession::instance();
    session.stop();
    const obs::pmu::Snapshot snap = session.snapshot();
    std::printf("\nhost pmu (per-region hardware counters)\n");
    rule();
    {
        std::ostringstream os;
        obs::pmu::printSnapshotTable(os, snap);
        std::fputs(os.str().c_str(), stdout);
    }
    Json j = obs::pmu::snapshotJson(snap);
    j.set("requested", Json::boolean(true));
    return j;
}

const std::vector<int> &
figureBufferSizes()
{
    static const std::vector<int> sizes{16, 32, 64, 128, 256, 512,
                                        1024, 2048};
    return sizes;
}

CompileResult &
compileBench(const std::string &name, OptLevel level, PredMode mode)
{
    // Slot lowering only runs at the aggressive level; elsewhere both
    // PredModes map to the same compilation, so normalize the key to
    // avoid duplicate compiles.
    const bool slot =
        level != OptLevel::Aggressive || mode == PredMode::SLOT;

    // Per-entry locking so different cache keys compile concurrently
    // while a shared key compiles exactly once.
    struct Entry
    {
        std::mutex mu;
        std::unique_ptr<CompileResult> cr;
    };
    static std::mutex mapMu;
    static std::map<std::tuple<std::string, int, bool>,
                    std::shared_ptr<Entry>> cache;

    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mapMu);
        auto &slotRef = cache[{name, static_cast<int>(level), slot}];
        if (!slotRef)
            slotRef = std::make_shared<Entry>();
        entry = slotRef;
    }
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->cr) {
        Program prog = workloads::buildWorkload(name);
        CompileOptions opts;
        opts.level = level;
        opts.slotLowering = slot;
        entry->cr = std::make_unique<CompileResult>();
        compileProgram(prog, opts, *entry->cr);
    }
    return *entry->cr;
}

SimStats
simulate(CompileResult &cr, int bufferOps, PredMode mode,
         SimEngine engine, TraceCacheStats *tcOut,
         obs::CycleStack *csOut)
{
    reallocateBuffers(cr, bufferOps);
    SimConfig sc;
    sc.bufferOps = bufferOps;
    sc.predMode = mode;
    sc.engine = engine;
    VliwSim sim(cr.code, sc);
    SimStats st = sim.run();
    LBP_ASSERT(st.checksum == cr.goldenChecksum,
               "simulation checksum mismatch for ", cr.ir.name);
    if (tcOut)
        if (const TraceCacheStats *tc = sim.traceCacheStats())
            accumulateTraceCacheStats(*tcOut, *tc);
    if (csOut)
        *csOut = sim.cycleStack();
    return st;
}

SimStats
simulateShared(CompileResult &cr, DecodedImage &img, int bufferOps,
               PredMode mode, TraceCacheStats *tcOut,
               obs::CycleStack *csOut)
{
    reallocateBuffers(cr, bufferOps);
    rebindBufferAddresses(img, cr.code);
    SimConfig sc;
    sc.bufferOps = bufferOps;
    sc.predMode = mode;
    sc.engine = SimEngine::DECODED;
    VliwSim sim(cr.code, sc, &img);
    SimStats st = sim.run();
    LBP_ASSERT(st.checksum == cr.goldenChecksum,
               "simulation checksum mismatch for ", cr.ir.name);
    if (tcOut)
        if (const TraceCacheStats *tc = sim.traceCacheStats())
            accumulateTraceCacheStats(*tcOut, *tc);
    if (csOut)
        *csOut = sim.cycleStack();
    return st;
}

std::vector<std::string>
benchNames()
{
    std::vector<std::string> names;
    for (const auto &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

obs::Json
cycleStackJson(const obs::CycleRow &row)
{
    using obs::Json;
    Json j = Json::object();
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k) {
        j.set(obs::cycleClassName(static_cast<obs::CycleClass>(k)),
              Json::uinteger(row[k]));
        total += row[k];
    }
    j.set("total", Json::uinteger(total));
    return j;
}

void
rule(char c, int n)
{
    for (int i = 0; i < n; ++i)
        std::putchar(c);
    std::putchar('\n');
}

obs::Json
benchJsonDoc(const std::string &benchName)
{
    using obs::Json;
    Json doc = Json::object();
    // Schema history lives on obs::kBenchSchemaVersion (version.hh).
    doc.set("schema_version",
            Json::integer(obs::kBenchSchemaVersion));
    doc.set("bench", Json::str(benchName));
    obs::stampVersion(doc);

    Json machine = Json::object();
    machine.set("hardware_concurrency",
                Json::integer(std::thread::hardware_concurrency()));
    machine.set("compiler", Json::str(__VERSION__));
    machine.set("pointer_bits", Json::integer(8 * sizeof(void *)));
    doc.set("machine", std::move(machine));

    // Compiled-in code-path toggles. Unlike "machine" (identity,
    // ignored by the history gate) these are config-class leaves,
    // compared exactly: numbers from differently-configured builds
    // must fail the gate loudly, never silently average into the
    // same timeline.
    Json build = Json::object();
    build.set("threaded_dispatch",
              Json::boolean(LBP_THREADED_DISPATCH != 0));
    build.set("trace_hooks", Json::boolean(LBP_TRACE != 0));
    build.set("prof", Json::boolean(LBP_PROF != 0));
    build.set("pmu", Json::boolean(LBP_PMU != 0));
    doc.set("build", std::move(build));
    return doc;
}

void
writeBenchJson(const std::string &path, const obs::Json &doc)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    doc.write(os);
    os << "\n";
    if (!os.good()) {
        std::fprintf(stderr, "write to %s failed\n", path.c_str());
        std::exit(1);
    }
    std::printf("wrote %s\n", path.c_str());
}

void
appendBenchHistory(const std::string &historyPath,
                   const obs::Json &doc)
{
    const obs::HistoryRecord rec = obs::makeHistoryRecord(doc);
    std::string error;
    if (!obs::appendHistory(historyPath, rec, error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        std::exit(1);
    }
    std::printf("appended %s record (%zu values, %s) to %s\n",
                rec.source.c_str(), rec.values.size(),
                rec.gitSha.c_str(), historyPath.c_str());
}

void
dumpLoopScorecard(const std::string &workload, OptLevel level,
                  int bufferOps)
{
    CompileResult &cr = compileBench(workload, level);
    TraceCacheStats tc;
    obs::CycleStack cs;
    const SimStats st =
        simulate(cr, bufferOps, PredMode::SLOT, SimEngine::DECODED,
                 &tc, &cs);
    const FetchEnergy fe = computeFetchEnergy(st, bufferOps);
    const obs::LoopScorecard sc = obs::buildLoopScorecard(
        workload, cr.loopLog, st, bufferOps, &fe, &tc, &cs);
    obs::printScorecard(std::cout, sc);
}

void
dumpLoopScorecards(OptLevel level, int bufferOps)
{
    for (const auto &name : benchNames()) {
        dumpLoopScorecard(name, level, bufferOps);
        std::putchar('\n');
    }
}

} // namespace bench
} // namespace lbp
