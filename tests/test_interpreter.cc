/**
 * @file
 * Interpreter tests: ALU semantics, memory, guards, the full Table-2
 * predicate-define truth table (exhaustive and parameterized),
 * hardware-loop contexts, calls, and speculative load semantics.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/interpreter.hh"

namespace lbp
{
namespace
{

/** Run a single-function program and return its first return value. */
std::int64_t
runReturn(Program &prog)
{
    Interpreter interp(prog);
    auto r = interp.run();
    EXPECT_FALSE(r.returns.empty());
    return r.returns.empty() ? 0 : r.returns[0];
}

TEST(Interp, AluBasics)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId a = b.add(I(40), I(2));
    const RegId m = b.mul(Operand::reg(a), I(-3));
    const RegId s = b.shra(Operand::reg(m), I(1));
    b.ret({Operand::reg(s)});
    EXPECT_EQ(runReturn(prog), -63);
}

TEST(Interp, SaturatingArithmetic)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId x = b.satadd(I(30000), I(10000));
    const RegId y = b.satsub(I(-30000), I(10000));
    const RegId sum = b.add(Operand::reg(x), Operand::reg(y));
    b.ret({Operand::reg(sum)});
    EXPECT_EQ(runReturn(prog), 32767 - 32768);
}

TEST(Interp, MemoryByteHalfWord)
{
    Program prog;
    const auto base = prog.allocData(16);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId p = b.iconst(base);
    b.storeW(Operand::reg(p), I(0), I(-2));
    const RegId w = b.loadW(Operand::reg(p), I(0));
    const RegId h = b.loadH(Operand::reg(p), I(0));
    const RegId by = b.loadB(Operand::reg(p), I(0));
    const RegId s1 = b.add(Operand::reg(w), Operand::reg(h));
    const RegId s2 = b.add(Operand::reg(s1), Operand::reg(by));
    b.ret({Operand::reg(s2)});
    EXPECT_EQ(runReturn(prog), -2 + -2 + -2);
}

TEST(Interp, GuardNullifies)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId x = b.iconst(10);
    const PredId p = b.newPred();
    b.predDef(PredDefKind::UT, p, CmpCond::FALSE_, I(0), I(0));
    Operation guarded = makeUnary(Opcode::MOV, x, I(99));
    guarded.guard = p;
    b.emit(guarded);
    b.ret({Operand::reg(x)});
    Interpreter interp(prog);
    auto r = interp.run();
    EXPECT_EQ(r.returns[0], 10);
    EXPECT_EQ(r.dynNullified, 1u);
}

// ---- Table 2: exhaustive truth-table check ----
// For each define kind and each (guard, cond) combination, the
// destination must match the paper's table, including "no update".
struct Table2Case
{
    PredDefKind kind;
    bool guard;
    bool cond;
    int expect; // -1 = no update (stays at sentinel)
};

class Table2Test : public ::testing::TestWithParam<Table2Case>
{
};

TEST_P(Table2Test, Semantics)
{
    const Table2Case tc = GetParam();
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const PredId guard = b.newPred();
    const PredId dst = b.newPred();
    const PredId probeSentinel = b.newPred();

    // Set up guard value.
    b.predDef(PredDefKind::UT, guard,
              tc.guard ? CmpCond::TRUE_ : CmpCond::FALSE_, I(0), I(0));
    // Seed destination with a sentinel that survives "no update":
    // set dst = 1 via an unguarded define, so a 0-write is visible,
    // and track whether an update happened via value changes from
    // both sentinel polarities.
    // Sentinel A: dst starts at 1.
    b.predDef(PredDefKind::UT, dst, CmpCond::TRUE_, I(0), I(0));
    Operation d1 = makePredDef(tc.kind, dst, PredDefKind::NONE, 0,
                               tc.cond ? CmpCond::TRUE_
                                       : CmpCond::FALSE_,
                               I(0), I(0));
    d1.guard = guard;
    b.emit(d1);
    const RegId after1 = b.mov(Operand::pred(dst));

    // Sentinel B: dst starts at 0.
    b.predDef(PredDefKind::UT, dst, CmpCond::FALSE_, I(0), I(0));
    Operation d2 = makePredDef(tc.kind, dst, PredDefKind::NONE, 0,
                               tc.cond ? CmpCond::TRUE_
                                       : CmpCond::FALSE_,
                               I(0), I(0));
    d2.guard = guard;
    b.emit(d2);
    const RegId after0 = b.mov(Operand::pred(dst));
    (void)probeSentinel;

    // ret two observations.
    b.ret({Operand::reg(after1), Operand::reg(after0)});
    Interpreter interp(prog);
    auto r = interp.run();
    ASSERT_EQ(r.returns.size(), 2u);
    if (tc.expect < 0) {
        // No update: both sentinels survive.
        EXPECT_EQ(r.returns[0], 1);
        EXPECT_EQ(r.returns[1], 0);
    } else {
        EXPECT_EQ(r.returns[0], tc.expect);
        EXPECT_EQ(r.returns[1], tc.expect);
    }
}

std::vector<Table2Case>
table2Cases()
{
    using K = PredDefKind;
    std::vector<Table2Case> cases;
    // Row order: (guard, cond) in {(0,0),(0,1),(1,0),(1,1)} per the
    // paper's Table 2.
    struct Row { K k; int v[4]; };
    const Row rows[] = {
        {K::UT, {0, 0, 0, 1}},
        {K::UF, {0, 0, 1, 0}},
        {K::OT, {-1, -1, -1, 1}},
        {K::OF, {-1, -1, 1, -1}},
        {K::AT, {-1, -1, 0, -1}},
        {K::AF, {-1, -1, -1, 0}},
        {K::CT, {-1, -1, 0, 1}},
        {K::CF, {-1, -1, 1, 0}},
    };
    for (const Row &row : rows) {
        int i = 0;
        for (bool g : {false, true}) {
            for (bool c : {false, true}) {
                cases.push_back({row.k, g, c, row.v[i]});
                ++i;
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, Table2Test,
                         ::testing::ValuesIn(table2Cases()));

TEST(Interp, OrTypeAccumulates)
{
    // p = (x > 3) || (x < 0), computed IMPACT-style.
    for (std::int64_t x : {-2, 0, 2, 5}) {
        Program prog;
        const FuncId f = prog.newFunction("main");
        prog.entryFunc = f;
        IRBuilder b(prog, f);
        auto I = [](std::int64_t v) { return Operand::imm(v); };
        const PredId p = b.newPred();
        b.predDef(PredDefKind::UT, p, CmpCond::GT, I(x), I(3));
        b.predDef(PredDefKind::OT, p, CmpCond::LT, I(x), I(0));
        b.ret({Operand::pred(p)});
        const bool expect = x > 3 || x < 0;
        EXPECT_EQ(runReturn(prog), expect ? 1 : 0) << "x=" << x;
    }
}

TEST(Interp, CountedLoopContext)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId acc = b.iconst(0);

    const BlockId body = b.makeBlock("body");
    Operation rec;
    rec.op = Opcode::REC_CLOOP;
    rec.srcs = {I(7)};
    rec.target = body;
    b.emit(std::move(rec));
    b.fallTo(body);
    b.at(body);
    b.addTo(acc, Operand::reg(acc), I(3));
    Operation back;
    back.op = Opcode::BR_CLOOP;
    back.target = body;
    b.emit(std::move(back));
    const BlockId after = b.makeBlock();
    b.fallTo(after);
    b.at(after);
    b.ret({Operand::reg(acc)});
    EXPECT_EQ(runReturn(prog), 21);
}

TEST(Interp, ExecCloopReusesBufferedLoop)
{
    // A loop body recorded once and re-entered via EXEC_CLOOP from a
    // different location, procedure-call style (section 5).
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId acc = b.iconst(0);

    const BlockId body = b.makeBlock("body");
    const BlockId cont = b.makeBlock("cont");
    const BlockId tail = b.makeBlock("tail");
    Operation rec;
    rec.op = Opcode::REC_CLOOP;
    rec.srcs = {I(4)};
    rec.target = body;
    b.emit(std::move(rec));
    b.fallTo(body);
    b.at(body);
    b.addTo(acc, Operand::reg(acc), I(5));
    Operation back;
    back.op = Opcode::BR_CLOOP;
    back.target = body;
    b.emit(std::move(back));
    b.fallTo(cont);
    b.at(cont);
    // Execute the same loop again, 3 more times, from here.
    Operation ex;
    ex.op = Opcode::EXEC_CLOOP;
    ex.srcs = {I(3)};
    ex.target = body;
    b.emit(std::move(ex));
    b.fallTo(tail);
    b.at(tail);
    b.ret({Operand::reg(acc)});
    EXPECT_EQ(runReturn(prog), 5 * 7);
}

TEST(Interp, CallsAndReturns)
{
    Program prog;
    const FuncId callee = prog.newFunction("sq");
    {
        Function &fn = prog.functions[callee];
        const RegId x = fn.newReg();
        fn.params = {x};
        fn.numReturns = 1;
        IRBuilder b(prog, callee);
        const RegId r = b.mul(Operand::reg(x), Operand::reg(x));
        b.ret({Operand::reg(r)});
    }
    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    auto rets = b.call(callee, {Operand::imm(9)}, 1);
    b.ret({Operand::reg(rets[0])});
    EXPECT_EQ(runReturn(prog), 81);
}

TEST(Interp, SpeculativeLoadReturnsZeroOutOfRange)
{
    Program prog;
    prog.allocData(8);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    Operation ld = makeLoad(Opcode::LD_W, prog.functions[f].newReg(),
                            Operand::imm(1 << 20), Operand::imm(0));
    ld.speculative = true;
    const RegId dst = ld.dsts[0].asReg();
    b.emit(std::move(ld));
    b.ret({Operand::reg(dst)});
    EXPECT_EQ(runReturn(prog), 0);
}

TEST(Interp, ChecksumCoversOutputRegion)
{
    Program prog;
    const auto base = prog.allocData(8);
    prog.checksumBase = base;
    prog.checksumSize = 4;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId p = b.iconst(base);
    b.storeW(Operand::reg(p), Operand::imm(0), Operand::imm(77));
    b.ret({});
    Interpreter interp(prog);
    const auto r1 = interp.run();
    // Different stored value => different checksum.
    Program prog2 = prog;
    prog2.functions[f].blocks[prog2.functions[f].entry]
        .ops[1].srcs[2] = Operand::imm(78);
    Interpreter interp2(prog2);
    const auto r2 = interp2.run();
    EXPECT_NE(r1.checksum, r2.checksum);
}

TEST(Interp, OpBudgetGuard)
{
    // An infinite loop must hit the budget assertion (death test via
    // panic/abort is environment-dependent; we use a small budget and
    // EXPECT_DEATH).
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const BlockId loop = b.makeBlock();
    b.fallTo(loop);
    b.at(loop);
    b.jump(loop);
    Interpreter interp(prog);
    interp.setMaxOps(1000);
    EXPECT_DEATH(interp.run(), "budget");
}

} // namespace
} // namespace lbp
