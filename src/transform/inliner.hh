/**
 * @file
 * Profile-guided function inlining. The paper performs selective
 * inlining up to an estimated 50% static code expansion, primarily to
 * enlarge loop regions (loop bodies may not contain calls if they are
 * to be buffered).
 */

#ifndef LBP_TRANSFORM_INLINER_HH
#define LBP_TRANSFORM_INLINER_HH

#include "ir/program.hh"
#include "profile/profile.hh"

namespace lbp
{

struct InlineOptions
{
    /** Maximum program growth as a fraction of the original size. */
    double maxExpansion = 0.5;

    /** Never inline callees larger than this many operations. */
    int maxCalleeOps = 400;

    /** Ignore call sites executed fewer times than this. */
    double minCallWeight = 1.0;
};

struct InlineStats
{
    int sitesInlined = 0;
    int opsAdded = 0;
};

/**
 * Inline hot call sites program-wide, hottest first, respecting the
 * expansion budget. Returns statistics.
 */
InlineStats inlineHotCalls(Program &prog, const Profile &profile,
                           const InlineOptions &opts = {});

/**
 * Inline a specific call site: the call at index @p opIdx of block
 * @p bb in @p caller. Returns false if the site is ineligible
 * (recursive, callee marked noInline).
 */
bool inlineCallSite(Program &prog, FuncId caller, BlockId bb,
                    size_t opIdx);

} // namespace lbp

#endif // LBP_TRANSFORM_INLINER_HH
