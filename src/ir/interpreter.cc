#include "ir/interpreter.hh"

#include <algorithm>

#include "support/logging.hh"

namespace lbp
{

namespace
{

/** Saturate to signed 16-bit, the DSP intrinsic range. */
std::int64_t
sat16(std::int64_t v)
{
    return std::clamp<std::int64_t>(v, -32768, 32767);
}

double
asDouble(std::int64_t v)
{
    double d;
    static_assert(sizeof(d) == sizeof(v));
    __builtin_memcpy(&d, &v, sizeof(d));
    return d;
}

std::int64_t
asBits(double d)
{
    std::int64_t v;
    __builtin_memcpy(&v, &d, sizeof(v));
    return v;
}

} // namespace

std::uint64_t
fnv1a(const std::uint8_t *data, size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

Interpreter::Interpreter(const Program &prog) : prog_(prog)
{
}

std::uint64_t
Interpreter::hashRange(std::int64_t base, std::int64_t size) const
{
    if (size <= 0)
        return fnv1a(nullptr, 0);
    LBP_ASSERT(base >= 0 &&
               static_cast<size_t>(base + size) <= mem_.size(),
               "hashRange out of bounds");
    return fnv1a(mem_.data() + base, static_cast<size_t>(size));
}

ExecResult
Interpreter::run(const std::vector<std::int64_t> &args)
{
    LBP_ASSERT(prog_.entryFunc != kNoFunc, "program without entry");
    mem_ = prog_.memory;
    res_ = ExecResult{};
    executed_ = 0;
    callDepth_ = 0;
    auto rets = callFunction(prog_.functions[prog_.entryFunc], args);
    res_.returns = std::move(rets);
    res_.checksum = hashRange(prog_.checksumBase, prog_.checksumSize);
    return res_;
}

std::int64_t
Interpreter::readOperand(const Frame &fr, const Operand &o) const
{
    switch (o.kind) {
      case OperandKind::REG:
        LBP_ASSERT(o.asReg() < fr.regs.size(), "register out of range r",
                   o.asReg(), " in ", fr.fn->name);
        return fr.regs[o.asReg()];
      case OperandKind::IMM:
        return o.value;
      case OperandKind::PRED:
        LBP_ASSERT(o.asPred() < fr.preds.size(), "pred out of range");
        return fr.preds[o.asPred()];
      default:
        LBP_PANIC("unreadable operand kind");
    }
}

bool
Interpreter::guardPasses(const Frame &fr, const Operation &op) const
{
    if (op.guard == kNoPred)
        return true;
    LBP_ASSERT(op.guard < fr.preds.size(), "guard pred out of range p",
               op.guard, " in ", fr.fn->name);
    return fr.preds[op.guard] != 0;
}

void
Interpreter::execPredDef(Frame &fr, const Operation &op)
{
    // Table 2: the guard is an input to the define function, not a
    // nullification condition.
    const bool g = guardPasses(fr, op);
    const std::int64_t a = readOperand(fr, op.srcs[0]);
    const std::int64_t b = readOperand(fr, op.srcs[1]);
    const bool c = evalCond(op.cond, a, b);

    auto apply = [&](PredDefKind k, const Operand &dst) {
        if (k == PredDefKind::NONE)
            return;
        LBP_ASSERT(dst.isPred(),
                   "interpreter requires pred-register destinations");
        PredId p = dst.asPred();
        LBP_ASSERT(p != kNoPred && p < fr.preds.size(),
                   "bad pred destination");
        int write = -1; // -1: no update
        switch (k) {
          case PredDefKind::UT: write = g ? (c ? 1 : 0) : 0; break;
          case PredDefKind::UF: write = g ? (c ? 0 : 1) : 0; break;
          case PredDefKind::OT: if (g && c) write = 1; break;
          case PredDefKind::OF: if (g && !c) write = 1; break;
          case PredDefKind::AT: if (g && !c) write = 0; break;
          case PredDefKind::AF: if (g && c) write = 0; break;
          case PredDefKind::CT: if (g) write = c ? 1 : 0; break;
          case PredDefKind::CF: if (g) write = c ? 0 : 1; break;
          default: LBP_PANIC("bad pred def kind");
        }
        if (write >= 0)
            fr.preds[p] = static_cast<std::uint8_t>(write);
    };
    apply(op.defKind0, op.dsts[0]);
    if (op.dsts.size() > 1)
        apply(op.defKind1, op.dsts[1]);
}

std::int64_t
Interpreter::evalAlu(const Operation &op, std::int64_t a,
                     std::int64_t b) const
{
    switch (op.op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::MUL: return a * b;
      case Opcode::DIV:
        LBP_ASSERT(b != 0, "division by zero");
        return a / b;
      case Opcode::REM:
        LBP_ASSERT(b != 0, "remainder by zero");
        return a % b;
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::SHL: return a << (b & 63);
      case Opcode::SHR:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (b & 63));
      case Opcode::SHRA: return a >> (b & 63);
      case Opcode::MIN: return std::min(a, b);
      case Opcode::MAX: return std::max(a, b);
      case Opcode::SATADD: return sat16(a + b);
      case Opcode::SATSUB: return sat16(a - b);
      case Opcode::CMP:
        return evalCond(op.cond, a, b) ? 1 : 0;
      case Opcode::FADD: return asBits(asDouble(a) + asDouble(b));
      case Opcode::FSUB: return asBits(asDouble(a) - asDouble(b));
      case Opcode::FMUL: return asBits(asDouble(a) * asDouble(b));
      case Opcode::FDIV: return asBits(asDouble(a) / asDouble(b));
      default: LBP_PANIC("evalAlu on non-ALU opcode");
    }
}

std::int64_t
Interpreter::loadMem(Opcode op, std::int64_t addr) const
{
    LBP_ASSERT(addr >= 0, "negative load address");
    size_t need = op == Opcode::LD_B ? 1 : op == Opcode::LD_H ? 2 : 4;
    LBP_ASSERT(static_cast<size_t>(addr) + need <= mem_.size(),
               "load out of bounds @", addr);
    std::uint32_t raw = 0;
    for (size_t i = 0; i < need; ++i)
        raw |= static_cast<std::uint32_t>(mem_[addr + i]) << (8 * i);
    switch (op) {
      case Opcode::LD_B:
        return static_cast<std::int8_t>(raw);
      case Opcode::LD_H:
        return static_cast<std::int16_t>(raw);
      default:
        return static_cast<std::int32_t>(raw);
    }
}

void
Interpreter::storeMem(Opcode op, std::int64_t addr, std::int64_t v)
{
    LBP_ASSERT(addr >= 0, "negative store address");
    size_t need = op == Opcode::ST_B ? 1 : op == Opcode::ST_H ? 2 : 4;
    LBP_ASSERT(static_cast<size_t>(addr) + need <= mem_.size(),
               "store out of bounds @", addr);
    for (size_t i = 0; i < need; ++i)
        mem_[addr + i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
}

std::vector<std::int64_t>
Interpreter::callFunction(const Function &fn,
                          const std::vector<std::int64_t> &args)
{
    LBP_ASSERT(++callDepth_ < 200, "call stack overflow in ", fn.name);
    LBP_ASSERT(args.size() == fn.params.size(),
               "argument count mismatch calling ", fn.name);

    Frame fr;
    fr.fn = &fn;
    fr.regs.assign(fn.nextReg, 0);
    fr.preds.assign(std::max<PredId>(fn.nextPred, 1), 0);
    for (size_t i = 0; i < args.size(); ++i)
        fr.regs[fn.params[i]] = args[i];

    std::vector<LoopEntry> loopStack;
    BlockId cur = fn.entry;
    size_t idx = 0;

    while (true) {
        LBP_ASSERT(cur != kNoBlock && cur < fn.blocks.size(),
                   "fell off CFG in ", fn.name);
        const BasicBlock &bb = fn.blocks[cur];
        LBP_ASSERT(!bb.dead, "executing dead block in ", fn.name);
        if (idx == 0) {
            ++res_.dynBlocks;
            if (sink_)
                sink_->onBlock(fn.id, cur);
        }
        if (idx >= bb.ops.size()) {
            LBP_ASSERT(bb.fallthrough != kNoBlock,
                       "fell off block ", bb.name, " in ", fn.name);
            cur = bb.fallthrough;
            idx = 0;
            continue;
        }

        const Operation &op = bb.ops[idx];
        ++res_.dynOps;
        LBP_ASSERT(++executed_ <= maxOps_,
                   "operation budget exceeded in ", fn.name);

        const bool pass = guardPasses(fr, op);
        if (!pass && op.op != Opcode::PRED_DEF) {
            ++res_.dynNullified;
            if (op.isBranchOp()) {
                ++res_.dynBranches;
                if (sink_)
                    sink_->onBranch(fn.id, cur, op.id, false);
            }
            ++idx;
            continue;
        }

        switch (op.op) {
          case Opcode::NOP:
            ++idx;
            break;

          case Opcode::MOV:
          case Opcode::ABS:
            fr.regs[op.dsts[0].asReg()] =
                op.op == Opcode::MOV
                    ? readOperand(fr, op.srcs[0])
                    : std::abs(readOperand(fr, op.srcs[0]));
            ++idx;
            break;

          case Opcode::ITOF:
            fr.regs[op.dsts[0].asReg()] = asBits(
                static_cast<double>(readOperand(fr, op.srcs[0])));
            ++idx;
            break;

          case Opcode::FTOI:
            fr.regs[op.dsts[0].asReg()] = static_cast<std::int64_t>(
                asDouble(readOperand(fr, op.srcs[0])));
            ++idx;
            break;

          case Opcode::SELECT: {
            const std::int64_t c = readOperand(fr, op.srcs[0]);
            fr.regs[op.dsts[0].asReg()] =
                c ? readOperand(fr, op.srcs[1])
                  : readOperand(fr, op.srcs[2]);
            ++idx;
            break;
          }

          case Opcode::LD_B:
          case Opcode::LD_H:
          case Opcode::LD_W: {
            const std::int64_t addr = readOperand(fr, op.srcs[0]) +
                                      readOperand(fr, op.srcs[1]);
            const size_t need = op.op == Opcode::LD_B ? 1
                                : op.op == Opcode::LD_H ? 2 : 4;
            if (op.speculative &&
                (addr < 0 ||
                 static_cast<size_t>(addr) + need > mem_.size())) {
                // Speculative (non-faulting) load form: out-of-range
                // accesses deliver 0 instead of faulting.
                fr.regs[op.dsts[0].asReg()] = 0;
            } else {
                fr.regs[op.dsts[0].asReg()] = loadMem(op.op, addr);
            }
            ++idx;
            break;
          }

          case Opcode::ST_B:
          case Opcode::ST_H:
          case Opcode::ST_W: {
            const std::int64_t addr = readOperand(fr, op.srcs[0]) +
                                      readOperand(fr, op.srcs[1]);
            storeMem(op.op, addr, readOperand(fr, op.srcs[2]));
            ++idx;
            break;
          }

          case Opcode::PRED_DEF:
            execPredDef(fr, op);
            ++idx;
            break;

          case Opcode::BR:
          case Opcode::BR_WLOOP: {
            ++res_.dynBranches;
            const std::int64_t a = readOperand(fr, op.srcs[0]);
            const std::int64_t b = readOperand(fr, op.srcs[1]);
            const bool taken = evalCond(op.cond, a, b);
            if (taken)
                ++res_.dynTaken;
            if (sink_)
                sink_->onBranch(fn.id, cur, op.id, taken);
            if (op.op == Opcode::BR_WLOOP && !taken &&
                !loopStack.empty() && !loopStack.back().counted) {
                // While-loop exit: retire the hardware loop context.
                if (loopStack.back().isExec) {
                    cur = loopStack.back().resumeBlock;
                    idx = loopStack.back().resumeIndex;
                    loopStack.pop_back();
                    break;
                }
                loopStack.pop_back();
            }
            if (taken) {
                // A taken transfer that leaves the active hardware
                // loop's body cancels its context.
                while (!loopStack.empty() &&
                       loopStack.back().head == cur &&
                       op.target != loopStack.back().head) {
                    loopStack.pop_back();
                }
                cur = op.target;
                idx = 0;
            } else {
                ++idx;
            }
            break;
          }

          case Opcode::JUMP:
            ++res_.dynBranches;
            ++res_.dynTaken;
            if (sink_)
                sink_->onBranch(fn.id, cur, op.id, true);
            while (!loopStack.empty() &&
                   loopStack.back().head == cur &&
                   op.target != loopStack.back().head) {
                loopStack.pop_back();
            }
            cur = op.target;
            idx = 0;
            break;

          case Opcode::BR_CLOOP: {
            ++res_.dynBranches;
            LBP_ASSERT(!loopStack.empty() && loopStack.back().counted,
                       "br.cloop without live counted-loop context in ",
                       fn.name);
            LoopEntry &le = loopStack.back();
            --le.remaining;
            const bool taken = le.remaining > 0;
            if (taken)
                ++res_.dynTaken;
            if (sink_)
                sink_->onBranch(fn.id, cur, op.id, taken);
            if (taken) {
                cur = op.target;
                idx = 0;
            } else {
                if (le.isExec) {
                    cur = le.resumeBlock;
                    idx = le.resumeIndex;
                    loopStack.pop_back();
                    break;
                }
                loopStack.pop_back();
                ++idx;
            }
            break;
          }

          case Opcode::REC_CLOOP: {
            const std::int64_t count = readOperand(fr, op.srcs[0]);
            LBP_ASSERT(count >= 1, "rec_cloop with count ", count,
                       " in ", fn.name);
            loopStack.push_back({true, count, op.target, kNoBlock, 0, false});
            ++idx;
            break;
          }

          case Opcode::REC_WLOOP:
            loopStack.push_back({false, 0, op.target, kNoBlock, 0, false});
            ++idx;
            break;

          case Opcode::EXEC_CLOOP: {
            const std::int64_t count = readOperand(fr, op.srcs[0]);
            LBP_ASSERT(count >= 1, "exec_cloop with count ", count);
            loopStack.push_back({true, count, op.target, cur, idx + 1, true});
            cur = op.target;
            idx = 0;
            break;
          }

          case Opcode::EXEC_WLOOP:
            loopStack.push_back({false, 0, op.target, cur, idx + 1, true});
            cur = op.target;
            idx = 0;
            break;

          case Opcode::CALL: {
            const Function &callee = prog_.functions[op.callee];
            std::vector<std::int64_t> cargs;
            cargs.reserve(op.srcs.size());
            for (const auto &s : op.srcs)
                cargs.push_back(readOperand(fr, s));
            auto rets = callFunction(callee, cargs);
            LBP_ASSERT(rets.size() >= op.dsts.size(),
                       "not enough return values from ", callee.name);
            for (size_t i = 0; i < op.dsts.size(); ++i)
                fr.regs[op.dsts[i].asReg()] = rets[i];
            ++idx;
            break;
          }

          case Opcode::RET: {
            std::vector<std::int64_t> rets;
            for (const auto &s : op.srcs)
                rets.push_back(readOperand(fr, s));
            --callDepth_;
            return rets;
          }

          default: {
            // Binary ALU family.
            const std::int64_t a = readOperand(fr, op.srcs[0]);
            const std::int64_t b = readOperand(fr, op.srcs[1]);
            fr.regs[op.dsts[0].asReg()] = evalAlu(op, a, b);
            ++idx;
            break;
          }
        }
    }
}

} // namespace lbp
