# Empty compiler generated dependencies file for bench_fig7_buffer_issue.
# This may be replaced when dependencies are built.
