/**
 * @file
 * Quickstart: build a tiny DSP kernel in the lbp IR, compile it under
 * both configurations, and compare loop-buffer behaviour and cycles.
 *
 * The kernel is a saturating gain + clamp over a sample buffer — a
 * loop with a control-flow diamond that only the aggressive
 * (if-converting) pipeline can place in the loop buffer.
 */

#include <cstdio>

#include "core/compiler.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "sim/vliw_sim.hh"
#include "workloads/input_data.hh"

using namespace lbp;

namespace
{

Program
buildKernel()
{
    Program prog;
    prog.name = "quickstart";

    // Data: 1024 16-bit samples in, 1024 out.
    const std::int64_t in = prog.allocData(1024 * 2);
    const std::int64_t out = prog.allocData(1024 * 2);
    workloads::fillPcm16(prog, in, 1024, 42);
    prog.checksumBase = out;
    prog.checksumSize = 1024 * 2;

    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId inP = b.iconst(in);
    const RegId outP = b.iconst(out);

    // for (i = 0; i < 1024; ++i) {
    //     v = in[i] * 3;
    //     if (v > 20000) v = 20000; else v = v - 16;
    //     out[i] = v;
    // }
    b.forLoop(0, 1024, 1, [&](RegId i) {
        const RegId off = b.shl(R(i), I(1));
        const RegId x = b.loadH(R(inP), R(off));
        const RegId v = b.mul(R(x), I(3));
        const RegId y = b.mov(R(v));
        workloads::diamond(b, CmpCond::GT, R(v), I(20000),
                           [&] { b.movTo(y, I(20000)); },
                           [&] { b.subTo(y, R(v), I(16)); });
        b.storeH(R(outP), R(off), R(y));
    });
    b.ret({});
    return prog;
}

void
runConfig(const Program &prog, OptLevel level, const char *label)
{
    CompileOptions opts;
    opts.level = level;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc;
    sc.bufferOps = 256;
    VliwSim sim(cr.code, sc);
    const SimStats st = sim.run();

    std::printf("%-12s: %6llu cycles, %6llu ops fetched, "
                "%5.1f%% from the loop buffer, checksum %s\n",
                label, (unsigned long long)st.cycles,
                (unsigned long long)st.opsFetched,
                100.0 * st.bufferFraction(),
                st.checksum == cr.goldenChecksum ? "OK" : "BAD");
}

} // namespace

int
main()
{
    Program prog = buildKernel();
    std::printf("quickstart kernel: %d static ops\n\n", prog.sizeOps());

    runConfig(prog, OptLevel::Traditional, "traditional");
    runConfig(prog, OptLevel::Aggressive, "aggressive");

    std::printf("\nThe diamond in the loop body blocks buffering under "
                "traditional compilation;\nif-conversion merges it into "
                "one predicated loop that runs from the buffer.\n");
    return 0;
}
