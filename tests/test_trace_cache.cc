/**
 * @file
 * Resident-loop trace cache tests: traces are built exactly once at
 * first replayed residency and persist across runs, untraceable
 * bodies bail out to the general path (once per activation), buffer
 * evictions invalidate without triggering rebuild storms, and —
 * the contract everything else rests on — SimStats is bit-identical
 * with the cache forced on, forced off, and against the reference
 * interpreter, down to the per-loop counter vectors.
 *
 * Workload anchors (deterministic): adpcm_enc is the clean case (one
 * hot traceable loop, no evictions); g724_dec is the adversarial one
 * (bailouts, evictions, and replays in the same run).
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "ir/builder.hh"
#include "obs/publish.hh"
#include "sim/trace_cache.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** Straight counted loop: traceable body, one hot activation. */
Program
countedLoopProgram(int trip)
{
    Program prog;
    const auto data = prog.allocData(64);
    prog.checksumBase = data;
    prog.checksumSize = 8;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, trip, 1, [&](RegId i) {
        b.addTo(acc, R(acc), R(i));
        for (int p = 0; p < 4; ++p)
            b.binTo(Opcode::XOR, acc, R(acc), I(p * 3 + 1));
    });
    b.storeW(R(dp), I(0), R(acc));
    b.ret({R(acc)});
    return prog;
}

SimConfig
simConfig(int bufferOps, SimEngine engine, TraceCacheMode cacheMode)
{
    SimConfig sc;
    sc.bufferOps = bufferOps;
    sc.engine = engine;
    sc.traceCache = cacheMode;
    // Pin the predicated tier on: these tests assert tier-specific
    // behavior, so the LBP_SIM_NO_PRED_REPLAY escape hatch (which CI
    // drives through the whole sim label) must not flip their
    // engine configuration. Tests of the strict tier set Off
    // explicitly.
    sc.predReplay = PredReplayMode::On;
    return sc;
}

const TraceCacheStats &
statsOf(const VliwSim &sim)
{
    const TraceCacheStats *tc = sim.traceCacheStats();
    EXPECT_NE(tc, nullptr);
    return *tc;
}

TEST(TraceCache, SyntheticLoopReplaysEveryBufferedIteration)
{
    Program prog = countedLoopProgram(100);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc;
    sc.bufferOps = 256;
    sc.traceCache = TraceCacheMode::On;
    VliwSim sim(cr.code, sc);
    const SimStats st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);

    // One recording iteration from memory; replay engages at the
    // first buffered iteration and carries the remaining 99.
    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_EQ(tc.builds, 1u);
    EXPECT_EQ(tc.replays, 1u);
    EXPECT_EQ(tc.bailouts, 0u);
    EXPECT_EQ(tc.replayedIterations, 99u);

    // Everything the loop issued from the buffer went through the
    // trace, and the per-loop split integrates back to the total.
    ASSERT_EQ(st.activeLoops().size(), 1u);
    const LoopStats &ls = *st.activeLoops().front();
    ASSERT_LT(static_cast<std::size_t>(0), tc.perLoop.size());
    EXPECT_EQ(tc.replayedOps, ls.opsFromBuffer);
    std::uint64_t perLoopOps = 0;
    for (const auto &pl : tc.perLoop)
        perLoopOps += pl.ops;
    EXPECT_EQ(perLoopOps, tc.replayedOps);
}

TEST(TraceCache, BuildsOnFirstResidencyAndPersistsAcrossRuns)
{
    Program prog = workloads::buildWorkload("adpcm_enc");
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc;
    sc.bufferOps = 256;
    sc.traceCache = TraceCacheMode::On;
    VliwSim sim(cr.code, sc);

    sim.run();
    const TraceCacheStats &first = statsOf(sim);
    EXPECT_GE(first.builds, 1u);
    EXPECT_GE(first.replays, 1u);
    EXPECT_GT(first.replayedOps, 0u);

    // Second run on the same instance: counters reset, but the built
    // traces survive — replay re-engages with zero rebuilds.
    sim.run();
    const TraceCacheStats &second = statsOf(sim);
    EXPECT_EQ(second.builds, 0u);
    EXPECT_GE(second.replays, first.replays);
    EXPECT_EQ(second.replayedOps, first.replayedOps);
}

TEST(TraceCache, UntraceableResidentBodyBailsOutPerActivation)
{
    Program prog = workloads::buildWorkload("g724_dec");
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::On));
    const SimStats st = sim.run();
    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_GT(tc.bailouts, 0u);

    // A bailout is counted at most once per activation (the declined
    // flag dedupes the per-iteration residency checks).
    std::uint64_t activations = 0;
    for (const auto &ls : st.loops)
        activations += ls.activations;
    EXPECT_LE(tc.bailouts, activations);

    // Every bailout names a concrete reason: the defensive Unknown
    // bucket stays empty, and the per-reason split integrates back
    // to the headline counter.
    EXPECT_EQ(tc.bailoutsBy[static_cast<std::size_t>(
                  TraceBailoutReason::Unknown)],
              0u);
    std::uint64_t byReason = 0;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TraceBailoutReason::Count);
         ++i)
        byReason += tc.bailoutsBy[i];
    EXPECT_EQ(byReason, tc.bailouts);
}

// ---- classifyTraceBody coverage ------------------------------------
//
// The compiler only produces a subset of untraceable shapes (e.g. it
// never emits a guarded backedge today), so the closed-enum coverage
// contract — every TraceBailoutReason reachable, Unknown never — is
// pinned on hand-assembled DecodedFunction images fed straight to the
// pure classifier.

MicroOp
microOp(Opcode op, ExecHandler h)
{
    MicroOp m;
    m.op = op;
    m.handler = h;
    return m;
}

MicroOp
aluOp()
{
    return microOp(Opcode::ADD, ExecHandler::ALU);
}

/**
 * One-block function: the given body ops, one per bundle, plus (by
 * default) a trailing unguarded BR_CLOOP backedge to the head.
 */
DecodedFunction
makeLoopBody(std::vector<MicroOp> body, bool withBackedge = true)
{
    DecodedFunction df;
    if (withBackedge) {
        MicroOp be = microOp(Opcode::BR_CLOOP,
                             ExecHandler::BR_CLOOP);
        be.target = 0;
        body.push_back(be);
    }
    for (std::size_t i = 0; i < body.size(); ++i) {
        DecodedBundle bu;
        bu.first = static_cast<std::uint32_t>(i);
        bu.count = 1;
        bu.sizeOps = 1;
        df.bundles.push_back(bu);
    }
    df.ops = std::move(body);
    DecodedBlock db;
    db.firstBundle = 0;
    db.bundleCount = static_cast<std::uint32_t>(df.bundles.size());
    db.valid = true;
    df.blocks.push_back(db);
    df.entry = 0;
    return df;
}

LoopCtx
headLoopCtx()
{
    LoopCtx ctx;
    ctx.head = 0;
    ctx.loopId = 0;
    ctx.counted = true;
    return ctx;
}

TEST(TraceCache, ClassifierCoversEveryBailoutReason)
{
    using R = TraceBailoutReason;
    const LoopCtx ctx = headLoopCtx();
    bool produced[static_cast<std::size_t>(R::Count)] = {};
    auto classify = [&](const LoopCtx &c, const DecodedFunction &df,
                        bool wide) {
        const R r = classifyTraceBody(c, df, wide);
        produced[static_cast<std::size_t>(r)] = true;
        return r;
    };

    // The traceable shape first: straight ALU body, clean backedge.
    EXPECT_EQ(classify(ctx, makeLoopBody({aluOp()}), false), R::None);
    EXPECT_EQ(classify(ctx, makeLoopBody({aluOp()}), true), R::None);

    DecodedFunction invalid = makeLoopBody({aluOp()});
    invalid.blocks[0].valid = false;
    EXPECT_EQ(classify(ctx, invalid, false), R::EmptyBody);

    DecodedFunction hollow = makeLoopBody({aluOp()});
    hollow.blocks[0].bundleCount = 0;
    EXPECT_EQ(classify(ctx, hollow, false), R::EmptyBody);

    EXPECT_EQ(classify(ctx, makeLoopBody({aluOp()}, false), false),
              R::NoHeadBackedge);

    // A wloop backedge does not satisfy a counted loop's search.
    DecodedFunction wrongKind = makeLoopBody({aluOp()}, false);
    MicroOp wloop = microOp(Opcode::BR_WLOOP, ExecHandler::BR);
    wloop.target = 0;
    wrongKind.ops.push_back(wloop);
    DecodedBundle bu;
    bu.first = 1;
    bu.count = 1;
    bu.sizeOps = 1;
    wrongKind.bundles.push_back(bu);
    wrongKind.blocks[0].bundleCount = 2;
    EXPECT_EQ(classify(ctx, wrongKind, false), R::NoHeadBackedge);

    // Guarded backedge: the legacy strict verdict; the predicated
    // tier admits it (the guard is evaluated in stream order at
    // replay, a nullified backedge hands back as a fall-through).
    DecodedFunction guarded = makeLoopBody({aluOp()});
    guarded.ops.back().guard = 1;  // any PredId != kNoPred (== 0)
    EXPECT_EQ(classify(ctx, guarded, false), R::GuardedBackedge);
    EXPECT_EQ(classify(ctx, guarded, true), R::None);

    DecodedFunction sensitive = makeLoopBody({aluOp()});
    sensitive.ops.back().sensitive = true;
    EXPECT_EQ(classify(ctx, sensitive, false),
              R::SlotSensitiveBackedge);
    EXPECT_EQ(classify(ctx, sensitive, true),
              R::SlotSensitiveBackedge);

    // Calls stay untraceable under either tier.
    EXPECT_EQ(classify(ctx, makeLoopBody(
                  {aluOp(),
                   microOp(Opcode::CALL, ExecHandler::CALL)}), false),
              R::CallInBody);
    EXPECT_EQ(classify(ctx, makeLoopBody(
                  {aluOp(), microOp(Opcode::RET, ExecHandler::RET)}),
                  true),
              R::CallInBody);

    // Extra control ops: the strict tier's catch-all verdict; the
    // predicated tier compiles them into side exits...
    DecodedFunction jumper = makeLoopBody(
        {aluOp(), microOp(Opcode::JUMP, ExecHandler::JUMP)});
    EXPECT_EQ(classify(ctx, jumper, false), R::MultiControlOp);
    EXPECT_EQ(classify(ctx, jumper, true), R::None);

    MicroOp sideBr = microOp(Opcode::BR, ExecHandler::BR);
    sideBr.target = 7;
    DecodedFunction sider = makeLoopBody({aluOp(), sideBr});
    EXPECT_EQ(classify(ctx, sider, false), R::MultiControlOp);
    EXPECT_EQ(classify(ctx, sider, true), R::None);

    // A BR_WLOOP to the head in a *counted* context is a plain branch
    // on the general path, so the predicated tier treats it as a side
    // exit too.
    MicroOp wback = microOp(Opcode::BR_WLOOP, ExecHandler::BR);
    wback.target = 0;
    DecodedFunction countedWback = makeLoopBody({aluOp(), wback});
    EXPECT_EQ(classify(ctx, countedWback, false), R::MultiControlOp);
    EXPECT_EQ(classify(ctx, countedWback, true), R::None);

    // ...except bodies that re-enter the loop machinery, which keep
    // their own names under the predicated tier.
    DecodedFunction nested = makeLoopBody(
        {aluOp(), microOp(Opcode::REC_CLOOP, ExecHandler::LOOP)});
    EXPECT_EQ(classify(ctx, nested, false), R::MultiControlOp);
    EXPECT_EQ(classify(ctx, nested, true), R::NestedLoop);

    // A second counted backedge ahead of the loop's own (an inner
    // hardware loop sharing the block).
    MicroOp innerBe = microOp(Opcode::BR_CLOOP, ExecHandler::BR_CLOOP);
    innerBe.target = 9;  // some other head
    DecodedFunction twoBack = makeLoopBody({innerBe, aluOp()});
    EXPECT_EQ(classify(ctx, twoBack, false), R::MultiControlOp);
    EXPECT_EQ(classify(ctx, twoBack, true), R::MultiBackedge);

    // A second *while* backedge to the head (same bundle as the real
    // one — the only place the scan can see it) mutates the
    // activation's own iteration state: not a side exit.
    DecodedFunction wmulti = makeLoopBody({aluOp()}, false);
    wmulti.ops.push_back(wback);
    wmulti.ops.push_back(wback);
    DecodedBundle wbu;
    wbu.first = 1;
    wbu.count = 2;
    wbu.sizeOps = 2;
    wmulti.bundles.push_back(wbu);
    wmulti.blocks[0].bundleCount = 2;
    LoopCtx wctx = headLoopCtx();
    wctx.counted = false;
    EXPECT_EQ(classify(wctx, wmulti, true), R::MultiBackedge);

    // BelowEngageThreshold is not a build verdict — the engagement
    // site counts it (covered end-to-end below); mark it so the
    // coverage sweep can require everything else from the classifier.
    produced[static_cast<std::size_t>(R::BelowEngageThreshold)] =
        true;

    EXPECT_FALSE(produced[static_cast<std::size_t>(R::Unknown)])
        << "nothing in the tree may classify as Unknown";
    for (std::size_t i = static_cast<std::size_t>(R::EmptyBody);
         i < static_cast<std::size_t>(R::Count); ++i)
        EXPECT_TRUE(produced[i])
            << "reason never produced: "
            << traceBailoutReasonName(static_cast<R>(i));
}

TEST(TraceCache, GuardedBackedgeBuildsPredicatedTrace)
{
    // The compiler never emits a guarded backedge today, so the
    // build-tier contract is pinned on a hand-assembled image fed
    // straight to the cache: the predicated tier builds a Ready
    // trace keeping the backedge in the op stream; the strict tier
    // (the LBP_SIM_NO_PRED_REPLAY escape hatch) still declines with
    // the legacy verdict.
    DecodedFunction df = makeLoopBody({aluOp()});
    df.ops.back().guard = 1;
    const LoopCtx ctx = headLoopCtx();

    TraceCache wide(1, /*slotMode=*/false, /*predReplay=*/true);
    LoopTrace &tr = wide.acquire(ctx, df);
    EXPECT_EQ(tr.state, LoopTrace::State::Ready);
    EXPECT_TRUE(tr.predicated);
    ASSERT_EQ(tr.ops.size(), 2u);  // backedge kept in stream
    EXPECT_EQ(tr.beOpIndex, 1u);
    EXPECT_EQ(tr.ops[tr.beOpIndex].op, Opcode::BR_CLOOP);
    EXPECT_FALSE(tr.ops[tr.beOpIndex].alwaysExec);
    EXPECT_EQ(wide.stats().builds, 1u);
    EXPECT_EQ(wide.stats().predReplay.builds, 1u);

    TraceCache strict(1, /*slotMode=*/false, /*predReplay=*/false);
    LoopTrace &ts = strict.acquire(ctx, df);
    EXPECT_EQ(ts.state, LoopTrace::State::Untraceable);
    EXPECT_EQ(ts.reason, TraceBailoutReason::GuardedBackedge);
    EXPECT_EQ(strict.stats().predReplay.builds, 0u);

    // An unguarded straight body stays on the fast tier even with
    // the predicated tier enabled — no backedge in the stream.
    DecodedFunction plain = makeLoopBody({aluOp()});
    TraceCache fast(1, /*slotMode=*/false, /*predReplay=*/true);
    LoopTrace &tf = fast.acquire(ctx, plain);
    EXPECT_EQ(tf.state, LoopTrace::State::Ready);
    EXPECT_FALSE(tf.predicated);
    EXPECT_EQ(tf.ops.size(), 1u);
    EXPECT_EQ(fast.stats().predReplay.builds, 0u);
}

TEST(TraceCache, ShortCountedTripBailsOutBelowEngageThreshold)
{
    // Trip count below kMinCountedReplayIters: the loop is buffered
    // and traceable, but the engagement site declines every
    // activation as not worth a replay setup.
    Program prog = countedLoopProgram(
        static_cast<int>(kMinCountedReplayIters) - 1);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::On));
    const SimStats st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);

    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_EQ(tc.replays, 0u);
    EXPECT_GT(tc.bailouts, 0u);
    EXPECT_EQ(tc.bailoutsBy[static_cast<std::size_t>(
                  TraceBailoutReason::BelowEngageThreshold)],
              tc.bailouts);
}

TEST(TraceCache, ReplayMinItersConfigFieldGatesEngagement)
{
    Program prog = countedLoopProgram(20);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    // A threshold above the trip count declines every activation with
    // the engage-threshold verdict...
    SimConfig gatedCfg = simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::On);
    gatedCfg.replayMinIters = 1000;
    VliwSim gated(cr.code, gatedCfg);
    gated.run();
    const TraceCacheStats &gc = statsOf(gated);
    EXPECT_EQ(gc.replays, 0u);
    EXPECT_GT(gc.bailouts, 0u);
    EXPECT_EQ(gc.bailoutsBy[static_cast<std::size_t>(
                  TraceBailoutReason::BelowEngageThreshold)],
              gc.bailouts);

    // ...and zero disables the gate entirely.
    SimConfig openCfg = gatedCfg;
    openCfg.replayMinIters = 0;
    VliwSim open(cr.code, openCfg);
    open.run();
    EXPECT_GT(statsOf(open).replays, 0u);
    EXPECT_EQ(statsOf(open).bailouts, 0u);
}

TEST(TraceCache, ReplayMinItersEnvOverridesConfig)
{
    Program prog = countedLoopProgram(20);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc = simConfig(256, SimEngine::DECODED,
                             TraceCacheMode::On);
    sc.replayMinIters = 1000;  // would decline every activation

    // The env override is read at construction and beats the config.
    ::setenv("LBP_SIM_REPLAY_MIN_ITERS", "4", 1);
    VliwSim overridden(cr.code, sc);
    ::unsetenv("LBP_SIM_REPLAY_MIN_ITERS");
    overridden.run();
    EXPECT_GT(statsOf(overridden).replays, 0u);

    // Malformed values are ignored — the config holds.
    ::setenv("LBP_SIM_REPLAY_MIN_ITERS", "4x", 1);
    VliwSim malformed(cr.code, sc);
    ::unsetenv("LBP_SIM_REPLAY_MIN_ITERS");
    malformed.run();
    EXPECT_EQ(statsOf(malformed).replays, 0u);

    // So are negative ones.
    ::setenv("LBP_SIM_REPLAY_MIN_ITERS", "-3", 1);
    VliwSim negative(cr.code, sc);
    ::unsetenv("LBP_SIM_REPLAY_MIN_ITERS");
    negative.run();
    EXPECT_EQ(statsOf(negative).replays, 0u);
}

/**
 * Counted loop whose body carries a rare side exit into a clamp
 * block that rejoins after the loop — the g724_dec post_filter
 * shape. After if-conversion and branch combining the exit is a
 * guarded BR inside the loop's single body block, which the strict
 * trace tier rejects as multiControlOp and the predicated tier
 * compiles into a trace-exit check. With a huge threshold the exit
 * never triggers; with a small one the activation ends through the
 * side exit mid-flight.
 */
Program
sideExitLoopProgram(int trip, std::int64_t threshold)
{
    Program prog;
    const auto data = prog.allocData(64);
    prog.checksumBase = data;
    prog.checksumSize = 8;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    const BlockId bail = b.makeBlock();
    b.forLoop(0, trip, 1, [&](RegId i) {
        b.addTo(acc, R(acc), R(i));
        for (int p = 0; p < 4; ++p)
            b.binTo(Opcode::XOR, acc, R(acc), I(p * 5 + 3));
        const BlockId cont = b.makeBlock();
        b.br(CmpCond::GT, R(acc), I(threshold), bail);
        b.fallTo(cont);
        b.at(cont);
    });
    const BlockId join = b.makeBlock();
    b.jump(join);
    b.at(bail);
    b.movTo(acc, I(-1));
    b.fallTo(join);
    b.at(join);
    b.storeW(R(dp), I(0), R(acc));
    b.ret({R(acc)});
    return prog;
}

TEST(TraceCache, SideExitLoopBuildsPredicatedTraceAndReplays)
{
    // Exit never taken: the predicated trace carries the whole
    // residency, and the strict tier's multiControlOp verdict is gone.
    Program prog = sideExitLoopProgram(60, std::int64_t{1} << 40);
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    // The escape hatch first, to prove the body really is the shape
    // the strict tier rejects.
    SimConfig strictCfg = simConfig(256, SimEngine::DECODED,
                                    TraceCacheMode::On);
    strictCfg.predReplay = PredReplayMode::Off;
    VliwSim strict(cr.code, strictCfg);
    const SimStats strictStats = strict.run();
    EXPECT_EQ(strictStats.checksum, cr.goldenChecksum);
    const TraceCacheStats &sb = statsOf(strict);
    EXPECT_GT(sb.bailoutsBy[static_cast<std::size_t>(
                  TraceBailoutReason::MultiControlOp)],
              0u);
    EXPECT_EQ(sb.predReplay.replays, 0u);

    VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::On));
    const SimStats st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);
    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_EQ(tc.bailoutsBy[static_cast<std::size_t>(
                  TraceBailoutReason::MultiControlOp)],
              0u);
    EXPECT_GE(tc.predReplay.builds, 1u);
    EXPECT_GT(tc.predReplay.replays, 0u);
    EXPECT_GT(tc.predReplay.iterations, 0u);
    EXPECT_EQ(tc.predReplay.sideExits, 0u);
    EXPECT_EQ(tc.predReplay.ops, tc.replayedOps);

    // Bit-identical against reference and the non-replaying engines.
    const SimStats ref =
        VliwSim(cr.code, simConfig(256, SimEngine::REFERENCE,
                                   TraceCacheMode::Auto))
            .run();
    const SimStats off =
        VliwSim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::Off))
            .run();
    EXPECT_TRUE(obs::diffSimStats(ref, st, "reference", "pred-on")
                    .empty());
    EXPECT_TRUE(obs::diffSimStats(ref, strictStats, "reference",
                                  "pred-off")
                    .empty());
    EXPECT_TRUE(obs::diffSimStats(ref, off, "reference", "cache-off")
                    .empty());
}

TEST(TraceCache, SideExitTakenBailsBackToDispatchWithoutDivergence)
{
    // Threshold low enough that the exit fires mid-activation, after
    // replay has engaged: the trace hands control back to the
    // dispatch loop at the architectural side-exit point.
    Program prog = sideExitLoopProgram(60, 200);
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::On));
    const SimStats st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);
    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_GT(tc.predReplay.replays, 0u);
    EXPECT_EQ(tc.predReplay.sideExits, 1u);

    const SimStats ref =
        VliwSim(cr.code, simConfig(256, SimEngine::REFERENCE,
                                   TraceCacheMode::Auto))
            .run();
    const SimStats off =
        VliwSim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::Off))
            .run();
    SimConfig strictCfg = simConfig(256, SimEngine::DECODED,
                                    TraceCacheMode::On);
    strictCfg.predReplay = PredReplayMode::Off;
    const SimStats strictStats = VliwSim(cr.code, strictCfg).run();

    EXPECT_TRUE(obs::diffSimStats(ref, st, "reference", "pred-on")
                    .empty());
    EXPECT_TRUE(obs::diffSimStats(ref, off, "reference", "cache-off")
                    .empty());
    EXPECT_TRUE(obs::diffSimStats(ref, strictStats, "reference",
                                  "pred-off")
                    .empty());
}

TEST(TraceCache, EvictionInvalidatesWithoutRebuildStorm)
{
    Program prog = workloads::buildWorkload("g724_dec");
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::On));
    sim.run();
    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_GT(tc.invalidations, 0u);
    EXPECT_GT(tc.replays, 0u);

    // Invalidation marks a trace Stale; revalidation at the next
    // residency is O(1) because trace content is allocation-invariant.
    // A full rebuild per eviction would show builds on the order of
    // invalidations + replays; distinct traceable loops only is the
    // correct order of magnitude.
    EXPECT_LT(tc.builds, tc.invalidations);
}

TEST(TraceCache, StatsBitIdenticalOnOffAndReference)
{
    for (const char *name : {"adpcm_enc", "g724_dec", "mpg123"}) {
        Program prog = workloads::buildWorkload(name);
        CompileOptions opts;
        opts.level = OptLevel::Aggressive;
        opts.bufferOps = 256;
        CompileResult cr;
        compileProgram(prog, opts, cr);

        const SimStats ref =
            VliwSim(cr.code, simConfig(256, SimEngine::REFERENCE,
                                       TraceCacheMode::Auto))
                .run();
        const SimStats on =
            VliwSim(cr.code, simConfig(256, SimEngine::DECODED,
                                       TraceCacheMode::On))
                .run();
        const SimStats off =
            VliwSim(cr.code, simConfig(256, SimEngine::DECODED,
                                       TraceCacheMode::Off))
                .run();

        const std::string dOn =
            obs::diffSimStats(ref, on, "reference", "cache-on");
        EXPECT_TRUE(dOn.empty()) << name << "\n" << dOn;
        const std::string dOff =
            obs::diffSimStats(ref, off, "reference", "cache-off");
        EXPECT_TRUE(dOff.empty()) << name << "\n" << dOff;

        // Per-loop counter vectors, element-wise through the
        // full-field operator==.
        ASSERT_EQ(ref.loops.size(), on.loops.size()) << name;
        for (std::size_t i = 0; i < ref.loops.size(); ++i)
            EXPECT_TRUE(ref.loops[i] == on.loops[i])
                << name << " loop[" << i << "] ("
                << ref.loops[i].name << ")";
    }
}

TEST(TraceCache, PerLoopReplayNeverExceedsBufferedOps)
{
    for (const auto &w : workloads::allWorkloads()) {
        Program prog = workloads::buildWorkload(w.name);
        CompileOptions opts;
        opts.level = OptLevel::Aggressive;
        opts.bufferOps = 256;
        CompileResult cr;
        compileProgram(prog, opts, cr);

        VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                       TraceCacheMode::On));
        const SimStats st = sim.run();
        const TraceCacheStats &tc = statsOf(sim);
        ASSERT_EQ(tc.perLoop.size(), st.loops.size()) << w.name;
        std::uint64_t perLoopOps = 0;
        std::uint64_t perLoopBailouts = 0;
        for (std::size_t i = 0; i < st.loops.size(); ++i) {
            EXPECT_LE(tc.perLoop[i].ops, st.loops[i].opsFromBuffer)
                << w.name << " loop " << st.loops[i].name;
            perLoopOps += tc.perLoop[i].ops;
            perLoopBailouts += tc.perLoop[i].bailouts;
        }
        EXPECT_EQ(perLoopOps, tc.replayedOps) << w.name;
        EXPECT_LE(tc.replayedOps, st.opsFromBuffer) << w.name;

        // The bailout attributions integrate back to the headline
        // counter on both axes — per reason and per loop — and the
        // defensive Unknown bucket stays empty on every workload.
        std::uint64_t byReason = 0;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(TraceBailoutReason::Count);
             ++i)
            byReason += tc.bailoutsBy[i];
        EXPECT_EQ(byReason, tc.bailouts) << w.name;
        EXPECT_EQ(perLoopBailouts, tc.bailouts) << w.name;
        EXPECT_EQ(tc.bailoutsBy[static_cast<std::size_t>(
                      TraceBailoutReason::Unknown)],
                  0u)
            << w.name;
    }
}

TEST(TraceCache, DisabledModesPublishNoStats)
{
    Program prog = countedLoopProgram(50);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc;
    sc.bufferOps = 256;
    sc.traceCache = TraceCacheMode::Off;
    VliwSim off(cr.code, sc);
    off.run();
    EXPECT_EQ(off.traceCacheStats(), nullptr);

    sc.traceCache = TraceCacheMode::Auto;
    sc.engine = SimEngine::REFERENCE;
    VliwSim refSim(cr.code, sc);
    refSim.run();
    EXPECT_EQ(refSim.traceCacheStats(), nullptr);
}

} // namespace
} // namespace lbp
