/**
 * @file
 * Slot-based predication lowering tests (paper §4.2): sensitivity
 * bits, slot-routed defines, clone insertion for wide consumer sets,
 * interval-conflict rejection, and execution equivalence between the
 * register and slot micro-architectures.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "core/slot_predication.hh"
#include "ir/builder.hh"
#include "sim/vliw_sim.hh"
#include "workloads/input_data.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** A diamond loop program compiled to the aggressive pipeline. */
void
compileDiamond(CompileResult &cr, bool slotLowering)
{
    Program prog;
    const auto data = prog.allocData(128 * 4);
    for (int i = 0; i < 128; ++i)
        prog.poke32(data + 4 * i, (i * 29) % 17 - 8);
    prog.checksumBase = data;
    prog.checksumSize = 128 * 4;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 128, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        workloads::diamond(b, CmpCond::LT, R(v), I(0),
                           [&] { b.subTo(acc, R(acc), R(v)); },
                           [&] { b.addTo(acc, R(acc), R(v)); });
        b.storeW(R(dp), R(i4), R(acc));
    });
    b.ret({R(acc)});

    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.slotLowering = slotLowering;
    compileProgram(prog, opts, cr);
}

TEST(SlotPred, LoweringRewritesDefinesToSlots)
{
    CompileResult cr;
    compileDiamond(cr, true);
    EXPECT_GE(cr.slotStats.blocksLowered, 1);
    EXPECT_GE(cr.slotStats.definesRewritten, 1);
    EXPECT_GT(cr.slotStats.sensitiveOps, 0);

    // Every lowered define's destinations are slots (or register
    // copies for escaping predicates).
    bool sawSlotDest = false;
    for (const auto &sf : cr.code.functions) {
        for (const auto &sb : sf.blocks) {
            if (!sb.valid || !sb.isLoopBody)
                continue;
            for (const auto &bu : sb.bundles) {
                for (const auto &so : bu.ops) {
                    if (so.op.op != Opcode::PRED_DEF)
                        continue;
                    for (const auto &d : so.op.dsts)
                        sawSlotDest |= d.isSlot();
                }
            }
        }
    }
    EXPECT_TRUE(sawSlotDest);
}

TEST(SlotPred, SlotDestinationsMatchConsumerSlots)
{
    CompileResult cr;
    compileDiamond(cr, true);
    // In each lowered body: the set of slots named by defines must
    // cover the slots of all sensitive consumers.
    for (const auto &sf : cr.code.functions) {
        for (const auto &sb : sf.blocks) {
            if (!sb.valid || !sb.isLoopBody)
                continue;
            std::set<int> defined, consumed;
            for (const auto &bu : sb.bundles) {
                for (const auto &so : bu.ops) {
                    if (so.op.op == Opcode::PRED_DEF) {
                        for (const auto &d : so.op.dsts)
                            if (d.isSlot())
                                defined.insert(d.asSlot());
                    }
                    if (so.op.sensitive)
                        consumed.insert(so.slot);
                }
            }
            for (int s : consumed)
                EXPECT_TRUE(defined.count(s))
                    << "slot " << s << " consumed but never driven";
        }
    }
}

TEST(SlotPred, RegisterAndSlotModesAgree)
{
    // Each predication micro-architecture simulates the code compiled
    // for it (slot-routed defines bypass the register file, so
    // REGISTER mode pairs with an unlowered compilation).
    CompileResult crReg, crSlot;
    compileDiamond(crReg, false);
    compileDiamond(crSlot, true);
    EXPECT_EQ(crReg.goldenChecksum, crSlot.goldenChecksum);
    SimConfig reg;
    reg.predMode = PredMode::REGISTER;
    SimConfig slot;
    slot.predMode = PredMode::SLOT;
    VliwSim simReg(crReg.code, reg);
    VliwSim simSlot(crSlot.code, slot);
    const auto a = simReg.run();
    const auto b = simSlot.run();
    EXPECT_EQ(a.checksum, crReg.goldenChecksum);
    EXPECT_EQ(b.checksum, crSlot.goldenChecksum);
    EXPECT_EQ(a.returns, b.returns);
    EXPECT_GT(b.opsSensitive, 0u);
    EXPECT_EQ(a.opsSensitive, 0u);
}

TEST(SlotPred, AllWorkloadLoweringMostlySucceeds)
{
    // The paper's claim: intervention is "largely unnecessary".
    CompileResult cr;
    compileDiamond(cr, true);
    const auto &s = cr.slotStats;
    EXPECT_EQ(s.blocksFailedConflict + s.blocksFailedCapacity, 0);
}

TEST(SlotPred, CloneInsertedForManyConsumerSlots)
{
    // Construct a scheduled block by hand: one predicate guarded by
    // ops in 5 different slots; one define must be cloned (2 slots
    // per define, so 5 slots need 3 defines).
    Program prog;
    const FuncId f = prog.newFunction("f");
    Function &fn = prog.functions[f];
    IRBuilder b(prog, f);
    const PredId p = b.newPred();
    b.predDef(PredDefKind::UT, p, CmpCond::TRUE_, I(0), I(0));
    std::vector<RegId> regs;
    for (int i = 0; i < 5; ++i) {
        Operation op = makeBinary(Opcode::ADD, fn.newReg(), I(1),
                                  I(2));
        op.guard = p;
        b.emit(op);
    }
    b.ret({});
    BasicBlock &bb = fn.blocks[fn.entry];

    // Hand-build a schedule: define at cycle 0 slot 4; consumers at
    // cycle 1, slots 0..4 -- five distinct slots.
    SchedBlock sb;
    sb.irBlock = bb.id;
    sb.valid = true;
    sb.isLoopBody = true;
    sb.bundles.resize(2);
    sb.bundles[0].ops.push_back({bb.ops[0], 4});
    for (int i = 0; i < 5; ++i)
        sb.bundles[1].ops.push_back({bb.ops[1 + i], i});

    Machine machine;
    SlotLoweringStats stats;
    const bool ok = lowerBlockToSlots(bb, sb, machine, {}, stats);
    EXPECT_TRUE(ok);
    EXPECT_GE(stats.definesCloned, 2);
    // All five consumer slots must now be driven.
    std::set<int> defined;
    for (const auto &bu : sb.bundles)
        for (const auto &so : bu.ops)
            if (so.op.op == Opcode::PRED_DEF)
                for (const auto &d : so.op.dsts)
                    if (d.isSlot())
                        defined.insert(d.asSlot());
    for (int s = 0; s < 5; ++s)
        EXPECT_TRUE(defined.count(s));
}

TEST(SlotPred, OverlappingLiveRangesRejected)
{
    // Two different predicates consumed in the same slot with
    // overlapping [define, lastUse] ranges: lowering must fail and
    // the block stays on register predication.
    Program prog;
    const FuncId f = prog.newFunction("f");
    Function &fn = prog.functions[f];
    IRBuilder b(prog, f);
    const PredId p1 = b.newPred();
    const PredId p2 = b.newPred();
    b.predDef(PredDefKind::UT, p1, CmpCond::TRUE_, I(0), I(0)); // 0
    b.predDef(PredDefKind::UT, p2, CmpCond::FALSE_, I(0), I(0)); // 1
    Operation u1 = makeBinary(Opcode::ADD, fn.newReg(), I(1), I(1));
    u1.guard = p1;
    b.emit(u1); // 2
    Operation u2 = makeBinary(Opcode::ADD, fn.newReg(), I(2), I(2));
    u2.guard = p2;
    b.emit(u2); // 3
    Operation u3 = makeBinary(Opcode::ADD, fn.newReg(), I(3), I(3));
    u3.guard = p1;
    b.emit(u3); // 4 (re-use of p1 after p2's range opened)
    b.ret({});
    BasicBlock &bb = fn.blocks[fn.entry];

    SchedBlock sb;
    sb.irBlock = bb.id;
    sb.valid = true;
    sb.bundles.resize(3);
    sb.bundles[0].ops.push_back({bb.ops[0], 4});
    sb.bundles[0].ops.push_back({bb.ops[1], 5});
    // All consumers forced into slot 2: p1 live [0,2], p2 live [0,1].
    sb.bundles[1].ops.push_back({bb.ops[2], 2});
    sb.bundles[1].ops.push_back({bb.ops[3], 3});
    sb.bundles[2].ops.push_back({bb.ops[4], 2});
    // p2's consumer is in slot 3; move it to slot 2 to conflict:
    sb.bundles[1].ops[1].slot = 2;
    // Two ops in one slot same cycle is itself illegal; put p2's
    // consumer in cycle 2 slot 2 instead, overlapping p1's range.
    sb.bundles[1].ops.pop_back();
    sb.bundles[2].ops.push_back({bb.ops[3], 3});
    sb.bundles[2].ops.back().slot = 2;
    // Now: slot 2 hosts p1 (cycles 0..2) and p2 (cycles 0..2).

    Machine machine;
    SlotLoweringStats stats;
    const bool ok = lowerBlockToSlots(bb, sb, machine, {}, stats);
    EXPECT_FALSE(ok);
    EXPECT_GE(stats.blocksFailedConflict, 1);
}

} // namespace
} // namespace lbp
