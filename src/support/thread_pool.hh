/**
 * @file
 * A small fixed-size worker pool for embarrassingly parallel sweeps.
 *
 * The bench harness uses it to run independent simulation points
 * concurrently: jobs are plain closures, submitted from one thread
 * and drained FIFO by the workers. wait() blocks until every
 * submitted job has finished, so a sweep can be staged in rounds
 * (e.g. all points of one workload, then its reporting).
 */

#ifndef LBP_SUPPORT_THREAD_POOL_HH
#define LBP_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lbp
{

class ThreadPool
{
  public:
    /**
     * Start @p threads workers; 0 means one per hardware thread
     * (at least one either way).
     */
    explicit ThreadPool(int threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const
    { return static_cast<int>(workers_.size()); }

    /** Enqueue a job. Safe from any thread, including workers. */
    void submit(std::function<void()> job);

    /**
     * Block until the queue is empty and no job is in flight. Jobs
     * submitted while waiting (e.g. by other jobs) are waited on too.
     */
    void wait();

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable cvWork_;   // workers: queue non-empty/stop
    std::condition_variable cvIdle_;   // waiters: all drained
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    int active_ = 0;                   // jobs currently executing
    bool stop_ = false;
};

} // namespace lbp

#endif // LBP_SUPPORT_THREAD_POOL_HH
