#include "transform/classic_opts.hh"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/liveness.hh"
#include "ir/interpreter.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

bool
hasSideEffects(const Operation &op)
{
    if (isStore(op.op) || isControl(op.op) || op.op == Opcode::PRED_DEF)
        return true;
    return false;
}

/** Try evaluating an all-constant ALU op; true on success. */
bool
foldOp(Operation &op, int &folded)
{
    // Only pure single-dest register ops.
    if (op.dsts.size() != 1 || !op.dsts[0].isReg())
        return false;
    switch (op.op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::AND: case Opcode::OR: case Opcode::XOR:
      case Opcode::SHL: case Opcode::SHR: case Opcode::SHRA:
      case Opcode::MIN: case Opcode::MAX:
      case Opcode::SATADD: case Opcode::SATSUB:
      case Opcode::CMP:
        break;
      case Opcode::DIV: case Opcode::REM:
        // Fold only when the divisor is a non-zero constant.
        if (!op.srcs[1].isImm() || op.srcs[1].value == 0)
            return false;
        break;
      default:
        return false;
    }
    for (const auto &s : op.srcs)
        if (!s.isImm())
            return false;

    const std::int64_t a = op.srcs[0].value;
    const std::int64_t b = op.srcs[1].value;
    std::int64_t v = 0;
    switch (op.op) {
      case Opcode::ADD: v = a + b; break;
      case Opcode::SUB: v = a - b; break;
      case Opcode::MUL: v = a * b; break;
      case Opcode::DIV: v = a / b; break;
      case Opcode::REM: v = a % b; break;
      case Opcode::AND: v = a & b; break;
      case Opcode::OR: v = a | b; break;
      case Opcode::XOR: v = a ^ b; break;
      case Opcode::SHL: v = a << (b & 63); break;
      case Opcode::SHR:
        v = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                      (b & 63));
        break;
      case Opcode::SHRA: v = a >> (b & 63); break;
      case Opcode::MIN: v = std::min(a, b); break;
      case Opcode::MAX: v = std::max(a, b); break;
      case Opcode::SATADD:
        v = std::clamp<std::int64_t>(a + b, -32768, 32767);
        break;
      case Opcode::SATSUB:
        v = std::clamp<std::int64_t>(a - b, -32768, 32767);
        break;
      case Opcode::CMP: v = evalCond(op.cond, a, b) ? 1 : 0; break;
      default: return false;
    }
    const RegId dst = op.dsts[0].asReg();
    const PredId guard = op.guard;
    const OpId id = op.id;
    op = makeUnary(Opcode::MOV, dst, Operand::imm(v));
    op.guard = guard;
    op.id = id;
    ++folded;
    return true;
}

/** Algebraic identities: x+0, x*1, x*0, x<<0, ... */
bool
simplifyOp(Operation &op, int &folded)
{
    if (op.dsts.size() != 1 || !op.dsts[0].isReg() || op.srcs.size() != 2)
        return false;
    const RegId dst = op.dsts[0].asReg();
    auto toMov = [&](Operand v) {
        const PredId guard = op.guard;
        const OpId id = op.id;
        op = makeUnary(Opcode::MOV, dst, v);
        op.guard = guard;
        op.id = id;
        ++folded;
        return true;
    };
    const Operand &a = op.srcs[0];
    const Operand &b = op.srcs[1];
    switch (op.op) {
      case Opcode::ADD:
        if (b.isImm() && b.value == 0)
            return toMov(a);
        if (a.isImm() && a.value == 0)
            return toMov(b);
        return false;
      case Opcode::SUB:
        if (b.isImm() && b.value == 0)
            return toMov(a);
        return false;
      case Opcode::MUL:
        if (b.isImm() && b.value == 1)
            return toMov(a);
        if (a.isImm() && a.value == 1)
            return toMov(b);
        if ((b.isImm() && b.value == 0) || (a.isImm() && a.value == 0))
            return toMov(Operand::imm(0));
        return false;
      case Opcode::SHL: case Opcode::SHR: case Opcode::SHRA:
        if (b.isImm() && b.value == 0)
            return toMov(a);
        return false;
      case Opcode::OR: case Opcode::XOR:
        if (b.isImm() && b.value == 0)
            return toMov(a);
        return false;
      default:
        return false;
    }
}

} // namespace

OptStats
constantFold(Function &fn)
{
    OptStats st;
    for (auto &bb : fn.blocks) {
        if (bb.dead)
            continue;
        for (auto &op : bb.ops) {
            if (!foldOp(op, st.folded))
                simplifyOp(op, st.folded);
        }
    }
    return st;
}

OptStats
copyPropagate(Function &fn)
{
    OptStats st;
    for (auto &bb : fn.blocks) {
        if (bb.dead)
            continue;
        // reg -> known copy source (imm or reg), invalidated on write.
        std::map<RegId, Operand> known;
        auto invalidateUsesOf = [&](RegId r) {
            for (auto it = known.begin(); it != known.end();) {
                if (it->first == r ||
                    (it->second.isReg() && it->second.asReg() == r)) {
                    it = known.erase(it);
                } else {
                    ++it;
                }
            }
        };
        for (auto &op : bb.ops) {
            // Substitute sources. Skip branch targets etc. (non-reg).
            for (auto &s : op.srcs) {
                if (!s.isReg())
                    continue;
                auto it = known.find(s.asReg());
                if (it != known.end()) {
                    s = it->second;
                    ++st.propagated;
                }
            }
            // Update facts.
            for (const auto &d : op.dsts) {
                if (d.isReg())
                    invalidateUsesOf(d.asReg());
            }
            if (op.op == Opcode::MOV && !op.hasGuard() &&
                op.dsts.size() == 1 && op.dsts[0].isReg()) {
                const Operand &src = op.srcs[0];
                if (src.isImm() ||
                    (src.isReg() && src.asReg() != op.dsts[0].asReg())) {
                    known[op.dsts[0].asReg()] = src;
                }
            }
        }
    }
    return st;
}

OptStats
deadCodeElim(Function &fn)
{
    OptStats st;
    Liveness live(fn);
    for (auto &bb : fn.blocks) {
        if (bb.dead)
            continue;
        // Backward scan with a running live set seeded by live-out.
        std::set<RegId> liveNow = live.liveOut(bb.id);
        std::set<PredId> predLiveNow = live.predLiveOut(bb.id);
        std::vector<char> keep(bb.ops.size(), 1);
        for (int i = static_cast<int>(bb.ops.size()) - 1; i >= 0; --i) {
            Operation &op = bb.ops[i];
            bool needed = hasSideEffects(op);
            if (!needed) {
                for (RegId d : Liveness::defs(op)) {
                    if (liveNow.count(d))
                        needed = true;
                }
            }
            // A pred_def is removable if all pred destinations are
            // dead (and none are slots).
            if (op.op == Opcode::PRED_DEF) {
                needed = false;
                for (const auto &d : op.dsts) {
                    if (!d.isPred() || predLiveNow.count(d.asPred()))
                        needed = true;
                }
            }
            if (!needed) {
                keep[i] = 0;
                ++st.eliminated;
                continue;
            }
            // Update live sets.
            if (!op.hasGuard()) {
                for (RegId d : Liveness::defs(op))
                    liveNow.erase(d);
                if (op.op == Opcode::PRED_DEF) {
                    for (const auto &d : op.dsts) {
                        if (d.isPred() &&
                            (op.defKind0 == PredDefKind::UT ||
                             op.defKind0 == PredDefKind::UF)) {
                            // Only kind0's unconditional write kills
                            // reliably; be conservative and keep preds
                            // live.
                        }
                    }
                }
            }
            for (RegId u : Liveness::uses(op))
                liveNow.insert(u);
            for (PredId p : Liveness::predUses(op))
                predLiveNow.insert(p);
        }
        if (st.eliminated > 0) {
            std::vector<Operation> kept;
            kept.reserve(bb.ops.size());
            for (size_t i = 0; i < bb.ops.size(); ++i)
                if (keep[i])
                    kept.push_back(std::move(bb.ops[i]));
            bb.ops = std::move(kept);
        }
    }
    return st;
}

OptStats
optimizeFunction(Function &fn, int max_rounds)
{
    OptStats total;
    for (int round = 0; round < max_rounds; ++round) {
        OptStats st;
        st += copyPropagate(fn);
        st += constantFold(fn);
        st += deadCodeElim(fn);
        total += st;
        if (!st.any())
            break;
    }
    fn.pruneUnreachable();
    return total;
}

OptStats
optimizeProgram(Program &prog)
{
    OptStats total;
    for (auto &fn : prog.functions)
        total += optimizeFunction(fn);
    return total;
}

} // namespace lbp
