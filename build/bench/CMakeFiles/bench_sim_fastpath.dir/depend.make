# Empty dependencies file for bench_sim_fastpath.
# This may be replaced when dependencies are built.
