
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dependence.cc" "src/CMakeFiles/lbp.dir/analysis/dependence.cc.o" "gcc" "src/CMakeFiles/lbp.dir/analysis/dependence.cc.o.d"
  "/root/repo/src/analysis/dominators.cc" "src/CMakeFiles/lbp.dir/analysis/dominators.cc.o" "gcc" "src/CMakeFiles/lbp.dir/analysis/dominators.cc.o.d"
  "/root/repo/src/analysis/liveness.cc" "src/CMakeFiles/lbp.dir/analysis/liveness.cc.o" "gcc" "src/CMakeFiles/lbp.dir/analysis/liveness.cc.o.d"
  "/root/repo/src/analysis/loop_info.cc" "src/CMakeFiles/lbp.dir/analysis/loop_info.cc.o" "gcc" "src/CMakeFiles/lbp.dir/analysis/loop_info.cc.o.d"
  "/root/repo/src/core/buffer_alloc.cc" "src/CMakeFiles/lbp.dir/core/buffer_alloc.cc.o" "gcc" "src/CMakeFiles/lbp.dir/core/buffer_alloc.cc.o.d"
  "/root/repo/src/core/compiler.cc" "src/CMakeFiles/lbp.dir/core/compiler.cc.o" "gcc" "src/CMakeFiles/lbp.dir/core/compiler.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/lbp.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/lbp.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/slot_predication.cc" "src/CMakeFiles/lbp.dir/core/slot_predication.cc.o" "gcc" "src/CMakeFiles/lbp.dir/core/slot_predication.cc.o.d"
  "/root/repo/src/ir/basic_block.cc" "src/CMakeFiles/lbp.dir/ir/basic_block.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/basic_block.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/CMakeFiles/lbp.dir/ir/builder.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/builder.cc.o.d"
  "/root/repo/src/ir/function.cc" "src/CMakeFiles/lbp.dir/ir/function.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/function.cc.o.d"
  "/root/repo/src/ir/interpreter.cc" "src/CMakeFiles/lbp.dir/ir/interpreter.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/interpreter.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/CMakeFiles/lbp.dir/ir/opcode.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/opcode.cc.o.d"
  "/root/repo/src/ir/operation.cc" "src/CMakeFiles/lbp.dir/ir/operation.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/operation.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/lbp.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/CMakeFiles/lbp.dir/ir/program.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/program.cc.o.d"
  "/root/repo/src/ir/serialize.cc" "src/CMakeFiles/lbp.dir/ir/serialize.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/serialize.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/CMakeFiles/lbp.dir/ir/verifier.cc.o" "gcc" "src/CMakeFiles/lbp.dir/ir/verifier.cc.o.d"
  "/root/repo/src/mach/machine.cc" "src/CMakeFiles/lbp.dir/mach/machine.cc.o" "gcc" "src/CMakeFiles/lbp.dir/mach/machine.cc.o.d"
  "/root/repo/src/power/cacti_lite.cc" "src/CMakeFiles/lbp.dir/power/cacti_lite.cc.o" "gcc" "src/CMakeFiles/lbp.dir/power/cacti_lite.cc.o.d"
  "/root/repo/src/power/fetch_energy.cc" "src/CMakeFiles/lbp.dir/power/fetch_energy.cc.o" "gcc" "src/CMakeFiles/lbp.dir/power/fetch_energy.cc.o.d"
  "/root/repo/src/profile/profile.cc" "src/CMakeFiles/lbp.dir/profile/profile.cc.o" "gcc" "src/CMakeFiles/lbp.dir/profile/profile.cc.o.d"
  "/root/repo/src/sched/list_scheduler.cc" "src/CMakeFiles/lbp.dir/sched/list_scheduler.cc.o" "gcc" "src/CMakeFiles/lbp.dir/sched/list_scheduler.cc.o.d"
  "/root/repo/src/sched/modulo_scheduler.cc" "src/CMakeFiles/lbp.dir/sched/modulo_scheduler.cc.o" "gcc" "src/CMakeFiles/lbp.dir/sched/modulo_scheduler.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/CMakeFiles/lbp.dir/sched/schedule.cc.o" "gcc" "src/CMakeFiles/lbp.dir/sched/schedule.cc.o.d"
  "/root/repo/src/sim/decoded.cc" "src/CMakeFiles/lbp.dir/sim/decoded.cc.o" "gcc" "src/CMakeFiles/lbp.dir/sim/decoded.cc.o.d"
  "/root/repo/src/sim/loop_buffer.cc" "src/CMakeFiles/lbp.dir/sim/loop_buffer.cc.o" "gcc" "src/CMakeFiles/lbp.dir/sim/loop_buffer.cc.o.d"
  "/root/repo/src/sim/vliw_sim.cc" "src/CMakeFiles/lbp.dir/sim/vliw_sim.cc.o" "gcc" "src/CMakeFiles/lbp.dir/sim/vliw_sim.cc.o.d"
  "/root/repo/src/sim/vliw_sim_decoded.cc" "src/CMakeFiles/lbp.dir/sim/vliw_sim_decoded.cc.o" "gcc" "src/CMakeFiles/lbp.dir/sim/vliw_sim_decoded.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/CMakeFiles/lbp.dir/support/logging.cc.o" "gcc" "src/CMakeFiles/lbp.dir/support/logging.cc.o.d"
  "/root/repo/src/support/random.cc" "src/CMakeFiles/lbp.dir/support/random.cc.o" "gcc" "src/CMakeFiles/lbp.dir/support/random.cc.o.d"
  "/root/repo/src/support/stats.cc" "src/CMakeFiles/lbp.dir/support/stats.cc.o" "gcc" "src/CMakeFiles/lbp.dir/support/stats.cc.o.d"
  "/root/repo/src/support/thread_pool.cc" "src/CMakeFiles/lbp.dir/support/thread_pool.cc.o" "gcc" "src/CMakeFiles/lbp.dir/support/thread_pool.cc.o.d"
  "/root/repo/src/transform/branch_combine.cc" "src/CMakeFiles/lbp.dir/transform/branch_combine.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/branch_combine.cc.o.d"
  "/root/repo/src/transform/classic_opts.cc" "src/CMakeFiles/lbp.dir/transform/classic_opts.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/classic_opts.cc.o.d"
  "/root/repo/src/transform/counted_loop.cc" "src/CMakeFiles/lbp.dir/transform/counted_loop.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/counted_loop.cc.o.d"
  "/root/repo/src/transform/if_convert.cc" "src/CMakeFiles/lbp.dir/transform/if_convert.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/if_convert.cc.o.d"
  "/root/repo/src/transform/inliner.cc" "src/CMakeFiles/lbp.dir/transform/inliner.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/inliner.cc.o.d"
  "/root/repo/src/transform/loop_collapse.cc" "src/CMakeFiles/lbp.dir/transform/loop_collapse.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/loop_collapse.cc.o.d"
  "/root/repo/src/transform/loop_peel.cc" "src/CMakeFiles/lbp.dir/transform/loop_peel.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/loop_peel.cc.o.d"
  "/root/repo/src/transform/promote.cc" "src/CMakeFiles/lbp.dir/transform/promote.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/promote.cc.o.d"
  "/root/repo/src/transform/reassociate.cc" "src/CMakeFiles/lbp.dir/transform/reassociate.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/reassociate.cc.o.d"
  "/root/repo/src/transform/unroll.cc" "src/CMakeFiles/lbp.dir/transform/unroll.cc.o" "gcc" "src/CMakeFiles/lbp.dir/transform/unroll.cc.o.d"
  "/root/repo/src/workloads/adpcm.cc" "src/CMakeFiles/lbp.dir/workloads/adpcm.cc.o" "gcc" "src/CMakeFiles/lbp.dir/workloads/adpcm.cc.o.d"
  "/root/repo/src/workloads/g724.cc" "src/CMakeFiles/lbp.dir/workloads/g724.cc.o" "gcc" "src/CMakeFiles/lbp.dir/workloads/g724.cc.o.d"
  "/root/repo/src/workloads/input_data.cc" "src/CMakeFiles/lbp.dir/workloads/input_data.cc.o" "gcc" "src/CMakeFiles/lbp.dir/workloads/input_data.cc.o.d"
  "/root/repo/src/workloads/jpeg.cc" "src/CMakeFiles/lbp.dir/workloads/jpeg.cc.o" "gcc" "src/CMakeFiles/lbp.dir/workloads/jpeg.cc.o.d"
  "/root/repo/src/workloads/mpeg2.cc" "src/CMakeFiles/lbp.dir/workloads/mpeg2.cc.o" "gcc" "src/CMakeFiles/lbp.dir/workloads/mpeg2.cc.o.d"
  "/root/repo/src/workloads/mpg123.cc" "src/CMakeFiles/lbp.dir/workloads/mpg123.cc.o" "gcc" "src/CMakeFiles/lbp.dir/workloads/mpg123.cc.o.d"
  "/root/repo/src/workloads/pgp.cc" "src/CMakeFiles/lbp.dir/workloads/pgp.cc.o" "gcc" "src/CMakeFiles/lbp.dir/workloads/pgp.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/lbp.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/lbp.dir/workloads/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
