/**
 * @file
 * Unit tests for the support layer: deterministic RNG, histograms,
 * logging helpers, thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "support/logging.hh"
#include "support/random.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace lbp
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Histogram, BasicAccumulation)
{
    Histogram h;
    h.add(1, 2.0);
    h.add(3, 1.0);
    h.add(1, 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), (1 * 3.0 + 3 * 1.0) / 4.0);
    EXPECT_EQ(h.maxValue(), 3);
}

TEST(Histogram, Cdf)
{
    Histogram h;
    h.add(1, 1);
    h.add(2, 1);
    h.add(4, 2);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(1), 0.25);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(2), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(3), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(4), 1.0);
    auto rows = h.cdf();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows.back().first, 4);
    EXPECT_DOUBLE_EQ(rows.back().second, 1.0);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_DOUBLE_EQ(h.total(), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0);
    EXPECT_EQ(h.maxValue(), 0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(5), 0);
}

TEST(Stats, Formatting)
{
    EXPECT_EQ(pct(0.5), "50.0%");
    EXPECT_EQ(pct(0.123, 2), "12.30%");
    EXPECT_EQ(fixed(1.5, 1), "1.5");
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({3.0, 3.0, 3.0}), 3.0, 1e-12);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(LBP_FATAL("user error ", 42), std::runtime_error);
}

TEST(ThreadPool, RunsAllSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 10);
    }
}

TEST(ThreadPool, DefaultsToAtLeastOneThread)
{
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): destruction must still run everything.
    }
    EXPECT_EQ(count.load(), 50);
}

} // namespace
} // namespace lbp
