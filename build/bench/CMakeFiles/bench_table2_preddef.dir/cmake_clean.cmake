file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_preddef.dir/bench_table2_preddef.cc.o"
  "CMakeFiles/bench_table2_preddef.dir/bench_table2_preddef.cc.o.d"
  "bench_table2_preddef"
  "bench_table2_preddef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_preddef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
