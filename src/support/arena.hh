/**
 * @file
 * FrameArena: a chunked stack allocator for per-call simulator frames.
 *
 * The decoded executor allocates a register file and a predicate file
 * per function invocation; on call-heavy workloads those two heap
 * allocations per call dominate the prologue. The arena replaces them
 * with pointer bumps in geometrically-growing chunks, released in LIFO
 * order by an RAII scope at function return.
 *
 * Chunk addresses are stable for the lifetime of the arena: a nested
 * call that grows the arena never moves the caller's live frame, which
 * the executor relies on by holding raw pointers across recursive
 * calls. (This is why the arena is NOT a single growing vector.)
 */

#ifndef LBP_SUPPORT_ARENA_HH
#define LBP_SUPPORT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace lbp
{

class FrameArena
{
  public:
    struct Mark
    {
        std::size_t chunk = 0;
        std::size_t used = 0;
    };

    /** RAII frame: releases everything allocated since construction. */
    class Scope
    {
      public:
        explicit Scope(FrameArena &a) : arena_(a), mark_(a.mark()) {}
        ~Scope() { arena_.release(mark_); }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

        std::int64_t *allocI64(std::size_t n)
        {
            return static_cast<std::int64_t *>(
                arena_.allocZeroed(n * sizeof(std::int64_t)));
        }
        std::uint8_t *allocU8(std::size_t n)
        {
            return static_cast<std::uint8_t *>(
                arena_.allocZeroed(n * sizeof(std::uint8_t)));
        }

      private:
        FrameArena &arena_;
        Mark mark_;
    };

    Mark mark() const { return {cur_, curUsed_()}; }

    void release(const Mark &m)
    {
        for (std::size_t c = m.chunk + 1;
             c < chunks_.size() && c <= cur_; ++c)
            chunks_[c].used = 0;
        cur_ = m.chunk;
        if (cur_ < chunks_.size())
            chunks_[cur_].used = m.used;
    }

    /** 8-byte-aligned zeroed block; stable until released. */
    void *allocZeroed(std::size_t bytes)
    {
        bytes = (bytes + 7u) & ~std::size_t{7};
        if (bytes == 0)
            bytes = 8;
        while (cur_ < chunks_.size() &&
               chunks_[cur_].used + bytes > chunks_[cur_].size) {
            ++cur_;
            if (cur_ < chunks_.size())
                chunks_[cur_].used = 0;
        }
        if (cur_ >= chunks_.size()) {
            std::size_t sz = chunks_.empty()
                                 ? kMinChunk
                                 : chunks_.back().size * 2;
            if (sz < bytes)
                sz = bytes;
            Chunk c;
            c.data = std::make_unique<std::byte[]>(sz);
            c.size = sz;
            chunks_.push_back(std::move(c));
            cur_ = chunks_.size() - 1;
        }
        Chunk &c = chunks_[cur_];
        void *p = c.data.get() + c.used;
        c.used += bytes;
        std::memset(p, 0, bytes);
        return p;
    }

  private:
    static constexpr std::size_t kMinChunk = 16 * 1024;

    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    std::size_t curUsed_() const
    {
        return cur_ < chunks_.size() ? chunks_[cur_].used : 0;
    }

    std::vector<Chunk> chunks_;
    std::size_t cur_ = 0;
};

} // namespace lbp

#endif // LBP_SUPPORT_ARENA_HH
