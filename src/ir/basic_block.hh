/**
 * @file
 * BasicBlock: a sequence of operations with explicit control-flow edges.
 *
 * Branches may appear anywhere inside a block only after hyperblock
 * formation (predicated side exits); before that, the verifier enforces
 * that branches terminate blocks. Each block has an optional fall-through
 * successor; together with branch targets this defines the CFG.
 */

#ifndef LBP_IR_BASIC_BLOCK_HH
#define LBP_IR_BASIC_BLOCK_HH

#include <string>
#include <vector>

#include "ir/operation.hh"
#include "ir/types.hh"

namespace lbp
{

class BasicBlock
{
  public:
    BlockId id = kNoBlock;
    std::string name;

    std::vector<Operation> ops;

    /** Fall-through successor; kNoBlock if control never falls through. */
    BlockId fallthrough = kNoBlock;

    /** Profile: number of times this block executed. */
    double weight = 0.0;

    /** Marks a block formed by if-conversion. */
    bool isHyperblock = false;

    /** Dead blocks are kept as tombstones to preserve ids. */
    bool dead = false;

    /** All successor block ids (branch targets then fall-through). */
    std::vector<BlockId> successors() const;

    /** True if the final operation unconditionally leaves the block. */
    bool endsWithUnconditional() const;

    /** The terminating branch, or nullptr. */
    const Operation *terminator() const;
    Operation *terminator();

    /** Count of non-NOP operations. */
    int sizeOps() const;
};

} // namespace lbp

#endif // LBP_IR_BASIC_BLOCK_HH
