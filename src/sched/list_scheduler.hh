/**
 * @file
 * Cycle-driven list scheduler for acyclic (non-loop) blocks: greedy
 * height-priority scheduling into VLIW bundles with slot-capability
 * constraints.
 */

#ifndef LBP_SCHED_LIST_SCHEDULER_HH
#define LBP_SCHED_LIST_SCHEDULER_HH

#include "sched/schedule.hh"

namespace lbp
{

/** List-schedule one block (no loop-carried dependences considered). */
SchedBlock listScheduleBlock(const BasicBlock &bb, const Machine &machine);

} // namespace lbp

#endif // LBP_SCHED_LIST_SCHEDULER_HH
