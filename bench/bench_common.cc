#include "bench_common.hh"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "support/logging.hh"

namespace lbp
{
namespace bench
{

const std::vector<int> &
figureBufferSizes()
{
    static const std::vector<int> sizes{16, 32, 64, 128, 256, 512,
                                        1024, 2048};
    return sizes;
}

CompileResult &
compileBench(const std::string &name, OptLevel level, PredMode mode)
{
    // Slot lowering only runs at the aggressive level; elsewhere both
    // PredModes map to the same compilation, so normalize the key to
    // avoid duplicate compiles.
    const bool slot =
        level != OptLevel::Aggressive || mode == PredMode::SLOT;

    // Per-entry locking so different cache keys compile concurrently
    // while a shared key compiles exactly once.
    struct Entry
    {
        std::mutex mu;
        std::unique_ptr<CompileResult> cr;
    };
    static std::mutex mapMu;
    static std::map<std::tuple<std::string, int, bool>,
                    std::shared_ptr<Entry>> cache;

    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(mapMu);
        auto &slotRef = cache[{name, static_cast<int>(level), slot}];
        if (!slotRef)
            slotRef = std::make_shared<Entry>();
        entry = slotRef;
    }
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->cr) {
        Program prog = workloads::buildWorkload(name);
        CompileOptions opts;
        opts.level = level;
        opts.slotLowering = slot;
        entry->cr = std::make_unique<CompileResult>();
        compileProgram(prog, opts, *entry->cr);
    }
    return *entry->cr;
}

SimStats
simulate(CompileResult &cr, int bufferOps, PredMode mode,
         SimEngine engine)
{
    reallocateBuffers(cr, bufferOps);
    SimConfig sc;
    sc.bufferOps = bufferOps;
    sc.predMode = mode;
    sc.engine = engine;
    VliwSim sim(cr.code, sc);
    SimStats st = sim.run();
    LBP_ASSERT(st.checksum == cr.goldenChecksum,
               "simulation checksum mismatch for ", cr.ir.name);
    return st;
}

std::vector<std::string>
benchNames()
{
    std::vector<std::string> names;
    for (const auto &w : workloads::allWorkloads())
        names.push_back(w.name);
    return names;
}

void
rule(char c, int n)
{
    for (int i = 0; i < n; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bench
} // namespace lbp
