/**
 * @file
 * MPEG audio (Layer-3 style) decoder model. The paper reports that
 * mpg123 only buffers well at very large (2048-op) buffer sizes, for
 * two structural reasons reproduced here:
 *
 *  1. execution time concentrates in *many distinct small-trip
 *     loops* (per-subband synthesis windows) that would all need to
 *     stay resident simultaneously;
 *  2. its hottest loops modulo-schedule to low IIs with long value
 *     lifetimes (load -> multiply -> accumulate chains), so modulo
 *     variable expansion multiplies their buffer images.
 */

#include "workloads/workloads.hh"

#include "workloads/input_data.hh"

namespace lbp
{
namespace workloads
{

namespace
{

constexpr int kBands = 20;     // synthesis subbands modeled
constexpr int kWin = 12;       // window taps per subband
constexpr int kGran = 24;      // granules decoded

struct Mp3Mem
{
    std::int64_t window;   // 32-bit window coefficients
    std::int64_t samples;  // 16-bit subband samples
    std::int64_t pcm;      // 16-bit output
    std::int64_t imdct;    // 32-bit workspace
};

Mp3Mem
layoutMp3(Program &prog)
{
    Mp3Mem m;
    m.window = prog.allocData(kBands * kWin * 4);
    m.samples = prog.allocData(kBands * kWin * 2 * 2);
    m.pcm = prog.allocData(4096 * 2);
    m.imdct = prog.allocData(1024 * 4);
    fillWords(prog, m.window, kBands * kWin, -2048, 2048, 0x3141);
    fillPcm16(prog, m.samples, kBands * kWin * 2, 0x59265);
    return m;
}

/**
 * One subband synthesis window: a dot product whose loads and
 * multiplies chain into long lifetimes. Each subband gets its *own
 * function* (distinct static loop), modeling mpg123's many discrete
 * kernels that compete for buffer residency.
 */
FuncId
buildSubbandWindow(Program &prog, const Mp3Mem &m, int band)
{
    const FuncId f =
        prog.newFunction("synth_win_" + std::to_string(band));
    Function &fn = prog.functions[f];
    const RegId phase = fn.newReg();
    fn.params = {phase};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId winP = b.iconst(m.window + band * kWin * 4);
    const RegId smpP = b.iconst(m.samples + band * kWin * 2);
    // Four independent accumulators: the schedule pipelines to a
    // small II, and the load(3) -> mul(2) -> add chains give values
    // lifetimes of several IIs => a large MVE factor.
    const RegId a0 = b.iconst(0);
    const RegId a1 = b.iconst(0);
    const RegId a2 = b.iconst(0);
    const RegId a3 = b.iconst(0);

    b.forLoop(0, kWin / 4, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2)); // 4 taps per iteration
        for (int u = 0; u < 4; ++u) {
            const RegId tap = b.add(R(i4), I(u));
            const RegId t4 = b.shl(R(tap), I(2));
            const RegId w = b.loadW(R(winP), R(t4));
            const RegId sidx = b.add(R(tap), R(phase));
            const RegId s2 = b.shl(R(b.and_(R(sidx), I(kWin - 1))),
                                   I(1));
            const RegId s = b.loadH(R(smpP), R(s2));
            const RegId p = b.mul(R(w), R(s));
            const RegId ps = b.shra(R(p), I(10));
            const RegId sc = b.mul(R(ps), I(31 + band));
            const RegId sc2 = b.shra(R(sc), I(5));
            const RegId cl2 = b.mov(R(sc2));
            if (band % 2 == 1) {
                // Odd bands clamp through a hammock: without
                // if-conversion these windows cannot be buffered.
                diamond(b, CmpCond::GT, R(sc2), I(32767),
                        [&] { b.movTo(cl2, I(32767)); },
                        [&] {
                            ifThen(b, CmpCond::LT, R(sc2), I(-32768),
                                   [&] { b.movTo(cl2, I(-32768)); });
                        });
            } else {
                b.binTo(Opcode::MAX, cl2, R(cl2), I(-32768));
                b.binTo(Opcode::MIN, cl2, R(cl2), I(32767));
            }
            const RegId acc = u == 0 ? a0 : u == 1 ? a1
                              : u == 2 ? a2 : a3;
            b.binTo(Opcode::SATADD, acc, R(acc), R(cl2));
        }
    });
    const RegId s01 = b.satadd(R(a0), R(a1));
    const RegId s23 = b.satadd(R(a2), R(a3));
    const RegId sum = b.satadd(R(s01), R(s23));
    b.ret({R(sum)});
    return f;
}

/** IMDCT-like butterfly stage (another small hot loop). */
FuncId
buildImdct(Program &prog, const Mp3Mem &m)
{
    const FuncId f = prog.newFunction("imdct36");
    Function &fn = prog.functions[f];
    const RegId base = fn.newReg();
    fn.params = {base};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId wkP = b.iconst(m.imdct);
    const RegId smpP = b.iconst(m.samples);
    const RegId acc = b.iconst(0);

    b.forLoop(0, 36, 1, [&](RegId i) {
        const RegId idx = b.add(R(base), R(i));
        const RegId i2 = b.shl(R(b.and_(R(idx), I(511))), I(1));
        const RegId x = b.loadH(R(smpP), R(i2));
        const RegId tw = b.add(R(b.mul(R(i), I(37))), I(11));
        const RegId twc = b.sub(R(b.and_(R(tw), I(127))), I(64));
        const RegId p = b.mul(R(x), R(twc));
        const RegId ps = b.shra(R(p), I(6));
        const RegId i4 = b.shl(R(b.and_(R(idx), I(1023 >> 2))), I(2));
        b.storeW(R(wkP), R(i4), R(ps));
        b.binTo(Opcode::SATADD, acc, R(acc), R(ps));
    });
    b.ret({R(acc)});
    return f;
}

} // namespace

Program
buildMpg123()
{
    Program prog;
    prog.name = "mpg123";
    Mp3Mem m = layoutMp3(prog);

    std::vector<FuncId> windows;
    for (int band = 0; band < kBands; ++band)
        windows.push_back(buildSubbandWindow(prog, m, band));
    const FuncId imdct = buildImdct(prog, m);

    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId pcmP = b.iconst(m.pcm);
    const RegId wpos = b.iconst(0);
    const RegId acc = b.iconst(0);

    b.forLoop(0, kGran, 1, [&](RegId g) {
        const RegId phase = b.mul(R(b.and_(R(g), I(7))), I(9));
        // Every subband window runs once per granule: all kBands
        // distinct loops are hot at once.
        for (int band = 0; band < kBands; ++band) {
            auto r = b.call(windows[band], {R(phase)}, 1);
            b.binTo(Opcode::SATADD, acc, R(acc), R(r[0]));
            const RegId w2 = b.shl(R(wpos), I(1));
            b.storeH(R(pcmP), R(w2), R(acc));
            b.addTo(wpos, R(wpos), I(1));
        }
        const RegId base = b.mul(R(b.and_(R(g), I(15))), I(36));
        auto r2 = b.call(imdct, {R(base)}, 1);
        b.binTo(Opcode::XOR, acc, R(acc), R(r2[0]));
    });
    b.ret({R(acc)});

    prog.checksumBase = m.pcm;
    prog.checksumSize = 4096 * 2;
    return prog;
}

} // namespace workloads
} // namespace lbp
