file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_fastpath.dir/bench_sim_fastpath.cc.o"
  "CMakeFiles/bench_sim_fastpath.dir/bench_sim_fastpath.cc.o.d"
  "bench_sim_fastpath"
  "bench_sim_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
