/**
 * @file
 * Predicate-promotion tests: safe guard removal, speculative-load
 * marking, escape analysis (live-out values), and semantics.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "transform/if_convert.hh"
#include "transform/promote.hh"
#include "workloads/input_data.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** Hyperblock loop where a guarded chain feeds a guarded store. */
Program
promotableProgram()
{
    Program prog;
    const auto data = prog.allocData(256 * 4);
    for (int i = 0; i < 256; ++i)
        prog.poke32(data + 4 * i, (i * 13) % 40 - 20);
    prog.checksumBase = data;
    prog.checksumSize = 256 * 4;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    b.forLoop(0, 100, 1, [&](RegId i) {
        const RegId idx = b.and_(R(i), I(255));
        const RegId i4 = b.shl(R(idx), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        workloads::ifThen(b, CmpCond::GT, R(v), I(0), [&] {
            // A compute chain whose intermediates are promotable;
            // the store must stay guarded.
            const RegId t1 = b.mul(R(v), I(3));
            const RegId t2 = b.add(R(t1), I(7));
            const RegId t3 = b.shra(R(t2), I(1));
            b.storeW(R(dp), R(i4), R(t3));
        });
    });
    b.ret({});
    return prog;
}

TEST(Promote, ChainPromotedStoreStaysGuarded)
{
    Program prog = promotableProgram();
    Interpreter pre(prog);
    const auto before = pre.run();

    ifConvertLoops(prog);
    auto st = promoteOperations(prog);
    EXPECT_GE(st.promoted, 2);

    // Count remaining guarded non-preddef ops: at least the store.
    int guardedStores = 0, guardedAlu = 0;
    for (const auto &bb : prog.functions[prog.entryFunc].blocks) {
        if (bb.dead)
            continue;
        for (const auto &op : bb.ops) {
            if (!op.hasGuard() || op.op == Opcode::PRED_DEF)
                continue;
            if (isStore(op.op))
                ++guardedStores;
            else if (!op.isBranchOp())
                ++guardedAlu;
        }
    }
    EXPECT_GE(guardedStores, 1);

    Interpreter post(prog);
    EXPECT_EQ(post.run().checksum, before.checksum);
}

TEST(Promote, EscapingValueNotPromoted)
{
    // acc is conditionally updated and live across iterations; its
    // guarded write must not be promoted.
    Program prog;
    const auto data = prog.allocData(64 * 4);
    for (int i = 0; i < 64; ++i)
        prog.poke32(data + 4 * i, i % 5 - 2);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 64, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        workloads::ifThen(b, CmpCond::GT, R(v), I(0), [&] {
            b.addTo(acc, R(acc), R(v));
        });
    });
    b.ret({R(acc)});
    Interpreter pre(prog);
    const auto before = pre.run();
    ifConvertLoops(prog);
    promoteOperations(prog);
    // The add to acc must still be guarded.
    bool accWriteGuarded = false;
    for (const auto &bb : prog.functions[prog.entryFunc].blocks) {
        if (bb.dead)
            continue;
        for (const auto &op : bb.ops) {
            if (op.op == Opcode::ADD && op.writesReg(acc) &&
                op.hasGuard()) {
                accWriteGuarded = true;
            }
        }
    }
    EXPECT_TRUE(accWriteGuarded);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
}

TEST(Promote, LoadsBecomeSpeculative)
{
    Program prog;
    const auto data = prog.allocData(256 * 4);
    const auto table = prog.allocData(64 * 4);
    for (int i = 0; i < 256; ++i)
        prog.poke32(data + 4 * i, i % 7 - 3);
    for (int i = 0; i < 64; ++i)
        prog.poke32(table + 4 * i, i * 2);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId tp = b.iconst(table);
    const RegId acc = b.iconst(0);
    const RegId tmp = b.iconst(0);
    b.forLoop(0, 100, 1, [&](RegId i) {
        const RegId idx = b.and_(R(i), I(255));
        const RegId i4 = b.shl(R(idx), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        workloads::ifThen(b, CmpCond::GT, R(v), I(0), [&] {
            const RegId o4 = b.shl(R(b.and_(R(v), I(63))), I(2));
            b.binTo(Opcode::MOV, tmp, R(o4), R(o4));
        });
        (void)tp;
    });
    b.ret({R(acc)});
    // Build a guarded load manually to make the promotion target
    // explicit.
    Program prog2 = promotableProgram();
    ifConvertLoops(prog2);
    // Inject: find a guarded MUL and turn the op before the store
    // into a guarded load... simpler: scan the promoted program from
    // the chain test for speculative marks after promotion.
    auto st = promoteOperations(prog2);
    (void)st;
    int specLoads = 0;
    for (const auto &fn : prog2.functions)
        for (const auto &bb : fn.blocks)
            for (const auto &op : bb.ops)
                if (isLoad(op.op) && op.speculative)
                    ++specLoads;
    // The promotable program's loads were unguarded to begin with;
    // speculative count may be zero. This asserts the mechanism does
    // not mark unguarded loads.
    for (const auto &fn : prog2.functions) {
        for (const auto &bb : fn.blocks) {
            for (const auto &op : bb.ops) {
                if (isLoad(op.op) && op.speculative) {
                    EXPECT_FALSE(op.hasGuard());
                }
            }
        }
    }
}

TEST(Promote, GuardedLoadPromotionEndToEnd)
{
    // A guarded table lookup consumed only under the same guard:
    // promotion must lift it to a speculative load and keep results
    // identical.
    Program prog;
    const auto data = prog.allocData(128 * 4);
    const auto table = prog.allocData(64 * 4);
    for (int i = 0; i < 128; ++i)
        prog.poke32(data + 4 * i, i % 11 - 5);
    for (int i = 0; i < 64; ++i)
        prog.poke32(table + 4 * i, 100 + i);
    prog.checksumBase = data;
    prog.checksumSize = 128 * 4;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId tp = b.iconst(table);
    b.forLoop(0, 128, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        workloads::ifThen(b, CmpCond::GT, R(v), I(0), [&] {
            const RegId o4 = b.shl(R(v), I(2));
            const RegId o4c = b.min(R(o4), I(63 * 4));
            const RegId t = b.loadW(R(tp), R(o4c));
            b.storeW(R(dp), R(i4), R(t));
        });
    });
    b.ret({});
    Interpreter pre(prog);
    const auto before = pre.run();
    ifConvertLoops(prog);
    auto st = promoteOperations(prog);
    EXPECT_GE(st.speculativeLoads, 1);
    Interpreter post(prog);
    EXPECT_EQ(post.run().checksum, before.checksum);
}

} // namespace
} // namespace lbp
