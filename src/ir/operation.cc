#include "ir/operation.hh"

namespace lbp
{

int
Operation::numRegSrcs() const
{
    int n = 0;
    for (const auto &s : srcs)
        if (s.isReg())
            ++n;
    return n;
}

bool
Operation::writesReg(RegId r) const
{
    for (const auto &d : dsts)
        if (d.isReg() && d.asReg() == r)
            return true;
    return false;
}

bool
Operation::readsReg(RegId r) const
{
    for (const auto &s : srcs)
        if (s.isReg() && s.asReg() == r)
            return true;
    return false;
}

Operation
makeBinary(Opcode op, RegId dst, Operand a, Operand b)
{
    Operation o;
    o.op = op;
    o.dsts = {Operand::reg(dst)};
    o.srcs = {a, b};
    return o;
}

Operation
makeUnary(Opcode op, RegId dst, Operand a)
{
    Operation o;
    o.op = op;
    o.dsts = {Operand::reg(dst)};
    o.srcs = {a};
    return o;
}

Operation
makeCmp(RegId dst, CmpCond c, Operand a, Operand b)
{
    Operation o;
    o.op = Opcode::CMP;
    o.cond = c;
    o.dsts = {Operand::reg(dst)};
    o.srcs = {a, b};
    return o;
}

Operation
makeLoad(Opcode op, RegId dst, Operand base, Operand offset)
{
    Operation o;
    o.op = op;
    o.dsts = {Operand::reg(dst)};
    o.srcs = {base, offset};
    return o;
}

Operation
makeStore(Opcode op, Operand base, Operand offset, Operand value)
{
    Operation o;
    o.op = op;
    o.srcs = {base, offset, value};
    return o;
}

Operation
makePredDef(PredDefKind k0, PredId p0, PredDefKind k1, PredId p1,
            CmpCond c, Operand a, Operand b)
{
    Operation o;
    o.op = Opcode::PRED_DEF;
    o.cond = c;
    o.defKind0 = k0;
    o.defKind1 = k1;
    o.dsts = {Operand::pred(p0)};
    if (k1 != PredDefKind::NONE)
        o.dsts.push_back(Operand::pred(p1));
    o.srcs = {a, b};
    return o;
}

Operation
makeBr(CmpCond c, Operand a, Operand b, BlockId target)
{
    Operation o;
    o.op = Opcode::BR;
    o.cond = c;
    o.srcs = {a, b};
    o.target = target;
    return o;
}

Operation
makeJump(BlockId target)
{
    Operation o;
    o.op = Opcode::JUMP;
    o.target = target;
    return o;
}

} // namespace lbp
