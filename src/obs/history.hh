/**
 * @file
 * Bench-history timeline: an append-only jsonl store of flattened
 * observability documents plus the statistical regression gate that
 * judges a fresh run against its own past.
 *
 * Store. Each line of BENCH_history.jsonl is one compact JSON record:
 *
 *   {"history_schema": 1, "git_sha": "<sha>", "source": "fig7",
 *    "machine": {...}, "values": {"<flat.key>": <leaf>, ...}}
 *
 * `source` identifies the producing document family (a bench doc's
 * "bench" name, or "registry:<workload>" for a registry dump) —
 * records only ever compare against records of the same source.
 * `values` holds every scalar leaf of the source document, flattened
 * to dotted keys ('.' inside a real key segment is escaped as "\.",
 * array elements become decimal index segments). Identity blocks —
 * "machine", "git_sha", "schema_version", "meta" — are carried or
 * dropped but never flattened into values; histogram "bins" arrays
 * are dropped (their quantile summaries are the longitudinal signal).
 *
 * Gate. `checkAgainstHistory` replaces the blind exact-diff for
 * timing-like keys with a per-key baseline computed from the last N
 * records of the same source:
 *
 *   baseline  median of the key's last `window` finite values
 *   spread    MAD (median absolute deviation) of that window
 *   threshold max(absTol, relTol*|median|, madK * 1.4826 * MAD)
 *
 * A timing key regresses when it moves past the threshold in its bad
 * direction (higher for "*.ms"/"*Ms", lower for "speedup");
 * past-threshold movement in the good direction is reported as
 * Improved and passes. Everything else — counters, checksums,
 * fractions, energies — must equal the most recent record exactly,
 * same as the lbp_stats diff policy.
 *
 * Null/NaN policy (shared with diffRegistries): a non-finite gauge
 * serializes as JSON `null` and is poison — a null current value
 * fails the gate (NonFinite) no matter what the baseline holds, and a
 * key that disappears outright is a distinct failure (MissingKey).
 * The two conditions are never conflated.
 *
 * Window edge cases: with no baseline record holding a key the key
 * passes as NoBaseline (there is nothing to regress against); with a
 * single record the MAD is zero and the gate degenerates to the
 * rel/abs thresholds around that one sample.
 */

#ifndef LBP_OBS_HISTORY_HH
#define LBP_OBS_HISTORY_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "obs/version.hh"

namespace lbp
{
namespace obs
{

/**
 * Flatten every scalar leaf of @p doc into (dotted-key, value) pairs
 * in document order. Identity roots ("machine", "git_sha",
 * "schema_version", "meta", "history_schema") and histogram "bins"
 * arrays are skipped. Key segments containing '.' or '\' are escaped
 * ("\." / "\\") so distinct nestings can never collide.
 */
std::vector<std::pair<std::string, Json>>
flattenLeaves(const Json &doc);

/** Join one escaped path segment onto a flattened prefix. */
std::string flatJoin(const std::string &prefix,
                     const std::string &segment);

/**
 * The document family a dump belongs to: a bench document's "bench"
 * name, "registry:<workload>" (or plain "registry") for a registry
 * dump, "doc" otherwise.
 */
std::string docSource(const Json &doc);

/** One appended line of the history store. */
struct HistoryRecord
{
    int schema = kHistorySchemaVersion;
    std::string gitSha;
    std::string source;
    Json machine;  ///< identity block (Null when the doc had none)
    std::vector<std::pair<std::string, Json>> values;

    const Json *find(const std::string &key) const;
};

/**
 * Build the record for @p doc: flatten the leaves, lift the identity
 * blocks, and stamp the running binary's git SHA (preferring the
 * document's own stamp when present — the doc knows which build
 * produced its numbers). @p sourceOverride replaces docSource().
 */
HistoryRecord makeHistoryRecord(const Json &doc,
                                const std::string &sourceOverride = "");

Json historyRecordToJson(const HistoryRecord &rec);

/** Parse one record; returns false and sets @p error on mismatch. */
bool historyRecordFromJson(const Json &line, HistoryRecord &rec,
                           std::string &error);

/** Append one compact line to @p path (creating the file). Returns
 *  false and sets @p error on I/O failure. */
bool appendHistory(const std::string &path, const HistoryRecord &rec,
                   std::string &error);

/**
 * Load every record of @p path, oldest first. A missing file is an
 * empty history, not an error; a malformed line is an error naming
 * its line number.
 */
std::vector<HistoryRecord> loadHistory(const std::string &path,
                                       std::string &error);

/**
 * Rewrite @p path keeping only the newest @p keep records per source
 * (append order is age: later lines are newer). @p removed, when
 * non-null, receives the number of records dropped. Returns false and
 * sets @p error on I/O failure, a malformed store, or keep < 1; a
 * missing file prunes to nothing and succeeds.
 */
bool pruneHistory(const std::string &path, int keep,
                  std::string &error, int *removed = nullptr);

/** How the gate treats one flattened key. */
enum class KeyClass
{
    Identity, ///< machine-dependent knob; never compared
    Timing,   ///< wall-clock-like; median+MAD window
    Exact,    ///< counter/fraction/energy/string; exact vs latest
    PerPoint, ///< array-indexed wall-clock (points.N.fastMs): one
              ///< scheduler preemption spikes a single sub-ms point
              ///< 2-5x on a shared host, so these stay diagnostic —
              ///< kept in the doc for `lbp_stats diff`, but never
              ///< written to history records and never gated; the
              ///< sweep-aggregate Ms keys carry the regression signal
};

KeyClass classifyKey(const std::string &key);

struct CheckPolicy
{
    int window = 8;      ///< timing baseline: last N finite samples
    double relTol = 0.10; ///< relative threshold vs |median|
    double absTol = 0.05; ///< absolute threshold floor
    double madK = 4.0;    ///< robust-sigma multiplier (x 1.4826 MAD)
};

enum class Verdict
{
    Ok,            ///< within threshold / exactly equal
    Improved,      ///< past threshold in the good direction (passes)
    Regressed,     ///< past threshold in the bad direction (fails)
    ExactMismatch, ///< exact-class key differs from latest (fails)
    NonFinite,     ///< current value is null, i.e. NaN/inf (fails)
    MissingKey,    ///< latest record has it, current doc lost it (fails)
    NewKey,        ///< current doc introduces it (passes, noted)
    NoBaseline,    ///< no record holds the key yet (passes, noted)
};

const char *verdictName(Verdict v);
bool verdictFails(Verdict v);

struct KeyVerdict
{
    std::string key;
    KeyClass cls = KeyClass::Exact;
    Verdict verdict = Verdict::Ok;
    double baseline = 0;  ///< window median (Timing) / latest (Exact)
    double spread = 0;    ///< window MAD (Timing only)
    double current = 0;
    double threshold = 0; ///< the tripwire actually applied
    int samples = 0;      ///< finite baseline samples used
    std::string detail;   ///< human rendering ("12.1ms vs 9.8±0.3ms")
};

/** The gate's machine-readable outcome. */
struct CheckReport
{
    std::string source;
    int baselineRecords = 0;  ///< same-source records consulted
    std::vector<KeyVerdict> verdicts;  ///< every compared key

    bool failed() const;

    /** Failing verdicts first, then notable ones, then Ok count. */
    void print(std::ostream &os, bool verbose = false) const;

    Json toJson() const;
};

/**
 * Judge @p currentDoc against the same-source records of @p history
 * under @p policy. See the file comment for the per-class rules.
 */
CheckReport checkAgainstHistory(const std::vector<HistoryRecord> &history,
                                const Json &currentDoc,
                                const CheckPolicy &policy = {});

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_HISTORY_HH
