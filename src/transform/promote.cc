#include "transform/promote.hh"

#include <set>

#include "analysis/liveness.hh"
#include "support/logging.hh"

namespace lbp
{

PromoteStats
promoteOperations(Function &fn)
{
    PromoteStats st;
    Liveness live(fn);
    for (auto &bb : fn.blocks) {
        if (bb.dead)
            continue;

        // Live-out across *exit* edges only: the backedge's
        // contribution to liveness is handled separately via the
        // upward-exposed-read check below (a conservative liveOut
        // that includes the self-loop would veto every guarded loop
        // temporary).
        std::set<RegId> exitLive;
        for (BlockId s : bb.successors()) {
            if (s == bb.id)
                continue;
            const auto &in = live.liveIn(s);
            exitLive.insert(in.begin(), in.end());
        }

        for (size_t i = 0; i < bb.ops.size(); ++i) {
            Operation &op = bb.ops[i];
            if (!op.hasGuard())
                continue;
            switch (op.op) {
              case Opcode::PRED_DEF:
              case Opcode::CALL:
              case Opcode::RET:
              case Opcode::DIV:
              case Opcode::REM:
                continue;
              default:
                break;
            }
            if (isStore(op.op) || op.isBranchOp())
                continue;
            if (op.dsts.size() != 1 || !op.dsts[0].isReg())
                continue;
            const RegId r = op.dsts[0].asReg();
            const PredId p = op.guard;

            // (a) No reads of r before this write in the block: a
            // next-iteration consumer would be such a read, so this
            // also covers the loop-carried case.
            bool ok = true;
            for (size_t j = 0; j < i && ok; ++j) {
                if (bb.ops[j].readsReg(r))
                    ok = false;
            }

            // (b) Every later in-block reader (until the next
            // re-kill) is guarded by the same predicate.
            bool rewritten = false;
            for (size_t j = i + 1; j < bb.ops.size() && ok; ++j) {
                const Operation &later = bb.ops[j];
                if (later.readsReg(r) && later.guard != p)
                    ok = false;
                if (later.writesReg(r)) {
                    if (!later.hasGuard() || later.guard == p) {
                        rewritten = true;
                        break;
                    }
                    // A differently-guarded write may or may not
                    // execute: the spurious value could survive it.
                    ok = false;
                }
            }
            if (!ok)
                continue;

            // (c) The spurious value must not escape through a loop
            // exit (unless a later write re-kills it on every path).
            if (!rewritten && exitLive.count(r))
                continue;

            op.guard = kNoPred;
            ++st.promoted;
            if (isLoad(op.op)) {
                op.speculative = true;
                ++st.speculativeLoads;
            }
        }
    }
    return st;
}

PromoteStats
promoteOperations(Program &prog)
{
    PromoteStats st;
    for (auto &fn : prog.functions) {
        auto s = promoteOperations(fn);
        st.promoted += s.promoted;
        st.speculativeLoads += s.speculativeLoads;
    }
    return st;
}

} // namespace lbp
