/**
 * @file
 * Figure 3 (a/b/c) and the §4.3 sensitivity fractions: predication
 * characteristics over the scheduled loop bodies of the whole
 * benchmark set under the aggressive configuration.
 *
 *  3a — cumulative distribution of predicate consumers per define
 *       (paper: 97% of predicates guard <= 3 operations);
 *  3b — cumulative distribution of predicate live-range durations in
 *       cycles (paper: >3% of live ranges exceed 8 cycles);
 *  3c — cumulative distribution over loops of the maximum number of
 *       simultaneously live predicates (paper: 4 predicates cover 99%
 *       of dynamic iterations of the 122 predicated loops).
 *
 * Section 2 reports the §4.3 fractions: dynamic operations sensitive
 * to predicates in predicated loops (paper: 21.5%) and across all
 * bufferable loops (paper: 9.9%), plus slot-lowering statistics.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace lbp;
using namespace lbp::bench;

namespace
{

void
printCdf(const char *title, const Histogram &h, int maxShown)
{
    std::printf("%s\n", title);
    if (h.empty()) {
        std::printf("  (empty)\n");
        return;
    }
    for (const auto &[v, c] : h.cdf()) {
        if (v > maxShown)
            break;
        std::printf("  <=%3lld : %6.2f%%\n",
                    static_cast<long long>(v), c * 100.0);
    }
    std::printf("  max observed: %lld, mean %.2f\n",
                static_cast<long long>(h.maxValue()), h.mean());
}

} // namespace

int
main()
{
    std::printf("=== Figure 3: media application predication ===\n\n");

    PredicationMetrics total;
    SlotLoweringStats slotTotal;
    for (const auto &name : benchNames()) {
        auto &cr = compileBench(name, OptLevel::Aggressive);
        auto m = collectPredicationMetrics(cr);
        mergeMetrics(total, m);
        const auto &s = cr.slotStats;
        slotTotal.blocksAttempted += s.blocksAttempted;
        slotTotal.blocksLowered += s.blocksLowered;
        slotTotal.blocksFailedConflict += s.blocksFailedConflict;
        slotTotal.blocksFailedCapacity += s.blocksFailedCapacity;
        slotTotal.definesRewritten += s.definesRewritten;
        slotTotal.definesCloned += s.definesCloned;
        slotTotal.predsKeptInRegisters += s.predsKeptInRegisters;
        slotTotal.sensitiveOps += s.sensitiveOps;
    }

    std::printf("modulo-candidate loops: %d, predicated: %d "
                "(paper: 564 candidates, 122 predicated)\n\n",
                total.candidateLoops, total.predicatedLoops);

    printCdf("Figure 3a — predicate consumers per define (static)",
             total.consumersPerDefineStatic, 16);
    std::printf("\n");
    printCdf("Figure 3a — predicate consumers per define (dynamic)",
             total.consumersPerDefineDynamic, 16);
    std::printf("\n");
    printCdf("Figure 3b — predicate live-range duration, cycles "
             "(static)", total.liveRangeStatic, 16);
    std::printf("\n");
    printCdf("Figure 3b — predicate live-range duration, cycles "
             "(dynamic)", total.liveRangeDynamic, 16);
    std::printf("\n");
    printCdf("Figure 3c — max simultaneously-live predicates per loop "
             "(by dynamic iterations)", total.overlapPerLoop, 8);

    std::printf("\n=== Section 4.3 sensitivity fractions ===\n");
    std::printf("dynamic ops sensitive, predicated loops:  %s "
                "(paper: 21.5%%)\n",
                pct(total.sensitiveFracPredicated()).c_str());
    std::printf("dynamic ops sensitive, bufferable loops:  %s "
                "(paper: 9.9%%)\n",
                pct(total.sensitiveFracBufferable()).c_str());

    std::printf("\n=== Slot-based predication lowering (4.2) ===\n");
    std::printf("loop bodies attempted/lowered: %d/%d "
                "(conflict fails: %d, capacity fails: %d)\n",
                slotTotal.blocksAttempted, slotTotal.blocksLowered,
                slotTotal.blocksFailedConflict,
                slotTotal.blocksFailedCapacity);
    std::printf("defines rewritten: %d, cloned: %d, predicates kept "
                "in registers (cross-block): %d\n",
                slotTotal.definesRewritten, slotTotal.definesCloned,
                slotTotal.predsKeptInRegisters);
    return 0;
}
