/**
 * @file
 * Opcode and comparison-condition enumerations, with classification
 * helpers used by the verifier, scheduler, and simulator.
 */

#ifndef LBP_IR_OPCODE_HH
#define LBP_IR_OPCODE_HH

#include <cstdint>
#include <string>

namespace lbp
{

/**
 * Operation codes for the lbp VLIW IR.
 *
 * The set mirrors a DSP-flavoured 32-bit ISA: integer ALU ops including
 * the saturating arithmetic the paper notes is provided by intrinsic
 * emulation, a small floating-point set, byte/half/word memory ops,
 * predicate defines with HPL-PD/IMPACT semantics (Table 2), branches
 * including the special counted-loop form, and the four loop-buffer
 * management operations of Table 3.
 */
enum class Opcode : std::uint8_t
{
    // Integer ALU.
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR, SHL, SHR, SHRA,
    MOV, ABS, MIN, MAX,
    SATADD, SATSUB,         // saturating 16-bit arithmetic intrinsics
    CMP,                    // compare into a general register (0/1)
    SELECT,                 // dst = src0 ? src1 : src2 (cond-move family)

    // Floating point (double precision bit-cast in 64-bit registers).
    FADD, FSUB, FMUL, FDIV, ITOF, FTOI,

    // Memory. Address is src0 + src1 (src1 usually immediate).
    LD_B, LD_H, LD_W,       // sign-extending loads
    ST_B, ST_H, ST_W,

    // Predicate define (Table 2). Up to two predicate destinations.
    PRED_DEF,

    // Control flow.
    BR,                     // conditional: compare src0 cond src1
    JUMP,                   // unconditional (guardable => predicated jump)
    BR_CLOOP,               // counted loop-back branch (hardware count)
    BR_WLOOP,               // while-loop loop-back branch (conditional)
    CALL,
    RET,

    // Loop buffer management (Table 3). Branch-unit operations.
    REC_CLOOP, REC_WLOOP, EXEC_CLOOP, EXEC_WLOOP,

    NOP,

    NUM_OPCODES
};

/** Comparison conditions for CMP / BR / PRED_DEF. */
enum class CmpCond : std::uint8_t
{
    EQ, NE, LT, LE, GT, GE, LTU, GEU,
    TRUE_,   // always true (canonical predicate set)
    FALSE_,  // always false (canonical predicate clear)
};

/**
 * Predicate define destination kinds (Table 2 of the paper).
 * NONE marks an unused second destination.
 */
enum class PredDefKind : std::uint8_t
{
    NONE, UT, UF, OT, OF, AT, AF, CT, CF
};

/** Functional-unit classes of the modeled machine (Figure 6). */
enum class UnitClass : std::uint8_t
{
    IALU, IMUL, MEM, BR, FPU, PRED,
    NUM_CLASSES
};

const char *opcodeName(Opcode op);
const char *condName(CmpCond c);
const char *predDefKindName(PredDefKind k);
const char *unitClassName(UnitClass u);

/** True for branches, calls, returns, and buffer-management ops. */
bool isControl(Opcode op);

/** True for ops with a branch target operand. */
bool isBranch(Opcode op);

/** True for the four Table-3 buffer management ops. */
bool isBufferOp(Opcode op);

/** True for loads. */
bool isLoad(Opcode op);

/** True for stores. */
bool isStore(Opcode op);

/** Functional-unit class the opcode executes on. */
UnitClass unitClassOf(Opcode op);

/** Execution latency in cycles (paper §7 machine description). */
int latencyOf(Opcode op);

/** Evaluate a comparison condition on two signed 64-bit values. */
bool evalCond(CmpCond c, std::int64_t a, std::int64_t b);

/** The condition testing the opposite outcome. */
CmpCond negateCond(CmpCond c);

} // namespace lbp

#endif // LBP_IR_OPCODE_HH
