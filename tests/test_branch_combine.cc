/**
 * @file
 * Branch-combining tests: summary predicate construction, decode
 * block dispatch, eligibility constraints (stores / live registers
 * between exit and block end), and semantics.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "transform/branch_combine.hh"
#include "transform/if_convert.hh"
#include "workloads/input_data.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/**
 * A loop with two rare conditional breaks to distinct targets; after
 * if-conversion they become two predicated side exits, the branch
 * combiner's input shape.
 */
Program
twoExitLoop(std::int64_t breakA, std::int64_t breakB)
{
    Program prog;
    const auto data = prog.allocData(600 * 4);
    for (int i = 0; i < 600; ++i)
        prog.poke32(data + 4 * i, i);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    const RegId i = b.iconst(0);
    const BlockId head = b.makeBlock("head");
    const BlockId exitA = b.makeBlock("exitA");
    const BlockId exitB = b.makeBlock("exitB");
    const BlockId done = b.makeBlock("done");
    b.fallTo(head);
    b.at(head);
    {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        b.addTo(acc, R(acc), R(v));
        b.br(CmpCond::GT, R(acc), I(breakA), exitA);
        const BlockId c2 = b.makeBlock();
        b.fallTo(c2);
        b.at(c2);
        b.br(CmpCond::EQ, R(v), I(breakB), exitB);
        const BlockId c3 = b.makeBlock();
        b.fallTo(c3);
        b.at(c3);
        b.addTo(i, R(i), I(1));
        b.br(CmpCond::LT, R(i), I(500), head);
        b.fallTo(done);
    }
    b.at(exitA);
    b.addTo(acc, R(acc), I(1000000));
    b.jump(done);
    b.at(exitB);
    b.addTo(acc, R(acc), I(2000000));
    b.jump(done);
    b.at(done);
    b.ret({R(acc)});
    return prog;
}

TEST(BranchCombine, CombinesTwoExits)
{
    Program prog = twoExitLoop(1 << 26, -1); // exits never taken
    Interpreter pre(prog);
    const auto before = pre.run();

    auto ifc = ifConvertLoops(prog);
    ASSERT_EQ(ifc.loopsConverted, 1);
    ASSERT_EQ(ifc.sideExits, 2);
    auto st = combineBranches(prog);
    EXPECT_EQ(st.loopsCombined, 1);
    EXPECT_EQ(st.exitsCombined, 2);
    VerifyOptions vo;
    vo.allowInternalBranches = true;
    verifyOrDie(prog, vo);

    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);

    // Exactly one guarded jump (the summary) remains in the loop.
    int guardedJumps = 0;
    for (const auto &bb : prog.functions[prog.entryFunc].blocks) {
        if (bb.dead || !bb.isHyperblock)
            continue;
        for (const auto &op : bb.ops)
            if (op.op == Opcode::JUMP && op.hasGuard())
                ++guardedJumps;
    }
    EXPECT_EQ(guardedJumps, 1);
}

class BranchCombineExitTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(BranchCombineExitTest, TakenExitsDispatchCorrectly)
{
    // Sweep which exit actually fires; the decode block must route to
    // the right target in every case.
    const auto [a, bKey] = GetParam();
    Program prog = twoExitLoop(a, bKey);
    Interpreter pre(prog);
    const auto before = pre.run();

    ifConvertLoops(prog);
    combineBranches(prog);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns)
        << "breakA=" << a << " breakB=" << bKey;
}

INSTANTIATE_TEST_SUITE_P(
    ExitMatrix, BranchCombineExitTest,
    ::testing::Values(std::make_pair(1 << 26, -1), // no exit
                      std::make_pair(500, -1),     // exit A early
                      std::make_pair(1 << 26, 37), // exit B
                      std::make_pair(3000, 20)));  // both armed

TEST(BranchCombine, SingleExitNotCombined)
{
    // Below the minExits threshold: nothing happens.
    Program prog = twoExitLoop(1 << 26, -1);
    ifConvertLoops(prog);
    BranchCombineOptions opts;
    opts.minExits = 3;
    auto st = combineBranches(prog, opts);
    EXPECT_EQ(st.loopsCombined, 0);
}

TEST(BranchCombine, StoreAfterExitBlocksCombining)
{
    // A store between the side exits and the block end makes the
    // exits ineligible (the store would execute while an exit is
    // pending).
    Program prog;
    const auto data = prog.allocData(600 * 4);
    for (int i = 0; i < 600; ++i)
        prog.poke32(data + 4 * i, i % 9);
    prog.checksumBase = data;
    prog.checksumSize = 600 * 4;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    const RegId i = b.iconst(0);
    const BlockId head = b.makeBlock("head");
    const BlockId out = b.makeBlock("out");
    const BlockId out2 = b.makeBlock("out2");
    b.fallTo(head);
    b.at(head);
    const RegId i4 = b.shl(R(i), I(2));
    const RegId v = b.loadW(R(dp), R(i4));
    b.br(CmpCond::GT, R(v), I(7), out);
    const BlockId c2 = b.makeBlock();
    b.fallTo(c2);
    b.at(c2);
    b.br(CmpCond::EQ, R(v), I(5), out2);
    const BlockId c3 = b.makeBlock();
    b.fallTo(c3);
    b.at(c3);
    b.addTo(acc, R(acc), R(v));
    b.storeW(R(dp), R(i4), R(acc)); // store AFTER the exits
    b.addTo(i, R(i), I(1));
    b.br(CmpCond::LT, R(i), I(400), head);
    b.fallTo(out);
    b.at(out);
    b.ret({R(acc)});
    b.at(out2);
    b.ret({R(acc)});

    Interpreter pre(prog);
    const auto before = pre.run();
    ifConvertLoops(prog);
    auto st = combineBranches(prog);
    EXPECT_EQ(st.loopsCombined, 0); // stores block it
    Interpreter post(prog);
    EXPECT_EQ(post.run().checksum, before.checksum);
}

} // namespace
} // namespace lbp
