/**
 * @file
 * The end-to-end compilation pipeline (paper §3/§7):
 *
 *   profile -> inline -> classic opts
 *     -> [Aggressive] peel -> if-convert -> collapse -> if-convert
 *        -> branch-combine -> promote -> classic opts
 *     -> counted-loop conversion
 *     -> schedule (modulo for simple loop bodies, list otherwise)
 *     -> [Aggressive+SLOT] slot-predication lowering
 *     -> buffer allocation -> link
 *
 * Two configurations mirror the paper's comparison: `Traditional`
 * (classic optimization only — no predication, no nested-loop
 * transformations) and `Aggressive` (the full hyperblock stack).
 * Every stage is checked: the transformed IR must reproduce the
 * original program's interpreter checksum.
 */

#ifndef LBP_CORE_COMPILER_HH
#define LBP_CORE_COMPILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/buffer_alloc.hh"
#include "core/slot_predication.hh"
#include "mach/machine.hh"
#include "obs/loop_report.hh"
#include "profile/profile.hh"
#include "sched/schedule.hh"
#include "transform/branch_combine.hh"
#include "transform/counted_loop.hh"
#include "transform/if_convert.hh"
#include "transform/inliner.hh"
#include "transform/loop_collapse.hh"
#include "transform/loop_peel.hh"
#include "transform/promote.hh"
#include "transform/reassociate.hh"

namespace lbp
{

namespace obs
{
class Registry;
}

/** Optimization level. */
enum class OptLevel
{
    Traditional, ///< classic opts + modulo scheduling + buffering
    Aggressive,  ///< adds hyperblock formation, peel, collapse, ...
};

struct CompileOptions
{
    OptLevel level = OptLevel::Aggressive;
    bool doInline = true;
    bool moduloSchedule = true;
    bool slotLowering = true;   ///< only meaningful for Aggressive
    int bufferOps = 256;

    /**
     * Paper §7.1 extension: architected rotating registers remove the
     * modulo-variable-expansion growth of buffered kernel images.
     */
    bool rotatingRegisters = false;

    /**
     * Paper §7.3 extension: a per-slot predicate activation queue of
     * this depth lets standing-predicate live ranges span up to
     * (1 + depth) initiation intervals before falling back to the
     * register file.
     */
    int predQueueDepth = 0;
    bool verifyStages = true;   ///< re-interpret after transforms
    std::vector<std::int64_t> profileArgs;

    /**
     * Optional pipeline profiling: when set, every stage publishes a
     * scoped wall-clock timing ("compile.phase.<NN_stage>.ms") and
     * its static op-count delta into this registry. Null (the
     * default) keeps the pipeline observability-free.
     */
    obs::Registry *obsRegistry = nullptr;
};

/** Everything the pipeline produces. */
struct CompileResult
{
    Program ir;            ///< transformed IR (owns the program)
    SchedProgram code;     ///< scheduled code (points into `ir`)
    Machine machine;

    std::uint64_t goldenChecksum = 0;
    std::uint64_t transformedChecksum = 0;

    // Per-stage statistics.
    InlineStats inlineStats;
    PeelStats peelStats;
    IfConvertStats ifConvertStats;
    CollapseStats collapseStats;
    BranchCombineStats branchCombineStats;
    PromoteStats promoteStats;
    ReassociateStats reassocStats;
    CountedLoopStats countedLoopStats;
    SlotLoweringStats slotStats;
    BufferAllocResult bufferAlloc;

    /**
     * Per-loop decision log: every transform attempt, the scheduler's
     * modulo verdict, and buffer allocation's terminal fate, keyed by
     * the stable loop identity "function/headerBlock". Joined with
     * simulator residency stats by obs::buildLoopScorecard.
     */
    obs::LoopDecisionLog loopLog;

    int originalOps = 0;
    int finalOps = 0;      ///< static IR ops after transforms
    int scheduledOps = 0;  ///< static code size (compressed encoding)
    int moduloLoops = 0;   ///< loop bodies successfully pipelined
    int simpleLoops = 0;   ///< simple loop bodies found at scheduling

    // CompileResult owns `ir`, and `code.ir` points at it, so the
    // struct must not be copied/moved by value after `code` is linked.
    CompileResult() = default;
    CompileResult(const CompileResult &) = delete;
    CompileResult &operator=(const CompileResult &) = delete;
};

/**
 * Run the pipeline. Throws (fatal) on a stage checksum mismatch when
 * verifyStages is set.
 */
void compileProgram(const Program &input, const CompileOptions &opts,
                    CompileResult &out);

/**
 * Re-run buffer allocation (and relink) for a different buffer size
 * without recompiling. Used by the buffer-size sweeps.
 */
void reallocateBuffers(CompileResult &result, int bufferOps);

} // namespace lbp

#endif // LBP_CORE_COMPILER_HH
