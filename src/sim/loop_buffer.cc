#include "sim/loop_buffer.hh"

#include "support/logging.hh"

namespace lbp
{

LoopBuffer::LoopBuffer(int capacityOps) : capacity_(capacityOps)
{
    LBP_ASSERT(capacityOps >= 0, "negative buffer capacity");
}

bool
LoopBuffer::isResident(const LoopKey &key) const
{
    return resident_.count(key) != 0;
}

void
LoopBuffer::record(const LoopKey &key, int bufAddr, int sizeOps,
                   std::vector<LoopKey> *evictedOut)
{
    LBP_ASSERT(bufAddr >= 0 && sizeOps > 0 &&
               bufAddr + sizeOps <= capacity_,
               "loop image does not fit the buffer: addr=", bufAddr,
               " size=", sizeOps, " cap=", capacity_);
    if (evictedOut)
        evictedOut->clear();
    // Invalidate overlapped images (and any stale image of this key).
    for (auto it = resident_.begin(); it != resident_.end();) {
        const bool overlaps = it->second.addr < bufAddr + sizeOps &&
                              bufAddr < it->second.addr +
                                            it->second.size;
        if (overlaps || it->first == key) {
            if (!(it->first == key)) {
                ++evictions_;
                if (evictedOut)
                    evictedOut->push_back(it->first);
            }
            it = resident_.erase(it);
        } else {
            ++it;
        }
    }
    resident_[key] = {bufAddr, sizeOps};
    ++recordings_;
}

void
LoopBuffer::clear()
{
    resident_.clear();
}

} // namespace lbp
