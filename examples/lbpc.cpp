/**
 * @file
 * `lbpc` — a command-line driver over the textual IR format: load a
 * .lbp program, compile it at the chosen level, and report
 * buffer/cycle statistics or dump the transformed IR.
 *
 * Usage:
 *   example_lbpc <file.lbp|-> [--trad] [--buffer N] [--dump]
 *                [--emit] [--rotating] [--arg N]...
 *
 * With "-" the program text is read from stdin. --dump prints the
 * transformed IR; --emit prints it in the parseable text format.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/compiler.hh"
#include "ir/printer.hh"
#include "ir/serialize.hh"
#include "sim/vliw_sim.hh"

using namespace lbp;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <file.lbp|-> [--trad] [--buffer N] "
                     "[--dump] [--emit] [--rotating] [--arg N]...\n",
                     argv[0]);
        return 2;
    }

    std::string text;
    if (std::strcmp(argv[1], "-") == 0) {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
    } else {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }

    CompileOptions opts;
    int bufferOps = 256;
    bool dump = false, emit = false;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trad")) {
            opts.level = OptLevel::Traditional;
        } else if (!std::strcmp(argv[i], "--buffer") && i + 1 < argc) {
            bufferOps = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--dump")) {
            dump = true;
        } else if (!std::strcmp(argv[i], "--emit")) {
            emit = true;
        } else if (!std::strcmp(argv[i], "--rotating")) {
            opts.rotatingRegisters = true;
        } else if (!std::strcmp(argv[i], "--arg") && i + 1 < argc) {
            opts.profileArgs.push_back(std::atoll(argv[++i]));
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }
    opts.bufferOps = bufferOps;

    try {
        Program prog = parseText(text);
        CompileResult cr;
        compileProgram(prog, opts, cr);

        if (dump) {
            print(std::cout, cr.ir);
            return 0;
        }
        if (emit) {
            std::cout << writeText(cr.ir);
            return 0;
        }

        SimConfig sc;
        sc.bufferOps = bufferOps;
        VliwSim sim(cr.code, sc);
        const SimStats st = sim.run(opts.profileArgs);

        std::printf("program   : %s (%s, %d-op buffer)\n",
                    cr.ir.name.c_str(),
                    opts.level == OptLevel::Aggressive ? "aggressive"
                                                       : "traditional",
                    bufferOps);
        std::printf("static ops: %d -> %d (scheduled %d)\n",
                    cr.originalOps, cr.finalOps, cr.scheduledOps);
        std::printf("loops     : %d simple, %d pipelined, "
                    "%d if-converted, %d collapsed, %d peeled\n",
                    cr.simpleLoops, cr.moduloLoops,
                    cr.ifConvertStats.loopsConverted,
                    cr.collapseStats.loopsCollapsed,
                    cr.peelStats.loopsPeeled);
        std::printf("cycles    : %llu (%llu branch-penalty)\n",
                    (unsigned long long)st.cycles,
                    (unsigned long long)st.branchPenaltyCycles);
        std::printf("fetch     : %llu ops, %.1f%% from the loop "
                    "buffer\n",
                    (unsigned long long)st.opsFetched,
                    100.0 * st.bufferFraction());
        std::printf("checksum  : %016llx (%s)\n",
                    (unsigned long long)st.checksum,
                    st.checksum == cr.goldenChecksum ? "verified"
                                                     : "MISMATCH");
        if (!st.returns.empty())
            std::printf("returned  : %lld\n",
                        (long long)st.returns[0]);
        return st.checksum == cr.goldenChecksum ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
