/**
 * @file
 * Loop peeling and predicated loop collapsing tests (paper Figures 1
 * and 2): eligibility heuristics, structural outcomes, and semantic
 * preservation, including the Add_Block-style walkthrough.
 */

#include <gtest/gtest.h>

#include "analysis/loop_info.hh"
#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "transform/classic_opts.hh"
#include "transform/if_convert.hh"
#include "transform/loop_collapse.hh"
#include "transform/loop_peel.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** outer(trips) { small inner(innerTrip) }, accumulate + store. */
Program
nestProgram(int outerTrip, int innerTrip, int innerPad)
{
    Program prog;
    const auto data = prog.allocData(1024);
    prog.checksumBase = data;
    prog.checksumSize = 1024;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    const RegId wpos = b.iconst(0);
    b.forLoop(0, outerTrip, 1, [&](RegId i) {
        b.forLoop(0, innerTrip, 1, [&](RegId j) {
            // A latency-3 recurrence (mul+and) keeps the inner II at
            // the level a real filter kernel has, so collapsing the
            // tiny outer remainder stays profitable.
            b.mulTo(acc, R(acc), I(3));
            b.binTo(Opcode::AND, acc, R(acc), I(0xffff));
            const RegId s = b.add(R(i), R(j));
            b.addTo(acc, R(acc), R(s));
            for (int k = 0; k < innerPad; ++k)
                b.binTo(Opcode::XOR, acc, R(acc), I(k + 1));
        });
        const RegId w4 = b.shl(R(wpos), I(2));
        b.storeW(R(dp), R(w4), R(acc));
        b.addTo(wpos, R(wpos), I(1));
        b.binTo(Opcode::AND, wpos, R(wpos), I(63));
    });
    b.ret({R(acc)});
    return prog;
}

TEST(Peel, SmallCountedLoopPeeled)
{
    Program prog = nestProgram(10, 3, 0); // 3 iters, tiny body
    Interpreter pre(prog);
    const auto before = pre.run();
    auto st = peelLoops(prog);
    EXPECT_EQ(st.loopsPeeled, 1);
    verifyOrDie(prog);
    // The nest is now a single loop.
    LoopInfo li(prog.functions[prog.entryFunc]);
    EXPECT_EQ(li.loops().size(), 1u);
    Interpreter post(prog);
    const auto after = post.run();
    EXPECT_EQ(before.checksum, after.checksum);
    EXPECT_EQ(before.returns, after.returns);
}

TEST(Peel, TripTooLargeRejected)
{
    Program prog = nestProgram(10, 7, 0); // 7 > 5
    auto st = peelLoops(prog);
    EXPECT_EQ(st.loopsPeeled, 0);
}

TEST(Peel, ExpansionBudgetRejected)
{
    // Paper heuristic: peel only when trip * body < 36 ops.
    Program prog = nestProgram(10, 4, 12); // ~15 ops x 4 = 60 > 36
    auto st = peelLoops(prog);
    EXPECT_EQ(st.loopsPeeled, 0);
}

TEST(Peel, TopLevelLoopNotPeeledByDefault)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 3, 1, [&](RegId i) { b.addTo(acc, R(acc), R(i)); });
    b.ret({R(acc)});
    auto st = peelLoops(prog); // requireParentLoop = true
    EXPECT_EQ(st.loopsPeeled, 0);
    PeelOptions opts;
    opts.requireParentLoop = false;
    auto st2 = peelLoops(prog, opts);
    EXPECT_EQ(st2.loopsPeeled, 1);
}

TEST(Collapse, AddBlockShape)
{
    // Figure 2: 8x8 nest with tiny outer remainder collapses into a
    // single 64-iteration loop.
    Program prog = nestProgram(8, 8, 0);
    Interpreter pre(prog);
    const auto before = pre.run();

    auto st = collapseLoops(prog);
    EXPECT_EQ(st.loopsCollapsed, 1);
    EXPECT_GT(st.outerOpsPulledIn, 0);
    VerifyOptions vo;
    vo.allowInternalBranches = true;
    verifyOrDie(prog, vo);

    // Result: one simple loop with trip 64 induction.
    LoopInfo li(prog.functions[prog.entryFunc]);
    ASSERT_EQ(li.loops().size(), 1u);
    EXPECT_TRUE(li.isSimple(0));
    ASSERT_TRUE(li.loops()[0].induction.valid);
    EXPECT_EQ(li.loops()[0].induction.constTrip, 64);

    Interpreter post(prog);
    const auto after = post.run();
    EXPECT_EQ(before.checksum, after.checksum);
    EXPECT_EQ(before.returns, after.returns);
}

TEST(Collapse, MarksOuterOps)
{
    Program prog = nestProgram(8, 8, 0);
    collapseLoops(prog);
    bool sawOuterMark = false;
    for (const auto &bb : prog.functions[prog.entryFunc].blocks) {
        if (bb.dead)
            continue;
        for (const auto &op : bb.ops)
            sawOuterMark |= op.fromOuterLoop;
    }
    EXPECT_TRUE(sawOuterMark);
}

TEST(Collapse, FatOuterRejected)
{
    // Outer code bigger than the budget: collapsing must refuse
    // (pulling it in would hurt the inner loop's resources).
    Program prog;
    const auto data = prog.allocData(1024);
    prog.checksumBase = data;
    prog.checksumSize = 1024;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 8, 1, [&](RegId i) {
        b.forLoop(0, 16, 1, [&](RegId j) {
            b.addTo(acc, R(acc), R(j));
        });
        for (int k = 0; k < 40; ++k) // fat outer remainder
            b.binTo(Opcode::XOR, acc, R(acc), I(k * 3 + 1));
        const RegId i4 = b.shl(R(i), I(2));
        b.storeW(R(dp), R(i4), R(acc));
    });
    b.ret({R(acc)});
    auto st = collapseLoops(prog);
    EXPECT_EQ(st.loopsCollapsed, 0);
}

TEST(Collapse, InnerSideEffectsOrderPreserved)
{
    // Stores from both levels must interleave exactly as before.
    Program prog = nestProgram(6, 4, 2);
    Interpreter pre(prog);
    const auto before = pre.run();
    CollapseOptions opts;
    opts.minInnerTrip = 2;
    auto st = collapseLoops(prog, opts);
    ASSERT_EQ(st.loopsCollapsed, 1);
    Interpreter post(prog);
    EXPECT_EQ(post.run().checksum, before.checksum);
}

TEST(Collapse, VariableOuterBoundCollapses)
{
    // Outer trip known only at runtime: collapse computes
    // total = innerTrip * outerTrips in the preheader.
    Program prog;
    const auto data = prog.allocData(1024);
    prog.checksumBase = data;
    prog.checksumSize = 1024;
    const FuncId main2 = prog.newFunction("main");
    prog.entryFunc = main2;
    IRBuilder b(prog, main2);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    // Runtime-computed outer bound (opaque to constant folding
    // because it is loaded from memory).
    prog.poke32(0 + 512, 9);
    const RegId bound = b.loadW(R(dp), I(512));
    b.forLoopReg(0, bound, 1, [&](RegId i) {
        // Inner body with a latency-3 recurrence (mul+and), so the
        // collapsed form's predicate chain does not raise the
        // initiation interval and the profitability check accepts.
        b.forLoop(0, 5, 1, [&](RegId j) {
            b.mulTo(acc, R(acc), I(3));
            b.binTo(Opcode::AND, acc, R(acc), I(0xffff));
            b.addTo(acc, R(acc), R(j));
        });
        const RegId i4 = b.shl(R(b.and_(R(i), I(63))), I(2));
        b.storeW(R(dp), R(i4), R(acc));
    });
    b.ret({R(acc)});

    Interpreter pre(prog);
    const auto before = pre.run();
    auto st = collapseLoops(prog);
    EXPECT_EQ(st.loopsCollapsed, 1);
    Interpreter post(prog);
    const auto after = post.run();
    EXPECT_EQ(before.checksum, after.checksum);
    EXPECT_EQ(before.returns, after.returns);
}

TEST(Collapse, ThenIfConvertAndOptimize)
{
    // Full Figure-2 pipeline slice: collapse, if-convert remaining,
    // optimize — semantics stable throughout.
    Program prog = nestProgram(8, 8, 1);
    Interpreter pre(prog);
    const auto before = pre.run();
    collapseLoops(prog);
    ifConvertLoops(prog);
    optimizeProgram(prog);
    Interpreter post(prog);
    EXPECT_EQ(post.run().checksum, before.checksum);
}

} // namespace
} // namespace lbp
