/**
 * @file
 * Differential testing: randomly generated structured programs
 * (nested counted loops, diamonds, hammocks, data-dependent while
 * loops, memory traffic, helper calls) are compiled under both
 * optimization levels and simulated under both predication modes at
 * several buffer sizes; every configuration must reproduce the
 * reference interpreter's checksum and return values. This is the
 * fuzzing backstop behind the hand-written per-pass tests.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "sim/vliw_sim.hh"
#include "support/random.hh"
#include "workloads/input_data.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

constexpr int kMemWords = 512;

/** Random structured program generator. */
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

    Program generate()
    {
        Program prog;
        prog.name = "fuzz";
        const auto mem = prog.allocData(kMemWords * 4);
        {
            Rng init(rng_.next());
            for (int i = 0; i < kMemWords; ++i) {
                prog.poke32(mem + 4 * i,
                            static_cast<std::int32_t>(
                                init.nextRange(-1000, 1000)));
            }
        }
        prog.checksumBase = mem;
        prog.checksumSize = kMemWords * 4;

        // A small helper function as an inlining target.
        const FuncId helper = prog.newFunction("helper");
        {
            Function &fn = prog.functions[helper];
            const RegId x = fn.newReg();
            fn.params = {x};
            fn.numReturns = 1;
            IRBuilder hb(prog, helper);
            const RegId t = hb.mul(R(x), I(3));
            const RegId u = hb.xor_(R(t), I(0x55));
            const RegId v = hb.and_(R(u), I(0xffff));
            hb.ret({R(v)});
        }

        const FuncId mainF = prog.newFunction("main");
        prog.entryFunc = mainF;
        IRBuilder b(prog, mainF);
        memBase_ = b.iconst(mem);
        pool_ = {b.iconst(1), b.iconst(rng_.nextRange(-20, 20))};
        helper_ = helper;

        emitRegion(b, 2);
        // Make the pool observable.
        const RegId addr = b.iconst(mem);
        for (size_t i = 0; i < pool_.size() && i < 8; ++i) {
            b.storeW(R(addr), I(static_cast<int>(4 * i)),
                     R(pool_[pool_.size() - 1 - i]));
        }
        b.ret({R(pool_.back())});
        return prog;
    }

  private:
    void emitStraightOps(IRBuilder &b, int n)
    {
        for (int i = 0; i < n; ++i) {
            const RegId a = pick();
            const RegId c = pick();
            switch (rng_.nextBelow(8)) {
              case 0:
                pool_.push_back(b.add(R(a), R(c)));
                break;
              case 1:
                pool_.push_back(b.sub(R(a), I(rng_.nextRange(-9, 9))));
                break;
              case 2:
                pool_.push_back(b.mul(R(a), R(c)));
                break;
              case 3: {
                const RegId idx = b.and_(R(a), I(kMemWords - 1));
                const RegId i4 = b.shl(R(idx), I(2));
                pool_.push_back(b.loadW(R(memBase_), R(i4)));
                break;
              }
              case 4: {
                const RegId idx = b.and_(R(a), I(kMemWords - 1));
                const RegId i4 = b.shl(R(idx), I(2));
                const RegId val = b.and_(R(c), I(0xffffff));
                b.storeW(R(memBase_), R(i4), R(val));
                break;
              }
              case 5:
                pool_.push_back(b.satadd(R(a), R(c)));
                break;
              case 6:
                pool_.push_back(b.min(R(a), R(c)));
                break;
              default:
                pool_.push_back(b.xor_(R(a), R(c)));
                break;
            }
            if (pool_.size() > 24)
                pool_.erase(pool_.begin(), pool_.begin() + 8);
        }
    }

    void emitControl(IRBuilder &b, int depth)
    {
        const CmpCond conds[] = {CmpCond::LT, CmpCond::GE,
                                 CmpCond::EQ, CmpCond::NE,
                                 CmpCond::GT};
        const CmpCond c = conds[rng_.nextBelow(5)];
        const RegId x = pick();
        const std::int64_t k = rng_.nextRange(-8, 8);
        if (rng_.chance(0.5)) {
            workloads::diamond(b, c, R(x), I(k),
                               [&] {
                                   emitStraightOps(b, 1 + rng_.nextBelow(3));
                                   if (depth > 0 && rng_.chance(0.4))
                                       emitControl(b, depth - 1);
                               },
                               [&] {
                                   emitStraightOps(b, 1 + rng_.nextBelow(3));
                               });
        } else {
            workloads::ifThen(b, c, R(x), I(k), [&] {
                emitStraightOps(b, 1 + rng_.nextBelow(4));
                if (depth > 0 && rng_.chance(0.3))
                    emitControl(b, depth - 1);
            });
        }
    }

    void emitLoop(IRBuilder &b, int depth)
    {
        const std::int64_t trip = 2 + rng_.nextRange(0, 14);
        b.forLoop(0, trip, 1, [&](RegId i) {
            pool_.push_back(i);
            emitStraightOps(b, 2 + rng_.nextBelow(5));
            if (rng_.chance(0.6))
                emitControl(b, 1);
            if (depth > 0 && rng_.chance(0.4))
                emitLoop(b, depth - 1);
            if (rng_.chance(0.2)) {
                auto r = b.call(helper_, {R(pick())}, 1);
                pool_.push_back(r[0]);
            }
            emitStraightOps(b, 1 + rng_.nextBelow(3));
        });
    }

    void emitRegion(IRBuilder &b, int depth)
    {
        emitStraightOps(b, 2 + rng_.nextBelow(4));
        const int loops = 1 + static_cast<int>(rng_.nextBelow(3));
        for (int i = 0; i < loops; ++i) {
            emitLoop(b, depth);
            emitStraightOps(b, 1 + rng_.nextBelow(3));
        }
    }

    RegId pick() { return pool_[rng_.nextBelow(pool_.size())]; }

    Rng rng_;
    std::vector<RegId> pool_;
    RegId memBase_ = 0;
    FuncId helper_ = kNoFunc;
};

class DifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DifferentialTest, AllConfigsMatchInterpreter)
{
    ProgramGen gen(0xfeed0000ull + GetParam());
    Program prog = gen.generate();

    Interpreter interp(prog);
    const auto golden = interp.run();

    for (int cfg = 0; cfg < 3; ++cfg) {
        CompileOptions opts;
        opts.level = cfg == 0 ? OptLevel::Traditional
                              : OptLevel::Aggressive;
        if (cfg == 2) {
            // Exercise the future-work extensions under fuzz too.
            opts.rotatingRegisters = true;
            opts.predQueueDepth = 2;
        }
        CompileResult cr;
        // compileProgram itself re-verifies the checksum per stage.
        ASSERT_NO_THROW(compileProgram(prog, opts, cr))
            << "seed " << GetParam();
        EXPECT_EQ(cr.goldenChecksum, golden.checksum);
        for (int size : {24, 256}) {
            reallocateBuffers(cr, size);
            SimConfig sc;
            sc.bufferOps = size;
            sc.predMode = PredMode::SLOT;
            VliwSim sim(cr.code, sc);
            const auto st = sim.run();
            EXPECT_EQ(st.checksum, golden.checksum)
                << "seed " << GetParam() << " cfg " << cfg
                << " size " << size;
            EXPECT_EQ(st.returns, golden.returns)
                << "seed " << GetParam();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DifferentialTest,
                         ::testing::Range(0, 25));

} // namespace
} // namespace lbp
