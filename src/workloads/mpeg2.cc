/**
 * @file
 * MPEG-2 video codec pair.
 *
 * The decoder contains Add_Block(), the paper's Figure-2 walkthrough:
 * a doubly-nested 8x8 loop (inner trip 8, tiny outer remainder) that
 * predicated loop collapsing turns into a single 64-iteration
 * hardware loop, plus clipping via a lookup table.
 *
 * The encoder models the paper's worst case: motion estimation as a
 * deeply nested search (macroblock -> search window y -> search
 * window x -> row SAD) whose middle levels carry too much code to be
 * collapsed and too many iterations to be peeled, leaving most of
 * the fetch stream outside the buffer even after transformation.
 */

#include "workloads/workloads.hh"

#include "workloads/input_data.hh"

namespace lbp
{
namespace workloads
{

namespace
{

constexpr int kBlocks = 20;   // 8x8 blocks in the decoder
constexpr int kFrameW = 48;   // encoder frame width
constexpr int kFrameH = 32;   // encoder frame height
constexpr int kSearch = 4;    // +/- search range

struct MpegMem
{
    std::int64_t clipTab;   // 1024-entry clip table, bias 512
    std::int64_t blocks;    // 32-bit coefficient blocks
    std::int64_t frame;     // 16-bit reference frame
    std::int64_t frame2;    // 16-bit current frame
    std::int64_t recon;     // 16-bit output
    std::int64_t mvOut;     // 32-bit motion vectors
};

MpegMem
layoutMpeg(Program &prog)
{
    MpegMem m;
    m.clipTab = prog.allocData(1024);
    m.blocks = prog.allocData(kBlocks * 64 * 4);
    m.frame = prog.allocData(kFrameW * kFrameH * 2);
    m.frame2 = prog.allocData(kFrameW * kFrameH * 2);
    m.recon = prog.allocData(kBlocks * 64 * 2 + kFrameW * 2);
    m.mvOut = prog.allocData(1024 * 4);
    // Clip[x+512] = clamp(x, 0, 255).
    for (int x = -512; x < 512; ++x) {
        const int v = x < 0 ? 0 : x > 255 ? 255 : x;
        prog.poke8(m.clipTab + x + 512, static_cast<std::uint8_t>(v));
    }
    fillWords(prog, m.blocks, kBlocks * 64, -300, 300, 0xa11ce);
    fillPcm16(prog, m.frame, kFrameW * kFrameH, 0xf00d1);
    fillPcm16(prog, m.frame2, kFrameW * kFrameH, 0xf00d2);
    return m;
}

/**
 * Add_Block() — the Figure-2 code: for each of 8 rows, add 8
 * prediction/coefficient pairs through the clip table, then bump the
 * row pointer by the frame pitch. The inner loop has trip 8 and the
 * outer remainder is 2 ops: the canonical collapse into a 64-trip
 * simple loop.
 */
FuncId
buildAddBlock(Program &prog, const MpegMem &m)
{
    const FuncId f = prog.newFunction("add_block");
    Function &fn = prog.functions[f];
    const RegId coefBase = fn.newReg(); // word index of block
    const RegId outBase = fn.newReg();  // halfword index
    fn.params = {coefBase, outBase};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId clipP = b.iconst(m.clipTab + 512);
    const RegId blkP = b.iconst(m.blocks);
    const RegId recP = b.iconst(m.recon);
    const RegId bp = b.mov(R(coefBase));   // *bp++ walking pointer
    const RegId rfp = b.mov(R(outBase));   // *rfp walking pointer
    const RegId acc = b.iconst(0);

    b.forLoop(0, 8, 1, [&](RegId i) {
        (void)i;
        b.forLoop(0, 8, 1, [&](RegId j) {
            (void)j;
            const RegId b4 = b.shl(R(bp), I(2));
            const RegId v = b.loadW(R(blkP), R(b4));
            const RegId idx = b.add(R(v), I(128));
            const RegId idxc = b.max(R(idx), I(-512));
            const RegId idxc2 = b.min(R(idxc), I(511));
            const RegId cv = b.loadB(R(clipP), R(idxc2));
            const RegId r2 = b.shl(R(rfp), I(1));
            b.storeH(R(recP), R(r2), R(cv));
            b.binTo(Opcode::SATADD, acc, R(acc), R(cv));
            b.addTo(bp, R(bp), I(1));
            b.addTo(rfp, R(rfp), I(1));
        });
        // Outer remainder: rfp += incr (row pitch adjustment).
        b.addTo(rfp, R(rfp), I(8));
    });
    b.ret({R(acc)});
    return f;
}

/** Saturating IDCT-ish pass over one block (simple trip-64 loop). */
FuncId
buildDecIdct(Program &prog, const MpegMem &m)
{
    const FuncId f = prog.newFunction("dec_idct");
    Function &fn = prog.functions[f];
    const RegId base = fn.newReg();
    fn.params = {base};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId blkP = b.iconst(m.blocks);
    const RegId acc = b.iconst(0);

    b.forLoop(0, 64, 1, [&](RegId i) {
        const RegId idx = b.add(R(base), R(i));
        const RegId i4 = b.shl(R(idx), I(2));
        const RegId v = b.loadW(R(blkP), R(i4));
        const RegId w = b.mul(R(v), I(181));
        const RegId ws = b.shra(R(w), I(8));
        const RegId c1 = b.max(R(ws), I(-2048));
        const RegId c2 = b.min(R(c1), I(2047));
        b.storeW(R(blkP), R(i4), R(c2));
        b.binTo(Opcode::SATADD, acc, R(acc), R(c2));
    });
    b.ret({R(acc)});
    return f;
}

/** Half-pel motion compensation with rounding diamond. */
FuncId
buildMotionComp(Program &prog, const MpegMem &m)
{
    const FuncId f = prog.newFunction("motion_comp");
    Function &fn = prog.functions[f];
    const RegId srcBase = fn.newReg();
    fn.params = {srcBase};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId frmP = b.iconst(m.frame);
    const RegId frm2P = b.iconst(m.frame2);
    const RegId acc = b.iconst(0);

    b.forLoop(0, 128, 1, [&](RegId i) {
        const RegId idx = b.add(R(srcBase), R(i));
        const RegId i2 = b.shl(R(idx), I(1));
        const RegId a = b.loadH(R(frmP), R(i2));
        const RegId c = b.loadH(R(frm2P), R(i2));
        const RegId s = b.add(R(a), R(c));
        const RegId avg = b.shra(R(s), I(1));
        const RegId lsb = b.and_(R(s), I(1));
        const RegId rounded = b.mov(R(avg));
        ifThen(b, CmpCond::NE, R(lsb), I(0), [&] {
            b.addTo(rounded, R(rounded), I(1));
        });
        b.storeH(R(frm2P), R(i2), R(rounded));
        b.binTo(Opcode::SATADD, acc, R(acc), R(rounded));
    });
    b.ret({R(acc)});
    return f;
}

/**
 * Motion estimation for the encoder: a four-deep nest with
 * substantial code at every level. The y/x search levels carry
 * enough setup code that collapsing is rejected, and their trip
 * counts (2*kSearch+1 = 9) exceed the peeling limit, so the nest
 * stays branchy — mpeg2enc's published behaviour.
 */
FuncId
buildMotionEst(Program &prog, const MpegMem &m)
{
    const FuncId f = prog.newFunction("motion_est");
    Function &fn = prog.functions[f];
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };
    const RegId frmP = b.iconst(m.frame);
    const RegId frm2P = b.iconst(m.frame2);
    const RegId mvP = b.iconst(m.mvOut);
    const RegId total = b.iconst(0);

    constexpr int kMb = 6; // macroblocks searched

    b.forLoop(0, kMb, 1, [&](RegId mb) {
        // Macroblock setup (real address arithmetic).
        const RegId mbx = b.rem(R(mb), I(2));
        const RegId mby = b.div(R(mb), I(2));
        const RegId ox = b.mul(R(mbx), I(16));
        const RegId oy = b.mul(R(mby), I(8));
        const RegId best = b.iconst(1 << 28);
        const RegId bestMv = b.iconst(0);
        const RegId curBase = b.mul(R(oy), I(kFrameW));

        // Search window: 3x3 candidates, each with substantial
        // per-candidate setup (the fat, unbufferable nest levels the
        // paper describes) around a low-trip inner SAD loop.
        b.forLoop(-1, 2, 1, [&](RegId dy) {
            const RegId cy = b.add(R(oy), R(dy));
            const RegId cy1 = b.max(R(cy), I(0));
            const RegId cy2 = b.min(R(cy1), I(kFrameH - 9));
            const RegId rowBase = b.mul(R(cy2), I(kFrameW));
            // Interpolation-style row preconditioning (level code).
            const RegId rAvg = b.iconst(0);
            const RegId e0 = b.loadH(R(frmP), R(b.shl(R(rowBase),
                                                      I(1))));
            const RegId e1 = b.loadH(R(frm2P), R(b.shl(R(curBase),
                                                       I(1))));
            b.addTo(rAvg, R(e0), R(e1));
            b.binTo(Opcode::SHRA, rAvg, R(rAvg), I(1));

            b.forLoop(-1, 2, 1, [&](RegId dx) {
                const RegId cx = b.add(R(ox), R(dx));
                const RegId cx1 = b.max(R(cx), I(0));
                const RegId cx2 = b.min(R(cx1), I(kFrameW - 17));
                const RegId sad = b.iconst(0);
                const RegId sad2 = b.iconst(0);
                const RegId pen = b.abs(R(dx));
                const RegId peny = b.abs(R(dy));
                const RegId lam = b.add(R(b.mul(R(pen), I(3))),
                                        R(b.mul(R(peny), I(3))));

                // Half-pel interpolation of the candidate row:
                // straight-line per-pixel code at the (unbufferable)
                // search level — the bulk of mpeg2enc's fetch stream.
                const RegId interp = b.iconst(0);
                for (int px = 0; px < 16; ++px) {
                    const RegId si0 = b.add(R(b.add(R(rowBase),
                                                    R(cx2))),
                                            I(px));
                    const RegId s0 = b.shl(R(si0), I(1));
                    const RegId v0 = b.loadH(R(frmP), R(s0));
                    const RegId s1 = b.add(R(s0), I(2));
                    const RegId v1 = b.loadH(R(frmP), R(s1));
                    const RegId sum = b.add(R(v0), R(v1));
                    const RegId hp = b.shra(R(b.add(R(sum), I(1))),
                                            I(1));
                    b.binTo(Opcode::SATADD, interp, R(interp), R(hp));
                }
                b.binTo(Opcode::XOR, total, R(total), R(interp));

                // Inner SAD: only four iterations, each consuming
                // four pixels with clamp diamonds — a large body
                // with a low trip count.
                b.forLoop(0, 4, 1, [&](RegId q) {
                    const RegId k0 = b.shl(R(q), I(2));
                    for (int u = 0; u < 4; ++u) {
                        const RegId k = b.add(R(k0), I(u));
                        const RegId si =
                            b.add(R(b.add(R(rowBase), R(cx2))), R(k));
                        const RegId s2 = b.shl(R(si), I(1));
                        const RegId rv = b.loadH(R(frmP), R(s2));
                        const RegId ci =
                            b.add(R(b.add(R(curBase), R(ox))), R(k));
                        const RegId c2 = b.shl(R(ci), I(1));
                        const RegId cv = b.loadH(R(frm2P), R(c2));
                        const RegId d = b.sub(R(rv), R(cv));
                        // Conditional weighting: a fat diamond whose
                        // rare arm inflates the fetched-but-nullified
                        // stream after if-conversion.
                        diamond(b, CmpCond::GT, R(d), I(12000),
                                [&] {
                                    const RegId w1 =
                                        b.mul(R(d), I(3));
                                    const RegId w2 =
                                        b.shra(R(w1), I(2));
                                    const RegId w3 =
                                        b.add(R(w2), I(97));
                                    const RegId w4 =
                                        b.min(R(w3), I(20000));
                                    b.binTo(Opcode::SATADD, sad2,
                                            R(sad2), R(w4));
                                },
                                [&] {
                                    const RegId ad = b.abs(R(d));
                                    b.addTo(sad, R(sad), R(ad));
                                });
                    }
                });
                b.addTo(sad, R(sad), R(sad2));
                b.addTo(sad, R(sad), R(lam));
                // Best-candidate bookkeeping (level code).
                ifThen(b, CmpCond::LT, R(sad), R(best), [&] {
                    b.movTo(best, R(sad));
                    const RegId enc = b.add(R(b.mul(R(dy), I(64))),
                                            R(dx));
                    b.movTo(bestMv, R(enc));
                });
                const RegId dbg = b.xor_(R(sad), R(bestMv));
                b.binTo(Opcode::XOR, total, R(total), R(dbg));
            });
        });
        const RegId mb4 = b.shl(R(mb), I(2));
        b.storeW(R(mvP), R(mb4), R(bestMv));
        b.binTo(Opcode::SATADD, total, R(total), R(best));
    });
    b.ret({R(total)});
    return f;
}

Program
buildMpeg2(bool encode)
{
    Program prog;
    prog.name = encode ? "mpeg2_enc" : "mpeg2_dec";
    MpegMem m = layoutMpeg(prog);

    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;

    if (encode) {
        const FuncId me = buildMotionEst(prog, m);
        const FuncId idct = buildDecIdct(prog, m);
        IRBuilder b(prog, mainF);
        auto R = [](RegId r) { return Operand::reg(r); };
        auto I = [](std::int64_t v) { return Operand::imm(v); };
        const RegId acc = b.iconst(0);
        b.forLoop(0, 3, 1, [&](RegId pic) {
            auto r1 = b.call(me, {}, 1);
            const RegId base = b.mul(R(b.and_(R(pic), I(7))), I(64));
            auto r2 = b.call(idct, {R(base)}, 1);
            b.binTo(Opcode::XOR, acc, R(acc), R(r1[0]));
            b.binTo(Opcode::SATADD, acc, R(acc), R(r2[0]));
        });
        const RegId mvP = b.iconst(m.mvOut);
        b.storeW(R(mvP), I(1020), R(acc));
        b.ret({R(acc)});
        prog.checksumBase = m.mvOut;
        prog.checksumSize = 1024 * 4;
    } else {
        const FuncId addb = buildAddBlock(prog, m);
        const FuncId idct = buildDecIdct(prog, m);
        const FuncId mc = buildMotionComp(prog, m);
        IRBuilder b(prog, mainF);
        auto R = [](RegId r) { return Operand::reg(r); };
        auto I = [](std::int64_t v) { return Operand::imm(v); };
        const RegId acc = b.iconst(0);
        b.forLoop(0, kBlocks, 1, [&](RegId blk) {
            const RegId base = b.shl(R(blk), I(6));
            auto r1 = b.call(idct, {R(base)}, 1);
            auto r2 = b.call(addb, {R(base), R(base)}, 1);
            const RegId mbase = b.mul(R(b.and_(R(blk), I(3))), I(128));
            auto r3 = b.call(mc, {R(mbase)}, 1);
            b.binTo(Opcode::XOR, acc, R(acc), R(r1[0]));
            b.binTo(Opcode::SATADD, acc, R(acc), R(r2[0]));
            b.binTo(Opcode::XOR, acc, R(acc), R(r3[0]));
        });
        b.ret({R(acc)});
        prog.checksumBase = m.recon;
        prog.checksumSize = kBlocks * 64 * 2;
    }
    return prog;
}

} // namespace

Program
buildMpeg2Enc()
{
    return buildMpeg2(true);
}

Program
buildMpeg2Dec()
{
    return buildMpeg2(false);
}

} // namespace workloads
} // namespace lbp
