#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "support/logging.hh"

namespace lbp
{
namespace obs
{

Json
Json::boolean(bool v)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.b_ = v;
    return j;
}

Json
Json::integer(std::int64_t v)
{
    Json j;
    j.kind_ = Kind::Int;
    j.i_ = v;
    return j;
}

Json
Json::uinteger(std::uint64_t v)
{
    Json j;
    j.kind_ = Kind::Uint;
    j.u_ = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.kind_ = Kind::Double;
    j.d_ = v;
    return j;
}

Json
Json::str(std::string v)
{
    Json j;
    j.kind_ = Kind::String;
    j.s_ = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

std::int64_t
Json::asInt() const
{
    switch (kind_) {
      case Kind::Int: return i_;
      case Kind::Uint: return static_cast<std::int64_t>(u_);
      case Kind::Double: return static_cast<std::int64_t>(d_);
      default: LBP_PANIC("Json::asInt on non-number");
    }
}

std::uint64_t
Json::asUint() const
{
    switch (kind_) {
      case Kind::Int: return static_cast<std::uint64_t>(i_);
      case Kind::Uint: return u_;
      case Kind::Double: return static_cast<std::uint64_t>(d_);
      default: LBP_PANIC("Json::asUint on non-number");
    }
}

double
Json::asDouble() const
{
    switch (kind_) {
      case Kind::Int: return static_cast<double>(i_);
      case Kind::Uint: return static_cast<double>(u_);
      case Kind::Double: return d_;
      default: LBP_PANIC("Json::asDouble on non-number");
    }
}

void
Json::push(Json v)
{
    LBP_ASSERT(kind_ == Kind::Array, "push on non-array Json");
    arr_.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    LBP_ASSERT(kind_ == Kind::Object, "set on non-object Json");
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &kv : obj_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

bool
Json::operator==(const Json &o) const
{
    if (isNumber() && o.isNumber()) {
        if (kind_ == Kind::Double || o.kind_ == Kind::Double) {
            return kind_ == o.kind_ && d_ == o.d_;
        }
        // Int/Uint cross-compare by value.
        if (kind_ == Kind::Int && i_ < 0)
            return o.kind_ == Kind::Int && o.i_ == i_;
        if (o.kind_ == Kind::Int && o.i_ < 0)
            return false;
        return asUint() == o.asUint();
    }
    if (kind_ != o.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return b_ == o.b_;
      case Kind::String: return s_ == o.s_;
      case Kind::Array: return arr_ == o.arr_;
      case Kind::Object: return obj_ == o.obj_;
      default: return false;
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
writeDouble(std::ostream &os, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; emit null like most tools do.
        os << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    // Prefer a short form when it round-trips.
    char shortBuf[64];
    std::snprintf(shortBuf, sizeof(shortBuf), "%.6g", d);
    const char *chosen =
        std::strtod(shortBuf, nullptr) == d ? shortBuf : buf;
    os << chosen;
    // Keep the value's kind through a parse round-trip: a Double that
    // happens to be integral ("2") must not come back as an Int.
    if (!std::strpbrk(chosen, ".eE"))
        os << ".0";
}

} // namespace

void
Json::write(std::ostream &os, int indent) const
{
    const std::string pad(indent * 2, ' ');
    const std::string padIn((indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::Null: os << "null"; break;
      case Kind::Bool: os << (b_ ? "true" : "false"); break;
      case Kind::Int: os << i_; break;
      case Kind::Uint: os << u_; break;
      case Kind::Double: writeDouble(os, d_); break;
      case Kind::String: os << '"' << jsonEscape(s_) << '"'; break;
      case Kind::Array: {
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        // Arrays of scalars stay on one line; nested structures get
        // one element per line.
        bool scalarOnly = true;
        for (const auto &v : arr_)
            if (v.kind_ == Kind::Array || v.kind_ == Kind::Object)
                scalarOnly = false;
        os << '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (!scalarOnly)
                os << '\n' << padIn;
            arr_[i].write(os, indent + 1);
            if (i + 1 < arr_.size())
                os << (scalarOnly ? ", " : ",");
        }
        if (!scalarOnly)
            os << '\n' << pad;
        os << ']';
        break;
      }
      case Kind::Object: {
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (size_t i = 0; i < obj_.size(); ++i) {
            os << padIn << '"' << jsonEscape(obj_[i].first) << "\": ";
            obj_[i].second.write(os, indent + 1);
            if (i + 1 < obj_.size())
                os << ',';
            os << '\n';
        }
        os << pad << '}';
        break;
      }
    }
}

void
Json::writeCompact(std::ostream &os) const
{
    switch (kind_) {
      case Kind::Null:
      case Kind::Bool:
      case Kind::Int:
      case Kind::Uint:
      case Kind::Double:
      case Kind::String:
        write(os);
        break;
      case Kind::Array: {
        os << '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << ',';
            arr_[i].writeCompact(os);
        }
        os << ']';
        break;
      }
      case Kind::Object: {
        os << '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                os << ',';
            os << '"' << jsonEscape(obj_[i].first) << "\":";
            obj_[i].second.writeCompact(os);
        }
        os << '}';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::ostringstream os;
    writeCompact(os);
    return os.str();
}

namespace
{

/** Recursive-descent parser over the full JSON grammar. */
struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    void fail(const std::string &what)
    {
        if (error.empty()) {
            error = what + " at offset " + std::to_string(pos);
        }
    }

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Json value()
    {
        skipWs();
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return Json();
        }
        const char c = text[pos];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json::str(string());
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            expectWord("null");
            return Json();
        }
        return number();
    }

    void expectWord(const char *w)
    {
        for (const char *p = w; *p; ++p) {
            if (pos >= text.size() || text[pos] != *p) {
                fail(std::string("expected '") + w + "'");
                return;
            }
            ++pos;
        }
    }

    Json boolean()
    {
        if (text[pos] == 't') {
            expectWord("true");
            return Json::boolean(true);
        }
        expectWord("false");
        return Json::boolean(false);
    }

    std::string string()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                break;
            const char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size()) {
                    fail("bad \\u escape");
                    return out;
                }
                const unsigned cp = static_cast<unsigned>(
                    std::strtoul(text.substr(pos, 4).c_str(),
                                 nullptr, 16));
                pos += 4;
                // Basic-multilingual-plane only; encode as UTF-8.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 |
                                             ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default: fail("bad escape"); return out;
            }
        }
        if (!consume('"'))
            fail("unterminated string");
        return out;
    }

    Json number()
    {
        const size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool isFloat = false;
        while (pos < text.size()) {
            const char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                if (c == '.' || c == 'e' || c == 'E')
                    isFloat = true;
                ++pos;
            } else {
                break;
            }
        }
        const std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-") {
            fail("expected number");
            return Json();
        }
        if (!isFloat) {
            errno = 0;
            if (tok[0] == '-') {
                const long long v =
                    std::strtoll(tok.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return Json::integer(v);
            } else {
                const unsigned long long v =
                    std::strtoull(tok.c_str(), nullptr, 10);
                if (errno != ERANGE) {
                    if (v <= static_cast<unsigned long long>(
                                 INT64_MAX))
                        return Json::integer(
                            static_cast<std::int64_t>(v));
                    return Json::uinteger(v);
                }
            }
        }
        return Json::number(std::strtod(tok.c_str(), nullptr));
    }

    Json array()
    {
        Json a = Json::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return a;
        while (error.empty()) {
            a.push(value());
            if (consume(']'))
                break;
            if (!consume(',')) {
                fail("expected ',' or ']'");
                break;
            }
        }
        return a;
    }

    Json object()
    {
        Json o = Json::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return o;
        while (error.empty()) {
            skipWs();
            const std::string key = string();
            if (!consume(':')) {
                fail("expected ':'");
                break;
            }
            o.set(key, value());
            if (consume('}'))
                break;
            if (!consume(',')) {
                fail("expected ',' or '}'");
                break;
            }
        }
        return o;
    }
};

} // namespace

Json
Json::parse(const std::string &text, std::string &error)
{
    Parser p(text);
    Json v = p.value();
    p.skipWs();
    if (p.error.empty() && p.pos != text.size())
        p.fail("trailing garbage");
    error = p.error;
    if (!error.empty())
        return Json();
    return v;
}

} // namespace obs
} // namespace lbp
