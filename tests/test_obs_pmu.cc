/**
 * @file
 * Host PMU backend tests. The CI fleet spans bare metal, VMs, and
 * containers without a hardware PMU, so every test here must pass in
 * all three worlds: assertions about live counter values are
 * conditional on PmuSession::start() succeeding, while the graceful
 * degradation contract — start() fails with a reason, snapshots say
 * why, published registries differ from a no-pmu run ONLY in pmu.*
 * keys — is asserted unconditionally (it IS the contract this host
 * exercises). The LBP_PMU=OFF CI leg runs this same binary against
 * the stubs; nothing here may assume the backend is compiled in.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/compiler.hh"
#include "obs/json.hh"
#include "obs/prof.hh"
#include "obs/publish.hh"
#include "obs/registry.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

namespace pmu = obs::pmu;
using obs::Json;

/** A synthetic available snapshot with one region, for pure-math
 *  tests that must not depend on host hardware. */
pmu::Snapshot
syntheticSnapshot()
{
    pmu::Snapshot s;
    s.available = true;
    for (std::size_t i = 0; i < pmu::kNumPmuCounters; ++i)
        s.counterPresent[i] = true;
    constexpr auto idx = [](pmu::PmuCounter c) {
        return static_cast<std::size_t>(c);
    };
    pmu::PmuRegion r;
    r.label = "bench";
    r.counts[idx(pmu::PmuCounter::Cycles)] = 800;
    r.counts[idx(pmu::PmuCounter::Instructions)] = 1600;
    r.counts[idx(pmu::PmuCounter::Branches)] = 400;
    r.counts[idx(pmu::PmuCounter::BranchMisses)] = 8;
    r.counts[idx(pmu::PmuCounter::CacheMisses)] = 16;
    s.regions.push_back(r);
    s.untracked[idx(pmu::PmuCounter::Cycles)] = 200;
    s.total[idx(pmu::PmuCounter::Cycles)] = 1000;
    s.total[idx(pmu::PmuCounter::Instructions)] = 1700;
    s.total[idx(pmu::PmuCounter::Branches)] = 420;
    s.total[idx(pmu::PmuCounter::BranchMisses)] = 10;
    s.total[idx(pmu::PmuCounter::CacheMisses)] = 20;
    return s;
}

TEST(ObsPmu, CounterNamesAreStableKeySegments)
{
    EXPECT_STREQ(pmu::pmuCounterName(pmu::PmuCounter::Cycles),
                 "cycles");
    EXPECT_STREQ(pmu::pmuCounterName(pmu::PmuCounter::Instructions),
                 "instructions");
    EXPECT_STREQ(pmu::pmuCounterName(pmu::PmuCounter::BranchMisses),
                 "branchMisses");
    EXPECT_STREQ(
        pmu::pmuCounterName(pmu::PmuCounter::StalledBackend),
        "stalledBackend");
}

TEST(ObsPmu, AttributedCycleFractionMath)
{
    pmu::Snapshot empty;
    EXPECT_DOUBLE_EQ(empty.attributedCycleFraction(), 0.0);
    const pmu::Snapshot s = syntheticSnapshot();
    EXPECT_DOUBLE_EQ(s.attributedCycleFraction(), 0.8);
}

TEST(ObsPmu, SnapshotJsonCarriesRawCountsAndDerivedRates)
{
    const Json j = pmu::snapshotJson(syntheticSnapshot());
    EXPECT_TRUE(j.find("available")->asBool());
    const Json *bench = j.find("regions")->find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->find("cycles")->asDouble(), 800);
    EXPECT_DOUBLE_EQ(bench->find("ipc")->asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(bench->find("branchMissPct")->asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(bench->find("cacheMpki")->asDouble(), 10.0);
    ASSERT_NE(j.find("untracked"), nullptr);
    ASSERT_NE(j.find("total"), nullptr);
    EXPECT_DOUBLE_EQ(
        j.find("attributedCycleFraction")->asDouble(), 0.8);
}

TEST(ObsPmu, SnapshotJsonUnavailableCarriesReasonOnly)
{
    pmu::Snapshot s;
    s.reason = "unit-test reason";
    const Json j = pmu::snapshotJson(s);
    EXPECT_FALSE(j.find("available")->asBool());
    EXPECT_EQ(j.find("reason")->asString(), "unit-test reason");
    EXPECT_EQ(j.find("regions"), nullptr);
    EXPECT_EQ(j.find("total"), nullptr);
}

TEST(ObsPmu, SnapshotTableRendersRatesAndReason)
{
    std::ostringstream os;
    pmu::printSnapshotTable(os, syntheticSnapshot());
    const std::string t = os.str();
    EXPECT_NE(t.find("bench"), std::string::npos);
    EXPECT_NE(t.find("untracked"), std::string::npos);
    EXPECT_NE(t.find("2.00"), std::string::npos); // ipc column
    EXPECT_NE(t.find("attributed to named regions: 80.0%"),
              std::string::npos);

    pmu::Snapshot off;
    off.reason = "unit-test reason";
    std::ostringstream os2;
    pmu::printSnapshotTable(os2, off);
    EXPECT_EQ(os2.str(),
              "host pmu unavailable: unit-test reason\n");
}

/**
 * The start contract on ANY host: either counters open (and a later
 * snapshot is available with measured cycles), or start() fails with
 * a non-empty reason the snapshot repeats. Both arms leave the
 * session stopped and reusable.
 */
TEST(ObsPmu, StartEitherCountsOrExplainsWhy)
{
    pmu::PmuSession &s = pmu::PmuSession::instance();
    std::string why;
    const bool ok = s.start(&why);
    if (!ok) {
        EXPECT_FALSE(why.empty());
        const pmu::Snapshot snap = s.snapshot();
        EXPECT_FALSE(snap.available);
        EXPECT_EQ(snap.reason, why);
        EXPECT_FALSE(s.running());
        s.stop(); // must be a safe no-op
        return;
    }
    EXPECT_TRUE(pmu::compiledIn());
    EXPECT_TRUE(s.running());
    {
        obs::prof::ScopedRegion r(obs::prof::Region::Bench);
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 2000000; ++i)
            sink = sink * 1664525u + 1013904223u;
    }
    s.stop();
    EXPECT_FALSE(s.running());
    const pmu::Snapshot snap = s.snapshot();
    ASSERT_TRUE(snap.available);
    constexpr std::size_t kCyc =
        static_cast<std::size_t>(pmu::PmuCounter::Cycles);
    EXPECT_GT(snap.total[kCyc], 0u);
    EXPECT_GE(snap.attributedCycleFraction(), 0.0);
    EXPECT_LE(snap.attributedCycleFraction(), 1.0);
    bool sawBench = false;
    for (const auto &r : snap.regions)
        if (r.label == "bench" && r.counts[kCyc] > 0)
            sawBench = true;
    EXPECT_TRUE(sawBench);
    s.reset();
    EXPECT_EQ(s.snapshot().total[kCyc], 0u);
}

TEST(ObsPmu, SecondStartWhileRunningIsRejected)
{
    pmu::PmuSession &s = pmu::PmuSession::instance();
    if (!s.start())
        GTEST_SKIP() << "host counters unavailable";
    std::string why;
    EXPECT_FALSE(s.start(&why));
    EXPECT_EQ(why, "pmu session already running");
    s.stop();
}

TEST(ObsPmu, PublishPmuUnavailablePublishesAvailabilityOnly)
{
    pmu::Snapshot s;
    s.reason = "unit-test reason";
    obs::Registry reg;
    obs::publishPmu(reg, s);
    const Json dump = reg.toJson();
    const Json *metrics = dump.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_NE(metrics->find("pmu.available"), nullptr);
    EXPECT_EQ(metrics->find("pmu.available")->asDouble(), 0);
    // The reason travels in the meta block (identity, never diffed),
    // and no other pmu metric appears.
    for (const auto &kv : metrics->members())
        EXPECT_TRUE(kv.first == "pmu.available")
            << "unexpected metric for unavailable pmu: " << kv.first;
    const Json *meta = dump.find("meta");
    ASSERT_NE(meta, nullptr);
    ASSERT_NE(meta->find("pmu.reason"), nullptr);
}

/**
 * The dumps-differ-only-in-pmu proof within one build: publishing a
 * pmu snapshot on top of identical sim results must leave every
 * non-pmu registry key untouched — the in-process half of the
 * LBP_PMU=OFF-vs-ON cross-build diff the CI pmu leg performs.
 */
TEST(ObsPmu, PublishPmuOnlyAddsPmuKeys)
{
    auto runOnce = [](obs::Registry &reg) {
        CompileResult cr;
        Program p = workloads::buildWorkload("adpcm_dec");
        CompileOptions o;
        o.level = OptLevel::Aggressive;
        o.bufferOps = 256;
        o.obsRegistry = &reg;
        compileProgram(p, o, cr);
        SimConfig sc;
        sc.bufferOps = 256;
        VliwSim sim(cr.code, sc);
        publishSimStats(reg, sim.run());
    };
    obs::Registry plain, withPmu;
    runOnce(plain);
    runOnce(withPmu);
    obs::publishPmu(withPmu, syntheticSnapshot());

    for (const auto &df :
         obs::diffRegistries(plain.toJson(), withPmu.toJson())) {
        const bool isPmu = df.key.rfind("pmu.", 0) == 0;
        const bool timing =
            df.key.size() >= 3 &&
            df.key.compare(df.key.size() - 3, 3, ".ms") == 0;
        EXPECT_TRUE(isPmu || timing)
            << "non-pmu key diverged: " << df.key << " (" << df.a
            << " vs " << df.b << ")";
    }
}

/**
 * Counting must never perturb the simulation: SimStats and every
 * published counter are identical whether the session is idle,
 * running, or unavailable (this host decides which arm actually
 * counts — both arms must hold regardless).
 */
TEST(ObsPmu, CountingNeverPerturbsSimulationCounters)
{
    auto runOnce = [](obs::Registry &reg) {
        CompileResult cr;
        Program p = workloads::buildWorkload("g724_dec");
        CompileOptions o;
        o.level = OptLevel::Aggressive;
        o.bufferOps = 256;
        o.obsRegistry = &reg;
        compileProgram(p, o, cr);
        SimConfig sc;
        sc.bufferOps = 256;
        VliwSim sim(cr.code, sc);
        const SimStats st = sim.run();
        publishSimStats(reg, st);
        return st;
    };

    obs::Registry regIdle;
    const SimStats idle = runOnce(regIdle);

    pmu::PmuSession &s = pmu::PmuSession::instance();
    const bool counting = s.start();
    obs::Registry regPmu;
    const SimStats counted = runOnce(regPmu);
    if (counting)
        s.stop();

    const std::string d =
        obs::diffSimStats(idle, counted, "pmu-idle", "pmu-counting");
    EXPECT_TRUE(d.empty()) << d;
    for (const auto &df :
         obs::diffRegistries(regIdle.toJson(), regPmu.toJson())) {
        const bool timing =
            df.key.size() >= 3 &&
            df.key.compare(df.key.size() - 3, 3, ".ms") == 0;
        EXPECT_TRUE(timing)
            << "non-timing key diverged under counting: " << df.key
            << " (" << df.a << " vs " << df.b << ")";
    }
}

} // namespace
} // namespace lbp
