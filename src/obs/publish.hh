/**
 * @file
 * Adapters that publish the repo's existing statistics structs —
 * SimStats/LoopStats from the simulator, FetchEnergy from the power
 * model, CompileResult from the pipeline — into an obs::Registry, so
 * every bench harness, tool, and test serializes through the one
 * registry path instead of hand-formatting fields.
 */

#ifndef LBP_OBS_PUBLISH_HH
#define LBP_OBS_PUBLISH_HH

#include <string>

#include "obs/pmu.hh"
#include "obs/registry.hh"
#include "power/fetch_energy.hh"
#include "sim/vliw_sim.hh"

namespace lbp
{

struct CompileResult;
struct TraceCacheStats;

namespace obs
{

/**
 * Publish every SimStats field under @p prefix: scalars as
 * "<prefix>.<field>", return values as "<prefix>.returns.<i>", and
 * per-loop counters as "<prefix>.loop.<id3>.<field>" (zero-padded
 * dense loop id so name order equals loop order).
 */
void publishSimStats(Registry &r, const SimStats &s,
                     const std::string &prefix = "sim");

/**
 * Publish the decoded engine's trace-cache side counters under
 * "<prefix>.{builds,replays,bailouts,invalidations,...}". These live
 * outside SimStats (the reference engine never replays), so they get
 * their own publish path; the per-loop replay split is carried by the
 * loop scorecard instead.
 */
void publishTraceCacheStats(Registry &r, const TraceCacheStats &s,
                            const std::string &prefix
                            = "sim.trace_cache");

/**
 * Publish the workload-level cycle stack under
 * "<prefix>.<class>" (one Exact-classed counter per CycleClass,
 * zeros included so the key set is stable) plus "<prefix>.total".
 * The closed-sum invariant makes <prefix>.total equal sim.cycles.
 */
void publishCycleStack(Registry &r, const CycleStack &cs,
                       const std::string &prefix = "sim.cycles");

/**
 * Publish a host PMU snapshot: "<prefix>.available" (0/1) always,
 * and when unavailable an info "<prefix>.reason" and nothing else —
 * so a restricted host's dump differs from a stub build's only by
 * that pair. When available, raw counts go to
 * "<prefix>.<region>.<counter>" (absent counters skipped) plus
 * "<prefix>.total.*" / "<prefix>.untracked.*" rows, with derived
 * gauges "<prefix>.<region>.{ipc,branchMissPct,cacheMpki}" and
 * "<prefix>.attributedCycleFraction". Everything under "pmu." is
 * host-variant and therefore PerPoint to the history gate.
 */
void publishPmu(Registry &r, const pmu::Snapshot &s,
                const std::string &prefix = "pmu");

/** Publish one FetchEnergy breakdown under @p prefix. */
void publishFetchEnergy(Registry &r, const FetchEnergy &e,
                        const std::string &prefix = "power");

/**
 * Publish the pipeline's per-stage statistics and code-size summary
 * under @p prefix (phase timings are published separately by the
 * ScopedPhase timers inside compileProgram).
 */
void publishCompileResult(Registry &r, const CompileResult &cr,
                          const std::string &prefix = "compile");

/**
 * Field-by-field comparison of two SimStats via the registry diff:
 * returns an empty string when identical, otherwise one line per
 * differing field plus a summary naming the first diverging loop id.
 * Used by the engine-differential test for actionable failures.
 */
std::string diffSimStats(const SimStats &a, const SimStats &b,
                         const std::string &labelA = "reference",
                         const std::string &labelB = "decoded");

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_PUBLISH_HH
