#include "sim/vliw_sim.hh"

#include <algorithm>
#include <cstdlib>

#include "ir/interpreter.hh"
#include "obs/prof.hh"
#include "obs/trace.hh"
#include "sim/decoded.hh"
#include "sim/trace_cache.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

/** Resolve the three-state trace-cache config against the env. */
bool
traceCacheEnabled(const SimConfig &cfg)
{
    switch (cfg.traceCache) {
      case TraceCacheMode::On:
        return true;
      case TraceCacheMode::Off:
        return false;
      case TraceCacheMode::Auto: {
        const char *e = std::getenv("LBP_SIM_NO_TRACE_CACHE");
        return !(e && *e);
      }
    }
    return true;
}

/** Resolve the predicated-replay tier config against the env. */
bool
predReplayEnabled(const SimConfig &cfg)
{
    switch (cfg.predReplay) {
      case PredReplayMode::On:
        return true;
      case PredReplayMode::Off:
        return false;
      case PredReplayMode::Auto: {
        const char *e = std::getenv("LBP_SIM_NO_PRED_REPLAY");
        return !(e && *e);
      }
    }
    return true;
}

/**
 * The counted-loop replay engage threshold: the config value, unless
 * LBP_SIM_REPLAY_MIN_ITERS holds a fully parsed non-negative integer.
 */
std::int64_t
replayMinItersResolved(const SimConfig &cfg)
{
    const char *e = std::getenv("LBP_SIM_REPLAY_MIN_ITERS");
    if (e && *e) {
        char *end = nullptr;
        const long long v = std::strtoll(e, &end, 10);
        if (end && *end == '\0' && v >= 0)
            return static_cast<std::int64_t>(v);
    }
    return cfg.replayMinIters;
}

std::int64_t
sat16(std::int64_t v)
{
    return std::clamp<std::int64_t>(v, -32768, 32767);
}

double
asDouble(std::int64_t v)
{
    double d;
    __builtin_memcpy(&d, &v, sizeof(d));
    return d;
}

std::int64_t
asBits(double d)
{
    std::int64_t v;
    __builtin_memcpy(&v, &d, sizeof(v));
    return v;
}

} // namespace

VliwSim::VliwSim(const SchedProgram &code, const SimConfig &cfg)
    : VliwSim(code, cfg, nullptr)
{
}

VliwSim::VliwSim(const SchedProgram &code, const SimConfig &cfg,
                 const DecodedImage *image)
    : code_(code), cfg_(cfg), buffer_(cfg.bufferOps)
{
    LBP_ASSERT(code_.ir != nullptr, "SchedProgram without IR link");
    if (image) {
        loopTable_ = &image->loops;
        decoded_ = &image->program;
    } else {
        obs::prof::ScopedRegion profRegion(
            obs::prof::Region::Decode);
        ownedLoopTable_ =
            std::make_unique<LoopTable>(buildLoopTable(code_));
        loopTable_ = ownedLoopTable_.get();
        if (cfg_.engine == SimEngine::DECODED) {
            ownedDecoded_ = std::make_unique<DecodedProgram>(
                decodeProgram(code_, *loopTable_));
            decoded_ = ownedDecoded_.get();
        }
    }
    cfg_.replayMinIters = replayMinItersResolved(cfg_);
    if (cfg_.engine == SimEngine::DECODED && traceCacheEnabled(cfg_))
        traceCache_ = std::make_unique<TraceCache>(
            loopTable_->keys.size(),
            cfg_.predMode == PredMode::SLOT,
            predReplayEnabled(cfg_));
    slotPred_.fill(1);
}

VliwSim::~VliwSim() = default;

void
VliwSim::retireLoopStats(LoopCtx &ctx)
{
    LoopStats &ls = stats_.loops[ctx.loopId];
    ls.iterations += ctx.iterations;
    if (ctx.pipelined && ctx.fromBuffer && ctx.iterations > 1) {
        // A pipelined buffered activation of N iterations retires in
        // L + (N-1)*II cycles: subtract the already-charged
        // difference, and remove the same cycles from the loop's
        // issue classes so the stack stays closed. The loop's
        // buffer-issued cycles are at least (N-1)*L ≥ the subtraction,
        // so the uncharge never underflows the row.
        const std::uint64_t save =
            (ctx.iterations - 1) *
            static_cast<std::uint64_t>(ctx.bodyLen - ctx.ii);
        const std::uint64_t sub = std::min(stats_.cycles, save);
        stats_.cycles -= sub;
        cycleStack_.unchargeIssue(ctx.loopId, sub);
        // Of the II cycles each steady-state iteration still costs,
        // II - max(ResMII, RecMII) are scheduler slack: cycles an
        // optimal modulo scheduler could recover. Reclassify them out
        // of the issue credit (the post-subtraction balance is at
        // least (N-1)*II ≥ (N-1)*(II-minII)).
        if (ctx.minII > 0 && ctx.ii > ctx.minII) {
            cycleStack_.reclassifySlack(
                ctx.loopId,
                (ctx.iterations - 1) *
                    static_cast<std::uint64_t>(ctx.ii - ctx.minII));
        }
    }
}

const TraceCacheStats *
VliwSim::traceCacheStats() const
{
    return traceCache_ ? &traceCache_->stats() : nullptr;
}

std::int64_t
VliwSim::readOperand(const Frame &fr, const Operand &o) const
{
    switch (o.kind) {
      case OperandKind::REG:
        LBP_ASSERT(o.asReg() < fr.regs.size(), "reg out of range");
        return fr.regs[o.asReg()];
      case OperandKind::IMM:
        return o.value;
      case OperandKind::PRED:
        LBP_ASSERT(o.asPred() < fr.preds.size(), "pred out of range");
        return fr.preds[o.asPred()];
      default:
        LBP_PANIC("unreadable operand");
    }
}

bool
VliwSim::opExecutes(const Frame &fr, const Operation &op, int slot) const
{
    if (cfg_.predMode == PredMode::SLOT && op.sensitive) {
        LBP_ASSERT(slot >= 0 && slot < Machine::width,
                   "sensitive op without slot");
        return slotPred_[slot] != 0;
    }
    if (op.guard == kNoPred)
        return true;
    LBP_ASSERT(op.guard < fr.preds.size(), "guard out of range");
    return fr.preds[op.guard] != 0;
}

SimStats
VliwSim::run(const std::vector<std::int64_t> &args)
{
    const Program &prog = *code_.ir;
    mem_ = prog.memory;
    stats_ = SimStats{};
    stats_.loops = loopTable_->proto;
    cycleStack_.reset(stats_.loops.size());
    bundlesExecuted_ = 0;
    callDepth_ = 0;
    buffer_.clear();
    if (traceCache_)
        traceCache_->resetRunStats();
    slotPred_.fill(1);
    opProfCycles_.fill(0);

    obs::prof::ScopedRegion profRegion(
        cfg_.engine == SimEngine::DECODED
            ? obs::prof::Region::SimDispatch
            : obs::prof::Region::SimReference);
    auto rets = cfg_.engine == SimEngine::DECODED
                    ? callFunctionDecoded(prog.entryFunc, args)
                    : callFunction(prog.entryFunc, args);
    stats_.returns = std::move(rets);
    if (prog.checksumSize > 0) {
        stats_.checksum = fnv1a(mem_.data() + prog.checksumBase,
                                static_cast<size_t>(prog.checksumSize));
    }
    return stats_;
}

std::vector<std::int64_t>
VliwSim::callFunction(FuncId f, const std::vector<std::int64_t> &args)
{
    LBP_ASSERT(++callDepth_ < 200, "sim call stack overflow");
    const Function &fn = code_.ir->functions[f];
    const SchedFunction &sf = code_.functions[f];
    LBP_ASSERT(args.size() == fn.params.size(),
               "arg count mismatch calling ", fn.name);

    obs::TraceSink *const ts = cfg_.trace;

    Frame fr;
    fr.fn = &fn;
    fr.sf = &sf;
    fr.regs.assign(fn.nextReg, 0);
    fr.preds.assign(std::max<PredId>(fn.nextPred, 1), 0);
    for (size_t i = 0; i < args.size(); ++i)
        fr.regs[fn.params[i]] = args[i];

    std::vector<LoopCtx> loopStack;
    std::vector<LoopKey> evictedKeys;

    BlockId curBlk = fn.entry;
    size_t curBu = 0;

    // Deferred writes for the two-phase bundle commit.
    struct RegWrite { RegId r; std::int64_t v; };
    struct PredWrite { PredId p; std::uint8_t v; };
    struct SlotWrite { int s; std::uint8_t v; };
    struct MemWrite { Opcode op; std::int64_t addr; std::int64_t v; };

    /**
     * Finish a loop activation: apply pipelined-timing correction and
     * roll per-loop statistics.
     */
    auto retireLoop = [&](LoopCtx &ctx) {
        retireLoopStats(ctx);
        LBP_TRACE_EMIT(ts, obs::TraceKind::LoopExit, stats_.cycles,
                       ctx.loopId,
                       static_cast<std::int64_t>(ctx.iterations),
                       ctx.fromBuffer ? 1 : 0);
    };

    while (true) {
        LBP_ASSERT(curBlk != kNoBlock && curBlk < fn.blocks.size(),
                   "sim fell off CFG in ", fn.name);
        const BasicBlock &ibb = fn.blocks[curBlk];
        LBP_ASSERT(!ibb.dead, "sim in dead block");
        const SchedBlock &sb = sf.blocks[curBlk];
        LBP_ASSERT(sb.valid, "sim in unscheduled block ", ibb.name);

        if (curBu >= sb.bundles.size()) {
            LBP_ASSERT(ibb.fallthrough != kNoBlock,
                       "sim fell off block ", ibb.name);
            curBlk = ibb.fallthrough;
            curBu = 0;
            continue;
        }

        const Bundle &bu = sb.bundles[curBu];
        LBP_ASSERT(++bundlesExecuted_ <= cfg_.maxBundles,
                   "bundle budget exceeded");
        ++stats_.bundles;
        ++stats_.cycles;

        // Fetch accounting: are we executing this bundle from the
        // loop buffer? Body ops are attributed to the innermost
        // active loop either way, so per-loop opsFromBuffer sums
        // exactly to the aggregate counter (the scorecard invariant).
        bool fromBuffer = false;
        int issueRow = -1;
        if (!loopStack.empty()) {
            const LoopCtx &top = loopStack.back();
            if (curBlk == top.head) {
                issueRow = top.loopId;
                LoopStats &tls = stats_.loops[top.loopId];
                if (top.fromBuffer) {
                    fromBuffer = true;
                    tls.opsFromBuffer += bu.sizeOps();
                } else {
                    tls.opsFromCache += bu.sizeOps();
                }
            }
        }
        stats_.opsFetched += bu.sizeOps();
        if (fromBuffer)
            stats_.opsFromBuffer += bu.sizeOps();
        cycleStack_.charge(issueRow,
                           fromBuffer
                               ? obs::CycleClass::IssueFromBuffer
                               : obs::CycleClass::IssueFromMemory,
                           1);
        LBP_TRACE_EMIT(ts,
                       fromBuffer ? obs::TraceKind::BufHit
                                  : obs::TraceKind::Fetch,
                       stats_.cycles,
                       fromBuffer ? loopStack.back().loopId : -1,
                       bu.sizeOps(), curBlk);

        // ---- Phase 1: evaluate ----
        std::vector<RegWrite> regWrites;
        std::vector<PredWrite> predWrites;
        std::vector<SlotWrite> slotWrites;
        std::vector<MemWrite> memWrites;

        // Control decision (at most one branch-unit op per bundle).
        // A redirect names the next (block, bundle) pair; freeXfer
        // marks transfers with no fetch-redirect penalty (buffered
        // loop-backs and predicted counted-loop exits).
        bool redirect = false;
        BlockId nextBlk = kNoBlock;
        size_t nextBu = 0;
        bool freeXfer = false;
        // Class/row a non-free redirect is charged to (loop-control
        // transfers override the plain-branch default).
        obs::CycleClass redirCls =
            obs::CycleClass::TakenBranchPenalty;
        int redirRow = -1;
        const Operation *callOp = nullptr;
        const Operation *retOp = nullptr;
        bool sawControl = false;
        auto takeRedirect =
            [&](BlockId blk, size_t buIdx, bool free,
                obs::CycleClass cls =
                    obs::CycleClass::TakenBranchPenalty,
                int row = -1) {
            LBP_ASSERT(!sawControl,
                       "two control transfers in one bundle");
            sawControl = true;
            redirect = true;
            nextBlk = blk;
            nextBu = buIdx;
            freeXfer = free;
            redirCls = cls;
            redirRow = row;
        };

        for (const auto &so : bu.ops) {
            const Operation &op = so.op;
            if (op.op == Opcode::NOP)
                continue;
            if (cfg_.predMode == PredMode::SLOT && op.sensitive)
                ++stats_.opsSensitive;

            const bool exec = opExecutes(fr, op, so.slot);
            if (!exec && op.op != Opcode::PRED_DEF) {
                ++stats_.opsNullified;
                LBP_TRACE_EMIT(ts, obs::TraceKind::Nullify,
                               stats_.cycles, -1,
                               static_cast<std::int64_t>(op.op),
                               so.slot);
                if (op.isBranchOp()) {
                    ++stats_.branches;
                    LBP_TRACE_EMIT(ts, obs::TraceKind::Branch,
                                   stats_.cycles, -1, 0, 1);
                }
                continue;
            }

            switch (op.op) {
              case Opcode::PRED_DEF: {
                // The guard is an input to the define (Table 2).
                bool g;
                if (cfg_.predMode == PredMode::SLOT && op.sensitive) {
                    g = slotPred_[so.slot] != 0;
                } else if (op.guard != kNoPred) {
                    g = fr.preds[op.guard] != 0;
                } else {
                    g = true;
                }
                const std::int64_t a = readOperand(fr, op.srcs[0]);
                const std::int64_t b = readOperand(fr, op.srcs[1]);
                const bool c = evalCond(op.cond, a, b);
                auto apply = [&](PredDefKind k, const Operand &dst) {
                    if (k == PredDefKind::NONE)
                        return;
                    int w = -1;
                    switch (k) {
                      case PredDefKind::UT: w = g ? (c ? 1 : 0) : 0;
                        break;
                      case PredDefKind::UF: w = g ? (c ? 0 : 1) : 0;
                        break;
                      case PredDefKind::OT: if (g && c) w = 1; break;
                      case PredDefKind::OF: if (g && !c) w = 1; break;
                      case PredDefKind::AT: if (g && !c) w = 0; break;
                      case PredDefKind::AF: if (g && c) w = 0; break;
                      case PredDefKind::CT: if (g) w = c; break;
                      case PredDefKind::CF: if (g) w = !c; break;
                      default: LBP_PANIC("bad def kind");
                    }
                    if (w < 0)
                        return;
                    if (dst.isSlot()) {
                        slotWrites.push_back(
                            {dst.asSlot(),
                             static_cast<std::uint8_t>(w)});
                    } else {
                        predWrites.push_back(
                            {dst.asPred(),
                             static_cast<std::uint8_t>(w)});
                    }
                };
                apply(op.defKind0, op.dsts[0]);
                if (op.dsts.size() > 1)
                    apply(op.defKind1, op.dsts[1]);
                break;
              }

              case Opcode::LD_B:
              case Opcode::LD_H:
              case Opcode::LD_W: {
                const std::int64_t addr =
                    readOperand(fr, op.srcs[0]) +
                    readOperand(fr, op.srcs[1]);
                const size_t need = op.op == Opcode::LD_B ? 1
                                    : op.op == Opcode::LD_H ? 2 : 4;
                std::int64_t v = 0;
                const bool oob =
                    addr < 0 ||
                    static_cast<size_t>(addr) + need > mem_.size();
                if (oob) {
                    LBP_ASSERT(op.speculative,
                               "non-speculative load fault @", addr);
                    v = 0;
                } else {
                    std::uint32_t raw = 0;
                    for (size_t i = 0; i < need; ++i) {
                        raw |= static_cast<std::uint32_t>(
                                   mem_[addr + i]) << (8 * i);
                    }
                    v = op.op == Opcode::LD_B
                            ? static_cast<std::int8_t>(raw)
                        : op.op == Opcode::LD_H
                            ? static_cast<std::int16_t>(raw)
                            : static_cast<std::int32_t>(raw);
                }
                regWrites.push_back({op.dsts[0].asReg(), v});
                break;
              }

              case Opcode::ST_B:
              case Opcode::ST_H:
              case Opcode::ST_W: {
                const std::int64_t addr =
                    readOperand(fr, op.srcs[0]) +
                    readOperand(fr, op.srcs[1]);
                memWrites.push_back(
                    {op.op, addr, readOperand(fr, op.srcs[2])});
                break;
              }

              case Opcode::MOV:
                regWrites.push_back({op.dsts[0].asReg(),
                                     readOperand(fr, op.srcs[0])});
                break;
              case Opcode::ABS:
                regWrites.push_back(
                    {op.dsts[0].asReg(),
                     std::abs(readOperand(fr, op.srcs[0]))});
                break;
              case Opcode::ITOF:
                regWrites.push_back(
                    {op.dsts[0].asReg(),
                     asBits(static_cast<double>(
                         readOperand(fr, op.srcs[0])))});
                break;
              case Opcode::FTOI:
                regWrites.push_back(
                    {op.dsts[0].asReg(),
                     static_cast<std::int64_t>(
                         asDouble(readOperand(fr, op.srcs[0])))});
                break;
              case Opcode::SELECT: {
                const std::int64_t c = readOperand(fr, op.srcs[0]);
                regWrites.push_back(
                    {op.dsts[0].asReg(),
                     c ? readOperand(fr, op.srcs[1])
                       : readOperand(fr, op.srcs[2])});
                break;
              }

              case Opcode::BR:
              case Opcode::BR_WLOOP: {
                ++stats_.branches;
                const std::int64_t a = readOperand(fr, op.srcs[0]);
                const std::int64_t b = readOperand(fr, op.srcs[1]);
                const bool taken = evalCond(op.cond, a, b);
                LBP_TRACE_EMIT(ts, obs::TraceKind::Branch,
                               stats_.cycles, -1, taken ? 1 : 0, 0);
                const bool isWloopBack =
                    op.op == Opcode::BR_WLOOP && !loopStack.empty() &&
                    !loopStack.back().counted &&
                    op.target == loopStack.back().head;
                if (taken) {
                    ++stats_.branchesTaken;
                    if (isWloopBack) {
                        LoopCtx &ctx = loopStack.back();
                        ++ctx.iterations;
                        if (ctx.fromBuffer) {
                            ++stats_.loops[ctx.loopId]
                                  .bufferIterations;
                        }
                        // Loop-backs of buffered loops are free (the
                        // buffer predicts them taken while looping).
                        takeRedirect(
                            op.target, 0, ctx.buffered,
                            obs::CycleClass::LoopControlOverhead,
                            ctx.loopId);
                        if (ctx.buffered)
                            ctx.fromBuffer = true;
                    } else {
                        takeRedirect(op.target, 0, false);
                    }
                } else if (isWloopBack) {
                    // While-loop exit: retire the context. Exits are
                    // mispredicted when issuing from the buffer (the
                    // buffer keeps replaying); from memory the
                    // fall-through is the natural fetch path.
                    LoopCtx ctx = loopStack.back();
                    loopStack.pop_back();
                    ++ctx.iterations;
                    if (ctx.fromBuffer) {
                        ++stats_.loops[ctx.loopId].bufferIterations;
                        chargeRedirect(
                            obs::CycleClass::WhileExitPenalty,
                            ctx.loopId);
                        LBP_TRACE_EMIT(ts, obs::TraceKind::Penalty,
                                       stats_.cycles, ctx.loopId,
                                       cfg_.branchPenalty,
                                       obs::kPenaltyWloopExit);
                    }
                    retireLoop(ctx);
                    if (ctx.isExec) {
                        takeRedirect(ctx.resumeBlock,
                                     ctx.resumeBundle, true);
                    }
                }
                break;
              }

              case Opcode::JUMP:
                ++stats_.branches;
                ++stats_.branchesTaken;
                LBP_TRACE_EMIT(ts, obs::TraceKind::Branch,
                               stats_.cycles, -1, 1, 0);
                takeRedirect(op.target, 0, false);
                break;

              case Opcode::BR_CLOOP: {
                ++stats_.branches;
                LBP_ASSERT(!loopStack.empty() &&
                               loopStack.back().counted,
                           "br.cloop without context in ", fn.name);
                LoopCtx &ctx = loopStack.back();
                ++ctx.iterations;
                if (ctx.fromBuffer)
                    ++stats_.loops[ctx.loopId].bufferIterations;
                --ctx.remaining;
                LBP_TRACE_EMIT(ts, obs::TraceKind::Branch,
                               stats_.cycles, ctx.loopId,
                               ctx.remaining > 0 ? 1 : 0, 0);
                if (ctx.remaining > 0) {
                    ++stats_.branchesTaken;
                    // Counted loop-backs of buffered loops are free;
                    // unbuffered ones redirect fetch like any taken
                    // branch (charged as loop-control overhead).
                    takeRedirect(
                        op.target, 0, ctx.buffered,
                        obs::CycleClass::LoopControlOverhead,
                        ctx.loopId);
                    // After the first (recording) iteration, fetch
                    // shifts to the buffer.
                    if (ctx.buffered)
                        ctx.fromBuffer = true;
                } else {
                    // Counted exit: fall-through, predicted by the
                    // count — never a redirect.
                    LoopCtx done = ctx;
                    loopStack.pop_back();
                    retireLoop(done);
                    if (done.isExec) {
                        takeRedirect(done.resumeBlock,
                                     done.resumeBundle, true);
                    }
                }
                break;
              }

              case Opcode::REC_CLOOP:
              case Opcode::REC_WLOOP:
              case Opcode::EXEC_CLOOP:
              case Opcode::EXEC_WLOOP: {
                LoopCtx ctx;
                ctx.key = {f, op.id};
                ctx.loopId = loopTable_->idOf(ctx.key);
                ctx.counted = op.op == Opcode::REC_CLOOP ||
                              op.op == Opcode::EXEC_CLOOP;
                if (ctx.counted) {
                    ctx.remaining = readOperand(fr, op.srcs[0]);
                    LBP_ASSERT(ctx.remaining >= 1,
                               "cloop with count ", ctx.remaining);
                }
                ctx.head = op.target;
                const SchedBlock &body = sf.blocks[op.target];
                ctx.pipelined = body.pipelined;
                ctx.bodyLen = body.lengthCycles();
                ctx.ii = body.ii;
                ctx.minII = body.minII;
                ctx.buffered = op.bufAddr >= 0;
                LoopStats &ls = stats_.loops[ctx.loopId];
                ++ls.activations;
                bool recorded = false;
                if (ctx.buffered) {
                    if (buffer_.isResident(ctx.key)) {
                        buffer_.countTableHit();
                        ctx.fromBuffer = true;
                    } else {
                        buffer_.record(ctx.key, op.bufAddr,
                                       body.imageOps(),
                                       &evictedKeys);
                        for (const LoopKey &ek : evictedKeys) {
                            ++stats_.loops[loopTable_->idOf(ek)]
                                  .evictions;
                        }
                        ++ls.recordings;
                        ctx.fromBuffer = false;
                        recorded = true;
                    }
                }
                LBP_TRACE_EMIT(ts, obs::TraceKind::LoopEnter,
                               stats_.cycles, ctx.loopId,
                               ctx.counted ? 1 : 0,
                               ctx.fromBuffer ? 1 : 0);
                if (recorded) {
                    LBP_TRACE_EMIT(ts, obs::TraceKind::LoopRecord,
                                   stats_.cycles, ctx.loopId,
                                   op.bufAddr, body.imageOps());
                }
                const bool isExecOp =
                    op.op == Opcode::EXEC_CLOOP ||
                    op.op == Opcode::EXEC_WLOOP;
                if (isExecOp) {
                    ctx.isExec = true;
                    ctx.resumeBlock = curBlk;
                    ctx.resumeBundle = curBu + 1;
                    // Executing an already-buffered loop: no fetch
                    // redirect cost; a cold entry is loop-control
                    // overhead.
                    takeRedirect(
                        op.target, 0, ctx.fromBuffer,
                        obs::CycleClass::LoopControlOverhead,
                        ctx.loopId);
                }
                loopStack.push_back(ctx);
                break;
              }

              case Opcode::CALL:
                LBP_ASSERT(!callOp, "two calls in one bundle");
                callOp = &op;
                break;

              case Opcode::RET:
                retOp = &op;
                break;

              case Opcode::NOP:
                break;

              default: {
                // Binary ALU family.
                const std::int64_t a = readOperand(fr, op.srcs[0]);
                const std::int64_t b = readOperand(fr, op.srcs[1]);
                std::int64_t v = 0;
                switch (op.op) {
                  case Opcode::ADD: v = a + b; break;
                  case Opcode::SUB: v = a - b; break;
                  case Opcode::MUL: v = a * b; break;
                  case Opcode::DIV:
                    LBP_ASSERT(b != 0, "div by zero");
                    v = a / b;
                    break;
                  case Opcode::REM:
                    LBP_ASSERT(b != 0, "rem by zero");
                    v = a % b;
                    break;
                  case Opcode::AND: v = a & b; break;
                  case Opcode::OR: v = a | b; break;
                  case Opcode::XOR: v = a ^ b; break;
                  case Opcode::SHL: v = a << (b & 63); break;
                  case Opcode::SHR:
                    v = static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a) >> (b & 63));
                    break;
                  case Opcode::SHRA: v = a >> (b & 63); break;
                  case Opcode::MIN: v = std::min(a, b); break;
                  case Opcode::MAX: v = std::max(a, b); break;
                  case Opcode::SATADD: v = sat16(a + b); break;
                  case Opcode::SATSUB: v = sat16(a - b); break;
                  case Opcode::CMP:
                    v = evalCond(op.cond, a, b) ? 1 : 0;
                    break;
                  case Opcode::FADD:
                    v = asBits(asDouble(a) + asDouble(b));
                    break;
                  case Opcode::FSUB:
                    v = asBits(asDouble(a) - asDouble(b));
                    break;
                  case Opcode::FMUL:
                    v = asBits(asDouble(a) * asDouble(b));
                    break;
                  case Opcode::FDIV:
                    v = asBits(asDouble(a) / asDouble(b));
                    break;
                  default:
                    LBP_PANIC("unhandled opcode in sim: ",
                              opcodeName(op.op));
                }
                regWrites.push_back({op.dsts[0].asReg(), v});
                break;
              }
            }
        }

        // ---- Phase 2: commit ----
        for (const auto &w : regWrites)
            fr.regs[w.r] = w.v;
        for (const auto &w : predWrites)
            fr.preds[w.p] = w.v;
        for (size_t i = 0; i < slotWrites.size(); ++i) {
            for (size_t j = i + 1; j < slotWrites.size(); ++j) {
                LBP_ASSERT(slotWrites[i].s != slotWrites[j].s ||
                               slotWrites[i].v == slotWrites[j].v,
                           "conflicting same-cycle slot-predicate "
                           "writes");
            }
            slotPred_[slotWrites[i].s] = slotWrites[i].v;
        }
        for (const auto &w : memWrites) {
            const size_t need = w.op == Opcode::ST_B ? 1
                                : w.op == Opcode::ST_H ? 2 : 4;
            LBP_ASSERT(w.addr >= 0 &&
                           static_cast<size_t>(w.addr) + need <=
                               mem_.size(),
                       "store fault @", w.addr);
            for (size_t i = 0; i < need; ++i) {
                mem_[w.addr + i] = static_cast<std::uint8_t>(
                    (w.v >> (8 * i)) & 0xff);
            }
        }

        // Call/return (serialize: the call is the bundle's transfer).
        if (retOp) {
            std::vector<std::int64_t> rets;
            for (const auto &s : retOp->srcs)
                rets.push_back(readOperand(fr, s));
            // Returning with live loop contexts would corrupt the
            // caller's hardware loop stack.
            LBP_ASSERT(loopStack.empty(),
                       "RET with live hardware-loop context in ",
                       fn.name);
            chargeRedirect(obs::CycleClass::CallReturnPenalty, -1);
            LBP_TRACE_EMIT(ts, obs::TraceKind::Penalty, stats_.cycles,
                           -1, cfg_.branchPenalty, obs::kPenaltyReturn);
            --callDepth_;
            return rets;
        }
        if (callOp) {
            std::vector<std::int64_t> cargs;
            for (const auto &s : callOp->srcs)
                cargs.push_back(readOperand(fr, s));
            chargeRedirect(obs::CycleClass::CallReturnPenalty, -1);
            LBP_TRACE_EMIT(ts, obs::TraceKind::Penalty, stats_.cycles,
                           -1, cfg_.branchPenalty, obs::kPenaltyCall);
            auto rets = callFunction(callOp->callee, cargs);
            for (size_t i = 0; i < callOp->dsts.size(); ++i)
                fr.regs[callOp->dsts[i].asReg()] = rets[i];
        }

        // Control transfer. A taken transfer that leaves the active
        // hardware loop's body cancels its context (zero-overhead-
        // loop hardware cancels on branches out of the loop).
        if (redirect) {
            while (!loopStack.empty() &&
                   loopStack.back().head == curBlk &&
                   nextBlk != loopStack.back().head) {
                LoopCtx done = loopStack.back();
                loopStack.pop_back();
                retireLoop(done);
            }
            if (!freeXfer) {
                chargeRedirect(redirCls, redirRow);
                LBP_TRACE_EMIT(ts, obs::TraceKind::Penalty,
                               stats_.cycles, -1, cfg_.branchPenalty,
                               obs::kPenaltyBranch);
            }
            curBlk = nextBlk;
            curBu = nextBu;
        } else {
            ++curBu;
        }
    }
}

} // namespace lbp
