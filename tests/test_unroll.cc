/**
 * @file
 * Loop-unrolling tests: static-trip unrolling correctness, divisibility
 * and shape rejections, and interaction with scheduling.
 */

#include <gtest/gtest.h>

#include "analysis/loop_info.hh"
#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "transform/unroll.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

Program
sumLoop(int trip)
{
    Program prog;
    const auto data = prog.allocData(1024);
    prog.checksumBase = data;
    prog.checksumSize = 16;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, trip, 1, [&](RegId i) {
        const RegId sq = b.mul(R(i), R(i));
        b.addTo(acc, R(acc), R(sq));
    });
    b.storeW(R(dp), I(0), R(acc));
    b.ret({R(acc)});
    return prog;
}

BlockId
loopHeader(const Function &fn)
{
    LoopInfo li(fn);
    EXPECT_EQ(li.loops().size(), 1u);
    return li.loops()[0].header;
}

class UnrollFactorTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(UnrollFactorTest, SemanticsPreserved)
{
    const auto [trip, factor] = GetParam();
    Program prog = sumLoop(trip);
    Interpreter pre(prog);
    const auto before = pre.run();

    Function &fn = prog.functions[prog.entryFunc];
    const BlockId head = loopHeader(fn);
    const int opsBefore = fn.blocks[head].sizeOps();
    ASSERT_TRUE(unrollLoop(fn, head, factor));
    verifyOrDie(fn);
    // The backedge is not replicated: factor copies of the body plus
    // one branch.
    EXPECT_EQ(fn.blocks[head].sizeOps(),
              (opsBefore - 1) * factor + 1);

    Interpreter post(prog);
    const auto after = post.run();
    EXPECT_EQ(before.checksum, after.checksum);
    EXPECT_EQ(before.returns, after.returns);
    // Dynamic branch count shrinks by ~factor.
    EXPECT_LT(after.dynBranches, before.dynBranches);
}

INSTANTIATE_TEST_SUITE_P(
    Factors, UnrollFactorTest,
    ::testing::Values(std::make_pair(8, 2), std::make_pair(8, 4),
                      std::make_pair(12, 3), std::make_pair(30, 5)));

TEST(Unroll, IndivisibleTripRejected)
{
    Program prog = sumLoop(10);
    Function &fn = prog.functions[prog.entryFunc];
    EXPECT_FALSE(unrollLoop(fn, loopHeader(fn), 3));
}

TEST(Unroll, TripSmallerThanFactorRejected)
{
    Program prog = sumLoop(2);
    Function &fn = prog.functions[prog.entryFunc];
    EXPECT_FALSE(unrollLoop(fn, loopHeader(fn), 4));
}

TEST(Unroll, NonLoopBlockRejected)
{
    Program prog = sumLoop(8);
    Function &fn = prog.functions[prog.entryFunc];
    EXPECT_FALSE(unrollLoop(fn, fn.entry, 2));
}

TEST(Unroll, SmallLoopsDriver)
{
    Program prog = sumLoop(16);
    Function &fn = prog.functions[prog.entryFunc];
    Interpreter pre(prog);
    const auto before = pre.run();
    auto st = unrollSmallLoops(fn, 4, 64);
    EXPECT_EQ(st.loopsUnrolled, 1);
    EXPECT_GT(st.opsAdded, 0);
    Interpreter post(prog);
    EXPECT_EQ(post.run().checksum, before.checksum);
}

} // namespace
} // namespace lbp
