/**
 * @file
 * Figure 5: g724dec Post_Filter() buffer content traces. Compiles the
 * standalone Post_Filter replica (4 outer iterations over the twelve
 * A..L loops) and reports, for 16/32/64-operation buffers, each
 * loop's image size, buffer address, recordings, and buffered/total
 * iterations, plus the overall buffer-issue percentage (paper: 1.23%,
 * 6.32%, 98.22%).
 */

#include <cstdio>

#include "bench_common.hh"
#include "workloads/workloads.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    std::printf("=== Figure 5: Post_Filter() loop buffer traces ===\n\n");

    Program prog = workloads::buildPostFilterOnly();
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    const double paper[3] = {1.23, 6.32, 98.22};
    const int sizes[3] = {16, 32, 64};
    for (int i = 0; i < 3; ++i) {
        const int size = sizes[i];
        const SimStats st = simulate(cr, size);
        std::printf("%d-operation loop buffer\n", size);
        rule();
        std::printf("%-28s %6s %6s %6s %10s %12s\n", "loop", "ops",
                    "addr", "recs", "buffered", "iterations");
        rule();
        for (const LoopStats *ls : st.activeLoops()) {
            std::printf("%-28s %6d %6d %6llu %10llu %12llu\n",
                        ls->name.c_str(), ls->imageOps, ls->bufAddr,
                        (unsigned long long)ls->recordings,
                        (unsigned long long)ls->bufferIterations,
                        (unsigned long long)ls->iterations);
        }
        rule();
        std::printf("total issue: %llu ops, %.2f%% from buffer "
                    "(paper: %.2f%%)\n\n",
                    (unsigned long long)st.opsFetched,
                    100.0 * st.bufferFraction(), paper[i]);
    }
    return 0;
}
