/**
 * @file
 * Power-model tests: CACTI-lite calibration to the paper's 41.8x
 * ratio, monotonicity in size and ports, and fetch-energy
 * aggregation.
 */

#include <gtest/gtest.h>

#include "power/cacti_lite.hh"
#include "power/fetch_energy.hh"

namespace lbp
{
namespace
{

TEST(CactiLite, CalibratedRatioMatchesPaper)
{
    CactiLite model;
    EXPECT_NEAR(model.calibratedRatio(), 41.8, 0.05);
}

TEST(CactiLite, MonotoneInSize)
{
    CactiLite model;
    double last = 0;
    for (double bytes : {64.0, 256.0, 1024.0, 65536.0, 524288.0}) {
        const double e = model.readEnergy(bytes, 1);
        EXPECT_GT(e, last);
        last = e;
    }
}

TEST(CactiLite, MonotoneInPorts)
{
    CactiLite model;
    EXPECT_GT(model.readEnergy(1024, 2), model.readEnergy(1024, 1));
    EXPECT_GT(model.readEnergy(1024, 4), model.readEnergy(1024, 2));
}

TEST(CactiLite, SqrtSizeScaling)
{
    CactiLite model;
    const double e1 = model.readEnergy(1024, 1);
    const double e4 = model.readEnergy(4096, 1);
    EXPECT_NEAR(e4 / e1, 2.0, 1e-9); // (4x size)^0.5
}

TEST(CactiLite, BufferEnergyGrowsWithBufferSize)
{
    CactiLite model;
    double last = 0;
    for (int ops : {16, 64, 256, 1024, 2048}) {
        const double e = model.bufferFetchEnergy(ops);
        EXPECT_GT(e, last);
        last = e;
    }
    EXPECT_LT(last, model.memoryFetchEnergy());
}

TEST(CactiLite, ZeroBufferActsAsMemory)
{
    CactiLite model;
    EXPECT_DOUBLE_EQ(model.bufferFetchEnergy(0),
                     model.memoryFetchEnergy());
}

TEST(FetchEnergy, SplitsByFetchSource)
{
    CactiLite model;
    SimStats st;
    st.opsFetched = 1000;
    st.opsFromBuffer = 900;
    const FetchEnergy e = computeFetchEnergy(st, 256, model);
    EXPECT_EQ(e.opsFromBuffer, 900u);
    EXPECT_EQ(e.opsFromMemory, 100u);
    EXPECT_NEAR(e.totalNj,
                900 * model.bufferFetchEnergy(256) +
                    100 * model.memoryFetchEnergy(),
                1e-9);
    // With a 41.8x ratio, 90% buffered cuts energy by ~88%.
    const double unbuf = unbufferedEnergyNj(1000, model);
    EXPECT_LT(e.totalNj, 0.15 * unbuf);
    EXPECT_GT(e.totalNj, 0.10 * unbuf);
}

TEST(FetchEnergy, AllMemoryEqualsUnbuffered)
{
    CactiLite model;
    SimStats st;
    st.opsFetched = 777;
    st.opsFromBuffer = 0;
    const FetchEnergy e = computeFetchEnergy(st, 256, model);
    EXPECT_DOUBLE_EQ(e.totalNj, unbufferedEnergyNj(777, model));
}

} // namespace
} // namespace lbp
