#!/usr/bin/env bash
# CLI-level tests for tools/lbp_stats, driven by ctest (label: obs).
#
#   test_cli.sh <lbp_stats-binary> <golden-dir> <case>
#
# Cases:
#   run_golden    `run` table output matches the checked-in golden,
#                 after dropping the nondeterministic phase-timing
#                 gauges (names ending in ".ms") — every other line,
#                 counters and energies included, is bit-exact.
#   loops_golden  `loops` scorecard is fully deterministic (counters
#                 and fixed-precision energies only) and matches the
#                 golden verbatim.
#   diff_exit     `diff` exits 0 on identical dumps and 1 on a dump
#                 with one mutated counter, naming the mutated key.
#   history_gate  `history append` twice builds a deterministic
#                 baseline; `history check` passes the unmutated dump
#                 (exit 0), fails an injected timing slowdown with
#                 REGRESSED naming the key, and fails a mutated
#                 counter with EXACT-MISMATCH (both exit 1).
#   cycles_golden `loops --cycles` appends the per-loop cycle stack
#                 (counters only, fully deterministic) and matches the
#                 golden verbatim.
#   explain_delta `explain` between a trace-cache-off and a
#                 trace-cache-on dump of the same workload reports a
#                 zero total cycle delta with the issue split moving
#                 into issueFromTraceReplay; self-explain reports
#                 identical stacks.
#   history_prune `history prune --keep=N` drops all but the newest N
#                 records per source; keep < 1 is a usage error
#                 (exit 2).
#   report_golden `report` writes one self-contained HTML file: every
#                 section anchor present, inline SVG sparklines, and
#                 no external fetches (no http/https URLs at all).
#   sort_reject   `loops --sort=<key>` accepts exactly the documented
#                 keys; an unknown key exits 2 and the error names
#                 the accepted list before any compilation starts.
#   prof_smoke    `prof` samples a repeated workload run, prints the
#                 region table with an attribution line, and exports
#                 non-empty collapsed stacks; on an LBP_PROF=OFF
#                 build the command degrades to a clear exit-1
#                 message instead (both outcomes pass the case).
#   pmu_smoke     `pmu` exits 0 on EVERY host: with a usable PMU it
#                 prints the per-region counter table; without one
#                 (VMs, containers, perf_event_paranoid, LBP_PMU=OFF)
#                 it names the reason and the --json registry dump
#                 publishes pmu.available=0. Both arms check the dump.
#   explain_missing
#                 `explain` on a document without cycle-class keys is
#                 a diagnosable input error: exit 2, the message names
#                 the offending file and lists the expected leaves.
#   version       `--version` prints the schema triple, and the same
#                 git SHA is stamped into every emitted JSON document.
set -u

LBP_STATS=$1
GOLDEN_DIR=$2
CASE=$3

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

case "$CASE" in
  run_golden)
    "$LBP_STATS" run adpcm_dec --buffer=256 | grep -v '\.ms  *' \
        > "$TMP/run.txt" || fail "lbp_stats run exited nonzero"
    diff -u "$GOLDEN_DIR/lbp_stats_run_adpcm_dec.txt" "$TMP/run.txt" \
        || fail "run output diverged from golden"
    ;;

  loops_golden)
    "$LBP_STATS" loops adpcm_enc --buffer=256 > "$TMP/loops.txt" \
        || fail "lbp_stats loops exited nonzero"
    diff -u "$GOLDEN_DIR/lbp_stats_loops_adpcm_enc.txt" \
        "$TMP/loops.txt" || fail "loops scorecard diverged from golden"
    ;;

  cycles_golden)
    "$LBP_STATS" loops adpcm_enc --buffer=256 --cycles \
        > "$TMP/cycles.txt" \
        || fail "lbp_stats loops --cycles exited nonzero"
    diff -u "$GOLDEN_DIR/lbp_stats_loops_cycles_adpcm_enc.txt" \
        "$TMP/cycles.txt" || fail "cycle stack diverged from golden"
    ;;

  explain_delta)
    # The same workload with the trace cache off vs on: identical
    # cycles (the engines are pinned), but the issue split moves into
    # the replay class — exactly the movement `explain` exists to
    # decompose.
    LBP_SIM_NO_TRACE_CACHE=1 "$LBP_STATS" run adpcm_dec --buffer=256 \
        --json="$TMP/off.json" > /dev/null \
        || fail "lbp_stats run (cache off) exited nonzero"
    "$LBP_STATS" run adpcm_dec --buffer=256 --json="$TMP/on.json" \
        > /dev/null || fail "lbp_stats run (cache on) exited nonzero"

    "$LBP_STATS" explain "$TMP/off.json" "$TMP/on.json" \
        > "$TMP/explain.txt" || fail "explain exited nonzero"
    grep -q 'cycle delta:' "$TMP/explain.txt" \
        || fail "explain should print the delta header"
    grep -q '(+0)$' "$TMP/explain.txt" \
        || fail "total cycle delta between the runs should be +0"
    grep -q 'issueFromTraceReplay' "$TMP/explain.txt" \
        || fail "explain should show cycles moving into replay"

    "$LBP_STATS" explain "$TMP/on.json" "$TMP/on.json" \
        > "$TMP/same.txt" || fail "self-explain exited nonzero"
    grep -q 'stacks are identical' "$TMP/same.txt" \
        || fail "self-explain should report identical stacks"
    ;;

  history_prune)
    H=$TMP/h.jsonl
    "$LBP_STATS" run adpcm_dec --buffer=256 --json="$TMP/a.json" \
        > /dev/null || fail "lbp_stats run --json exited nonzero"
    for i in 1 2 3; do
        "$LBP_STATS" history append "$TMP/a.json" --history="$H" \
            > /dev/null || fail "history append ($i) exited nonzero"
    done
    "$LBP_STATS" history prune --keep=1 --history="$H" \
        > "$TMP/prune.txt" || fail "history prune exited nonzero"
    grep -q 'pruned 2 record(s)' "$TMP/prune.txt" \
        || fail "prune should report dropping 2 of 3 records"
    "$LBP_STATS" history list --history="$H" > "$TMP/list.txt" \
        || fail "history list exited nonzero"
    grep -q '1 record(s)' "$TMP/list.txt" \
        || fail "history should hold 1 record after prune"
    # The survivor is the newest record, so the gate still passes.
    "$LBP_STATS" history check "$TMP/a.json" --history="$H" \
        > /dev/null || fail "check should pass against the survivor"

    "$LBP_STATS" history prune --keep=0 --history="$H" \
        > /dev/null 2> "$TMP/err.txt"
    rc=$?
    [ $rc -eq 2 ] || fail "prune --keep=0 exited $rc, want 2"
    ;;

  diff_exit)
    "$LBP_STATS" run adpcm_dec --buffer=256 --json="$TMP/a.json" \
        > /dev/null || fail "lbp_stats run --json exited nonzero"

    "$LBP_STATS" diff "$TMP/a.json" "$TMP/a.json" > "$TMP/same.txt"
    [ $? -eq 0 ] || fail "self-diff should exit 0"
    grep -q identical "$TMP/same.txt" \
        || fail "self-diff should print 'identical'"

    # Mutate one counter value (cycles: 73781 -> 73782).
    sed 's/"sim\.cycles": *\([0-9]*\)/"sim.cycles": 9\1/' \
        "$TMP/a.json" > "$TMP/b.json"
    cmp -s "$TMP/a.json" "$TMP/b.json" \
        && fail "sed mutation did not change the dump"

    "$LBP_STATS" diff "$TMP/a.json" "$TMP/b.json" > "$TMP/diff.txt"
    rc=$?
    [ $rc -eq 1 ] || fail "diff on mutated dump exited $rc, want 1"
    grep -q 'sim\.cycles' "$TMP/diff.txt" \
        || fail "diff output should name the mutated key"
    ;;

  history_gate)
    H=$TMP/h.jsonl
    "$LBP_STATS" run adpcm_dec --buffer=256 --json="$TMP/a.json" \
        > /dev/null || fail "lbp_stats run --json exited nonzero"

    "$LBP_STATS" history append "$TMP/a.json" --history="$H" \
        > /dev/null || fail "history append (1) exited nonzero"
    "$LBP_STATS" history append "$TMP/a.json" --history="$H" \
        > /dev/null || fail "history append (2) exited nonzero"
    "$LBP_STATS" history list --history="$H" > "$TMP/list.txt" \
        || fail "history list exited nonzero"
    grep -q '2 record(s)' "$TMP/list.txt" \
        || fail "history list should count 2 records"

    # The baseline is the appended doc itself, so the unmutated dump
    # must pass bit-for-bit — timing gauges included.
    "$LBP_STATS" history check "$TMP/a.json" --history="$H" \
        > "$TMP/pass.txt"
    [ $? -eq 0 ] || fail "clean history check should exit 0"
    grep -q 'verdict: PASS' "$TMP/pass.txt" \
        || fail "clean check should print 'verdict: PASS'"

    # Inject a slowdown into a timing gauge (prepend a digit, same
    # trick as diff_exit): the gate must fail naming that key while
    # the untouched counters still pass.
    sed 's/"compile\.total\.ms": \([0-9]\)/"compile.total.ms": 9\1/' \
        "$TMP/a.json" > "$TMP/slow.json"
    cmp -s "$TMP/a.json" "$TMP/slow.json" \
        && fail "sed mutation did not change the dump"
    "$LBP_STATS" history check "$TMP/slow.json" --history="$H" \
        > "$TMP/slow.txt"
    rc=$?
    [ $rc -eq 1 ] || fail "slowdown check exited $rc, want 1"
    grep -q 'REGRESSED' "$TMP/slow.txt" \
        || fail "slowdown should be judged REGRESSED"
    grep -q 'compile\\\.total\\\.ms' "$TMP/slow.txt" \
        || fail "verdict should name the slowed key"

    # A drifted counter is an exact mismatch, not a window judgment.
    sed 's/"sim\.cycles": *\([0-9]*\)/"sim.cycles": 9\1/' \
        "$TMP/a.json" > "$TMP/drift.json"
    "$LBP_STATS" history check "$TMP/drift.json" --history="$H" \
        > "$TMP/drift.txt"
    rc=$?
    [ $rc -eq 1 ] || fail "counter-drift check exited $rc, want 1"
    grep -q 'EXACT-MISMATCH' "$TMP/drift.txt" \
        || fail "counter drift should be EXACT-MISMATCH"
    ;;

  report_golden)
    H=$TMP/h.jsonl
    "$LBP_STATS" run adpcm_dec --buffer=256 --json="$TMP/a.json" \
        > /dev/null || fail "lbp_stats run --json exited nonzero"
    "$LBP_STATS" history append "$TMP/a.json" --history="$H" \
        > /dev/null || fail "history append exited nonzero"
    "$LBP_STATS" report adpcm_dec --buffer=256 --history="$H" \
        --out="$TMP/r.html" > /dev/null \
        || fail "lbp_stats report exited nonzero"
    [ -s "$TMP/r.html" ] || fail "report wrote no output"

    for anchor in meta gate trajectories metrics histograms \
                  scorecard cycles phases prof pmu; do
        grep -q "id=\"$anchor\"" "$TMP/r.html" \
            || fail "report is missing section #$anchor"
    done
    grep -q '<svg' "$TMP/r.html" \
        || fail "report should inline SVG charts"
    grep -q 'class="spark"' "$TMP/r.html" \
        || fail "report should render sparkline trajectories"
    # Self-contained: a single file with zero external fetches.
    grep -qiE 'https?://|<script src|<link ' "$TMP/r.html" \
        && fail "report must not reference external resources"
    ;;

  sort_reject)
    # The accepted keys all parse (and run a real scorecard).
    for key in ops gain evictions bailouts replay; do
        "$LBP_STATS" loops adpcm_enc --buffer=256 --sort="$key" \
            > /dev/null || fail "--sort=$key should be accepted"
    done
    # An unknown key is a usage error: exit 2, and the message names
    # the accepted list so the user need not open the docs.
    "$LBP_STATS" loops adpcm_enc --sort=bogus > /dev/null \
        2> "$TMP/err.txt"
    rc=$?
    [ $rc -eq 2 ] || fail "unknown sort key exited $rc, want 2"
    grep -q "unknown sort key 'bogus'" "$TMP/err.txt" \
        || fail "error should name the rejected key"
    grep -q 'ops|gain|evictions|bailouts|replay' "$TMP/err.txt" \
        || fail "error should list the accepted keys"
    ;;

  prof_smoke)
    "$LBP_STATS" prof adpcm_enc --reps=20 --out="$TMP/stacks.folded" \
        > "$TMP/prof.txt" 2> "$TMP/prof.err"
    rc=$?
    if [ $rc -ne 0 ]; then
        # An LBP_PROF=OFF build (or a kernel without per-thread CPU
        # timers) must say so clearly — anything else is a failure.
        grep -qE 'compiled out|cannot arm' "$TMP/prof.err" \
            || fail "prof failed without naming the cause"
        echo "PASS: $CASE (profiler unavailable: $(cat "$TMP/prof.err"))"
        exit 0
    fi
    grep -q 'attributed:' "$TMP/prof.txt" \
        || fail "prof output should report the attributed fraction"
    grep -q 'region' "$TMP/prof.txt" \
        || fail "prof output should print the region table"
    [ -s "$TMP/stacks.folded" ] \
        || fail "prof --out should write non-empty collapsed stacks"
    # Collapsed-stack lines are "path;leaf <count>".
    grep -qE '^[A-Za-z][^ ]* [0-9]+$' "$TMP/stacks.folded" \
        || fail "collapsed stacks are malformed"
    ;;

  pmu_smoke)
    "$LBP_STATS" pmu adpcm_enc --reps=2 --json="$TMP/pmu.json" \
        > "$TMP/pmu.txt" 2> "$TMP/pmu.err"
    rc=$?
    [ $rc -eq 0 ] || fail "pmu exited $rc, want 0 on every host"
    [ -s "$TMP/pmu.json" ] || fail "pmu --json wrote no dump"
    if grep -q 'host pmu unavailable' "$TMP/pmu.txt"; then
        # The graceful arm: the reason is printed and the dump says
        # available=0 — downstream tooling sees "no data", never a
        # silent gap or a crash.
        grep -q '"pmu\.available": 0' "$TMP/pmu.json" \
            || fail "unavailable pmu should publish pmu.available=0"
        grep -q '"pmu\.reason"' "$TMP/pmu.json" \
            || fail "unavailable pmu should publish its reason"
    else
        grep -q 'region' "$TMP/pmu.txt" \
            || fail "pmu output should print the region table"
        grep -q 'attributed to named regions' "$TMP/pmu.txt" \
            || fail "pmu output should report attribution quality"
        grep -q '"pmu\.available": 1' "$TMP/pmu.json" \
            || fail "available pmu should publish pmu.available=1"
        grep -q '"pmu\.total\.cycles"' "$TMP/pmu.json" \
            || fail "available pmu should publish total cycles"
    fi
    # The dump is a normal registry document either way.
    grep -q '"sim\.cycles"' "$TMP/pmu.json" \
        || fail "pmu --json should carry the workload's counters"
    ;;

  explain_missing)
    "$LBP_STATS" run adpcm_dec --buffer=256 --json="$TMP/a.json" \
        > /dev/null || fail "lbp_stats run --json exited nonzero"
    printf '{"schema_version": 5, "bench": "empty"}\n' \
        > "$TMP/empty.json"
    "$LBP_STATS" explain "$TMP/empty.json" "$TMP/a.json" \
        > "$TMP/out.txt" 2>&1
    rc=$?
    [ $rc -eq 2 ] || fail "explain on keyless doc exited $rc, want 2"
    grep -q "no cycle-class keys in $TMP/empty.json" "$TMP/out.txt" \
        || fail "error should name the offending file"
    grep -q 'issueFromBuffer' "$TMP/out.txt" \
        || fail "error should list the expected cycle classes"
    ;;

  version)
    "$LBP_STATS" --version > "$TMP/v.txt" \
        || fail "lbp_stats --version exited nonzero"
    grep -qE 'registry schema [0-9]+, bench schema [0-9]+, history schema [0-9]+' \
        "$TMP/v.txt" || fail "--version should print the schema triple"
    sha=$(sed -n 's/^lbp \([^ ]*\) .*/\1/p' "$TMP/v.txt")
    [ -n "$sha" ] || fail "--version should lead with the git SHA"

    "$LBP_STATS" run adpcm_dec --buffer=256 --json="$TMP/a.json" \
        > /dev/null || fail "lbp_stats run --json exited nonzero"
    grep -q "\"git_sha\": \"$sha\"" "$TMP/a.json" \
        || fail "registry dump should stamp the same git SHA"
    ;;

  *)
    fail "unknown case '$CASE'"
    ;;
esac

echo "PASS: $CASE"
