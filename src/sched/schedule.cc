#include "sched/schedule.hh"

#include <map>
#include <sstream>

#include "analysis/dependence.hh"
#include "ir/printer.hh"
#include "support/logging.hh"

namespace lbp
{

int
SchedBlock::sizeOps() const
{
    int n = 0;
    for (const auto &b : bundles) {
        bool any = false;
        for (const auto &so : b.ops) {
            if (so.op.op != Opcode::NOP) {
                ++n;
                any = true;
            }
        }
        if (!any)
            ++n; // an empty cycle costs one (multi-cycle NOP) op
    }
    return n;
}

int
SchedFunction::sizeOps() const
{
    int n = 0;
    for (const auto &b : blocks)
        if (b.valid)
            n += b.sizeOps();
    return n;
}

int
SchedProgram::sizeOps() const
{
    int n = 0;
    for (const auto &f : functions)
        n += f.sizeOps();
    return n;
}

void
SchedProgram::link()
{
    std::int64_t addr = 0;
    for (auto &f : functions) {
        for (auto &b : f.blocks) {
            if (!b.valid)
                continue;
            for (auto &bu : b.bundles) {
                bu.addr = addr;
                addr += bu.sizeOps();
            }
        }
    }
}

std::vector<std::string>
validateSchedule(const BasicBlock &bb, const SchedBlock &sb,
                 const Machine &machine)
{
    std::vector<std::string> errs;
    auto err = [&](const std::string &m) { errs.push_back(m); };

    // Map op index (program order) -> (cycle, slot).
    // Bundles list ops in program order within a cycle.
    std::vector<int> cycleOf(bb.ops.size(), -1);
    size_t seen = 0;
    for (size_t cy = 0; cy < sb.bundles.size(); ++cy) {
        std::vector<char> slotUsed(Machine::width, 0);
        for (const auto &so : sb.bundles[cy].ops) {
            if (so.op.op == Opcode::NOP)
                continue;
            if (so.slot < 0 || so.slot >= Machine::width) {
                err("op without a slot: " + toString(so.op));
                continue;
            }
            if (slotUsed[so.slot])
                err("slot collision at cycle " + std::to_string(cy));
            slotUsed[so.slot] = 1;
            if (!machine.slotSupports(so.slot, so.op.op)) {
                err("slot " + std::to_string(so.slot) +
                    " cannot issue " + toString(so.op));
            }
            ++seen;
        }
    }
    // Each IR op scheduled exactly once (matched by op id).
    std::map<OpId, int> sched_cycle;
    for (size_t cy = 0; cy < sb.bundles.size(); ++cy) {
        for (const auto &so : sb.bundles[cy].ops) {
            if (so.op.op == Opcode::NOP)
                continue;
            if (sched_cycle.count(so.op.id))
                err("op scheduled twice: " + toString(so.op));
            sched_cycle[so.op.id] = static_cast<int>(cy);
        }
    }
    size_t realOps = 0;
    for (size_t i = 0; i < bb.ops.size(); ++i) {
        if (bb.ops[i].op == Opcode::NOP)
            continue;
        ++realOps;
        auto it = sched_cycle.find(bb.ops[i].id);
        if (it == sched_cycle.end()) {
            err("op not scheduled: " + toString(bb.ops[i]));
            continue;
        }
        cycleOf[i] = it->second;
    }
    if (seen != realOps)
        err("scheduled op count mismatch");
    if (!errs.empty())
        return errs;

    // Dependence latencies.
    DepGraph dg(bb, sb.pipelined);
    const int ii = sb.pipelined ? sb.ii : 0;
    for (const auto &e : dg.edges()) {
        if (cycleOf[e.from] < 0 || cycleOf[e.to] < 0)
            continue;
        const int gap = cycleOf[e.to] + ii * e.distance - cycleOf[e.from];
        if (gap < e.latency) {
            std::ostringstream os;
            os << "latency violation (" << e.latency << " needed, "
               << gap << " given, dist " << e.distance << "): '"
               << toString(bb.ops[e.from]) << "' -> '"
               << toString(bb.ops[e.to]) << "'";
            err(os.str());
        }
    }
    return errs;
}

} // namespace lbp
