#include "core/compiler.hh"

#include "analysis/loop_info.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "obs/phase_timer.hh"
#include "obs/registry.hh"
#include "sched/list_scheduler.hh"
#include "sched/modulo_scheduler.hh"
#include "support/logging.hh"
#include "transform/classic_opts.hh"

namespace lbp
{

namespace
{

/** Is this block a simple hardware-loop body? */
bool
isSimpleLoopBody(const BasicBlock &bb)
{
    const Operation *term = bb.terminator();
    if (!term)
        return false;
    if (term->op == Opcode::BR_CLOOP || term->op == Opcode::BR_WLOOP)
        return term->target == bb.id;
    if (term->op == Opcode::BR || term->op == Opcode::JUMP)
        return term->target == bb.id;
    return false;
}

void
checkStage(const Program &prog, const CompileOptions &opts,
           std::uint64_t golden, const char *stage)
{
    if (!opts.verifyStages)
        return;
    Interpreter interp(prog);
    const auto r = interp.run(opts.profileArgs);
    if (r.checksum != golden) {
        LBP_FATAL("semantic checksum mismatch after stage '", stage,
                  "' in program '", prog.name, "': golden=",
                  golden, " got=", r.checksum);
    }
}

} // namespace

void
compileProgram(const Program &input, const CompileOptions &opts,
               CompileResult &out)
{
    obs::Registry *const reg = opts.obsRegistry;
    obs::prof::ScopedRegion profRegion(obs::prof::Region::Compile);
    obs::ScopedPhase total(reg, "compile.total");

    out.ir = input;
    Program &prog = out.ir;
    out.originalOps = prog.sizeOps();
    verifyOrDie(prog);

    // Each stage is bracketed by a ScopedPhase: elapsed wall time
    // lands in "compile.phase.<NN_stage>.ms" and the static op-count
    // delta in ".ops_before/.ops_after/.ops_delta". The numeric
    // prefix keeps the registry's name order equal to pipeline order.
    auto phase = [&](const char *name) {
        return obs::ScopedPhase(reg,
                                std::string("compile.phase.") + name,
                                prog.sizeOps());
    };

    // 1. Profile + golden checksum.
    const ProfiledRun run0 = [&] {
        auto ph = phase("01_profile");
        return profileProgram(prog, opts.profileArgs);
    }();
    out.goldenChecksum = run0.result.checksum;

    // 2. Profile-guided inlining (<= 50% expansion, per the paper).
    if (opts.doInline) {
        auto ph = phase("02_inline");
        out.inlineStats = inlineHotCalls(prog, run0.profile);
        verifyOrDie(prog);
        checkStage(prog, opts, out.goldenChecksum, "inline");
        ph.finishOps(prog.sizeOps());
    }

    // 3. Classic optimization + height reduction (reassociation is
    //    part of the paper's "traditional loop optimizations" and the
    //    Figure-2d height-reducing step).
    {
        auto ph = phase("03_classic_opts");
        optimizeProgram(prog);
        out.reassocStats = reassociate(prog);
        optimizeProgram(prog);
        verifyOrDie(prog);
        checkStage(prog, opts, out.goldenChecksum, "classic-opts");
        ph.finishOps(prog.sizeOps());
    }

    // 4. Control transformations (Aggressive only).
    if (opts.level == OptLevel::Aggressive) {
        {
            auto ph = phase("04_peel");
            out.peelStats = peelLoops(prog, {}, &out.loopLog);
            verifyOrDie(prog);
            checkStage(prog, opts, out.goldenChecksum, "peel");
            ph.finishOps(prog.sizeOps());
        }

        VerifyOptions hyperOk;
        hyperOk.allowInternalBranches = true;

        {
            auto ph = phase("05_if_convert");
            out.ifConvertStats = ifConvertLoops(prog, {}, &out.loopLog);
            verifyOrDie(prog, hyperOk);
            checkStage(prog, opts, out.goldenChecksum, "if-convert");
            ph.finishOps(prog.sizeOps());
        }

        {
            auto ph = phase("06_collapse");
            out.collapseStats = collapseLoops(prog, {}, &out.loopLog);
            verifyOrDie(prog, hyperOk);
            checkStage(prog, opts, out.goldenChecksum, "collapse");
            ph.finishOps(prog.sizeOps());
        }

        // Collapsing can expose newly-childless outer loops.
        {
            auto ph = phase("07_if_convert2");
            auto s2 = ifConvertLoops(prog, {}, &out.loopLog);
            out.ifConvertStats.loopsConverted += s2.loopsConverted;
            out.ifConvertStats.blocksMerged += s2.blocksMerged;
            out.ifConvertStats.predDefsInserted += s2.predDefsInserted;
            out.ifConvertStats.sideExits += s2.sideExits;
            verifyOrDie(prog, hyperOk);
            checkStage(prog, opts, out.goldenChecksum, "if-convert-2");
            ph.finishOps(prog.sizeOps());
        }

        {
            auto ph = phase("08_branch_combine");
            out.branchCombineStats =
                combineBranches(prog, {}, &out.loopLog);
            verifyOrDie(prog, hyperOk);
            checkStage(prog, opts, out.goldenChecksum,
                       "branch-combine");
            ph.finishOps(prog.sizeOps());
        }

        {
            auto ph = phase("09_promote");
            out.promoteStats = promoteOperations(prog);
            verifyOrDie(prog, hyperOk);
            checkStage(prog, opts, out.goldenChecksum, "promote");
            ph.finishOps(prog.sizeOps());
        }

        {
            auto ph = phase("10_classic_opts2");
            optimizeProgram(prog);
            {
                auto r2 = reassociate(prog);
                out.reassocStats.chainsRebalanced +=
                    r2.chainsRebalanced;
                out.reassocStats.opsInChains += r2.opsInChains;
            }
            optimizeProgram(prog);
            verifyOrDie(prog, hyperOk);
            checkStage(prog, opts, out.goldenChecksum,
                       "classic-opts-2");
            ph.finishOps(prog.sizeOps());
        }
    }

    // 5. Hardware-loop conversion (both levels).
    {
        auto ph = phase("11_counted_loop");
        out.countedLoopStats = convertCountedLoops(prog);
        {
            VerifyOptions v;
            v.allowInternalBranches =
                opts.level == OptLevel::Aggressive;
            verifyOrDie(prog, v);
        }
        checkStage(prog, opts, out.goldenChecksum, "counted-loop");
        ph.finishOps(prog.sizeOps());
    }

    // 6. Refresh the profile (weights drive buffer allocation).
    {
        auto ph = phase("12_reprofile");
        auto run1 = profileProgram(prog, opts.profileArgs);
        LBP_ASSERT(run1.result.checksum == out.goldenChecksum,
                   "final profile checksum mismatch");
        out.transformedChecksum = run1.result.checksum;
    }
    out.finalOps = prog.sizeOps();

    // 6b. Classify every natural loop that survived the transforms.
    // Loops whose shape can never become a hardware loop get their
    // rejection recorded here (the transforms above only log loops
    // they actually inspected); simple loops get their estimated
    // dynamic op count from the refreshed profile, and their fate is
    // left to buffer allocation.
    for (const auto &fn : prog.functions) {
        LoopInfo li(fn);
        for (const auto &loop : li.loops()) {
            const std::string name =
                fn.name + "/" + fn.blocks[loop.header].name;
            obs::LoopDecision &d = out.loopLog.decision(name);
            double est = 0.0;
            for (BlockId b : loop.blocks)
                est += fn.blocks[b].weight * fn.blocks[b].sizeOps();
            d.estDynOps = est;
            if (d.fate != obs::LoopFate::Unknown)
                continue;
            if (!loop.children.empty()) {
                d.fate = obs::LoopFate::Rejected;
                d.reason = obs::LoopReason::NotInnermost;
            } else if (loop.blocks.size() > 1) {
                d.fate = obs::LoopFate::Rejected;
                d.reason = obs::LoopReason::NotSimple;
            } else if (!isSimpleLoopBody(fn.blocks[loop.header])) {
                d.fate = obs::LoopFate::Rejected;
                d.reason = obs::LoopReason::BadShape;
            }
            // else: simple hardware loop — buffer_alloc decides.
        }
    }

    // 7. Schedule.
    {
        auto ph = phase("13_schedule");
        out.code.ir = &prog;
        out.code.functions.clear();
        out.code.functions.resize(prog.functions.size());
        for (const auto &fn : prog.functions) {
            SchedFunction &sf = out.code.functions[fn.id];
            sf.func = fn.id;
            sf.blocks.resize(fn.blocks.size());
            for (const auto &bb : fn.blocks) {
                if (bb.dead)
                    continue;
                SchedBlock sb;
                const bool loopBody = isSimpleLoopBody(bb);
                if (loopBody)
                    ++out.simpleLoops;
                if (loopBody && opts.moduloSchedule) {
                    ModuloOptions mo;
                    mo.rotatingRegisters = opts.rotatingRegisters;
                    ModuloResult mres;
                    sb = moduloScheduleLoop(bb, out.machine, mo,
                                            &mres);
                    obs::LoopAttempt a;
                    a.transform = "modulo";
                    a.opsBefore = bb.sizeOps();
                    if (sb.valid) {
                        ++out.moduloLoops;
                        a.applied = true;
                        a.opsAfter = sb.imageOps();
                        a.ii = sb.ii;
                        a.resMII = mres.resMII;
                        a.recMII = mres.recMII;
                        a.note = "II " + std::to_string(sb.ii) +
                                 " (res " +
                                 std::to_string(mres.resMII) +
                                 ", rec " +
                                 std::to_string(mres.recMII) + ")";
                    } else {
                        sb = listScheduleBlock(bb, out.machine);
                        sb.isLoopBody = true;
                        a.reason = obs::LoopReason::SchedFailed;
                        a.opsAfter = bb.sizeOps();
                        a.note = "list-scheduled fallback";
                    }
                    out.loopLog.addAttempt(fn.name + "/" + bb.name,
                                           std::move(a));
                } else {
                    sb = listScheduleBlock(bb, out.machine);
                    sb.isLoopBody = loopBody;
                }
                sf.blocks[bb.id] = std::move(sb);
            }
        }
    }

    // 8. Slot-predication lowering.
    if (opts.level == OptLevel::Aggressive && opts.slotLowering) {
        auto ph = phase("14_slot_lowering");
        out.slotStats = lowerProgramToSlots(prog, out.code,
                                            out.machine,
                                            opts.predQueueDepth,
                                            &out.loopLog);
    }

    // 9. Buffer allocation + link.
    {
        auto ph = phase("15_buffer_alloc");
        BufferAllocOptions ba;
        ba.bufferOps = opts.bufferOps;
        out.bufferAlloc =
            allocateLoopBuffers(prog, out.code, ba, &out.loopLog);
        out.code.link();
        out.scheduledOps = out.code.sizeOps();
    }
}

void
reallocateBuffers(CompileResult &result, int bufferOps)
{
    BufferAllocOptions ba;
    ba.bufferOps = bufferOps;
    result.bufferAlloc = allocateLoopBuffers(result.ir, result.code,
                                             ba, &result.loopLog);
    result.code.link();
}

} // namespace lbp
