#include "obs/cycle_stack.hh"

#include <algorithm>

namespace lbp
{
namespace obs
{

const char *
cycleClassName(CycleClass c)
{
    switch (c) {
      case CycleClass::IssueFromMemory: return "issueFromMemory";
      case CycleClass::IssueFromBuffer: return "issueFromBuffer";
      case CycleClass::IssueFromTraceReplay:
        return "issueFromTraceReplay";
      case CycleClass::TakenBranchPenalty:
        return "takenBranchPenalty";
      case CycleClass::CallReturnPenalty:
        return "callReturnPenalty";
      case CycleClass::WhileExitPenalty: return "whileExitPenalty";
      case CycleClass::LoopControlOverhead:
        return "loopControlOverhead";
      case CycleClass::SchedulerSlack: return "schedulerSlack";
      case CycleClass::Count: break;
    }
    return "?";
}

void
CycleStack::unchargeIssue(int loopRow, std::uint64_t n)
{
    CycleRow &r = rows_[static_cast<std::size_t>(loopRow + 1)];
    static constexpr CycleClass kDrainOrder[] = {
        CycleClass::IssueFromTraceReplay,
        CycleClass::IssueFromBuffer,
        CycleClass::IssueFromMemory,
    };
    for (CycleClass c : kDrainOrder) {
        std::uint64_t &cell = r[static_cast<std::size_t>(c)];
        const std::uint64_t take = std::min(cell, n);
        cell -= take;
        n -= take;
        if (n == 0)
            return;
    }
}

void
CycleStack::reclassifySlack(int loopRow, std::uint64_t n)
{
    CycleRow &r = rows_[static_cast<std::size_t>(loopRow + 1)];
    static constexpr CycleClass kDrainOrder[] = {
        CycleClass::IssueFromTraceReplay,
        CycleClass::IssueFromBuffer,
    };
    for (CycleClass c : kDrainOrder) {
        std::uint64_t &cell = r[static_cast<std::size_t>(c)];
        const std::uint64_t take = std::min(cell, n);
        cell -= take;
        n -= take;
        r[static_cast<std::size_t>(CycleClass::SchedulerSlack)] +=
            take;
        if (n == 0)
            return;
    }
}

CycleRow
CycleStack::totals() const
{
    CycleRow t{};
    for (const CycleRow &r : rows_)
        for (std::size_t c = 0; c < kNumCycleClasses; ++c)
            t[c] += r[c];
    return t;
}

std::uint64_t
CycleStack::totalCycles() const
{
    std::uint64_t sum = 0;
    for (const CycleRow &r : rows_)
        for (std::uint64_t v : r)
            sum += v;
    return sum;
}

CycleRow
CycleStack::collapseReplay(const CycleRow &r)
{
    CycleRow out = r;
    out[static_cast<std::size_t>(CycleClass::IssueFromBuffer)] +=
        out[static_cast<std::size_t>(
            CycleClass::IssueFromTraceReplay)];
    out[static_cast<std::size_t>(CycleClass::IssueFromTraceReplay)] =
        0;
    return out;
}

} // namespace obs
} // namespace lbp
