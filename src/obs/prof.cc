/**
 * @file
 * Sampling self-profiler internals: per-thread CPU-time timers, the
 * SIGPROF handler, and snapshot aggregation. The signal-safety rules
 * are documented in prof.hh and DESIGN.md §13; the short version is
 * that the handler runs on the thread that owns the state it touches
 * (SIGEV_THREAD_ID delivery), uses only relaxed atomics bracketed by
 * signal fences, and never allocates, locks, or reads label strings.
 */

#include "obs/prof.hh"

#include <algorithm>
#include <map>

namespace lbp
{
namespace obs
{
namespace prof
{

const char *
regionName(Region r)
{
    switch (r) {
      case Region::None: return "untracked";
      case Region::Compile: return "compile";
      case Region::Decode: return "decode";
      case Region::SimDispatch: return "simDispatch";
      case Region::SimReplay: return "simReplay";
      case Region::TraceBuild: return "traceBuild";
      case Region::SimReference: return "simReference";
      case Region::Bench: return "bench";
      case Region::Count: break;
    }
    return "untracked";
}

std::string
collapsedStacks(const Snapshot &s)
{
    std::string out;
    for (const PathCount &p : s.paths) {
        out += p.label;
        out += ' ';
        out += std::to_string(p.count);
        out += '\n';
    }
    return out;
}

} // namespace prof
} // namespace obs
} // namespace lbp

#if LBP_PROF

#include <atomic>
#include <csignal>
#include <cstring>
#include <ctime>
#include <mutex>
#include <vector>

#include <pthread.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <unistd.h>

// Linux thread-directed timer delivery. glibc only exposes the
// sigevent field behind a macro in recent versions; provide the
// canonical fallbacks (g++ defines _GNU_SOURCE, so SIGEV_THREAD_ID
// is normally already present).
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace lbp
{
namespace obs
{
namespace prof
{

namespace
{

/** TLS stack capacity; deeper nests keep counting depth only. */
constexpr std::size_t kMaxStack = 16;

/**
 * All mutable profiler state one thread owns. Heap-allocated on the
 * thread's first ScopedRegion, registered under gMu, and never freed:
 * a snapshot taken after a pool thread exits must still see its
 * samples, and the signal handler must never race a destructor.
 */
struct ThreadState
{
    // Region stack: written by the owning thread, read by the SIGPROF
    // handler interrupting that same thread. Relaxed atomics carry
    // the values; signal fences pin the store order the handler
    // depends on (slot before depth).
    std::atomic<std::uint32_t> depth;
    std::atomic<std::uint8_t> stack[kMaxStack];

    // Path-count table: the handler is the only writer (single-writer
    // by construction — SIGEV_THREAD_ID delivers to the owning thread
    // only); snapshot() reads cross-thread. Key 0 means empty slot.
    std::atomic<std::uint64_t> pathKey[kPathTableSize];
    std::atomic<std::uint64_t> pathCount[kPathTableSize];
    std::atomic<std::uint64_t> dropped;

    pid_t tid = 0;
    clockid_t cpuClock{};
    bool clockOk = false;
    timer_t timer{};
    bool timerArmed = false;   ///< guarded by gMu
    bool alive = true;         ///< guarded by gMu

    ThreadState()
    {
        depth.store(0, std::memory_order_relaxed);
        dropped.store(0, std::memory_order_relaxed);
        for (auto &s : stack)
            s.store(0, std::memory_order_relaxed);
        for (auto &k : pathKey)
            k.store(0, std::memory_order_relaxed);
        for (auto &c : pathCount)
            c.store(0, std::memory_order_relaxed);
    }
};

std::mutex gMu;
/** Leak-by-design registry. Immortalized (never destroyed) so the
 * states stay reachable past static destruction: threads that
 * outlive main() can still run their TlsGuard, and LeakSanitizer
 * sees the intentional leaks as still-reachable, not leaked. */
std::vector<ThreadState *> &gThreads =
    *new std::vector<ThreadState *>;
std::vector<std::string> gDynLabels;   ///< interned ids Count + i
bool gRunning = false;
bool gHandlerInstalled = false;
unsigned gHz = kDefaultHz;

thread_local ThreadState *tlsState = nullptr;

/** Region-transition observer (obs/pmu); nullptr when idle. */
std::atomic<RegionHook> gRegionHook{nullptr};

/** Handler probe bound; below kPathTableSize only under test. */
std::atomic<std::size_t> gPathLimit{kPathTableSize};

void
sigprofHandler(int, siginfo_t *, void *)
{
    ThreadState *const ts = tlsState;
    if (ts == nullptr)
        return;
    std::atomic_signal_fence(std::memory_order_acquire);
    std::uint32_t d = ts->depth.load(std::memory_order_relaxed);
    if (d > kMaxStack)
        d = kMaxStack;
    // Keep the innermost levels when the path encoding truncates:
    // leaf attribution is what the reports rank by.
    std::uint32_t start = 0;
    if (d > kMaxPathDepth)
        start = d - static_cast<std::uint32_t>(kMaxPathDepth);
    std::uint64_t key = 1;  // leading marker keeps empty paths nonzero
    for (std::uint32_t i = start; i < d; ++i) {
        key = (key << 8) |
              ts->stack[i].load(std::memory_order_relaxed);
    }
    const std::size_t limit =
        gPathLimit.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < limit; ++i) {
        const std::uint64_t k =
            ts->pathKey[i].load(std::memory_order_relaxed);
        if (k == key) {
            ts->pathCount[i].fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (k == 0) {
            // Single writer: claim-then-count needs no CAS. A
            // concurrent snapshot may transiently see the key with a
            // zero count; it skips such slots.
            ts->pathKey[i].store(key, std::memory_order_relaxed);
            ts->pathCount[i].fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }
    ts->dropped.fetch_add(1, std::memory_order_relaxed);
}

/** Arm @p ts's CPU-time timer at @p hz. Caller holds gMu. */
bool
armTimer(ThreadState *ts, unsigned hz)
{
    if (!ts->clockOk || ts->timerArmed)
        return false;
    struct sigevent sev;
    std::memset(&sev, 0, sizeof(sev));
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_notify_thread_id = ts->tid;
    if (timer_create(ts->cpuClock, &sev, &ts->timer) != 0)
        return false;
    struct itimerspec its;
    std::memset(&its, 0, sizeof(its));
    its.it_interval.tv_nsec = static_cast<long>(
        1'000'000'000ull / (hz != 0 ? hz : kDefaultHz));
    its.it_value = its.it_interval;
    if (timer_settime(ts->timer, 0, &its, nullptr) != 0) {
        timer_delete(ts->timer);
        return false;
    }
    ts->timerArmed = true;
    return true;
}

/** Caller holds gMu. */
void
disarmTimer(ThreadState *ts)
{
    if (!ts->timerArmed)
        return;
    timer_delete(ts->timer);
    ts->timerArmed = false;
}

void
threadExiting(ThreadState *ts)
{
    std::lock_guard<std::mutex> lk(gMu);
    disarmTimer(ts);
    ts->alive = false;
    tlsState = nullptr;
}

/** Disarms the thread's timer before its CPU clock dies with it. */
struct TlsGuard
{
    ThreadState *ts = nullptr;
    ~TlsGuard()
    {
        if (ts != nullptr)
            threadExiting(ts);
    }
};
thread_local TlsGuard tlsGuard;

ThreadState *
ensureThreadState()
{
    ThreadState *ts = tlsState;
    if (ts != nullptr)
        return ts;
    ts = new ThreadState;
    ts->tid = static_cast<pid_t>(::syscall(SYS_gettid));
    ts->clockOk =
        pthread_getcpuclockid(pthread_self(), &ts->cpuClock) == 0;
    {
        std::lock_guard<std::mutex> lk(gMu);
        gThreads.push_back(ts);
        if (gRunning)
            armTimer(ts, gHz);
    }
    tlsState = ts;
    tlsGuard.ts = ts;
    return ts;
}

/** Label lookup without taking gMu (caller holds it). */
std::string
labelNoLock(std::uint8_t id)
{
    if (id < static_cast<std::uint8_t>(Region::Count))
        return regionName(static_cast<Region>(id));
    const std::size_t idx =
        id - static_cast<std::size_t>(Region::Count);
    if (idx < gDynLabels.size())
        return gDynLabels[idx];
    return "region#" + std::to_string(id);
}

/** Caller holds gMu. */
void
resetTablesLocked()
{
    for (ThreadState *ts : gThreads) {
        for (std::size_t i = 0; i < kPathTableSize; ++i) {
            ts->pathKey[i].store(0, std::memory_order_relaxed);
            ts->pathCount[i].store(0, std::memory_order_relaxed);
        }
        ts->dropped.store(0, std::memory_order_relaxed);
    }
}

} // namespace

void
setRegionHook(RegionHook hook)
{
    gRegionHook.store(hook, std::memory_order_relaxed);
}

void
setPathTableLimitForTest(std::size_t n)
{
    gPathLimit.store(n == 0 || n > kPathTableSize ? kPathTableSize
                                                  : n,
                     std::memory_order_relaxed);
}

std::uint8_t
internRegion(const std::string &label)
{
    std::lock_guard<std::mutex> lk(gMu);
    for (std::size_t i = 0; i < gDynLabels.size(); ++i) {
        if (gDynLabels[i] == label) {
            return static_cast<std::uint8_t>(
                static_cast<std::size_t>(Region::Count) + i);
        }
    }
    const std::size_t next =
        static_cast<std::size_t>(Region::Count) + gDynLabels.size();
    if (next >= kMaxRegions)
        return static_cast<std::uint8_t>(Region::None);
    gDynLabels.push_back(label);
    return static_cast<std::uint8_t>(next);
}

std::string
regionLabel(std::uint8_t id)
{
    if (id < static_cast<std::uint8_t>(Region::Count))
        return regionName(static_cast<Region>(id));
    std::lock_guard<std::mutex> lk(gMu);
    return labelNoLock(id);
}

ScopedRegion::ScopedRegion(std::uint8_t id)
{
    ThreadState *const ts = ensureThreadState();
    const std::uint32_t d =
        ts->depth.load(std::memory_order_relaxed);
    if (d < kMaxStack)
        ts->stack[d].store(id, std::memory_order_relaxed);
    // Slot must be visible before the depth that exposes it.
    std::atomic_signal_fence(std::memory_order_release);
    ts->depth.store(d + 1, std::memory_order_relaxed);
    if (RegionHook hook =
            gRegionHook.load(std::memory_order_relaxed))
        hook(id);
}

ScopedRegion::~ScopedRegion()
{
    ThreadState *const ts = tlsState;
    if (ts == nullptr)
        return;  // thread already unregistered (exit path)
    const std::uint32_t d =
        ts->depth.load(std::memory_order_relaxed);
    std::atomic_signal_fence(std::memory_order_release);
    if (d > 0)
        ts->depth.store(d - 1, std::memory_order_relaxed);
    if (RegionHook hook =
            gRegionHook.load(std::memory_order_relaxed)) {
        // The new innermost after the pop: the slot below the one
        // just vacated. Depths past kMaxStack never stored a slot,
        // so clamp to the deepest stored id.
        std::uint8_t inner =
            static_cast<std::uint8_t>(Region::None);
        if (d >= 2) {
            const std::uint32_t slot =
                std::min<std::uint32_t>(d - 2, kMaxStack - 1);
            inner = ts->stack[slot].load(std::memory_order_relaxed);
        }
        hook(inner);
    }
}

Profiler &
Profiler::instance()
{
    static Profiler p;
    return p;
}

bool
Profiler::start(unsigned hz)
{
    ensureThreadState();  // the caller's thread always participates
    std::lock_guard<std::mutex> lk(gMu);
    if (gRunning)
        return false;
    if (!gHandlerInstalled) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_sigaction = sigprofHandler;
        sa.sa_flags = SA_RESTART | SA_SIGINFO;
        sigemptyset(&sa.sa_mask);
        if (sigaction(SIGPROF, &sa, nullptr) != 0)
            return false;
        gHandlerInstalled = true;
    }
    resetTablesLocked();
    gHz = hz != 0 ? hz : kDefaultHz;
    bool any = false;
    for (ThreadState *ts : gThreads) {
        if (ts->alive)
            any = armTimer(ts, gHz) || any;
    }
    gRunning = true;
    return any;
}

void
Profiler::stop()
{
    std::lock_guard<std::mutex> lk(gMu);
    if (!gRunning)
        return;
    for (ThreadState *ts : gThreads)
        disarmTimer(ts);
    gRunning = false;
}

bool
Profiler::running() const
{
    std::lock_guard<std::mutex> lk(gMu);
    return gRunning;
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lk(gMu);
    resetTablesLocked();
}

Snapshot
Profiler::snapshot() const
{
    std::lock_guard<std::mutex> lk(gMu);

    // Aggregate path keys across threads first: the same path on two
    // pool threads is one row.
    std::map<std::uint64_t, std::uint64_t> agg;
    Snapshot s;
    for (const ThreadState *ts : gThreads) {
        s.dropped += ts->dropped.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < kPathTableSize; ++i) {
            const std::uint64_t k =
                ts->pathKey[i].load(std::memory_order_relaxed);
            const std::uint64_t c =
                ts->pathCount[i].load(std::memory_order_relaxed);
            if (k != 0 && c != 0)
                agg[k] += c;
        }
    }

    std::map<std::string, std::uint64_t> leaf;
    for (const auto &[key, count] : agg) {
        PathCount p;
        p.count = count;
        std::uint8_t rev[8];
        int n = 0;
        for (std::uint64_t v = key; v > 1; v >>= 8)
            rev[n++] = static_cast<std::uint8_t>(v & 0xff);
        for (int i = n - 1; i >= 0; --i)
            p.ids.push_back(rev[i]);
        if (p.ids.empty()) {
            p.label = regionName(Region::None);
            s.untracked += count;
        } else {
            for (std::size_t i = 0; i < p.ids.size(); ++i) {
                if (i != 0)
                    p.label += ';';
                p.label += labelNoLock(p.ids[i]);
            }
        }
        s.samples += count;
        leaf[p.ids.empty() ? regionName(Region::None)
                           : labelNoLock(p.ids.back())] += count;
        s.paths.push_back(std::move(p));
    }

    std::sort(s.paths.begin(), s.paths.end(),
              [](const PathCount &a, const PathCount &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.label < b.label;
              });
    for (const auto &[label, count] : leaf)
        s.regions.push_back({label, count});
    std::sort(s.regions.begin(), s.regions.end(),
              [](const RegionCount &a, const RegionCount &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.label < b.label;
              });
    return s;
}

} // namespace prof
} // namespace obs
} // namespace lbp

#endif // LBP_PROF
