# Empty dependencies file for example_lbpc.
# This may be replaced when dependencies are built.
