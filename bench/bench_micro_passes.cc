/**
 * @file
 * Compiler-pass microbenchmarks: if-conversion, modulo scheduling,
 * list scheduling, and the full pipeline on a mid-size workload.
 * These track the cost of the infrastructure itself rather than any
 * paper figure.
 */

#include <benchmark/benchmark.h>

#include "core/compiler.hh"
#include "sched/list_scheduler.hh"
#include "sched/modulo_scheduler.hh"
#include "transform/if_convert.hh"
#include "workloads/registry.hh"

using namespace lbp;

namespace
{

void
BM_FullPipelineAdpcm(benchmark::State &state)
{
    for (auto _ : state) {
        Program prog = workloads::buildWorkload("adpcm_enc");
        CompileOptions opts;
        CompileResult cr;
        compileProgram(prog, opts, cr);
        benchmark::DoNotOptimize(cr.scheduledOps);
    }
}

void
BM_IfConvert(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Program prog = workloads::buildWorkload("adpcm_enc");
        state.ResumeTiming();
        auto st = ifConvertLoops(prog);
        benchmark::DoNotOptimize(st.loopsConverted);
    }
}

void
BM_ModuloSchedule(benchmark::State &state)
{
    // Compile adpcm up to the scheduling boundary once; measure IMS
    // on its main hyperblock.
    Program prog = workloads::buildWorkload("adpcm_enc");
    CompileOptions opts;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    // Find the biggest loop body in the transformed IR.
    const BasicBlock *body = nullptr;
    for (const auto &fn : cr.ir.functions) {
        for (const auto &bb : fn.blocks) {
            if (bb.dead || !bb.isHyperblock)
                continue;
            if (!body || bb.sizeOps() > body->sizeOps())
                body = &bb;
        }
    }
    Machine machine;
    for (auto _ : state) {
        if (body) {
            auto sb = moduloScheduleLoop(*body, machine);
            benchmark::DoNotOptimize(sb.ii);
        }
    }
}

void
BM_ListSchedule(benchmark::State &state)
{
    Program prog = workloads::buildWorkload("pgp_enc");
    CompileOptions opts;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    const BasicBlock *big = nullptr;
    for (const auto &fn : cr.ir.functions) {
        for (const auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            if (!big || bb.sizeOps() > big->sizeOps())
                big = &bb;
        }
    }
    Machine machine;
    for (auto _ : state) {
        if (big) {
            auto sb = listScheduleBlock(*big, machine);
            benchmark::DoNotOptimize(sb.bundles.size());
        }
    }
}

} // namespace

BENCHMARK(BM_FullPipelineAdpcm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IfConvert)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ModuloSchedule)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ListSchedule)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
