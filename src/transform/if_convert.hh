/**
 * @file
 * If-conversion / hyperblock formation (paper §3).
 *
 * Converts the body of a loop whose internal control flow is acyclic
 * into a single predicated block (hyperblock), the shape a loop buffer
 * can hold. Uses IMPACT-style predicate defines (Table 2): ut/uf pairs
 * for single-predecessor targets, ot/of contributions for merge
 * points. Exits that leave the loop become predicated jumps (side
 * exits), which branch combining may later merge.
 *
 * Selection policy: a loop is converted only when every body block is
 * eligible (no calls/returns, supported branch shapes, single latch,
 * within the size budget). Cold-path exclusion with tail duplication
 * is documented future work; the paper's benchmarks that defeat
 * buffering (mpeg2enc, jpegenc) are modeled through loops that fail
 * these criteria.
 */

#ifndef LBP_TRANSFORM_IF_CONVERT_HH
#define LBP_TRANSFORM_IF_CONVERT_HH

#include "ir/program.hh"

namespace lbp
{

namespace obs
{
class LoopDecisionLog;
}

struct IfConvertOptions
{
    /** Maximum hyperblock size in operations. */
    int maxOps = 512;

    /**
     * Skip loops whose body blocks were never executed in the profile
     * (weight 0 everywhere) when true.
     */
    bool requireProfile = false;
};

struct IfConvertStats
{
    int loopsConverted = 0;
    int blocksMerged = 0;
    int predDefsInserted = 0;
    int sideExits = 0;
};

/**
 * If-convert all eligible loops of @p fn (innermost first). When
 * @p log is given, every loop considered gets an "if_convert"
 * LoopAttempt (applied with op-count delta, or a rejection reason).
 */
IfConvertStats ifConvertLoops(Function &fn,
                              const IfConvertOptions &opts = {},
                              obs::LoopDecisionLog *log = nullptr);

/** Program-wide driver. */
IfConvertStats ifConvertLoops(Program &prog,
                              const IfConvertOptions &opts = {},
                              obs::LoopDecisionLog *log = nullptr);

} // namespace lbp

#endif // LBP_TRANSFORM_IF_CONVERT_HH
