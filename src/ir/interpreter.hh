/**
 * @file
 * Functional reference interpreter for lbp IR.
 *
 * Executes unscheduled (or transformed) IR with full IMPACT predicate
 * semantics (Table 2 of the paper), hardware-loop-count semantics for
 * the REC_/EXEC_[CW]LOOP + BR_[CW]LOOP families, and a call stack.
 *
 * Used for three things:
 *  - golden checksums: every compilation configuration must reproduce
 *    the interpreter's result;
 *  - profiling: block execution counts and branch statistics feed the
 *    profile-guided transformations;
 *  - transformation equivalence tests.
 */

#ifndef LBP_IR_INTERPRETER_HH
#define LBP_IR_INTERPRETER_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"

namespace lbp
{

/** Result of a program execution. */
struct ExecResult
{
    /** FNV-1a hash of the program's designated output region. */
    std::uint64_t checksum = 0;

    /** Return value(s) of the entry function. */
    std::vector<std::int64_t> returns;

    /** Dynamic operations executed (fetched, including nullified). */
    std::uint64_t dynOps = 0;

    /** Dynamic operations whose guard nullified them. */
    std::uint64_t dynNullified = 0;

    /** Dynamic branches executed / taken. */
    std::uint64_t dynBranches = 0;
    std::uint64_t dynTaken = 0;

    /** Block entries observed. */
    std::uint64_t dynBlocks = 0;
};

/** Optional profile collection during interpretation. */
class ProfileSink
{
  public:
    virtual ~ProfileSink() = default;

    /** Block @p b of function @p f entered. */
    virtual void onBlock(FuncId f, BlockId b) = 0;

    /**
     * Branch op @p opId in (f, b) executed; @p taken tells the
     * resolved direction (nullified branches report not-taken).
     */
    virtual void onBranch(FuncId f, BlockId b, OpId opId, bool taken) = 0;
};

/** Interpreter over a Program. */
class Interpreter
{
  public:
    explicit Interpreter(const Program &prog);

    /** Attach a profile sink (may be null). */
    void setProfileSink(ProfileSink *sink) { sink_ = sink; }

    /** Cap on executed operations (guards against runaway loops). */
    void setMaxOps(std::uint64_t n) { maxOps_ = n; }

    /**
     * Run the program's entry function with @p args and return the
     * execution result. Memory is re-initialized from the program
     * image on every call.
     */
    ExecResult run(const std::vector<std::int64_t> &args = {});

    /** Access to final memory after run() (for tests). */
    const std::vector<std::uint8_t> &memory() const { return mem_; }

    /** FNV-1a over an arbitrary byte range of current memory. */
    std::uint64_t hashRange(std::int64_t base, std::int64_t size) const;

  private:
    struct Frame
    {
        const Function *fn = nullptr;
        std::vector<std::int64_t> regs;
        std::vector<std::uint8_t> preds;
    };

    /** Loop-count stack entry for hardware-loop semantics. */
    struct LoopEntry
    {
        bool counted = false;
        std::int64_t remaining = 0;
        /** The loop head (REC/EXEC target); a taken transfer that
         *  leaves the body cancels the context, like real
         *  zero-overhead-loop hardware does. */
        BlockId head = kNoBlock;
        /** For EXEC_* entries: where to resume on loop exit. */
        BlockId resumeBlock = kNoBlock;
        size_t resumeIndex = 0;
        bool isExec = false;
    };

    std::vector<std::int64_t> callFunction(const Function &fn,
                                           const std::vector<std::int64_t>
                                               &args);

    std::int64_t readOperand(const Frame &fr, const Operand &o) const;
    bool guardPasses(const Frame &fr, const Operation &op) const;
    void execPredDef(Frame &fr, const Operation &op);
    std::int64_t evalAlu(const Operation &op, std::int64_t a,
                         std::int64_t b) const;
    std::int64_t loadMem(Opcode op, std::int64_t addr) const;
    void storeMem(Opcode op, std::int64_t addr, std::int64_t v);

    const Program &prog_;
    std::vector<std::uint8_t> mem_;
    ProfileSink *sink_ = nullptr;
    std::uint64_t maxOps_ = 2'000'000'000ull;
    ExecResult res_;
    std::uint64_t executed_ = 0;
    int callDepth_ = 0;
};

/** FNV-1a 64-bit hash over a byte span. */
std::uint64_t fnv1a(const std::uint8_t *data, size_t size);

} // namespace lbp

#endif // LBP_IR_INTERPRETER_HH
