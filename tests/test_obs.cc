/**
 * @file
 * Observability layer tests: the JSON model (exact integer
 * round-trips), the metrics registry (typed find-or-create,
 * serialization, diffing), the trace ring (overflow, sampling, exact
 * aggregates), and whole-trace behavior on a real compiled loop —
 * including the cross-engine guarantee that REFERENCE and DECODED
 * emit identical event streams, and the buffer-hit-ops integral the
 * lbp_stats tool enforces.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/compiler.hh"
#include "ir/builder.hh"
#include "obs/json.hh"
#include "obs/publish.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/vliw_sim.hh"

namespace lbp
{
namespace
{

using obs::Json;
using obs::TraceKind;

// ---------------------------------------------------------------- Json

TEST(ObsJson, ScalarRoundTrip)
{
    Json doc = Json::object();
    doc.set("i", Json::integer(-42));
    doc.set("u", Json::uinteger(0xdeadbeefcafef00dull));
    doc.set("d", Json::number(0.125));
    doc.set("s", Json::str("hi \"there\"\n"));
    doc.set("b", Json::boolean(true));
    doc.set("n", Json::null());

    std::ostringstream os;
    doc.write(os);
    std::string err;
    const Json back = Json::parse(os.str(), err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(doc == back);

    // The uint64 must survive exactly — not via a double.
    const Json *u = back.find("u");
    ASSERT_NE(u, nullptr);
    EXPECT_EQ(u->asUint(), 0xdeadbeefcafef00dull);
    EXPECT_EQ(back.find("i")->asInt(), -42);
    EXPECT_EQ(back.find("s")->asString(), "hi \"there\"\n");
}

TEST(ObsJson, NestedStructures)
{
    std::string err;
    const Json doc = Json::parse(
        R"({"a": [1, 2.5, "x", [true, null]], "o": {"k": 18446744073709551615}})",
        err);
    ASSERT_TRUE(err.empty()) << err;
    const Json *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->items().size(), 4u);
    EXPECT_EQ(doc.find("o")->find("k")->asUint(),
              18446744073709551615ull);
}

TEST(ObsJson, ParseErrors)
{
    std::string err;
    Json::parse("{\"a\": }", err);
    EXPECT_FALSE(err.empty());
    err.clear();
    Json::parse("[1, 2", err);
    EXPECT_FALSE(err.empty());
    err.clear();
    Json::parse("{} trailing", err);
    EXPECT_FALSE(err.empty());
}

// ------------------------------------------------------------ Registry

TEST(ObsRegistry, TypedAccessAndDump)
{
    obs::Registry r;
    r.counter("a.cycles").inc(10);
    r.counter("a.cycles").inc(5);
    r.intGauge("a.delta").set(-3);
    r.gauge("a.ms").set(1.5);
    r.histogram("a.hist").add(2, 1.0);
    r.histogram("a.hist").add(2, 2.0);
    r.histogram("a.hist").add(7, 1.0);
    r.info("workload", "toy");

    EXPECT_EQ(r.counter("a.cycles").value(), 15u);
    EXPECT_EQ(r.intGauge("a.delta").value(), -3);
    EXPECT_DOUBLE_EQ(r.histogram("a.hist").total(), 4.0);
    EXPECT_EQ(r.histogram("a.hist").maxValue(), 7);

    const Json doc = r.toJson();
    EXPECT_EQ(doc.find("schema_version")->asInt(),
              obs::kRegistrySchemaVersion);
    EXPECT_EQ(doc.find("meta")->find("workload")->asString(), "toy");
    EXPECT_EQ(doc.find("metrics")->find("a.cycles")->asUint(), 15u);
    ASSERT_NE(doc.find("histograms")->find("a.hist"), nullptr);
}

TEST(ObsRegistry, JsonRoundTripDiffsEmpty)
{
    obs::Registry r;
    r.counter("sim.cycles").set(123456789012345ull);
    r.counter("sim.checksum").set(0xfeedfacefeedfaceull);
    r.gauge("sim.frac").set(0.984375); // exact in binary
    r.histogram("sim.h").add(-1, 2.0);

    std::ostringstream os;
    r.toJson().write(os);
    std::string err;
    const Json back = Json::parse(os.str(), err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(obs::diffRegistries(r.toJson(), back).empty());
}

TEST(ObsRegistry, DiffFindsChangedAndMissingKeys)
{
    obs::Registry a, b;
    a.counter("x.same").set(1);
    b.counter("x.same").set(1);
    a.counter("x.changed").set(10);
    b.counter("x.changed").set(11);
    a.counter("x.onlyA").set(5);
    b.counter("x.onlyB").set(6);

    const auto diffs = obs::diffRegistries(a.toJson(), b.toJson());
    ASSERT_EQ(diffs.size(), 3u);
    // Name order.
    EXPECT_EQ(diffs[0].key, "x.changed");
    EXPECT_EQ(diffs[1].key, "x.onlyA");
    EXPECT_EQ(diffs[2].key, "x.onlyB");
    EXPECT_EQ(diffs[1].b, "<absent>");
    EXPECT_EQ(diffs[2].a, "<absent>");
}

TEST(ObsRegistry, CsvContainsEveryMetric)
{
    obs::Registry r;
    r.counter("c").set(7);
    r.gauge("g").set(2.5);
    r.histogram("h").add(3, 1.0);
    std::ostringstream os;
    r.writeCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("counter,c,7"), std::string::npos);
    EXPECT_NE(csv.find("gauge,g,"), std::string::npos);
    EXPECT_NE(csv.find("histbin,h.3,"), std::string::npos);
    EXPECT_NE(csv.find("histp50,h,3"), std::string::npos);
    EXPECT_NE(csv.find("histp95,h,3"), std::string::npos);
    EXPECT_NE(csv.find("histp99,h,3"), std::string::npos);
}

TEST(ObsRegistry, EmptyHistogramRendersNullQuantiles)
{
    // The NaN-poison policy extends to never-observed histograms:
    // their quantiles are not 0 (a real observable value), they are
    // unknown — JSON null, literal "null" in CSV and table — so a
    // diff or gate against them fails loudly instead of silently
    // comparing fabricated zeros.
    obs::Registry r;
    r.histogram("never"); // registered, zero observations
    r.histogram("seen").add(3);

    const Json doc = r.toJson();
    const Json *h = doc.find("histograms")->find("never");
    ASSERT_NE(h, nullptr);
    ASSERT_NE(h->find("p50"), nullptr);
    EXPECT_EQ(h->find("p50")->kind(), Json::Kind::Null);
    EXPECT_EQ(h->find("p95")->kind(), Json::Kind::Null);
    EXPECT_EQ(h->find("p99")->kind(), Json::Kind::Null);
    // A populated histogram still renders numbers.
    EXPECT_EQ(doc.find("histograms")
                  ->find("seen")
                  ->find("p50")
                  ->asInt(),
              3);

    std::ostringstream csvOs;
    r.writeCsv(csvOs);
    const std::string csv = csvOs.str();
    EXPECT_NE(csv.find("histp50,never,null"), std::string::npos);
    EXPECT_NE(csv.find("histp95,never,null"), std::string::npos);
    EXPECT_NE(csv.find("histp99,never,null"), std::string::npos);
    EXPECT_NE(csv.find("histp50,seen,3"), std::string::npos);

    std::ostringstream tblOs;
    r.writeTable(tblOs);
    EXPECT_NE(tblOs.str().find("p50=null"), std::string::npos);
}

TEST(ObsRegistry, PercentileNearestRankExactSmallSamples)
{
    // Nearest-rank on explicit small samples, checked by hand.
    obs::Histogram h;
    EXPECT_EQ(h.percentile(0.50), 0); // empty -> 0

    h.add(10);
    EXPECT_EQ(h.percentile(0.0), 10);
    EXPECT_EQ(h.percentile(0.50), 10);
    EXPECT_EQ(h.percentile(1.0), 10);

    h.add(20);
    // {10, 20}: rank ceil(0.5*2)=1 -> 10; anything above -> 20.
    EXPECT_EQ(h.percentile(0.50), 10);
    EXPECT_EQ(h.percentile(0.51), 20);
    EXPECT_EQ(h.percentile(0.95), 20);

    obs::Histogram k;
    for (int v = 1; v <= 100; ++v)
        k.add(v);
    // Uniform 1..100: nearest-rank p-th percentile is exactly p.
    EXPECT_EQ(k.percentile(0.50), 50);
    EXPECT_EQ(k.percentile(0.95), 95);
    EXPECT_EQ(k.percentile(0.99), 99);
    EXPECT_EQ(k.percentile(1.0), 100);

    // Out-of-range quantiles clamp.
    EXPECT_EQ(k.percentile(-0.5), 1);
    EXPECT_EQ(k.percentile(2.0), 100);
}

TEST(ObsRegistry, PercentileRespectsWeights)
{
    obs::Histogram h;
    h.add(1, 9.0);
    h.add(100, 1.0);
    // 90% of the mass sits at 1.
    EXPECT_EQ(h.percentile(0.50), 1);
    EXPECT_EQ(h.percentile(0.90), 1);
    EXPECT_EQ(h.percentile(0.95), 100);
    EXPECT_EQ(h.percentile(0.99), 100);
}

TEST(ObsRegistry, PercentilesLandInDumpAndDiff)
{
    obs::Registry a;
    for (int v = 1; v <= 100; ++v)
        a.histogram("lat").add(v);

    const Json doc = a.toJson();
    const Json *h = doc.find("histograms")->find("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("p50")->asInt(), 50);
    EXPECT_EQ(h->find("p95")->asInt(), 95);
    EXPECT_EQ(h->find("p99")->asInt(), 99);

    std::ostringstream os;
    a.writeTable(os);
    EXPECT_NE(os.str().find("p95="), std::string::npos);

    // A shifted tail moves p99 (and the changed bins), and the
    // registry diff reports it without any special-casing.
    obs::Registry b;
    for (int v = 1; v <= 99; ++v)
        b.histogram("lat").add(v);
    b.histogram("lat").add(1000);
    const auto diffs = obs::diffRegistries(a.toJson(), b.toJson());
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_EQ(diffs[0].key, "lat");
    // The rendered sides carry the quantiles, so the shift is visible
    // right in the diff output.
    EXPECT_NE(diffs[0].a.find("\"p99\""), std::string::npos);
    EXPECT_NE(diffs[0].b.find("1000"), std::string::npos);
}

// ----------------------------------------------------------- TraceSink

TEST(ObsTrace, OverflowKeepsNewestAndCountsDropped)
{
    obs::TraceSink sink(4);
    for (std::uint64_t c = 0; c < 10; ++c)
        sink.emit(TraceKind::BufHit, c, 0, 3, 0);

    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    const auto ev = sink.snapshot();
    ASSERT_EQ(ev.size(), 4u);
    // Oldest first; the newest four survive.
    EXPECT_EQ(ev.front().cycle, 6u);
    EXPECT_EQ(ev.back().cycle, 9u);

    // Aggregates see everything regardless of the ring.
    EXPECT_EQ(sink.countOf(TraceKind::BufHit), 10u);
    EXPECT_EQ(sink.sumA(TraceKind::BufHit), 30);
}

TEST(ObsTrace, SamplingThinsOnlyHighFrequencyKinds)
{
    obs::TraceSink sink(1u << 12, 4);
    for (std::uint64_t c = 0; c < 100; ++c)
        sink.emit(TraceKind::Fetch, c, -1, 2, 0);
    for (std::uint64_t c = 0; c < 10; ++c)
        sink.emit(TraceKind::BufHit, 100 + c, 0, 5, 0);
    sink.emit(TraceKind::LoopEnter, 200, 0, 1, 0);
    sink.emit(TraceKind::LoopExit, 300, 0, 9, 1);

    // Structural kinds are never sampled out.
    std::size_t bufHits = 0, loops = 0, fetches = 0;
    for (const auto &e : sink.snapshot()) {
        if (e.kind == TraceKind::BufHit)
            ++bufHits;
        else if (e.kind == TraceKind::LoopEnter ||
                 e.kind == TraceKind::LoopExit)
            ++loops;
        else if (e.kind == TraceKind::Fetch)
            ++fetches;
    }
    EXPECT_EQ(bufHits, 10u);
    EXPECT_EQ(loops, 2u);
    EXPECT_EQ(fetches, 25u); // one in four kept
    EXPECT_EQ(sink.sampledOut(), 75u);

    // Aggregates stay exact under sampling too.
    EXPECT_EQ(sink.countOf(TraceKind::Fetch), 100u);
    EXPECT_EQ(sink.sumA(TraceKind::Fetch), 200);
    EXPECT_EQ(sink.sumA(TraceKind::BufHit), 50);
}

TEST(ObsTrace, ClearResetsEverything)
{
    obs::TraceSink sink(8);
    sink.emit(TraceKind::Fetch, 1, -1, 4, 0);
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.countOf(TraceKind::Fetch), 0u);
    EXPECT_EQ(sink.sumA(TraceKind::Fetch), 0);
}

// ----------------------------------------- whole-trace on real loops

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** Straight counted-loop program (same shape as test_sim.cc). */
Program
loopProgram(int trip, int pad)
{
    Program prog;
    const auto data = prog.allocData(64);
    prog.checksumBase = data;
    prog.checksumSize = 8;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, trip, 1, [&](RegId i) {
        b.addTo(acc, R(acc), R(i));
        for (int p = 0; p < pad; ++p)
            b.binTo(Opcode::XOR, acc, R(acc), I(p * 3 + 1));
    });
    b.storeW(R(dp), I(0), R(acc));
    b.ret({R(acc)});
    return prog;
}

struct TracedRun
{
    SimStats stats;
    std::vector<obs::TraceEvent> events;
    std::uint64_t dropped = 0;
    std::int64_t bufHitOps = 0;
};

TracedRun
traceRun(CompileResult &cr, SimEngine engine, int bufferOps = 64)
{
    obs::TraceSink sink(1u << 16);
    SimConfig sc;
    sc.bufferOps = bufferOps;
    sc.engine = engine;
    sc.trace = &sink;
    VliwSim sim(cr.code, sc);
    TracedRun out;
    out.stats = sim.run();
    out.events = sink.snapshot();
    out.dropped = sink.dropped();
    out.bufHitOps = sink.sumA(TraceKind::BufHit);
    return out;
}

/**
 * Golden structural test: a single buffered counted loop with a fixed
 * buffer size records on its first activation and replays from the
 * buffer after, so the loop-event skeleton of the trace is fully
 * determined.
 */
TEST(ObsTrace, GoldenLoopEventSequence)
{
    Program prog = loopProgram(40, 4);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 64;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    const TracedRun run = traceRun(cr, SimEngine::DECODED);
    EXPECT_EQ(run.stats.checksum, cr.goldenChecksum);
    EXPECT_EQ(run.dropped, 0u);

    // Extract the loop-structural skeleton.
    std::vector<TraceKind> skeleton;
    for (const auto &e : run.events) {
        if (e.kind == TraceKind::LoopEnter ||
            e.kind == TraceKind::LoopRecord ||
            e.kind == TraceKind::LoopExit)
            skeleton.push_back(e.kind);
    }
    const std::vector<TraceKind> expect{
        TraceKind::LoopEnter, TraceKind::LoopRecord,
        TraceKind::LoopExit};
    EXPECT_EQ(skeleton, expect);

    // The exit event carries the trip count.
    for (const auto &e : run.events) {
        if (e.kind == TraceKind::LoopExit) {
            EXPECT_EQ(e.a, 40);
        }
    }

    // Buffer-hit ops integral — the lbp_stats acceptance invariant.
    ASSERT_GE(run.bufHitOps, 0);
    EXPECT_EQ(static_cast<std::uint64_t>(run.bufHitOps),
              run.stats.opsFromBuffer);

    // The residency timeline reconstructs the single activation span
    // (recorded on entry, replaying from the buffer at retirement).
    const auto spans = obs::residencyTimeline(
        [&] {
            obs::TraceSink s(1u << 16);
            SimConfig sc;
            sc.bufferOps = 64;
            sc.trace = &s;
            VliwSim(cr.code, sc).run();
            return s;
        }());
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].iterations, 40u);
    EXPECT_TRUE(spans[0].recorded);
    EXPECT_TRUE(spans[0].fromBuffer);
    EXPECT_GT(spans[0].exitCycle, spans[0].enterCycle);
}

TEST(ObsTrace, EnginesEmitIdenticalEventStreams)
{
    Program prog = loopProgram(25, 7);
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 128;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    const TracedRun ref = traceRun(cr, SimEngine::REFERENCE, 128);
    const TracedRun dec = traceRun(cr, SimEngine::DECODED, 128);

    EXPECT_TRUE(obs::diffSimStats(ref.stats, dec.stats).empty());
    ASSERT_EQ(ref.events.size(), dec.events.size());
    for (std::size_t i = 0; i < ref.events.size(); ++i) {
        ASSERT_TRUE(ref.events[i] == dec.events[i])
            << "event " << i << " diverges: "
            << obs::traceKindName(ref.events[i].kind) << "@"
            << ref.events[i].cycle << " vs "
            << obs::traceKindName(dec.events[i].kind) << "@"
            << dec.events[i].cycle;
    }
}

TEST(ObsTrace, NullSinkDoesNotPerturbStats)
{
    Program prog = loopProgram(30, 3);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc;
    sc.bufferOps = 64;
    const SimStats plain = VliwSim(cr.code, sc).run();
    obs::TraceSink sink(1u << 14);
    sc.trace = &sink;
    const SimStats traced = VliwSim(cr.code, sc).run();
    EXPECT_TRUE(obs::diffSimStats(plain, traced, "plain", "traced")
                    .empty());
}

TEST(ObsTrace, ChromeExportIsValidJson)
{
    Program prog = loopProgram(20, 2);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    obs::TraceSink sink(1u << 14);
    SimConfig sc;
    sc.bufferOps = 64;
    sc.trace = &sink;
    VliwSim sim(cr.code, sc);
    const SimStats stats = sim.run();

    std::vector<std::string> names;
    for (const auto &ls : stats.loops)
        names.push_back(ls.name);
    std::ostringstream os;
    obs::writeChromeTrace(os, sink, names);

    std::string err;
    const Json doc = Json::parse(os.str(), err);
    ASSERT_TRUE(err.empty()) << err;
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->items().size(), 0u);

    // Sum the ops payloads of the buffer-hit instants: must equal the
    // run's opsFromBuffer (the ISSUE acceptance invariant, checked on
    // the serialized form).
    std::uint64_t opsInJson = 0;
    for (const auto &e : events->items()) {
        const Json *name = e.find("name");
        if (name && name->asString() == "buffer_hit")
            opsInJson += e.find("args")->find("ops")->asUint();
    }
    EXPECT_EQ(opsInJson, stats.opsFromBuffer);

    EXPECT_EQ(doc.find("otherData")->find("schema_version")->asInt(),
              obs::kTraceSchemaVersion);
}

// -------------------------------------------------------- phase timers

TEST(ObsPhases, CompilePublishesPhaseTimings)
{
    Program prog = loopProgram(10, 2);
    obs::Registry reg;
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.obsRegistry = &reg;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    const Json doc = reg.toJson();
    const Json *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    // The pipeline must have published a total and the bracketing
    // phases, with op counts moving through the op-delta gauges.
    EXPECT_NE(metrics->find("compile.total.ms"), nullptr);
    EXPECT_NE(metrics->find("compile.phase.01_profile.ms"), nullptr);
    EXPECT_NE(metrics->find("compile.phase.13_schedule.ms"), nullptr);
    EXPECT_NE(metrics->find("compile.phase.15_buffer_alloc.ms"),
              nullptr);
    const Json *opsAfter =
        metrics->find("compile.phase.03_classic_opts.ops_after");
    ASSERT_NE(opsAfter, nullptr);
    EXPECT_GT(opsAfter->asInt(), 0);
}

TEST(ObsPhases, DiffSimStatsReportsFirstDivergingLoop)
{
    Program prog = loopProgram(15, 1);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    SimConfig sc;
    sc.bufferOps = 64;
    SimStats a = VliwSim(cr.code, sc).run();
    SimStats b = a;
    ASSERT_FALSE(b.loops.empty());
    b.loops[0].iterations += 5;
    b.cycles += 1;

    const std::string diff = obs::diffSimStats(a, b);
    EXPECT_NE(diff.find("sim.cycles"), std::string::npos);
    EXPECT_NE(diff.find("iterations"), std::string::npos);
    EXPECT_NE(diff.find("first diverging loop id: 0"),
              std::string::npos);
}

} // namespace
} // namespace lbp
