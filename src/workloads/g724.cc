/**
 * @file
 * GSM-EFR-style speech transcoder pair ("g724" in the paper — the
 * ETSI GSM 06.60 enhanced-full-rate codec replacing MediaBench's
 * g721). The decoder contains a structural replica of the paper's
 * Figure-5 Post_Filter(): an outer loop of four (subframe)
 * iterations over twelve inner loops labeled A..L whose body sizes
 * and trip counts follow the published figure, two of which (C and J,
 * the 49-op / ~200-trip pair) carry internal control flow and become
 * bufferable only through if-conversion.
 *
 * The encoder exercises the other transformations: autocorrelation
 * (variable-trip inner loops), Levinson-Durbin (diamonds inside
 * counted loops), and a codebook search whose tiny inner loops meet
 * the paper's peeling heuristic.
 */

#include "workloads/workloads.hh"

#include "workloads/input_data.hh"

namespace lbp
{
namespace workloads
{

namespace
{

constexpr int kSub = 4;           // subframes per Post_Filter call
constexpr int kArr = 512;         // working array entries (16-bit)

struct G724Mem
{
    std::int64_t syn;     // synthesis buffer
    std::int64_t res;     // residual
    std::int64_t exc;     // excitation
    std::int64_t coef;    // 32-bit coefficient table
    std::int64_t out;     // output speech
    std::int64_t scratch; // misc 32-bit scratch
};

G724Mem
layoutG724(Program &prog)
{
    G724Mem m;
    m.syn = prog.allocData(kArr * 2);
    m.res = prog.allocData(kArr * 2);
    m.exc = prog.allocData(kArr * 2);
    m.coef = prog.allocData(64 * 4);
    m.out = prog.allocData(kArr * 2);
    m.scratch = prog.allocData(64 * 4);
    fillPcm16(prog, m.syn, kArr, 0x60601);
    fillPcm16(prog, m.res, kArr, 0x60602);
    fillPcm16(prog, m.exc, kArr, 0x60603);
    fillWords(prog, m.coef, 64, -1024, 1024, 0x60604);
    return m;
}

/** Shape of one Figure-5 inner loop. */
struct Fig5Loop
{
    char label;
    int trip;     ///< iterations per outer-loop iteration
    int bodyOps;  ///< target operation count of the (merged) body
    bool diamond; ///< carries internal control flow (C and J)
};

/**
 * Figure-5 loop inventory: twelve loops, op counts
 * {36,36,49,21,12,14,20,22,16,49,27,27}, per-outer-iteration trips
 * {9,19,199,4,13,3,10,5,3,199,3,33} (+1 for the entry iteration).
 * C and J are the two 49-op, ~200-iteration if-converted loops; E
 * (12 ops) and F (14 ops) are the small pair the paper's example
 * discusses cohabiting with them at a 64-op buffer.
 */
const Fig5Loop kFig5Loops[12] = {
    {'A', 10, 36, false}, {'B', 20, 36, false},
    {'C', 200, 49, true}, {'D', 5, 21, false},
    {'E', 14, 12, false}, {'F', 4, 14, false},
    {'G', 11, 20, false}, {'H', 6, 22, false},
    {'I', 4, 16, false},  {'J', 200, 49, true},
    {'K', 4, 27, false},  {'L', 34, 27, false},
};

/**
 * Emit one Figure-5 inner loop at the current insertion point.
 * The body performs a real filter step (load, MAC, store) plus
 * padding to approximate the published body size.
 */
void
emitFig5Loop(IRBuilder &b, const G724Mem &m, const Fig5Loop &cfg,
             RegId sOff, RegId acc)
{
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId synP = b.iconst(m.syn);
    const RegId resP = b.iconst(m.res);
    const RegId coefP = b.iconst(m.coef);
    const RegId acc2 = b.iconst(0);
    const RegId acc3 = b.iconst(0x1234);
    // Rare-exit target for the C/J loops (saturation bail-out paths,
    // never taken on this input): after if-conversion these become
    // predicated side exits, which branch combining merges under a
    // summary predicate.
    const BlockId bail = cfg.diamond ? b.makeBlock() : kNoBlock;

    b.forLoop(0, cfg.trip, 1, [&](RegId i) {
        const RegId idx = b.add(R(i), R(sOff));
        const RegId off2 = b.shl(R(idx), I(1));
        const RegId x = b.loadH(R(synP), R(off2));
        const RegId cOff = b.and_(R(i), I(63));
        const RegId c4 = b.shl(R(cOff), I(2));
        const RegId c = b.loadW(R(coefP), R(c4));
        const RegId prod = b.mul(R(x), R(c));
        const RegId scaled = b.shra(R(prod), I(8));
        b.binTo(Opcode::SATADD, acc, R(acc), R(scaled));

        if (cfg.diamond) {
            // Clip/abs hammock: the internal control flow that makes
            // this loop need if-conversion.
            const RegId y = b.mov(R(x));
            diamond(b, CmpCond::LT, R(x), I(0),
                    [&] {
                        b.subTo(y, I(0), R(x));
                        b.binTo(Opcode::SATADD, acc2, R(acc2), R(y));
                    },
                    [&] {
                        b.binTo(Opcode::SATSUB, acc2, R(acc2), I(1));
                    });
            b.binTo(Opcode::XOR, acc3, R(acc3), R(y));
        }

        // Pad toward the published body size. The real template above
        // is ~11 ops (plus ~7 more for the diamond form after
        // if-conversion, and two side exits); the rest is structured
        // filler.
        const int base = cfg.diamond ? 25 : 16;
        const int pad = std::max(0, cfg.bodyOps - base);
        padOps(b, pad, {acc, acc2, acc3});

        const RegId mixed = b.add(R(acc), R(acc2));
        b.storeH(R(resP), R(off2), R(mixed));
        if (cfg.diamond) {
            // Two rare end-of-iteration error checks (saturation
            // overflow bail-outs the input never triggers). After
            // if-conversion these are predicated side exits placed
            // after the iteration's store, which branch combining
            // merges under one summary predicate.
            const BlockId c1 = b.makeBlock();
            b.br(CmpCond::GT, R(acc2), I(1 << 29), bail);
            b.fallTo(c1);
            b.at(c1);
            const BlockId c2 = b.makeBlock();
            b.br(CmpCond::LT, R(acc2), I(-(1 << 29)), bail);
            b.fallTo(c2);
            b.at(c2);
        }
    });
    if (cfg.diamond) {
        // The bail-out path re-joins after the loop; it only clamps
        // the accumulator (and never runs on this input).
        const BlockId join = b.makeBlock();
        b.jump(join);
        b.at(bail);
        b.movTo(acc2, I(0));
        b.fallTo(join);
        b.at(join);
    }
    b.binTo(Opcode::XOR, acc, R(acc), R(acc3));
}

/**
 * The Post_Filter() replica: four outer (subframe) iterations over
 * the twelve Figure-5 loops.
 */
FuncId
buildPostFilter(Program &prog, const G724Mem &m)
{
    const FuncId f = prog.newFunction("post_filter");
    Function &fn = prog.functions[f];
    fn.numReturns = 1;
    // Post_Filter is large; keep it out of line like the original
    // (inlining it would blow the 50% budget anyway).
    fn.noInline = true;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId acc = b.iconst(0);
    const RegId sOff = b.iconst(0);
    const RegId outP = b.iconst(m.out);

    b.forLoop(0, kSub, 1, [&](RegId s) {
        b.mulTo(sOff, R(s), I(60));
        for (const auto &cfg : kFig5Loops)
            emitFig5Loop(b, m, cfg, sOff, acc);
        const RegId s2 = b.shl(R(s), I(1));
        b.storeH(R(outP), R(s2), R(acc));
    });

    b.ret({R(acc)});
    return f;
}

/** Small helper function, a target for profile-guided inlining. */
FuncId
buildWeightAz(Program &prog, const G724Mem &m)
{
    const FuncId f = prog.newFunction("weight_az");
    Function &fn = prog.functions[f];
    const RegId gamma = fn.newReg();
    fn.params = {gamma};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId coefP = b.iconst(m.coef);
    const RegId acc = b.iconst(0);
    const RegId fac = b.mov(R(gamma));
    b.forLoop(0, 10, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId c = b.loadW(R(coefP), R(i4));
        const RegId w = b.mul(R(c), R(fac));
        const RegId ws = b.shra(R(w), I(12));
        b.binTo(Opcode::SATADD, acc, R(acc), R(ws));
        b.mulTo(fac, R(fac), R(gamma));
        b.binTo(Opcode::SHRA, fac, R(fac), I(12));
    });
    b.ret({R(acc)});
    return f;
}

/**
 * Synthesis filter: an outer loop over 40 samples, inner loop over
 * 10 LPC taps with a small outer remainder — the canonical
 * predicated-loop-collapsing shape (Figure 1b).
 */
FuncId
buildSynthesisFilter(Program &prog, const G724Mem &m)
{
    const FuncId f = prog.newFunction("syn_filt");
    Function &fn = prog.functions[f];
    const RegId base = fn.newReg();
    fn.params = {base};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId excP = b.iconst(m.exc);
    const RegId synP = b.iconst(m.syn);
    const RegId coefP = b.iconst(m.coef);
    const RegId acc = b.iconst(0);
    const RegId nOff = b.mov(R(base));

    b.forLoop(0, 40, 1, [&](RegId n) {
        (void)n;
        b.movTo(acc, I(0));
        b.forLoop(0, 10, 1, [&](RegId k) {
            const RegId k4 = b.shl(R(k), I(2));
            const RegId a = b.loadW(R(coefP), R(k4));
            const RegId idx = b.add(R(nOff), R(k));
            const RegId i2 = b.shl(R(idx), I(1));
            const RegId s = b.loadH(R(synP), R(i2));
            const RegId p = b.mul(R(a), R(s));
            const RegId ps = b.shra(R(p), I(10));
            b.binTo(Opcode::SATADD, acc, R(acc), R(ps));
        });
        const RegId o2 = b.shl(R(nOff), I(1));
        const RegId e = b.loadH(R(excP), R(o2));
        const RegId v = b.satadd(R(e), R(acc));
        b.storeH(R(synP), R(o2), R(v));
        b.addTo(nOff, R(nOff), I(1));
    });
    b.ret({R(acc)});
    return f;
}

/** Excitation builder: a trip-40 loop with a gain diamond. */
FuncId
buildExcitation(Program &prog, const G724Mem &m)
{
    const FuncId f = prog.newFunction("build_exc");
    Function &fn = prog.functions[f];
    const RegId gain = fn.newReg();
    const RegId base = fn.newReg();
    fn.params = {gain, base};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId excP = b.iconst(m.exc);
    const RegId resP = b.iconst(m.res);
    const RegId acc = b.iconst(0);

    b.forLoop(0, 40, 1, [&](RegId i) {
        const RegId idx = b.add(R(i), R(base));
        const RegId i2 = b.shl(R(idx), I(1));
        const RegId r0 = b.loadH(R(resP), R(i2));
        const RegId g = b.mul(R(r0), R(gain));
        const RegId gs = b.shra(R(g), I(6));
        const RegId v = b.mov(R(gs));
        diamond(b, CmpCond::GT, R(gs), I(16384),
                [&] { b.movTo(v, I(16384)); },
                [&] {
                    ifThen(b, CmpCond::LT, R(gs), I(-16384), [&] {
                        b.movTo(v, I(-16384));
                    });
                });
        b.storeH(R(excP), R(i2), R(v));
        b.binTo(Opcode::SATADD, acc, R(acc), R(v));
    });
    b.ret({R(acc)});
    return f;
}

/** Autocorrelation: lag loop with variable-trip inner loops. */
FuncId
buildAutocorr(Program &prog, const G724Mem &m)
{
    const FuncId f = prog.newFunction("autocorr");
    Function &fn = prog.functions[f];
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId synP = b.iconst(m.syn);
    const RegId scrP = b.iconst(m.scratch);
    const RegId total = b.iconst(0);

    b.forLoop(0, 11, 1, [&](RegId lag) {
        const RegId acc = b.iconst(0);
        const RegId bound = b.sub(I(160), R(lag));
        b.forLoopReg(0, bound, 1, [&](RegId n) {
            const RegId n2 = b.shl(R(n), I(1));
            const RegId x = b.loadH(R(synP), R(n2));
            const RegId j = b.add(R(n), R(lag));
            const RegId j2 = b.shl(R(j), I(1));
            const RegId y = b.loadH(R(synP), R(j2));
            const RegId p = b.mul(R(x), R(y));
            const RegId ps = b.shra(R(p), I(8));
            b.addTo(acc, R(acc), R(ps));
        });
        const RegId l4 = b.shl(R(lag), I(2));
        b.storeW(R(scrP), R(l4), R(acc));
        b.binTo(Opcode::XOR, total, R(total), R(acc));
    });
    b.ret({R(total)});
    return f;
}

/** Levinson-Durbin-style recursion: counted loops with diamonds. */
FuncId
buildLevinson(Program &prog, const G724Mem &m)
{
    const FuncId f = prog.newFunction("levinson");
    Function &fn = prog.functions[f];
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId scrP = b.iconst(m.scratch);
    const RegId err = b.iconst(1 << 14);
    const RegId acc = b.iconst(0);

    b.forLoop(1, 11, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId r_i = b.loadW(R(scrP), R(i4));
        const RegId num = b.shl(R(r_i), I(4));
        const RegId safeErr = b.max(R(err), I(1));
        const RegId k = b.div(R(num), R(safeErr));
        const RegId kc = b.mov(R(k));
        diamond(b, CmpCond::GT, R(k), I(32767),
                [&] { b.movTo(kc, I(32767)); },
                [&] {
                    ifThen(b, CmpCond::LT, R(k), I(-32768), [&] {
                        b.movTo(kc, I(-32768));
                    });
                });
        const RegId k2 = b.mul(R(kc), R(kc));
        const RegId k2s = b.shra(R(k2), I(15));
        const RegId one = b.sub(I(32768), R(k2s));
        const RegId ne = b.mul(R(err), R(one));
        b.binTo(Opcode::SHRA, err, R(ne), I(15));
        b.binTo(Opcode::MAX, err, R(err), I(1));
        b.binTo(Opcode::SATADD, acc, R(acc), R(kc));
    });
    b.ret({R(acc)});
    return f;
}

/**
 * Algebraic codebook search: subframe loop over five tracks, each
 * with a tiny trip-5 position loop — the paper's peeling target
 * (trip < 6, expansion < 36 ops).
 */
FuncId
buildCodebookSearch(Program &prog, const G724Mem &m)
{
    const FuncId f = prog.newFunction("cb_search");
    Function &fn = prog.functions[f];
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId resP = b.iconst(m.res);
    const RegId best = b.iconst(-1 << 20);

    b.forLoop(0, 40, 1, [&](RegId track) {
        const RegId t8 = b.and_(R(track), I(7));
        const RegId corr = b.iconst(0);
        // Tiny counted loop: peeling folds it into the track loop.
        b.forLoop(0, 5, 1, [&](RegId pos) {
            const RegId idx = b.add(R(t8), R(pos));
            const RegId i2 = b.shl(R(idx), I(1));
            const RegId r0 = b.loadH(R(resP), R(i2));
            b.binTo(Opcode::SATADD, corr, R(corr), R(r0));
        });
        b.binTo(Opcode::MAX, best, R(best), R(corr));
    });
    b.ret({R(best)});
    return f;
}

Program
buildG724(bool encode)
{
    Program prog;
    prog.name = encode ? "g724_enc" : "g724_dec";
    G724Mem m = layoutG724(prog);

    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;

    if (encode) {
        const FuncId autoc = buildAutocorr(prog, m);
        const FuncId lev = buildLevinson(prog, m);
        const FuncId wgt = buildWeightAz(prog, m);
        const FuncId cb = buildCodebookSearch(prog, m);
        const FuncId syn = buildSynthesisFilter(prog, m);

        IRBuilder b(prog, mainF);
        auto R = [](RegId r) { return Operand::reg(r); };
        auto I = [](std::int64_t v) { return Operand::imm(v); };
        const RegId acc = b.iconst(0);
        const RegId outP = b.iconst(m.out);
        // Frames loop: each frame runs the encoder stages.
        b.forLoop(0, 6, 1, [&](RegId frame) {
            auto r1 = b.call(autoc, {}, 1);
            auto r2 = b.call(lev, {}, 1);
            auto r3 = b.call(wgt, {R(r2[0])}, 1);
            auto r4 = b.call(cb, {}, 1);
            const RegId base = b.and_(R(frame), I(3));
            const RegId b40 = b.mul(R(base), I(40));
            auto r5 = b.call(syn, {R(b40)}, 1);
            b.binTo(Opcode::XOR, acc, R(acc), R(r1[0]));
            b.binTo(Opcode::SATADD, acc, R(acc), R(r3[0]));
            b.binTo(Opcode::XOR, acc, R(acc), R(r4[0]));
            b.binTo(Opcode::SATADD, acc, R(acc), R(r5[0]));
            const RegId f2 = b.shl(R(frame), I(1));
            b.storeH(R(outP), R(f2), R(acc));
        });
        b.ret({R(acc)});
    } else {
        const FuncId exc = buildExcitation(prog, m);
        const FuncId syn = buildSynthesisFilter(prog, m);
        const FuncId pf = buildPostFilter(prog, m);

        IRBuilder b(prog, mainF);
        auto R = [](RegId r) { return Operand::reg(r); };
        auto I = [](std::int64_t v) { return Operand::imm(v); };
        const RegId acc = b.iconst(0);
        const RegId outP = b.iconst(m.out);
        b.forLoop(0, 4, 1, [&](RegId frame) {
            const RegId base = b.and_(R(frame), I(3));
            const RegId b40 = b.mul(R(base), I(40));
            const RegId gain = b.add(R(frame), I(37));
            auto r1 = b.call(exc, {R(gain), R(b40)}, 1);
            auto r2 = b.call(syn, {R(b40)}, 1);
            auto r3 = b.call(pf, {}, 1);
            b.binTo(Opcode::XOR, acc, R(acc), R(r1[0]));
            b.binTo(Opcode::SATADD, acc, R(acc), R(r2[0]));
            b.binTo(Opcode::XOR, acc, R(acc), R(r3[0]));
            const RegId f2 = b.shl(R(frame), I(1));
            b.storeH(R(outP), R(f2), R(acc));
        });
        b.ret({R(acc)});
    }

    prog.checksumBase = m.out;
    prog.checksumSize = kArr * 2;
    return prog;
}

} // namespace

Program
buildG724Enc()
{
    return buildG724(true);
}

Program
buildG724Dec()
{
    return buildG724(false);
}

/**
 * Standalone Post_Filter program for the Figure-5 experiment: one
 * invocation, four outer iterations, nothing else.
 */
Program
buildPostFilterOnly()
{
    Program prog;
    prog.name = "post_filter_only";
    G724Mem m = layoutG724(prog);
    const FuncId pf = buildPostFilter(prog, m);
    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    auto r = b.call(pf, {}, 1);
    b.ret({Operand::reg(r[0])});
    prog.checksumBase = m.out;
    prog.checksumSize = kArr * 2;
    return prog;
}

} // namespace workloads
} // namespace lbp
