/**
 * @file
 * Program: a set of functions plus an initial data-memory image.
 */

#ifndef LBP_IR_PROGRAM_HH
#define LBP_IR_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace lbp
{

class Program
{
  public:
    std::string name;
    std::vector<Function> functions;
    FuncId entryFunc = kNoFunc;

    /** Initial data memory image (byte addressable, zero-initialized). */
    std::vector<std::uint8_t> memory;

    /**
     * [checksumBase, checksumBase+checksumSize) is the output region
     * hashed into the program's result checksum after execution.
     */
    std::int64_t checksumBase = 0;
    std::int64_t checksumSize = 0;

    /** Create a new function and return its id. */
    FuncId newFunction(const std::string &fname);

    Function &function(FuncId f) { return functions[f]; }
    const Function &function(FuncId f) const { return functions[f]; }

    /** Find a function id by name; kNoFunc if absent. */
    FuncId findFunction(const std::string &fname) const;

    /**
     * Reserve @p bytes of data memory aligned to @p align and return
     * the base address.
     */
    std::int64_t allocData(std::int64_t bytes, std::int64_t align = 8);

    /** Store helpers for building initial memory images. */
    void poke8(std::int64_t addr, std::uint8_t v);
    void poke16(std::int64_t addr, std::int16_t v);
    void poke32(std::int64_t addr, std::int32_t v);
    std::int32_t peek32(std::int64_t addr) const;

    /** Total non-NOP static operations across all functions. */
    int sizeOps() const;
};

} // namespace lbp

#endif // LBP_IR_PROGRAM_HH
