/**
 * @file
 * Named, hierarchical metrics registry in the spirit of gem5's stat
 * registries: benches, tools, and tests publish counters into one
 * structure and share one serialization path (JSON with a versioned
 * schema, CSV for spreadsheets) instead of each binary hand-printing
 * its own fields.
 *
 * Hierarchy is by dotted name ("sim.loop.003.iterations"); metrics
 * are created on first access and iterate in name order, so dumps are
 * deterministic. Four metric types:
 *
 *  - Counter:  monotonically-accumulated uint64 (cycles, ops);
 *  - IntGauge: signed 64-bit level (deltas, addresses, return values);
 *  - Gauge:    double level (fractions, milliseconds, nanojoules);
 *  - Histogram: weighted integer-binned distribution.
 *
 * Free-form string annotations ("info") carry identity metadata
 * (workload, engine, machine) and land in the dump's "meta" block.
 */

#ifndef LBP_OBS_REGISTRY_HH
#define LBP_OBS_REGISTRY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace lbp
{
namespace obs
{

/** Registry dump format version (bump on layout changes). History:
 *    1  meta/metrics/histograms sections
 *    2  adds the "git_sha" build-identity stamp (obs/version.hh)
 */
constexpr int kRegistrySchemaVersion = 2;

class Counter
{
  public:
    void inc(std::uint64_t d = 1) { v_ += d; }
    void set(std::uint64_t v) { v_ = v; }
    std::uint64_t value() const { return v_; }

  private:
    std::uint64_t v_ = 0;
};

class IntGauge
{
  public:
    void set(std::int64_t v) { v_ = v; }
    void add(std::int64_t d) { v_ += d; }
    std::int64_t value() const { return v_; }

  private:
    std::int64_t v_ = 0;
};

class Gauge
{
  public:
    void set(double v) { v_ = v; }
    void add(double d) { v_ += d; }
    double value() const { return v_; }

  private:
    double v_ = 0;
};

/** Weighted histogram over integer bins (obs twin of support/stats). */
class Histogram
{
  public:
    void add(std::int64_t v, double weight = 1.0)
    { bins_[v] += weight; }

    double total() const;
    double mean() const;
    std::int64_t maxValue() const;

    /**
     * Weighted nearest-rank quantile: the smallest bin value whose
     * cumulative weight reaches q * total (q in [0, 1]). Empty
     * histograms yield 0.
     */
    std::int64_t percentile(double q) const;
    bool empty() const { return bins_.empty(); }
    const std::map<std::int64_t, double> &bins() const
    { return bins_; }

  private:
    std::map<std::int64_t, double> bins_;
};

class Registry
{
  public:
    /** Find-or-create. A name is bound to one type for its lifetime. */
    Counter &counter(const std::string &name);
    IntGauge &intGauge(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** String annotation for the dump's "meta" block. */
    void info(const std::string &name, const std::string &value);

    /** Lookup without creation (nullptr when absent). */
    const Counter *findCounter(const std::string &name) const;
    const std::string *findInfo(const std::string &name) const;

    bool empty() const;

    /**
     * Serialize: {"schema_version", "meta": {...}, "metrics": {...},
     * "histograms": {...}}. Metric values keep their exact integer
     * width through obs::Json.
     */
    Json toJson() const;

    /** CSV rows: kind,name,value (histogram bins flattened). */
    void writeCsv(std::ostream &os) const;

    /** Human-oriented aligned table of every metric. */
    void writeTable(std::ostream &os) const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, IntGauge> intGauges_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> hists_;
    std::map<std::string, std::string> infos_;

    void checkFresh(const std::string &name, const void *self) const;
};

/** One differing key between two registry dumps. */
struct DiffEntry
{
    std::string key;
    std::string a;   ///< rendering in the first dump ("<absent>" if missing)
    std::string b;   ///< rendering in the second dump
};

/**
 * Field-by-field diff of two registry JSON dumps (as produced by
 * Registry::toJson or parsed back from disk). Compares the union of
 * "metrics" and "histograms" keys; "meta" and "git_sha" are identity,
 * not data, and are ignored. Returns differing keys in name order.
 *
 * Null policy: a non-finite gauge serializes as JSON `null`
 * (json.cc's writeDouble), and NaN never compares equal to anything —
 * including itself. A metric that is `null` in either dump is
 * therefore ALWAYS reported as a diff, even when both sides are
 * `null`, so a NaN can never silently pass a regression gate. A
 * missing key is a separate condition ("<absent>") and is reported as
 * such; the two are never conflated.
 */
std::vector<DiffEntry> diffRegistries(const Json &a, const Json &b);

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_REGISTRY_HH
