/**
 * @file
 * Static loop unrolling for simple counted loops whose trip count is
 * divisible by the unroll factor. Used by tests, by ILP experiments,
 * and to physically realize modulo-variable-expansion factors when a
 * caller wants the expanded body in the buffer image.
 */

#ifndef LBP_TRANSFORM_UNROLL_HH
#define LBP_TRANSFORM_UNROLL_HH

#include "ir/program.hh"

namespace lbp
{

/**
 * Unroll the simple counted loop headed at @p header by @p factor.
 * Returns false (leaving the IR untouched) when the loop shape is
 * unsupported: not a single-block loop, no static trip count, or the
 * trip count is not divisible by the factor.
 */
bool unrollLoop(Function &fn, BlockId header, int factor);

struct UnrollStats
{
    int loopsUnrolled = 0;
    int opsAdded = 0;
};

/**
 * Unroll every simple counted loop with body size <= @p maxBodyOps
 * and static trip divisible by @p factor.
 */
UnrollStats unrollSmallLoops(Function &fn, int factor, int maxBodyOps);

} // namespace lbp

#endif // LBP_TRANSFORM_UNROLL_HH
