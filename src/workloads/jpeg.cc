/**
 * @file
 * JPEG-style photo codec pair. The encoder's buffering behaviour is
 * deliberately awkward, matching the paper's finding that jpegenc
 * saturates around ~63% buffer issue: its inner-nest loops have
 * small trip counts that *vary across invocations* (run-length and
 * magnitude loops), so they can be neither peeled (no static trip)
 * nor collapsed (outer bodies are larger than the inner loops), and
 * every activation pays a recording iteration. The decoder is more
 * regular (fixed 8x8 transform nests) and buffers well.
 */

#include "workloads/workloads.hh"

#include "workloads/input_data.hh"

namespace lbp
{
namespace workloads
{

namespace
{

constexpr int kBlocks = 24;          // 8x8 blocks processed
constexpr int kPix = kBlocks * 64;

struct JpegMem
{
    std::int64_t pixels;   // 16-bit source samples
    std::int64_t work;     // 32-bit transform workspace
    std::int64_t quant;    // 32-bit quantization table (64)
    std::int64_t zigzag;   // 32-bit zigzag order (64)
    std::int64_t coded;    // byte stream out
    std::int64_t recon;    // 16-bit reconstruction
};

const int kZigzag[64] = {
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
};

JpegMem
layoutJpeg(Program &prog)
{
    JpegMem m;
    m.pixels = prog.allocData(kPix * 2);
    m.work = prog.allocData(kPix * 4);
    m.quant = prog.allocData(64 * 4);
    m.zigzag = prog.allocData(64 * 4);
    m.coded = prog.allocData(kPix * 2 + 1024);
    m.recon = prog.allocData(kPix * 2);
    fillPcm16(prog, m.pixels, kPix, 0x1ae9);
    storeTable32(prog, m.zigzag, kZigzag, 64);
    // Quant table: 16..80 ramp.
    for (int i = 0; i < 64; ++i)
        prog.poke32(m.quant + 4 * i, 16 + i);
    return m;
}

/**
 * Separable 8x8 forward transform on one block (a DCT-shaped
 * butterfly chain, integer). Row pass then column pass; each pass is
 * an outer-8 x inner-8 nest whose inner loop is a fixed-trip simple
 * loop (the decoder's bread and butter).
 */
FuncId
buildFdct(Program &prog, const JpegMem &m)
{
    const FuncId f = prog.newFunction("fdct8x8");
    Function &fn = prog.functions[f];
    const RegId blockBase = fn.newReg(); // word offset of the block
    fn.params = {blockBase};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId pixP = b.iconst(m.pixels);
    const RegId wrkP = b.iconst(m.work);
    const RegId acc = b.iconst(0);

    // Row pass: one straight-line 8-point butterfly per iteration,
    // with overflow-clamp diamonds (real fdcts are branch-free, but
    // the fixed-point range checks here model the descale/clamp
    // conditionals of the integer JPEG code path).
    b.forLoop(0, 8, 1, [&](RegId r) {
        const RegId row = b.add(R(blockBase), R(b.shl(R(r), I(3))));
        std::vector<RegId> x(8);
        for (int k = 0; k < 8; ++k) {
            const RegId src = b.add(R(row), I(k));
            const RegId s2 = b.shl(R(src), I(1));
            x[k] = b.loadH(R(pixP), R(s2));
        }
        // Even/odd butterfly stage.
        std::vector<RegId> t(8);
        for (int k = 0; k < 4; ++k) {
            t[k] = b.add(R(x[k]), R(x[7 - k]));
            t[4 + k] = b.sub(R(x[k]), R(x[7 - k]));
        }
        std::vector<RegId> o(8);
        o[0] = b.add(R(t[0]), R(t[3]));
        o[4] = b.sub(R(t[0]), R(t[3]));
        o[2] = b.add(R(t[1]), R(t[2]));
        o[6] = b.sub(R(t[1]), R(t[2]));
        o[1] = b.add(R(b.mul(R(t[4]), I(54))), R(b.mul(R(t[5]), I(24))));
        o[3] = b.sub(R(b.mul(R(t[5]), I(54))), R(b.mul(R(t[6]), I(24))));
        o[5] = b.add(R(b.mul(R(t[6]), I(54))), R(b.mul(R(t[7]), I(24))));
        o[7] = b.sub(R(b.mul(R(t[7]), I(54))), R(b.mul(R(t[4]), I(24))));
        for (int k = 0; k < 8; ++k) {
            const RegId sc = b.shra(R(o[k]), I(3));
            // Range-check hammock.
            const RegId v = b.mov(R(sc));
            ifThen(b, CmpCond::GT, R(sc), I(4095), [&] {
                b.movTo(v, I(4095));
            });
            ifThen(b, CmpCond::LT, R(sc), I(-4096), [&] {
                b.movTo(v, I(-4096));
            });
            const RegId dst = b.add(R(row), I(k));
            const RegId d4 = b.shl(R(dst), I(2));
            b.storeW(R(wrkP), R(d4), R(v));
            b.binTo(Opcode::XOR, acc, R(acc), R(v));
        }
    });
    b.ret({R(acc)});
    return f;
}

/** Quantize + zigzag one block (simple trip-64 loop). */
FuncId
buildQuantZig(Program &prog, const JpegMem &m)
{
    const FuncId f = prog.newFunction("quant_zigzag");
    Function &fn = prog.functions[f];
    const RegId blockBase = fn.newReg();
    fn.params = {blockBase};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId wrkP = b.iconst(m.work);
    const RegId qP = b.iconst(m.quant);
    const RegId zP = b.iconst(m.zigzag);
    const RegId nz = b.iconst(0);

    b.forLoop(0, 64, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(i), I(2));
        const RegId zi = b.loadW(R(zP), R(i4));
        const RegId src = b.add(R(blockBase), R(zi));
        const RegId s4 = b.shl(R(src), I(2));
        const RegId v = b.loadW(R(wrkP), R(s4));
        const RegId q = b.loadW(R(qP), R(i4));
        const RegId vq = b.div(R(v), R(q));
        b.storeW(R(wrkP), R(s4), R(vq));
        const RegId isnz = b.cmp(CmpCond::NE, R(vq), I(0));
        b.addTo(nz, R(nz), R(isnz));
    });
    b.ret({R(nz)});
    return f;
}

/**
 * Entropy-coding stage for the encoder: run-length scanning with
 * *data-dependent* inner loops (zero-run scan, magnitude-bit loop).
 * These trips vary per invocation, so the nest is neither peelable
 * nor collapsible — the structural reason jpegenc's buffer issue
 * saturates in the paper.
 */
FuncId
buildRleEncode(Program &prog, const JpegMem &m)
{
    const FuncId f = prog.newFunction("rle_encode");
    Function &fn = prog.functions[f];
    const RegId blockBase = fn.newReg();
    const RegId outBase = fn.newReg();
    fn.params = {blockBase, outBase};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId wrkP = b.iconst(m.work);
    const RegId outP = b.iconst(m.coded);
    const RegId wpos = b.mov(R(outBase));
    const RegId i = b.iconst(0);
    const RegId run = b.iconst(0);

    // Outer while-style loop over the 64 coefficients.
    const BlockId head = b.makeBlock("rle_head");
    const BlockId done = b.makeBlock("rle_done");
    b.fallTo(head);
    b.at(head);
    {
        const RegId src = b.add(R(blockBase), R(i));
        const RegId s4 = b.shl(R(src), I(2));
        const RegId v = b.loadW(R(wrkP), R(s4));

        // Zero-run scan: data-dependent inner control flow.
        diamond(b, CmpCond::EQ, R(v), I(0),
                [&] { b.addTo(run, R(run), I(1)); },
                [&] {
                    // Emit (run, value-ish token); magnitude loop has
                    // a data-dependent trip count.
                    b.storeB(R(outP), R(wpos), R(run));
                    b.addTo(wpos, R(wpos), I(1));
                    const RegId mag = b.abs(R(v));
                    const RegId bits = b.iconst(0);
                    const BlockId mh = b.makeBlock("mag_head");
                    b.fallTo(mh);
                    b.at(mh);
                    const RegId m2 = b.shra(R(mag), I(1));
                    b.movTo(mag, R(m2));
                    b.addTo(bits, R(bits), I(1));
                    b.br(CmpCond::GT, R(mag), I(0), mh);
                    const BlockId after = b.makeBlock();
                    b.fallTo(after);
                    b.at(after);
                    b.storeB(R(outP), R(wpos), R(bits));
                    b.addTo(wpos, R(wpos), I(1));
                    b.movTo(run, I(0));
                });
        b.addTo(i, R(i), I(1));
        b.br(CmpCond::LT, R(i), I(64), head);
        b.fallTo(done);
    }
    b.at(done);
    b.ret({R(wpos)});
    return f;
}

/** Inverse transform for the decoder (regular 8x8 nests). */
FuncId
buildIdct(Program &prog, const JpegMem &m)
{
    const FuncId f = prog.newFunction("idct8x8");
    Function &fn = prog.functions[f];
    const RegId blockBase = fn.newReg();
    fn.params = {blockBase};
    fn.numReturns = 1;

    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId wrkP = b.iconst(m.work);
    const RegId recP = b.iconst(m.recon);
    const RegId qP = b.iconst(m.quant);
    const RegId acc = b.iconst(0);

    b.forLoop(0, 8, 1, [&](RegId r) {
        const RegId row = b.add(R(blockBase), R(b.shl(R(r), I(3))));
        b.forLoop(0, 8, 1, [&](RegId c) {
            const RegId src = b.add(R(row), R(c));
            const RegId s4 = b.shl(R(src), I(2));
            const RegId v = b.loadW(R(wrkP), R(s4));
            const RegId c4 = b.shl(R(c), I(2));
            const RegId q = b.loadW(R(qP), R(c4));
            const RegId dq = b.mul(R(v), R(q));
            const RegId w = b.mul(R(dq), I(11));
            const RegId ws = b.shra(R(w), I(4));
            // Saturation diamond (traditional compilation cannot
            // buffer this loop; if-conversion can).
            const RegId out = b.mov(R(ws));
            diamond(b, CmpCond::GT, R(ws), I(32767),
                    [&] { b.movTo(out, I(32767)); },
                    [&] {
                        ifThen(b, CmpCond::LT, R(ws), I(-32768), [&] {
                            b.movTo(out, I(-32768));
                        });
                    });
            const RegId dst = b.add(R(row), R(c));
            const RegId d2 = b.shl(R(dst), I(1));
            b.storeH(R(recP), R(d2), R(out));
            b.binTo(Opcode::SATADD, acc, R(acc), R(out));
        });
    });
    b.ret({R(acc)});
    return f;
}

Program
buildJpeg(bool encode)
{
    Program prog;
    prog.name = encode ? "jpeg_enc" : "jpeg_dec";
    JpegMem m = layoutJpeg(prog);

    const FuncId fdct = buildFdct(prog, m);
    const FuncId quant = buildQuantZig(prog, m);
    const FuncId rle = buildRleEncode(prog, m);
    const FuncId idct = buildIdct(prog, m);

    const FuncId mainF = prog.newFunction("main");
    prog.entryFunc = mainF;
    IRBuilder b(prog, mainF);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId acc = b.iconst(0);
    const RegId wpos = b.iconst(0);

    b.forLoop(0, kBlocks, 1, [&](RegId blk) {
        const RegId base = b.shl(R(blk), I(6));
        auto r1 = b.call(fdct, {R(base)}, 1);
        auto r2 = b.call(quant, {R(base)}, 1);
        b.binTo(Opcode::XOR, acc, R(acc), R(r1[0]));
        b.binTo(Opcode::SATADD, acc, R(acc), R(r2[0]));
        if (encode) {
            auto r3 = b.call(rle, {R(base), R(wpos)}, 1);
            b.movTo(wpos, R(r3[0]));
        } else {
            auto r3 = b.call(idct, {R(base)}, 1);
            b.binTo(Opcode::XOR, acc, R(acc), R(r3[0]));
        }
    });
    b.ret({R(acc)});

    if (encode) {
        prog.checksumBase = m.coded;
        prog.checksumSize = kPix * 2 + 1024;
    } else {
        prog.checksumBase = m.recon;
        prog.checksumSize = kPix * 2;
    }
    return prog;
}

} // namespace

Program
buildJpegEnc()
{
    return buildJpeg(true);
}

Program
buildJpegDec()
{
    return buildJpeg(false);
}

} // namespace workloads
} // namespace lbp
