/**
 * @file
 * Buffer-allocation tests: benefit-ordered placement, size
 * rejection, disjoint packing of cohabiting loops, and the overlap
 * fallback, plus re-allocation across buffer sizes.
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "ir/builder.hh"
#include "sim/vliw_sim.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** N sequential small loops inside a hot outer loop. */
Program
multiLoopProgram(int nloops, int padOps, int innerTrip)
{
    Program prog;
    const auto data = prog.allocData(1024);
    prog.checksumBase = data;
    prog.checksumSize = 64;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 8, 1, [&](RegId) {
        for (int k = 0; k < nloops; ++k) {
            b.forLoop(0, innerTrip, 1, [&](RegId j) {
                b.addTo(acc, R(acc), R(j));
                for (int p = 0; p < padOps; ++p)
                    b.binTo(Opcode::XOR, acc, R(acc), I(p + k + 1));
            });
        }
    });
    b.storeW(R(dp), I(0), R(acc));
    b.ret({R(acc)});
    return prog;
}

TEST(BufferAlloc, AllLoopsFitWhenRoomy)
{
    Program prog = multiLoopProgram(3, 4, 20);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    EXPECT_EQ(cr.bufferAlloc.buffered, 3);
    // Disjoint addresses.
    std::vector<std::pair<int, int>> ranges;
    for (const auto &a : cr.bufferAlloc.assignments) {
        if (a.bufAddr < 0)
            continue;
        for (const auto &[lo, sz] : ranges) {
            EXPECT_TRUE(a.bufAddr + a.imageOps <= lo ||
                        lo + sz <= a.bufAddr)
                << "overlapping placement with plenty of room";
        }
        ranges.emplace_back(a.bufAddr, a.imageOps);
    }
}

TEST(BufferAlloc, OversizeLoopUnbuffered)
{
    // A body that stays oversized through optimization: serial
    // data-dependent work (reassociation cannot shrink it).
    Program prog;
    {
        const auto data = prog.allocData(1024);
        prog.checksumBase = data;
        prog.checksumSize = 64;
        const FuncId f = prog.newFunction("main");
        prog.entryFunc = f;
        IRBuilder b(prog, f);
        const RegId dp = b.iconst(data);
        const RegId acc = b.iconst(1);
        b.forLoop(0, 20, 1, [&](RegId j) {
            for (int p = 0; p < 14; ++p) {
                const RegId sh = b.shl(R(j), I(p % 5));
                const RegId m = b.mul(R(acc), R(sh));
                b.binTo(Opcode::XOR, acc, R(m), I(p + 1));
            }
        });
        b.storeW(R(dp), I(0), R(acc));
        b.ret({R(acc)});
    }
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 32;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    int buffered = 0;
    for (const auto &a : cr.bufferAlloc.assignments)
        buffered += a.bufAddr >= 0;
    EXPECT_EQ(buffered, 0);
}

TEST(BufferAlloc, HotterLoopWinsContention)
{
    // Two loops whose images cannot cohabit: the hotter loop gets a
    // private range and keeps residency during the run.
    Program prog;
    const auto data = prog.allocData(1024);
    prog.checksumBase = data;
    prog.checksumSize = 64;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 6, 1, [&](RegId) {
        b.forLoop(0, 200, 1, [&](RegId j) { // hot
            b.addTo(acc, R(acc), R(j));
            for (int p = 0; p < 17; ++p)
                b.binTo(Opcode::XOR, acc, R(acc), I(p + 1));
        });
        b.forLoop(0, 3, 1, [&](RegId j) { // cold
            b.addTo(acc, R(acc), R(j));
            for (int p = 0; p < 17; ++p)
                b.binTo(Opcode::AND, acc, R(acc), I(0xffffff));
        });
    });
    b.storeW(R(dp), I(0), R(acc));
    b.ret({R(acc)});

    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 32;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc;
    sc.bufferOps = 32;
    VliwSim sim(cr.code, sc);
    const auto st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);
    // The hot loop must dominate buffered issue; with the cold loop
    // overlapping it, evictions happen but hot iterations dominate.
    std::uint64_t hotBuf = 0, coldBuf = 0;
    for (const LoopStats *ls : st.activeLoops()) {
        if (ls->iterations > 400)
            hotBuf = ls->bufferIterations;
        else
            coldBuf = ls->bufferIterations;
    }
    EXPECT_GT(hotBuf, 900u);
    (void)coldBuf;
}

TEST(BufferAlloc, ReallocationAcrossSizes)
{
    Program prog = multiLoopProgram(4, 10, 16);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 16;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    double last = -1;
    for (int size : {16, 64, 256}) {
        reallocateBuffers(cr, size);
        SimConfig sc;
        sc.bufferOps = size;
        VliwSim sim(cr.code, sc);
        const auto st = sim.run();
        EXPECT_EQ(st.checksum, cr.goldenChecksum);
        const double frac = st.bufferFraction();
        EXPECT_GE(frac + 1e-9, last)
            << "buffer issue must not degrade as the buffer grows";
        last = frac;
    }
    EXPECT_GT(last, 0.8);
}

} // namespace
} // namespace lbp
