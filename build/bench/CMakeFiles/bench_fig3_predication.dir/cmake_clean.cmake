file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_predication.dir/bench_fig3_predication.cc.o"
  "CMakeFiles/bench_fig3_predication.dir/bench_fig3_predication.cc.o.d"
  "bench_fig3_predication"
  "bench_fig3_predication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_predication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
