/**
 * @file
 * The decoded fast-path executor body: semantically a line-for-line
 * twin of the reference interpreter in vliw_sim.cc, but running over
 * the predecoded MicroOp image (decoded.hh). Differences are strictly
 * mechanical:
 *
 *  - operands are pre-resolved (no OperandKind switch per read);
 *  - NOPs are gone, bundle fetch sizes are precomputed;
 *  - per-bundle deferred-write lists live in fixed stack arrays
 *    instead of freshly allocated vectors;
 *  - loop statistics are indexed by dense loop id (no map lookups);
 *  - range checks proven at predecode time are not re-checked.
 *
 * Any behavioral divergence from the reference engine is a bug; the
 * engine-differential test compares complete SimStats between the
 * two across every registry workload.
 *
 * This is a private implementation header, not an interface: it
 * defines the callFunctionDecodedImpl<Traced> member template and is
 * included by exactly two translation units, vliw_sim_decoded.cc
 * (explicitly instantiating Traced=false) and
 * vliw_sim_decoded_traced.cc (Traced=true). Keeping the two
 * instantiations in separate TUs is deliberate: with both bodies in
 * one TU the inliner splits its budget between them and the untraced
 * hot path loses ~5% throughput; alone in its TU, the Traced=false
 * stamp compiles to the same code as a build without tracing.
 */

#ifndef LBP_SIM_VLIW_SIM_DECODED_BODY_HH
#define LBP_SIM_VLIW_SIM_DECODED_BODY_HH

#include <algorithm>

#include "obs/prof.hh"
#include "obs/trace.hh"
#include "sim/decoded.hh"
#include "sim/dispatch.hh"
#include "sim/trace_cache.hh"
#include "sim/vliw_sim.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

std::int64_t
sat16(std::int64_t v)
{
    return std::clamp<std::int64_t>(v, -32768, 32767);
}

double
asDouble(std::int64_t v)
{
    double d;
    __builtin_memcpy(&d, &v, sizeof(d));
    return d;
}

std::int64_t
asBits(double d)
{
    std::int64_t v;
    __builtin_memcpy(&v, &d, sizeof(v));
    return v;
}

} // namespace

/**
 * Trace emission for the templated executor: compiles to nothing in
 * the Traced=false instantiation, so the untraced hot loop carries no
 * emission code at all (not even the null checks).
 */
#define DECODED_TRACE_EMIT(...)                                             \
    do {                                                                    \
        if constexpr (Traced)                                               \
            LBP_TRACE_EMIT(__VA_ARGS__);                                    \
    } while (0)

template <bool Traced>
std::vector<std::int64_t>
VliwSim::callFunctionDecodedImpl(FuncId f,
                                 const std::vector<std::int64_t> &args)
{
    LBP_ASSERT(++callDepth_ < 200, "sim call stack overflow");
    const DecodedProgram &dp = *decoded_;
    const DecodedFunction &df = dp.functions[f];
    LBP_ASSERT(args.size() == df.params.size(),
               "arg count mismatch calling ", df.fn->name);

    // Per-call register and predicate files come from the frame arena
    // (two pointer bumps instead of two heap allocations); the chunked
    // arena keeps them address-stable across recursive calls.
    FrameArena::Scope frame(arena_);
    std::int64_t *const regs = frame.allocI64(df.numRegs);
    std::uint8_t *const preds = frame.allocU8(df.numPreds);
    for (size_t i = 0; i < args.size(); ++i)
        regs[df.params[i]] = args[i];

    std::vector<LoopCtx> loopStack;
    std::vector<LoopKey> evictedKeys;

    BlockId curBlk = df.entry;
    size_t curBu = 0;

    const bool slotMode = cfg_.predMode == PredMode::SLOT;
    [[maybe_unused]] obs::TraceSink *const ts =
        Traced ? cfg_.trace : nullptr;

#if LBP_PROF
    // Per-ExecHandler rdtsc windows (SimConfig::opProf): the span
    // from one op's dispatch to the next in the same bundle is
    // charged to the earlier op's handler kind; windows close at the
    // bundle boundary so commits, calls and block bookkeeping stay
    // unattributed. Traced stamp only — the production untraced hot
    // loop carries no timing code at all.
    static_assert(static_cast<std::size_t>(ExecHandler::COUNT) <=
                      kOpProfSlots,
                  "opProfCycles_ too small for ExecHandler");
    [[maybe_unused]] const bool opProf = Traced && cfg_.opProf;
    [[maybe_unused]] std::uint64_t opTsc = 0;
    [[maybe_unused]] int opHandler = -1;
#endif

    auto readSrc = [&](const XSrc &s) -> std::int64_t {
        if (s.kind == XSrc::REG)
            return regs[s.idx];
        if (s.kind == XSrc::IMM)
            return s.imm;
        return preds[s.idx];
    };

    // Deferred writes for the two-phase bundle commit. Capacities are
    // bounded by the issue width (checked at predecode): at most one
    // register or memory write per op, two predicate/slot writes per
    // predicate define.
    struct RegWrite { std::int32_t r; std::int64_t v; };
    struct PredWrite { std::int32_t p; std::uint8_t v; };
    struct SlotWrite { std::int32_t s; std::uint8_t v; };
    struct MemWrite { Opcode op; std::int64_t addr; std::int64_t v; };
    RegWrite regW[Machine::width];
    PredWrite predW[2 * Machine::width];
    SlotWrite slotW[2 * Machine::width];
    MemWrite memW[Machine::width];

    /**
     * Finish a loop activation: apply pipelined-timing correction and
     * roll per-loop statistics.
     */
    auto retireLoop = [&](LoopCtx &ctx) {
        retireLoopStats(ctx);
        DECODED_TRACE_EMIT(ts, obs::TraceKind::LoopExit, stats_.cycles,
                       ctx.loopId,
                       static_cast<std::int64_t>(ctx.iterations),
                       ctx.fromBuffer ? 1 : 0);
    };

    LBP_DISPATCH_TABLE();

    while (true) {
        LBP_ASSERT(curBlk != kNoBlock && curBlk < df.blocks.size(),
                   "sim fell off CFG in ", df.fn->name);
        const DecodedBlock &db = df.blocks[curBlk];
        LBP_ASSERT(db.valid, "sim in dead or unscheduled block");

        // Trace-cache engagement: arriving anywhere in the head block
        // of the innermost loop while it issues from the buffer is the
        // replay condition (predicated traces can engage mid-bundle —
        // a trace built on this activation starts paying off now; the
        // fast tier and out-of-extent arrivals decline inside
        // replayResident). Untraced instantiation only — replay emits
        // no events, and gating it to Traced=false keeps the traced
        // event stream byte-identical by construction. A NotEngaged
        // result falls through to the general path; declines latch
        // traceDeclined so resident-but-untraceable loops pay the
        // gate once per activation, not once per bundle.
        if constexpr (!Traced) {
            if (traceCache_ && !loopStack.empty()) {
                LoopCtx &top = loopStack.back();
                if (top.head == curBlk && top.fromBuffer &&
                    !top.traceDeclined) {
                    if (top.counted &&
                        top.remaining < cfg_.replayMinIters) {
                        // Residency without enough iterations left to
                        // amortize a replay: a real bailout (the
                        // general path runs the activation),
                        // attributed like any build-gating decline —
                        // once per activation.
                        top.traceDeclined = true;
                        traceCache_->countBailout(
                            top.loopId,
                            TraceBailoutReason::BelowEngageThreshold);
                    } else {
                        const ReplayResult rr = replayResident(
                            top, df, regs, preds, curBu);
                        switch (rr.outcome) {
                          case ReplayOutcome::NotEngaged:
                            break;
                          case ReplayOutcome::BackedgeFellThrough: {
                            // The activation stays live; fetch falls
                            // through the nullified backedge into the
                            // head block's trailing bundles.
                            curBu = rr.resumeBundle;
                            continue;
                          }
                          case ReplayOutcome::SideExit: {
                            // Mirror the general path's end-of-bundle
                            // redirect: a same-bundle backedge exit
                            // retires the activation first, then
                            // context cancellation and the
                            // taken-branch penalty.
                            if (rr.ctxDone) {
                                LoopCtx done = loopStack.back();
                                loopStack.pop_back();
                                LBP_ASSERT(!done.isExec,
                                           "two control transfers in "
                                           "one bundle");
                                if (rr.whileExit) {
                                    chargeRedirect(
                                        obs::CycleClass::
                                            WhileExitPenalty,
                                        done.loopId);
                                }
                                retireLoop(done);
                            }
                            while (!loopStack.empty() &&
                                   loopStack.back().head == curBlk &&
                                   rr.sideTarget !=
                                       loopStack.back().head) {
                                LoopCtx done = loopStack.back();
                                loopStack.pop_back();
                                retireLoop(done);
                            }
                            chargeRedirect(
                                obs::CycleClass::TakenBranchPenalty,
                                -1);
                            curBlk = rr.sideTarget;
                            curBu = 0;
                            continue;
                          }
                          case ReplayOutcome::CountedDone:
                          case ReplayOutcome::WloopExit: {
                            LoopCtx done = loopStack.back();
                            loopStack.pop_back();
                            if (rr.outcome ==
                                ReplayOutcome::WloopExit) {
                                // While exits from the buffer are
                                // mispredicted (the buffer keeps
                                // replaying), exactly as on the
                                // general path.
                                chargeRedirect(
                                    obs::CycleClass::WhileExitPenalty,
                                    done.loopId);
                            }
                            retireLoop(done);
                            if (done.isExec) {
                                curBlk = done.resumeBlock;
                                curBu = done.resumeBundle;
                            } else {
                                curBu = rr.resumeBundle;
                            }
                            continue;
                          }
                        }
                    }
                }
            }
        }

        if (curBu >= db.bundleCount) {
            LBP_ASSERT(db.fallthrough != kNoBlock,
                       "sim fell off block in ", df.fn->name);
            curBlk = db.fallthrough;
            curBu = 0;
            continue;
        }

        const DecodedBundle &bu = df.bundles[db.firstBundle + curBu];
        LBP_ASSERT(++bundlesExecuted_ <= cfg_.maxBundles,
                   "bundle budget exceeded");
        ++stats_.bundles;
        ++stats_.cycles;

        // Fetch accounting: are we executing this bundle from the
        // loop buffer? Body ops are attributed to the innermost
        // active loop either way, so per-loop opsFromBuffer sums
        // exactly to the aggregate counter (the scorecard invariant).
        bool fromBuffer = false;
        int issueRow = -1;
        if (!loopStack.empty()) {
            const LoopCtx &top = loopStack.back();
            if (curBlk == top.head) {
                issueRow = top.loopId;
                LoopStats &tls = stats_.loops[top.loopId];
                if (top.fromBuffer) {
                    fromBuffer = true;
                    tls.opsFromBuffer += bu.sizeOps;
                } else {
                    tls.opsFromCache += bu.sizeOps;
                }
            }
        }
        stats_.opsFetched += bu.sizeOps;
        if (fromBuffer)
            stats_.opsFromBuffer += bu.sizeOps;
        cycleStack_.charge(issueRow,
                           fromBuffer
                               ? obs::CycleClass::IssueFromBuffer
                               : obs::CycleClass::IssueFromMemory,
                           1);
        DECODED_TRACE_EMIT(ts,
                       fromBuffer ? obs::TraceKind::BufHit
                                  : obs::TraceKind::Fetch,
                       stats_.cycles,
                       fromBuffer ? loopStack.back().loopId : -1,
                       bu.sizeOps, curBlk);

        // ---- Phase 1: evaluate ----
        int nRegW = 0, nPredW = 0, nSlotW = 0, nMemW = 0;

        bool redirect = false;
        BlockId nextBlk = kNoBlock;
        size_t nextBu = 0;
        bool freeXfer = false;
        obs::CycleClass redirCls = obs::CycleClass::TakenBranchPenalty;
        int redirRow = -1;
        const MicroOp *callOp = nullptr;
        const MicroOp *retOp = nullptr;
        bool sawControl = false;
        auto takeRedirect =
            [&](BlockId blk, size_t buIdx, bool free,
                obs::CycleClass cls =
                    obs::CycleClass::TakenBranchPenalty,
                int row = -1) {
            LBP_ASSERT(!sawControl,
                       "two control transfers in one bundle");
            sawControl = true;
            redirect = true;
            nextBlk = blk;
            nextBu = buIdx;
            freeXfer = free;
            redirCls = cls;
            redirRow = row;
        };

        const MicroOp *const opBase = df.ops.data();
        for (const MicroOp *m = opBase + bu.first,
                           *const end = m + bu.count;
             m != end; ++m) {
            if constexpr (Traced) {
#if LBP_PROF
                if (opProf) {
                    const std::uint64_t now = obs::prof::tsc();
                    if (opHandler >= 0)
                        opProfCycles_[opHandler] += now - opTsc;
                    opTsc = now;
                    opHandler = static_cast<int>(m->handler);
                }
#endif
            }
            bool exec;
            if (slotMode && m->sensitive) {
                ++stats_.opsSensitive;
                exec = slotPred_[m->slot] != 0;
            } else {
                exec = m->guard == kNoPred || preds[m->guard] != 0;
            }
            if (!exec && m->op != Opcode::PRED_DEF) {
                ++stats_.opsNullified;
                DECODED_TRACE_EMIT(ts, obs::TraceKind::Nullify,
                               stats_.cycles, -1,
                               static_cast<std::int64_t>(m->op),
                               m->slot);
                if (isBranch(m->op)) {
                    ++stats_.branches;
                    DECODED_TRACE_EMIT(ts, obs::TraceKind::Branch,
                                   stats_.cycles, -1, 0, 1);
                }
                continue;
            }

            LBP_DISPATCH(m->handler) {
              LBP_HANDLER(PRED_DEF) {
                // The guard is an input to the define (Table 2).
                bool g;
                if (slotMode && m->sensitive) {
                    g = slotPred_[m->slot] != 0;
                } else if (m->guard != kNoPred) {
                    g = preds[m->guard] != 0;
                } else {
                    g = true;
                }
                const std::int64_t a = readSrc(m->src[0]);
                const std::int64_t b = readSrc(m->src[1]);
                const bool c = evalCond(m->cond, a, b);
                auto apply = [&](PredDefKind k, std::uint8_t dKind,
                                 std::int32_t dIdx) {
                    if (k == PredDefKind::NONE || dKind == 0)
                        return;
                    int w = -1;
                    switch (k) {
                      case PredDefKind::UT: w = g ? (c ? 1 : 0) : 0;
                        break;
                      case PredDefKind::UF: w = g ? (c ? 0 : 1) : 0;
                        break;
                      case PredDefKind::OT: if (g && c) w = 1; break;
                      case PredDefKind::OF: if (g && !c) w = 1; break;
                      case PredDefKind::AT: if (g && !c) w = 0; break;
                      case PredDefKind::AF: if (g && c) w = 0; break;
                      case PredDefKind::CT: if (g) w = c; break;
                      case PredDefKind::CF: if (g) w = !c; break;
                      default: LBP_PANIC("bad def kind");
                    }
                    if (w < 0)
                        return;
                    if (dKind == 2) {
                        slotW[nSlotW++] =
                            {dIdx, static_cast<std::uint8_t>(w)};
                    } else {
                        predW[nPredW++] =
                            {dIdx, static_cast<std::uint8_t>(w)};
                    }
                };
                apply(m->k0, m->pdKind0, m->pdIdx0);
                apply(m->k1, m->pdKind1, m->pdIdx1);
                LBP_NEXT_OP;
              }

              LBP_HANDLER(LOAD) {
                const std::int64_t addr =
                    readSrc(m->src[0]) + readSrc(m->src[1]);
                const size_t need = m->op == Opcode::LD_B ? 1
                                    : m->op == Opcode::LD_H ? 2 : 4;
                std::int64_t v = 0;
                const bool oob =
                    addr < 0 ||
                    static_cast<size_t>(addr) + need > mem_.size();
                if (oob) {
                    LBP_ASSERT(m->speculative,
                               "non-speculative load fault @", addr);
                    v = 0;
                } else {
                    std::uint32_t raw = 0;
                    for (size_t i = 0; i < need; ++i) {
                        raw |= static_cast<std::uint32_t>(
                                   mem_[addr + i]) << (8 * i);
                    }
                    v = m->op == Opcode::LD_B
                            ? static_cast<std::int8_t>(raw)
                        : m->op == Opcode::LD_H
                            ? static_cast<std::int16_t>(raw)
                            : static_cast<std::int32_t>(raw);
                }
                regW[nRegW++] = {m->dstReg, v};
                LBP_NEXT_OP;
              }

              LBP_HANDLER(STORE) {
                const std::int64_t addr =
                    readSrc(m->src[0]) + readSrc(m->src[1]);
                memW[nMemW++] = {m->op, addr, readSrc(m->src[2])};
                LBP_NEXT_OP;
              }

              LBP_HANDLER(MOV) {
                regW[nRegW++] = {m->dstReg, readSrc(m->src[0])};
                LBP_NEXT_OP;
              }
              LBP_HANDLER(ABS) {
                regW[nRegW++] = {m->dstReg,
                                 std::abs(readSrc(m->src[0]))};
                LBP_NEXT_OP;
              }
              LBP_HANDLER(ITOF) {
                regW[nRegW++] = {m->dstReg,
                                 asBits(static_cast<double>(
                                     readSrc(m->src[0])))};
                LBP_NEXT_OP;
              }
              LBP_HANDLER(FTOI) {
                regW[nRegW++] = {m->dstReg,
                                 static_cast<std::int64_t>(
                                     asDouble(readSrc(m->src[0])))};
                LBP_NEXT_OP;
              }
              LBP_HANDLER(SELECT) {
                const std::int64_t c = readSrc(m->src[0]);
                regW[nRegW++] = {m->dstReg,
                                 c ? readSrc(m->src[1])
                                   : readSrc(m->src[2])};
                LBP_NEXT_OP;
              }

              LBP_HANDLER(BR) {
                ++stats_.branches;
                const std::int64_t a = readSrc(m->src[0]);
                const std::int64_t b = readSrc(m->src[1]);
                const bool taken = evalCond(m->cond, a, b);
                DECODED_TRACE_EMIT(ts, obs::TraceKind::Branch,
                               stats_.cycles, -1, taken ? 1 : 0, 0);
                const bool isWloopBack =
                    m->op == Opcode::BR_WLOOP && !loopStack.empty() &&
                    !loopStack.back().counted &&
                    m->target == loopStack.back().head;
                if (taken) {
                    ++stats_.branchesTaken;
                    if (isWloopBack) {
                        LoopCtx &ctx = loopStack.back();
                        ++ctx.iterations;
                        if (ctx.fromBuffer) {
                            ++stats_.loops[ctx.loopId]
                                  .bufferIterations;
                        }
                        // Loop-backs of buffered loops are free (the
                        // buffer predicts them taken while looping).
                        takeRedirect(m->target, 0, ctx.buffered,
                                     obs::CycleClass::
                                         LoopControlOverhead,
                                     ctx.loopId);
                        if (ctx.buffered)
                            ctx.fromBuffer = true;
                    } else {
                        takeRedirect(m->target, 0, false);
                    }
                } else if (isWloopBack) {
                    // While-loop exit: retire the context. Exits are
                    // mispredicted when issuing from the buffer (the
                    // buffer keeps replaying); from memory the
                    // fall-through is the natural fetch path.
                    LoopCtx ctx = loopStack.back();
                    loopStack.pop_back();
                    ++ctx.iterations;
                    if (ctx.fromBuffer) {
                        ++stats_.loops[ctx.loopId].bufferIterations;
                        chargeRedirect(
                            obs::CycleClass::WhileExitPenalty,
                            ctx.loopId);
                        DECODED_TRACE_EMIT(ts, obs::TraceKind::Penalty,
                                       stats_.cycles, ctx.loopId,
                                       cfg_.branchPenalty,
                                       obs::kPenaltyWloopExit);
                    }
                    retireLoop(ctx);
                    if (ctx.isExec) {
                        takeRedirect(ctx.resumeBlock,
                                     ctx.resumeBundle, true);
                    }
                }
                LBP_NEXT_OP;
              }

              LBP_HANDLER(JUMP) {
                ++stats_.branches;
                ++stats_.branchesTaken;
                DECODED_TRACE_EMIT(ts, obs::TraceKind::Branch,
                               stats_.cycles, -1, 1, 0);
                takeRedirect(m->target, 0, false);
                LBP_NEXT_OP;
              }

              LBP_HANDLER(BR_CLOOP) {
                ++stats_.branches;
                LBP_ASSERT(!loopStack.empty() &&
                               loopStack.back().counted,
                           "br.cloop without context in ",
                           df.fn->name);
                LoopCtx &ctx = loopStack.back();
                ++ctx.iterations;
                if (ctx.fromBuffer)
                    ++stats_.loops[ctx.loopId].bufferIterations;
                --ctx.remaining;
                DECODED_TRACE_EMIT(ts, obs::TraceKind::Branch,
                               stats_.cycles, ctx.loopId,
                               ctx.remaining > 0 ? 1 : 0, 0);
                if (ctx.remaining > 0) {
                    ++stats_.branchesTaken;
                    // Counted loop-backs of buffered loops are free;
                    // unbuffered ones redirect fetch like any taken
                    // branch.
                    takeRedirect(m->target, 0, ctx.buffered,
                                 obs::CycleClass::LoopControlOverhead,
                                 ctx.loopId);
                    // After the first (recording) iteration, fetch
                    // shifts to the buffer.
                    if (ctx.buffered)
                        ctx.fromBuffer = true;
                } else {
                    // Counted exit: fall-through, predicted by the
                    // count — never a redirect.
                    LoopCtx done = ctx;
                    loopStack.pop_back();
                    retireLoop(done);
                    if (done.isExec) {
                        takeRedirect(done.resumeBlock,
                                     done.resumeBundle, true);
                    }
                }
                LBP_NEXT_OP;
              }

              LBP_HANDLER(LOOP) {
                LoopCtx ctx;
                ctx.key = loopTable_->keys[m->loopId];
                ctx.loopId = m->loopId;
                ctx.counted = m->counted;
                if (ctx.counted) {
                    ctx.remaining = readSrc(m->src[0]);
                    LBP_ASSERT(ctx.remaining >= 1,
                               "cloop with count ", ctx.remaining);
                }
                ctx.head = m->target;
                ctx.pipelined = m->pipelined;
                ctx.bodyLen = m->bodyLen;
                ctx.ii = m->ii;
                ctx.minII = m->minII;
                ctx.buffered = m->bufAddr >= 0;
                LoopStats &ls = stats_.loops[m->loopId];
                ++ls.activations;
                bool recorded = false;
                if (ctx.buffered) {
                    if (buffer_.isResident(ctx.key)) {
                        buffer_.countTableHit();
                        ctx.fromBuffer = true;
                    } else {
                        buffer_.record(ctx.key, m->bufAddr,
                                       m->imageOps, &evictedKeys);
                        for (const LoopKey &ek : evictedKeys) {
                            const int eid = loopTable_->idOf(ek);
                            ++stats_.loops[eid].evictions;
                            // A replay trace cannot outlive the
                            // buffer image it models.
                            if (traceCache_)
                                traceCache_->invalidate(eid);
                        }
                        ++ls.recordings;
                        ctx.fromBuffer = false;
                        recorded = true;
                    }
                }
                DECODED_TRACE_EMIT(ts, obs::TraceKind::LoopEnter,
                               stats_.cycles, ctx.loopId,
                               ctx.counted ? 1 : 0,
                               ctx.fromBuffer ? 1 : 0);
                if (recorded) {
                    DECODED_TRACE_EMIT(ts, obs::TraceKind::LoopRecord,
                                   stats_.cycles, ctx.loopId,
                                   m->bufAddr, m->imageOps);
                }
                if (m->op == Opcode::EXEC_CLOOP ||
                    m->op == Opcode::EXEC_WLOOP) {
                    ctx.isExec = true;
                    ctx.resumeBlock = curBlk;
                    ctx.resumeBundle = curBu + 1;
                    // Executing an already-buffered loop: no fetch
                    // redirect cost.
                    takeRedirect(m->target, 0, ctx.fromBuffer,
                                 obs::CycleClass::LoopControlOverhead,
                                 ctx.loopId);
                }
                loopStack.push_back(ctx);
                LBP_NEXT_OP;
              }

              LBP_HANDLER(CALL) {
                LBP_ASSERT(!callOp, "two calls in one bundle");
                callOp = m;
                LBP_NEXT_OP;
              }

              LBP_HANDLER(RET) {
                retOp = m;
                LBP_NEXT_OP;
              }

              LBP_HANDLER(ALU) {
                // Binary ALU family.
                const std::int64_t a = readSrc(m->src[0]);
                const std::int64_t b = readSrc(m->src[1]);
                std::int64_t v = 0;
                switch (m->op) {
                  case Opcode::ADD: v = a + b; break;
                  case Opcode::SUB: v = a - b; break;
                  case Opcode::MUL: v = a * b; break;
                  case Opcode::DIV:
                    LBP_ASSERT(b != 0, "div by zero");
                    v = a / b;
                    break;
                  case Opcode::REM:
                    LBP_ASSERT(b != 0, "rem by zero");
                    v = a % b;
                    break;
                  case Opcode::AND: v = a & b; break;
                  case Opcode::OR: v = a | b; break;
                  case Opcode::XOR: v = a ^ b; break;
                  case Opcode::SHL: v = a << (b & 63); break;
                  case Opcode::SHR:
                    v = static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a) >> (b & 63));
                    break;
                  case Opcode::SHRA: v = a >> (b & 63); break;
                  case Opcode::MIN: v = std::min(a, b); break;
                  case Opcode::MAX: v = std::max(a, b); break;
                  case Opcode::SATADD: v = sat16(a + b); break;
                  case Opcode::SATSUB: v = sat16(a - b); break;
                  case Opcode::CMP:
                    v = evalCond(m->cond, a, b) ? 1 : 0;
                    break;
                  case Opcode::FADD:
                    v = asBits(asDouble(a) + asDouble(b));
                    break;
                  case Opcode::FSUB:
                    v = asBits(asDouble(a) - asDouble(b));
                    break;
                  case Opcode::FMUL:
                    v = asBits(asDouble(a) * asDouble(b));
                    break;
                  case Opcode::FDIV:
                    v = asBits(asDouble(a) / asDouble(b));
                    break;
                  default:
                    LBP_PANIC("unhandled opcode in decoded sim: ",
                              opcodeName(m->op));
                }
                regW[nRegW++] = {m->dstReg, v};
                LBP_NEXT_OP;
              }
              LBP_BAD_HANDLER();
            }
            LBP_DISPATCH_END;
        }
        if constexpr (Traced) {
#if LBP_PROF
            if (opProf && opHandler >= 0) {
                opProfCycles_[opHandler] += obs::prof::tsc() - opTsc;
                opHandler = -1;
            }
#endif
        }

        // ---- Phase 2: commit ----
        for (int i = 0; i < nRegW; ++i)
            regs[regW[i].r] = regW[i].v;
        for (int i = 0; i < nPredW; ++i)
            preds[predW[i].p] = predW[i].v;
        for (int i = 0; i < nSlotW; ++i) {
            for (int j = i + 1; j < nSlotW; ++j) {
                LBP_ASSERT(slotW[i].s != slotW[j].s ||
                               slotW[i].v == slotW[j].v,
                           "conflicting same-cycle slot-predicate "
                           "writes");
            }
            slotPred_[slotW[i].s] = slotW[i].v;
        }
        for (int i = 0; i < nMemW; ++i) {
            const MemWrite &w = memW[i];
            const size_t need = w.op == Opcode::ST_B ? 1
                                : w.op == Opcode::ST_H ? 2 : 4;
            LBP_ASSERT(w.addr >= 0 &&
                           static_cast<size_t>(w.addr) + need <=
                               mem_.size(),
                       "store fault @", w.addr);
            for (size_t k = 0; k < need; ++k) {
                mem_[w.addr + k] = static_cast<std::uint8_t>(
                    (w.v >> (8 * k)) & 0xff);
            }
        }

        // Call/return (serialize: the call is the bundle's transfer).
        if (retOp) {
            std::vector<std::int64_t> rets;
            rets.reserve(retOp->xsrcCount);
            for (std::uint32_t i = 0; i < retOp->xsrcCount; ++i)
                rets.push_back(
                    readSrc(dp.extraSrcs[retOp->xsrcBegin + i]));
            // Returning with live loop contexts would corrupt the
            // caller's hardware loop stack.
            LBP_ASSERT(loopStack.empty(),
                       "RET with live hardware-loop context in ",
                       df.fn->name);
            chargeRedirect(obs::CycleClass::CallReturnPenalty, -1);
            DECODED_TRACE_EMIT(ts, obs::TraceKind::Penalty, stats_.cycles,
                           -1, cfg_.branchPenalty, obs::kPenaltyReturn);
            --callDepth_;
            return rets;
        }
        if (callOp) {
            std::vector<std::int64_t> cargs;
            cargs.reserve(callOp->xsrcCount);
            for (std::uint32_t i = 0; i < callOp->xsrcCount; ++i)
                cargs.push_back(
                    readSrc(dp.extraSrcs[callOp->xsrcBegin + i]));
            chargeRedirect(obs::CycleClass::CallReturnPenalty, -1);
            DECODED_TRACE_EMIT(ts, obs::TraceKind::Penalty, stats_.cycles,
                           -1, cfg_.branchPenalty, obs::kPenaltyCall);
            auto rets =
                callFunctionDecodedImpl<Traced>(callOp->callee, cargs);
            for (std::uint32_t i = 0; i < callOp->xdstCount; ++i)
                regs[dp.extraDsts[callOp->xdstBegin + i]] = rets[i];
        }

        // Control transfer. A taken transfer that leaves the active
        // hardware loop's body cancels its context (zero-overhead-
        // loop hardware cancels on branches out of the loop).
        if (redirect) {
            while (!loopStack.empty() &&
                   loopStack.back().head == curBlk &&
                   nextBlk != loopStack.back().head) {
                LoopCtx done = loopStack.back();
                loopStack.pop_back();
                retireLoop(done);
            }
            if (!freeXfer) {
                chargeRedirect(redirCls, redirRow);
                DECODED_TRACE_EMIT(ts, obs::TraceKind::Penalty,
                               stats_.cycles, -1, cfg_.branchPenalty,
                               obs::kPenaltyBranch);
            }
            curBlk = nextBlk;
            curBu = nextBu;
        } else {
            ++curBu;
        }
    }
}

} // namespace lbp

#undef DECODED_TRACE_EMIT

#endif // LBP_SIM_VLIW_SIM_DECODED_BODY_HH
