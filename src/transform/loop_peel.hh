/**
 * @file
 * Complete loop peeling (paper Figure 1a): an inner counted loop with
 * a small, statically-known trip count is replaced by that many copies
 * of its body, eliminating the inner backedge so the enclosing loop
 * can be if-converted and buffered.
 *
 * Heuristic from the paper: peel any counted loop of fewer than six
 * iterations, so long as peeling creates fewer than 36 instructions.
 */

#ifndef LBP_TRANSFORM_LOOP_PEEL_HH
#define LBP_TRANSFORM_LOOP_PEEL_HH

#include "ir/program.hh"

namespace lbp
{

namespace obs
{
class LoopDecisionLog;
}

struct PeelOptions
{
    /** Peel loops with constTrip <= maxTrip. */
    std::int64_t maxTrip = 5;

    /** Peel only if trip * bodyOps < maxExpansionOps. */
    int maxExpansionOps = 36;

    /** Only peel loops nested inside another loop. */
    bool requireParentLoop = true;
};

struct PeelStats
{
    int loopsPeeled = 0;
    int opsAdded = 0;
};

/**
 * Peel all eligible loops of @p fn. When @p log is given, every loop
 * considered gets a "peel" LoopAttempt; a peeled loop's decision is
 * marked Eliminated (its body now lives in the enclosing loop).
 */
PeelStats peelLoops(Function &fn, const PeelOptions &opts = {},
                    obs::LoopDecisionLog *log = nullptr);

/** Program-wide driver. */
PeelStats peelLoops(Program &prog, const PeelOptions &opts = {},
                    obs::LoopDecisionLog *log = nullptr);

} // namespace lbp

#endif // LBP_TRANSFORM_LOOP_PEEL_HH
