#include "transform/inliner.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace lbp
{

namespace
{

/** Remap a register operand by the renaming offset tables. */
Operand
remapOperand(const Operand &o, RegId regBase, PredId predBase)
{
    if (o.isReg())
        return Operand::reg(o.asReg() + regBase);
    if (o.isPred() && o.asPred() != kNoPred)
        return Operand::pred(o.asPred() + predBase);
    return o;
}

} // namespace

bool
inlineCallSite(Program &prog, FuncId callerId, BlockId bbId,
               size_t opIdx)
{
    Function &caller = prog.functions[callerId];
    LBP_ASSERT(bbId < caller.blocks.size(), "bad block");
    LBP_ASSERT(opIdx < caller.blocks[bbId].ops.size(), "bad op index");
    const Operation callOp = caller.blocks[bbId].ops[opIdx];
    LBP_ASSERT(callOp.op == Opcode::CALL, "not a call site");

    const FuncId calleeId = callOp.callee;
    if (calleeId == callerId)
        return false; // direct recursion
    const Function &callee = prog.functions[calleeId];
    if (callee.noInline)
        return false;
    // Reject indirect recursion into the caller.
    for (const auto &cb : callee.blocks) {
        if (cb.dead)
            continue;
        for (const auto &co : cb.ops) {
            if (co.op == Opcode::CALL && co.callee == callerId)
                return false;
        }
    }
    LBP_ASSERT(callOp.srcs.size() == callee.params.size(),
               "call arity mismatch inlining ", callee.name);

    // Renaming bases: callee register r becomes r + regBase.
    const RegId regBase = caller.nextReg;
    const PredId predBase = caller.nextPred;
    caller.nextReg += callee.nextReg;
    caller.nextPred += callee.nextPred;

    // Split the caller block at the call: [0, opIdx) stays, the call
    // is replaced by parameter moves + fallthrough into the inlined
    // entry; ops after the call move into a continuation block.
    BasicBlock &site = caller.blocks[bbId];
    std::vector<Operation> before(site.ops.begin(),
                                  site.ops.begin() + opIdx);
    std::vector<Operation> after(site.ops.begin() + opIdx + 1,
                                 site.ops.end());

    const BlockId contId =
        caller.newBlock(site.name + ".cont");
    // NOTE: newBlock may reallocate; re-take references afterwards.
    BasicBlock &cont = caller.blocks[contId];
    cont.ops = std::move(after);
    cont.fallthrough = caller.blocks[bbId].fallthrough;
    cont.weight = caller.blocks[bbId].weight;

    // Map callee block ids to fresh caller block ids.
    std::map<BlockId, BlockId> bmap;
    for (const auto &cb : callee.blocks) {
        if (cb.dead)
            continue;
        bmap[cb.id] =
            caller.newBlock(callee.name + "." + cb.name);
    }

    {
        BasicBlock &siteRef = caller.blocks[bbId];
        siteRef.ops = std::move(before);
        // Parameter moves.
        for (size_t i = 0; i < callee.params.size(); ++i) {
            Operation mv = makeUnary(
                Opcode::MOV, callee.params[i] + regBase,
                remapOperand(callOp.srcs[i], 0, 0));
            mv.id = caller.newOpId();
            siteRef.ops.push_back(std::move(mv));
        }
        siteRef.fallthrough = bmap.at(callee.entry);
    }

    // Copy callee bodies with renaming.
    for (const auto &cb : callee.blocks) {
        if (cb.dead)
            continue;
        BasicBlock &nb = caller.blocks[bmap.at(cb.id)];
        nb.weight = cb.weight;
        nb.isHyperblock = cb.isHyperblock;
        nb.fallthrough =
            cb.fallthrough == kNoBlock ? kNoBlock
                                       : bmap.at(cb.fallthrough);
        for (const auto &co : cb.ops) {
            if (co.op == Opcode::RET) {
                // Return-value moves + jump to continuation.
                LBP_ASSERT(co.srcs.size() >= callOp.dsts.size(),
                           "missing return values inlining ",
                           callee.name);
                for (size_t i = 0; i < callOp.dsts.size(); ++i) {
                    Operation mv = makeUnary(
                        Opcode::MOV, callOp.dsts[i].asReg(),
                        remapOperand(co.srcs[i], regBase, predBase));
                    mv.id = caller.newOpId();
                    mv.guard = co.guard == kNoPred
                                   ? kNoPred
                                   : co.guard + predBase;
                    nb.ops.push_back(std::move(mv));
                }
                Operation jmp = makeJump(contId);
                jmp.id = caller.newOpId();
                jmp.guard = co.guard == kNoPred ? kNoPred
                                                : co.guard + predBase;
                nb.ops.push_back(std::move(jmp));
                continue;
            }
            Operation no = co;
            no.id = caller.newOpId();
            if (no.guard != kNoPred)
                no.guard += predBase;
            for (auto &d : no.dsts)
                d = remapOperand(d, regBase, predBase);
            for (auto &s : no.srcs)
                s = remapOperand(s, regBase, predBase);
            if (no.target != kNoBlock)
                no.target = bmap.at(no.target);
            nb.ops.push_back(std::move(no));
        }
    }

    // Retarget branches that pointed at the split block's *interior*?
    // None exist: branches target block heads, and the head of bbId
    // still holds the pre-call ops. Branches into bbId still execute
    // the pre-call code and then flow into the inlined body, which
    // preserves semantics.
    return true;
}

InlineStats
inlineHotCalls(Program &prog, const Profile &profile,
               const InlineOptions &opts)
{
    // Block weights were annotated onto the IR by the profiler and
    // are copied to blocks created by earlier inlining steps, so the
    // IR annotations are the authoritative weight source here.
    (void)profile;
    InlineStats st;
    const int original = prog.sizeOps();
    const int budget =
        static_cast<int>(original * opts.maxExpansion);

    struct Site
    {
        FuncId caller;
        BlockId bb;
        OpId opId;
        FuncId callee;
        double weight;
        int calleeSize;
    };

    // Iterate: after each inlining, call sites shift; rescan.
    int guard = 0;
    while (st.opsAdded < budget && guard++ < 1000) {
        std::vector<Site> sites;
        for (const auto &fn : prog.functions) {
            for (const auto &bb : fn.blocks) {
                if (bb.dead)
                    continue;
                for (const auto &op : bb.ops) {
                    if (op.op != Opcode::CALL)
                        continue;
                    const double w = std::max(bb.weight, 0.0);
                    if (w < opts.minCallWeight)
                        continue;
                    const Function &callee =
                        prog.functions[op.callee];
                    const int sz = callee.sizeOps();
                    if (callee.noInline || sz > opts.maxCalleeOps)
                        continue;
                    if (sz + st.opsAdded > budget)
                        continue;
                    sites.push_back({fn.id, bb.id, op.id, op.callee,
                                     w, sz});
                }
            }
        }
        if (sites.empty())
            break;
        std::sort(sites.begin(), sites.end(),
                  [](const Site &a, const Site &b) {
                      if (a.weight != b.weight)
                          return a.weight > b.weight;
                      return a.calleeSize < b.calleeSize;
                  });

        // Inline the hottest eligible site this round.
        bool did = false;
        for (const auto &s : sites) {
            // Re-locate the op by id (indices may be stale).
            Function &fn = prog.functions[s.caller];
            BasicBlock &bb = fn.blocks[s.bb];
            size_t idx = SIZE_MAX;
            for (size_t i = 0; i < bb.ops.size(); ++i) {
                if (bb.ops[i].id == s.opId &&
                    bb.ops[i].op == Opcode::CALL) {
                    idx = i;
                    break;
                }
            }
            if (idx == SIZE_MAX)
                continue;
            if (inlineCallSite(prog, s.caller, s.bb, idx)) {
                ++st.sitesInlined;
                st.opsAdded += s.calleeSize;
                did = true;
                break;
            }
        }
        if (!did)
            break;
    }
    return st;
}

} // namespace lbp
