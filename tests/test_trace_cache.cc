/**
 * @file
 * Resident-loop trace cache tests: traces are built exactly once at
 * first replayed residency and persist across runs, untraceable
 * bodies bail out to the general path (once per activation), buffer
 * evictions invalidate without triggering rebuild storms, and —
 * the contract everything else rests on — SimStats is bit-identical
 * with the cache forced on, forced off, and against the reference
 * interpreter, down to the per-loop counter vectors.
 *
 * Workload anchors (deterministic): adpcm_enc is the clean case (one
 * hot traceable loop, no evictions); g724_dec is the adversarial one
 * (bailouts, evictions, and replays in the same run).
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "ir/builder.hh"
#include "obs/publish.hh"
#include "sim/trace_cache.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

/** Straight counted loop: traceable body, one hot activation. */
Program
countedLoopProgram(int trip)
{
    Program prog;
    const auto data = prog.allocData(64);
    prog.checksumBase = data;
    prog.checksumSize = 8;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    b.forLoop(0, trip, 1, [&](RegId i) {
        b.addTo(acc, R(acc), R(i));
        for (int p = 0; p < 4; ++p)
            b.binTo(Opcode::XOR, acc, R(acc), I(p * 3 + 1));
    });
    b.storeW(R(dp), I(0), R(acc));
    b.ret({R(acc)});
    return prog;
}

SimConfig
simConfig(int bufferOps, SimEngine engine, TraceCacheMode cacheMode)
{
    SimConfig sc;
    sc.bufferOps = bufferOps;
    sc.engine = engine;
    sc.traceCache = cacheMode;
    return sc;
}

const TraceCacheStats &
statsOf(const VliwSim &sim)
{
    const TraceCacheStats *tc = sim.traceCacheStats();
    EXPECT_NE(tc, nullptr);
    return *tc;
}

TEST(TraceCache, SyntheticLoopReplaysEveryBufferedIteration)
{
    Program prog = countedLoopProgram(100);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc;
    sc.bufferOps = 256;
    sc.traceCache = TraceCacheMode::On;
    VliwSim sim(cr.code, sc);
    const SimStats st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);

    // One recording iteration from memory; replay engages at the
    // first buffered iteration and carries the remaining 99.
    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_EQ(tc.builds, 1u);
    EXPECT_EQ(tc.replays, 1u);
    EXPECT_EQ(tc.bailouts, 0u);
    EXPECT_EQ(tc.replayedIterations, 99u);

    // Everything the loop issued from the buffer went through the
    // trace, and the per-loop split integrates back to the total.
    ASSERT_EQ(st.activeLoops().size(), 1u);
    const LoopStats &ls = *st.activeLoops().front();
    ASSERT_LT(static_cast<std::size_t>(0), tc.perLoop.size());
    EXPECT_EQ(tc.replayedOps, ls.opsFromBuffer);
    std::uint64_t perLoopOps = 0;
    for (const auto &pl : tc.perLoop)
        perLoopOps += pl.ops;
    EXPECT_EQ(perLoopOps, tc.replayedOps);
}

TEST(TraceCache, BuildsOnFirstResidencyAndPersistsAcrossRuns)
{
    Program prog = workloads::buildWorkload("adpcm_enc");
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc;
    sc.bufferOps = 256;
    sc.traceCache = TraceCacheMode::On;
    VliwSim sim(cr.code, sc);

    sim.run();
    const TraceCacheStats &first = statsOf(sim);
    EXPECT_GE(first.builds, 1u);
    EXPECT_GE(first.replays, 1u);
    EXPECT_GT(first.replayedOps, 0u);

    // Second run on the same instance: counters reset, but the built
    // traces survive — replay re-engages with zero rebuilds.
    sim.run();
    const TraceCacheStats &second = statsOf(sim);
    EXPECT_EQ(second.builds, 0u);
    EXPECT_GE(second.replays, first.replays);
    EXPECT_EQ(second.replayedOps, first.replayedOps);
}

TEST(TraceCache, UntraceableResidentBodyBailsOutPerActivation)
{
    Program prog = workloads::buildWorkload("g724_dec");
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::On));
    const SimStats st = sim.run();
    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_GT(tc.bailouts, 0u);

    // A bailout is counted at most once per activation (the declined
    // flag dedupes the per-iteration residency checks).
    std::uint64_t activations = 0;
    for (const auto &ls : st.loops)
        activations += ls.activations;
    EXPECT_LE(tc.bailouts, activations);

    // Every bailout names a concrete reason: the defensive Unknown
    // bucket stays empty, and the per-reason split integrates back
    // to the headline counter.
    EXPECT_EQ(tc.bailoutsBy[static_cast<std::size_t>(
                  TraceBailoutReason::Unknown)],
              0u);
    std::uint64_t byReason = 0;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TraceBailoutReason::Count);
         ++i)
        byReason += tc.bailoutsBy[i];
    EXPECT_EQ(byReason, tc.bailouts);
}

// ---- classifyTraceBody coverage ------------------------------------
//
// The compiler only produces a subset of untraceable shapes (e.g. it
// never emits a guarded backedge today), so the closed-enum coverage
// contract — every TraceBailoutReason reachable, Unknown never — is
// pinned on hand-assembled DecodedFunction images fed straight to the
// pure classifier.

MicroOp
microOp(Opcode op, ExecHandler h)
{
    MicroOp m;
    m.op = op;
    m.handler = h;
    return m;
}

MicroOp
aluOp()
{
    return microOp(Opcode::ADD, ExecHandler::ALU);
}

/**
 * One-block function: the given body ops, one per bundle, plus (by
 * default) a trailing unguarded BR_CLOOP backedge to the head.
 */
DecodedFunction
makeLoopBody(std::vector<MicroOp> body, bool withBackedge = true)
{
    DecodedFunction df;
    if (withBackedge) {
        MicroOp be = microOp(Opcode::BR_CLOOP,
                             ExecHandler::BR_CLOOP);
        be.target = 0;
        body.push_back(be);
    }
    for (std::size_t i = 0; i < body.size(); ++i) {
        DecodedBundle bu;
        bu.first = static_cast<std::uint32_t>(i);
        bu.count = 1;
        bu.sizeOps = 1;
        df.bundles.push_back(bu);
    }
    df.ops = std::move(body);
    DecodedBlock db;
    db.firstBundle = 0;
    db.bundleCount = static_cast<std::uint32_t>(df.bundles.size());
    db.valid = true;
    df.blocks.push_back(db);
    df.entry = 0;
    return df;
}

LoopCtx
headLoopCtx()
{
    LoopCtx ctx;
    ctx.head = 0;
    ctx.loopId = 0;
    ctx.counted = true;
    return ctx;
}

TEST(TraceCache, ClassifierCoversEveryBailoutReason)
{
    using R = TraceBailoutReason;
    const LoopCtx ctx = headLoopCtx();
    bool produced[static_cast<std::size_t>(R::Count)] = {};
    auto classify = [&](const DecodedFunction &df) {
        const R r = classifyTraceBody(ctx, df);
        produced[static_cast<std::size_t>(r)] = true;
        return r;
    };

    // The traceable shape first: straight ALU body, clean backedge.
    EXPECT_EQ(classify(makeLoopBody({aluOp()})), R::None);

    DecodedFunction invalid = makeLoopBody({aluOp()});
    invalid.blocks[0].valid = false;
    EXPECT_EQ(classify(invalid), R::EmptyBody);

    DecodedFunction hollow = makeLoopBody({aluOp()});
    hollow.blocks[0].bundleCount = 0;
    EXPECT_EQ(classify(hollow), R::EmptyBody);

    EXPECT_EQ(classify(makeLoopBody({aluOp()}, false)),
              R::NoHeadBackedge);

    // A wloop backedge does not satisfy a counted loop's search.
    DecodedFunction wrongKind = makeLoopBody({aluOp()}, false);
    MicroOp wloop = microOp(Opcode::BR_WLOOP, ExecHandler::BR);
    wloop.target = 0;
    wrongKind.ops.push_back(wloop);
    DecodedBundle bu;
    bu.first = 1;
    bu.count = 1;
    bu.sizeOps = 1;
    wrongKind.bundles.push_back(bu);
    wrongKind.blocks[0].bundleCount = 2;
    EXPECT_EQ(classify(wrongKind), R::NoHeadBackedge);

    DecodedFunction guarded = makeLoopBody({aluOp()});
    guarded.ops.back().guard = 1;  // any PredId != kNoPred (== 0)
    EXPECT_EQ(classify(guarded), R::GuardedBackedge);

    DecodedFunction sensitive = makeLoopBody({aluOp()});
    sensitive.ops.back().sensitive = true;
    EXPECT_EQ(classify(sensitive), R::SlotSensitiveBackedge);

    EXPECT_EQ(classify(makeLoopBody(
                  {aluOp(),
                   microOp(Opcode::CALL, ExecHandler::CALL)})),
              R::CallInBody);
    EXPECT_EQ(classify(makeLoopBody(
                  {aluOp(), microOp(Opcode::RET, ExecHandler::RET)})),
              R::CallInBody);

    EXPECT_EQ(classify(makeLoopBody(
                  {aluOp(),
                   microOp(Opcode::JUMP, ExecHandler::JUMP)})),
              R::MultiControlOp);

    // BelowEngageThreshold is not a build verdict — the engagement
    // site counts it (covered end-to-end below); mark it so the
    // coverage sweep can require everything else from the classifier.
    produced[static_cast<std::size_t>(R::BelowEngageThreshold)] =
        true;

    EXPECT_FALSE(produced[static_cast<std::size_t>(R::Unknown)])
        << "nothing in the tree may classify as Unknown";
    for (std::size_t i = static_cast<std::size_t>(R::EmptyBody);
         i < static_cast<std::size_t>(R::Count); ++i)
        EXPECT_TRUE(produced[i])
            << "reason never produced: "
            << traceBailoutReasonName(static_cast<R>(i));
}

TEST(TraceCache, ShortCountedTripBailsOutBelowEngageThreshold)
{
    // Trip count below kMinCountedReplayIters: the loop is buffered
    // and traceable, but the engagement site declines every
    // activation as not worth a replay setup.
    Program prog = countedLoopProgram(
        static_cast<int>(kMinCountedReplayIters) - 1);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::On));
    const SimStats st = sim.run();
    EXPECT_EQ(st.checksum, cr.goldenChecksum);

    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_EQ(tc.replays, 0u);
    EXPECT_GT(tc.bailouts, 0u);
    EXPECT_EQ(tc.bailoutsBy[static_cast<std::size_t>(
                  TraceBailoutReason::BelowEngageThreshold)],
              tc.bailouts);
}

TEST(TraceCache, EvictionInvalidatesWithoutRebuildStorm)
{
    Program prog = workloads::buildWorkload("g724_dec");
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                   TraceCacheMode::On));
    sim.run();
    const TraceCacheStats &tc = statsOf(sim);
    EXPECT_GT(tc.invalidations, 0u);
    EXPECT_GT(tc.replays, 0u);

    // Invalidation marks a trace Stale; revalidation at the next
    // residency is O(1) because trace content is allocation-invariant.
    // A full rebuild per eviction would show builds on the order of
    // invalidations + replays; distinct traceable loops only is the
    // correct order of magnitude.
    EXPECT_LT(tc.builds, tc.invalidations);
}

TEST(TraceCache, StatsBitIdenticalOnOffAndReference)
{
    for (const char *name : {"adpcm_enc", "g724_dec", "mpg123"}) {
        Program prog = workloads::buildWorkload(name);
        CompileOptions opts;
        opts.level = OptLevel::Aggressive;
        opts.bufferOps = 256;
        CompileResult cr;
        compileProgram(prog, opts, cr);

        const SimStats ref =
            VliwSim(cr.code, simConfig(256, SimEngine::REFERENCE,
                                       TraceCacheMode::Auto))
                .run();
        const SimStats on =
            VliwSim(cr.code, simConfig(256, SimEngine::DECODED,
                                       TraceCacheMode::On))
                .run();
        const SimStats off =
            VliwSim(cr.code, simConfig(256, SimEngine::DECODED,
                                       TraceCacheMode::Off))
                .run();

        const std::string dOn =
            obs::diffSimStats(ref, on, "reference", "cache-on");
        EXPECT_TRUE(dOn.empty()) << name << "\n" << dOn;
        const std::string dOff =
            obs::diffSimStats(ref, off, "reference", "cache-off");
        EXPECT_TRUE(dOff.empty()) << name << "\n" << dOff;

        // Per-loop counter vectors, element-wise through the
        // full-field operator==.
        ASSERT_EQ(ref.loops.size(), on.loops.size()) << name;
        for (std::size_t i = 0; i < ref.loops.size(); ++i)
            EXPECT_TRUE(ref.loops[i] == on.loops[i])
                << name << " loop[" << i << "] ("
                << ref.loops[i].name << ")";
    }
}

TEST(TraceCache, PerLoopReplayNeverExceedsBufferedOps)
{
    for (const auto &w : workloads::allWorkloads()) {
        Program prog = workloads::buildWorkload(w.name);
        CompileOptions opts;
        opts.level = OptLevel::Aggressive;
        opts.bufferOps = 256;
        CompileResult cr;
        compileProgram(prog, opts, cr);

        VliwSim sim(cr.code, simConfig(256, SimEngine::DECODED,
                                       TraceCacheMode::On));
        const SimStats st = sim.run();
        const TraceCacheStats &tc = statsOf(sim);
        ASSERT_EQ(tc.perLoop.size(), st.loops.size()) << w.name;
        std::uint64_t perLoopOps = 0;
        std::uint64_t perLoopBailouts = 0;
        for (std::size_t i = 0; i < st.loops.size(); ++i) {
            EXPECT_LE(tc.perLoop[i].ops, st.loops[i].opsFromBuffer)
                << w.name << " loop " << st.loops[i].name;
            perLoopOps += tc.perLoop[i].ops;
            perLoopBailouts += tc.perLoop[i].bailouts;
        }
        EXPECT_EQ(perLoopOps, tc.replayedOps) << w.name;
        EXPECT_LE(tc.replayedOps, st.opsFromBuffer) << w.name;

        // The bailout attributions integrate back to the headline
        // counter on both axes — per reason and per loop — and the
        // defensive Unknown bucket stays empty on every workload.
        std::uint64_t byReason = 0;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(TraceBailoutReason::Count);
             ++i)
            byReason += tc.bailoutsBy[i];
        EXPECT_EQ(byReason, tc.bailouts) << w.name;
        EXPECT_EQ(perLoopBailouts, tc.bailouts) << w.name;
        EXPECT_EQ(tc.bailoutsBy[static_cast<std::size_t>(
                      TraceBailoutReason::Unknown)],
                  0u)
            << w.name;
    }
}

TEST(TraceCache, DisabledModesPublishNoStats)
{
    Program prog = countedLoopProgram(50);
    CompileOptions opts;
    opts.level = OptLevel::Traditional;
    opts.bufferOps = 256;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    SimConfig sc;
    sc.bufferOps = 256;
    sc.traceCache = TraceCacheMode::Off;
    VliwSim off(cr.code, sc);
    off.run();
    EXPECT_EQ(off.traceCacheStats(), nullptr);

    sc.traceCache = TraceCacheMode::Auto;
    sc.engine = SimEngine::REFERENCE;
    VliwSim refSim(cr.code, sc);
    refSim.run();
    EXPECT_EQ(refSim.traceCacheStats(), nullptr);
}

} // namespace
} // namespace lbp
