/**
 * @file
 * Figure 8a: hyperblock/loop-transformed code vs traditional
 * optimization — speedup in cycles, static code size ratio, bundles
 * issued ratio, and total operations fetched ratio, per benchmark at
 * a 256-operation buffer. The paper reports an average speedup of
 * 1.81 and a 37.6% cycle reduction (excluding jpeg_enc/mpeg2_enc),
 * with code size and total fetch increasing, and mpeg2_enc the only
 * benchmark whose fetch count rises noticeably without a matching
 * win.
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    std::printf("=== Figure 8a: performance, code size, and fetch "
                "count ===\n\n");
    std::printf("%-12s %8s %10s %10s %10s\n", "benchmark", "speedup",
                "code-size", "bundles", "fetch");
    rule();

    std::vector<double> speedups, speedupsHeadline;
    for (const auto &name : benchNames()) {
        auto &trad = compileBench(name, OptLevel::Traditional);
        auto &aggr = compileBench(name, OptLevel::Aggressive);
        const SimStats st = simulate(trad, 256);
        const SimStats sa = simulate(aggr, 256);

        const double speedup = static_cast<double>(st.cycles) /
                               static_cast<double>(sa.cycles);
        const double codeRatio =
            static_cast<double>(aggr.scheduledOps) /
            static_cast<double>(trad.scheduledOps);
        const double bundleRatio =
            static_cast<double>(sa.bundles) /
            static_cast<double>(st.bundles);
        const double fetchRatio =
            static_cast<double>(sa.opsFetched) /
            static_cast<double>(st.opsFetched);
        std::printf("%-12s %8.2f %10.2f %10.2f %10.2f\n",
                    name.c_str(), speedup, codeRatio, bundleRatio,
                    fetchRatio);
        speedups.push_back(speedup);
        if (name != "jpeg_enc" && name != "mpeg2_enc")
            speedupsHeadline.push_back(speedup);
    }
    rule();
    const double g = geomean(speedupsHeadline);
    std::printf("\naverage speedup (excl. jpeg_enc/mpeg2_enc): %.2f "
                "(paper: 1.81)\n", g);
    std::printf("cycle reduction: %s (paper: 37.6%%)\n",
                pct(1.0 - 1.0 / g).c_str());
    std::printf("all-benchmark geomean speedup: %.2f\n",
                geomean(speedups));
    return 0;
}
