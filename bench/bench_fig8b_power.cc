/**
 * @file
 * Figure 8b: estimated instruction fetch power, normalized to
 * buffer-less issue of traditionally-optimized code. Three bars per
 * benchmark: unbuffered baseline (1.0), "baseline buffered"
 * (traditional code + 256-op buffer; paper average -34.6%), and
 * "transformed buffered" (aggressive code + 256-op buffer; paper
 * average -72.3%). Per-access energies come from the CACTI-calibrated
 * model (41.8x memory/buffer ratio at 256 ops / 512 KB, §7.2).
 */

#include <cstdio>

#include "bench_common.hh"
#include "support/stats.hh"

using namespace lbp;
using namespace lbp::bench;

int
main()
{
    std::printf("=== Figure 8b: normalized instruction fetch power "
                "===\n\n");
    const CactiLite model;
    std::printf("CACTI-lite calibration: memory/buffer per-access "
                "ratio = %.1fx (paper: 41.8x)\n\n",
                model.calibratedRatio());

    std::printf("%-12s %12s %14s %16s\n", "benchmark", "unbuffered",
                "base-buffered", "transformed");
    rule();

    double sumBase = 0, sumTrans = 0;
    int n = 0;
    for (const auto &name : benchNames()) {
        auto &trad = compileBench(name, OptLevel::Traditional);
        auto &aggr = compileBench(name, OptLevel::Aggressive);
        const SimStats st = simulate(trad, 256);
        const SimStats sa = simulate(aggr, 256);

        const double unbuffered =
            unbufferedEnergyNj(st.opsFetched, model);
        const double baseBuffered =
            computeFetchEnergy(st, 256, model).totalNj;
        const double transformed =
            computeFetchEnergy(sa, 256, model).totalNj;

        const double b = baseBuffered / unbuffered;
        const double t = transformed / unbuffered;
        std::printf("%-12s %12.3f %14.3f %16.3f\n", name.c_str(), 1.0,
                    b, t);
        sumBase += b;
        sumTrans += t;
        ++n;
    }
    rule();
    const double avgBase = sumBase / n;
    const double avgTrans = sumTrans / n;
    std::printf("\naverage baseline-buffered reduction:    %s "
                "(paper: 34.6%%)\n", pct(1.0 - avgBase).c_str());
    std::printf("average transformed-buffered reduction: %s "
                "(paper: 72.3%%)\n", pct(1.0 - avgTrans).c_str());
    return 0;
}
