file(REMOVE_RECURSE
  "CMakeFiles/example_lbpc.dir/lbpc.cpp.o"
  "CMakeFiles/example_lbpc.dir/lbpc.cpp.o.d"
  "example_lbpc"
  "example_lbpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lbpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
