/**
 * @file
 * Figure-5 style exploration: runs the Post_Filter() replica across
 * user-selected buffer sizes and prints the per-loop residency
 * behaviour, i.e. the data behind the paper's buffer-content traces.
 *
 * Usage: example_postfilter_trace [bufferOps ...]
 * Default sizes: 16 32 64 256.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/compiler.hh"
#include "sim/vliw_sim.hh"
#include "workloads/workloads.hh"

using namespace lbp;

int
main(int argc, char **argv)
{
    std::vector<int> sizes;
    for (int i = 1; i < argc; ++i)
        sizes.push_back(std::atoi(argv[i]));
    if (sizes.empty())
        sizes = {16, 32, 64, 256};

    Program prog = workloads::buildPostFilterOnly();
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    CompileResult cr;
    compileProgram(prog, opts, cr);

    std::printf("Post_Filter(): %d loops modulo-scheduled, %d static "
                "ops after transformation\n\n",
                cr.moduloLoops, cr.finalOps);

    for (int size : sizes) {
        if (size <= 0)
            continue;
        reallocateBuffers(cr, size);
        SimConfig sc;
        sc.bufferOps = size;
        VliwSim sim(cr.code, sc);
        const SimStats st = sim.run();
        if (st.checksum != cr.goldenChecksum) {
            std::printf("checksum mismatch!\n");
            return 1;
        }
        std::printf("--- %d-operation buffer: %.2f%% buffer issue ---\n",
                    size, 100.0 * st.bufferFraction());
        std::printf("%-30s %5s %5s %6s %9s/%s\n", "loop", "ops",
                    "addr", "recs", "buffered", "total");
        for (const LoopStats *ls : st.activeLoops()) {
            std::printf("%-30s %5d %5d %6llu %9llu/%llu\n",
                        ls->name.c_str(), ls->imageOps, ls->bufAddr,
                        (unsigned long long)ls->recordings,
                        (unsigned long long)ls->bufferIterations,
                        (unsigned long long)ls->iterations);
        }
        std::printf("\n");
    }
    return 0;
}
