#include "analysis/loop_info.hh"

#include <algorithm>

#include "support/logging.hh"

namespace lbp
{

bool
Loop::contains(BlockId b) const
{
    return std::find(blocks.begin(), blocks.end(), b) != blocks.end();
}

LoopInfo::LoopInfo(const Function &fn)
{
    Dominators dom(fn);
    auto preds = fn.predecessors();
    loopOf_.assign(fn.blocks.size(), -1);

    // Find backedges: edge (latch -> header) where header dominates
    // latch. Group by header.
    std::vector<std::pair<BlockId, BlockId>> backedges;
    for (const auto &bb : fn.blocks) {
        if (bb.dead || !dom.reachable(bb.id))
            continue;
        for (BlockId s : bb.successors()) {
            if (dom.dominates(s, bb.id))
                backedges.emplace_back(bb.id, s);
        }
    }

    // Build a loop per header via backward reachability from latches.
    std::vector<BlockId> headers;
    for (auto &[latch, header] : backedges) {
        if (std::find(headers.begin(), headers.end(), header) ==
            headers.end()) {
            headers.push_back(header);
        }
    }

    for (BlockId header : headers) {
        Loop loop;
        loop.header = header;
        std::vector<char> in(fn.blocks.size(), 0);
        in[header] = 1;
        std::vector<BlockId> work;
        for (auto &[latch, h] : backedges) {
            if (h != header)
                continue;
            loop.latches.push_back(latch);
            if (!in[latch]) {
                in[latch] = 1;
                work.push_back(latch);
            }
        }
        while (!work.empty()) {
            BlockId b = work.back();
            work.pop_back();
            for (BlockId p : preds[b]) {
                if (!in[p] && dom.reachable(p)) {
                    in[p] = 1;
                    work.push_back(p);
                }
            }
        }
        loop.blocks.push_back(header);
        for (BlockId b : fn.reversePostorder()) {
            if (b != header && in[b])
                loop.blocks.push_back(b);
        }

        // Preheader: the unique out-of-loop predecessor of the header.
        BlockId pre = kNoBlock;
        bool unique = true;
        for (BlockId p : preds[header]) {
            if (in[p])
                continue;
            if (pre == kNoBlock) {
                pre = p;
            } else {
                unique = false;
            }
        }
        loop.preheader = unique ? pre : kNoBlock;

        loop.index = static_cast<int>(loops_.size());
        loops_.push_back(std::move(loop));
    }

    // Nesting: loop A is parent of B if A contains B's header and
    // A != B; pick the smallest such container.
    for (auto &l : loops_) {
        int best = -1;
        size_t best_size = SIZE_MAX;
        for (const auto &o : loops_) {
            if (o.index == l.index)
                continue;
            if (o.contains(l.header) && o.blocks.size() < best_size) {
                best = o.index;
                best_size = o.blocks.size();
            }
        }
        l.parent = best;
    }
    for (auto &l : loops_) {
        if (l.parent >= 0)
            loops_[l.parent].children.push_back(l.index);
        int d = 1;
        int p = l.parent;
        while (p >= 0) {
            ++d;
            p = loops_[p].parent;
        }
        l.depth = d;
    }

    // loopOf: innermost (deepest) loop containing each block.
    for (const auto &l : loops_) {
        for (BlockId b : l.blocks) {
            if (loopOf_[b] < 0 || loops_[loopOf_[b]].depth < l.depth)
                loopOf_[b] = l.index;
        }
    }

    for (auto &l : loops_)
        analyzeInduction(fn, l);
}

int
LoopInfo::loopOf(BlockId b) const
{
    LBP_ASSERT(b < loopOf_.size(), "bad block id");
    return loopOf_[b];
}

bool
LoopInfo::isSimple(int idx) const
{
    const Loop &l = loops_[idx];
    if (l.blocks.size() != 1 || l.latches.size() != 1 ||
        l.latches[0] != l.header) {
        return false;
    }
    return true;
}

void
LoopInfo::attachProfile(const Function &fn)
{
    auto preds = fn.predecessors();
    for (auto &l : loops_) {
        l.iterations = fn.blocks[l.header].weight;
        // Invocations = header entries from outside the loop. With
        // a block-weight-only profile, approximate entry weight as
        // header weight minus latch weights (exact when the latch
        // branch is the only backedge source and executes once per
        // iteration).
        double latch_w = 0;
        for (BlockId latch : l.latches) {
            // Weight of backedge traversals is bounded by latch
            // executions; use latch weight as the estimate.
            latch_w += fn.blocks[latch].weight;
        }
        l.invocations = std::max(0.0, l.iterations - latch_w);
        // Loops always entered at least once if the header ran.
        if (l.iterations > 0 && l.invocations <= 0)
            l.invocations = 1;
    }
}

void
LoopInfo::analyzeInduction(const Function &fn, Loop &loop)
{
    InductionInfo info;
    if (loop.latches.size() != 1)
        return;
    const BasicBlock &latch = fn.blocks[loop.latches[0]];
    const Operation *term = latch.terminator();
    if (!term || (term->op != Opcode::BR && term->op != Opcode::BR_WLOOP))
        return;
    if (term->target != loop.header || term->hasGuard())
        return;
    if (!term->srcs[0].isReg())
        return;

    const RegId ind = term->srcs[0].asReg();
    info.reg = ind;
    info.cond = term->cond;
    info.bound = term->srcs[1];

    // The bound must be loop-invariant: immediate or a register never
    // written inside the loop.
    if (info.bound.isReg()) {
        for (BlockId b : loop.blocks) {
            for (const auto &o : fn.blocks[b].ops) {
                if (o.writesReg(info.bound.asReg()))
                    return;
            }
        }
    }

    // Exactly one in-loop write to ind: "ADD ind = ind, #step" in the
    // latch, placed immediately before the branch (the canonical shape
    // IRBuilder::forLoop and counted-loop conversion produce).
    const Operation *step_op = nullptr;
    for (BlockId b : loop.blocks) {
        for (const auto &o : fn.blocks[b].ops) {
            if (!o.writesReg(ind))
                continue;
            if (step_op != nullptr)
                return; // multiple writes
            step_op = &o;
        }
    }
    if (!step_op || step_op->op != Opcode::ADD || step_op->hasGuard())
        return;
    if (!(step_op->srcs[0].isReg() && step_op->srcs[0].asReg() == ind &&
          step_op->srcs[1].isImm())) {
        return;
    }
    info.step = step_op->srcs[1].value;
    if (info.step == 0)
        return;

    // Find the reaching start value in the preheader: last write of
    // ind must be "MOV ind = #start".
    if (loop.preheader != kNoBlock) {
        const BasicBlock &pre = fn.blocks[loop.preheader];
        for (auto it = pre.ops.rbegin(); it != pre.ops.rend(); ++it) {
            if (it->writesReg(ind)) {
                if (it->op == Opcode::MOV && !it->hasGuard() &&
                    it->srcs[0].isImm()) {
                    info.start = it->srcs[0].value;
                    info.startKnown = true;
                }
                break;
            }
        }
    }

    // Static trip count when start and bound are constants.
    if (info.startKnown && info.bound.isImm()) {
        const std::int64_t start = info.start;
        const std::int64_t bound = info.bound.value;
        const std::int64_t step = info.step;
        std::int64_t trip = -1;
        // Bottom-test loop: body runs once, then repeats while
        // cond(ind, bound) after each increment.
        if (step > 0 && (info.cond == CmpCond::LT ||
                         info.cond == CmpCond::LE)) {
            const std::int64_t lim =
                info.cond == CmpCond::LT ? bound - 1 : bound;
            if (lim <= start) {
                trip = 1;
            } else {
                trip = (lim - start) / step + 1;
            }
        } else if (step < 0 && (info.cond == CmpCond::GT ||
                                info.cond == CmpCond::GE)) {
            const std::int64_t lim =
                info.cond == CmpCond::GT ? bound + 1 : bound;
            if (lim >= start) {
                trip = 1;
            } else {
                trip = (start - lim) / (-step) + 1;
            }
        }
        info.constTrip = trip;
    }

    info.valid = true;
    loop.induction = info;
}

} // namespace lbp
