/**
 * @file
 * Execution profiling: collects block weights and per-branch taken
 * counts from an interpreter run and writes them back onto the IR as
 * annotations. Profile-guided inlining, hyperblock formation, and
 * buffer allocation all consume these.
 */

#ifndef LBP_PROFILE_PROFILE_HH
#define LBP_PROFILE_PROFILE_HH

#include <cstdint>
#include <map>

#include "ir/interpreter.hh"
#include "ir/program.hh"

namespace lbp
{

/** Collected profile for one program run. */
class Profile : public ProfileSink
{
  public:
    void onBlock(FuncId f, BlockId b) override;
    void onBranch(FuncId f, BlockId b, OpId opId, bool taken) override;

    /** Block execution count. */
    double blockWeight(FuncId f, BlockId b) const;

    /** Branch executed / taken counts for op @p opId in function f. */
    double branchExec(FuncId f, OpId opId) const;
    double branchTaken(FuncId f, OpId opId) const;

    /** Taken probability (0 if never executed). */
    double takenProb(FuncId f, OpId opId) const;

    /** Copy block weights onto Function::blocks[].weight. */
    void annotate(Program &prog) const;

    /** Total dynamic block entries recorded. */
    std::uint64_t totalBlocks() const { return totalBlocks_; }

  private:
    std::map<std::pair<FuncId, BlockId>, double> blocks_;
    std::map<std::pair<FuncId, OpId>, double> brExec_;
    std::map<std::pair<FuncId, OpId>, double> brTaken_;
    std::uint64_t totalBlocks_ = 0;
};

/**
 * Convenience: interpret @p prog with @p args, annotate block weights,
 * and return the collected profile together with the run result.
 */
struct ProfiledRun
{
    ExecResult result;
    Profile profile;
};

ProfiledRun profileProgram(Program &prog,
                           const std::vector<std::int64_t> &args = {});

} // namespace lbp

#endif // LBP_PROFILE_PROFILE_HH
