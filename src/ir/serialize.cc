#include "ir/serialize.hh"

#include <cctype>
#include <map>
#include <sstream>

#include "support/logging.hh"

namespace lbp
{

namespace
{

// ---------------------------------------------------------------
// Writer
// ---------------------------------------------------------------

const char *
defKindToken(PredDefKind k)
{
    return predDefKindName(k);
}

void
writeOperand(std::ostream &os, const Operand &o)
{
    switch (o.kind) {
      case OperandKind::REG:
        os << "r" << o.asReg();
        break;
      case OperandKind::IMM:
        os << o.value;
        break;
      case OperandKind::PRED:
        os << "p" << o.asPred();
        break;
      case OperandKind::SLOT:
        os << "s" << o.asSlot();
        break;
      default:
        LBP_PANIC("unserializable operand");
    }
}

void
writeOp(std::ostream &os, const Operation &op, const Function &fn,
        const Program &prog)
{
    os << "    ";
    if (op.hasGuard())
        os << "(p" << op.guard << ") ";
    if (op.sensitive)
        os << "sens ";
    os << opcodeName(op.op);
    if (op.op == Opcode::CMP || op.op == Opcode::BR ||
        op.op == Opcode::BR_WLOOP || op.op == Opcode::PRED_DEF ||
        op.op == Opcode::SELECT) {
        // SELECT has no condition, but keep the family check tight.
    }
    if (op.op == Opcode::CMP || op.op == Opcode::BR ||
        op.op == Opcode::BR_WLOOP || op.op == Opcode::PRED_DEF) {
        os << "." << condName(op.cond);
    }

    bool first = true;
    if (op.op == Opcode::PRED_DEF) {
        const PredDefKind kinds[2] = {op.defKind0, op.defKind1};
        for (size_t i = 0; i < op.dsts.size(); ++i) {
            os << (first ? " " : ", ");
            writeOperand(os, op.dsts[i]);
            os << ":" << defKindToken(kinds[i]);
            first = false;
        }
    } else {
        for (const auto &d : op.dsts) {
            os << (first ? " " : ", ");
            writeOperand(os, d);
            first = false;
        }
    }
    // The '=' separates destinations from sources; it is emitted
    // whenever destinations exist (even with no sources, e.g. a call
    // with only return values) so parsing stays unambiguous.
    if (!op.dsts.empty())
        os << " =";
    first = true;
    for (const auto &s : op.srcs) {
        os << (first ? " " : ", ");
        writeOperand(os, s);
        first = false;
    }
    if (op.target != kNoBlock)
        os << " -> " << fn.blocks[op.target].name;
    if (op.op == Opcode::CALL)
        os << " @" << prog.functions[op.callee].name;
    if (isBufferOp(op.op))
        os << " buf " << op.bufAddr << " n " << op.numOps;
    if (op.speculative)
        os << " spec";
    if (op.fromOuterLoop)
        os << " outer";
    os << "\n";
}

} // namespace

std::string
writeText(const Program &prog)
{
    std::ostringstream os;
    os << "program " << prog.name << "\n";
    os << "memory " << prog.memory.size() << "\n";
    if (prog.checksumSize > 0) {
        os << "checksum " << prog.checksumBase << " "
           << prog.checksumSize << "\n";
    }
    // Data image: emit non-zero runs as hex.
    const auto &mem = prog.memory;
    size_t i = 0;
    while (i < mem.size()) {
        if (mem[i] == 0) {
            ++i;
            continue;
        }
        size_t j = i;
        // Extend the run until 8+ consecutive zero bytes.
        size_t zeros = 0;
        size_t end = i;
        while (j < mem.size() && zeros < 8) {
            if (mem[j] == 0) {
                ++zeros;
            } else {
                zeros = 0;
                end = j + 1;
            }
            ++j;
        }
        os << "data " << i << " ";
        static const char hex[] = "0123456789abcdef";
        for (size_t k = i; k < end; ++k) {
            os << hex[mem[k] >> 4] << hex[mem[k] & 0xf];
        }
        os << "\n";
        i = end;
    }
    if (prog.entryFunc != kNoFunc) {
        os << "entry " << prog.functions[prog.entryFunc].name << "\n";
    }

    for (const auto &fn : prog.functions) {
        os << "\nfunc " << fn.name << " params(";
        for (size_t p = 0; p < fn.params.size(); ++p)
            os << (p ? ", r" : "r") << fn.params[p];
        os << ") rets " << fn.numReturns;
        if (fn.noInline)
            os << " noinline";
        os << "\n";
        for (const auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            os << "  block " << bb.name;
            if (bb.id == fn.entry)
                os << " entry";
            if (bb.isHyperblock)
                os << " hyperblock";
            os << "\n";
            for (const auto &op : bb.ops)
                writeOp(os, op, fn, prog);
            if (bb.fallthrough != kNoBlock) {
                os << "    falls " << fn.blocks[bb.fallthrough].name
                   << "\n";
            }
        }
    }
    return os.str();
}

namespace
{

// ---------------------------------------------------------------
// Parser
// ---------------------------------------------------------------

struct Parser
{
    explicit Parser(const std::string &text) : in(text) {}

    std::istringstream in;
    int lineNo = 0;
    std::string line;

    [[noreturn]] void fail(const std::string &msg)
    {
        LBP_FATAL("parse error at line ", lineNo, ": ", msg, " in '",
                  line, "'");
    }

    bool nextLine()
    {
        while (std::getline(in, line)) {
            ++lineNo;
            // Strip comments and whitespace-only lines.
            const auto hash = line.find(';');
            if (hash != std::string::npos)
                line = line.substr(0, hash);
            for (char c : line) {
                if (!std::isspace(static_cast<unsigned char>(c)))
                    return true;
            }
        }
        return false;
    }

    std::vector<std::string> tokenize() const
    {
        std::vector<std::string> toks;
        std::string cur;
        for (char c : line) {
            if (std::isspace(static_cast<unsigned char>(c)) ||
                c == ',') {
                if (!cur.empty()) {
                    toks.push_back(cur);
                    cur.clear();
                }
            } else {
                cur += c;
            }
        }
        if (!cur.empty())
            toks.push_back(cur);
        return toks;
    }
};

std::int64_t
parseInt(Parser &p, const std::string &tok)
{
    try {
        size_t pos = 0;
        const std::int64_t v = std::stoll(tok, &pos);
        if (pos != tok.size())
            p.fail("bad integer '" + tok + "'");
        return v;
    } catch (const std::invalid_argument &) {
        p.fail("bad integer '" + tok + "'");
    } catch (const std::out_of_range &) {
        p.fail("integer out of range '" + tok + "'");
    }
}

Operand
parseOperand(Parser &p, const std::string &tok)
{
    LBP_ASSERT(!tok.empty(), "empty operand token");
    if (tok[0] == 'r' && tok.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        return Operand::reg(
            static_cast<RegId>(parseInt(p, tok.substr(1))));
    }
    if (tok[0] == 'p' && tok.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        return Operand::pred(
            static_cast<PredId>(parseInt(p, tok.substr(1))));
    }
    if (tok[0] == 's' && tok.size() > 1 &&
        std::isdigit(static_cast<unsigned char>(tok[1]))) {
        return Operand::slot(
            static_cast<int>(parseInt(p, tok.substr(1))));
    }
    return Operand::imm(parseInt(p, tok));
}

Opcode
opcodeFromName(Parser &p, const std::string &name)
{
    for (int i = 0; i < static_cast<int>(Opcode::NUM_OPCODES); ++i) {
        const Opcode oc = static_cast<Opcode>(i);
        if (name == opcodeName(oc))
            return oc;
    }
    p.fail("unknown opcode '" + name + "'");
}

CmpCond
condFromName(Parser &p, const std::string &name)
{
    for (CmpCond c : {CmpCond::EQ, CmpCond::NE, CmpCond::LT,
                      CmpCond::LE, CmpCond::GT, CmpCond::GE,
                      CmpCond::LTU, CmpCond::GEU, CmpCond::TRUE_,
                      CmpCond::FALSE_}) {
        if (name == condName(c))
            return c;
    }
    p.fail("unknown condition '" + name + "'");
}

PredDefKind
defKindFromName(Parser &p, const std::string &name)
{
    for (PredDefKind k : {PredDefKind::UT, PredDefKind::UF,
                          PredDefKind::OT, PredDefKind::OF,
                          PredDefKind::AT, PredDefKind::AF,
                          PredDefKind::CT, PredDefKind::CF}) {
        if (name == predDefKindName(k))
            return k;
    }
    p.fail("unknown pred-def kind '" + name + "'");
}

/** Pending fixups: block names resolve after all blocks are seen. */
struct OpFixup
{
    FuncId func;
    BlockId block;
    size_t opIdx;
    std::string targetName;  // branch target (empty = none)
    std::string calleeName;  // call target (empty = none)
};

} // namespace

Program
parseText(const std::string &text)
{
    Program prog;
    Parser p(text);

    std::string entryFuncName;
    std::vector<OpFixup> fixups;
    std::map<std::string, FuncId> funcByName;
    // Per-function block name maps.
    std::vector<std::map<std::string, BlockId>> blockByName;
    std::vector<std::string> fallFixupNames; // per (func,block)
    std::map<std::pair<FuncId, BlockId>, std::string> fallNames;

    FuncId curFunc = kNoFunc;
    BlockId curBlock = kNoBlock;

    while (p.nextLine()) {
        auto toks = p.tokenize();
        const std::string &kw = toks[0];

        if (kw == "program") {
            if (toks.size() != 2)
                p.fail("program <name>");
            prog.name = toks[1];
        } else if (kw == "memory") {
            if (toks.size() != 2)
                p.fail("memory <bytes>");
            prog.memory.assign(
                static_cast<size_t>(parseInt(p, toks[1])), 0);
        } else if (kw == "checksum") {
            if (toks.size() != 3)
                p.fail("checksum <base> <size>");
            prog.checksumBase = parseInt(p, toks[1]);
            prog.checksumSize = parseInt(p, toks[2]);
        } else if (kw == "data") {
            if (toks.size() != 3)
                p.fail("data <addr> <hex>");
            std::int64_t addr = parseInt(p, toks[1]);
            const std::string &hex = toks[2];
            if (hex.size() % 2)
                p.fail("odd hex digit count");
            auto nib = [&](char c) -> int {
                if (c >= '0' && c <= '9')
                    return c - '0';
                if (c >= 'a' && c <= 'f')
                    return c - 'a' + 10;
                if (c >= 'A' && c <= 'F')
                    return c - 'A' + 10;
                p.fail("bad hex digit");
            };
            for (size_t i = 0; i < hex.size(); i += 2) {
                if (addr < 0 ||
                    static_cast<size_t>(addr) >= prog.memory.size())
                    p.fail("data outside memory");
                prog.memory[addr++] = static_cast<std::uint8_t>(
                    nib(hex[i]) * 16 + nib(hex[i + 1]));
            }
        } else if (kw == "entry") {
            if (toks.size() != 2)
                p.fail("entry <func>");
            entryFuncName = toks[1];
        } else if (kw == "func") {
            // func <name> params(rA, rB) rets N [noinline]
            if (toks.size() < 3)
                p.fail("func header too short");
            curFunc = prog.newFunction(toks[1]);
            funcByName[toks[1]] = curFunc;
            blockByName.emplace_back();
            Function &fn = prog.functions[curFunc];
            curBlock = kNoBlock;
            size_t t = 2;
            // params(...) may have been split by the tokenizer; glue
            // tokens until the closing paren.
            std::string params;
            for (; t < toks.size(); ++t) {
                if (!params.empty())
                    params += ',';
                params += toks[t];
                if (params.find(')') != std::string::npos) {
                    ++t;
                    break;
                }
            }
            const auto lp = params.find('(');
            const auto rp = params.find(')');
            if (params.rfind("params", 0) != 0 ||
                lp == std::string::npos || rp == std::string::npos)
                p.fail("expected params(...)");
            std::string inner = params.substr(lp + 1, rp - lp - 1);
            std::string cur;
            auto flushParam = [&]() {
                if (cur.empty())
                    return;
                if (cur[0] != 'r')
                    p.fail("bad param '" + cur + "'");
                const RegId r = static_cast<RegId>(
                    parseInt(p, cur.substr(1)));
                fn.params.push_back(r);
                fn.nextReg = std::max(fn.nextReg, r + 1);
                cur.clear();
            };
            for (char c : inner) {
                if (c == ',' || std::isspace(
                                    static_cast<unsigned char>(c))) {
                    flushParam();
                } else {
                    cur += c;
                }
            }
            flushParam();
            if (t + 1 >= toks.size() || toks[t] != "rets")
                p.fail("expected rets <n>");
            fn.numReturns = static_cast<int>(parseInt(p, toks[t + 1]));
            for (size_t u = t + 2; u < toks.size(); ++u) {
                if (toks[u] == "noinline")
                    fn.noInline = true;
                else
                    p.fail("unknown func attribute '" + toks[u] + "'");
            }
        } else if (kw == "block") {
            if (curFunc == kNoFunc)
                p.fail("block outside func");
            if (toks.size() < 2)
                p.fail("block <name> [entry] [hyperblock]");
            Function &fn = prog.functions[curFunc];
            curBlock = fn.newBlock(toks[1]);
            blockByName[curFunc][toks[1]] = curBlock;
            for (size_t t = 2; t < toks.size(); ++t) {
                if (toks[t] == "entry")
                    fn.entry = curBlock;
                else if (toks[t] == "hyperblock")
                    fn.blocks[curBlock].isHyperblock = true;
                else
                    p.fail("unknown block attribute '" + toks[t] +
                           "'");
            }
        } else if (kw == "falls") {
            if (curBlock == kNoBlock)
                p.fail("falls outside block");
            if (toks.size() != 2)
                p.fail("falls <block>");
            fallNames[{curFunc, curBlock}] = toks[1];
        } else {
            // An operation line.
            if (curBlock == kNoBlock)
                p.fail("operation outside block");
            Function &fn = prog.functions[curFunc];
            Operation op;
            size_t t = 0;

            // Guard: "(pN)".
            if (toks[t].size() > 2 && toks[t].front() == '(' &&
                toks[t].back() == ')') {
                const std::string g =
                    toks[t].substr(1, toks[t].size() - 2);
                if (g[0] != 'p')
                    p.fail("bad guard '" + toks[t] + "'");
                op.guard =
                    static_cast<PredId>(parseInt(p, g.substr(1)));
                ++t;
            }
            if (t < toks.size() && toks[t] == "sens") {
                op.sensitive = true;
                ++t;
            }
            if (t >= toks.size())
                p.fail("missing opcode");

            // Opcode[.cond].
            std::string ocName = toks[t++];
            // Note: br.cloop / br.wloop are opcode names that contain
            // a dot themselves; try the full token as an opcode
            // first.
            bool isFull = false;
            for (int i = 0;
                 i < static_cast<int>(Opcode::NUM_OPCODES); ++i) {
                if (ocName ==
                    opcodeName(static_cast<Opcode>(i)))
                    isFull = true;
            }
            if (!isFull) {
                const auto dot = ocName.find('.');
                if (dot != std::string::npos) {
                    op.cond = condFromName(p, ocName.substr(dot + 1));
                    ocName = ocName.substr(0, dot);
                }
            }
            op.op = opcodeFromName(p, ocName);

            // Destinations up to "=", then sources; suffixes after.
            std::vector<std::string> pre, post;
            bool sawEq = false;
            std::vector<std::string> suffix;
            for (; t < toks.size(); ++t) {
                if (toks[t] == "=") {
                    sawEq = true;
                    continue;
                }
                if (toks[t] == "->" || toks[t] == "buf" ||
                    toks[t] == "spec" || toks[t] == "outer" ||
                    toks[t][0] == '@') {
                    suffix.assign(toks.begin() + t, toks.end());
                    break;
                }
                (sawEq ? post : pre).push_back(toks[t]);
            }
            // Without "=", everything parsed into `pre` is a source
            // (branch compares, stores, rets, rec counts).
            const bool hasDsts = sawEq;
            const auto &dstToks = hasDsts ? pre
                                          : std::vector<std::string>{};
            const auto &srcToks = hasDsts ? post : pre;

            for (const auto &d : dstToks) {
                if (op.op == Opcode::PRED_DEF) {
                    const auto colon = d.find(':');
                    if (colon == std::string::npos)
                        p.fail("pred_def dst needs :kind");
                    const PredDefKind k =
                        defKindFromName(p, d.substr(colon + 1));
                    if (op.dsts.empty())
                        op.defKind0 = k;
                    else
                        op.defKind1 = k;
                    op.dsts.push_back(
                        parseOperand(p, d.substr(0, colon)));
                } else {
                    op.dsts.push_back(parseOperand(p, d));
                }
            }
            for (const auto &s : srcToks)
                op.srcs.push_back(parseOperand(p, s));

            OpFixup fx;
            fx.func = curFunc;
            fx.block = curBlock;
            for (size_t u = 0; u < suffix.size(); ++u) {
                if (suffix[u] == "->") {
                    if (u + 1 >= suffix.size())
                        p.fail("-> without target");
                    fx.targetName = suffix[++u];
                } else if (suffix[u] == "buf") {
                    if (u + 3 >= suffix.size() ||
                        suffix[u + 2] != "n")
                        p.fail("expected buf <addr> n <ops>");
                    op.bufAddr = static_cast<std::int32_t>(
                        parseInt(p, suffix[u + 1]));
                    op.numOps = static_cast<std::int32_t>(
                        parseInt(p, suffix[u + 3]));
                    u += 3;
                } else if (suffix[u] == "spec") {
                    op.speculative = true;
                } else if (suffix[u] == "outer") {
                    op.fromOuterLoop = true;
                } else if (suffix[u][0] == '@') {
                    fx.calleeName = suffix[u].substr(1);
                } else {
                    p.fail("unknown suffix '" + suffix[u] + "'");
                }
            }

            // Track register/pred high-water marks.
            auto bump = [&](const Operand &o) {
                if (o.isReg())
                    fn.nextReg = std::max(fn.nextReg, o.asReg() + 1);
                if (o.isPred())
                    fn.nextPred =
                        std::max(fn.nextPred, o.asPred() + 1);
            };
            for (const auto &o : op.dsts)
                bump(o);
            for (const auto &o : op.srcs)
                bump(o);
            if (op.guard != kNoPred) {
                fn.nextPred = std::max(fn.nextPred, op.guard + 1);
            }

            op.id = fn.newOpId();
            fn.blocks[curBlock].ops.push_back(std::move(op));
            if (!fx.targetName.empty() || !fx.calleeName.empty()) {
                fx.opIdx = fn.blocks[curBlock].ops.size() - 1;
                fixups.push_back(std::move(fx));
            }
        }
    }

    // Resolve names.
    auto blockId = [&](FuncId f, const std::string &name) -> BlockId {
        auto it = blockByName[f].find(name);
        if (it == blockByName[f].end()) {
            LBP_FATAL("unknown block '", name, "' in function ",
                      prog.functions[f].name);
        }
        return it->second;
    };
    for (const auto &fx : fixups) {
        Operation &op =
            prog.functions[fx.func].blocks[fx.block].ops[fx.opIdx];
        if (!fx.targetName.empty())
            op.target = blockId(fx.func, fx.targetName);
        if (!fx.calleeName.empty()) {
            auto it = funcByName.find(fx.calleeName);
            if (it == funcByName.end())
                LBP_FATAL("unknown callee '", fx.calleeName, "'");
            op.callee = it->second;
        }
    }
    for (const auto &[key, name] : fallNames) {
        prog.functions[key.first].blocks[key.second].fallthrough =
            blockId(key.first, name);
    }
    if (!entryFuncName.empty()) {
        auto it = funcByName.find(entryFuncName);
        if (it == funcByName.end())
            LBP_FATAL("unknown entry function '", entryFuncName, "'");
        prog.entryFunc = it->second;
    }
    return prog;
}

} // namespace lbp
