/**
 * @file
 * Tests for the paper's future-work extensions implemented as
 * optional features: architected rotating registers (§7.1 — no MVE
 * image growth) and the per-slot predicate activation queue (§7.3 —
 * longer standing-predicate live ranges before the register-file
 * fallback).
 */

#include <gtest/gtest.h>

#include "core/compiler.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

TEST(RotatingRegisters, ShrinksBufferImages)
{
    // mpg123's windows have MVE factors > 1; with rotating registers
    // every image is one kernel copy.
    Program prog = workloads::buildWorkload("mpg123");
    CompileOptions plain;
    CompileResult a;
    compileProgram(prog, plain, a);
    CompileOptions rot;
    rot.rotatingRegisters = true;
    CompileResult b;
    compileProgram(prog, rot, b);

    int mveA = 0, imgA = 0, imgB = 0;
    for (size_t f = 0; f < a.code.functions.size(); ++f) {
        for (size_t blk = 0; blk < a.code.functions[f].blocks.size();
             ++blk) {
            const SchedBlock &sa = a.code.functions[f].blocks[blk];
            const SchedBlock &sb = b.code.functions[f].blocks[blk];
            if (!sa.valid || !sa.isLoopBody)
                continue;
            mveA = std::max(mveA, sa.mveFactor);
            imgA += sa.imageOps();
            if (sb.valid)
                imgB += sb.imageOps();
            if (sb.valid && sb.isLoopBody) {
                EXPECT_EQ(sb.mveFactor, 1);
            }
        }
    }
    EXPECT_GT(mveA, 1) << "workload no longer exercises MVE";
    EXPECT_LT(imgB, imgA);
}

TEST(RotatingRegisters, ImprovesMpg123BufferIssue)
{
    // The paper: "buffer performance could likely be further improved
    // through use of architected rotating registers" (§7.1, mpg123).
    Program prog = workloads::buildWorkload("mpg123");
    CompileOptions plain;
    CompileResult a;
    compileProgram(prog, plain, a);
    CompileOptions rot;
    rot.rotatingRegisters = true;
    CompileResult b;
    compileProgram(prog, rot, b);

    double fracA = 0, fracB = 0;
    for (int size : {256, 1024}) {
        reallocateBuffers(a, size);
        reallocateBuffers(b, size);
        SimConfig sc;
        sc.bufferOps = size;
        VliwSim sa(a.code, sc), sb(b.code, sc);
        const auto ra = sa.run();
        const auto rb = sb.run();
        EXPECT_EQ(ra.checksum, a.goldenChecksum);
        EXPECT_EQ(rb.checksum, b.goldenChecksum);
        fracA += ra.bufferFraction();
        fracB += rb.bufferFraction();
    }
    EXPECT_GT(fracB, fracA);
}

TEST(PredQueue, ReducesRegisterFallbacks)
{
    // Sum slot-lowering fallbacks across the benchmark set with and
    // without the activation queue; the queue must strictly reduce
    // range-too-long fallbacks and introduce queued predicates.
    int longPlain = 0, longQueued = 0, queued = 0;
    for (const auto &w : workloads::allWorkloads()) {
        Program prog = workloads::buildWorkload(w.name);
        CompileOptions plain;
        CompileResult a;
        compileProgram(prog, plain, a);
        CompileOptions q;
        q.predQueueDepth = 2;
        CompileResult b;
        compileProgram(prog, q, b);
        longPlain += a.slotStats.predsRangeTooLong;
        longQueued += b.slotStats.predsRangeTooLong;
        queued += b.slotStats.predsQueued;

        // Semantics unchanged either way.
        SimConfig sc;
        VliwSim sb(b.code, sc);
        EXPECT_EQ(sb.run().checksum, b.goldenChecksum) << w.name;
    }
    EXPECT_LE(longQueued, longPlain);
    if (longPlain > 0) {
        EXPECT_LT(longQueued, longPlain);
        EXPECT_GT(queued, 0);
    }
}

} // namespace
} // namespace lbp
