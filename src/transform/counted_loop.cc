#include "transform/counted_loop.hh"

#include "analysis/loop_info.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

/** Insert @p op into @p bb just before its terminator (if any). */
void
insertBeforeTerminator(BasicBlock &bb, Operation op)
{
    if (!bb.ops.empty() && (bb.ops.back().isBranchOp() ||
                            bb.ops.back().op == Opcode::RET)) {
        bb.ops.insert(bb.ops.end() - 1, std::move(op));
    } else {
        bb.ops.push_back(std::move(op));
    }
}

} // namespace

Operand
emitTripCountOps(Function &fn, BasicBlock &pre, const InductionInfo &ind)
{
    // Constant trip: nothing to compute.
    if (ind.constTrip >= 1)
        return Operand::imm(ind.constTrip);

    std::int64_t adj = 0;
    bool up;
    switch (ind.cond) {
      case CmpCond::LT: adj = -1; up = true; break;
      case CmpCond::LE: adj = 0; up = true; break;
      case CmpCond::GT: adj = 1; up = false; break;
      case CmpCond::GE: adj = 0; up = false; break;
      default: return Operand{};
    }
    if (up != (ind.step > 0))
        return Operand{};

    auto emit = [&](Operation op) -> RegId {
        op.id = fn.newOpId();
        insertBeforeTerminator(pre, op);
        return op.dsts[0].asReg();
    };

    // diff = (bound + adj) - ind      (for upward loops)
    // diff = ind - (bound + adj)      (for downward loops)
    RegId limit = fn.newReg();
    emit(makeBinary(Opcode::ADD, limit, ind.bound, Operand::imm(adj)));
    RegId diff = fn.newReg();
    if (up) {
        emit(makeBinary(Opcode::SUB, diff, Operand::reg(limit),
                        Operand::reg(ind.reg)));
    } else {
        emit(makeBinary(Opcode::SUB, diff, Operand::reg(ind.reg),
                        Operand::reg(limit)));
    }
    // trips = max(diff / |step| + 1, 1); bottom-test loops always run
    // at least once. Negative diff divides toward zero, so the +1 /
    // max(,1) sequence is exact for all inputs.
    const std::int64_t astep = ind.step > 0 ? ind.step : -ind.step;
    RegId q = fn.newReg();
    emit(makeBinary(Opcode::DIV, q, Operand::reg(diff),
                    Operand::imm(astep)));
    RegId t1 = fn.newReg();
    emit(makeBinary(Opcode::ADD, t1, Operand::reg(q), Operand::imm(1)));
    RegId trips = fn.newReg();
    emit(makeBinary(Opcode::MAX, trips, Operand::reg(t1),
                    Operand::imm(1)));
    return Operand::reg(trips);
}

CountedLoopStats
convertCountedLoops(Function &fn)
{
    CountedLoopStats st;
    LoopInfo li(fn);
    for (const auto &loop : li.loops()) {
        if (!li.isSimple(loop.index))
            continue;
        if (loop.preheader == kNoBlock)
            continue;
        BasicBlock &body = fn.blocks[loop.header];
        Operation *term = body.terminator();
        if (!term ||
            (term->op != Opcode::BR && term->op != Opcode::BR_WLOOP)) {
            continue; // already converted or irregular
        }
        if (term->hasGuard())
            continue;
        BasicBlock &pre = fn.blocks[loop.preheader];
        // The REC op executes unconditionally in the preheader, so the
        // preheader must have the loop header as its only successor
        // (otherwise a stale hardware-loop context could be pushed).
        {
            auto succs = pre.successors();
            if (succs.size() != 1 || succs[0] != loop.header)
                continue;
        }

        Operand trips;
        if (loop.induction.valid)
            trips = emitTripCountOps(fn, pre, loop.induction);

        if (!trips.isNone()) {
            // REC_CLOOP trips in the preheader; BR_CLOOP back branch.
            Operation rec;
            rec.op = Opcode::REC_CLOOP;
            rec.srcs = {trips};
            rec.target = loop.header;
            rec.id = fn.newOpId();
            insertBeforeTerminator(pre, std::move(rec));

            Operation cloop;
            cloop.op = Opcode::BR_CLOOP;
            cloop.target = loop.header;
            cloop.id = fn.newOpId();
            *term = std::move(cloop);
            ++st.cloops;
        } else {
            // While-loop hardware form: REC_WLOOP + BR_WLOOP, keeping
            // the original branch condition.
            Operation rec;
            rec.op = Opcode::REC_WLOOP;
            rec.target = loop.header;
            rec.id = fn.newOpId();
            insertBeforeTerminator(pre, std::move(rec));

            term->op = Opcode::BR_WLOOP;
            ++st.wloops;
        }
    }
    return st;
}

CountedLoopStats
convertCountedLoops(Program &prog)
{
    CountedLoopStats st;
    for (auto &fn : prog.functions) {
        auto s = convertCountedLoops(fn);
        st.cloops += s.cloops;
        st.wloops += s.wloops;
    }
    return st;
}

} // namespace lbp
