/**
 * @file
 * Observability front door: run a workload and pretty-print / dump the
 * metrics registry, diff two registry dumps, export a cycle-level
 * Chrome trace (Perfetto-loadable), maintain the bench-history
 * timeline, and render the self-contained HTML flight recorder.
 *
 *   lbp_stats run <workload> [options]     registry table + dumps
 *   lbp_stats diff <a.json> <b.json>       field-by-field dump diff
 *   lbp_stats trace <workload> [options]   Chrome trace-event JSON
 *   lbp_stats loops <workload> [options]   per-loop scorecard
 *   lbp_stats explain <a.json> <b.json>    cycle delta by class x loop
 *   lbp_stats history append <doc.json>    flatten + append one record
 *   lbp_stats history list                 one line per stored record
 *   lbp_stats history check <doc.json>     statistical regression gate
 *   lbp_stats history prune --keep=N       keep newest N per source
 *   lbp_stats report <workload> [options]  single-file HTML report
 *   lbp_stats prof <workload> [options]    sampling self-profile
 *   lbp_stats pmu <workload> [options]     host hardware counters by
 *                                          region (perf_event_open)
 *   lbp_stats --trace <workload>           alias for `trace`
 *   lbp_stats --version                    git SHA + schema versions
 *
 * Options:
 *   --level=aggressive|traditional   compile configuration
 *   --buffer=N                       loop buffer size in ops (256)
 *   --engine=decoded|reference       simulator engine (decoded)
 *   --json=FILE                      write the registry dump / check
 *                                    verdict as JSON
 *   --csv=FILE                       write the registry dump as CSV
 *   --out=FILE                       trace / report output path
 *   --sample=N                       keep 1/N of Fetch/Branch/Nullify
 *   --capacity=N                     trace ring capacity in events
 *   --history=FILE                   jsonl store (BENCH_history.jsonl)
 *   --source=NAME                    override the record source tag
 *   --window=N --rel=X --abs=X --madk=K   gate thresholds (history.hh)
 *   --sort=ops|gain|evictions|bailouts|replay
 *                                    `loops` ranking key: total
 *                                    dynamic ops (default), realized
 *                                    buffer gain (ops issued from the
 *                                    buffer), eviction count,
 *                                    trace-cache bailout count, or
 *                                    trace-replayed op count
 *   --cycles                         `loops` also prints the per-loop
 *                                    cycle stack table
 *   --keep=N                         `history prune` retention per
 *                                    source
 *   --hz=N --reps=N                  `prof` sampling rate / workload
 *                                    repetitions (reps=0 sizes the
 *                                    run for a stable sample count;
 *                                    `pmu` defaults to 3 reps)
 *   --cpi                            `explain` also joins the two
 *                                    documents' host "pmu" blocks:
 *                                    host per-region IPC and branch
 *                                    miss movement next to the
 *                                    simulated cycle delta
 *   --verbose                        `history check` prints every key
 *
 * `trace` cross-checks the trace against the registry before writing:
 * the sum of ops carried by buffer-hit events must equal the run's
 * sim.opsFromBuffer counter exactly (structural kinds are exempt from
 * sampling and aggregates are immune to ring overflow, so this holds
 * at any capacity). A mismatch is a simulator/tracing bug and exits
 * nonzero.
 *
 * `history check` exits 1 when the gate fails (a regression, an exact
 * mismatch, a non-finite value, or a vanished key), naming each
 * offending key on stdout; see obs/history.hh for the window math.
 */

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.hh"
#include "obs/history.hh"
#include "obs/json.hh"
#include "obs/loop_report.hh"
#include "obs/pmu.hh"
#include "obs/prof.hh"
#include "obs/publish.hh"
#include "obs/registry.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "obs/version.hh"
#include "power/fetch_energy.hh"
#include "sim/trace_cache.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace
{

using namespace lbp;

struct Options
{
    std::string command;
    std::vector<std::string> positional;
    OptLevel level = OptLevel::Aggressive;
    int bufferOps = 256;
    SimEngine engine = SimEngine::DECODED;
    std::string jsonPath;
    std::string csvPath;
    std::string outPath;
    std::uint64_t sample = 1;
    std::size_t capacity = 1u << 20;
    std::string historyPath = "BENCH_history.jsonl";
    std::string source;
    obs::CheckPolicy policy;
    std::string sort = "ops";
    unsigned hz = obs::prof::kDefaultHz;
    int reps = 0;  ///< prof repetitions; 0 = auto (sample target)
    int keep = 0;  ///< history prune: newest N records per source
    bool cycles = false;  ///< loops: print the per-loop cycle stack
    bool cpi = false;     ///< explain: host-vs-simulated CPI join
    bool verbose = false;
};

int
usage()
{
    std::cerr
        << "usage: lbp_stats run <workload> [--level=L] [--buffer=N]\n"
        << "                 [--engine=E] [--json=F] [--csv=F]\n"
        << "       lbp_stats diff <a.json> <b.json>\n"
        << "       lbp_stats trace <workload> [--out=F] [--sample=N]\n"
        << "                 [--capacity=N] [--buffer=N] [--level=L]\n"
        << "       lbp_stats loops <workload> [--level=L] [--buffer=N]\n"
        << "                 [--engine=E] [--json=F] [--sort=S]\n"
        << "                 [--cycles]\n"
        << "       lbp_stats explain <a.json> <b.json> [--cpi]\n"
        << "       lbp_stats history append <doc.json> [--history=F]\n"
        << "                 [--source=NAME]\n"
        << "       lbp_stats history list [--history=F]\n"
        << "       lbp_stats history check <doc.json> [--history=F]\n"
        << "                 [--window=N] [--rel=X] [--abs=X]\n"
        << "                 [--madk=K] [--json=F] [--verbose]\n"
        << "       lbp_stats history prune --keep=N [--history=F]\n"
        << "       lbp_stats report <workload> [--out=F] [--history=F]\n"
        << "                 [--level=L] [--buffer=N] [--engine=E]\n"
        << "       lbp_stats prof <workload> [--hz=N] [--reps=N]\n"
        << "                 [--out=F] [--level=L] [--buffer=N]\n"
        << "                 [--engine=E] [--json=F]\n"
        << "       lbp_stats pmu <workload> [--reps=N] [--level=L]\n"
        << "                 [--buffer=N] [--engine=E] [--json=F]\n"
        << "       lbp_stats list\n"
        << "       lbp_stats --version\n"
        << "\nworkloads:\n";
    for (const auto &w : workloads::allWorkloads())
        std::cerr << "  " << w.name << "  (" << w.description << ")\n";
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &o)
{
    if (argc < 2)
        return false;
    o.command = argv[1];
    if (o.command == "--trace")
        o.command = "trace";
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto val = [&](const char *key) -> const char * {
            const size_t n = std::strlen(key);
            if (arg.compare(0, n, key) == 0 && arg[n] == '=')
                return arg.c_str() + n + 1;
            return nullptr;
        };
        if (const char *v = val("--level")) {
            const std::string s = v;
            if (s == "aggressive") {
                o.level = OptLevel::Aggressive;
            } else if (s == "traditional") {
                o.level = OptLevel::Traditional;
            } else {
                std::cerr << "unknown level '" << s << "'\n";
                return false;
            }
        } else if (const char *v2 = val("--buffer")) {
            o.bufferOps = std::atoi(v2);
        } else if (const char *v3 = val("--engine")) {
            const std::string s = v3;
            if (s == "decoded") {
                o.engine = SimEngine::DECODED;
            } else if (s == "reference") {
                o.engine = SimEngine::REFERENCE;
            } else {
                std::cerr << "unknown engine '" << s << "'\n";
                return false;
            }
        } else if (const char *v4 = val("--json")) {
            o.jsonPath = v4;
        } else if (const char *v5 = val("--csv")) {
            o.csvPath = v5;
        } else if (const char *v6 = val("--out")) {
            o.outPath = v6;
        } else if (const char *v7 = val("--sample")) {
            o.sample = std::strtoull(v7, nullptr, 10);
            if (o.sample == 0)
                o.sample = 1;
        } else if (const char *v8 = val("--capacity")) {
            o.capacity = std::strtoull(v8, nullptr, 10);
            if (o.capacity == 0)
                o.capacity = 1;
        } else if (const char *v9 = val("--history")) {
            o.historyPath = v9;
        } else if (const char *v10 = val("--source")) {
            o.source = v10;
        } else if (const char *v11 = val("--window")) {
            o.policy.window = std::atoi(v11);
            if (o.policy.window < 1)
                o.policy.window = 1;
        } else if (const char *v12 = val("--rel")) {
            o.policy.relTol = std::atof(v12);
        } else if (const char *v13 = val("--abs")) {
            o.policy.absTol = std::atof(v13);
        } else if (const char *v14 = val("--madk")) {
            o.policy.madK = std::atof(v14);
        } else if (const char *v15 = val("--sort")) {
            o.sort = v15;
            if (o.sort != "ops" && o.sort != "gain" &&
                o.sort != "evictions" && o.sort != "bailouts" &&
                o.sort != "replay") {
                std::cerr << "unknown sort key '" << o.sort
                          << "' (ops|gain|evictions|bailouts|"
                             "replay)\n";
                return false;
            }
        } else if (const char *v16 = val("--hz")) {
            o.hz = static_cast<unsigned>(std::atoi(v16));
            if (o.hz == 0)
                o.hz = 1;
        } else if (const char *v17 = val("--reps")) {
            o.reps = std::atoi(v17);
            if (o.reps < 1)
                o.reps = 1;
        } else if (const char *v18 = val("--keep")) {
            o.keep = std::atoi(v18);
        } else if (arg == "--cycles") {
            o.cycles = true;
        } else if (arg == "--cpi") {
            o.cpi = true;
        } else if (arg == "--verbose") {
            o.verbose = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else {
            o.positional.push_back(arg);
        }
    }
    return true;
}

/**
 * Compile + simulate one workload, publishing everything into @p r.
 * When the decoded engine ran with its trace cache, the side counters
 * are published too and copied to @p tcOut (if given); @p tcOut is
 * left untouched otherwise.
 */
SimStats
runWorkload(const Options &o, const std::string &name,
            obs::Registry &r, obs::TraceSink *trace,
            CompileResult &cr, TraceCacheStats *tcOut = nullptr,
            obs::CycleStack *csOut = nullptr)
{
    Program prog = workloads::buildWorkload(name);
    CompileOptions copts;
    copts.level = o.level;
    copts.bufferOps = o.bufferOps;
    copts.obsRegistry = &r;
    compileProgram(prog, copts, cr);

    SimConfig sc;
    sc.bufferOps = o.bufferOps;
    sc.engine = o.engine;
    sc.trace = trace;
    VliwSim sim(cr.code, sc);
    const SimStats stats = sim.run();
    if (stats.checksum != cr.goldenChecksum) {
        std::cerr << "FATAL: simulation checksum "
                  << stats.checksum << " != golden "
                  << cr.goldenChecksum << "\n";
        std::exit(1);
    }

    r.info("workload", name);
    r.info("level", o.level == OptLevel::Aggressive ? "aggressive"
                                                    : "traditional");
    r.info("engine", o.engine == SimEngine::DECODED ? "decoded"
                                                    : "reference");
    r.info("buffer_ops", std::to_string(o.bufferOps));
    publishCompileResult(r, cr);
    publishSimStats(r, stats);
    if (const TraceCacheStats *tc = sim.traceCacheStats()) {
        obs::publishTraceCacheStats(r, *tc);
        if (tcOut)
            *tcOut = *tc;
    }
    obs::publishCycleStack(r, sim.cycleStack());
    if (csOut)
        *csOut = sim.cycleStack();
    publishFetchEnergy(r,
                       computeFetchEnergy(stats, o.bufferOps));
    return stats;
}

bool
writeFile(const std::string &path,
          const std::function<void(std::ostream &)> &emit)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot open '" << path << "' for writing\n";
        return false;
    }
    emit(os);
    return os.good();
}

obs::Json
loadJson(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::cerr << "cannot open '" << path << "'\n";
        std::exit(1);
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string error;
    obs::Json doc = obs::Json::parse(buf.str(), error);
    if (!error.empty()) {
        std::cerr << path << ": parse error: " << error << "\n";
        std::exit(1);
    }
    return doc;
}

int
cmdRun(const Options &o)
{
    if (o.positional.size() != 1)
        return usage();
    obs::Registry reg;
    CompileResult cr;
    runWorkload(o, o.positional[0], reg, nullptr, cr);
    reg.writeTable(std::cout);
    if (!o.jsonPath.empty()) {
        if (!writeFile(o.jsonPath, [&](std::ostream &os) {
                reg.toJson().write(os);
                os << "\n";
            }))
            return 1;
        std::cout << "registry dump: " << o.jsonPath << "\n";
    }
    if (!o.csvPath.empty()) {
        if (!writeFile(o.csvPath, [&](std::ostream &os) {
                reg.writeCsv(os);
            }))
            return 1;
        std::cout << "registry csv: " << o.csvPath << "\n";
    }
    return 0;
}

/**
 * Is a bench-JSON key timing-like (tolerated by the regression
 * gate)? Counters, fractions, and energies must match exactly;
 * wall-clock measurements and machine-dependent knobs may not.
 */
bool
timingTolerantKey(const std::string &key)
{
    if (key == "speedup" || key == "threads" || key == "wallMs")
        return true;
    return key.size() >= 2 &&
           key.compare(key.size() - 2, 2, "Ms") == 0;
}

/**
 * Recursive diff of two BENCH_*.json documents under the
 * counters-exact / timings-tolerant policy: the "machine" identity
 * block and any timing-valued key are skipped, everything else must
 * be byte-identical.
 */
void
diffBenchJson(const obs::Json &a, const obs::Json &b,
              const std::string &path,
              std::vector<obs::DiffEntry> &out)
{
    using obs::Json;
    auto emit = [&](const Json *va, const Json *vb) {
        obs::DiffEntry d;
        d.key = path.empty() ? "<root>" : path;
        d.a = va ? va->dump() : "<absent>";
        d.b = vb ? vb->dump() : "<absent>";
        out.push_back(std::move(d));
    };
    if (a.kind() != b.kind()) {
        emit(&a, &b);
        return;
    }
    if (a.kind() == Json::Kind::Object) {
        std::vector<std::string> keys;
        for (const auto &kv : a.members())
            keys.push_back(kv.first);
        for (const auto &kv : b.members())
            if (!a.find(kv.first))
                keys.push_back(kv.first);
        for (const auto &k : keys) {
            if (k == "machine" || k == "git_sha" ||
                timingTolerantKey(k))
                continue;
            // The top-level "pmu" block is host hardware counters —
            // per-machine, per-run values, never comparable across
            // dumps (the history gate classes them PerPoint for the
            // same reason).
            if (path.empty() && k == "pmu")
                continue;
            const Json *va = a.find(k);
            const Json *vb = b.find(k);
            const std::string sub =
                path.empty() ? k : path + "." + k;
            if (!va || !vb) {
                obs::DiffEntry d;
                d.key = sub;
                d.a = va ? va->dump() : "<absent>";
                d.b = vb ? vb->dump() : "<absent>";
                out.push_back(std::move(d));
                continue;
            }
            diffBenchJson(*va, *vb, sub, out);
        }
        return;
    }
    if (a.kind() == Json::Kind::Array) {
        const auto &ia = a.items();
        const auto &ib = b.items();
        const size_t n = std::max(ia.size(), ib.size());
        for (size_t i = 0; i < n; ++i) {
            const std::string sub =
                path + "[" + std::to_string(i) + "]";
            if (i >= ia.size() || i >= ib.size()) {
                obs::DiffEntry d;
                d.key = sub;
                d.a = i < ia.size() ? ia[i].dump() : "<absent>";
                d.b = i < ib.size() ? ib[i].dump() : "<absent>";
                out.push_back(std::move(d));
                continue;
            }
            diffBenchJson(ia[i], ib[i], sub, out);
        }
        return;
    }
    // Null leaves are serialized NaN/inf gauges; NaN never equals
    // anything, itself included, so null always diffs (the same
    // poison policy as obs::diffRegistries).
    if (a.kind() == Json::Kind::Null || a != b)
        emit(&a, &b);
}

int
cmdDiff(const Options &o)
{
    if (o.positional.size() != 2)
        return usage();
    const obs::Json a = loadJson(o.positional[0]);
    const obs::Json b = loadJson(o.positional[1]);

    // Registry dumps carry "metrics"/"histograms" sections and diff
    // field-by-field; BENCH_*.json documents (marked by a "bench"
    // key) diff recursively under the counters-exact /
    // timings-tolerant policy.
    std::vector<obs::DiffEntry> diffs;
    if (!a.find("metrics") && !b.find("metrics") &&
        (a.find("bench") || b.find("bench"))) {
        diffBenchJson(a, b, "", diffs);
    } else {
        diffs = obs::diffRegistries(a, b);
    }
    if (diffs.empty()) {
        std::cout << "identical (" << o.positional[0] << " vs "
                  << o.positional[1] << ")\n";
        return 0;
    }
    std::cout << diffs.size() << " field(s) differ:\n";
    for (const auto &d : diffs) {
        std::cout << "  " << d.key << ": " << d.a << " -> " << d.b
                  << "\n";
    }
    return 1;
}

int
cmdTrace(const Options &o)
{
    if (o.positional.size() != 1)
        return usage();
    const std::string &name = o.positional[0];

    obs::Registry reg;
    obs::TraceSink sink(o.capacity, o.sample);
    CompileResult cr;
    const SimStats stats = runWorkload(o, name, reg, &sink, cr);

    // The headline integrity check: buffer-hit events carry the ops
    // count of each bundle issued from the buffer, so their sum must
    // equal the simulator's own counter exactly.
    const std::int64_t bufOps =
        sink.sumA(obs::TraceKind::BufHit);
    if (bufOps < 0 ||
        static_cast<std::uint64_t>(bufOps) != stats.opsFromBuffer) {
        std::cerr << "FATAL: trace buffer-hit ops " << bufOps
                  << " != sim.opsFromBuffer " << stats.opsFromBuffer
                  << "\n";
        return 1;
    }

    std::vector<std::string> loopNames;
    for (const auto &ls : stats.loops)
        loopNames.push_back(ls.name);

    const std::string out =
        o.outPath.empty() ? name + ".trace.json" : o.outPath;
    if (!writeFile(out, [&](std::ostream &os) {
            obs::writeChromeTrace(os, sink, loopNames);
        }))
        return 1;

    const auto spans = obs::residencyTimeline(sink);
    std::uint64_t bufferedCycles = 0;
    for (const auto &sp : spans)
        if (sp.fromBuffer)
            bufferedCycles += sp.exitCycle - sp.enterCycle;

    std::cout << "workload:         " << name << "\n"
              << "cycles:           " << stats.cycles << "\n"
              << "events recorded:  " << sink.size() << "\n"
              << "events dropped:   " << sink.dropped() << "\n"
              << "events sampled:   " << sink.sampledOut() << "\n"
              << "loop activations: " << spans.size() << "\n"
              << "buffered cycles:  " << bufferedCycles << "\n"
              << "buffer-hit ops:   " << bufOps
              << " (== sim.opsFromBuffer: ok)\n"
              << "trace:            " << out << "\n"
              << "load it at https://ui.perfetto.dev or "
                 "chrome://tracing\n";
    return 0;
}

int
cmdLoops(const Options &o)
{
    if (o.positional.size() != 1)
        return usage();
    const std::string &name = o.positional[0];

    obs::Registry reg;
    CompileResult cr;
    TraceCacheStats tc;
    obs::CycleStack cs;
    const SimStats stats = runWorkload(o, name, reg, nullptr, cr,
                                       &tc, &cs);
    const FetchEnergy fe = computeFetchEnergy(stats, o.bufferOps);

    // The join asserts the headline invariants internally: the sum of
    // per-loop buffer-issued ops equals sim.opsFromBuffer exactly,
    // and the cycle stack is closed over classes and loops.
    obs::LoopScorecard sc = obs::buildLoopScorecard(
        name, cr.loopLog, stats, o.bufferOps, &fe, &tc, &cs);

    // Re-rank on request; the default build order is dynOps.
    if (o.sort != "ops") {
        auto key = [&](const obs::ScorecardRow &r) {
            if (o.sort == "gain")
                return r.opsFromBuffer;
            if (o.sort == "bailouts")
                return r.bailouts;
            if (o.sort == "replay")
                return r.replayedOps;
            return r.evictions;
        };
        std::stable_sort(
            sc.rows.begin(), sc.rows.end(),
            [&key](const obs::ScorecardRow &a,
                   const obs::ScorecardRow &b) {
                return key(a) > key(b);
            });
    }
    obs::publishScorecard(reg, sc);

    obs::printScorecard(std::cout, sc);
    if (o.cycles) {
        std::cout << "\n";
        obs::printScorecardCycles(std::cout, sc);
    }
    if (!o.jsonPath.empty()) {
        if (!writeFile(o.jsonPath, [&](std::ostream &os) {
                obs::scorecardToJson(sc).write(os);
                os << "\n";
            }))
            return 1;
        std::cout << "scorecard dump: " << o.jsonPath << "\n";
    }
    return 0;
}

int
cmdList()
{
    for (const auto &w : workloads::allWorkloads())
        std::cout << w.name << "\n";
    return 0;
}

int
cmdHistory(const Options &o)
{
    if (o.positional.empty())
        return usage();
    const std::string &sub = o.positional[0];

    if (sub == "list") {
        if (o.positional.size() != 1)
            return usage();
        std::string error;
        const auto recs = obs::loadHistory(o.historyPath, error);
        if (!error.empty()) {
            std::cerr << error << "\n";
            return 1;
        }
        int i = 0;
        for (const auto &rec : recs) {
            std::cout << i++ << "  " << rec.source << "  "
                      << rec.gitSha << "  " << rec.values.size()
                      << " value(s)\n";
        }
        std::cout << recs.size() << " record(s) in " << o.historyPath
                  << "\n";
        return 0;
    }

    if (sub == "prune") {
        if (o.positional.size() != 1)
            return usage();
        if (o.keep < 1) {
            std::cerr << "history prune needs --keep=N (N >= 1)\n";
            return 2;
        }
        std::string error;
        int removed = 0;
        if (!obs::pruneHistory(o.historyPath, o.keep, error,
                               &removed)) {
            std::cerr << error << "\n";
            return 1;
        }
        std::cout << "pruned " << removed << " record(s) from "
                  << o.historyPath << " (keeping newest " << o.keep
                  << " per source)\n";
        return 0;
    }

    if (o.positional.size() != 2)
        return usage();
    const obs::Json doc = loadJson(o.positional[1]);

    if (sub == "append") {
        const obs::HistoryRecord rec =
            obs::makeHistoryRecord(doc, o.source);
        std::string error;
        if (!obs::appendHistory(o.historyPath, rec, error)) {
            std::cerr << error << "\n";
            return 1;
        }
        std::cout << "appended " << rec.source << " record ("
                  << rec.values.size() << " values, " << rec.gitSha
                  << ") to " << o.historyPath << "\n";
        return 0;
    }

    if (sub == "check") {
        std::string error;
        const auto recs = obs::loadHistory(o.historyPath, error);
        if (!error.empty()) {
            std::cerr << error << "\n";
            return 1;
        }
        const obs::CheckReport report =
            obs::checkAgainstHistory(recs, doc, o.policy);
        report.print(std::cout, o.verbose);
        if (!o.jsonPath.empty()) {
            if (!writeFile(o.jsonPath, [&](std::ostream &os) {
                    report.toJson().write(os);
                    os << "\n";
                }))
                return 1;
            std::cout << "verdict dump: " << o.jsonPath << "\n";
        }
        return report.failed() ? 1 : 0;
    }
    return usage();
}

/**
 * If @p key's last dotted segment names a CycleClass, return its
 * index and leave the preceding segments in @p ctxTail; -1 otherwise.
 * Registry dumps flatten "sim.cycles.issueFromBuffer" into one member
 * name, while bench/scorecard documents nest {"cycle_stack":
 * {"issueFromBuffer": N}} — matching the final segment covers both.
 */
int
cycleClassOfKey(const std::string &key, std::string &ctxTail)
{
    const std::size_t cut = key.rfind('.');
    const std::string seg =
        cut == std::string::npos ? key : key.substr(cut + 1);
    for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k) {
        if (seg == obs::cycleClassName(
                       static_cast<obs::CycleClass>(k))) {
            ctxTail =
                cut == std::string::npos ? "" : key.substr(0, cut);
            return static_cast<int>(k);
        }
    }
    return -1;
}

using CycleRowD = std::array<double, obs::kNumCycleClasses>;

/** Collect every cycle-class numeric leaf, grouped by context path. */
void
collectCycleLeaves(const obs::Json &node, const std::string &path,
                   std::map<std::string, CycleRowD> &out)
{
    using obs::Json;
    if (node.kind() == Json::Kind::Object) {
        for (const auto &kv : node.members()) {
            std::string tail;
            const int k = cycleClassOfKey(kv.first, tail);
            if (k >= 0 && kv.second.isNumber()) {
                std::string ctx = path;
                if (!tail.empty())
                    ctx += ctx.empty() ? tail : "." + tail;
                out[ctx][static_cast<std::size_t>(k)] +=
                    kv.second.asDouble();
            } else {
                collectCycleLeaves(kv.second,
                                   path.empty()
                                       ? kv.first
                                       : path + "." + kv.first,
                                   out);
            }
        }
    } else if (node.kind() == Json::Kind::Array) {
        const auto &items = node.items();
        for (std::size_t i = 0; i < items.size(); ++i)
            collectCycleLeaves(items[i],
                               path + "[" + std::to_string(i) + "]",
                               out);
    }
}

/**
 * The --cpi cross-view: join the two documents' host "pmu" blocks
 * (schema v5 bench JSON or `lbp_stats pmu --json` dumps) so host
 * per-region IPC and branch-miss movement reads next to the
 * simulated cycle delta printed above it — "the simulator charges
 * more branch-penalty cycles AND the host now mispredicts in
 * simDispatch" is one view. Degrades to an explicit per-document
 * note when either side has no usable host counters.
 */
void
printHostCpi(const obs::Json &a, const obs::Json &b)
{
    using obs::Json;
    std::cout << "\nhost cpi cross-view (--cpi):\n";

    auto regionsOf = [](const Json &doc,
                        std::string &note) -> const Json * {
        const Json *pmu = doc.find("pmu");
        if (!pmu) {
            note = "no \"pmu\" block (schema v5 bench JSON or "
                   "`lbp_stats pmu --json` dump)";
            return nullptr;
        }
        const Json *avail = pmu->find("available");
        if (!avail || !avail->asBool()) {
            note = "host counters unavailable";
            if (const Json *reason = pmu->find("reason"))
                note += ": " + reason->asString();
            return nullptr;
        }
        return pmu->find("regions");
    };

    std::string noteA, noteB;
    const Json *ra = regionsOf(a, noteA);
    const Json *rb = regionsOf(b, noteB);
    if (!ra || !rb) {
        if (!ra)
            std::cout << "  a: " << noteA << "\n";
        if (!rb)
            std::cout << "  b: " << noteB << "\n";
        return;
    }

    std::map<std::string, char> labels;
    for (const auto &kv : ra->members())
        labels[kv.first] = 1;
    for (const auto &kv : rb->members())
        labels[kv.first] = 1;

    auto field = [](const Json *row, const char *key, double &out) {
        if (!row)
            return false;
        const Json *v = row->find(key);
        if (!v || !v->isNumber())
            return false;
        out = v->asDouble();
        return true;
    };
    std::cout << "  region                 ipc a -> b        "
                 "br-miss% a -> b\n";
    for (const auto &lv : labels) {
        const Json *qa = ra->find(lv.first);
        const Json *qb = rb->find(lv.first);
        double ipcA = 0, ipcB = 0, brA = 0, brB = 0;
        const bool hasIpc =
            field(qa, "ipc", ipcA) && field(qb, "ipc", ipcB);
        const bool hasBr = field(qa, "branchMissPct", brA) &&
                           field(qb, "branchMissPct", brB);
        char line[128];
        char ipc[32], br[32];
        if (hasIpc)
            std::snprintf(ipc, sizeof(ipc), "%5.2f -> %5.2f", ipcA,
                          ipcB);
        else
            std::snprintf(ipc, sizeof(ipc), "     -");
        if (hasBr)
            std::snprintf(br, sizeof(br), "%6.2f -> %6.2f", brA,
                          brB);
        else
            std::snprintf(br, sizeof(br), "     -");
        std::snprintf(line, sizeof(line), "  %-22s %-17s %s\n",
                      lv.first.c_str(), ipc, br);
        std::cout << line;
    }
}

/**
 * Decompose the simulated-cycle delta between two documents by
 * CycleClass x context (loop row, workload stack, registry counter —
 * any grouping either document carries). Prints the grand total, the
 * per-class split, and every (context, class) mover ranked by |delta|.
 */
int
cmdExplain(const Options &o)
{
    if (o.positional.size() != 2)
        return usage();
    const obs::Json a = loadJson(o.positional[0]);
    const obs::Json b = loadJson(o.positional[1]);

    std::map<std::string, CycleRowD> ma, mb;
    collectCycleLeaves(a, "", ma);
    collectCycleLeaves(b, "", mb);
    if (ma.empty() || mb.empty()) {
        // A document without any cycle-class leaf cannot be
        // explained — a usage-class error (exit 2, like bad flags),
        // distinct from runtime failures (exit 1). Name the
        // offending document(s) and the keys that were expected.
        if (ma.empty())
            std::cerr << "explain: no cycle-class keys in "
                      << o.positional[0] << "\n";
        if (mb.empty())
            std::cerr << "explain: no cycle-class keys in "
                      << o.positional[1] << "\n";
        std::cerr << "expected leaves named after a cycle class (";
        for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k)
            std::cerr << (k ? ", " : "")
                      << obs::cycleClassName(
                             static_cast<obs::CycleClass>(k));
        std::cerr << ") as in schema v4+ bench JSON, a registry "
                     "dump with sim.cycles.*, or a scorecard dump\n";
        return 2;
    }

    std::map<std::string, char> ctxs;
    for (const auto &kv : ma)
        ctxs[kv.first] = 1;
    for (const auto &kv : mb)
        ctxs[kv.first] = 1;

    struct Entry
    {
        std::string ctx;
        std::size_t cls;
        double va, vb;
    };
    std::vector<Entry> entries;
    CycleRowD clsA{}, clsB{};
    double totA = 0, totB = 0;
    for (const auto &ckv : ctxs) {
        const CycleRowD ra = ma.count(ckv.first) ? ma[ckv.first]
                                                 : CycleRowD{};
        const CycleRowD rb = mb.count(ckv.first) ? mb[ckv.first]
                                                 : CycleRowD{};
        for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k) {
            clsA[k] += ra[k];
            clsB[k] += rb[k];
            totA += ra[k];
            totB += rb[k];
            if (ra[k] != rb[k])
                entries.push_back({ckv.first, k, ra[k], rb[k]});
        }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &x, const Entry &y) {
                         return std::abs(x.vb - x.va) >
                                std::abs(y.vb - y.va);
                     });

    auto num = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return std::string(buf);
    };
    auto delta = [&](double va, double vb) {
        const double d = vb - va;
        return (d >= 0 ? "+" : "") + num(d);
    };

    std::cout << "cycle delta: " << o.positional[0] << " -> "
              << o.positional[1] << "\n";
    std::cout << "total: " << num(totA) << " -> " << num(totB)
              << " (" << delta(totA, totB) << ")\n\nby class:\n";
    for (std::size_t k = 0; k < obs::kNumCycleClasses; ++k) {
        if (clsA[k] == 0 && clsB[k] == 0)
            continue;
        std::cout << "  "
                  << obs::cycleClassName(
                         static_cast<obs::CycleClass>(k))
                  << ": " << num(clsA[k]) << " -> " << num(clsB[k])
                  << " (" << delta(clsA[k], clsB[k]) << ")\n";
    }

    if (entries.empty()) {
        std::cout << "\nno per-context movement: the stacks are "
                     "identical\n";
    } else {
        const std::size_t kMaxEntries = 40;
        std::cout << "\nby context x class (ranked by |delta|):\n";
        for (std::size_t i = 0;
             i < entries.size() && i < kMaxEntries; ++i) {
            const Entry &e = entries[i];
            std::cout << "  " << (e.ctx.empty() ? "<root>" : e.ctx)
                      << " . "
                      << obs::cycleClassName(
                             static_cast<obs::CycleClass>(e.cls))
                      << ": " << num(e.va) << " -> " << num(e.vb)
                      << " (" << delta(e.va, e.vb) << ")\n";
        }
        if (entries.size() > kMaxEntries)
            std::cout << "  ... " << entries.size() - kMaxEntries
                      << " further mover(s) elided\n";
    }
    if (o.cpi)
        printHostCpi(a, b);
    return 0;
}

/** Core of the self-profile snapshot as report/dump JSON. */
obs::Json
profSnapshotJson(const obs::prof::Snapshot &snap)
{
    obs::Json doc = obs::Json::object();
    doc.set("samples", obs::Json::uinteger(snap.samples));
    doc.set("dropped", obs::Json::uinteger(snap.dropped));
    doc.set("untracked", obs::Json::uinteger(snap.untracked));
    doc.set("attributed_fraction",
            obs::Json::number(snap.attributedFraction()));
    obs::Json regions = obs::Json::object();
    for (const auto &rc : snap.regions)
        regions.set(rc.label, obs::Json::uinteger(rc.count));
    doc.set("regions", regions);
    return doc;
}

int
cmdReport(const Options &o)
{
    if (o.positional.size() != 1)
        return usage();
    const std::string &name = o.positional[0];

    // Self-profile the report's own workload run so the "where the
    // host cycles go" section describes exactly the run whose
    // counters fill the rest of the document. Best-effort: when the
    // profiler is compiled out or the timer cannot be armed the
    // section degrades to its placeholder.
    obs::prof::Profiler &prof = obs::prof::Profiler::instance();
    const bool profiling =
        obs::prof::compiledIn() && prof.start(o.hz);

    // Same discipline for the host counters: best-effort session
    // around the same run; the #pmu section renders the snapshot's
    // reason when the host has none.
    obs::pmu::PmuSession &pmuSession =
        obs::pmu::PmuSession::instance();
    const bool counting = pmuSession.start();

    obs::Registry reg;
    CompileResult cr;
    TraceCacheStats tc;
    obs::CycleStack cs;
    const SimStats stats = runWorkload(o, name, reg, nullptr, cr,
                                       &tc, &cs);
    const FetchEnergy fe = computeFetchEnergy(stats, o.bufferOps);
    const obs::LoopScorecard sc = obs::buildLoopScorecard(
        name, cr.loopLog, stats, o.bufferOps, &fe, &tc, &cs);

    obs::ReportData data;
    data.workload = name;
    data.registryDoc = reg.toJson();
    data.scorecard = obs::scorecardToJson(sc);
    if (profiling) {
        prof.stop();
        data.prof = profSnapshotJson(prof.snapshot());
    }
    if (counting)
        pmuSession.stop();
    data.pmu = obs::pmu::snapshotJson(pmuSession.snapshot());

    std::string error;
    data.history = obs::loadHistory(o.historyPath, error);
    if (!error.empty()) {
        std::cerr << error << "\n";
        return 1;
    }
    if (!data.history.empty())
        data.historyPath = o.historyPath;

    // Fold the regression verdict in when the store has a baseline
    // for this registry document.
    const obs::CheckReport check =
        obs::checkAgainstHistory(data.history, data.registryDoc,
                                 o.policy);
    if (check.baselineRecords > 0)
        data.check = check.toJson();

    const std::string out =
        o.outPath.empty() ? name + ".report.html" : o.outPath;
    if (!writeFile(out, [&](std::ostream &os) {
            obs::writeHtmlReport(os, data);
        }))
        return 1;
    std::cout << "report: " << out << " (" << data.history.size()
              << " history record(s)"
              << (check.baselineRecords > 0
                      ? check.failed() ? ", gate: FAIL"
                                       : ", gate: PASS"
                      : "")
              << ")\n";
    return 0;
}

/**
 * Run the workload under the sampling self-profiler and print where
 * the host cycles went, by region. The workload is compiled and
 * simulated repeatedly (--reps, or until the sample count is stable
 * enough to rank regions) so even --quick workloads accumulate
 * statistics at the default ~1 kHz rate. Attribution is checked
 * against the samples the handler could not tag: the tool reports
 * the attributed fraction and exits nonzero only on harness errors,
 * never on attribution quality (CI smoke asserts the fraction
 * separately where the environment is controlled).
 */
int
cmdProf(const Options &o)
{
    if (o.positional.size() != 1)
        return usage();
    const std::string &name = o.positional[0];

    if (!obs::prof::compiledIn()) {
        std::cerr << "lbp_stats prof: profiler compiled out "
                     "(built with -DLBP_PROF=OFF)\n";
        return 1;
    }

    obs::prof::Profiler &prof = obs::prof::Profiler::instance();
    if (!prof.start(o.hz)) {
        std::cerr << "lbp_stats prof: cannot arm the sampling "
                     "timer on this system\n";
        return 1;
    }

    // Repeat the full pipeline — build, compile, decode, simulate —
    // so every region has a chance to be sampled. reps=0 sizes the
    // run adaptively: stop once we hold enough samples to rank
    // regions meaningfully, with a hard cap so pathological clocks
    // cannot hang the tool.
    constexpr std::uint64_t kTargetSamples = 400;
    constexpr int kMaxAutoReps = 300;
    int reps = 0;
    for (;;) {
        ++reps;
        obs::Registry reg;
        CompileResult cr;
        runWorkload(o, name, reg, nullptr, cr);
        if (o.reps > 0) {
            if (reps >= o.reps)
                break;
        } else if (reps >= kMaxAutoReps ||
                   prof.snapshot().samples >= kTargetSamples) {
            break;
        }
    }
    prof.stop();
    const obs::prof::Snapshot snap = prof.snapshot();

    std::cout << "workload:            " << name << "\n"
              << "repetitions:         " << reps << "\n"
              << "sampling rate:       " << o.hz << " Hz\n"
              << "samples:             " << snap.samples << "\n"
              << "samples dropped:     " << snap.dropped << "\n"
              << "samples untracked:   " << snap.untracked << "\n";
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.1f%%",
                  100.0 * snap.attributedFraction());
    std::cout << "attributed:          " << frac << "\n\n";

    std::cout << "  region                       samples   share\n";
    for (const auto &rc : snap.regions) {
        char share[32];
        std::snprintf(share, sizeof(share), "%5.1f%%",
                      snap.samples
                          ? 100.0 * static_cast<double>(rc.count) /
                                static_cast<double>(snap.samples)
                          : 0.0);
        std::cout << "  " << rc.label
                  << std::string(rc.label.size() < 28
                                     ? 28 - rc.label.size()
                                     : 1,
                                 ' ')
                  << std::string(rc.count < 10        ? 6
                                 : rc.count < 100     ? 5
                                 : rc.count < 1000    ? 4
                                 : rc.count < 10000   ? 3
                                 : rc.count < 100000  ? 2
                                 : rc.count < 1000000 ? 1
                                                      : 0,
                                 ' ')
                  << rc.count << "   " << share << "\n";
    }

    if (!o.outPath.empty()) {
        if (!writeFile(o.outPath, [&](std::ostream &os) {
                os << obs::prof::collapsedStacks(snap);
            }))
            return 1;
        std::cout << "\ncollapsed stacks: " << o.outPath
                  << " (feed to flamegraph.pl / speedscope)\n";
    }
    if (!o.jsonPath.empty()) {
        obs::Json doc = profSnapshotJson(snap);
        doc.set("workload", obs::Json::str(name));
        doc.set("hz", obs::Json::uinteger(o.hz));
        doc.set("reps", obs::Json::integer(reps));
        obs::Json paths = obs::Json::array();
        for (const auto &pc : snap.paths) {
            obs::Json p = obs::Json::object();
            p.set("path", obs::Json::str(pc.label));
            p.set("samples", obs::Json::uinteger(pc.count));
            paths.push(p);
        }
        doc.set("paths", paths);
        if (!writeFile(o.jsonPath, [&](std::ostream &os) {
                doc.write(os);
                os << "\n";
            }))
            return 1;
        std::cout << "profile dump: " << o.jsonPath << "\n";
    }
    return 0;
}

/**
 * Run the workload under a host PMU session and print per-region
 * hardware counters: IPC, branch-miss rate, cache MPKI for compile /
 * decode / dispatch / replay, attributed through the profiler's
 * existing region markers. The workload repeats (--reps, default 3)
 * so short workloads still accumulate counter deltas across every
 * region. Exit 0 in every environment: a host without usable
 * counters (container, restrictive perf_event_paranoid, LBP_PMU=OFF
 * build) prints the reason and publishes pmu.available=0 — graceful
 * unavailability is the contract, not an error.
 */
int
cmdPmu(const Options &o)
{
    if (o.positional.size() != 1)
        return usage();
    const std::string &name = o.positional[0];

    obs::pmu::PmuSession &session =
        obs::pmu::PmuSession::instance();
    std::string why;
    const bool counting = session.start(&why);
    if (!counting)
        std::cout << "host pmu unavailable: " << why
                  << " (running anyway; publishing "
                     "pmu.available=0)\n";

    const int reps = o.reps > 0 ? o.reps : 3;
    std::unique_ptr<obs::Registry> reg;
    {
        // The harness marker keeps inter-region tool time (workload
        // construction, registry churn) attributed to "bench"
        // rather than untracked, the same discipline the bench
        // drivers use — this is what holds attribution >= 95%.
        obs::prof::ScopedRegion harness(obs::prof::Region::Bench);
        for (int i = 0; i < reps; ++i) {
            reg = std::make_unique<obs::Registry>();
            CompileResult cr;
            runWorkload(o, name, *reg, nullptr, cr);
        }
    }
    if (counting)
        session.stop();
    const obs::pmu::Snapshot snap = session.snapshot();

    std::cout << "workload:     " << name << "\n"
              << "repetitions:  " << reps << "\n\n";
    obs::pmu::printSnapshotTable(std::cout, snap);

    // The dump is the last repetition's full registry plus the
    // pmu.* keys, so one artifact carries simulated and host
    // counters side by side (`lbp_stats diff` and the history gate
    // treat pmu.* as PerPoint).
    obs::publishPmu(*reg, snap);
    if (!o.jsonPath.empty()) {
        if (!writeFile(o.jsonPath, [&](std::ostream &os) {
                reg->toJson().write(os);
                os << "\n";
            }))
            return 1;
        std::cout << "\nregistry dump: " << o.jsonPath << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return usage();
    if (o.command == "--version") {
        std::cout << obs::versionString() << "\n";
        return 0;
    }
    if (o.command == "run")
        return cmdRun(o);
    if (o.command == "diff")
        return cmdDiff(o);
    if (o.command == "trace")
        return cmdTrace(o);
    if (o.command == "loops")
        return cmdLoops(o);
    if (o.command == "explain")
        return cmdExplain(o);
    if (o.command == "history")
        return cmdHistory(o);
    if (o.command == "report")
        return cmdReport(o);
    if (o.command == "prof")
        return cmdProf(o);
    if (o.command == "pmu")
        return cmdPmu(o);
    if (o.command == "list")
        return cmdList();
    return usage();
}
