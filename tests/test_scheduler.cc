/**
 * @file
 * List-scheduler tests: legality (validated against the dependence
 * graph and slot capabilities), resource saturation, and a random-DAG
 * property sweep.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "sched/list_scheduler.hh"
#include "support/random.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

TEST(ListScheduler, RespectsLatency)
{
    Program prog;
    prog.allocData(64);
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId p = b.iconst(0);
    const RegId v = b.loadW(R(p), I(0));   // latency 3
    const RegId m = b.mul(R(v), I(2));     // latency 2
    const RegId a = b.add(R(m), I(1));
    b.ret({R(a)});
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    Machine machine;
    SchedBlock sb = listScheduleBlock(bb, machine);
    EXPECT_TRUE(validateSchedule(bb, sb, machine).empty());
    // Chain length: iconst@0, load@1..., +3 -> mul, +2 -> add, ret.
    EXPECT_GE(sb.lengthCycles(), 1 + 3 + 2 + 1);
}

TEST(ListScheduler, ParallelOpsPack)
{
    // Eight independent adds fit into very few cycles on the 8-wide
    // machine.
    Program prog;
    const FuncId f = prog.newFunction("f");
    Function &fn = prog.functions[f];
    std::vector<RegId> params;
    for (int i = 0; i < 8; ++i)
        params.push_back(fn.newReg());
    fn.params = params;
    IRBuilder b(prog, f);
    std::vector<Operand> outs;
    for (int i = 0; i < 8; ++i)
        outs.push_back(R(b.add(R(params[i]), I(i))));
    b.ret({outs[0]});
    const BasicBlock &bb = fn.blocks[fn.entry];
    Machine machine;
    SchedBlock sb = listScheduleBlock(bb, machine);
    EXPECT_TRUE(validateSchedule(bb, sb, machine).empty());
    EXPECT_LE(sb.lengthCycles(), 3);
}

TEST(ListScheduler, MemUnitsLimitLoads)
{
    // Six independent loads need at least two cycles (3 MEM units).
    Program prog;
    prog.allocData(64);
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const RegId p = b.iconst(0);
    std::vector<RegId> vals;
    for (int i = 0; i < 6; ++i)
        vals.push_back(b.loadW(R(p), I(i * 4)));
    RegId acc = vals[0];
    for (int i = 1; i < 6; ++i)
        acc = b.add(R(acc), R(vals[i]));
    b.ret({R(acc)});
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    Machine machine;
    SchedBlock sb = listScheduleBlock(bb, machine);
    EXPECT_TRUE(validateSchedule(bb, sb, machine).empty());
    // Count loads per cycle.
    for (const auto &bu : sb.bundles) {
        int loads = 0;
        for (const auto &so : bu.ops)
            loads += isLoad(so.op.op);
        EXPECT_LE(loads, 3);
    }
}

TEST(ListScheduler, BranchLast)
{
    Program prog;
    const FuncId f = prog.newFunction("f");
    IRBuilder b(prog, f);
    const BlockId tgt = b.makeBlock();
    b.at(tgt);
    b.ret({});
    b.at(prog.functions[f].entry);
    const RegId x = b.iconst(1);
    const RegId y = b.add(R(x), I(2));
    b.br(CmpCond::GT, R(y), I(0), tgt);
    b.fallTo(tgt);
    const BasicBlock &bb =
        prog.functions[f].blocks[prog.functions[f].entry];
    Machine machine;
    SchedBlock sb = listScheduleBlock(bb, machine);
    EXPECT_TRUE(validateSchedule(bb, sb, machine).empty());
    // The branch appears in the final bundle.
    bool brInLast = false;
    for (const auto &so : sb.bundles.back().ops)
        brInLast |= so.op.op == Opcode::BR;
    EXPECT_TRUE(brInLast);
}

/** Random straight-line blocks always schedule legally. */
TEST(ListScheduler, RandomDagProperty)
{
    Rng rng(31415);
    Machine machine;
    for (int trial = 0; trial < 50; ++trial) {
        Program prog;
        prog.allocData(1024);
        const FuncId f = prog.newFunction("f");
        IRBuilder b(prog, f);
        std::vector<RegId> pool{b.iconst(1), b.iconst(2)};
        const int n = 5 + static_cast<int>(rng.nextBelow(60));
        for (int i = 0; i < n; ++i) {
            const double roll = rng.nextDouble();
            const RegId a = pool[rng.nextBelow(pool.size())];
            const RegId c = pool[rng.nextBelow(pool.size())];
            if (roll < 0.15) {
                const RegId addr =
                    b.and_(R(a), I(255));
                pool.push_back(b.loadW(R(addr), I(0)));
            } else if (roll < 0.25) {
                const RegId addr = b.and_(R(a), I(255));
                b.storeW(R(addr), I(256), R(c));
            } else if (roll < 0.35) {
                pool.push_back(b.mul(R(a), R(c)));
            } else if (roll < 0.40 && a != 0) {
                pool.push_back(b.div(R(a), I(3)));
            } else {
                pool.push_back(b.add(R(a), R(c)));
            }
        }
        b.ret({R(pool.back())});
        const BasicBlock &bb =
            prog.functions[f].blocks[prog.functions[f].entry];
        SchedBlock sb = listScheduleBlock(bb, machine);
        const auto errs = validateSchedule(bb, sb, machine);
        EXPECT_TRUE(errs.empty())
            << "trial " << trial << ": " << errs.front();
    }
}

TEST(Schedule, LinkAssignsMonotoneAddresses)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId acc = b.iconst(0);
    b.forLoop(0, 4, 1, [&](RegId i) { b.addTo(acc, R(acc), R(i)); });
    b.ret({R(acc)});
    Machine machine;
    SchedProgram code;
    code.ir = &prog;
    code.functions.resize(1);
    code.functions[0].func = f;
    code.functions[0].blocks.resize(prog.functions[f].blocks.size());
    for (const auto &bb : prog.functions[f].blocks) {
        if (!bb.dead) {
            code.functions[0].blocks[bb.id] =
                listScheduleBlock(bb, machine);
        }
    }
    code.link();
    std::int64_t last = -1;
    for (const auto &sb : code.functions[0].blocks) {
        if (!sb.valid)
            continue;
        for (const auto &bu : sb.bundles) {
            EXPECT_GT(bu.addr, last);
            last = bu.addr;
        }
    }
    EXPECT_EQ(code.sizeOps(), prog.functions[f].sizeOps());
}

} // namespace
} // namespace lbp
