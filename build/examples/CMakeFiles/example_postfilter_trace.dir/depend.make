# Empty dependencies file for example_postfilter_trace.
# This may be replaced when dependencies are built.
