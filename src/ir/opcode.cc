#include "ir/opcode.hh"

#include "support/logging.hh"

namespace lbp
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::REM: return "rem";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SHL: return "shl";
      case Opcode::SHR: return "shr";
      case Opcode::SHRA: return "shra";
      case Opcode::MOV: return "mov";
      case Opcode::ABS: return "abs";
      case Opcode::MIN: return "min";
      case Opcode::MAX: return "max";
      case Opcode::SATADD: return "satadd";
      case Opcode::SATSUB: return "satsub";
      case Opcode::CMP: return "cmp";
      case Opcode::SELECT: return "select";
      case Opcode::FADD: return "fadd";
      case Opcode::FSUB: return "fsub";
      case Opcode::FMUL: return "fmul";
      case Opcode::FDIV: return "fdiv";
      case Opcode::ITOF: return "itof";
      case Opcode::FTOI: return "ftoi";
      case Opcode::LD_B: return "ld.b";
      case Opcode::LD_H: return "ld.h";
      case Opcode::LD_W: return "ld.w";
      case Opcode::ST_B: return "st.b";
      case Opcode::ST_H: return "st.h";
      case Opcode::ST_W: return "st.w";
      case Opcode::PRED_DEF: return "pred_def";
      case Opcode::BR: return "br";
      case Opcode::JUMP: return "jump";
      case Opcode::BR_CLOOP: return "br.cloop";
      case Opcode::BR_WLOOP: return "br.wloop";
      case Opcode::CALL: return "call";
      case Opcode::RET: return "ret";
      case Opcode::REC_CLOOP: return "rec_cloop";
      case Opcode::REC_WLOOP: return "rec_wloop";
      case Opcode::EXEC_CLOOP: return "exec_cloop";
      case Opcode::EXEC_WLOOP: return "exec_wloop";
      case Opcode::NOP: return "nop";
      default: LBP_PANIC("bad opcode ", static_cast<int>(op));
    }
}

const char *
condName(CmpCond c)
{
    switch (c) {
      case CmpCond::EQ: return "eq";
      case CmpCond::NE: return "ne";
      case CmpCond::LT: return "lt";
      case CmpCond::LE: return "le";
      case CmpCond::GT: return "gt";
      case CmpCond::GE: return "ge";
      case CmpCond::LTU: return "ltu";
      case CmpCond::GEU: return "geu";
      case CmpCond::TRUE_: return "true";
      case CmpCond::FALSE_: return "false";
      default: LBP_PANIC("bad cond");
    }
}

const char *
predDefKindName(PredDefKind k)
{
    switch (k) {
      case PredDefKind::NONE: return "-";
      case PredDefKind::UT: return "ut";
      case PredDefKind::UF: return "uf";
      case PredDefKind::OT: return "ot";
      case PredDefKind::OF: return "of";
      case PredDefKind::AT: return "at";
      case PredDefKind::AF: return "af";
      case PredDefKind::CT: return "ct";
      case PredDefKind::CF: return "cf";
      default: LBP_PANIC("bad pred def kind");
    }
}

const char *
unitClassName(UnitClass u)
{
    switch (u) {
      case UnitClass::IALU: return "Ialu";
      case UnitClass::IMUL: return "Imul";
      case UnitClass::MEM: return "Mem";
      case UnitClass::BR: return "Br";
      case UnitClass::FPU: return "F";
      case UnitClass::PRED: return "Pred";
      default: LBP_PANIC("bad unit class");
    }
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::BR:
      case Opcode::JUMP:
      case Opcode::BR_CLOOP:
      case Opcode::BR_WLOOP:
      case Opcode::CALL:
      case Opcode::RET:
      case Opcode::REC_CLOOP:
      case Opcode::REC_WLOOP:
      case Opcode::EXEC_CLOOP:
      case Opcode::EXEC_WLOOP:
        return true;
      default:
        return false;
    }
}

bool
isBranch(Opcode op)
{
    switch (op) {
      case Opcode::BR:
      case Opcode::JUMP:
      case Opcode::BR_CLOOP:
      case Opcode::BR_WLOOP:
        return true;
      default:
        return false;
    }
}

bool
isBufferOp(Opcode op)
{
    switch (op) {
      case Opcode::REC_CLOOP:
      case Opcode::REC_WLOOP:
      case Opcode::EXEC_CLOOP:
      case Opcode::EXEC_WLOOP:
        return true;
      default:
        return false;
    }
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LD_B || op == Opcode::LD_H || op == Opcode::LD_W;
}

bool
isStore(Opcode op)
{
    return op == Opcode::ST_B || op == Opcode::ST_H || op == Opcode::ST_W;
}

UnitClass
unitClassOf(Opcode op)
{
    switch (op) {
      case Opcode::MUL:
      case Opcode::DIV:
      case Opcode::REM:
        return UnitClass::IMUL;
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::FDIV:
      case Opcode::ITOF:
      case Opcode::FTOI:
        return UnitClass::FPU;
      case Opcode::LD_B:
      case Opcode::LD_H:
      case Opcode::LD_W:
      case Opcode::ST_B:
      case Opcode::ST_H:
      case Opcode::ST_W:
        return UnitClass::MEM;
      case Opcode::PRED_DEF:
        return UnitClass::PRED;
      case Opcode::BR:
      case Opcode::JUMP:
      case Opcode::BR_CLOOP:
      case Opcode::BR_WLOOP:
      case Opcode::CALL:
      case Opcode::RET:
      case Opcode::REC_CLOOP:
      case Opcode::REC_WLOOP:
      case Opcode::EXEC_CLOOP:
      case Opcode::EXEC_WLOOP:
        return UnitClass::BR;
      default:
        return UnitClass::IALU;
    }
}

int
latencyOf(Opcode op)
{
    // Paper §7: arithmetic 1, multiplies 2, divides 8, loads 3, FP 2.
    switch (op) {
      case Opcode::MUL:
        return 2;
      case Opcode::DIV:
      case Opcode::REM:
      case Opcode::FDIV:
        return 8;
      case Opcode::LD_B:
      case Opcode::LD_H:
      case Opcode::LD_W:
        return 3;
      case Opcode::FADD:
      case Opcode::FSUB:
      case Opcode::FMUL:
      case Opcode::ITOF:
      case Opcode::FTOI:
        return 2;
      default:
        return 1;
    }
}

bool
evalCond(CmpCond c, std::int64_t a, std::int64_t b)
{
    switch (c) {
      case CmpCond::EQ: return a == b;
      case CmpCond::NE: return a != b;
      case CmpCond::LT: return a < b;
      case CmpCond::LE: return a <= b;
      case CmpCond::GT: return a > b;
      case CmpCond::GE: return a >= b;
      case CmpCond::LTU:
        return static_cast<std::uint64_t>(a) < static_cast<std::uint64_t>(b);
      case CmpCond::GEU:
        return static_cast<std::uint64_t>(a) >=
               static_cast<std::uint64_t>(b);
      case CmpCond::TRUE_: return true;
      case CmpCond::FALSE_: return false;
      default: LBP_PANIC("bad cond");
    }
}

CmpCond
negateCond(CmpCond c)
{
    switch (c) {
      case CmpCond::EQ: return CmpCond::NE;
      case CmpCond::NE: return CmpCond::EQ;
      case CmpCond::LT: return CmpCond::GE;
      case CmpCond::LE: return CmpCond::GT;
      case CmpCond::GT: return CmpCond::LE;
      case CmpCond::GE: return CmpCond::LT;
      case CmpCond::LTU: return CmpCond::GEU;
      case CmpCond::GEU: return CmpCond::LTU;
      case CmpCond::TRUE_: return CmpCond::FALSE_;
      case CmpCond::FALSE_: return CmpCond::TRUE_;
      default: LBP_PANIC("bad cond");
    }
}

} // namespace lbp
