/**
 * @file
 * Ablation studies over the design choices the paper motivates:
 *
 *  1. Per-transform contribution: buffer issue and cycles with each
 *     control transformation disabled in turn (peel / collapse /
 *     branch-combine / promotion / modulo scheduling / inlining).
 *  2. Branch-penalty sensitivity: the value of buffered loop-backs as
 *     the machine's taken-branch cost varies (paper: 3-5 cycles).
 *  3. Encoding cost (§4): per-operation bits of the three predication
 *     alternatives — full predication with an 8-entry predicate
 *     register file (3 guard bits), the paper's slot scheme (1
 *     sensitivity bit), and no predication — accumulated over the
 *     benchmark set's static code.
 */

#include <cstdio>

#include "bench_common.hh"

#include "support/logging.hh"
#include "transform/branch_combine.hh"
#include "transform/classic_opts.hh"
#include "transform/counted_loop.hh"
#include "transform/if_convert.hh"
#include "transform/loop_collapse.hh"
#include "transform/loop_peel.hh"
#include "transform/promote.hh"
#include "ir/verifier.hh"
#include "profile/profile.hh"
#include "sched/list_scheduler.hh"
#include "sched/modulo_scheduler.hh"
#include "transform/inliner.hh"

using namespace lbp;
using namespace lbp::bench;

namespace
{

struct AblationKnobs
{
    bool inlineCalls = true;
    bool peel = true;
    bool collapse = true;
    bool ifConvert = true;
    bool branchCombine = true;
    bool promote = true;
    bool modulo = true;
};

/**
 * A hand-rolled variant of the aggressive pipeline with individual
 * transformations switchable (the production pipeline deliberately
 * exposes only the paper's two configurations).
 */
void
compileAblated(const Program &input, const AblationKnobs &k,
               CompileResult &out)
{
    out.ir = input;
    Program &prog = out.ir;
    verifyOrDie(prog);
    auto run0 = profileProgram(prog);
    out.goldenChecksum = run0.result.checksum;
    if (k.inlineCalls)
        inlineHotCalls(prog, run0.profile);
    optimizeProgram(prog);
    if (k.peel)
        peelLoops(prog);
    if (k.ifConvert)
        ifConvertLoops(prog);
    if (k.collapse)
        collapseLoops(prog);
    if (k.ifConvert)
        ifConvertLoops(prog);
    if (k.branchCombine)
        combineBranches(prog);
    if (k.promote)
        promoteOperations(prog);
    optimizeProgram(prog);
    convertCountedLoops(prog);
    profileProgram(prog);

    out.code.ir = &prog;
    out.code.functions.resize(prog.functions.size());
    for (const auto &fn : prog.functions) {
        SchedFunction &sf = out.code.functions[fn.id];
        sf.func = fn.id;
        sf.blocks.resize(fn.blocks.size());
        for (const auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            const Operation *term = bb.terminator();
            const bool loopBody =
                term && term->target == bb.id &&
                (term->op == Opcode::BR_CLOOP ||
                 term->op == Opcode::BR_WLOOP ||
                 term->op == Opcode::BR);
            SchedBlock sb;
            if (loopBody && k.modulo) {
                sb = moduloScheduleLoop(bb, out.machine);
                if (!sb.valid) {
                    sb = listScheduleBlock(bb, out.machine);
                    sb.isLoopBody = true;
                }
            } else {
                sb = listScheduleBlock(bb, out.machine);
                sb.isLoopBody = loopBody;
            }
            sf.blocks[bb.id] = std::move(sb);
        }
    }
    out.slotStats = lowerProgramToSlots(prog, out.code, out.machine);
    BufferAllocOptions ba;
    ba.bufferOps = 256;
    out.bufferAlloc = allocateLoopBuffers(prog, out.code, ba);
    out.code.link();
    out.scheduledOps = out.code.sizeOps();
}

struct AblationRow
{
    const char *name;
    double buf = 0;
    std::uint64_t cycles = 0;
};

AblationRow
runKnobs(const char *name, const AblationKnobs &k)
{
    AblationRow row;
    row.name = name;
    for (const auto &w : benchNames()) {
        Program prog = workloads::buildWorkload(w);
        CompileResult cr;
        compileAblated(prog, k, cr);
        SimConfig sc;
        sc.bufferOps = 256;
        VliwSim sim(cr.code, sc);
        const SimStats st = sim.run();
        LBP_ASSERT(st.checksum == cr.goldenChecksum,
                   "ablation checksum mismatch for ", w);
        row.buf += st.bufferFraction();
        row.cycles += st.cycles;
    }
    row.buf /= benchNames().size();
    return row;
}

void
encodingStudy()
{
    std::printf("\n=== Encoding cost (section 4): bits per operation "
                "===\n");
    std::printf("%-12s %10s %12s %14s %14s\n", "benchmark", "ops",
                "plain(32b)", "+guard(3b)", "+p-bit(1b)");
    rule();
    long long totalOps = 0;
    for (const auto &w : benchNames()) {
        auto &cr = compileBench(w, OptLevel::Aggressive);
        const long long ops = cr.scheduledOps;
        totalOps += ops;
        std::printf("%-12s %10lld %12lld %14lld %14lld\n", w.c_str(),
                    ops, ops * 32,
                    ops * (32 + Machine::guardFieldBits(8)),
                    ops * (32 + 1));
    }
    rule();
    std::printf("Full predication with 8 predicate registers costs "
                "%d extra bits per op\n(halving the addressable "
                "register space in a 3-operand format, section 4);\n"
                "the slot scheme costs 1 bit: %.1f%% vs %.1f%% "
                "encoding growth over %lld ops.\n",
                Machine::guardFieldBits(8),
                100.0 * Machine::guardFieldBits(8) / 32.0,
                100.0 * 1.0 / 32.0, totalOps);
}

} // namespace

int
main()
{
    std::printf("=== Ablation: per-transform contribution "
                "(256-op buffer, 11-benchmark means) ===\n\n");
    std::printf("%-18s %12s %14s\n", "configuration", "buffer-issue",
                "total-cycles");
    rule();

    const AblationKnobs all;
    const AblationRow base = runKnobs("full aggressive", all);
    auto report = [&](const AblationRow &r) {
        std::printf("%-18s %11.1f%% %14llu  (%+5.1f%% cycles)\n",
                    r.name, 100.0 * r.buf,
                    (unsigned long long)r.cycles,
                    100.0 * (static_cast<double>(r.cycles) /
                                 base.cycles -
                             1.0));
    };
    report(base);

    AblationKnobs k;
    k = all; k.ifConvert = false;
    report(runKnobs("- if-convert", k));
    k = all; k.peel = false;
    report(runKnobs("- peel", k));
    k = all; k.collapse = false;
    report(runKnobs("- collapse", k));
    k = all; k.branchCombine = false;
    report(runKnobs("- branch-combine", k));
    k = all; k.promote = false;
    report(runKnobs("- promote", k));
    k = all; k.modulo = false;
    report(runKnobs("- modulo-sched", k));
    k = all; k.inlineCalls = false;
    report(runKnobs("- inlining", k));

    std::printf("\n=== Branch-penalty sensitivity (aggressive, "
                "256-op buffer) ===\n");
    std::printf("%-10s %14s %14s\n", "penalty", "trad-cycles",
                "aggr-cycles");
    rule();
    for (int pen : {3, 4, 5, 8}) {
        std::uint64_t ct = 0, ca = 0;
        for (const auto &w : benchNames()) {
            auto &trad = compileBench(w, OptLevel::Traditional);
            auto &aggr = compileBench(w, OptLevel::Aggressive);
            SimConfig sc;
            sc.bufferOps = 256;
            sc.branchPenalty = pen;
            VliwSim st(trad.code, sc), sa(aggr.code, sc);
            ct += st.run().cycles;
            ca += sa.run().cycles;
        }
        std::printf("%-10d %14llu %14llu  (speedup %.2f)\n", pen,
                    (unsigned long long)ct, (unsigned long long)ca,
                    static_cast<double>(ct) / ca);
    }

    encodingStudy();

    std::printf("\n=== Future-work extensions (papers 7.1/7.3) ===\n");
    // Rotating registers: mpg123's MVE-inflated images shrink.
    {
        Program prog = workloads::buildWorkload("mpg123");
        CompileOptions plain;
        CompileResult a;
        compileProgram(prog, plain, a);
        CompileOptions rot;
        rot.rotatingRegisters = true;
        CompileResult b;
        compileProgram(prog, rot, b);
        std::printf("%-34s %10s %12s\n", "mpg123 (rotating registers)",
                    "buf-issue", "image-ops");
        for (int size : {256, 512, 1024, 2048}) {
            reallocateBuffers(a, size);
            reallocateBuffers(b, size);
            SimConfig sc;
            sc.bufferOps = size;
            VliwSim sa(a.code, sc), sb(b.code, sc);
            const auto ra = sa.run();
            const auto rb = sb.run();
            std::printf("  %4d ops: %5.1f%% -> %5.1f%%\n", size,
                        100.0 * ra.bufferFraction(),
                        100.0 * rb.bufferFraction());
        }
    }
    // Predicate activation queue: fewer register-file fallbacks.
    {
        int longPlain = 0, longQ = 0, queued = 0;
        for (const auto &w : benchNames()) {
            Program prog = workloads::buildWorkload(w);
            CompileOptions plain;
            CompileResult a;
            compileProgram(prog, plain, a);
            CompileOptions q;
            q.predQueueDepth = 2;
            CompileResult b;
            compileProgram(prog, q, b);
            longPlain += a.slotStats.predsRangeTooLong;
            longQ += b.slotStats.predsRangeTooLong;
            queued += b.slotStats.predsQueued;
        }
        std::printf("predicate queue (depth 2): range-fallbacks "
                    "%d -> %d, %d predicates queued\n",
                    longPlain, longQ, queued);
    }
    return 0;
}
