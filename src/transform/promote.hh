/**
 * @file
 * Predicate promotion (paper §4.3): removal of the guard from an
 * operation that may safely execute when its predicate is false. This
 * shortens predicate live ranges (key for the slot-based scheme's one
 * predicate per slot) and reduces the fraction of operations that need
 * the sensitivity bit. Promoted potentially-excepting operations
 * (loads) are marked speculative; the machine provides non-faulting
 * speculative forms for everything except stores.
 */

#ifndef LBP_TRANSFORM_PROMOTE_HH
#define LBP_TRANSFORM_PROMOTE_HH

#include "ir/program.hh"

namespace lbp
{

struct PromoteStats
{
    int promoted = 0;
    int speculativeLoads = 0;
};

/**
 * Promote guarded operations in every block of @p fn. An op guarded
 * by p writing register r is promoted when:
 *  - it is not a store, branch, call, or predicate define,
 *  - it is not a potentially-excepting DIV/REM,
 *  - every in-block reader of the value it produces is itself guarded
 *    by p (the spurious value is consumed only by nullified ops), and
 *  - if no later in-block write of r exists, r is not live out of the
 *    block (the spurious value cannot escape).
 */
PromoteStats promoteOperations(Function &fn);

/** Program-wide driver. */
PromoteStats promoteOperations(Program &prog);

} // namespace lbp

#endif // LBP_TRANSFORM_PROMOTE_HH
