#include "transform/branch_combine.hh"

#include <set>

#include "analysis/liveness.hh"
#include "analysis/loop_info.hh"
#include "obs/loop_report.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

bool
combineInBlock(Function &fn, BlockId blkId,
               const BranchCombineOptions &opts,
               BranchCombineStats &st, obs::LoopDecisionLog *log)
{
    BasicBlock &bb = fn.blocks[blkId];
    Liveness live(fn);

    auto reject = [&](std::string note) {
        if (log) {
            obs::LoopAttempt a;
            a.transform = "branch_combine";
            a.reason = obs::LoopReason::NotProfitable;
            a.opsBefore = a.opsAfter = bb.sizeOps();
            a.note = std::move(note);
            log->addAttempt(fn.name + "/" + bb.name, std::move(a));
        }
        return false;
    };

    // Candidate exits: guarded JUMP ops that are not the final
    // backedge/terminator.
    struct Exit
    {
        size_t idx;
        PredId guard;
        BlockId target;
    };
    std::vector<Exit> exits;
    for (size_t i = 0; i + 1 < bb.ops.size(); ++i) {
        const Operation &op = bb.ops[i];
        if (op.op == Opcode::JUMP && op.hasGuard())
            exits.push_back({i, op.guard, op.target});
    }
    if (static_cast<int>(exits.size()) < opts.minExits) {
        return reject(std::to_string(exits.size()) + " side exit(s) < " +
                      std::to_string(opts.minExits));
    }

    // Eligibility per exit: between the exit's position and the end
    // of the block there must be (a) no stores/calls, (b) no writes to
    // registers live-in at the exit target, (c) no redefinition of the
    // exit predicate. We take the maximal eligible suffix of exits.
    auto eligibleFrom = [&](const Exit &e) {
        const std::set<RegId> &tgt_live = live.liveIn(e.target);
        for (size_t j = e.idx + 1; j < bb.ops.size(); ++j) {
            const Operation &op = bb.ops[j];
            if (isStore(op.op) || op.op == Opcode::CALL)
                return false;
            // Potentially-excepting ops would now execute while an
            // exit is pending; disallow unless already speculative.
            if ((op.op == Opcode::DIV || op.op == Opcode::REM) &&
                !op.speculative) {
                return false;
            }
            for (RegId d : Liveness::defs(op)) {
                if (tgt_live.count(d))
                    return false;
            }
            for (PredId p : Liveness::predDefs(op)) {
                if (p == e.guard)
                    return false;
            }
        }
        return true;
    };

    std::vector<Exit> combine;
    for (const Exit &e : exits) {
        if (eligibleFrom(e))
            combine.push_back(e);
    }
    if (static_cast<int>(combine.size()) < opts.minExits) {
        return reject(std::to_string(combine.size()) +
                      " eligible exit(s) < " +
                      std::to_string(opts.minExits));
    }

    // Summary predicate ps, cleared at block top, or'd wherever an
    // exit predicate is produced. We or at the exit's position: an
    // ot-define guarded on the exit predicate with a TRUE condition.
    const PredId ps = fn.newPred();

    std::set<size_t> removeIdx;
    for (const Exit &e : combine)
        removeIdx.insert(e.idx);

    std::vector<Operation> out;
    {
        Operation clr = makePredDef(PredDefKind::UT, ps,
                                    PredDefKind::NONE, 0,
                                    CmpCond::FALSE_, Operand::imm(0),
                                    Operand::imm(0));
        clr.id = fn.newOpId();
        out.push_back(std::move(clr));
    }
    for (size_t i = 0; i < bb.ops.size(); ++i) {
        if (removeIdx.count(i)) {
            // Replace the exit with its summary contribution.
            Operation orp = makePredDef(PredDefKind::OT, ps,
                                        PredDefKind::NONE, 0,
                                        CmpCond::TRUE_, Operand::imm(0),
                                        Operand::imm(0));
            orp.guard = bb.ops[i].guard;
            orp.id = fn.newOpId();
            out.push_back(std::move(orp));
            continue;
        }
        out.push_back(bb.ops[i]);
    }

    // Decode block: test the preserved exit predicates in original
    // order; the last jump is unguarded (if the summary fired, some
    // exit predicate is true, so control never falls past it).
    const BlockId decode = fn.newBlock(bb.name + ".decode");
    {
        BasicBlock &dec = fn.blocks[decode];
        for (size_t i = 0; i < combine.size(); ++i) {
            Operation j = makeJump(combine[i].target);
            if (i + 1 < combine.size())
                j.guard = combine[i].guard;
            j.id = fn.newOpId();
            dec.ops.push_back(std::move(j));
        }
    }

    // Summary jump immediately before the terminator.
    {
        Operation sj = makeJump(decode);
        sj.guard = ps;
        sj.id = fn.newOpId();
        BasicBlock &nb = fn.blocks[blkId];
        nb.ops = std::move(out);
        if (!nb.ops.empty() && (nb.ops.back().isBranchOp())) {
            nb.ops.insert(nb.ops.end() - 1, std::move(sj));
        } else {
            nb.ops.push_back(std::move(sj));
        }
    }

    st.exitsCombined += static_cast<int>(combine.size());
    ++st.loopsCombined;
    if (log) {
        // NB: `bb` may dangle after newBlock; re-index.
        const BasicBlock &nb2 = fn.blocks[blkId];
        obs::LoopAttempt a;
        a.transform = "branch_combine";
        a.applied = true;
        a.opsBefore = a.opsAfter = nb2.sizeOps();
        a.note = std::to_string(combine.size()) + " exits combined";
        log->addAttempt(fn.name + "/" + nb2.name, std::move(a));
    }
    return true;
}

} // namespace

BranchCombineStats
combineBranches(Function &fn, const BranchCombineOptions &opts,
                obs::LoopDecisionLog *log)
{
    BranchCombineStats st;
    LoopInfo li(fn);
    for (const auto &loop : li.loops()) {
        if (!li.isSimple(loop.index))
            continue;
        if (!fn.blocks[loop.header].isHyperblock)
            continue;
        combineInBlock(fn, loop.header, opts, st, log);
    }
    return st;
}

BranchCombineStats
combineBranches(Program &prog, const BranchCombineOptions &opts,
                obs::LoopDecisionLog *log)
{
    BranchCombineStats st;
    for (auto &fn : prog.functions) {
        auto s = combineBranches(fn, opts, log);
        st.loopsCombined += s.loopsCombined;
        st.exitsCombined += s.exitsCombined;
    }
    return st;
}

} // namespace lbp
