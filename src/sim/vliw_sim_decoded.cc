/**
 * @file
 * Untraced (production) instantiation of the decoded fast-path
 * executor, plus the dispatcher that picks a stamp per call. The
 * executor body lives in vliw_sim_decoded_body.hh; the Traced=true
 * stamp is built in vliw_sim_decoded_traced.cc so this TU's inliner
 * sees exactly one copy of the hot loop (see the body header's doc
 * comment for why that matters).
 */

#include "sim/vliw_sim_decoded_body.hh"

namespace lbp
{

#if LBP_TRACE
// Built in vliw_sim_decoded_traced.cc; keep it out of this TU.
extern template std::vector<std::int64_t>
VliwSim::callFunctionDecodedImpl<true>(
    FuncId f, const std::vector<std::int64_t> &args);
#endif

template std::vector<std::int64_t>
VliwSim::callFunctionDecodedImpl<false>(
    FuncId f, const std::vector<std::int64_t> &args);

std::vector<std::int64_t>
VliwSim::callFunctionDecoded(FuncId f,
                             const std::vector<std::int64_t> &args)
{
#if LBP_TRACE
    // opProf rides the Traced stamp (where trace replay never
    // engages) so the production hot loop stays free of timing code;
    // without the traced TU the flag degrades to a plain run.
    if (cfg_.trace
#if LBP_PROF
        || cfg_.opProf
#endif
    )
        return callFunctionDecodedImpl<true>(f, args);
#endif
    return callFunctionDecodedImpl<false>(f, args);
}

} // namespace lbp
