/**
 * @file
 * Self-contained HTML flight-recorder report: one file, zero external
 * fetches (no scripts, no fonts, no stylesheet links — everything is
 * inline CSS and inline SVG), so it can be archived as a CI artifact
 * and opened years later.
 *
 * Sections (each carries a stable element id the golden-structure CLI
 * test keys on):
 *
 *   #meta          run identity: workload, git SHA, schema versions,
 *                  registry meta block
 *   #gate          the history-check verdict banner (when a check
 *                  report is supplied)
 *   #trajectories  per-metric sparkline SVGs across the history
 *                  store, grouped by record source
 *   #metrics       the current run's full registry table, grouped by
 *                  metric prefix
 *   #histograms    p50/p95/p99 plus an inline bin-bar SVG per
 *                  registry histogram
 *   #scorecard     the per-loop scorecard: fate, rejection reason,
 *                  dynamics, missed-ops pricing, transform attempts
 *   #phases        the compile-pipeline phase-timer breakdown as a
 *                  horizontal bar chart
 *   #prof          "where the host cycles go": the sampling
 *                  self-profiler's region split for the run that
 *                  produced this report, as a bar chart
 *   #pmu           host hardware counters (perf_event_open) per
 *                  region for the same run: cycle share bars with
 *                  IPC / branch-miss / cache-miss annotations, or an
 *                  explicit unavailability note with the reason
 */

#ifndef LBP_OBS_REPORT_HH
#define LBP_OBS_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/history.hh"
#include "obs/json.hh"

namespace lbp
{
namespace obs
{

struct ReportData
{
    std::string workload;
    Json registryDoc;   ///< Registry::toJson() of the current run
    Json scorecard;     ///< scorecardToJson() (Null to omit)
    Json check;         ///< CheckReport::toJson() (Null to omit)
    Json prof;          ///< self-profile snapshot (Null to omit):
                        ///< {samples, untracked, dropped,
                        ///<  attributed_fraction, regions:{label:n}}
    Json pmu;           ///< pmu::snapshotJson() (Null to omit):
                        ///< {available, reason | counters, regions,
                        ///<  untracked, total,
                        ///<  attributedCycleFraction}
    std::vector<HistoryRecord> history; ///< full store, all sources
    std::string historyPath; ///< display only ("" when no store)
};

/** Render the report. The output is pure HTML5 + inline SVG. */
void writeHtmlReport(std::ostream &os, const ReportData &data);

/** Escape text for HTML element/attribute content. */
std::string htmlEscape(const std::string &s);

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_REPORT_HH
