/**
 * @file
 * Reassociation (height reduction) tests: accumulator chains, fresh
 * intermediate chains, guard handling, rejection cases, recurrence
 * shortening, and random-program equivalence.
 */

#include <gtest/gtest.h>

#include "analysis/dependence.hh"
#include "analysis/loop_info.hh"
#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "support/random.hh"
#include "transform/reassociate.hh"

namespace lbp
{
namespace
{

auto R = [](RegId r) { return Operand::reg(r); };
auto I = [](std::int64_t v) { return Operand::imm(v); };

TEST(Reassociate, AccumulatorChainRebalanced)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    Function &fn = prog.functions[f];
    std::vector<RegId> in;
    for (int i = 0; i < 8; ++i)
        in.push_back(fn.newReg());
    fn.params = in;
    fn.numReturns = 1;
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    RegId acc = b.mov(R(in[0]));
    for (int i = 1; i < 8; ++i)
        b.addTo(acc, R(acc), R(in[i]));
    b.ret({R(acc)});

    Interpreter pre(prog);
    const std::vector<std::int64_t> args{1, 2, 3, 4, 5, 6, 7, 8};
    const auto before = pre.run(args);

    auto st = reassociate(fn);
    EXPECT_EQ(st.chainsRebalanced, 1);
    EXPECT_EQ(st.opsInChains, 7);
    verifyOrDie(fn);
    Interpreter post(prog);
    EXPECT_EQ(post.run(args).returns, before.returns);

    // Height check: the dependence height of the block shrinks from
    // ~7 to ~log2(8)=3 (+1 for the mov).
    const BasicBlock &bb = fn.blocks[fn.entry];
    DepGraph dg(bb, false);
    int h = 0;
    for (int x : dg.heights())
        h = std::max(h, x);
    EXPECT_LE(h, 5);
}

TEST(Reassociate, ShortensLoopRecurrence)
{
    Program prog;
    prog.allocData(1024);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(0);
    const RegId acc = b.iconst(0);
    const BlockId head = b.forLoop(0, 32, 1, [&](RegId i) {
        const RegId i4 = b.shl(R(b.and_(R(i), I(200))), I(2));
        const RegId v0 = b.loadW(R(dp), R(i4));
        // Serial accumulator chain: acc += v0; acc += i; acc += 3;
        // acc += v0>>1;
        b.addTo(acc, R(acc), R(v0));
        b.addTo(acc, R(acc), R(i));
        b.addTo(acc, R(acc), I(3));
        const RegId h = b.shra(R(v0), I(1));
        b.addTo(acc, R(acc), R(h));
    });
    b.ret({R(acc)});
    Function &fn = prog.functions[f];

    const int recBefore = DepGraph(fn.blocks[head], true).recMII();
    Interpreter pre(prog);
    const auto before = pre.run();
    auto st = reassociate(fn);
    ASSERT_GE(st.chainsRebalanced, 1);
    const int recAfter = DepGraph(fn.blocks[head], true).recMII();
    EXPECT_LT(recAfter, recBefore);
    Interpreter post(prog);
    EXPECT_EQ(post.run().returns, before.returns);
}

TEST(Reassociate, MinMaxAndBitwiseChains)
{
    for (Opcode oc : {Opcode::MIN, Opcode::MAX, Opcode::AND,
                      Opcode::OR, Opcode::XOR, Opcode::MUL}) {
        Program prog;
        const FuncId f = prog.newFunction("main");
        prog.entryFunc = f;
        IRBuilder b(prog, f);
        RegId acc = b.iconst(13);
        const std::int64_t ks[] = {29, -7, 101, 5, 64};
        for (std::int64_t k : ks) {
            // Mix a register in so constant folding can't collapse
            // everything first.
            const RegId t = b.add(R(acc), I(0)); // copy barrier
            (void)t;
            b.binTo(oc, acc, R(acc), I(k));
        }
        b.ret({R(acc)});
        Interpreter pre(prog);
        const auto before = pre.run();
        reassociate(prog.functions[f]);
        verifyOrDie(prog.functions[f]);
        Interpreter post(prog);
        EXPECT_EQ(post.run().returns, before.returns)
            << opcodeName(oc);
    }
}

TEST(Reassociate, InterleavedReaderBlocksChain)
{
    // A second reader of an intermediate makes rebalancing unsafe.
    Program prog;
    prog.allocData(64);
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const RegId dp = b.iconst(0);
    const RegId a = b.iconst(2);
    const RegId t1 = b.add(R(a), I(3));
    b.storeW(R(dp), I(0), R(t1)); // extra reader of t1
    const RegId t2 = b.add(R(t1), I(4));
    const RegId t3 = b.add(R(t2), I(5));
    b.ret({R(t3)});
    auto st = reassociate(prog.functions[f]);
    EXPECT_EQ(st.chainsRebalanced, 0);
}

TEST(Reassociate, SatAddNotTouched)
{
    // Saturating addition is not associative; the chain must stay.
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    RegId acc = b.iconst(30000);
    for (int i = 0; i < 4; ++i)
        b.binTo(Opcode::SATADD, acc, R(acc), I(5000));
    b.ret({R(acc)});
    auto st = reassociate(prog.functions[f]);
    EXPECT_EQ(st.chainsRebalanced, 0);
    Interpreter interp(prog);
    EXPECT_EQ(interp.run().returns[0], 32767);
}

TEST(Reassociate, GuardedChainKeepsGuard)
{
    Program prog;
    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    const PredId p = b.newPred();
    b.predDef(PredDefKind::UT, p, CmpCond::FALSE_, I(0), I(0));
    RegId acc = b.iconst(100);
    for (int i = 0; i < 4; ++i) {
        Operation o = makeBinary(Opcode::ADD, acc, R(acc), I(1));
        o.guard = p;
        b.emit(o);
    }
    b.ret({R(acc)});
    reassociate(prog.functions[f]);
    Interpreter interp(prog);
    // Guard is false: none of the adds execute, rebalanced or not.
    EXPECT_EQ(interp.run().returns[0], 100);
}

TEST(Reassociate, RandomEquivalence)
{
    Rng rng(20260706);
    for (int trial = 0; trial < 40; ++trial) {
        Program prog;
        const auto data = prog.allocData(256);
        prog.checksumBase = data;
        prog.checksumSize = 256;
        const FuncId f = prog.newFunction("main");
        prog.entryFunc = f;
        IRBuilder b(prog, f);
        const RegId dp = b.iconst(data);
        std::vector<RegId> pool{b.iconst(rng.nextRange(-9, 9)),
                                b.iconst(rng.nextRange(1, 9))};
        const Opcode assoc[] = {Opcode::ADD, Opcode::XOR, Opcode::AND,
                                Opcode::OR, Opcode::MIN, Opcode::MAX};
        const int n = 8 + static_cast<int>(rng.nextBelow(40));
        RegId acc = b.iconst(0);
        for (int i = 0; i < n; ++i) {
            const double roll = rng.nextDouble();
            const RegId a = pool[rng.nextBelow(pool.size())];
            if (roll < 0.55) {
                // Grow a chain on acc.
                b.binTo(assoc[rng.nextBelow(6)], acc, R(acc), R(a));
            } else if (roll < 0.7) {
                pool.push_back(
                    b.add(R(a), I(rng.nextRange(-5, 5))));
            } else if (roll < 0.8) {
                b.storeW(R(dp),
                         I(4 * static_cast<int>(rng.nextBelow(32))),
                         R(acc));
            } else {
                pool.push_back(b.xor_(R(a), R(acc)));
            }
        }
        b.storeW(R(dp), I(128), R(acc));
        b.ret({R(acc)});

        Interpreter pre(prog);
        const auto before = pre.run();
        reassociate(prog.functions[f]);
        verifyOrDie(prog.functions[f]);
        Interpreter post(prog);
        const auto after = post.run();
        EXPECT_EQ(before.checksum, after.checksum)
            << "trial " << trial;
        EXPECT_EQ(before.returns, after.returns) << "trial " << trial;
    }
}

} // namespace
} // namespace lbp
