/**
 * @file
 * Workload-construction tests: every Table-1 benchmark builds, passes
 * the verifier, runs deterministically, and exhibits the structural
 * property it was designed to carry (diamonds for if-conversion,
 * collapse shapes, variable-trip nests, ...).
 */

#include <gtest/gtest.h>

#include "analysis/loop_info.hh"
#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "workloads/registry.hh"
#include "workloads/workloads.hh"

namespace lbp
{
namespace
{

TEST(Workloads, RegistryComplete)
{
    const auto all = workloads::allWorkloads();
    ASSERT_EQ(all.size(), 11u); // Table 1
    EXPECT_EQ(all.front().name, "adpcm_enc");
    EXPECT_EQ(all.back().name, "pgp_dec");
}

TEST(Workloads, UnknownNameThrows)
{
    EXPECT_THROW(workloads::buildWorkload("nope"), std::runtime_error);
}

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, BuildsVerifiesRuns)
{
    Program prog = workloads::buildWorkload(GetParam());
    EXPECT_EQ(prog.name, GetParam());
    verifyOrDie(prog);
    ASSERT_GT(prog.checksumSize, 0);

    Interpreter interp(prog);
    const auto r1 = interp.run();
    EXPECT_GT(r1.dynOps, 10'000u) << "workload too small to measure";

    // Determinism: rebuilding + rerunning yields the same checksum.
    Program prog2 = workloads::buildWorkload(GetParam());
    Interpreter interp2(prog2);
    const auto r2 = interp2.run();
    EXPECT_EQ(r1.checksum, r2.checksum);
    EXPECT_EQ(r1.dynOps, r2.dynOps);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, WorkloadTest,
    ::testing::Values("adpcm_enc", "adpcm_dec", "g724_enc", "g724_dec",
                      "jpeg_enc", "jpeg_dec", "mpeg2_enc", "mpeg2_dec",
                      "mpg123", "pgp_enc", "pgp_dec"));

TEST(Workloads, AdpcmHasControlFlowLoops)
{
    Program prog = workloads::buildAdpcmEnc();
    // The coder's loop must be multi-block (diamonds inside).
    const FuncId coder = prog.findFunction("adpcm_coder");
    ASSERT_NE(coder, kNoFunc);
    LoopInfo li(prog.functions[coder]);
    ASSERT_GE(li.loops().size(), 1u);
    bool multi = false;
    for (const auto &l : li.loops())
        multi |= l.blocks.size() > 2;
    EXPECT_TRUE(multi);
}

TEST(Workloads, PostFilterHasTwelveInnerLoops)
{
    Program prog = workloads::buildPostFilterOnly();
    const FuncId pf = prog.findFunction("post_filter");
    ASSERT_NE(pf, kNoFunc);
    LoopInfo li(prog.functions[pf]);
    int inner = 0;
    for (const auto &l : li.loops())
        inner += l.parent >= 0 || l.depth > 1;
    // Twelve inner loops under the subframe loop (C and J carry
    // diamonds so their bodies span several blocks each).
    int topLevel = 0;
    for (const auto &l : li.loops())
        topLevel += l.depth == 1;
    EXPECT_EQ(topLevel, 1);
    EXPECT_GE(static_cast<int>(li.loops().size()), 13);
}

TEST(Workloads, MpegAddBlockIsCollapseShape)
{
    Program prog = workloads::buildMpeg2Dec();
    const FuncId f = prog.findFunction("add_block");
    ASSERT_NE(f, kNoFunc);
    LoopInfo li(prog.functions[f]);
    ASSERT_EQ(li.loops().size(), 2u);
    const int innerIdx = li.loops()[0].depth == 2 ? 0 : 1;
    const Loop &inner = li.loops()[innerIdx];
    EXPECT_TRUE(inner.induction.valid);
    EXPECT_EQ(inner.induction.constTrip, 8);
}

TEST(Workloads, JpegEncoderHasVariableTripLoop)
{
    Program prog = workloads::buildJpegEnc();
    const FuncId f = prog.findFunction("rle_encode");
    ASSERT_NE(f, kNoFunc);
    LoopInfo li(prog.functions[f]);
    bool variableTrip = false;
    for (const auto &l : li.loops()) {
        if (!l.induction.valid || l.induction.constTrip < 0)
            variableTrip = true;
    }
    EXPECT_TRUE(variableTrip);
}

TEST(Workloads, Mpg123HasManyDistinctKernels)
{
    Program prog = workloads::buildMpg123();
    int windows = 0;
    for (const auto &fn : prog.functions)
        windows += fn.name.rfind("synth_win_", 0) == 0;
    EXPECT_GE(windows, 16);
}

TEST(Workloads, PgpRoundTripsThroughCipher)
{
    // Decoding the encoder's output with the same keystream must
    // recover the plaintext (CFB is an XOR stream).
    Program enc = workloads::buildPgpEnc();
    Interpreter ie(enc);
    const auto re = ie.run();
    EXPECT_NE(re.checksum, 0u);
    Program dec = workloads::buildPgpDec();
    Interpreter id(dec);
    const auto rd = id.run();
    EXPECT_NE(rd.checksum, re.checksum);
}

} // namespace
} // namespace lbp
