/**
 * @file
 * Loop attribution tests: LoopDecisionLog semantics, the
 * scorecard join between compiler decisions and simulator residency,
 * and the attribution invariant (per-loop buffer ops integrate to
 * SimStats::opsFromBuffer) in both engines on every workload.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/compiler.hh"
#include "obs/loop_report.hh"
#include "obs/registry.hh"
#include "power/fetch_energy.hh"
#include "sim/vliw_sim.hh"
#include "workloads/registry.hh"

namespace lbp
{
namespace
{

using obs::LoopAttempt;
using obs::LoopDecisionLog;
using obs::LoopFate;
using obs::LoopReason;

LoopAttempt
attempt(const std::string &transform, bool applied, LoopReason reason,
        int before, int after, const std::string &note = "")
{
    LoopAttempt a;
    a.transform = transform;
    a.applied = applied;
    a.reason = reason;
    a.opsBefore = before;
    a.opsAfter = after;
    a.note = note;
    return a;
}

TEST(LoopDecisionLog, DecisionIsFindOrCreateInOrder)
{
    LoopDecisionLog log;
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(log.find("f/a"), nullptr);

    log.decision("f/b").fate = LoopFate::Buffered;
    log.decision("f/a").fate = LoopFate::Rejected;
    log.decision("f/b").reason = LoopReason::None;

    ASSERT_EQ(log.decisions().size(), 2u);
    // Creation order, not name order.
    EXPECT_EQ(log.decisions()[0].name, "f/b");
    EXPECT_EQ(log.decisions()[1].name, "f/a");
    ASSERT_NE(log.find("f/b"), nullptr);
    EXPECT_EQ(log.find("f/b")->fate, LoopFate::Buffered);
}

TEST(LoopDecisionLog, RepeatVerdictRefreshesInsteadOfDuplicating)
{
    LoopDecisionLog log;
    // A fixpoint driver judging the same loop three times: twice the
    // same verdict (second refreshes), once a different one (appends).
    log.addAttempt("f/loop", attempt("if_convert", false,
                                     LoopReason::TooLarge, 40, 40));
    log.addAttempt("f/loop", attempt("if_convert", false,
                                     LoopReason::TooLarge, 44, 44,
                                     "second pass"));
    log.addAttempt("f/loop", attempt("if_convert", true,
                                     LoopReason::None, 44, 39));

    const obs::LoopDecision *d = log.find("f/loop");
    ASSERT_NE(d, nullptr);
    ASSERT_EQ(d->attempts.size(), 2u);
    EXPECT_FALSE(d->attempts[0].applied);
    EXPECT_EQ(d->attempts[0].opsBefore, 44);       // refreshed
    EXPECT_EQ(d->attempts[0].note, "second pass"); // refreshed
    EXPECT_TRUE(d->attempts[1].applied);
    EXPECT_EQ(d->attempts[1].opsAfter, 39);
}

TEST(LoopReport, ReasonAndFateNamesAreClosed)
{
    EXPECT_STREQ(obs::loopReasonName(LoopReason::None), "none");
    EXPECT_STREQ(obs::loopReasonName(LoopReason::SchedFailed),
                 "SchedFailed");
    EXPECT_STREQ(obs::loopFateName(LoopFate::Buffered), "buffered");
    EXPECT_STREQ(obs::loopFateName(LoopFate::Eliminated),
                 "eliminated");
}

/** Compile + simulate helper for the join tests. */
SimStats
runWorkload(const std::string &name, CompileResult &cr, int bufferOps,
            SimEngine engine = SimEngine::REFERENCE,
            obs::CycleStack *csOut = nullptr,
            TraceCacheMode tcMode = TraceCacheMode::Auto)
{
    Program prog = workloads::buildWorkload(name);
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    compileProgram(prog, opts, cr);
    reallocateBuffers(cr, bufferOps);
    SimConfig sc;
    sc.bufferOps = bufferOps;
    sc.engine = engine;
    sc.traceCache = tcMode;
    VliwSim sim(cr.code, sc);
    SimStats st = sim.run();
    if (csOut)
        *csOut = sim.cycleStack();
    return st;
}

TEST(LoopScorecard, JoinCoversEveryLoopWithAFate)
{
    CompileResult cr;
    const SimStats st = runWorkload("adpcm_enc", cr, 256);
    const obs::LoopScorecard sc =
        obs::buildLoopScorecard("adpcm_enc", cr.loopLog, st, 256);

    EXPECT_EQ(sc.workload, "adpcm_enc");
    EXPECT_EQ(sc.bufferOps, 256);
    // Every simulator loop appears, plus the compiler-only rows.
    EXPECT_GE(sc.rows.size(), st.loops.size());

    std::uint64_t prev = UINT64_MAX;
    bool sawBuffered = false;
    for (const auto &row : sc.rows) {
        EXPECT_NE(row.fate, LoopFate::Unknown)
            << row.name << " left without a fate";
        // Ranked by dynamic ops, descending.
        EXPECT_LE(row.dynOps, prev);
        prev = row.dynOps;
        if (row.fate == LoopFate::Buffered) {
            sawBuffered = true;
            EXPECT_GE(row.bufAddr, 0) << row.name;
            EXPECT_EQ(row.missedOps, 0u) << row.name;
        }
        if (row.loopId >= 0) {
            ASSERT_LT(static_cast<std::size_t>(row.loopId),
                      st.loops.size());
            EXPECT_EQ(row.name, st.loops[row.loopId].name);
        }
    }
    EXPECT_TRUE(sawBuffered);
    EXPECT_EQ(obs::scorecardBufferOps(sc), st.opsFromBuffer);
}

TEST(LoopScorecard, AttributionInvariantBothEnginesAllWorkloads)
{
    // The acceptance invariants: sum of per-loop buffer-issued ops ==
    // SimStats::opsFromBuffer, and the cycle stack closed (sum over
    // classes == SimStats::cycles, per-loop rows integrating to the
    // workload stack), in both engines with the trace cache forced on
    // and off, on every registered workload (buildLoopScorecard
    // itself asserts both fatally; the EXPECTs repeat them as
    // test-visible checks).
    struct EngineConfig
    {
        SimEngine engine;
        TraceCacheMode tc;
        const char *what;
    };
    const EngineConfig configs[] = {
        {SimEngine::REFERENCE, TraceCacheMode::Auto, "reference"},
        {SimEngine::DECODED, TraceCacheMode::On, "decoded cache=on"},
        {SimEngine::DECODED, TraceCacheMode::Off,
         "decoded cache=off"},
    };
    for (const auto &w : workloads::allWorkloads()) {
        for (const EngineConfig &ec : configs) {
            CompileResult cr;
            obs::CycleStack cs;
            const SimStats st =
                runWorkload(w.name, cr, 256, ec.engine, &cs, ec.tc);
            const obs::LoopScorecard sc = obs::buildLoopScorecard(
                w.name, cr.loopLog, st, 256, nullptr, nullptr, &cs);
            EXPECT_EQ(obs::scorecardBufferOps(sc), st.opsFromBuffer)
                << w.name << " " << ec.what;
            EXPECT_TRUE(sc.hasCycles) << w.name << " " << ec.what;
            EXPECT_EQ(sc.totalCycles, st.cycles)
                << w.name << " " << ec.what
                << ": cycle stack is not closed";
            for (const auto &row : sc.rows)
                EXPECT_NE(row.fate, LoopFate::Unknown)
                    << w.name << "/" << row.name;
        }
    }
}

TEST(LoopScorecard, JsonAndPublishCarryTheJoin)
{
    CompileResult cr;
    const SimStats st = runWorkload("adpcm_dec", cr, 256);
    const FetchEnergy fe = computeFetchEnergy(st, 256);
    const obs::LoopScorecard sc = obs::buildLoopScorecard(
        "adpcm_dec", cr.loopLog, st, 256, &fe);

    const obs::Json j = obs::scorecardToJson(sc);
    ASSERT_NE(j.find("loops"), nullptr);
    EXPECT_EQ(j.find("loops")->items().size(), sc.rows.size());
    ASSERT_NE(j.find("workload"), nullptr);
    EXPECT_EQ(j.find("workload")->dump(), "\"adpcm_dec\"");

    obs::Registry reg;
    obs::publishScorecard(reg, sc);
    ASSERT_NE(reg.findInfo("loop.000.name"), nullptr);
    EXPECT_EQ(*reg.findInfo("loop.000.name"), sc.rows[0].name);
    ASSERT_NE(reg.findCounter("loop.000.dynOps"), nullptr);
    EXPECT_EQ(reg.findCounter("loop.000.dynOps")->value(),
              sc.rows[0].dynOps);

    // With energies supplied, buffered + rejected rows carry a share,
    // and shares sum to at most the workload total.
    double sum = 0;
    for (const auto &row : sc.rows)
        sum += row.energyNj;
    EXPECT_GT(sum, 0.0);
    EXPECT_LE(sum, fe.totalNj * (1 + 1e-9));

    // Printing is smoke-checked: header plus one line per row.
    std::ostringstream os;
    obs::printScorecard(os, sc);
    EXPECT_NE(os.str().find("loop scorecard: adpcm_dec"),
              std::string::npos);
}

} // namespace
} // namespace lbp
