/**
 * @file
 * lbp::obs::prof — a signal-driven sampling self-profiler for the
 * host process, answering "where do the *host* cycles go" (decoded
 * dispatch vs trace replay vs decode vs compile vs bench harness)
 * with the same attribution discipline the simulator applies to the
 * modeled loop buffer.
 *
 * Mechanism: RAII ScopedRegion markers in the hot layers push a
 * region id onto a small TLS stack. Each registered thread owns a
 * POSIX per-thread CPU-time timer (timer_create on the thread's CPU
 * clock, SIGEV_THREAD_ID → SIGPROF) so samples land on the thread
 * that is actually burning cycles; the SIGPROF handler packs the TLS
 * stack into a 64-bit path key and bumps a slot in the thread's
 * fixed-size lock-free sample table. Snapshots aggregate the tables
 * into labeled paths (collapsed-stack / flamegraph format) and
 * leaf-region counts.
 *
 * Signal-safety rules (DESIGN.md §13): the handler touches only the
 * owning thread's ThreadState — relaxed atomics with signal fences,
 * no locks, no allocation, no label strings. Thread states are
 * heap-allocated, registered once under a mutex, and never freed
 * (leak-by-design, bounded by peak thread count) so a snapshot can
 * outlive the threads it profiles.
 *
 * Overhead contract: compiled in by default (LBP_PROF=1) but
 * runtime-off until Profiler::start(); an idle ScopedRegion is two
 * relaxed stores. -DLBP_PROF=0 stubs out everything below, and the
 * profiler never writes any sim/registry counter in either mode, so
 * disabled runs are bit-identical — tests/test_obs_prof.cc proves it
 * the same way the LBP_TRACE untraced-TU discipline is proved.
 */

#ifndef LBP_OBS_PROF_HH
#define LBP_OBS_PROF_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/** Compile-time toggle: -DLBP_PROF=0 stubs out the whole profiler. */
#ifndef LBP_PROF
#define LBP_PROF 1
#endif

namespace lbp
{
namespace obs
{
namespace prof
{

/**
 * Static region tags for the hot layers. Values below Count are
 * compile-time; internRegion() hands out dynamic ids above it (e.g.
 * one per compile phase name).
 */
enum class Region : std::uint8_t
{
    None,         ///< empty stack — reported as "untracked"
    Compile,      ///< compileProgram pipeline
    Decode,       ///< buildDecodedImage / predecode
    SimDispatch,  ///< decoded executor general path
    SimReplay,    ///< trace-cache replay loop
    TraceBuild,   ///< trace-cache build + gating
    SimReference, ///< reference interpreter
    Bench,        ///< bench / CLI driver harness
    Count,        ///< first dynamic (interned) id
};

/** Region ids: static enumerators plus interned labels. */
constexpr std::size_t kMaxRegions = 64;
/** Stack levels encoded per sample path (deeper nests truncate). */
constexpr std::size_t kMaxPathDepth = 7;
/** Distinct paths recorded per thread before samples drop. */
constexpr std::size_t kPathTableSize = 64;
/** Default sampling rate; prime, to dodge lockstep with timers. */
constexpr unsigned kDefaultHz = 997;

/** Stable label for a static region ("simDispatch", "bench", ...). */
const char *regionName(Region r);

/** One sampled call path, outermost region first. */
struct PathCount
{
    std::vector<std::uint8_t> ids;
    std::string label;        ///< ids joined with ';' ("untracked" if empty)
    std::uint64_t count = 0;
};

/** Leaf-attributed (innermost region) sample total. */
struct RegionCount
{
    std::string label;
    std::uint64_t count = 0;
};

/** Aggregated sample state across all registered threads. */
struct Snapshot
{
    std::uint64_t samples = 0;   ///< recorded ticks (incl. untracked)
    std::uint64_t untracked = 0; ///< ticks with an empty region stack
    std::uint64_t dropped = 0;   ///< ticks lost to a full path table
    std::vector<PathCount> paths;     ///< count-descending
    std::vector<RegionCount> regions; ///< count-descending

    /** Recorded-in-named-region fraction of all ticks taken. */
    double attributedFraction() const
    {
        const std::uint64_t total = samples + dropped;
        if (total == 0)
            return 0.0;
        return static_cast<double>(samples - untracked) /
               static_cast<double>(total);
    }
};

/** flamegraph.pl input: one "a;b;c <count>" line per path. */
std::string collapsedStacks(const Snapshot &s);

/** True when the profiler is compiled in (LBP_PROF=1). */
inline bool
compiledIn()
{
    return LBP_PROF != 0;
}

/**
 * Raw cycle counter for rdtsc-windowed attribution (decoded-engine
 * per-ExecHandler profiling). Returns 0 on targets without a cheap
 * userspace counter — the windows then degenerate to zero and the
 * table simply reports nothing.
 */
inline std::uint64_t
tsc()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
    std::uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return 0;
#endif
}

/**
 * Region-transition observer: called by ScopedRegion with the new
 * innermost region id after every push and pop on the calling
 * thread. One consumer (obs/pmu reads hardware counters on each
 * transition); installing a second overwrites the first. The hook
 * runs on the transitioning thread, outside any profiler lock, and
 * must not construct ScopedRegions. When no hook is installed the
 * cost per transition is one relaxed load and a predicted branch.
 */
using RegionHook = void (*)(std::uint8_t innermost);

#if LBP_PROF

/** Install (or clear, with nullptr) the region-transition hook. */
void setRegionHook(RegionHook hook);

/**
 * Test-only: cap the SIGPROF handler's path-table probe at @p n
 * slots (0 restores kPathTableSize) so a unit test can force the
 * dropped-sample path without generating 64 distinct stacks.
 */
void setPathTableLimitForTest(std::size_t n);

/**
 * Intern @p label as a dynamic region id (idempotent per label).
 * Falls back to Region::None's id when the kMaxRegions table is
 * full. Never call from a signal handler.
 */
std::uint8_t internRegion(const std::string &label);

/** Label for any region id, static or interned. */
std::string regionLabel(std::uint8_t id);

/**
 * RAII region marker: pushes on construction, pops on destruction.
 * Cost when the profiler is idle: two relaxed TLS stores each way.
 * First use on a thread registers it with the profiler (and arms a
 * per-thread timer if sampling is already running).
 */
class ScopedRegion
{
  public:
    explicit ScopedRegion(Region r)
        : ScopedRegion(static_cast<std::uint8_t>(r))
    {
    }
    explicit ScopedRegion(std::uint8_t id);
    ~ScopedRegion();

    ScopedRegion(const ScopedRegion &) = delete;
    ScopedRegion &operator=(const ScopedRegion &) = delete;
};

/** Process-wide sampler control. All methods are thread-safe. */
class Profiler
{
  public:
    static Profiler &instance();

    /**
     * Install the SIGPROF handler and arm a CPU-time timer on every
     * registered thread (threads registering later are armed as they
     * appear). False if already running or the timers cannot be
     * created. Sample tables are reset on start.
     */
    bool start(unsigned hz = kDefaultHz);

    /** Disarm and delete all timers; tables keep their samples. */
    void stop();

    bool running() const;

    /** Zero every thread's sample table (interned labels survive). */
    void reset();

    /** Aggregate all threads' tables; callable while running. */
    Snapshot snapshot() const;

  private:
    Profiler() = default;
};

#else // !LBP_PROF — inert stubs, byte-identical call sites

inline void
setRegionHook(RegionHook)
{
}

inline void
setPathTableLimitForTest(std::size_t)
{
}

inline std::uint8_t
internRegion(const std::string &)
{
    return 0;
}

inline std::string
regionLabel(std::uint8_t)
{
    return std::string();
}

class ScopedRegion
{
  public:
    explicit ScopedRegion(Region) {}
    explicit ScopedRegion(std::uint8_t) {}
    ScopedRegion(const ScopedRegion &) = delete;
    ScopedRegion &operator=(const ScopedRegion &) = delete;
};

class Profiler
{
  public:
    static Profiler &
    instance()
    {
        static Profiler p;
        return p;
    }
    bool start(unsigned = kDefaultHz) { return false; }
    void stop() {}
    bool running() const { return false; }
    void reset() {}
    Snapshot snapshot() const { return {}; }

  private:
    Profiler() = default;
};

#endif // LBP_PROF

} // namespace prof
} // namespace obs
} // namespace lbp

#endif // LBP_OBS_PROF_HH
