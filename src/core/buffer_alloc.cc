#include "core/buffer_alloc.hh"

#include <algorithm>
#include <map>

#include "obs/loop_report.hh"
#include "support/logging.hh"

namespace lbp
{

namespace
{

/** A candidate loop: the REC op location plus its image and profit. */
struct Candidate
{
    FuncId func;
    BlockId recBlock;
    size_t recOpIdx;   ///< index into the IR block's ops
    BlockId body;
    int imageOps;
    double benefit;
    std::string name;
};

/** Is @p target a simple hardware-loop body in the scheduled code? */
bool
isBufferableBody(const Function &fn, const SchedProgram &code,
                 BlockId target)
{
    if (target >= fn.blocks.size() || fn.blocks[target].dead)
        return false;
    const SchedBlock &sb = code.functions[fn.id].blocks[target];
    if (!sb.valid || sb.bundles.empty())
        return false;
    const BasicBlock &bb = fn.blocks[target];
    const Operation *term = bb.terminator();
    if (!term)
        return false;
    if (term->op != Opcode::BR_CLOOP && term->op != Opcode::BR_WLOOP)
        return false;
    return term->target == target;
}

} // namespace

BufferAllocResult
allocateLoopBuffers(Program &prog, SchedProgram &code,
                    const BufferAllocOptions &opts,
                    obs::LoopDecisionLog *log)
{
    BufferAllocResult res;
    const int cap = opts.bufferOps;

    // Terminal verdict writer: assignment-only so re-allocation for a
    // different buffer size replaces the verdict cleanly.
    auto decide = [&](const std::string &name, obs::LoopFate fate,
                      obs::LoopReason reason, int imageOps, int addr,
                      double benefit) {
        if (!log)
            return;
        obs::LoopDecision &d = log->decision(name);
        d.fate = fate;
        d.reason = reason;
        d.finalOps = imageOps;
        d.bufAddr = addr;
        d.bufferCapacity = cap;
        d.estDynOps = benefit;
    };

    // Collect candidates from REC/EXEC ops in the IR.
    std::vector<Candidate> cands;
    for (auto &fn : prog.functions) {
        for (auto &bb : fn.blocks) {
            if (bb.dead)
                continue;
            for (size_t oi = 0; oi < bb.ops.size(); ++oi) {
                Operation &op = bb.ops[oi];
                if (!isBufferOp(op.op))
                    continue;
                // Reset any previous allocation.
                op.bufAddr = -1;
                op.numOps = 0;
                if (!isBufferableBody(fn, code, op.target)) {
                    if (op.target < fn.blocks.size() &&
                        !fn.blocks[op.target].dead) {
                        decide(fn.name + "/" +
                                   fn.blocks[op.target].name,
                               obs::LoopFate::Rejected,
                               obs::LoopReason::NotSimple, 0, -1,
                               0.0);
                    }
                    continue;
                }
                const SchedBlock &body =
                    code.functions[fn.id].blocks[op.target];
                Candidate c;
                c.func = fn.id;
                c.recBlock = bb.id;
                c.recOpIdx = oi;
                c.body = op.target;
                c.imageOps = body.imageOps();
                // Benefit: dynamic ops this loop issues (profile
                // iteration weight times real body size).
                c.benefit = fn.blocks[op.target].weight *
                            body.sizeOps();
                c.name = fn.name + "/" + fn.blocks[op.target].name;
                cands.push_back(std::move(c));
            }
        }
    }

    std::sort(cands.begin(), cands.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.benefit != b.benefit)
                      return a.benefit > b.benefit;
                  return a.imageOps < b.imageOps;
              });

    // Greedy placement. `occupancy[x]` = summed benefit of loops
    // already overlapping op slot x; the best offset for a new loop
    // minimizes displaced benefit (0 when free space exists).
    std::vector<double> occupancy(std::max(cap, 1), 0.0);
    // Candidate offsets: 0, plus the end of every placed image.
    std::vector<int> offsets{0};

    auto writeAssignment = [&](const Candidate &c, int addr) {
        Operation &irOp =
            prog.functions[c.func].blocks[c.recBlock].ops[c.recOpIdx];
        irOp.bufAddr = addr;
        irOp.numOps = c.imageOps;
        // Mirror onto the scheduled copy (matched by op id).
        SchedFunction &sf = code.functions[c.func];
        for (auto &bu : sf.blocks[c.recBlock].bundles) {
            for (auto &so : bu.ops) {
                if (so.op.id == irOp.id) {
                    so.op.bufAddr = addr;
                    so.op.numOps = c.imageOps;
                }
            }
        }
        BufferAssignment a;
        a.loopName = c.name;
        a.func = c.func;
        a.body = c.body;
        a.imageOps = c.imageOps;
        a.bufAddr = addr;
        a.benefit = c.benefit;
        res.assignments.push_back(std::move(a));
    };

    for (const auto &c : cands) {
        if (c.imageOps > cap || c.imageOps <= 0 || c.benefit <= 0) {
            const obs::LoopReason why =
                c.imageOps > cap    ? obs::LoopReason::TooLarge
                : c.imageOps <= 0   ? obs::LoopReason::BadShape
                                    : obs::LoopReason::ColdLoop;
            decide(c.name, obs::LoopFate::Rejected, why, c.imageOps,
                   -1, c.benefit);
            writeAssignment(c, -1);
            ++res.unbuffered;
            continue;
        }
        double bestCost = -1;
        int bestAddr = -1;
        for (int off : offsets) {
            if (off + c.imageOps > cap)
                continue;
            double cost = 0;
            for (int x = off; x < off + c.imageOps; ++x)
                cost = std::max(cost, occupancy[x]);
            if (bestAddr < 0 || cost < bestCost) {
                bestCost = cost;
                bestAddr = off;
            }
        }
        // Also consider the last-fit position.
        if (cap - c.imageOps >= 0) {
            const int off = cap - c.imageOps;
            double cost = 0;
            for (int x = off; x < off + c.imageOps; ++x)
                cost = std::max(cost, occupancy[x]);
            if (bestAddr < 0 || cost < bestCost) {
                bestCost = cost;
                bestAddr = off;
            }
        }
        LBP_ASSERT(bestAddr >= 0, "no offset for fitting image");
        for (int x = bestAddr; x < bestAddr + c.imageOps; ++x)
            occupancy[x] += c.benefit;
        if (std::find(offsets.begin(), offsets.end(),
                      bestAddr + c.imageOps) == offsets.end()) {
            offsets.push_back(bestAddr + c.imageOps);
        }
        decide(c.name, obs::LoopFate::Buffered,
               obs::LoopReason::None, c.imageOps, bestAddr, c.benefit);
        writeAssignment(c, bestAddr);
        ++res.buffered;
    }
    return res;
}

} // namespace lbp
