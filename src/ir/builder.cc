#include "ir/builder.hh"

#include "support/logging.hh"

namespace lbp
{

IRBuilder::IRBuilder(Program &prog, FuncId func)
    : prog_(prog), fn_(prog.functions[func]), cur_(kNoBlock)
{
    if (fn_.entry == kNoBlock) {
        fn_.entry = fn_.newBlock("entry");
    }
    cur_ = fn_.entry;
}

BlockId
IRBuilder::makeBlock(const std::string &name)
{
    return fn_.newBlock(name);
}

void
IRBuilder::at(BlockId b)
{
    LBP_ASSERT(b < fn_.blocks.size(), "builder at(): bad block");
    cur_ = b;
}

void
IRBuilder::fallTo(BlockId b)
{
    fn_.block(cur_).fallthrough = b;
}

Operation &
IRBuilder::emit(Operation op)
{
    op.id = fn_.newOpId();
    if (op.guard == kNoPred)
        op.guard = guard_;
    auto &blk = fn_.block(cur_);
    blk.ops.push_back(std::move(op));
    return blk.ops.back();
}

RegId
IRBuilder::iconst(std::int64_t v)
{
    RegId r = fn_.newReg();
    emit(makeUnary(Opcode::MOV, r, Operand::imm(v)));
    return r;
}

#define LBP_BUILDER_BIN(meth, OPC)                                         \
    RegId IRBuilder::meth(Operand a, Operand b)                            \
    {                                                                      \
        RegId r = fn_.newReg();                                            \
        emit(makeBinary(Opcode::OPC, r, a, b));                            \
        return r;                                                          \
    }

LBP_BUILDER_BIN(add, ADD)
LBP_BUILDER_BIN(sub, SUB)
LBP_BUILDER_BIN(mul, MUL)
LBP_BUILDER_BIN(div, DIV)
LBP_BUILDER_BIN(rem, REM)
LBP_BUILDER_BIN(and_, AND)
LBP_BUILDER_BIN(or_, OR)
LBP_BUILDER_BIN(xor_, XOR)
LBP_BUILDER_BIN(shl, SHL)
LBP_BUILDER_BIN(shr, SHR)
LBP_BUILDER_BIN(shra, SHRA)
LBP_BUILDER_BIN(min, MIN)
LBP_BUILDER_BIN(max, MAX)
LBP_BUILDER_BIN(satadd, SATADD)
LBP_BUILDER_BIN(satsub, SATSUB)

#undef LBP_BUILDER_BIN

RegId
IRBuilder::abs(Operand a)
{
    RegId r = fn_.newReg();
    emit(makeUnary(Opcode::ABS, r, a));
    return r;
}

RegId
IRBuilder::mov(Operand a)
{
    RegId r = fn_.newReg();
    emit(makeUnary(Opcode::MOV, r, a));
    return r;
}

RegId
IRBuilder::cmp(CmpCond c, Operand a, Operand b)
{
    RegId r = fn_.newReg();
    emit(makeCmp(r, c, a, b));
    return r;
}

RegId
IRBuilder::select(Operand c, Operand t, Operand f)
{
    RegId r = fn_.newReg();
    Operation o;
    o.op = Opcode::SELECT;
    o.dsts = {Operand::reg(r)};
    o.srcs = {c, t, f};
    emit(std::move(o));
    return r;
}

RegId
IRBuilder::loadB(Operand base, Operand off)
{
    RegId r = fn_.newReg();
    emit(makeLoad(Opcode::LD_B, r, base, off));
    return r;
}

RegId
IRBuilder::loadH(Operand base, Operand off)
{
    RegId r = fn_.newReg();
    emit(makeLoad(Opcode::LD_H, r, base, off));
    return r;
}

RegId
IRBuilder::loadW(Operand base, Operand off)
{
    RegId r = fn_.newReg();
    emit(makeLoad(Opcode::LD_W, r, base, off));
    return r;
}

void
IRBuilder::addTo(RegId dst, Operand a, Operand b)
{
    emit(makeBinary(Opcode::ADD, dst, a, b));
}

void
IRBuilder::subTo(RegId dst, Operand a, Operand b)
{
    emit(makeBinary(Opcode::SUB, dst, a, b));
}

void
IRBuilder::mulTo(RegId dst, Operand a, Operand b)
{
    emit(makeBinary(Opcode::MUL, dst, a, b));
}

void
IRBuilder::movTo(RegId dst, Operand a)
{
    emit(makeUnary(Opcode::MOV, dst, a));
}

void
IRBuilder::binTo(Opcode op, RegId dst, Operand a, Operand b)
{
    emit(makeBinary(op, dst, a, b));
}

void
IRBuilder::storeB(Operand base, Operand off, Operand v)
{
    emit(makeStore(Opcode::ST_B, base, off, v));
}

void
IRBuilder::storeH(Operand base, Operand off, Operand v)
{
    emit(makeStore(Opcode::ST_H, base, off, v));
}

void
IRBuilder::storeW(Operand base, Operand off, Operand v)
{
    emit(makeStore(Opcode::ST_W, base, off, v));
}

void
IRBuilder::predDef(PredDefKind k0, PredId p0, CmpCond c, Operand a,
                   Operand b)
{
    emit(makePredDef(k0, p0, PredDefKind::NONE, 0, c, a, b));
}

void
IRBuilder::predDef2(PredDefKind k0, PredId p0, PredDefKind k1, PredId p1,
                    CmpCond c, Operand a, Operand b)
{
    emit(makePredDef(k0, p0, k1, p1, c, a, b));
}

void
IRBuilder::br(CmpCond c, Operand a, Operand b, BlockId target)
{
    emit(makeBr(c, a, b, target));
}

void
IRBuilder::jump(BlockId target)
{
    emit(makeJump(target));
}

void
IRBuilder::ret(const std::vector<Operand> &values)
{
    Operation o;
    o.op = Opcode::RET;
    o.srcs = values;
    emit(std::move(o));
}

void
IRBuilder::wloopBack(CmpCond c, Operand a, Operand b, BlockId head)
{
    Operation o;
    o.op = Opcode::BR_WLOOP;
    o.cond = c;
    o.srcs = {a, b};
    o.target = head;
    emit(std::move(o));
}

std::vector<RegId>
IRBuilder::call(FuncId callee, const std::vector<Operand> &args,
                int num_rets)
{
    Operation o;
    o.op = Opcode::CALL;
    o.callee = callee;
    o.srcs = args;
    std::vector<RegId> rets;
    for (int i = 0; i < num_rets; ++i) {
        RegId r = fn_.newReg();
        rets.push_back(r);
        o.dsts.push_back(Operand::reg(r));
    }
    emit(std::move(o));
    return rets;
}

BlockId
IRBuilder::forLoopImpl(std::int64_t start, Operand bound,
                       std::int64_t step,
                       const std::function<void(RegId)> &bodyFn)
{
    LBP_ASSERT(step != 0, "forLoop with zero step");
    RegId i = fn_.newReg();
    movTo(i, Operand::imm(start));

    BlockId head = makeBlock();
    fallTo(head);
    at(head);
    bodyFn(i);
    addTo(i, Operand::reg(i), Operand::imm(step));
    const CmpCond back = step > 0 ? CmpCond::LT : CmpCond::GT;
    br(back, Operand::reg(i), bound, head);

    BlockId after = makeBlock();
    fallTo(after);
    at(after);
    return head;
}

BlockId
IRBuilder::forLoop(std::int64_t start, std::int64_t bound,
                   std::int64_t step,
                   const std::function<void(RegId)> &bodyFn)
{
    return forLoopImpl(start, Operand::imm(bound), step, bodyFn);
}

BlockId
IRBuilder::forLoopReg(std::int64_t start, RegId bound, std::int64_t step,
                      const std::function<void(RegId)> &bodyFn)
{
    return forLoopImpl(start, Operand::reg(bound), step, bodyFn);
}

} // namespace lbp
