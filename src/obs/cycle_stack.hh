/**
 * @file
 * Closed simulated-cycle accounting: a CPI stack that attributes every
 * cycle of `SimStats::cycles` to exactly one `CycleClass`, per loop.
 *
 * The taxonomy is closed in two directions at once:
 *
 *   sum over classes of the workload stack == SimStats::cycles
 *   sum over per-loop rows (plus the outside-any-loop row)
 *                                          == the workload stack
 *
 * Both sums hold in both engines, with the trace cache forced on and
 * forced off; the engine-differential and all-workloads tests assert
 * them on every run.
 *
 * Classes:
 *
 *   IssueFromMemory      bundle issued with the fetch charged to the
 *                        instruction cache (not loop-buffer resident)
 *   IssueFromBuffer      bundle issued from the loop buffer image
 *   IssueFromTraceReplay bundle issued by the trace-cache replay path
 *                        (decoded engine, cache on — a refinement of
 *                        IssueFromBuffer; folding it back into
 *                        IssueFromBuffer recovers the engine-invariant
 *                        split, which is what the differential test
 *                        compares)
 *   TakenBranchPenalty   redirect cycles of plain taken branches and
 *                        jumps outside any loop-control transfer
 *   CallReturnPenalty    redirect cycles of CALL and RET
 *   WhileExitPenalty     the §3 while-loop exit penalty: a wloop
 *                        backedge resolving not-taken from the buffer
 *   LoopControlOverhead  redirect cycles of loop-control transfers —
 *                        taken backedges issued from memory and the
 *                        EXEC re-entry redirect (Kavvadias &
 *                        Nikolaidis's attributable loop-control cost)
 *   SchedulerSlack       per modulo-scheduled loop: (achieved II -
 *                        max(ResMII, RecMII)) cycles per steady-state
 *                        iteration, reclassified out of the issue
 *                        classes — the cycles an optimal scheduler
 *                        (Roorda's SMT formulation) could still
 *                        recover without touching the machine model
 *
 * Attribution is row-indexed: row 0 is "outside any loop", row i+1 is
 * dense loop id i (the SimStats::loops index). The hot-path cost is
 * one add into a flat array.
 */

#ifndef LBP_OBS_CYCLE_STACK_HH
#define LBP_OBS_CYCLE_STACK_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lbp
{
namespace obs
{

enum class CycleClass : std::uint8_t
{
    IssueFromMemory,
    IssueFromBuffer,
    IssueFromTraceReplay,
    TakenBranchPenalty,
    CallReturnPenalty,
    WhileExitPenalty,
    LoopControlOverhead,
    SchedulerSlack,
    Count,
};

constexpr std::size_t kNumCycleClasses =
    static_cast<std::size_t>(CycleClass::Count);

/** Stable lower-camel token for keys/columns ("issueFromBuffer"). */
const char *cycleClassName(CycleClass c);

/** One row of the stack: cycles per class. */
using CycleRow = std::array<std::uint64_t, kNumCycleClasses>;

class CycleStack
{
  public:
    /** Size for @p numLoops dense loop ids (+ the outside row). */
    void reset(std::size_t numLoops)
    {
        rows_.assign(numLoops + 1, CycleRow{});
    }

    /** Charge @p n cycles of @p cls to @p loopRow (-1 = outside). */
    void charge(int loopRow, CycleClass cls, std::uint64_t n)
    {
        rows_[static_cast<std::size_t>(loopRow + 1)]
             [static_cast<std::size_t>(cls)] += n;
    }

    /**
     * Remove @p n cycles of issue credit from @p loopRow, draining
     * the most specific class first (replay, then buffer, then
     * memory). This is the retire-time twin of the pipelined-loop
     * cycle subtraction: the simulator models a software-pipelined
     * buffered loop as costing II (not bodyLen) per steady-state
     * iteration by subtracting the difference when the loop retires,
     * and those subtracted cycles were charged as issue cycles.
     */
    void unchargeIssue(int loopRow, std::uint64_t n);

    /**
     * Move up to @p n issue cycles of @p loopRow (replay first, then
     * buffer) into SchedulerSlack: the achieved-II-minus-minII cycles
     * a better scheduler could recover. Only buffer-resident issue is
     * eligible — slack is a property of the pipelined kernel.
     */
    void reclassifySlack(int loopRow, std::uint64_t n);

    std::size_t numRows() const { return rows_.size(); }

    /** Row for @p loopRow (-1 = outside any loop). */
    const CycleRow &row(int loopRow) const
    {
        return rows_[static_cast<std::size_t>(loopRow + 1)];
    }

    /** Per-class totals over all rows: the workload stack. */
    CycleRow totals() const;

    /** Sum of every cell — must equal SimStats::cycles. */
    std::uint64_t totalCycles() const;

    /**
     * @p r with IssueFromTraceReplay folded into IssueFromBuffer —
     * the engine-invariant view (replay is a decoded-engine-only
     * refinement of buffer issue).
     */
    static CycleRow collapseReplay(const CycleRow &r);

  private:
    std::vector<CycleRow> rows_;  ///< [0] outside, [i+1] loop id i
};

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_CYCLE_STACK_HH
