/**
 * @file
 * Classic scalar optimizations: local constant folding and copy
 * propagation, global dead-code elimination, and algebraic
 * simplification. These run before and after the control
 * transformations (the paper's "traditional loop optimizations").
 */

#ifndef LBP_TRANSFORM_CLASSIC_OPTS_HH
#define LBP_TRANSFORM_CLASSIC_OPTS_HH

#include "ir/program.hh"

namespace lbp
{

/** Aggregate change counts from an optimization run. */
struct OptStats
{
    int folded = 0;
    int propagated = 0;
    int eliminated = 0;

    bool any() const { return folded || propagated || eliminated; }

    OptStats &operator+=(const OptStats &o)
    {
        folded += o.folded;
        propagated += o.propagated;
        eliminated += o.eliminated;
        return *this;
    }
};

/** Fold constant expressions and simplify algebraic identities. */
OptStats constantFold(Function &fn);

/** Local (within-block) copy and constant propagation. */
OptStats copyPropagate(Function &fn);

/** Remove operations whose results are provably unused. */
OptStats deadCodeElim(Function &fn);

/** Run fold/propagate/DCE to a fixpoint on one function. */
OptStats optimizeFunction(Function &fn, int max_rounds = 8);

/** Run optimizeFunction on every function. */
OptStats optimizeProgram(Program &prog);

} // namespace lbp

#endif // LBP_TRANSFORM_CLASSIC_OPTS_HH
