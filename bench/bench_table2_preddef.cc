/**
 * @file
 * Table 2 microbenchmark: throughput of the predicate-define
 * semantics (all eight types) through the interpreter and the VLIW
 * simulator, plus a semantic spot-check printout of the truth table.
 */

#include <benchmark/benchmark.h>

#include "ir/builder.hh"
#include "ir/interpreter.hh"
#include "core/compiler.hh"
#include "sim/vliw_sim.hh"

using namespace lbp;

namespace
{

/**
 * A program whose hot loop exercises every predicate-define kind:
 * computes a table-driven reduction where each element's contribution
 * is gated through ut/uf/ot/of/at/af/ct/cf defines.
 */
Program
makePredProgram(int iters)
{
    Program prog;
    prog.name = "preddef_bench";
    const std::int64_t data = prog.allocData(1024 * 4);
    for (int i = 0; i < 1024; ++i)
        prog.poke32(data + 4 * i, (i * 2654435761u) % 1000 - 500);
    const std::int64_t out = prog.allocData(8);
    prog.checksumBase = out;
    prog.checksumSize = 8;

    const FuncId f = prog.newFunction("main");
    prog.entryFunc = f;
    IRBuilder b(prog, f);
    auto R = [](RegId r) { return Operand::reg(r); };
    auto I = [](std::int64_t v) { return Operand::imm(v); };

    const RegId dp = b.iconst(data);
    const RegId acc = b.iconst(0);
    const PredId p1 = b.newPred();
    const PredId p2 = b.newPred();
    const PredId p3 = b.newPred();

    b.forLoop(0, iters, 1, [&](RegId i) {
        const RegId idx = b.and_(R(i), I(1023));
        const RegId i4 = b.shl(R(idx), I(2));
        const RegId v = b.loadW(R(dp), R(i4));
        // ut/uf pair.
        b.predDef2(PredDefKind::UT, p1, PredDefKind::UF, p2,
                   CmpCond::LT, R(v), I(0));
        Operation neg = makeBinary(Opcode::SUB, acc, R(acc), R(v));
        neg.guard = p1;
        b.emit(neg);
        Operation pos = makeBinary(Opcode::ADD, acc, R(acc), R(v));
        pos.guard = p2;
        b.emit(pos);
        // or-type compound condition.
        b.predDef(PredDefKind::UT, p3, CmpCond::FALSE_, I(0), I(0));
        b.predDef(PredDefKind::OT, p3, CmpCond::GT, R(v), I(400));
        b.predDef(PredDefKind::OT, p3, CmpCond::LT, R(v), I(-400));
        Operation clip = makeBinary(Opcode::AND, acc, R(acc),
                                    I(0xffffff));
        clip.guard = p3;
        b.emit(clip);
    });
    const RegId op_ = b.iconst(out);
    b.storeW(R(op_), I(0), R(acc));
    b.ret({R(acc)});
    return prog;
}

void
BM_PredDefInterpreter(benchmark::State &state)
{
    Program prog = makePredProgram(static_cast<int>(state.range(0)));
    Interpreter interp(prog);
    for (auto _ : state) {
        auto r = interp.run();
        benchmark::DoNotOptimize(r.checksum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_PredDefSimulatorRegister(benchmark::State &state)
{
    Program prog = makePredProgram(static_cast<int>(state.range(0)));
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    SimConfig sc;
    sc.predMode = PredMode::REGISTER;
    for (auto _ : state) {
        VliwSim sim(cr.code, sc);
        auto st = sim.run();
        benchmark::DoNotOptimize(st.checksum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_PredDefSimulatorSlot(benchmark::State &state)
{
    Program prog = makePredProgram(static_cast<int>(state.range(0)));
    CompileOptions opts;
    opts.level = OptLevel::Aggressive;
    CompileResult cr;
    compileProgram(prog, opts, cr);
    SimConfig sc;
    sc.predMode = PredMode::SLOT;
    for (auto _ : state) {
        VliwSim sim(cr.code, sc);
        auto st = sim.run();
        benchmark::DoNotOptimize(st.checksum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

} // namespace

BENCHMARK(BM_PredDefInterpreter)->Arg(4096);
BENCHMARK(BM_PredDefSimulatorRegister)->Arg(4096);
BENCHMARK(BM_PredDefSimulatorSlot)->Arg(4096);

BENCHMARK_MAIN();
