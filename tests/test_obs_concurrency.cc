/**
 * @file
 * Concurrency tests for the obs registry under the thread pool — the
 * target of the TSan pass in scripts/check.sh. The Registry itself is
 * deliberately not thread-safe (metrics are plain fields on the sim's
 * hot path), so the supported concurrent pattern is: create every
 * metric up front on one thread, then let workers mutate *disjoint*
 * metrics lock-free and share a mutex only for metrics they actually
 * share. These tests exercise exactly that pattern; under
 * -fsanitize=thread they prove the pattern (and the ThreadPool's
 * submit/wait handoff) race-free.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.hh"
#include "support/thread_pool.hh"

namespace lbp
{
namespace
{

TEST(ObsConcurrency, DisjointCountersAcrossPool)
{
    obs::Registry reg;
    constexpr int kWorkers = 8;
    constexpr std::uint64_t kIncs = 10000;

    // Creation phase, single-threaded: find-or-create mutates the
    // registry's map, so it must finish before workers start.
    std::vector<obs::Counter *> counters;
    for (int w = 0; w < kWorkers; ++w)
        counters.push_back(
            &reg.counter("worker." + std::to_string(w) + ".ops"));

    ThreadPool pool;
    for (int w = 0; w < kWorkers; ++w) {
        obs::Counter *c = counters[w];
        pool.submit([c] {
            for (std::uint64_t i = 0; i < kIncs; ++i)
                c->inc();
        });
    }
    pool.wait();

    for (int w = 0; w < kWorkers; ++w)
        EXPECT_EQ(counters[w]->value(), kIncs);
}

TEST(ObsConcurrency, SharedHistogramUnderMutex)
{
    obs::Registry reg;
    constexpr int kWorkers = 8;
    constexpr int kSamples = 2000;

    obs::Histogram &hist = reg.histogram("latency");
    obs::Gauge &level = reg.gauge("level");
    std::mutex mu;

    ThreadPool pool;
    for (int w = 0; w < kWorkers; ++w)
        pool.submit([&hist, &level, &mu, w] {
            for (int i = 0; i < kSamples; ++i) {
                std::lock_guard<std::mutex> lock(mu);
                hist.add(w);
                level.add(1.0);
            }
        });
    pool.wait();

    EXPECT_DOUBLE_EQ(hist.total(), double(kWorkers) * kSamples);
    EXPECT_EQ(hist.maxValue(), kWorkers - 1);
    EXPECT_DOUBLE_EQ(level.value(), double(kWorkers) * kSamples);

    // Every worker value landed exactly kSamples times.
    for (int w = 0; w < kWorkers; ++w)
        EXPECT_DOUBLE_EQ(hist.bins().at(w), double(kSamples));
}

TEST(ObsConcurrency, WaitIsABarrierForResults)
{
    // wait() must publish every task's writes to the submitting
    // thread; repeated rounds reuse the pool to also cover the
    // idle->busy->idle transitions.
    obs::Registry reg;
    obs::Counter &total = reg.counter("rounds.total");
    ThreadPool pool(4);

    std::uint64_t expected = 0;
    for (int round = 0; round < 20; ++round) {
        std::mutex mu;
        for (int t = 0; t < 4; ++t)
            pool.submit([&total, &mu] {
                std::lock_guard<std::mutex> lock(mu);
                total.inc();
            });
        pool.wait();
        expected += 4;
        EXPECT_EQ(total.value(), expected);
    }
}

} // namespace
} // namespace lbp
