#!/usr/bin/env bash
# Full local check: configure Release (-O2), build, run the tier-1
# test suite (perf-labeled smoke excluded for speed), then the engine
# differential and the fast-path bench smoke (which re-verifies
# decoded-vs-reference equivalence on every sweep point it times).
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build-check}

cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
cmake --build "$BUILD" -j "$(nproc)"

# Tier-1: everything except the perf-labeled bench smoke.
ctest --test-dir "$BUILD" --output-on-failure -LE perf

# Engine differential: decoded fast path vs reference interpreter.
"$BUILD"/tests/lbp_tests --gtest_filter='*EngineDifferential*' \
    --gtest_brief=1

# Bench smoke (the ctest `perf` label), quick sweep + JSON emission.
"$BUILD"/bench/bench_sim_fastpath --quick \
    --json="$BUILD"/BENCH_sim_fastpath_smoke.json

echo "check.sh: all checks passed"
