/**
 * @file
 * perf_event_open backend internals. Concurrency mirrors obs/prof:
 * each thread owns its counter fds and last-read values (only the
 * owning thread touches them, from the region hook), per-region
 * accumulators are relaxed atomics snapshot() reads cross-thread,
 * and thread states are heap-allocated, registered under a mutex,
 * and never freed so a snapshot can outlive a pool thread.
 */

#include "obs/pmu.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "obs/json.hh"

namespace lbp
{
namespace obs
{
namespace pmu
{

const char *
pmuCounterName(PmuCounter c)
{
    switch (c) {
      case PmuCounter::Cycles: return "cycles";
      case PmuCounter::Instructions: return "instructions";
      case PmuCounter::Branches: return "branches";
      case PmuCounter::BranchMisses: return "branchMisses";
      case PmuCounter::CacheReferences: return "cacheReferences";
      case PmuCounter::CacheMisses: return "cacheMisses";
      case PmuCounter::StalledFrontend: return "stalledFrontend";
      case PmuCounter::StalledBackend: return "stalledBackend";
      case PmuCounter::Count: break;
    }
    return "?";
}

namespace
{

constexpr std::size_t kCyc =
    static_cast<std::size_t>(PmuCounter::Cycles);
constexpr std::size_t kIns =
    static_cast<std::size_t>(PmuCounter::Instructions);
constexpr std::size_t kBr =
    static_cast<std::size_t>(PmuCounter::Branches);
constexpr std::size_t kBrM =
    static_cast<std::size_t>(PmuCounter::BranchMisses);
constexpr std::size_t kCaM =
    static_cast<std::size_t>(PmuCounter::CacheMisses);

Json
rowJson(const Snapshot &s, const CounterRow &row)
{
    Json j = Json::object();
    for (std::size_t i = 0; i < kNumPmuCounters; ++i) {
        if (!s.counterPresent[i])
            continue;
        j.set(pmuCounterName(static_cast<PmuCounter>(i)),
              Json::uinteger(row[i]));
    }
    if (s.counterPresent[kIns] && row[kCyc] > 0)
        j.set("ipc", Json::number(static_cast<double>(row[kIns]) /
                                  static_cast<double>(row[kCyc])));
    if (s.counterPresent[kBr] && s.counterPresent[kBrM] &&
        row[kBr] > 0)
        j.set("branchMissPct",
              Json::number(100.0 *
                           static_cast<double>(row[kBrM]) /
                           static_cast<double>(row[kBr])));
    if (s.counterPresent[kCaM] && s.counterPresent[kIns] &&
        row[kIns] > 0)
        j.set("cacheMpki",
              Json::number(1000.0 *
                           static_cast<double>(row[kCaM]) /
                           static_cast<double>(row[kIns])));
    return j;
}

} // namespace

Json
snapshotJson(const Snapshot &s)
{
    Json j = Json::object();
    j.set("available", Json::boolean(s.available));
    if (!s.available) {
        j.set("reason", Json::str(s.reason));
        return j;
    }
    j.set("attributedCycleFraction",
          Json::number(s.attributedCycleFraction()));
    Json counters = Json::array();
    for (std::size_t i = 0; i < kNumPmuCounters; ++i)
        if (s.counterPresent[i])
            counters.push(Json::str(
                pmuCounterName(static_cast<PmuCounter>(i))));
    j.set("counters", std::move(counters));
    Json regions = Json::object();
    for (const PmuRegion &r : s.regions)
        regions.set(r.label, rowJson(s, r.counts));
    j.set("regions", std::move(regions));
    j.set("untracked", rowJson(s, s.untracked));
    j.set("total", rowJson(s, s.total));
    return j;
}

void
printSnapshotTable(std::ostream &os, const Snapshot &s)
{
    if (!s.available) {
        os << "host pmu unavailable: " << s.reason << "\n";
        return;
    }
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-22s %14s %7s %6s %9s %9s\n", "region",
                  "cycles", "share%", "ipc", "br-miss%",
                  "cache-mpki");
    os << line;
    const double totalCyc =
        static_cast<double>(s.total[kCyc]);
    auto printRow = [&](const std::string &label,
                        const CounterRow &row) {
        char cell[4][16];
        auto fmt = [&](int c, bool have, double v,
                       const char *spec) {
            if (have)
                std::snprintf(cell[c], sizeof(cell[c]), spec, v);
            else
                std::snprintf(cell[c], sizeof(cell[c]), "-");
        };
        fmt(0, totalCyc > 0,
            totalCyc > 0 ? 100.0 * static_cast<double>(row[kCyc]) /
                               totalCyc
                         : 0.0,
            "%.1f");
        fmt(1, s.counterPresent[kIns] && row[kCyc] > 0,
            row[kCyc] > 0 ? static_cast<double>(row[kIns]) /
                                static_cast<double>(row[kCyc])
                          : 0.0,
            "%.2f");
        fmt(2,
            s.counterPresent[kBr] && s.counterPresent[kBrM] &&
                row[kBr] > 0,
            row[kBr] > 0 ? 100.0 * static_cast<double>(row[kBrM]) /
                               static_cast<double>(row[kBr])
                         : 0.0,
            "%.2f");
        fmt(3,
            s.counterPresent[kCaM] && s.counterPresent[kIns] &&
                row[kIns] > 0,
            row[kIns] > 0 ? 1000.0 *
                                static_cast<double>(row[kCaM]) /
                                static_cast<double>(row[kIns])
                          : 0.0,
            "%.2f");
        std::snprintf(line, sizeof(line),
                      "%-22s %14" PRIu64 " %7s %6s %9s %9s\n",
                      label.c_str(), row[kCyc], cell[0], cell[1],
                      cell[2], cell[3]);
        os << line;
    };
    for (const PmuRegion &r : s.regions)
        printRow(r.label, r.counts);
    printRow("untracked", s.untracked);
    printRow("total", s.total);
    std::snprintf(line, sizeof(line),
                  "attributed to named regions: %.1f%% of cycles\n",
                  100.0 * s.attributedCycleFraction());
    os << line;
}

} // namespace pmu
} // namespace obs
} // namespace lbp

#if LBP_PMU

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "obs/prof.hh"

namespace lbp
{
namespace obs
{
namespace pmu
{

namespace
{

/** Hardware-event config for each PmuCounter, enum order. */
constexpr std::uint64_t kHwConfig[kNumPmuCounters] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_BRANCH_INSTRUCTIONS,
    PERF_COUNT_HW_BRANCH_MISSES,
    PERF_COUNT_HW_CACHE_REFERENCES,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_STALLED_CYCLES_FRONTEND,
    PERF_COUNT_HW_STALLED_CYCLES_BACKEND,
};

/**
 * All mutable session state one thread owns. The owning thread is
 * the only reader/writer of the fds and last-read values (the region
 * hook runs on the transitioning thread); the per-region counts are
 * relaxed atomics for snapshot()'s cross-thread reads.
 */
struct PmuThreadState
{
    int fd[kNumPmuCounters];
    std::uint64_t lastRaw[kNumPmuCounters];
    std::uint64_t lastEnabled[kNumPmuCounters];
    std::uint64_t lastRunning[kNumPmuCounters];
    std::uint8_t current = 0;  ///< region charged by the next delta
    std::uint32_t gen = 0;     ///< session generation last joined
    bool ok = false;           ///< cycles fd live, deltas charging
    std::atomic<std::uint64_t>
        counts[prof::kMaxRegions][kNumPmuCounters];

    PmuThreadState()
    {
        for (std::size_t i = 0; i < kNumPmuCounters; ++i) {
            fd[i] = -1;
            lastRaw[i] = lastEnabled[i] = lastRunning[i] = 0;
        }
        for (auto &row : counts)
            for (auto &c : row)
                c.store(0, std::memory_order_relaxed);
    }
};

std::mutex gMu;
/** Leak-by-design registry, immortalized like prof's (see prof.cc). */
std::vector<PmuThreadState *> &gStates =
    *new std::vector<PmuThreadState *>;
bool gRunning = false;                          ///< guarded by gMu
std::string gReason = "session never started";  ///< guarded by gMu
bool gAvailable = false;                        ///< guarded by gMu
/** Which counters opened on the session-starting thread. Written
 * under gMu before gActive's release store; hook threads read it
 * after the acquire load, so no further synchronization needed. */
bool gPresent[kNumPmuCounters] = {};
/** Hook-side fast flag: true between start() and stop(). */
std::atomic<bool> gActive{false};
/**
 * Session generation, bumped by every start(). A thread whose state
 * carries an older generation rebaselines (and reopens, if needed)
 * on its own next transition instead of start() mutating foreign
 * per-thread state — the fds and baselines stay single-writer.
 */
std::atomic<std::uint32_t> gGen{1};

thread_local PmuThreadState *tlsPmu = nullptr;

long
perfEventOpen(perf_event_attr *attr)
{
    return ::syscall(SYS_perf_event_open, attr, 0, -1, -1, 0);
}

/** Open one self-monitoring, userspace-only counter; -1 on failure. */
int
openCounter(std::size_t idx)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = kHwConfig[idx];
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    const long fd = perfEventOpen(&attr);
    return fd < 0 ? -1 : static_cast<int>(fd);
}

/** Human-readable open failure, with the paranoid level when the
 * kernel's policy is the likely cause. */
std::string
openFailureReason(int err)
{
    std::string why = "perf_event_open: ";
    why += std::strerror(err);
    if (err == EACCES || err == EPERM) {
        long level = -1;
        if (std::FILE *f = std::fopen(
                "/proc/sys/kernel/perf_event_paranoid", "r")) {
            if (std::fscanf(f, "%ld", &level) != 1)
                level = -1;
            std::fclose(f);
        }
        if (level >= 0)
            why += " (kernel.perf_event_paranoid=" +
                   std::to_string(level) + ")";
    } else if (err == ENOENT) {
        why += " (no hardware PMU exposed on this host)";
    } else if (err == ENOSYS) {
        why += " (kernel lacks the syscall)";
    }
    return why;
}

/**
 * Open the calling thread's counters per the session's present
 * mask. @p primary (the session-starting thread) decides that mask
 * and reports the anchor failure; later threads just take what
 * opens. Caller holds gMu.
 */
bool
openThreadCounters(PmuThreadState *ts, bool primary,
                   std::string *whyNot)
{
    for (std::size_t i = 0; i < kNumPmuCounters; ++i) {
        if (!primary && !gPresent[i])
            continue;
        ts->fd[i] = openCounter(i);
        if (primary)
            gPresent[i] = ts->fd[i] >= 0;
    }
    const std::size_t cyc =
        static_cast<std::size_t>(PmuCounter::Cycles);
    if (ts->fd[cyc] < 0) {
        if (primary && whyNot)
            *whyNot = openFailureReason(errno);
        for (std::size_t i = 0; i < kNumPmuCounters; ++i) {
            if (ts->fd[i] >= 0)
                ::close(ts->fd[i]);
            ts->fd[i] = -1;
        }
        return false;
    }
    ts->ok = true;
    return true;
}

/** Re-read every counter as the new delta baseline. Owning thread. */
void
rebaseline(PmuThreadState *ts)
{
    for (std::size_t i = 0; i < kNumPmuCounters; ++i) {
        if (ts->fd[i] < 0)
            continue;
        std::uint64_t buf[3] = {0, 0, 0};
        if (::read(ts->fd[i], buf, sizeof(buf)) ==
            static_cast<ssize_t>(sizeof(buf))) {
            ts->lastRaw[i] = buf[0];
            ts->lastEnabled[i] = buf[1];
            ts->lastRunning[i] = buf[2];
        }
    }
}

/**
 * Read the thread's counters and charge the deltas since the last
 * read to the region it is leaving. Multiplexed windows are scaled
 * by time_enabled/time_running, the standard perf estimate. Owning
 * thread only.
 */
void
chargeDeltas(PmuThreadState *ts)
{
    const std::uint8_t region =
        ts->current < prof::kMaxRegions ? ts->current : 0;
    for (std::size_t i = 0; i < kNumPmuCounters; ++i) {
        if (ts->fd[i] < 0)
            continue;
        std::uint64_t buf[3] = {0, 0, 0};
        if (::read(ts->fd[i], buf, sizeof(buf)) !=
            static_cast<ssize_t>(sizeof(buf)))
            continue;
        const std::uint64_t dRaw = buf[0] - ts->lastRaw[i];
        const std::uint64_t dEna = buf[1] - ts->lastEnabled[i];
        const std::uint64_t dRun = buf[2] - ts->lastRunning[i];
        ts->lastRaw[i] = buf[0];
        ts->lastEnabled[i] = buf[1];
        ts->lastRunning[i] = buf[2];
        std::uint64_t charge = dRaw;
        if (dRun != 0 && dRun != dEna)
            charge = static_cast<std::uint64_t>(std::llround(
                static_cast<double>(dRaw) *
                (static_cast<double>(dEna) /
                 static_cast<double>(dRun))));
        if (charge != 0)
            ts->counts[region][i].fetch_add(
                charge, std::memory_order_relaxed);
    }
}

void
threadExiting(PmuThreadState *ts)
{
    std::lock_guard<std::mutex> lk(gMu);
    // Flush only a thread that actually joined the running session;
    // a stale-generation baseline spans sessions and must not charge.
    if (ts->ok && gActive.load(std::memory_order_relaxed) &&
        ts->gen == gGen.load(std::memory_order_relaxed))
        chargeDeltas(ts);
    for (std::size_t i = 0; i < kNumPmuCounters; ++i) {
        if (ts->fd[i] >= 0)
            ::close(ts->fd[i]);
        ts->fd[i] = -1;
    }
    ts->ok = false;
    tlsPmu = nullptr;
}

/** Closes the thread's fds before they leak; counts stay readable. */
struct TlsGuard
{
    PmuThreadState *ts = nullptr;
    ~TlsGuard()
    {
        if (ts != nullptr)
            threadExiting(ts);
    }
};
thread_local TlsGuard tlsGuard;

/**
 * The prof region-transition hook: charge what ran since the last
 * transition to the region being left, then aim at the new one. A
 * thread's first transition under a running session opens its own
 * counters (pool threads join lazily, like prof's timer arming).
 */
void
regionHook(std::uint8_t innermost)
{
    if (!gActive.load(std::memory_order_acquire))
        return;
    const std::uint32_t gen = gGen.load(std::memory_order_relaxed);
    PmuThreadState *ts = tlsPmu;
    if (ts == nullptr) {
        ts = new PmuThreadState;
        {
            std::lock_guard<std::mutex> lk(gMu);
            gStates.push_back(ts);
            openThreadCounters(ts, /*primary=*/false, nullptr);
        }
        rebaseline(ts);
        ts->gen = gen;
        ts->current = innermost;
        tlsPmu = ts;
        tlsGuard.ts = ts;
        return;
    }
    if (ts->gen != gen) {
        // First transition under this session: rejoin. Counters that
        // survived an earlier session only need a fresh baseline;
        // threads whose open failed before try once more.
        if (!ts->ok) {
            std::lock_guard<std::mutex> lk(gMu);
            openThreadCounters(ts, /*primary=*/false, nullptr);
        }
        rebaseline(ts);
        ts->gen = gen;
        ts->current = innermost;
        return;
    }
    if (!ts->ok) {
        ts->current = innermost;
        return;
    }
    chargeDeltas(ts);
    ts->current = innermost;
}

/** Caller holds gMu. */
void
resetCountsLocked()
{
    for (PmuThreadState *ts : gStates)
        for (auto &row : ts->counts)
            for (auto &c : row)
                c.store(0, std::memory_order_relaxed);
}

} // namespace

PmuSession &
PmuSession::instance()
{
    static PmuSession s;
    return s;
}

bool
PmuSession::start(std::string *whyNot)
{
    std::lock_guard<std::mutex> lk(gMu);
    if (gRunning) {
        if (whyNot)
            *whyNot = "pmu session already running";
        return false;
    }
    // The starting thread is the availability probe: if its cycles
    // counter cannot open, no thread's will.
    PmuThreadState *ts = tlsPmu;
    if (ts == nullptr) {
        ts = new PmuThreadState;
        gStates.push_back(ts);
        tlsPmu = ts;
        tlsGuard.ts = ts;
    } else {
        // Re-probe from scratch: the present mask is re-decided.
        ts->ok = false;
        for (std::size_t i = 0; i < kNumPmuCounters; ++i) {
            if (ts->fd[i] >= 0)
                ::close(ts->fd[i]);
            ts->fd[i] = -1;
        }
    }
    for (std::size_t i = 0; i < kNumPmuCounters; ++i)
        gPresent[i] = false;
    std::string why;
    if (!openThreadCounters(ts, /*primary=*/true, &why)) {
        gAvailable = false;
        gReason = why;
        if (whyNot)
            *whyNot = why;
        return false;
    }
    resetCountsLocked();
    // Other live threads rejoin lazily: the new generation makes
    // their next transition rebaseline (and reopen if needed) on
    // their own thread, keeping all fd state single-writer.
    const std::uint32_t gen =
        gGen.fetch_add(1, std::memory_order_relaxed) + 1;
    ts->gen = gen;
    rebaseline(ts);
    ts->current = 0;
    gAvailable = true;
    gReason.clear();
    gRunning = true;
    gActive.store(true, std::memory_order_release);
    prof::setRegionHook(&regionHook);
    return true;
}

void
PmuSession::stop()
{
    std::lock_guard<std::mutex> lk(gMu);
    if (!gRunning)
        return;
    prof::setRegionHook(nullptr);
    // Flush the calling thread's tail before the flag drops; other
    // threads' windows since their last transition stay unmeasured,
    // which also keeps them out of the attribution denominator.
    if (PmuThreadState *ts = tlsPmu)
        if (ts->ok)
            chargeDeltas(ts);
    gActive.store(false, std::memory_order_release);
    gRunning = false;
}

bool
PmuSession::running() const
{
    std::lock_guard<std::mutex> lk(gMu);
    return gRunning;
}

void
PmuSession::reset()
{
    std::lock_guard<std::mutex> lk(gMu);
    resetCountsLocked();
    if (PmuThreadState *ts = tlsPmu)
        if (ts->ok)
            rebaseline(ts);
}

Snapshot
PmuSession::snapshot() const
{
    std::map<std::uint8_t, CounterRow> byRegion;
    Snapshot s;
    {
        std::lock_guard<std::mutex> lk(gMu);
        s.available = gAvailable;
        s.reason = gReason;
        for (std::size_t i = 0; i < kNumPmuCounters; ++i)
            s.counterPresent[i] = gPresent[i];
        for (const PmuThreadState *ts : gStates) {
            for (std::size_t r = 0; r < prof::kMaxRegions; ++r) {
                CounterRow row{};
                bool any = false;
                for (std::size_t i = 0; i < kNumPmuCounters; ++i) {
                    row[i] = ts->counts[r][i].load(
                        std::memory_order_relaxed);
                    any = any || row[i] != 0;
                }
                if (!any)
                    continue;
                auto &acc =
                    byRegion[static_cast<std::uint8_t>(r)];
                for (std::size_t i = 0; i < kNumPmuCounters; ++i)
                    acc[i] += row[i];
            }
        }
    }
    // Label lookup takes prof's lock; do it outside ours.
    for (const auto &[id, row] : byRegion) {
        for (std::size_t i = 0; i < kNumPmuCounters; ++i)
            s.total[i] += row[i];
        if (id == 0) {
            s.untracked = row;
            continue;
        }
        PmuRegion pr;
        pr.label = prof::regionLabel(id);
        pr.counts = row;
        s.regions.push_back(std::move(pr));
    }
    const std::size_t cyc =
        static_cast<std::size_t>(PmuCounter::Cycles);
    std::sort(s.regions.begin(), s.regions.end(),
              [cyc](const PmuRegion &a, const PmuRegion &b) {
                  if (a.counts[cyc] != b.counts[cyc])
                      return a.counts[cyc] > b.counts[cyc];
                  return a.label < b.label;
              });
    return s;
}

} // namespace pmu
} // namespace obs
} // namespace lbp

#endif // LBP_PMU
