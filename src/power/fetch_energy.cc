#include "power/fetch_energy.hh"

namespace lbp
{

FetchEnergy
computeFetchEnergy(const SimStats &stats, int bufferOps,
                   const CactiLite &model)
{
    FetchEnergy e;
    e.opsFromBuffer = stats.opsFromBuffer;
    e.opsFromMemory = stats.opsFetched - stats.opsFromBuffer;
    e.memoryNj = static_cast<double>(e.opsFromMemory) *
                 model.memoryFetchEnergy();
    e.bufferNj = static_cast<double>(e.opsFromBuffer) *
                 model.bufferFetchEnergy(bufferOps);
    e.totalNj = e.memoryNj + e.bufferNj;
    return e;
}

double
unbufferedEnergyNj(std::uint64_t opsFetched, const CactiLite &model)
{
    return static_cast<double>(opsFetched) * model.memoryFetchEnergy();
}

} // namespace lbp
