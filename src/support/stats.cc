#include "support/stats.hh"

#include <cmath>
#include <sstream>

#include "support/logging.hh"

namespace lbp
{

void
Histogram::add(std::int64_t v, double weight)
{
    bins_[v] += weight;
}

double
Histogram::total() const
{
    double t = 0;
    for (const auto &[v, w] : bins_)
        t += w;
    return t;
}

double
Histogram::mean() const
{
    double t = 0, acc = 0;
    for (const auto &[v, w] : bins_) {
        t += w;
        acc += static_cast<double>(v) * w;
    }
    return t > 0 ? acc / t : 0.0;
}

std::int64_t
Histogram::maxValue() const
{
    return bins_.empty() ? 0 : bins_.rbegin()->first;
}

double
Histogram::cumulativeAt(std::int64_t v) const
{
    const double t = total();
    if (t <= 0)
        return 0.0;
    double acc = 0;
    for (const auto &[val, w] : bins_) {
        if (val > v)
            break;
        acc += w;
    }
    return acc / t;
}

std::vector<std::pair<std::int64_t, double>>
Histogram::cdf() const
{
    std::vector<std::pair<std::int64_t, double>> rows;
    const double t = total();
    double acc = 0;
    for (const auto &[val, w] : bins_) {
        acc += w;
        rows.emplace_back(val, t > 0 ? acc / t : 0.0);
    }
    return rows;
}

std::string
pct(double fraction, int decimals)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(decimals);
    os << fraction * 100.0 << "%";
    return os.str();
}

std::string
fixed(double v, int decimals)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(decimals);
    os << v;
    return os.str();
}

double
geomean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double acc = 0;
    for (double v : vals) {
        LBP_ASSERT(v > 0, "geomean of non-positive value");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(vals.size()));
}

} // namespace lbp
