#include "ir/printer.hh"

#include <ostream>
#include <sstream>

namespace lbp
{

namespace
{

std::string
operandStr(const Operand &o)
{
    switch (o.kind) {
      case OperandKind::NONE: return "<none>";
      case OperandKind::REG: return "r" + std::to_string(o.asReg());
      case OperandKind::IMM: return std::to_string(o.value);
      case OperandKind::PRED: return "p" + std::to_string(o.asPred());
      case OperandKind::SLOT: return "s" + std::to_string(o.asSlot());
    }
    return "?";
}

std::string
blockName(BlockId b, const Function *fn)
{
    if (b == kNoBlock)
        return "<none>";
    if (fn && b < fn->blocks.size() && !fn->blocks[b].name.empty())
        return fn->blocks[b].name;
    return "bb" + std::to_string(b);
}

} // namespace

std::string
toString(const Operation &op, const Function *fn)
{
    std::ostringstream os;
    if (op.hasGuard())
        os << "(p" << op.guard << ") ";
    if (op.sensitive)
        os << "[s] ";
    os << opcodeName(op.op);
    if (op.op == Opcode::CMP || op.op == Opcode::BR ||
        op.op == Opcode::BR_WLOOP || op.op == Opcode::PRED_DEF) {
        os << "." << condName(op.cond);
    }
    if (op.op == Opcode::PRED_DEF) {
        os << " " << operandStr(op.dsts[0]) << "_"
           << predDefKindName(op.defKind0);
        if (op.dsts.size() > 1) {
            os << ", " << operandStr(op.dsts[1]) << "_"
               << predDefKindName(op.defKind1);
        }
        os << " = (" << operandStr(op.srcs[0]) << ", "
           << operandStr(op.srcs[1]) << ")";
        return os.str();
    }
    bool first = true;
    for (const auto &d : op.dsts) {
        os << (first ? " " : ", ") << operandStr(d);
        first = false;
    }
    if (!op.dsts.empty() && !op.srcs.empty())
        os << " =";
    first = true;
    for (const auto &s : op.srcs) {
        os << (first ? " " : ", ") << operandStr(s);
        first = false;
    }
    if (op.target != kNoBlock)
        os << " -> " << blockName(op.target, fn);
    if (op.op == Opcode::CALL)
        os << " @f" << op.callee;
    if (isBufferOp(op.op))
        os << " [buf=" << op.bufAddr << ", n=" << op.numOps << "]";
    if (op.speculative)
        os << " <spec>";
    if (op.fromOuterLoop)
        os << " <outer>";
    return os.str();
}

void
print(std::ostream &os, const Function &fn)
{
    os << "function " << fn.name << " (";
    for (size_t i = 0; i < fn.params.size(); ++i)
        os << (i ? ", r" : "r") << fn.params[i];
    os << ") entry=" << blockName(fn.entry, &fn) << "\n";
    for (const auto &b : fn.blocks) {
        if (b.dead)
            continue;
        os << "  " << blockName(b.id, &fn) << ":";
        if (b.weight > 0)
            os << "    ; weight=" << b.weight;
        if (b.isHyperblock)
            os << " [hyperblock]";
        os << "\n";
        for (const auto &o : b.ops)
            os << "    " << toString(o, &fn) << "\n";
        if (b.fallthrough != kNoBlock)
            os << "    ; falls to " << blockName(b.fallthrough, &fn)
               << "\n";
    }
}

void
print(std::ostream &os, const Program &prog)
{
    os << "program " << prog.name << "\n";
    for (const auto &f : prog.functions) {
        print(os, f);
        os << "\n";
    }
}

std::string
toString(const Function &fn)
{
    std::ostringstream os;
    print(os, fn);
    return os.str();
}

} // namespace lbp
