file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_buffer_issue.dir/bench_fig7_buffer_issue.cc.o"
  "CMakeFiles/bench_fig7_buffer_issue.dir/bench_fig7_buffer_issue.cc.o.d"
  "bench_fig7_buffer_issue"
  "bench_fig7_buffer_issue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_buffer_issue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
