file(REMOVE_RECURSE
  "liblbp.a"
)
